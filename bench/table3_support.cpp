// Table 3 (paper §6.1): algorithms supported by the compared systems.

#include <cstdio>

#include "baselines/support_matrix.h"
#include "bench/bench_common.h"

int main() {
  ps2::bench::Header("Table 3: algorithms supported by different systems",
                     "only PS2 covers LR + DeepWalk + GBDT + LDA");
  std::printf("%s", ps2::FormatSupportMatrix(ps2::PaperTable3()).c_str());
  std::printf(
      "\nAll six systems' strategies are implemented in this repository:\n"
      "  PS2         src/ml + src/dcv (DCV server-side computation)\n"
      "  Spark MLlib src/baselines/mllib_lr.cc, mllib_lda.cc (driver model)\n"
      "  DistML      src/baselines/distml_lr.cc (stale snapshot quirk)\n"
      "  Glint       src/baselines/glint_lda.cc (per-batch row pulls)\n"
      "  Petuum      src/baselines/petuum_lr.cc, petuum_lda.cc (full pulls)\n"
      "  XGBoost     src/baselines/xgboost_gbdt.cc (histogram allreduce)\n");
  return 0;
}
