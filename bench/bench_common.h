#pragma once

// Shared helpers for the figure/table reproduction binaries.
//
// Every bench prints (a) what the paper reported, (b) what this build
// measured, in plain fixed-width text, so EXPERIMENTS.md rows can be pasted
// from the output. Scale is controlled by the PS2_BENCH_SCALE environment
// variable (default 1.0 = the laptop-sized presets in data/presets.h).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "dataflow/cluster.h"
#include "ml/train_report.h"

namespace ps2 {
namespace bench {

/// Rewrites a tagged metric name into a JSON-field-safe key:
/// `ps.server.handle_us{op=pull_dense}` -> `ps.server.handle_us.pull_dense`,
/// `obs.server_busy_time{server=3}` -> `obs.server_busy_time.s3`.
/// JsonReporter fields must stay in [A-Za-z0-9_.-] (they are printed
/// unescaped), and check_bench.py matches on these flattened names.
inline std::string SanitizeMetricName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (c == '{' || c == ',') {
      out.push_back('.');
      // Drop the tag key: ".server=3" -> ".s3", ".op=pull" -> ".pull".
      size_t eq = name.find('=', i);
      size_t stop = name.find_first_of(",}", i);
      if (eq != std::string::npos && stop != std::string::npos && eq < stop) {
        if (name.compare(i + 1, eq - i - 1, "server") == 0) out.push_back('s');
        i = eq;
      }
      continue;
    }
    if (c == '}' || c == '=') continue;
    out.push_back(c);
  }
  return out;
}

/// Global dataset scale multiplier from $PS2_BENCH_SCALE (default 1).
inline double Scale() {
  const char* env = std::getenv("PS2_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline void Header(const std::string& title, const std::string& paper_note) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_note.c_str());
  std::printf("================================================================\n");
}

/// Prints a loss-vs-time curve, thinned to ~`points` rows.
inline void PrintCurve(const TrainReport& report, size_t points = 10) {
  std::printf("-- %s (%zu iterations, %.3f virtual s total)\n",
              report.system.c_str(), report.curve.size(), report.total_time);
  if (report.curve.empty()) return;
  size_t stride = std::max<size_t>(1, report.curve.size() / points);
  std::printf("   %-6s %-12s %-10s\n", "iter", "time(s)", "loss");
  for (size_t i = 0; i < report.curve.size(); i += stride) {
    const TrainPoint& p = report.curve[i];
    std::printf("   %-6d %-12.4f %-10.4f\n", p.iteration, p.time, p.loss);
  }
  const TrainPoint& last = report.curve.back();
  std::printf("   %-6d %-12.4f %-10.4f  (final)\n", last.iteration, last.time,
              last.loss);
}

/// Prints "A is Nx faster than B [to reach loss target]".
inline void PrintSpeedup(const TrainReport& fast, const TrainReport& slow,
                         double target_loss) {
  SimTime t_fast = fast.TimeToLoss(target_loss);
  SimTime t_slow = slow.TimeToLoss(target_loss);
  if (std::isinf(t_fast) || std::isinf(t_slow)) {
    std::printf("   time-to-loss %.3f: %s=%s, %s=%s\n", target_loss,
                fast.system.c_str(),
                std::isinf(t_fast) ? "never" : "reached",
                slow.system.c_str(),
                std::isinf(t_slow) ? "never" : "reached");
    std::printf("   (falling back to total-time ratio) %s vs %s: %.2fx\n",
                fast.system.c_str(), slow.system.c_str(),
                slow.total_time / fast.total_time);
    return;
  }
  std::printf("   time to loss %.3f: %s %.3fs | %s %.3fs -> %.2fx\n",
              target_loss, fast.system.c_str(), t_fast, slow.system.c_str(),
              t_slow, t_slow / t_fast);
}

/// \brief Machine-readable companion to the printed tables.
///
/// Collects one record per run and writes `BENCH_<name>.json` into the
/// working directory on Write() (or at destruction), so CI and plotting
/// scripts can diff bench results without scraping stdout. Each record
/// carries the virtual time plus the cluster's traffic counters (bytes
/// each way, messages, rounds, local cache hits); AddField appends any
/// extra scalar. Values are written as JSON numbers; run and field names
/// must not need escaping (keep them to [A-Za-z0-9_.-]).
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() {
    if (!written_) Write();
  }

  /// Starts a new record; subsequent AddField calls attach to it.
  void BeginRun(const std::string& run_name) {
    runs_.push_back({run_name, {}});
  }

  /// Adds one scalar to the current run.
  void AddField(const std::string& key, double value) {
    if (runs_.empty()) BeginRun("default");
    runs_.back().fields.push_back({key, value});
  }

  /// Records a run's virtual time and the traffic counters accumulated in
  /// `cluster` since its metrics were last Reset(): the flat `net.*` totals,
  /// retry accounting, the per-server tagged breakdowns (bytes each way and
  /// `obs.server_busy_time`, flattened via SanitizeMetricName, plus the
  /// max/mean busy-time skew), and p50/p95/p99 of every histogram. The
  /// histogram fields are wall-clock and machine-dependent — check_bench.py
  /// only gates on the deterministic counter fields.
  void AddRun(const std::string& run_name, const Cluster& cluster,
              double virtual_time_s) {
    BeginRun(run_name);
    AddField("virtual_time_s", virtual_time_s);
    const MetricsRegistry& m = cluster.metrics();
    AddField("bytes_worker_to_server",
             static_cast<double>(m.Get("net.bytes_worker_to_server")));
    AddField("bytes_server_to_worker",
             static_cast<double>(m.Get("net.bytes_server_to_worker")));
    AddField("messages", static_cast<double>(m.Get("net.messages")));
    AddField("rounds", static_cast<double>(m.Get("net.rounds")));
    AddField("local_pull_hits",
             static_cast<double>(m.Get("net.local_pull_hits")));
    AddField("local_pull_bytes",
             static_cast<double>(m.Get("net.local_pull_bytes")));
    AddField("retries", static_cast<double>(m.Get("net.retries")));
    AddField("retry_backoff_us",
             static_cast<double>(m.Get("net.retry_backoff_time")));
    AddField("dedup_hits", static_cast<double>(m.Get("ps.dedup_hits")));
    // Wire-level filter accounting (net/filters.h): bytes that crossed the
    // simulated wire vs the logical pre-filter payloads, plus the key-cache
    // counters. wire_ratio = logical / wire (1.0 when filters are off).
    const double wire = static_cast<double>(m.Get("net.bytes_wire"));
    const double logical = static_cast<double>(m.Get("net.bytes_logical"));
    AddField("bytes_wire", wire);
    AddField("bytes_logical", logical);
    AddField("wire_ratio", wire > 0 ? logical / wire : 1.0);
    AddField("keycache_hits", static_cast<double>(m.Get("ps.keycache_hits")));
    AddField("keycache_installs",
             static_cast<double>(m.Get("ps.keycache_installs")));
    AddField("keycache_misses",
             static_cast<double>(m.Get("ps.keycache_misses")));
    // Per-server breakdown + load-skew summary (max busy server / mean).
    double busy_max = 0.0, busy_sum = 0.0;
    int busy_n = 0;
    for (const auto& [name, value] : m.Snapshot()) {
      const bool per_server = name.find("{server=") != std::string::npos;
      const bool busy = name.rfind("obs.server_busy_time", 0) == 0;
      if (per_server) AddField(SanitizeMetricName(name), static_cast<double>(value));
      if (busy) {
        busy_max = std::max(busy_max, static_cast<double>(value));
        busy_sum += static_cast<double>(value);
        busy_n += 1;
      }
    }
    if (busy_n > 0 && busy_sum > 0.0) {
      AddField("server_busy_skew", busy_max / (busy_sum / busy_n));
    }
    for (const auto& [name, snap] : m.HistogramSnapshots()) {
      const std::string key = SanitizeMetricName(name);
      AddField(key + ".count", static_cast<double>(snap.count));
      AddField(key + ".p50", snap.p50);
      AddField(key + ".p95", snap.p95);
      AddField(key + ".p99", snap.p99);
    }
  }

  /// Writes BENCH_<name>.json; returns false (with a note on stderr) if
  /// the file cannot be opened. Subsequent calls are no-ops.
  bool Write() {
    if (written_) return true;
    written_ = true;
    const std::string path = "BENCH_" + bench_name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "JsonReporter: cannot open %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"runs\": [\n",
                 bench_name_.c_str());
    for (size_t i = 0; i < runs_.size(); ++i) {
      std::fprintf(f, "    {\n      \"name\": \"%s\"", runs_[i].name.c_str());
      for (const auto& [key, value] : runs_[i].fields) {
        if (std::isfinite(value)) {
          // %.17g round-trips doubles exactly and prints integers plainly.
          std::fprintf(f, ",\n      \"%s\": %.17g", key.c_str(), value);
        } else {
          std::fprintf(f, ",\n      \"%s\": null", key.c_str());
        }
      }
      std::fprintf(f, "\n    }%s\n", i + 1 < runs_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  struct Run {
    std::string name;
    std::vector<std::pair<std::string, double>> fields;
  };

  std::string bench_name_;
  std::vector<Run> runs_;
  bool written_ = false;
};

}  // namespace bench
}  // namespace ps2
