#pragma once

// Shared helpers for the figure/table reproduction binaries.
//
// Every bench prints (a) what the paper reported, (b) what this build
// measured, in plain fixed-width text, so EXPERIMENTS.md rows can be pasted
// from the output. Scale is controlled by the PS2_BENCH_SCALE environment
// variable (default 1.0 = the laptop-sized presets in data/presets.h).

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "ml/train_report.h"

namespace ps2 {
namespace bench {

/// Global dataset scale multiplier from $PS2_BENCH_SCALE (default 1).
inline double Scale() {
  const char* env = std::getenv("PS2_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline void Header(const std::string& title, const std::string& paper_note) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper: %s\n", paper_note.c_str());
  std::printf("================================================================\n");
}

/// Prints a loss-vs-time curve, thinned to ~`points` rows.
inline void PrintCurve(const TrainReport& report, size_t points = 10) {
  std::printf("-- %s (%zu iterations, %.3f virtual s total)\n",
              report.system.c_str(), report.curve.size(), report.total_time);
  if (report.curve.empty()) return;
  size_t stride = std::max<size_t>(1, report.curve.size() / points);
  std::printf("   %-6s %-12s %-10s\n", "iter", "time(s)", "loss");
  for (size_t i = 0; i < report.curve.size(); i += stride) {
    const TrainPoint& p = report.curve[i];
    std::printf("   %-6d %-12.4f %-10.4f\n", p.iteration, p.time, p.loss);
  }
  const TrainPoint& last = report.curve.back();
  std::printf("   %-6d %-12.4f %-10.4f  (final)\n", last.iteration, last.time,
              last.loss);
}

/// Prints "A is Nx faster than B [to reach loss target]".
inline void PrintSpeedup(const TrainReport& fast, const TrainReport& slow,
                         double target_loss) {
  SimTime t_fast = fast.TimeToLoss(target_loss);
  SimTime t_slow = slow.TimeToLoss(target_loss);
  if (std::isinf(t_fast) || std::isinf(t_slow)) {
    std::printf("   time-to-loss %.3f: %s=%s, %s=%s\n", target_loss,
                fast.system.c_str(),
                std::isinf(t_fast) ? "never" : "reached",
                slow.system.c_str(),
                std::isinf(t_slow) ? "never" : "reached");
    std::printf("   (falling back to total-time ratio) %s vs %s: %.2fx\n",
                fast.system.c_str(), slow.system.c_str(),
                slow.total_time / fast.total_time);
    return;
  }
  std::printf("   time to loss %.3f: %s %.3fs | %s %.3fs -> %.2fx\n",
              target_loss, fast.system.c_str(), t_fast, slow.system.c_str(),
              t_slow, t_slow / t_fast);
}

}  // namespace bench
}  // namespace ps2
