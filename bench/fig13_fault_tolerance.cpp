// Figure 13(c) (paper §6.5): fault tolerance under injected failures.
// Paper: with task-failure probability 0 / 0.01 / 0.1 the training takes
// 66s / 74s / 127s and all three runs converge to the same solution.
//
// Extended with the message-level fault sweep (DESIGN.md §6): per-exchange
// request/response loss with idempotent retries. The solution must match
// the fault-free run exactly; the cost shows up as `retry_penalty` (extra
// virtual seconds vs p=0) and in the net.retries / net.retry_backoff_time /
// ps.dedup_hits counters, all emitted to BENCH_fig13_fault_tolerance.json.

#include "bench/bench_common.h"
#include "data/classification_gen.h"
#include "data/presets.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"

namespace {

struct RunResult {
  ps2::TrainReport report;
  ps2::SimTime time = 0;
  uint64_t task_retries = 0;
  uint64_t net_retries = 0;
  uint64_t backoff_us = 0;
  uint64_t dedup_hits = 0;
};

}  // namespace

int main() {
  using namespace ps2;
  bench::Header("Figure 13(c): fault tolerance",
                "task p = 0 / 0.01 / 0.1 -> 66s / 74s / 127s, same final loss");
  const double scale = bench::Scale();
  ClassificationSpec ds = presets::KddbLike(scale);
  bench::JsonReporter json("fig13_fault_tolerance");

  auto train = [&](ClusterSpec spec, const std::string& run_name) {
    spec.num_workers = 20;
    spec.num_servers = 20;
    Cluster cluster(spec);
    Dataset<Example> data = MakeClassificationDataset(&cluster, ds).Cache();
    data.Count();
    DcvContext ctx(&cluster);
    GlmOptions options;
    options.dim = ds.dim;
    options.optimizer.kind = OptimizerKind::kAdam;
    options.optimizer.learning_rate = 0.05;
    options.batch_fraction = 0.01;
    options.iterations = 60;
    RunResult out;
    out.report = *TrainGlmPs2(&ctx, data, options);
    out.time = out.report.total_time;
    out.task_retries = cluster.metrics().Get("cluster.task_retries");
    out.net_retries = cluster.metrics().Get("net.retries");
    out.backoff_us = cluster.metrics().Get("net.retry_backoff_time");
    out.dedup_hits = cluster.metrics().Get("ps.dedup_hits");
    json.AddRun(run_name, cluster, out.time);
    json.AddField("final_loss", out.report.final_loss);
    json.AddField("task_retries", static_cast<double>(out.task_retries));
    json.AddField("net_retries", static_cast<double>(out.net_retries));
    json.AddField("net_retry_backoff_us", static_cast<double>(out.backoff_us));
    json.AddField("ps_dedup_hits", static_cast<double>(out.dedup_hits));
    return out;
  };

  std::printf("-- task failures (paper's sweep)\n");
  std::printf("%-14s %-14s %-12s %-14s\n", "failure prob", "total time(s)",
              "final loss", "task retries");
  SimTime t_clean = 0;
  for (double p : {0.0, 0.01, 0.1}) {
    ClusterSpec spec;
    spec.task_failure_prob = p;
    RunResult r = train(spec, "task_p" + std::to_string(p));
    if (p == 0.0) t_clean = r.time;
    std::printf("%-14.2f %-14.3f %-12.4f %-14llu\n", p, r.time,
                r.report.final_loss,
                static_cast<unsigned long long>(r.task_retries));
  }
  std::printf("(time ratios vs p=0 correspond to the paper's 66/74/127s "
              "shape; clean run took %.3f virtual s here)\n\n", t_clean);

  std::printf("-- message-level faults (lost requests/responses, retried "
              "with dedup)\n");
  std::printf("%-14s %-14s %-12s %-10s %-14s %-12s\n", "msg-fault prob",
              "total time(s)", "final loss", "retries", "backoff(us)",
              "dedup hits");
  SimTime msg_clean = 0;
  for (double p : {0.0, 0.01, 0.05}) {
    ClusterSpec spec;
    spec.message_failure_prob = p;
    RunResult r = train(spec, "msg_p" + std::to_string(p));
    if (p == 0.0) msg_clean = r.time;
    const double penalty = r.time - msg_clean;
    json.AddField("retry_penalty_s", penalty);
    std::printf("%-14.2f %-14.3f %-12.4f %-10llu %-14llu %-12llu\n", p,
                r.time, r.report.final_loss,
                static_cast<unsigned long long>(r.net_retries),
                static_cast<unsigned long long>(r.backoff_us),
                static_cast<unsigned long long>(r.dedup_hits));
    std::printf("  retry_penalty vs p=0: %.3f virtual s\n", penalty);
  }
  std::printf("(retries re-send identical idempotent payloads: the final "
              "loss column must be identical across the sweep)\n");
  json.Write();
  return 0;
}
