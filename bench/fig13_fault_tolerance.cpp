// Figure 13(c) (paper §6.5): fault tolerance under injected task failures.
// Paper: with failure probability 0 / 0.01 / 0.1 the training takes
// 66s / 74s / 127s and all three runs converge to the same solution.

#include "bench/bench_common.h"
#include "data/classification_gen.h"
#include "data/presets.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"

int main() {
  using namespace ps2;
  bench::Header("Figure 13(c): task-failure tolerance",
                "p = 0 / 0.01 / 0.1 -> 66s / 74s / 127s, same final loss");
  const double scale = bench::Scale();
  ClassificationSpec ds = presets::KddbLike(scale);

  std::printf("%-14s %-14s %-12s %-14s\n", "failure prob", "total time(s)",
              "final loss", "task retries");
  SimTime t_clean = 0;
  for (double p : {0.0, 0.01, 0.1}) {
    ClusterSpec spec;
    spec.num_workers = 20;
    spec.num_servers = 20;
    spec.task_failure_prob = p;
    Cluster cluster(spec);
    Dataset<Example> data = MakeClassificationDataset(&cluster, ds).Cache();
    data.Count();
    DcvContext ctx(&cluster);
    GlmOptions options;
    options.dim = ds.dim;
    options.optimizer.kind = OptimizerKind::kAdam;
    options.optimizer.learning_rate = 0.05;
    options.batch_fraction = 0.01;
    options.iterations = 60;
    TrainReport report = *TrainGlmPs2(&ctx, data, options);
    if (p == 0.0) t_clean = report.total_time;
    std::printf("%-14.2f %-14.3f %-12.4f %-14llu\n", p, report.total_time,
                report.final_loss,
                static_cast<unsigned long long>(
                    cluster.metrics().Get("cluster.task_retries")));
  }
  std::printf("\n(time ratios vs p=0 correspond to the paper's 66/74/127s "
              "shape; clean run took %.3f virtual s here)\n", t_clean);
  return 0;
}
