// Ablation (paper §4.3, Fig. 4): the cost of ignoring dimension
// co-location. The same `dot` and element-wise ops run on (a) derived
// (co-located) DCVs and (b) independently created DCVs, across model sizes.

#include "bench/bench_common.h"
#include "dcv/dcv_context.h"

int main() {
  using namespace ps2;
  bench::Header("Ablation: co-located vs non-co-located DCV ops (Fig. 4)",
                "derive keeps element-wise ops server-local; independent "
                "creation pays the pull-compute-push path");

  std::printf("%-12s %-16s %-16s %-10s %-16s %-16s\n", "dim",
              "dot co-loc (s)", "dot naive (s)", "speedup", "bytes co-loc",
              "bytes naive");
  for (uint64_t dim : {100000ULL, 1000000ULL, 10000000ULL}) {
    ClusterSpec spec;
    spec.num_workers = 20;
    spec.num_servers = 20;
    Cluster cluster(spec);
    DcvContext ctx(&cluster);
    Dcv a = *ctx.Dense(dim, 2);
    Dcv b = *ctx.Derive(a);
    Dcv c = *ctx.Dense(dim, 2);  // same shape, different rotation

    cluster.metrics().Reset();
    SimTime t0 = cluster.clock().Now();
    (void)*a.Dot(b);
    SimTime colocated = cluster.clock().Now() - t0;
    uint64_t colocated_bytes =
        cluster.metrics().Get("net.bytes_worker_to_server") +
        cluster.metrics().Get("net.bytes_server_to_worker");

    cluster.metrics().Reset();
    t0 = cluster.clock().Now();
    (void)*a.Dot(c);
    SimTime naive = cluster.clock().Now() - t0;
    uint64_t naive_bytes =
        cluster.metrics().Get("net.bytes_worker_to_server") +
        cluster.metrics().Get("net.bytes_server_to_worker");

    std::printf("%-12llu %-16.6f %-16.6f %-10.1f %-16llu %-16llu\n",
                static_cast<unsigned long long>(dim), colocated, naive,
                naive / colocated,
                static_cast<unsigned long long>(colocated_bytes),
                static_cast<unsigned long long>(naive_bytes));
  }

  std::printf("\nelement-wise Adam-style zip over 4 vectors, dim=1M:\n");
  {
    ClusterSpec spec;
    spec.num_workers = 20;
    spec.num_servers = 20;
    Cluster cluster(spec);
    DcvContext ctx(&cluster);
    const uint64_t dim = 1000000;
    Dcv w = *ctx.Dense(dim, 4);
    Dcv s = *ctx.Derive(w);
    Dcv v = *ctx.Derive(w);
    Dcv g = *ctx.Derive(w);
    Dcv w2 = *ctx.Dense(dim, 2);
    Dcv g2 = *ctx.Dense(dim, 2);  // non-co-located pair

    SimTime t0 = cluster.clock().Now();
    int udf = ctx.RegisterZip(
        [](const std::vector<double*>& rows, size_t n, uint64_t) -> uint64_t {
          for (size_t i = 0; i < n; ++i) rows[0][i] -= 0.1 * rows[3][i];
          return 2 * n;
        });
    (void)w.Zip({s, v, g}, udf);
    SimTime zip_time = cluster.clock().Now() - t0;

    t0 = cluster.clock().Now();
    (void)w2.Axpy(g2, -0.1);  // slow path: pull + push
    SimTime naive_time = cluster.clock().Now() - t0;
    std::printf("  zip (server-side): %.6fs | naive axpy across rotations: "
                "%.6fs -> %.1fx\n",
                zip_time, naive_time, naive_time / zip_time);
  }
  return 0;
}
