// Figure 11 (paper §6.3.2): GBDT on Gender-like data — PS2 (sharded
// histogram push + server-side split finding) vs XGBoost (histogram
// allreduce). Paper: PS2 3.3x faster (2435s vs 7942s for 100 trees);
// Spark MLlib OOMs on this dataset and is reported as absent.

#include "baselines/xgboost_gbdt.h"
#include "bench/bench_common.h"
#include "data/gbdt_gen.h"
#include "data/presets.h"
#include "dcv/dcv_context.h"
#include "ml/gbdt/gbdt.h"

int main() {
  using namespace ps2;
  bench::Header("Figure 11: GBDT — PS2 vs XGBoost",
                "PS2 3.3x faster to 100 trees (2435s vs 7942s); MLlib OOMs");
  const double scale = bench::Scale();

  ClusterSpec spec;
  spec.num_workers = 20;
  spec.num_servers = 20;
  Cluster cluster(spec);
  GbdtDataSpec ds;
  ds.rows = static_cast<uint64_t>(40000 * scale);
  ds.num_features = static_cast<uint32_t>(500 * scale);
  std::printf("dataset Gender-like: %llu rows x %u features\n",
              static_cast<unsigned long long>(ds.rows), ds.num_features);
  Dataset<GbdtRow> data = MakeGbdtDataset(&cluster, ds).Cache();
  data.Count();

  GbdtOptions options;
  options.num_features = ds.num_features;
  options.num_trees = 25;       // paper: 100; scaled for wall-clock
  options.max_depth = 7;        // paper Table 4
  options.num_bins = 50;        // paper Table 4: 100; scaled
  options.learning_rate = 0.1;  // paper Table 4

  DcvContext ctx(&cluster);
  GbdtReport ps2 = *TrainGbdtPs2(&ctx, data, options);
  GbdtReport xgb = *TrainGbdtXgboost(&cluster, data, options);

  bench::PrintCurve(ps2.report, 6);
  bench::PrintCurve(xgb.report, 6);

  std::printf("\n%-10s %-14s %-16s\n", "system", "trees built",
              "virtual time (s)");
  std::printf("%-10s %-14zu %-16.2f\n", "PS2", ps2.model.trees.size(),
              ps2.report.total_time);
  std::printf("%-10s %-14zu %-16.2f\n", "XGBoost", xgb.model.trees.size(),
              xgb.report.total_time);
  std::printf("speedup: %.2fx (paper: 3.3x)\n",
              xgb.report.total_time / ps2.report.total_time);
  std::printf("loss agreement (identical trees): PS2 %.6f vs XGBoost %.6f\n",
              ps2.report.final_loss, xgb.report.final_loss);
  std::printf("Spark MLlib: not run — OOMs on this dataset (as in the "
              "paper)\n");
  return 0;
}
