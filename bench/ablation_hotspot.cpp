// Ablation (DESIGN.md §5d): hot-parameter management on skewed LR.
//
// Power-law feature popularity makes every worker pull the same weight row
// every iteration. With hotspot management on, the master replicates that
// row to all servers and warms the shared client cache after each update,
// so steady-state pulls are served locally and only the periodic replica
// sync crosses the network. The sweep compares hotspot off vs on across
// skew levels: at skew >= 2.0 the pulled (server->worker) bytes should drop
// by >= 2x and the virtual time should be strictly lower, at a final loss
// within the configured staleness bound.

#include "bench/bench_common.h"
#include "data/classification_gen.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"

namespace {

using namespace ps2;

struct RunResult {
  TrainReport report;
  uint64_t pulled_bytes = 0;   // server -> worker
  uint64_t pushed_bytes = 0;   // worker -> server
  uint64_t local_hits = 0;     // pulls served from the client cache
};

RunResult RunOnce(double skew, bool hotspot_on) {
  ClusterSpec spec;
  spec.num_workers = 8;
  spec.num_servers = 8;
  Cluster cluster(spec);

  ClassificationSpec ds;
  ds.rows = 20000;
  ds.dim = 4096;
  ds.avg_nnz = 32;
  ds.skew = skew;
  ds.seed = 11;
  Dataset<Example> data = MakeClassificationDataset(&cluster, ds).Cache();
  data.Count();

  GlmOptions options;
  options.dim = ds.dim;
  options.optimizer.kind = OptimizerKind::kSgd;
  options.optimizer.learning_rate = 0.5;
  options.batch_fraction = 0.1;
  options.iterations = 25;
  options.seed = 5;
  if (hotspot_on) {
    options.hotspot.enabled = true;
    options.hotspot.top_k = 4;
    options.hotspot.min_pull_count = 8;
    options.hotspot.refresh_every = 2;
    options.hotspot.sync_every = 2;  // bounded staleness: 2 iterations
    options.hotspot.staleness_epochs = 1;
  }

  cluster.metrics().Reset();
  DcvContext ctx(&cluster);
  RunResult out;
  out.report = *TrainGlmPs2(&ctx, data, options);
  out.pulled_bytes = cluster.metrics().Get("net.bytes_server_to_worker");
  out.pushed_bytes = cluster.metrics().Get("net.bytes_worker_to_server");
  out.local_hits = cluster.metrics().Get("net.local_pull_hits");
  return out;
}

}  // namespace

int main() {
  using namespace ps2;
  bench::Header("Ablation: hot-parameter management on skewed LR",
                "replicated hot rows + client cache vs plain sparse pulls "
                "(DESIGN.md §5d)");
  bench::JsonReporter json("ablation_hotspot");

  std::printf("%-6s %-14s %-14s %-8s %-11s %-11s %-9s %-9s %-10s\n", "skew",
              "pulled off", "pulled on", "pull x", "time off", "time on",
              "loss off", "loss on", "cache hits");
  for (double skew : {1.2, 2.0, 3.0}) {
    RunResult off = RunOnce(skew, /*hotspot_on=*/false);
    RunResult on = RunOnce(skew, /*hotspot_on=*/true);
    std::printf(
        "%-6.1f %-14llu %-14llu %-8.2f %-11.4f %-11.4f %-9.4f %-9.4f "
        "%-10llu\n",
        skew, static_cast<unsigned long long>(off.pulled_bytes),
        static_cast<unsigned long long>(on.pulled_bytes),
        static_cast<double>(off.pulled_bytes) /
            static_cast<double>(on.pulled_bytes),
        off.report.total_time, on.report.total_time, off.report.final_loss,
        on.report.final_loss, static_cast<unsigned long long>(on.local_hits));

    char run[32];
    std::snprintf(run, sizeof(run), "skew%.1f", skew);
    json.BeginRun(std::string(run) + ".off");
    json.AddField("virtual_time_s", off.report.total_time);
    json.AddField("pulled_bytes", static_cast<double>(off.pulled_bytes));
    json.AddField("pushed_bytes", static_cast<double>(off.pushed_bytes));
    json.AddField("final_loss", off.report.final_loss);
    json.BeginRun(std::string(run) + ".on");
    json.AddField("virtual_time_s", on.report.total_time);
    json.AddField("pulled_bytes", static_cast<double>(on.pulled_bytes));
    json.AddField("pushed_bytes", static_cast<double>(on.pushed_bytes));
    json.AddField("final_loss", on.report.final_loss);
    json.AddField("local_pull_hits", static_cast<double>(on.local_hits));
  }
  json.Write();
  return 0;
}
