// Ablation (paper §5.3): checkpoint frequency — the trade between
// checkpoint overhead during healthy training and the work lost when a
// server fails and recovers from the last checkpoint.

#include "bench/bench_common.h"
#include "data/classification_gen.h"
#include "data/presets.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"

int main() {
  using namespace ps2;
  bench::Header("Ablation: PS checkpoint interval",
                "overhead while healthy vs loss-of-work on server failure");
  const double scale = bench::Scale();
  ClassificationSpec ds = presets::KddbLike(scale);

  std::printf("%-20s %-16s %-16s %-14s\n", "checkpoint every",
              "total time(s)", "checkpoints", "overhead vs off");
  SimTime baseline = 0;
  for (int every : {0, 50, 20, 5}) {
    ClusterSpec spec;
    spec.num_workers = 20;
    spec.num_servers = 20;
    Cluster cluster(spec);
    Dataset<Example> data = MakeClassificationDataset(&cluster, ds).Cache();
    data.Count();
    DcvContext ctx(&cluster);
    GlmOptions options;
    options.dim = ds.dim;
    options.optimizer.kind = OptimizerKind::kAdam;
    options.optimizer.learning_rate = 0.03;
    options.batch_fraction = 0.01;
    options.iterations = 100;
    options.checkpoint_every = every;
    Result<TrainReport> report = TrainGlmPs2(&ctx, data, options);
    if (!report.ok()) {
      std::printf("%-20d FAILED: %s\n", every,
                  report.status().ToString().c_str());
      continue;
    }
    if (every == 0) baseline = report->total_time;
    std::printf("%-20s %-16.3f %-16llu %+.1f%%\n",
                every == 0 ? "off" : std::to_string(every).c_str(),
                report->total_time,
                static_cast<unsigned long long>(
                    cluster.metrics().Get("ps.checkpoints")),
                100.0 * (report->total_time - baseline) / baseline);
  }
  std::printf("\nrecovery semantics: a failed server restores its latest "
              "checkpointed shard,\nlosing at most checkpoint_every "
              "iterations of its slice (see tests/ps/checkpoint_test.cc).\n");
  return 0;
}
