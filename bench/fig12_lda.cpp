// Figure 12 (paper §6.3.3): LDA comparison.
//  (a) PubMED-like, K=1000: PS2 vs Petuum vs Glint  (paper: 3.7x, 9x)
//  (b) PubMED-like, K=100:  PS2 vs Spark MLlib      (paper: 17x)
//  (c) App-like (the largest corpus): PS2 only — the other systems cannot
//      run it; we demonstrate feasibility and report throughput.

#include "baselines/glint_lda.h"
#include "baselines/mllib_lda.h"
#include "baselines/petuum_lda.h"
#include "bench/bench_common.h"
#include "data/corpus_gen.h"
#include "data/presets.h"
#include "dcv/dcv_context.h"
#include "ml/lda/lda_trainer.h"

int main() {
  using namespace ps2;
  const double scale = bench::Scale();

  bench::Header("Figure 12(a): LDA PubMED-like, K=1000 — PS2/Petuum/Glint",
                "PS2 3.7x faster than Petuum, 9x faster than Glint");
  {
    ClusterSpec spec;
    spec.num_workers = 20;
    spec.num_servers = 20;
    Cluster cluster(spec);
    CorpusSpec corpus = presets::PubmedLike(scale * 0.2);  // K=1000 is heavy
    Dataset<Document> docs = MakeCorpusDataset(&cluster, corpus).Cache();
    docs.Count();
    LdaOptions options;
    options.vocab_size = corpus.vocab_size;
    options.num_topics = 1000;
    options.iterations = 5;

    DcvContext ctx_ps2(&cluster);
    TrainReport ps2 = *TrainLdaPs2(&ctx_ps2, docs, options);
    DcvContext ctx_petuum(&cluster);
    TrainReport petuum = *TrainLdaPetuum(&ctx_petuum, docs, options);
    DcvContext ctx_glint(&cluster);
    TrainReport glint = *TrainLdaGlint(&ctx_glint, docs, options, 20);

    bench::PrintCurve(ps2, 5);
    bench::PrintCurve(petuum, 5);
    bench::PrintCurve(glint, 5);
    std::printf("   total time: PS2 %.2fs | Petuum %.2fs (%.2fx) | Glint "
                "%.2fs (%.2fx)   [paper: 3.7x, 9x]\n",
                ps2.total_time, petuum.total_time,
                petuum.total_time / ps2.total_time, glint.total_time,
                glint.total_time / ps2.total_time);
  }

  bench::Header("Figure 12(b): LDA PubMED-like, K=100 — PS2 vs Spark MLlib",
                "PS2 17x faster; MLlib cannot run K>100 (OOM)");
  {
    ClusterSpec spec;
    spec.num_workers = 20;
    spec.num_servers = 20;
    Cluster cluster(spec);
    CorpusSpec corpus = presets::PubmedLike(scale);
    Dataset<Document> docs = MakeCorpusDataset(&cluster, corpus).Cache();
    docs.Count();
    LdaOptions options;
    options.vocab_size = corpus.vocab_size;
    options.num_topics = 100;
    options.iterations = 8;

    DcvContext ctx(&cluster);
    TrainReport ps2 = *TrainLdaPs2(&ctx, docs, options);
    TrainReport mllib = *TrainLdaMllib(&cluster, docs, options);
    bench::PrintCurve(ps2, 5);
    bench::PrintCurve(mllib, 5);
    std::printf("   total time: PS2 %.2fs | MLlib %.2fs -> %.2fx   "
                "[paper: 17x]\n",
                ps2.total_time, mllib.total_time,
                mllib.total_time / ps2.total_time);
    // Confirm the OOM behaviour at large K.
    LdaOptions big = options;
    big.num_topics = 1000;
    Result<TrainReport> oom = TrainLdaMllib(&cluster, docs, big);
    std::printf("   MLlib at K=1000: %s\n",
                oom.ok() ? "unexpectedly ran"
                         : oom.status().ToString().c_str());
  }

  bench::Header("Figure 12(c): LDA App-like at K=1000 — PS2 only",
                "only PS2 can train the largest corpus");
  {
    ClusterSpec spec;
    spec.num_workers = 20;
    spec.num_servers = 20;
    Cluster cluster(spec);
    CorpusSpec corpus = presets::AppLike(scale * 0.1);
    Dataset<Document> docs = MakeCorpusDataset(&cluster, corpus).Cache();
    size_t n_docs = docs.Count();
    LdaOptions options;
    options.vocab_size = corpus.vocab_size;
    options.num_topics = 1000;
    options.iterations = 4;
    DcvContext ctx(&cluster);
    TrainReport ps2 = *TrainLdaPs2(&ctx, docs, options);
    bench::PrintCurve(ps2, 4);
    std::printf("   %zu docs, K=1000: converging (loss %.4f -> %.4f) in "
                "%.2f virtual s\n",
                n_docs, ps2.curve.front().loss, ps2.final_loss,
                ps2.total_time);
  }
  return 0;
}
