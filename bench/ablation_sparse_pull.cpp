// Ablation (paper §6.3.1): PS2's sparse communication — "when pulling model
// vectors from parameter server, PS2 supports sparse communication and only
// pulls the needed model parameters. However, Petuum has to pull all of the
// model." Sweeps the batch fraction and compares sparse-pull traffic/time
// against full-model pulls, plus the LDA-style varint count compression.

#include <algorithm>

#include "bench/bench_common.h"
#include "data/classification_gen.h"
#include "data/presets.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"

int main() {
  using namespace ps2;
  bench::Header("Ablation: sparse pull vs full-model pull",
                "the mechanism behind PS2's 1.6-2.3x edge over Petuum");

  ClusterSpec spec;
  spec.num_workers = 20;
  spec.num_servers = 20;
  Cluster cluster(spec);
  const double scale = bench::Scale();
  ClassificationSpec ds = presets::Kdd12Like(scale);
  Dataset<Example> data = MakeClassificationDataset(&cluster, ds).Cache();
  data.Count();
  DcvContext ctx(&cluster);
  Dcv weight = *ctx.Dense(ds.dim, 2);

  std::printf("%-14s %-16s %-18s %-12s\n", "batch frac", "touched params",
              "sparse bytes", "vs full pull");
  const uint64_t full_bytes = ds.dim * 8 * 20;  // every worker, dense
  for (double fraction : {0.001, 0.01, 0.05, 0.2}) {
    cluster.metrics().Reset();
    Dataset<Example> batch = data.Sample(fraction, 99);
    std::vector<size_t> counts = batch.MapPartitionsCollect<size_t>(
        [&](TaskContext&, const std::vector<Example>& rows) {
          std::vector<uint64_t> indices = CollectBatchIndices(rows);
          Result<std::vector<double>> pulled = weight.PullSparse(indices);
          PS2_CHECK(pulled.ok());
          return indices.size();
        });
    size_t touched = 0;
    for (size_t c : counts) touched += c;
    uint64_t sparse_bytes =
        cluster.metrics().Get("net.bytes_worker_to_server") +
        cluster.metrics().Get("net.bytes_server_to_worker");
    std::printf("%-14.3f %-16zu %-18llu %.1fx smaller\n", fraction, touched,
                static_cast<unsigned long long>(sparse_bytes),
                static_cast<double>(full_bytes) / sparse_bytes);
  }
  std::printf("(full dense pull by all 20 workers would move %llu bytes per "
              "iteration)\n",
              static_cast<unsigned long long>(full_bytes));

  std::printf("\ncount compression (LDA word-topic pulls):\n");
  {
    Dcv counts_row = *ctx.Dense(200000, 2, 1, 0, "ablation.counts");
    // Integer-valued content, as LDA count tables are.
    SparseVector init;
    {
      std::vector<uint64_t> idx;
      std::vector<double> val;
      Rng rng(3);
      for (uint64_t i = 0; i < 200000; i += 7) {
        idx.push_back(i);
        val.push_back(static_cast<double>(rng.NextUint64(50)));
      }
      init = SparseVector(std::move(idx), std::move(val));
    }
    PS2_CHECK_OK(counts_row.Add(init));
    std::vector<uint64_t> indices;
    for (uint64_t i = 0; i < 200000; i += 7) indices.push_back(i);

    // One blocking round whose bytes we meter in isolation.
    cluster.metrics().Reset();
    PS2_CHECK(ctx.client()
                  ->PullSparseRowsAsync({counts_row.ref()}, indices, false)
                  .Get()
                  .ok());
    uint64_t plain = cluster.metrics().Get("net.bytes_server_to_worker");
    cluster.metrics().Reset();
    PS2_CHECK(ctx.client()
                  ->PullSparseRowsAsync({counts_row.ref()}, indices, true)
                  .Get()
                  .ok());
    uint64_t packed = cluster.metrics().Get("net.bytes_server_to_worker");
    std::printf("  f64 values: %llu bytes | varint counts: %llu bytes -> "
                "%.1fx smaller\n",
                static_cast<unsigned long long>(plain),
                static_cast<unsigned long long>(packed),
                static_cast<double>(plain) / packed);
  }
  return 0;
}
