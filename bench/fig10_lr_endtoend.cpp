// Figure 10 (paper §6.3.1): end-to-end LR (SGD) comparison on KDDB-like and
// KDD12-like data across PS2, Spark MLlib, DistML and Petuum.
// Paper: PS2 converges fastest (1.6x over Petuum on KDDB, 2.3x on KDD12);
// MLlib slowest; DistML does not converge on KDDB.

#include "baselines/distml_lr.h"
#include "baselines/mllib_lr.h"
#include "baselines/petuum_lr.h"
#include "bench/bench_common.h"
#include "data/classification_gen.h"
#include "data/presets.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"

namespace {

using namespace ps2;

void RunDataset(const char* name, const ClassificationSpec& ds,
                double target_loss, bench::JsonReporter* json) {
  std::printf("\n--- dataset %s: %llu rows x %llu cols ---\n", name,
              static_cast<unsigned long long>(ds.rows),
              static_cast<unsigned long long>(ds.dim));
  ClusterSpec spec;
  spec.num_workers = 20;  // paper: 20 executors/servers
  spec.num_servers = 20;
  Cluster cluster(spec);
  Dataset<Example> data = MakeClassificationDataset(&cluster, ds).Cache();
  data.Count();

  GlmOptions options;
  options.dim = ds.dim;
  options.optimizer.kind = OptimizerKind::kSgd;
  options.optimizer.learning_rate = 50.0;  // tuned for the synthetic data
  options.batch_fraction = 0.01;
  options.iterations = 150;

  auto record = [&](const std::string& run, const Cluster& c,
                    const TrainReport& r) {
    json->AddRun(std::string(name) + "." + run, c, r.total_time);
    json->AddField("final_loss", r.final_loss);
    json->AddField("time_to_target_s", r.TimeToLoss(target_loss));
  };
  cluster.metrics().Reset();
  DcvContext ctx_ps2(&cluster);
  TrainReport ps2 = *TrainGlmPs2(&ctx_ps2, data, options);
  record("ps2_sgd", cluster, ps2);
  cluster.metrics().Reset();
  MllibReport mllib = *TrainGlmMllib(&cluster, data, options);
  record("mllib_sgd", cluster, mllib.report);
  cluster.metrics().Reset();
  DcvContext ctx_petuum(&cluster);
  TrainReport petuum = *TrainGlmPetuum(&ctx_petuum, data, options);
  record("petuum_sgd", cluster, petuum);
  cluster.metrics().Reset();
  DcvContext ctx_distml(&cluster);
  Result<TrainReport> distml = TrainGlmDistml(&ctx_distml, data, options);

  // Wire-filter sweep: PS2-SGD again with the full filter chain on its own
  // cluster, for the bytes-per-epoch comparison against ps2_sgd above.
  ClusterSpec spec_filters = spec;
  spec_filters.filters = *FilterConfig::Parse("keycache,delta,compress");
  Cluster cluster_filters(spec_filters);
  Dataset<Example> data_filters =
      MakeClassificationDataset(&cluster_filters, ds).Cache();
  data_filters.Count();
  cluster_filters.metrics().Reset();
  DcvContext ctx_filters(&cluster_filters);
  TrainReport ps2_filtered = *TrainGlmPs2(&ctx_filters, data_filters, options);
  record("ps2_sgd_filters", cluster_filters, ps2_filtered);
  {
    const uint64_t wire = cluster_filters.metrics().Get("net.bytes_wire");
    const uint64_t logical = cluster_filters.metrics().Get("net.bytes_logical");
    std::printf("-- wire filters (%s): %llu logical -> %llu wire bytes "
                "(%.2fx), loss %.4f vs %.4f unfiltered\n",
                spec_filters.filters.ToString().c_str(),
                static_cast<unsigned long long>(logical),
                static_cast<unsigned long long>(wire),
                wire > 0 ? static_cast<double>(logical) / wire : 1.0,
                ps2_filtered.final_loss, ps2.final_loss);
  }

  bench::PrintCurve(ps2, 6);
  bench::PrintCurve(petuum, 6);
  bench::PrintCurve(mllib.report, 6);
  if (distml.ok()) {
    bench::PrintCurve(*distml, 6);
  } else {
    std::printf("-- DistML: %s\n", distml.status().ToString().c_str());
  }

  bench::PrintSpeedup(ps2, petuum, target_loss);
  bench::PrintSpeedup(ps2, mllib.report, target_loss);
  if (distml.ok()) {
    std::printf("   DistML final loss %.4f (PS2 %.4f)%s\n",
                distml->final_loss, ps2.final_loss,
                distml->final_loss > ps2.final_loss + 0.05
                    ? " — fails to converge as in the paper"
                    : "");
  }
}

}  // namespace

int main() {
  using namespace ps2;
  bench::Header("Figure 10: end-to-end LR (SGD) comparison",
                "PS2 fastest (1.6x/2.3x over Petuum); MLlib slowest; DistML "
                "non-convergent on KDDB");
  const double scale = bench::Scale();
  bench::JsonReporter json("fig10_lr_endtoend");
  RunDataset("KDDB-like", presets::KddbLike(scale), 0.62, &json);
  RunDataset("KDD12-like", presets::Kdd12Like(scale), 0.62, &json);
  json.Write();
  return 0;
}
