// Wall-clock microbenchmarks of the DCV operator set (google-benchmark).
// These measure the real in-process implementation cost (serialization,
// routing, server kernels), complementing the virtual-time figure benches.

#include <benchmark/benchmark.h>

#include "dcv/dcv_context.h"

namespace ps2 {
namespace {

struct Fixture {
  Fixture() : cluster(MakeSpec()), ctx(&cluster) {}

  static ClusterSpec MakeSpec() {
    ClusterSpec spec;
    spec.num_workers = 8;
    spec.num_servers = 8;
    return spec;
  }

  Cluster cluster;
  DcvContext ctx;
};

void BM_PushDense(benchmark::State& state) {
  Fixture f;
  const uint64_t dim = state.range(0);
  Dcv v = *f.ctx.Dense(dim, 2);
  std::vector<double> values(dim, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Push(values));
  }
  state.SetBytesProcessed(state.iterations() * dim * 8);
}
BENCHMARK(BM_PushDense)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_PullDense(benchmark::State& state) {
  Fixture f;
  const uint64_t dim = state.range(0);
  Dcv v = *f.ctx.Dense(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Pull());
  }
  state.SetBytesProcessed(state.iterations() * dim * 8);
}
BENCHMARK(BM_PullDense)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_PullSparse(benchmark::State& state) {
  Fixture f;
  const uint64_t dim = 1000000;
  Dcv v = *f.ctx.Dense(dim, 2);
  std::vector<uint64_t> indices;
  for (uint64_t i = 0; i < static_cast<uint64_t>(state.range(0)); ++i) {
    indices.push_back(i * (dim / state.range(0)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.PullSparse(indices));
  }
  state.SetItemsProcessed(state.iterations() * indices.size());
}
BENCHMARK(BM_PullSparse)->Arg(100)->Arg(10000);

void BM_Dot(benchmark::State& state) {
  Fixture f;
  const uint64_t dim = state.range(0);
  Dcv a = *f.ctx.Dense(dim, 2);
  Dcv b = *f.ctx.Derive(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Dot(b));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_Dot)->Arg(100000)->Arg(1000000);

void BM_ZipAdamStyle(benchmark::State& state) {
  Fixture f;
  const uint64_t dim = state.range(0);
  Dcv w = *f.ctx.Dense(dim, 4);
  Dcv s = *f.ctx.Derive(w);
  Dcv v = *f.ctx.Derive(w);
  Dcv g = *f.ctx.Derive(w);
  int udf = f.ctx.RegisterZip(
      [](const std::vector<double*>& rows, size_t n, uint64_t) -> uint64_t {
        for (size_t i = 0; i < n; ++i) {
          rows[1][i] = 0.999 * rows[1][i] + 0.001 * rows[3][i] * rows[3][i];
          rows[2][i] = 0.9 * rows[2][i] + 0.1 * rows[3][i];
          rows[0][i] -= 0.05 * rows[2][i];
        }
        return 8 * n;
      });
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.Zip({s, v, g}, udf));
  }
  state.SetItemsProcessed(state.iterations() * dim * 4);
}
BENCHMARK(BM_ZipAdamStyle)->Arg(100000)->Arg(1000000);

void BM_DotBatch(benchmark::State& state) {
  Fixture f;
  const uint32_t rows = 1000;
  std::vector<Dcv> embeddings = *f.ctx.DenseMatrix(100, rows, 0.1, 1);
  std::vector<std::pair<RowRef, RowRef>> pairs;
  for (uint32_t i = 0; i < static_cast<uint32_t>(state.range(0)); ++i) {
    pairs.push_back({embeddings[i % rows].ref(),
                     embeddings[(i * 7 + 1) % rows].ref()});
  }
  // Benchmarks the deprecated blocking wrapper on purpose, as the serial
  // baseline the async DotBatchAsync numbers are compared against.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ctx.client()->DotBatch(pairs));
  }
#pragma GCC diagnostic pop
  state.SetItemsProcessed(state.iterations() * pairs.size());
}
BENCHMARK(BM_DotBatch)->Arg(512);

}  // namespace
}  // namespace ps2

BENCHMARK_MAIN();
