// Wall-clock microbenchmarks of the DCV operator set (google-benchmark).
// These measure the real in-process implementation cost (serialization,
// routing, server kernels), complementing the virtual-time figure benches.
//
// Besides the google-benchmark timing loops, main() always runs a
// deterministic kernel-equivalence section and writes
// BENCH_microbench_dcv_ops.json: the "det" run drives a fixed DCV workload
// through whichever kernel backend is active (honouring $PS2_SIMD) and
// records `det.*` metrics that must be IDENTICAL across dispatch modes —
// CI runs this binary with and without PS2_SIMD=off and diffs the two JSON
// files through tools/check_bench.py --tolerance 0. `wall.*` fields record
// raw kernel timings per backend (informational, never gated).
// `--benchmark_filter='^$'` skips the timing loops and keeps only that
// section, which is what the equivalence CI step uses.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "bench/bench_common.h"
#include "dcv/dcv_context.h"
#include "linalg/kernels/kernels.h"

namespace ps2 {
namespace {

struct Fixture {
  Fixture() : cluster(MakeSpec()), ctx(&cluster) {}

  static ClusterSpec MakeSpec() {
    ClusterSpec spec;
    spec.num_workers = 8;
    spec.num_servers = 8;
    return spec;
  }

  Cluster cluster;
  DcvContext ctx;
};

void BM_PushDense(benchmark::State& state) {
  Fixture f;
  const uint64_t dim = state.range(0);
  Dcv v = *f.ctx.Dense(dim, 2);
  std::vector<double> values(dim, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Push(values));
  }
  state.SetBytesProcessed(state.iterations() * dim * 8);
}
BENCHMARK(BM_PushDense)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_PullDense(benchmark::State& state) {
  Fixture f;
  const uint64_t dim = state.range(0);
  Dcv v = *f.ctx.Dense(dim, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Pull());
  }
  state.SetBytesProcessed(state.iterations() * dim * 8);
}
BENCHMARK(BM_PullDense)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_PullSparse(benchmark::State& state) {
  Fixture f;
  const uint64_t dim = 1000000;
  Dcv v = *f.ctx.Dense(dim, 2);
  std::vector<uint64_t> indices;
  for (uint64_t i = 0; i < static_cast<uint64_t>(state.range(0)); ++i) {
    indices.push_back(i * (dim / state.range(0)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.PullSparse(indices));
  }
  state.SetItemsProcessed(state.iterations() * indices.size());
}
BENCHMARK(BM_PullSparse)->Arg(100)->Arg(10000);

void BM_Dot(benchmark::State& state) {
  Fixture f;
  const uint64_t dim = state.range(0);
  Dcv a = *f.ctx.Dense(dim, 2);
  Dcv b = *f.ctx.Derive(a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Dot(b));
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_Dot)->Arg(100000)->Arg(1000000);

void BM_ZipAdamStyle(benchmark::State& state) {
  Fixture f;
  const uint64_t dim = state.range(0);
  Dcv w = *f.ctx.Dense(dim, 4);
  Dcv s = *f.ctx.Derive(w);
  Dcv v = *f.ctx.Derive(w);
  Dcv g = *f.ctx.Derive(w);
  int udf = f.ctx.RegisterZip(
      [](const std::vector<double*>& rows, size_t n, uint64_t) -> uint64_t {
        for (size_t i = 0; i < n; ++i) {
          rows[1][i] = 0.999 * rows[1][i] + 0.001 * rows[3][i] * rows[3][i];
          rows[2][i] = 0.9 * rows[2][i] + 0.1 * rows[3][i];
          rows[0][i] -= 0.05 * rows[2][i];
        }
        return 8 * n;
      });
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.Zip({s, v, g}, udf));
  }
  state.SetItemsProcessed(state.iterations() * dim * 4);
}
BENCHMARK(BM_ZipAdamStyle)->Arg(100000)->Arg(1000000);

void BM_DotBatch(benchmark::State& state) {
  Fixture f;
  const uint32_t rows = 1000;
  std::vector<Dcv> embeddings = *f.ctx.DenseMatrix(100, rows, 0.1, 1);
  std::vector<std::pair<RowRef, RowRef>> pairs;
  for (uint32_t i = 0; i < static_cast<uint32_t>(state.range(0)); ++i) {
    pairs.push_back({embeddings[i % rows].ref(),
                     embeddings[(i * 7 + 1) % rows].ref()});
  }
  // Benchmarks the blocking round on purpose, as the serial baseline the
  // pipelined DotBatchAsync numbers are compared against.
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.ctx.client()->DotBatchAsync(pairs).Get());
  }
  state.SetItemsProcessed(state.iterations() * pairs.size());
}
BENCHMARK(BM_DotBatch)->Arg(512);

// ---------------------------------------------------------------------------
// Deterministic equivalence + wall-clock kernel report (see file comment).

/// Integer-only pseudo-random pattern: identical on every libm/platform,
/// unlike sin()-style fills. ~1 in 16 elements is an exact zero so the
/// div-by-zero-maps-to-zero and nnz paths are exercised.
double PatternValue(uint64_t i) {
  const uint64_t h = (i * 2654435761ull + 12345ull) % 1000003ull;
  if (h % 16 == 0) return 0.0;
  return static_cast<double>(h) / 997.0 - 500.0;
}

std::vector<double> PatternVector(uint64_t dim, uint64_t salt) {
  std::vector<double> out(dim);
  for (uint64_t i = 0; i < dim; ++i) out[i] = PatternValue(i + salt);
  return out;
}

/// Fixed DCV workload through the active backend. dim = 1M splits into
/// 131072-wide server shards — exactly kParallelCutoff, so the chunked and
/// thread-pool kernel paths both run. All sizes are fixed (PS2_BENCH_SCALE
/// does not apply): the det run must be comparable across smoke and full CI.
void DeterministicSection(bench::JsonReporter* report) {
  Fixture f;
  const uint64_t dim = uint64_t{1} << 20;
  Dcv w = *f.ctx.Dense(dim, 4);
  Dcv g = *f.ctx.Derive(w);
  Dcv u = *f.ctx.Derive(w);
  (void)w.Set(PatternVector(dim, 0));
  (void)g.Set(PatternVector(dim, 7919));

  report->AddRun("det", f.cluster, f.cluster.clock().Now());
  // Informational (deliberately NOT det.*): it differs across dispatch
  // modes, which is the point — everything det.* must not.
  report->AddField("backend_is_simd",
                   kernels::ActiveMode() == kernels::SimdMode::kAvx2 ? 1 : 0);
  report->AddField("det.dot", *w.Dot(g));
  (void)w.Axpy(g, 0.5);
  report->AddField("det.axpy_norm2", *w.Norm2());
  (void)w.Scale(0.25);
  report->AddField("det.scale_sum", *w.Sum());
  (void)u.MulOf(w, g);
  report->AddField("det.mul_sum", *u.Sum());
  (void)u.DivOf(w, g);  // g holds exact zeros -> div maps them to 0
  report->AddField("det.div_norm2", *u.Norm2());
  report->AddField("det.nnz", *u.Nnz());
  (void)u.SubOf(w, g);
  report->AddField("det.sub_sum", *u.Sum());

  // GBDT histogram kernel on a fixed pattern.
  const uint32_t num_features = 32, num_bins = 64;
  const size_t num_rows = 4096;
  std::vector<uint16_t> bins(num_rows * num_features);
  for (size_t i = 0; i < bins.size(); ++i) {
    bins[i] = static_cast<uint16_t>((i * 2654435761ull) % num_bins);
  }
  std::vector<double> grad = PatternVector(num_rows, 31);
  std::vector<double> hess = PatternVector(num_rows, 63);
  std::vector<uint32_t> rows(num_rows);
  for (size_t i = 0; i < num_rows; ++i) rows[i] = static_cast<uint32_t>(i);
  const size_t hist = static_cast<size_t>(num_features) * num_bins;
  std::vector<double> gh(hist, 0.0), hh(hist, 0.0);
  kernels::HistAccumulate(bins.data(), grad.data(), hess.data(), rows.data(),
                          num_rows, num_features, num_bins, gh.data(),
                          hh.data());
  report->AddField("det.hist_grad_sum", kernels::Sum(gh.data(), hist));
  report->AddField("det.hist_hess_norm2sq", kernels::Norm2Sq(hh.data(), hist));
}

/// Best-of-N wall time of one kernel call, in nanoseconds.
template <typename Fn>
double TimeNs(int reps, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::nano>(t1 - t0).count());
  }
  return best;
}

/// Raw kernel dot/axpy under each available backend, at two shapes:
///  * "shard": 131072 elements — the per-server block a 1M-dim DCV op
///    actually runs as on the 8-server fixture (L2-resident, where the
///    SIMD speedup target applies);
///  * "1m": one contiguous 1M-element buffer (L3/DRAM-bandwidth-bound on
///    most machines, reported for context).
/// Wall-clock and machine-dependent: informational only (not `det.`, never
/// gated), but this is where the SIMD speedup acceptance number comes from.
void WallClockSection(bench::JsonReporter* report) {
  const size_t n_total = size_t{1} << 20;
  const size_t n_shard = n_total / 8;
  std::vector<double> a = PatternVector(n_total, 1);
  std::vector<double> b = PatternVector(n_total, 2);
  std::vector<double> y(n_total, 0.0);
  const int reps = 60;
  const kernels::SimdMode before = kernels::ActiveMode();

  struct Timing {
    bool ok = false;
    double dot_ns = 0.0;
    double axpy_ns = 0.0;
  };
  auto measure = [&](kernels::SimdMode mode, size_t n, const char* shape,
                     const char* tag) -> Timing {
    Timing t;
    if (!kernels::SetSimdMode(mode)) return t;
    t.ok = true;
    double sink = 0.0;
    t.dot_ns =
        TimeNs(reps, [&] { kernels::Dot(a.data(), b.data(), n, &sink); });
    t.axpy_ns =
        TimeNs(reps, [&] { kernels::Axpy(y.data(), a.data(), 0.5, n); });
    benchmark::DoNotOptimize(sink);
    benchmark::DoNotOptimize(y.data());
    report->AddField(std::string("wall.dot_ns.") + shape + "." + tag,
                     t.dot_ns);
    report->AddField(std::string("wall.axpy_ns.") + shape + "." + tag,
                     t.axpy_ns);
    std::printf("kernel %s @%s(%zu): dot %.0f ns, axpy %.0f ns\n", tag, shape,
                n, t.dot_ns, t.axpy_ns);
    return t;
  };

  report->BeginRun("wall");
  const struct {
    size_t n;
    const char* shape;
  } shapes[] = {{n_shard, "shard"}, {n_total, "1m"}};
  for (const auto& s : shapes) {
    const Timing scalar =
        measure(kernels::SimdMode::kScalar, s.n, s.shape, "scalar");
    const Timing simd =
        measure(kernels::SimdMode::kAvx2, s.n, s.shape, "avx2");
    if (scalar.ok && simd.ok) {
      const double dot_x = scalar.dot_ns / simd.dot_ns;
      const double axpy_x = scalar.axpy_ns / simd.axpy_ns;
      report->AddField(std::string("wall.dot_speedup.") + s.shape, dot_x);
      report->AddField(std::string("wall.axpy_speedup.") + s.shape, axpy_x);
      std::printf("simd speedup @%s: dot %.2fx, axpy %.2fx\n", s.shape, dot_x,
                  axpy_x);
    }
  }
  kernels::SetSimdMode(before);
}

}  // namespace
}  // namespace ps2

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  std::printf("kernel backend (active): %s\n",
              ps2::kernels::SimdModeName(ps2::kernels::ActiveMode()));
  ps2::bench::JsonReporter report("microbench_dcv_ops");
  ps2::DeterministicSection(&report);
  ps2::WallClockSection(&report);
  report.Write();
  return 0;
}
