// Figure 13(a)/(b) (paper §6.4): scalability of PS2.
//  (a) workers/servers sweep on CTR-like data: (50,50) -> (100,50) ->
//      (100,100); paper sees ~2.05x at doubled resources (network failures
//      at low resources make it slightly super-linear).
//  (b) model-size sweep at 20 workers/20 servers: PS2's time per iteration
//      grows 8.5x from 40K to 60,000K features while MLlib's grows 168x.

#include "baselines/mllib_lr.h"
#include "bench/bench_common.h"
#include "data/classification_gen.h"
#include "data/presets.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"

namespace {

using namespace ps2;

SimTime RunPs2(int workers, int servers, double failure_prob,
               const ClassificationSpec& ds, int iterations,
               double* final_loss) {
  ClusterSpec spec;
  spec.num_workers = workers;
  spec.num_servers = servers;
  spec.task_failure_prob = failure_prob;
  // The paper's CTR iterations are tens of seconds: genuinely compute- and
  // bandwidth-bound tasks. Scale the per-node capabilities down in the same
  // proportion our dataset is scaled down from CTR, so the bottleneck
  // structure (and thus the scaling behaviour) matches.
  spec.worker_flops = 2e7;
  spec.net_bandwidth_bps = 1.25e8;
  spec.per_msg_overhead_s = 2e-6;
  Cluster cluster(spec);
  Dataset<Example> data =
      MakeClassificationDataset(&cluster, ds, workers).Cache();
  data.Count();
  DcvContext ctx(&cluster);
  GlmOptions options;
  options.dim = ds.dim;
  options.optimizer.kind = OptimizerKind::kSgd;
  options.optimizer.learning_rate = 10.0;
  options.batch_fraction = 0.2;
  options.iterations = iterations;
  TrainReport report = *TrainGlmPs2(&ctx, data, options);
  if (final_loss != nullptr) *final_loss = report.final_loss;
  return report.total_time;
}

}  // namespace

int main() {
  using namespace ps2;
  const double scale = bench::Scale();

  bench::Header("Figure 13(a): scalability in workers/servers (CTR-like)",
                "(50,50)->(100,50)->(100,100): 4519s -> 2865s -> 2199s; "
                "2.05x at doubled resources");
  {
    ClassificationSpec ds = presets::CtrLike(scale);
    struct Config {
      int workers, servers;
      // The paper attributes part of the speedup to network failures under
      // low resources; emulate with a small task-failure probability.
      double failure_prob;
    };
    std::printf("%-22s %-14s %-10s\n", "(workers, servers)", "total time(s)",
                "final loss");
    SimTime t_small = 0, t_big = 0;
    for (const Config& c : {Config{50, 50, 0.02}, Config{100, 50, 0.0},
                            Config{100, 100, 0.0}}) {
      double loss = 0;
      SimTime t = RunPs2(c.workers, c.servers, c.failure_prob, ds, 15, &loss);
      if (c.workers == 50) t_small = t;
      if (c.workers == 100 && c.servers == 100) t_big = t;
      std::printf("(%3d, %3d)%-12s %-14.2f %-10.4f\n", c.workers, c.servers,
                  "", t, loss);
    }
    std::printf("speedup at doubled resources: %.2fx (paper: 2.05x)\n",
                t_small / t_big);
  }

  bench::Header("Figure 13(b): scalability in model size",
                "40K -> 60,000K features: PS2 8.5x (0.2s -> 1.7s/iter), "
                "MLlib 168x");
  {
    std::vector<uint64_t> dims = {
        static_cast<uint64_t>(4000 * scale),
        static_cast<uint64_t>(300000 * scale),
        static_cast<uint64_t>(3000000 * scale),
        static_cast<uint64_t>(6000000 * scale)};
    std::printf("%-12s %-16s %-16s\n", "#features", "PS2 s/iter",
                "MLlib s/iter");
    double ps2_first = 0, ps2_last = 0, mllib_first = 0, mllib_last = 0;
    for (uint64_t dim : dims) {
      ClusterSpec spec;
      spec.num_workers = 20;
      spec.num_servers = 20;
      Cluster cluster(spec);
      ClassificationSpec ds = presets::FeatureSweep(dim, 40000);
      Dataset<Example> data = MakeClassificationDataset(&cluster, ds).Cache();
      data.Count();
      GlmOptions options;
      options.dim = dim;
      options.optimizer.kind = OptimizerKind::kSgd;
      options.batch_fraction = 0.01;
      options.iterations = 3;

      DcvContext ctx(&cluster);
      TrainReport ps2 = *TrainGlmPs2(&ctx, data, options);
      MllibReport mllib = *TrainGlmMllib(&cluster, data, options);
      double ps2_iter = ps2.TimePerIteration();
      double mllib_iter = mllib.report.total_time / options.iterations;
      if (ps2_first == 0) {
        ps2_first = ps2_iter;
        mllib_first = mllib_iter;
      }
      ps2_last = ps2_iter;
      mllib_last = mllib_iter;
      std::printf("%-12llu %-16.4f %-16.4f\n",
                  static_cast<unsigned long long>(dim), ps2_iter, mllib_iter);
    }
    std::printf("growth smallest -> largest: PS2 %.1fx (paper 8.5x) | MLlib "
                "%.1fx (paper 168x)\n",
                ps2_last / ps2_first, mllib_last / mllib_first);
  }
  return 0;
}
