// Figure 1 (paper §2): Spark MLlib's per-iteration time and its breakdown
// into the four steps (broadcast, gradient calc, aggregation, update) as the
// feature count grows. The paper observes a 168x degradation from 40K to
// 60,000K features with gradient aggregation dominating.
//
// Default dims are scaled 1/10 from the paper's sweep (4K..6,000K) to stay
// laptop-friendly; set PS2_BENCH_SCALE=10 for the full 40K..60,000K sweep.

#include <vector>

#include "baselines/mllib_lr.h"
#include "bench/bench_common.h"
#include "data/classification_gen.h"
#include "data/presets.h"

int main() {
  using namespace ps2;
  bench::Header(
      "Figure 1: Spark MLlib analysis — time per iteration & step breakdown",
      "Fig 1(a): 168x slowdown from 40K to 60,000K features; Fig 1(b): "
      "gradient aggregation dominates at high dims");

  const double scale = bench::Scale();
  std::vector<uint64_t> dims = {
      static_cast<uint64_t>(4000 * scale), static_cast<uint64_t>(300000 * scale),
      static_cast<uint64_t>(3000000 * scale),
      static_cast<uint64_t>(6000000 * scale)};

  std::printf("%-12s %-12s %-10s %-10s %-10s %-10s\n", "#features",
              "s/iteration", "broadcast", "compute", "aggregate", "update");
  std::vector<double> per_iter_times;
  for (uint64_t dim : dims) {
    ClusterSpec spec;
    spec.num_workers = 20;  // paper: 20 executors
    spec.num_servers = 20;
    Cluster cluster(spec);
    ClassificationSpec ds = presets::FeatureSweep(dim, 40000);
    Dataset<Example> data = MakeClassificationDataset(&cluster, ds).Cache();
    data.Count();

    GlmOptions options;
    options.dim = dim;
    options.optimizer.kind = OptimizerKind::kSgd;
    options.batch_fraction = 0.01;  // paper: mini batch fraction 0.01
    options.iterations = 3;
    Result<MllibReport> result = TrainGlmMllib(&cluster, data, options);
    if (!result.ok()) {
      std::printf("%-12llu FAILED: %s\n",
                  static_cast<unsigned long long>(dim),
                  result.status().ToString().c_str());
      continue;
    }
    const MllibStepBreakdown& b = result->breakdown;
    double per_iter = b.Total() / options.iterations;
    per_iter_times.push_back(per_iter);
    std::printf("%-12llu %-12.4f %-10.1f%% %-9.1f%% %-9.1f%% %-9.1f%%\n",
                static_cast<unsigned long long>(dim), per_iter,
                100 * b.broadcast / b.Total(), 100 * b.compute / b.Total(),
                100 * b.aggregate / b.Total(), 100 * b.update / b.Total());
  }
  if (per_iter_times.size() >= 2) {
    std::printf("\nslowdown smallest -> largest dim: %.1fx (paper: 168x for "
                "40K -> 60,000K)\n",
                per_iter_times.back() / per_iter_times.front());
  }
  return 0;
}
