// Elastic membership (DESIGN.md §12): online resharding under load.
//
// Two scenarios:
//
//  scaleout_2to8 — trains LR starting on 2 of 8 fleet slots and joins one
//    server every other stage until all 8 are active, with every key-range
//    migration running between stage barriers of the same training job. The
//    control: the identical job on a static 8-server cluster. Partition
//    boundaries are fixed at FLEET scale, so both runs use the same 8
//    partitions and the same per-column merge order — the elastic run must
//    reproduce the static loss curve bit-for-bit (loss_parity), just at a
//    different virtual time (2 servers are slower until the joins land).
//
//  skew_heal — one server starts with 3 of its 4 partitions hot (uniform
//    pulls over their columns) while the other 3 servers idle. Repeated
//    RebalanceOnce calls shed edge partitions off the busiest server until
//    the hot ranges are spread out; max/mean busy-time skew must drop >= 2x.
//
// check_bench.py gates the migrate.* fields (bytes moved, routing epochs,
// rebalance virtual time, skew reduction) plus loss_parity.

#include <cstdint>

#include "bench/bench_common.h"
#include "common/metrics.h"
#include "data/classification_gen.h"
#include "dcv/dcv_context.h"
#include "membership/membership_manager.h"
#include "ml/logreg.h"
#include "ps/ps_client.h"
#include "ps/ps_master.h"

namespace {

using namespace ps2;

struct ScaleoutResult {
  TrainReport report;
  int joins = 0;
  uint64_t routing_epoch = 0;
  uint64_t migrate_bytes = 0;
  uint64_t migrate_moves = 0;
  uint64_t migrate_migrations = 0;
  uint64_t routing_refetches = 0;
};

ScaleoutResult RunScaleout(Cluster* cluster, bool elastic) {
  ClassificationSpec ds;
  ds.rows = 20000;
  ds.dim = 4096;
  ds.avg_nnz = 32;
  ds.skew = 1.2;
  ds.seed = 11;
  Dataset<Example> data = MakeClassificationDataset(cluster, ds).Cache();
  data.Count();

  GlmOptions options;
  options.dim = ds.dim;
  options.optimizer.kind = OptimizerKind::kSgd;
  options.optimizer.learning_rate = 0.5;
  options.batch_fraction = 0.1;
  options.iterations = 30;
  options.seed = 5;

  cluster->metrics().Reset();
  DcvContext ctx(cluster);
  ScaleoutResult out;
  if (elastic) {
    // Join one server every other stage barrier until the fleet is full.
    // The hook runs on the stage-caller thread after the clock advances, so
    // every migration is interleaved with live training stages.
    PsMaster* master = ctx.master();
    int stage = 0;
    cluster->RegisterPostStageHook([master, &out, &stage](Cluster& c) {
      ++stage;
      if (stage % 2 != 0 || master->num_active_servers() >= 8) return;
      Result<int> added = master->AddServer();
      if (!added.ok()) {
        std::fprintf(stderr, "AddServer: %s\n",
                     added.status().ToString().c_str());
        return;
      }
      out.joins += 1;
      std::printf("   [t=%.4f] scale-out: server %d joined (routing epoch "
                  "%llu, %d active)\n",
                  c.clock().Now(), *added,
                  static_cast<unsigned long long>(master->routing_epoch()),
                  master->num_active_servers());
    });
  }
  out.report = *TrainGlmPs2(&ctx, data, options);
  const MetricsRegistry& m = cluster->metrics();
  out.routing_epoch = m.Get("ps.migration_epoch");
  out.migrate_bytes = m.Get("migrate.bytes");
  out.migrate_moves = m.Get("migrate.moves");
  out.migrate_migrations = m.Get("migrate.migrations");
  out.routing_refetches = m.Get("net.routing_refetches");
  return out;
}

/// max/mean of per-server busy-time deltas between two metric snapshots.
double BusySkew(const MetricsRegistry& m, const std::vector<int>& active,
                std::map<int, uint64_t>* last) {
  uint64_t total = 0, max_busy = 0;
  for (int s : active) {
    const uint64_t now = m.Get(ServerTaggedName("obs.server_busy_time", s));
    const uint64_t delta = now - (*last)[s];
    (*last)[s] = now;
    total += delta;
    if (delta > max_busy) max_busy = delta;
  }
  if (total == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(active.size());
  return static_cast<double>(max_busy) / mean;
}

struct SkewHealResult {
  double skew_before = 0.0;
  double skew_after = 0.0;
  int rounds = 0;
  uint64_t migrate_bytes = 0;
  uint64_t routing_epoch = 0;
  double virtual_time_s = 0.0;
};

SkewHealResult RunSkewHeal() {
  ClusterSpec spec;
  spec.num_workers = 4;
  spec.num_servers = 4;
  spec.max_servers = 16;  // 16 fixed partitions -> 4 per active server
  Cluster cluster(spec);
  PsMaster master(&cluster);
  PsClient client(&master);

  MatrixOptions mo;
  mo.name = "weights";
  mo.dim = 4096;
  mo.reserve_rows = 1;
  const int id = *master.CreateMatrix(mo);
  const RowRef row{id, 0};
  Status seeded = client.PushDense(row, std::vector<double>(mo.dim, 1.0));
  if (!seeded.ok()) {
    std::fprintf(stderr, "seed push: %s\n", seeded.ToString().c_str());
  }

  // Hot columns = partitions 0..2 (3 of the owning server's 4 partitions;
  // the 4th stays cold so edge moves can shed real load, not just ranges).
  const uint64_t hot_end = 3 * (mo.dim / 16);
  std::vector<uint64_t> hot(hot_end);
  for (uint64_t i = 0; i < hot_end; ++i) hot[i] = i;

  const std::vector<int> active = master.active_servers();
  std::map<int, uint64_t> last;
  auto chunk = [&] {
    for (int k = 0; k < 8; ++k) {
      Result<std::vector<double>> pulled = client.PullSparse(row, hot);
      PS2_CHECK(pulled.ok());
    }
  };

  SkewHealResult out;
  BusySkew(cluster.metrics(), active, &last);  // baseline the counters
  chunk();
  out.skew_before = BusySkew(cluster.metrics(), active, &last);
  const double t0 = cluster.clock().Now();
  for (int round = 0; round < 16; ++round) {
    Result<bool> moved = master.RebalanceOnce(/*min_skew=*/1.25);
    if (!moved.ok()) {
      std::fprintf(stderr, "RebalanceOnce: %s\n",
                   moved.status().ToString().c_str());
      break;
    }
    if (!*moved) break;
    out.rounds += 1;
    chunk();
    const double skew = BusySkew(cluster.metrics(), active, &last);
    std::printf("   round %-2d skew %.3f\n", out.rounds, skew);
    out.skew_after = skew;
  }
  out.virtual_time_s = cluster.clock().Now() - t0;
  out.migrate_bytes = cluster.metrics().Get("migrate.bytes");
  out.routing_epoch = cluster.metrics().Get("ps.migration_epoch");
  return out;
}

}  // namespace

int main() {
  using namespace ps2;
  bench::Header("Elastic scale-out and skew healing",
                "online key-range migration: 2->8 servers mid-training with "
                "loss parity; rebalancer heals busy-time skew (DESIGN.md §12)");
  bench::JsonReporter json("elastic_scaleout");

  // -- scaleout_2to8 ------------------------------------------------------
  std::printf("-- scaleout 2->8 mid-training vs static 8\n");
  ClusterSpec elastic_spec;
  elastic_spec.num_workers = 8;
  elastic_spec.num_servers = 2;
  elastic_spec.max_servers = 8;
  Cluster elastic_cluster(elastic_spec);
  ScaleoutResult elastic = RunScaleout(&elastic_cluster, /*elastic=*/true);

  ClusterSpec static_spec;
  static_spec.num_workers = 8;
  static_spec.num_servers = 8;
  static_spec.max_servers = 8;
  Cluster static_cluster(static_spec);
  ScaleoutResult fixed = RunScaleout(&static_cluster, /*elastic=*/false);

  double curve_maxdiff = 0.0;
  const size_t points =
      std::min(elastic.report.curve.size(), fixed.report.curve.size());
  for (size_t i = 0; i < points; ++i) {
    curve_maxdiff = std::max(curve_maxdiff,
                             std::abs(elastic.report.curve[i].loss -
                                      fixed.report.curve[i].loss));
  }
  const bool parity = elastic.report.curve.size() ==
                          fixed.report.curve.size() &&
                      curve_maxdiff < 1e-12;

  std::printf("   %-10s %-8s %-10s %-10s %-12s %-8s\n", "run", "joins",
              "time(s)", "loss", "moved bytes", "epochs");
  std::printf("   %-10s %-8d %-10.4f %-10.6f %-12llu %-8llu\n", "elastic",
              elastic.joins, elastic.report.total_time,
              elastic.report.final_loss,
              static_cast<unsigned long long>(elastic.migrate_bytes),
              static_cast<unsigned long long>(elastic.routing_epoch));
  std::printf("   %-10s %-8d %-10.4f %-10.6f %-12llu %-8llu\n", "static8", 0,
              fixed.report.total_time, fixed.report.final_loss,
              static_cast<unsigned long long>(fixed.migrate_bytes),
              static_cast<unsigned long long>(fixed.routing_epoch));
  std::printf("   loss parity: %s (curve max |diff| %.3g)\n",
              parity ? "EXACT" : "BROKEN", curve_maxdiff);

  json.AddRun("scaleout.elastic", elastic_cluster, elastic.report.total_time);
  json.AddField("final_loss", elastic.report.final_loss);
  json.AddField("migrate.joins", elastic.joins);
  json.AddField("migrate.bytes", static_cast<double>(elastic.migrate_bytes));
  json.AddField("migrate.moves", static_cast<double>(elastic.migrate_moves));
  json.AddField("migrate.migrations",
                static_cast<double>(elastic.migrate_migrations));
  json.AddField("migrate.routing_epochs",
                static_cast<double>(elastic.routing_epoch));
  json.AddField("migrate.routing_refetches",
                static_cast<double>(elastic.routing_refetches));
  json.AddRun("scaleout.static8", static_cluster, fixed.report.total_time);
  json.AddField("final_loss", fixed.report.final_loss);
  json.BeginRun("scaleout.parity");
  json.AddField("loss_parity", parity ? 1.0 : 0.0);
  json.AddField("migrate.curve_max_absdiff", curve_maxdiff);
  json.AddField("migrate.elastic_vs_static_time",
                elastic.report.total_time / fixed.report.total_time);

  // -- skew_heal ----------------------------------------------------------
  std::printf("-- skew healing (4 active of 16 slots, 3 hot partitions)\n");
  SkewHealResult heal = RunSkewHeal();
  const double reduction =
      heal.skew_after > 0 ? heal.skew_before / heal.skew_after : 0.0;
  std::printf("   skew before %.3f after %.3f -> %.2fx in %d rounds "
              "(%.4f virtual s): %s\n",
              heal.skew_before, heal.skew_after, reduction, heal.rounds,
              heal.virtual_time_s, reduction >= 2.0 ? "HEALED" : "NOT HEALED");

  json.BeginRun("skew_heal");
  json.AddField("migrate.skew_before", heal.skew_before);
  json.AddField("migrate.skew_after", heal.skew_after);
  json.AddField("migrate.skew_reduction", reduction);
  json.AddField("migrate.skew_healed", reduction >= 2.0 ? 1.0 : 0.0);
  json.AddField("migrate.rebalance_rounds", heal.rounds);
  json.AddField("migrate.rebalance_virtual_time_s", heal.virtual_time_s);
  json.AddField("migrate.bytes", static_cast<double>(heal.migrate_bytes));
  json.AddField("migrate.routing_epochs",
                static_cast<double>(heal.routing_epoch));
  json.Write();
  return 0;
}
