// Table 2 (paper §6.1): dataset statistics — the paper's numbers next to
// the synthetic presets this reproduction uses in their place.

#include "bench/bench_common.h"
#include "data/presets.h"

int main() {
  using namespace ps2;
  using namespace ps2::presets;
  bench::Header("Table 2: dataset statistics",
                "paper datasets vs this build's shape-matched presets");

  std::printf("%-10s %-9s %-9s %-9s %-8s %-8s\n", "model", "dataset", "#rows",
              "#cols", "#nnz", "size");
  for (const PaperDatasetRow& row : PaperTable2()) {
    std::printf("%-10s %-9s %-9s %-9s %-8s %-8s\n", row.model.c_str(),
                row.dataset.c_str(), row.rows.c_str(), row.cols.c_str(),
                row.nnz.c_str(), row.size.c_str());
  }

  const double scale = bench::Scale();
  std::printf("\npresets at PS2_BENCH_SCALE=%.2f:\n", scale);
  std::printf("%-14s %-12s %-12s %-12s\n", "preset", "rows", "cols/vocab",
              "nnz/row");
  auto print_cls = [](const char* name, const ClassificationSpec& s) {
    std::printf("%-14s %-12llu %-12llu %-12u\n", name,
                static_cast<unsigned long long>(s.rows),
                static_cast<unsigned long long>(s.dim), s.avg_nnz);
  };
  print_cls("KDDB-like", KddbLike(scale));
  print_cls("KDD12-like", Kdd12Like(scale));
  print_cls("CTR-like", CtrLike(scale));
  print_cls("Gender-like", GenderLike(scale));
  auto print_corpus = [](const char* name, const CorpusSpec& s) {
    std::printf("%-14s %-12llu %-12u %-12u\n", name,
                static_cast<unsigned long long>(s.num_docs), s.vocab_size,
                s.avg_doc_length);
  };
  print_corpus("PubMED-like", PubmedLike(scale));
  print_corpus("App-like", AppLike(scale));
  auto print_graph = [](const char* name, const GraphSpec& s) {
    std::printf("%-14s %-12u %-12llu (walks)\n", name, s.num_vertices,
                static_cast<unsigned long long>(s.num_walks));
  };
  print_graph("Graph1-like", Graph1Like(scale));
  print_graph("Graph2-like", Graph2Like(scale));
  return 0;
}
