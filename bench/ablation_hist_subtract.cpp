// Ablation (extension): GBDT histogram subtraction.
//
// With subtraction on, workers build local histograms only for the lighter
// child of each split; the sibling is derived server-side as one DCV `sub`
// (parent - child). Identical trees, roughly half the per-level histogram
// build and push cost.

#include "bench/bench_common.h"
#include "data/gbdt_gen.h"
#include "dcv/dcv_context.h"
#include "ml/gbdt/gbdt.h"

int main() {
  using namespace ps2;
  bench::Header("Ablation: GBDT histogram subtraction",
                "extension — sibling histograms derived server-side");
  const double scale = bench::Scale();

  GbdtDataSpec ds;
  ds.rows = static_cast<uint64_t>(30000 * scale);
  ds.num_features = static_cast<uint32_t>(400 * scale);
  GbdtOptions options;
  options.num_features = ds.num_features;
  options.num_trees = 15;
  options.max_depth = 7;
  options.num_bins = 50;

  std::printf("%-14s %-16s %-12s %-20s\n", "subtraction", "total time(s)",
              "final loss", "hist bytes pushed");
  double losses[2] = {0, 0};
  for (int use : {0, 1}) {
    ClusterSpec spec;
    spec.num_workers = 20;
    spec.num_servers = 20;
    Cluster cluster(spec);
    Dataset<GbdtRow> data = MakeGbdtDataset(&cluster, ds).Cache();
    data.Count();
    cluster.metrics().Reset();
    DcvContext ctx(&cluster);
    GbdtOptions opt = options;
    opt.histogram_subtraction = use != 0;
    Result<GbdtReport> report = TrainGbdtPs2(&ctx, data, opt);
    if (!report.ok()) {
      std::printf("%-14s FAILED: %s\n", use ? "on" : "off",
                  report.status().ToString().c_str());
      continue;
    }
    losses[use] = report->report.final_loss;
    std::printf("%-14s %-16.3f %-12.4f %-20llu\n", use ? "on" : "off",
                report->report.total_time, report->report.final_loss,
                static_cast<unsigned long long>(
                    cluster.metrics().Get("net.bytes_worker_to_server")));
  }
  std::printf("\ntrees are identical: final losses %.6f vs %.6f\n", losses[0],
              losses[1]);
  return 0;
}
