// Figure 9(a)/(b) (paper §6.2.1): effectiveness of DCV for LR with Adam.
// Three realizations race to a target training loss on KDDB-like and
// CTR-like data:
//   Spark-Adam : pure Spark (driver-managed model)        — slowest
//   PS-Adam    : parameter servers, pull/push only        — middle
//   PS2-Adam   : DCV with server-side zip update          — fastest
// Paper: PS2 15.7x over Spark / 4.7x over PS on KDDB; 55.6x / 5x on CTR.

#include "baselines/mllib_lr.h"
#include "baselines/pspp_lr.h"
#include "bench/bench_common.h"
#include "data/classification_gen.h"
#include "data/presets.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"

namespace {

using namespace ps2;

void RunDataset(const char* name, const ClassificationSpec& ds,
                double target_loss, int iterations, double learning_rate,
                bench::JsonReporter* json) {
  std::printf("\n--- dataset %s: %llu rows x %llu cols ---\n", name,
              static_cast<unsigned long long>(ds.rows),
              static_cast<unsigned long long>(ds.dim));
  ClusterSpec spec;
  spec.num_workers = 20;
  spec.num_servers = 20;
  Cluster cluster(spec);
  Dataset<Example> data = MakeClassificationDataset(&cluster, ds).Cache();
  data.Count();

  GlmOptions options;
  options.dim = ds.dim;
  options.optimizer.kind = OptimizerKind::kAdam;
  options.optimizer.learning_rate = learning_rate;
  options.batch_fraction = 0.01;
  options.iterations = iterations;

  // Metrics reset between systems so each JSON record carries only its own
  // run's traffic.
  auto record = [&](const std::string& run, const TrainReport& r) {
    json->AddRun(std::string(name) + "." + run, cluster, r.total_time);
    json->AddField("final_loss", r.final_loss);
    json->AddField("time_to_target_s", r.TimeToLoss(target_loss));
  };
  cluster.metrics().Reset();
  DcvContext ctx_ps2(&cluster);
  TrainReport ps2 = *TrainGlmPs2(&ctx_ps2, data, options);
  record("ps2_adam", ps2);
  cluster.metrics().Reset();
  DcvContext ctx_ps(&cluster);
  TrainReport ps = *TrainGlmPsPullPush(&ctx_ps, data, options);
  record("ps_adam", ps);
  cluster.metrics().Reset();
  MllibReport spark = *TrainGlmMllib(&cluster, data, options);
  record("spark_adam", spark.report);

  // Wire-filter sweep: the same PS2-Adam run with the full filter chain
  // (key caching + delta/quant + compression) on a separate cluster, so the
  // bytes-per-epoch comparison against the filters-off run above is clean.
  ClusterSpec spec_filters = spec;
  spec_filters.filters = *FilterConfig::Parse("keycache,delta,compress");
  Cluster cluster_filters(spec_filters);
  Dataset<Example> data_filters =
      MakeClassificationDataset(&cluster_filters, ds).Cache();
  data_filters.Count();
  cluster_filters.metrics().Reset();
  DcvContext ctx_filters(&cluster_filters);
  TrainReport ps2_filtered = *TrainGlmPs2(&ctx_filters, data_filters, options);
  json->AddRun(std::string(name) + ".ps2_adam_filters", cluster_filters,
               ps2_filtered.total_time);
  json->AddField("final_loss", ps2_filtered.final_loss);
  json->AddField("time_to_target_s", ps2_filtered.TimeToLoss(target_loss));
  {
    const uint64_t wire = cluster_filters.metrics().Get("net.bytes_wire");
    const uint64_t logical = cluster_filters.metrics().Get("net.bytes_logical");
    std::printf("-- wire filters (%s): %llu logical -> %llu wire bytes "
                "(%.2fx), loss %.4f vs %.4f unfiltered\n",
                spec_filters.filters.ToString().c_str(),
                static_cast<unsigned long long>(logical),
                static_cast<unsigned long long>(wire),
                wire > 0 ? static_cast<double>(logical) / wire : 1.0,
                ps2_filtered.final_loss, ps2.final_loss);
  }

  bench::PrintCurve(ps2, 6);
  bench::PrintCurve(ps, 6);
  bench::PrintCurve(spark.report, 6);
  bench::PrintSpeedup(ps2, ps, target_loss);
  bench::PrintSpeedup(ps2, spark.report, target_loss);
}

}  // namespace

int main() {
  using namespace ps2;
  bench::Header("Figure 9(a)/(b): DCV effectiveness on LR (Adam)",
                "KDDB: PS2 4.7x over PS-, 15.7x over Spark-; CTR: 5x / 55.6x");
  const double scale = bench::Scale();
  bench::JsonReporter json("fig09_dcv_lr");
  RunDataset("KDDB-like", presets::KddbLike(scale), 0.55, 80, 0.03, &json);
  RunDataset("CTR-like", presets::CtrLike(scale), 0.62, 80, 0.01, &json);
  json.Write();
  return 0;
}
