// Ablation (extension): bounded-staleness asynchrony.
//
// Sweeps steps_per_stage for the async GLM trainer: each extra local step
// removes one stage barrier (latency + dispatch floor) at the cost of
// staler gradients. The interesting output is time-to-loss, which typically
// improves and then flattens/regresses — the classic SSP trade-off.

#include "bench/bench_common.h"
#include "data/classification_gen.h"
#include "data/presets.h"
#include "dcv/dcv_context.h"
#include "ml/async_glm.h"
#include "ml/logreg.h"

int main() {
  using namespace ps2;
  bench::Header("Ablation: bounded-staleness async SGD",
                "extension — barrier elimination vs gradient freshness");
  const double scale = bench::Scale();

  ClusterSpec spec;
  spec.num_workers = 20;
  spec.num_servers = 20;
  Cluster cluster(spec);
  ClassificationSpec ds = presets::KddbLike(scale);
  Dataset<Example> data = MakeClassificationDataset(&cluster, ds).Cache();
  data.Count();

  GlmOptions options;
  options.dim = ds.dim;
  options.optimizer.kind = OptimizerKind::kSgd;
  options.optimizer.learning_rate = 30.0;
  options.batch_fraction = 0.01;
  options.iterations = 120;
  const double target = 0.60;

  std::printf("%-18s %-14s %-12s %-16s\n", "steps per stage",
              "total time(s)", "final loss", "time to loss 0.60");
  for (int steps : {1, 2, 4, 8, 16}) {
    DcvContext ctx(&cluster);
    Result<TrainReport> result =
        TrainGlmPs2Async(&ctx, data, options, steps);
    if (!result.ok()) {
      std::printf("%-18d FAILED: %s\n", steps,
                  result.status().ToString().c_str());
      continue;
    }
    SimTime ttl = result->TimeToLoss(target);
    std::string ttl_text =
        std::isinf(ttl) ? "never" : std::to_string(ttl).substr(0, 6) + "s";
    std::printf("%-18d %-14.3f %-12.4f %-16s\n", steps, result->total_time,
                result->final_loss, ttl_text.c_str());
  }
  std::printf("\n(steps=1 is the paper's synchronous Fig. 3 flow)\n");
  return 0;
}
