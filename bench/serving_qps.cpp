// Serving tier bench (DESIGN.md §10): what the snapshot/coalescing/admission
// stack actually delivers.
//
// Three experiments:
//   1. Load sweep — open-loop Poisson/Zipf traffic at offered rates under,
//      near and past the pipeline's capacity. Reports offered vs achieved
//      QPS, shed rate, and p50/p95/p99 *virtual* latency (deterministic:
//      the serving loop schedules everything in virtual time, so the tail
//      blow-up past saturation and the admission clamp are CI-gated).
//   2. Coalescing ablation — the same Zipf-hot batch stream with request
//      coalescing on vs off at matching load. Gate: coalescing must cut
//      net.bytes_wire (duplicate hot keys travel once) without hurting the
//      virtual p99.
//   3. Train-while-serve — a trainer pushes epoch after epoch while reads
//      stay pinned to the published snapshot. Gates: pinned reads are
//      bit-stable across concurrent training (epoch_stable), and training
//      reaches the exact same final model with serving attached as without
//      (loss_parity) — serving is read-only by construction.

#include <cstring>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "dataflow/cluster.h"
#include "linalg/sparse_vector.h"
#include "ps/ps_client.h"
#include "ps/ps_master.h"
#include "serving/serving_loop.h"
#include "serving/snapshot.h"

namespace {

using namespace ps2;

struct Setup {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<PsMaster> master;
  std::unique_ptr<PsClient> client;
  int matrix_id = -1;
};

constexpr uint32_t kRows = 8;

Setup MakeSetup(uint64_t dim) {
  ClusterSpec spec;
  spec.num_workers = 4;
  spec.num_servers = 4;
  Setup s;
  s.cluster = std::make_unique<Cluster>(spec);
  s.master = std::make_unique<PsMaster>(s.cluster.get());
  s.client = std::make_unique<PsClient>(s.master.get());
  MatrixOptions options;
  options.name = "served_model";
  options.dim = dim;
  options.reserve_rows = kRows;
  s.matrix_id = *s.master->CreateMatrix(options);
  // Deterministic non-trivial values, installed server-side.
  PS2_CHECK(s.client->MatrixInit(s.matrix_id, 0, kRows, 1.0, 77).ok());
  s.cluster->metrics().Reset();
  return s;
}

TrafficGenOptions MakeTraffic(const Setup& s, uint64_t dim, double qps) {
  TrafficGenOptions traffic;
  traffic.qps = qps;
  // Strong popularity skew: hot rows and hot keys dominate, which is the
  // regime coalescing exists for (and what online feature stores see).
  traffic.skew = 4.0;
  traffic.matrix_id = s.matrix_id;
  traffic.num_rows = kRows;
  traffic.dim = dim;
  traffic.keys_per_request = 16;
  traffic.seed = 13;
  return traffic;
}

void AddServingFields(bench::JsonReporter* json, const ServingReport& r) {
  json->AddField("offered_qps", r.offered_qps);
  json->AddField("achieved_qps", r.achieved_qps);
  json->AddField("shed_rate", r.shed_rate);
  json->AddField("requests_offered", static_cast<double>(r.offered));
  json->AddField("requests_served", static_cast<double>(r.served));
  json->AddField("requests_shed", static_cast<double>(r.shed));
  json->AddField("p50_virtual_us", r.p50_us);
  json->AddField("p95_virtual_us", r.p95_us);
  json->AddField("p99_virtual_us", r.p99_us);
}

/// One deterministic "training iteration": sparse gradient-like pushes into
/// every row. Same seed => bit-identical model trajectory.
void TrainIteration(const Setup& s, uint64_t dim, uint64_t iteration) {
  Rng rng(1000 + iteration);
  for (uint32_t r = 0; r < kRows; ++r) {
    std::vector<uint64_t> idx;
    std::vector<double> val;
    for (int k = 0; k < 24; ++k) {
      idx.push_back(rng.NextUint64(dim));
      val.push_back(rng.NextDouble(-0.1, 0.1));
    }
    std::sort(idx.begin(), idx.end());
    idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
    val.resize(idx.size());
    PS2_CHECK(s.client
                  ->PushSparse(RowRef{s.matrix_id, r}, SparseVector(idx, val))
                  .ok());
  }
}

/// Full pinned-epoch image of the model, for bit-stability comparison.
std::vector<std::vector<double>> SnapshotImage(const Setup& s, uint64_t epoch) {
  std::vector<PsClient::ServingRead> reads;
  for (uint32_t r = 0; r < kRows; ++r) {
    reads.push_back({RowRef{s.matrix_id, r}, {}});
  }
  return *s.client->ServingPullAsync(epoch, reads).Get();
}

double ModelNorm(const Setup& s) {
  double total = 0.0;
  for (uint32_t r = 0; r < kRows; ++r) {
    total += *s.client->RowAggregate(RowRef{s.matrix_id, r},
                                     RowAggKind::kNorm2Squared);
  }
  return total;
}

}  // namespace

int main() {
  const double scale = bench::Scale();
  const uint64_t dim = static_cast<uint64_t>(4096 * scale) + 64;
  const double duration_s = 0.2 * scale;

  bench::Header("Serving tier: QPS, tail latency, shedding, interference",
                "snapshot-isolated online reads over the trained model "
                "(DESIGN.md §10); not from the paper, which trains only");
  bench::JsonReporter json("serving_qps");

  // ---- 1. Load sweep: under / near / past capacity. -----------------------
  std::printf("%-10s %-12s %-12s %-9s %-11s %-11s %-11s\n", "load",
              "offered_qps", "achieved", "shed%", "p50_us", "p95_us",
              "p99_us");
  for (double qps : {2000.0, 16000.0, 128000.0}) {
    Setup s = MakeSetup(dim);
    PS2_CHECK(s.master->serving_snapshots()->Publish().ok());
    ServingLoopOptions options;
    options.duration_s = duration_s;
    options.batch_max = 8;
    options.traffic = MakeTraffic(s, dim, qps);
    options.admission.max_queue_depth = 32;
    ServingReport r = *RunServingLoop(s.master.get(), s.client.get(), options);
    std::printf("%-10.0f %-12.0f %-12.0f %-9.2f %-11.1f %-11.1f %-11.1f\n",
                qps, r.offered_qps, r.achieved_qps, 100.0 * r.shed_rate,
                r.p50_us, r.p95_us, r.p99_us);
    char run[32];
    std::snprintf(run, sizeof(run), "qps%.0f", qps);
    json.AddRun(run, *s.cluster, r.span_s);
    AddServingFields(&json, r);
  }

  // ---- 2. Coalescing ablation at fixed load. ------------------------------
  uint64_t bytes_wire[2] = {0, 0};
  double p99[2] = {0, 0};
  for (int coalesce = 0; coalesce <= 1; ++coalesce) {
    Setup s = MakeSetup(dim);
    PS2_CHECK(s.master->serving_snapshots()->Publish().ok());
    ServingLoopOptions options;
    options.duration_s = duration_s;
    options.batch_max = 16;  // deep batches: plenty of hot-key overlap
    // Past capacity, so queues build and every batch actually fills — at low
    // load batches are size 1 and there is nothing to coalesce.
    options.traffic = MakeTraffic(s, dim, 64000.0);
    options.admission.max_queue_depth = 64;
    options.frontend.coalesce = coalesce == 1;
    ServingReport r = *RunServingLoop(s.master.get(), s.client.get(), options);
    bytes_wire[coalesce] = s.cluster->metrics().Get("net.bytes_wire");
    p99[coalesce] = r.p99_us;
    json.AddRun(coalesce ? "coalesce.on" : "coalesce.off", *s.cluster,
                r.span_s);
    AddServingFields(&json, r);
  }
  const double bytes_ratio = static_cast<double>(bytes_wire[0]) /
                             static_cast<double>(bytes_wire[1]);
  std::printf("\ncoalescing: %llu -> %llu wire bytes (%.2fx) | "
              "p99 %.1f -> %.1f us\n",
              static_cast<unsigned long long>(bytes_wire[0]),
              static_cast<unsigned long long>(bytes_wire[1]), bytes_ratio,
              p99[0], p99[1]);
  json.BeginRun("coalesce.summary");
  json.AddField("coalesce_bytes_ratio", bytes_ratio);

  // ---- 3. Train-while-serve: bit-stability + loss parity. -----------------
  constexpr uint64_t kIterations = 6;
  bool stable = true;
  double norm_with_serving = 0.0;
  {
    Setup s = MakeSetup(dim);
    PS2_CHECK(s.master->serving_snapshots()->Publish().ok());  // epoch 1
    for (uint64_t it = 1; it <= kIterations; ++it) {
      const uint64_t epoch = s.master->serving_snapshots()->epoch();
      auto before = SnapshotImage(s, epoch);
      TrainIteration(s, dim, it);  // epoch N+1 trains...
      // ...while epoch N serves: pinned reads plus a serving-loop burst.
      ServingLoopOptions options;
      options.duration_s = duration_s / kIterations;
      options.traffic = MakeTraffic(s, dim, 4000.0);
      options.admission.max_queue_depth = 32;
      ServingReport r =
          *RunServingLoop(s.master.get(), s.client.get(), options);
      (void)r;
      auto after = SnapshotImage(s, epoch);
      for (uint32_t row = 0; row < kRows; ++row) {
        if (std::memcmp(before[row].data(), after[row].data(),
                        before[row].size() * sizeof(double)) != 0) {
          stable = false;
        }
      }
      PS2_CHECK(s.master->serving_snapshots()->Publish().ok());
    }
    norm_with_serving = ModelNorm(s);
  }
  double norm_without_serving = 0.0;
  {
    Setup s = MakeSetup(dim);
    for (uint64_t it = 1; it <= kIterations; ++it) TrainIteration(s, dim, it);
    norm_without_serving = ModelNorm(s);
  }
  const bool parity = norm_with_serving == norm_without_serving;
  std::printf("train-while-serve: pinned reads bit-stable: %s | "
              "final |w|^2 with serving %.6f vs without %.6f -> parity %s\n",
              stable ? "yes" : "NO", norm_with_serving, norm_without_serving,
              parity ? "yes" : "NO");
  json.BeginRun("interference");
  json.AddField("epoch_stable", stable ? 1.0 : 0.0);
  json.AddField("loss_parity", parity ? 1.0 : 0.0);
  json.AddField("final_loss", norm_with_serving);

  json.Write();
  return (stable && parity) ? 0 : 1;
}
