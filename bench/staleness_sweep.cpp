// Staleness sweep (extension): loss vs virtual time across the
// --consistency knob.
//
// Runs the same LR/SGD workload under BSP, SSP with growing slack, and ASP
// (consistency/, DESIGN.md §11). BSP pays one barrier per mini-batch — the
// paper's Fig. 3 flow, bit-identical to what the repo produced before the
// consistency controller existed. SSP runs a window of slack+1 local steps
// between barriers, so the per-stage latency floor (task dispatch + the
// synchronous round structure) amortizes across the window and virtual time
// falls monotonically as the slack grows; ASP is the limit with a single
// stage. The price is gradient freshness: the final loss degrades
// gracefully, never catastrophically.
//
// Every field is seed-deterministic: the trainers size their stages so the
// staleness gate never has to block (the bound holds by construction), so
// the staleness_waits/staleness_wait_us columns also double as a regression
// gate that the deterministic schedule stays gate-clean.

#include "bench/bench_common.h"
#include "data/classification_gen.h"
#include "dataflow/cluster.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"

int main() {
  using namespace ps2;
  bench::Header("Staleness sweep: BSP / SSP / ASP",
                "extension — SSP consistency (Petuum-style slack knob)");
  const double scale = bench::Scale();

  ClassificationSpec ds;
  ds.rows = static_cast<uint64_t>(40000 * scale);
  ds.dim = static_cast<uint64_t>(80000 * scale);
  ds.avg_nnz = 20;
  ds.seed = 7;

  const int kIterations = 24;
  std::printf("workload: lr/sgd, %llu examples x %llu features, %d "
              "iterations, 4 workers x 4 servers\n\n",
              static_cast<unsigned long long>(ds.rows),
              static_cast<unsigned long long>(ds.dim), kIterations);
  std::printf("%-10s %-12s %-12s %-10s %-14s\n", "policy", "time(s)",
              "final loss", "waits", "wait time(us)");

  bench::JsonReporter reporter("staleness_sweep");
  const char* policies[] = {"bsp", "ssp:1", "ssp:3", "ssp:7", "asp"};
  double prev_time = -1.0;
  bool monotone = true;
  for (const char* text : policies) {
    ClusterSpec spec;
    spec.num_workers = 4;
    spec.num_servers = 4;
    spec.seed = 7;
    Cluster cluster(spec);
    Dataset<Example> data = MakeClassificationDataset(&cluster, ds).Cache();
    DcvContext ctx(&cluster);

    GlmOptions options;
    options.dim = ds.dim;
    options.optimizer.kind = OptimizerKind::kSgd;
    options.optimizer.learning_rate = 2.0;
    options.batch_fraction = 0.05;
    options.iterations = kIterations;
    options.seed = 7;
    options.consistency = *ConsistencyPolicy::Parse(text);

    const SimTime t0 = cluster.clock().Now();
    Result<TrainReport> report = TrainGlmPs2(&ctx, data, options);
    if (!report.ok()) {
      std::fprintf(stderr, "%s: %s\n", text,
                   report.status().ToString().c_str());
      return 1;
    }
    const SimTime elapsed = cluster.clock().Now() - t0;
    const uint64_t waits = cluster.metrics().Get("ps.staleness_waits");
    const uint64_t wait_us = cluster.metrics().Get("net.staleness_wait_time");
    std::printf("%-10s %-12.4f %-12.4f %-10llu %-14llu\n", text, elapsed,
                report->final_loss, static_cast<unsigned long long>(waits),
                static_cast<unsigned long long>(wait_us));

    // Barrier elimination must pay off monotonically in the time domain.
    if (prev_time >= 0 && elapsed > prev_time) monotone = false;
    prev_time = elapsed;

    std::string run = text;
    for (char& c : run) {
      if (c == ':') c = '_';
    }
    reporter.AddRun(run, cluster, elapsed);
    reporter.AddField("final_loss", report->final_loss);
    reporter.AddField("staleness_waits", static_cast<double>(waits));
    reporter.AddField("staleness_wait_us", static_cast<double>(wait_us));
  }
  reporter.Write();

  if (!monotone) {
    std::fprintf(stderr,
                 "\nFAIL: virtual time did not fall monotonically with "
                 "growing slack\n");
    return 1;
  }
  std::printf("\n(virtual time falls monotonically with slack: each stage\n"
              " amortizes its latency floor over slack+1 local steps)\n");
  return 0;
}
