// Ablation (extension): the asynchronous pipelined PS client.
//
// Sweeps server count for a fixed pull+push workload on the driver path,
// comparing the serial client flow (every op waits its own round trip)
// against the async client (a window of overlapped ops shares one round of
// latency, fanned out to the servers in parallel). Bytes on the wire are
// identical in both modes — only the latency term collapses from sum to
// max — so the async win grows with server count: sharding shrinks the
// per-server transfer until the round trips the serial client pays for are
// the dominant term, and those are exactly what pipelining removes.

#include <cinttypes>

#include "bench/bench_common.h"
#include "dataflow/cluster.h"
#include "ps/ps_client.h"
#include "ps/ps_future.h"
#include "ps/ps_master.h"

namespace {

using namespace ps2;

constexpr int kOps = 32;     // pull+push pairs per measurement
constexpr int kWindow = 8;   // async in-flight depth

bool RunSync(PsClient& client, RowRef w, const std::vector<double>& delta) {
  for (int i = 0; i < kOps; ++i) {
    if (!client.PullDense(w).ok() || !client.PushDense(w, delta).ok()) {
      return false;
    }
  }
  return true;
}

bool RunAsync(PsClient& client, RowRef w, const std::vector<double>& delta) {
  std::vector<PsFuture<std::vector<double>>> pulls;
  std::vector<PsFuture<Ack>> pushes;
  size_t next_pull = 0, next_push = 0;
  for (int i = 0; i < kOps; ++i) {
    pulls.push_back(client.PullDenseAsync(w));
    pushes.push_back(client.PushDenseAsync(w, delta));
    // Harvest the oldest op once `kWindow` are in flight.
    while (pulls.size() - next_pull + pushes.size() - next_push >
           static_cast<size_t>(kWindow)) {
      if (next_pull <= next_push) {
        if (!pulls[next_pull++].Wait().ok()) return false;
      } else {
        if (!pushes[next_push++].Wait().ok()) return false;
      }
    }
  }
  for (; next_pull < pulls.size(); ++next_pull) {
    if (!pulls[next_pull].Wait().ok()) return false;
  }
  for (; next_push < pushes.size(); ++next_push) {
    if (!pushes[next_push].Wait().ok()) return false;
  }
  return true;
}

}  // namespace

int main() {
  bench::Header("Ablation: async pipelined client",
                "extension — paper §5.1's asynchronous client");
  const double scale = bench::Scale();
  const uint64_t dim = static_cast<uint64_t>(500000 * scale);

  std::printf("workload: %d pulls + %d pushes of a %" PRIu64
              "-dim row, window %d, driver path\n\n",
              kOps, kOps, dim, kWindow);
  std::printf("%-10s %-14s %-14s %-10s %-16s %-12s\n", "servers",
              "sync time(s)", "async time(s)", "speedup", "async MB/s",
              "bytes match");

  bench::JsonReporter reporter("ablation_async_client");
  for (int servers : {1, 2, 4, 8, 16}) {
    ClusterSpec spec;
    spec.num_workers = 4;
    spec.num_servers = servers;
    Cluster cluster(spec);
    PsMaster master(&cluster);
    PsClient client(&master);

    MatrixOptions options;
    options.dim = dim;
    options.reserve_rows = 2;
    RowRef w{*master.CreateMatrix(options), 0};
    std::vector<double> delta(dim, 1.0);

    // Timing passes: driver-path ops advance the virtual clock directly —
    // RoundLatency once per round for the serial client, once per
    // window-load of overlapped ops for the async client.
    SimTime t0 = cluster.clock().Now();
    if (!RunSync(client, w, delta)) return 1;
    SimTime sync_time = cluster.clock().Now() - t0;

    t0 = cluster.clock().Now();
    if (!RunAsync(client, w, delta)) return 1;
    SimTime async_time = cluster.clock().Now() - t0;

    // Byte-identity pass: the same loops under a TrafficScope must move
    // exactly the same bytes in both modes.
    TaskTraffic sync_traffic, async_traffic;
    {
      TrafficScope scope(&sync_traffic);
      if (!RunSync(client, w, delta)) return 1;
    }
    {
      TrafficScope scope(&async_traffic);
      if (!RunAsync(client, w, delta)) return 1;
    }
    bool bytes_match =
        sync_traffic.TotalBytesToServers() ==
            async_traffic.TotalBytesToServers() &&
        sync_traffic.TotalBytesFromServers() ==
            async_traffic.TotalBytesFromServers();

    double payload_mb = static_cast<double>(
                            async_traffic.TotalBytesToServers() +
                            async_traffic.TotalBytesFromServers()) /
                        1e6;
    std::printf("%-10d %-14.4f %-14.4f %-10.2f %-16.1f %-12s\n", servers,
                sync_time, async_time, sync_time / async_time,
                payload_mb / async_time, bytes_match ? "yes" : "NO — BUG");

    reporter.AddRun("servers_" + std::to_string(servers), cluster,
                    cluster.clock().Now());
    reporter.AddField("sync_time_s", sync_time);
    reporter.AddField("async_time_s", async_time);
    reporter.AddField("speedup", sync_time / async_time);
    reporter.AddField("bytes_match", bytes_match ? 1.0 : 0.0);
  }
  reporter.Write();

  std::printf(
      "\n(sync charges RoundLatency per op; async charges it once per\n"
      " window-load of overlapped ops — TaskTraffic::pipelined_rounds)\n");
  return 0;
}
