// Figure 9(c)/(d) (paper §6.2.2): effectiveness of DCV for DeepWalk.
//   Graph1 (small), few servers : PS2 ~5x faster than PS- pull/push
//   Graph2 (large), 30 servers  : the DCV benefit shrinks to ~1.4x because
//                                 every dot must collect partials from all
//                                 30 servers (the paper's crossover story).

#include "baselines/pspp_deepwalk.h"
#include "bench/bench_common.h"
#include "data/graph_gen.h"
#include "data/presets.h"
#include "dcv/dcv_context.h"
#include "ml/deepwalk.h"

namespace {

using namespace ps2;

void RunGraph(const char* name, const GraphSpec& graph, int servers,
              int epochs) {
  std::printf("\n--- %s: %u vertices, %llu walks, %d servers ---\n", name,
              graph.num_vertices,
              static_cast<unsigned long long>(graph.num_walks), servers);
  ClusterSpec spec;
  spec.num_workers = 20;
  spec.num_servers = servers;
  Cluster cluster(spec);
  Dataset<VertexPair> pairs = MakeWalkPairDataset(&cluster, graph).Cache();
  pairs.Count();
  std::vector<double> freq = CorpusVertexFrequencies(graph);

  DeepWalkOptions options;
  options.num_vertices = graph.num_vertices;
  options.embedding_dim = 100;
  options.epochs = epochs;
  options.num_servers = servers;

  DcvContext ctx_ps2(&cluster);
  TrainReport ps2 = *TrainDeepWalkPs2(&ctx_ps2, pairs, freq, options);
  DcvContext ctx_ps(&cluster);
  TrainReport ps = *TrainDeepWalkPsPullPush(&ctx_ps, pairs, freq, options);

  bench::PrintCurve(ps2, 5);
  bench::PrintCurve(ps, 5);
  std::printf("   per-epoch time: PS2 %.3fs | PS- %.3fs -> PS2 %.2fx faster\n",
              ps2.TimePerIteration(), ps.TimePerIteration(),
              ps.TimePerIteration() / ps2.TimePerIteration());
}

}  // namespace

int main() {
  using namespace ps2;
  bench::Header("Figure 9(c)/(d): DCV effectiveness on DeepWalk",
                "Graph1 (2 servers): PS2 5x; Graph2 (30 servers): 1.4x");
  const double scale = bench::Scale();
  RunGraph("Graph1-like", presets::Graph1Like(scale), /*servers=*/2,
           /*epochs=*/3);
  RunGraph("Graph2-like", presets::Graph2Like(scale * 0.25), /*servers=*/30,
           /*epochs=*/2);
  return 0;
}
