// Ablation (DESIGN.md §13): per-key parameter management on word2vec.
//
// The workload's access mix has three populations by construction
// (data/word2vec_gen.h): a Zipf head every worker hammers, per-partition
// warm pools each dominated by one executor, and a uniform cold tail. The
// sweep compares three management policies on the same corpus, all with
// workers co-located with servers (ClusterSpec::colocate_workers):
//
//   shard-only   every key stays where round-robin creation put it;
//   hotspot-only sketch-driven replication of the head (PR-2 machinery);
//   full NuPS    replicate hot, relocate warm keys to their dominant
//                accessor's co-located server, shard the cold tail.
//
// Full NuPS should cut pulled (server->worker) wire bytes by >= 1.5x vs
// hotspot-only at a comparable final loss: the head is served from the
// client cache either way, but only relocation turns the warm pools'
// traffic into loopback.

#include "bench/bench_common.h"
#include "data/word2vec_gen.h"
#include "dcv/dcv_context.h"
#include "ml/word2vec.h"

namespace {

using namespace ps2;

struct RunResult {
  TrainReport report;
  uint64_t pulled_bytes = 0;      // server -> worker, wire
  uint64_t pushed_bytes = 0;      // worker -> server, wire
  uint64_t loopback_bytes = 0;    // diverted: co-located worker<->server
  uint64_t relocation_bytes = 0;  // warm-tier migration payload
  uint64_t local_hits = 0;        // pulls served from the client cache
  uint64_t replicated = 0, relocated = 0, cold = 0;
};

RunResult RunOnce(ParamMgmtMode mode) {
  ClusterSpec spec;
  spec.num_workers = 8;
  spec.num_servers = 8;
  spec.colocate_workers = true;
  Cluster cluster(spec);

  Word2VecCorpusSpec ds;
  ds.vocab = 512;
  ds.num_pairs = static_cast<uint64_t>(40000 * bench::Scale());
  ds.hot_head = 24;
  ds.warm_per_partition = 48;
  ds.hot_fraction = 0.3;
  ds.warm_fraction = 0.65;
  ds.seed = 11;
  Dataset<VertexPair> pairs = MakeWord2VecPairDataset(&cluster, ds).Cache();
  pairs.Count();
  std::vector<double> freq =
      Word2VecKeyFrequencies(ds, pairs.num_partitions());

  Word2VecOptions options;
  options.vocab = ds.vocab;
  options.embedding_dim = 16;
  options.batch_size = 256;
  options.negative_samples = 3;
  options.epochs = 10;
  options.seed = 5;
  options.param_mgmt.mode = mode;
  options.param_mgmt.hot_k = 24;
  options.param_mgmt.warm_k = 384;
  options.param_mgmt.dominance = 0.4;
  options.param_mgmt.min_count = 8;
  options.param_mgmt.hysteresis_ticks = 3;
  options.param_mgmt.hotspot.top_k = 48;  // hot rows: 2 per hot key
  options.param_mgmt.hotspot.min_pull_count = 8;
  options.param_mgmt.hotspot.refresh_every = 1;
  options.param_mgmt.hotspot.sync_every = 1;
  options.param_mgmt.hotspot.staleness_epochs = 1;

  cluster.metrics().Reset();
  DcvContext ctx(&cluster);
  Word2VecModel model;
  RunResult out;
  out.report = *TrainWord2VecPs2(&ctx, pairs, freq, options, &model);
  out.pulled_bytes = cluster.metrics().Get("net.bytes_server_to_worker");
  out.pushed_bytes = cluster.metrics().Get("net.bytes_worker_to_server");
  out.loopback_bytes = cluster.metrics().Get("net.loopback_bytes");
  out.relocation_bytes = cluster.metrics().Get("net.relocation_bytes");
  out.local_hits = cluster.metrics().Get("net.local_pull_hits");
  out.replicated = cluster.metrics().Get("nups.replicated");
  out.relocated = cluster.metrics().Get("nups.relocated");
  out.cold = cluster.metrics().Get("nups.cold");
  return out;
}

void Report(bench::JsonReporter& json, const char* leg, const RunResult& r) {
  std::printf("%-12s %-14llu %-14llu %-14llu %-10llu %-9.4f %-11.4f\n", leg,
              static_cast<unsigned long long>(r.pulled_bytes),
              static_cast<unsigned long long>(r.loopback_bytes),
              static_cast<unsigned long long>(r.relocation_bytes),
              static_cast<unsigned long long>(r.local_hits),
              r.report.final_loss, r.report.total_time);
  json.BeginRun(leg);
  json.AddField("virtual_time_s", r.report.total_time);
  json.AddField("pulled_bytes", static_cast<double>(r.pulled_bytes));
  json.AddField("pushed_bytes", static_cast<double>(r.pushed_bytes));
  json.AddField("loopback_bytes", static_cast<double>(r.loopback_bytes));
  json.AddField("final_loss", r.report.final_loss);
  json.AddField("local_pull_hits", static_cast<double>(r.local_hits));
}

}  // namespace

int main() {
  using namespace ps2;
  bench::Header("Ablation: per-key parameter management on word2vec",
                "shard-only vs hotspot-only vs full NuPS tiering "
                "(DESIGN.md §13)");
  bench::JsonReporter json("ablation_nups");

  std::printf("%-12s %-14s %-14s %-14s %-10s %-9s %-11s\n", "leg", "pulled",
              "loopback", "reloc bytes", "cache hits", "loss", "time");
  RunResult shard = RunOnce(ParamMgmtMode::kOff);
  RunResult hotspot = RunOnce(ParamMgmtMode::kHotspot);
  RunResult nups = RunOnce(ParamMgmtMode::kNups);
  Report(json, "shard_only", shard);
  Report(json, "hotspot_only", hotspot);
  Report(json, "nups", nups);
  // The headline ratio the gate watches: pulled wire bytes, full NuPS vs
  // hotspot-only, at comparable loss.
  json.BeginRun("summary");
  json.AddField("nups.pull_reduction_vs_hotspot",
                static_cast<double>(hotspot.pulled_bytes) /
                    static_cast<double>(nups.pulled_bytes));
  json.AddField("nups.pull_reduction_vs_shard",
                static_cast<double>(shard.pulled_bytes) /
                    static_cast<double>(nups.pulled_bytes));
  json.AddField("nups.relocation_bytes",
                static_cast<double>(nups.relocation_bytes));
  json.AddField("nups.replicated", static_cast<double>(nups.replicated));
  json.AddField("nups.relocated", static_cast<double>(nups.relocated));
  json.AddField("nups.cold", static_cast<double>(nups.cold));
  json.AddField("loss_delta_vs_hotspot",
                nups.report.final_loss - hotspot.report.final_loss);
  json.Write();

  const double reduction = static_cast<double>(hotspot.pulled_bytes) /
                           static_cast<double>(nups.pulled_bytes);
  std::printf("\npull reduction nups vs hotspot-only: %.2fx (gate >= 1.5x)\n",
              reduction);
  if (reduction < 1.5) {
    std::fprintf(stderr,
                 "FAIL: full NuPS pulled-byte reduction %.2fx < 1.5x\n",
                 reduction);
    return 1;
  }
  return 0;
}
