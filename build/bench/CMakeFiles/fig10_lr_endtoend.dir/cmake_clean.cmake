file(REMOVE_RECURSE
  "CMakeFiles/fig10_lr_endtoend.dir/fig10_lr_endtoend.cpp.o"
  "CMakeFiles/fig10_lr_endtoend.dir/fig10_lr_endtoend.cpp.o.d"
  "fig10_lr_endtoend"
  "fig10_lr_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_lr_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
