# Empty dependencies file for fig10_lr_endtoend.
# This may be replaced when dependencies are built.
