file(REMOVE_RECURSE
  "CMakeFiles/fig09_dcv_lr.dir/fig09_dcv_lr.cpp.o"
  "CMakeFiles/fig09_dcv_lr.dir/fig09_dcv_lr.cpp.o.d"
  "fig09_dcv_lr"
  "fig09_dcv_lr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_dcv_lr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
