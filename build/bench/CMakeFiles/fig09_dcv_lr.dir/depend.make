# Empty dependencies file for fig09_dcv_lr.
# This may be replaced when dependencies are built.
