file(REMOVE_RECURSE
  "CMakeFiles/fig01_mllib_breakdown.dir/fig01_mllib_breakdown.cpp.o"
  "CMakeFiles/fig01_mllib_breakdown.dir/fig01_mllib_breakdown.cpp.o.d"
  "fig01_mllib_breakdown"
  "fig01_mllib_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_mllib_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
