# Empty compiler generated dependencies file for microbench_dcv_ops.
# This may be replaced when dependencies are built.
