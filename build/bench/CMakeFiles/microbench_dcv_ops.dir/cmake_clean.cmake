file(REMOVE_RECURSE
  "CMakeFiles/microbench_dcv_ops.dir/microbench_dcv_ops.cpp.o"
  "CMakeFiles/microbench_dcv_ops.dir/microbench_dcv_ops.cpp.o.d"
  "microbench_dcv_ops"
  "microbench_dcv_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_dcv_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
