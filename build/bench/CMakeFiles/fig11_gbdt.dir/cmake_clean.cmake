file(REMOVE_RECURSE
  "CMakeFiles/fig11_gbdt.dir/fig11_gbdt.cpp.o"
  "CMakeFiles/fig11_gbdt.dir/fig11_gbdt.cpp.o.d"
  "fig11_gbdt"
  "fig11_gbdt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_gbdt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
