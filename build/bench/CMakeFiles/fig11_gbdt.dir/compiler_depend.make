# Empty compiler generated dependencies file for fig11_gbdt.
# This may be replaced when dependencies are built.
