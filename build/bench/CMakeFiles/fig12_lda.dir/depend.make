# Empty dependencies file for fig12_lda.
# This may be replaced when dependencies are built.
