file(REMOVE_RECURSE
  "CMakeFiles/fig12_lda.dir/fig12_lda.cpp.o"
  "CMakeFiles/fig12_lda.dir/fig12_lda.cpp.o.d"
  "fig12_lda"
  "fig12_lda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_lda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
