# Empty dependencies file for ablation_hist_subtract.
# This may be replaced when dependencies are built.
