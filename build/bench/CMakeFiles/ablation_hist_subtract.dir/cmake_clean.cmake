file(REMOVE_RECURSE
  "CMakeFiles/ablation_hist_subtract.dir/ablation_hist_subtract.cpp.o"
  "CMakeFiles/ablation_hist_subtract.dir/ablation_hist_subtract.cpp.o.d"
  "ablation_hist_subtract"
  "ablation_hist_subtract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hist_subtract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
