file(REMOVE_RECURSE
  "CMakeFiles/fig09_dcv_deepwalk.dir/fig09_dcv_deepwalk.cpp.o"
  "CMakeFiles/fig09_dcv_deepwalk.dir/fig09_dcv_deepwalk.cpp.o.d"
  "fig09_dcv_deepwalk"
  "fig09_dcv_deepwalk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_dcv_deepwalk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
