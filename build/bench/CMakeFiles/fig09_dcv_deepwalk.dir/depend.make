# Empty dependencies file for fig09_dcv_deepwalk.
# This may be replaced when dependencies are built.
