# Empty dependencies file for ablation_sparse_pull.
# This may be replaced when dependencies are built.
