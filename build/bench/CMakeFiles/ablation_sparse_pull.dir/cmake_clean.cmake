file(REMOVE_RECURSE
  "CMakeFiles/ablation_sparse_pull.dir/ablation_sparse_pull.cpp.o"
  "CMakeFiles/ablation_sparse_pull.dir/ablation_sparse_pull.cpp.o.d"
  "ablation_sparse_pull"
  "ablation_sparse_pull.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sparse_pull.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
