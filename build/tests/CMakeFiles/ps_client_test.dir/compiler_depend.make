# Empty compiler generated dependencies file for ps_client_test.
# This may be replaced when dependencies are built.
