file(REMOVE_RECURSE
  "CMakeFiles/ps_client_test.dir/ps/ps_client_test.cc.o"
  "CMakeFiles/ps_client_test.dir/ps/ps_client_test.cc.o.d"
  "ps_client_test"
  "ps_client_test.pdb"
  "ps_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
