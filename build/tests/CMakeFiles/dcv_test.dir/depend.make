# Empty dependencies file for dcv_test.
# This may be replaced when dependencies are built.
