file(REMOVE_RECURSE
  "CMakeFiles/dcv_test.dir/dcv/dcv_test.cc.o"
  "CMakeFiles/dcv_test.dir/dcv/dcv_test.cc.o.d"
  "dcv_test"
  "dcv_test.pdb"
  "dcv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
