file(REMOVE_RECURSE
  "CMakeFiles/ps_master_test.dir/ps/ps_master_test.cc.o"
  "CMakeFiles/ps_master_test.dir/ps/ps_master_test.cc.o.d"
  "ps_master_test"
  "ps_master_test.pdb"
  "ps_master_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_master_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
