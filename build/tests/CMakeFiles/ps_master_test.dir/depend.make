# Empty dependencies file for ps_master_test.
# This may be replaced when dependencies are built.
