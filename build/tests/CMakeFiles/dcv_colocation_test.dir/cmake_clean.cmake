file(REMOVE_RECURSE
  "CMakeFiles/dcv_colocation_test.dir/dcv/dcv_colocation_test.cc.o"
  "CMakeFiles/dcv_colocation_test.dir/dcv/dcv_colocation_test.cc.o.d"
  "dcv_colocation_test"
  "dcv_colocation_test.pdb"
  "dcv_colocation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_colocation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
