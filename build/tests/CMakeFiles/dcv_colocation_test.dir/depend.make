# Empty dependencies file for dcv_colocation_test.
# This may be replaced when dependencies are built.
