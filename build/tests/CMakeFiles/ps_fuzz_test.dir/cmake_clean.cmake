file(REMOVE_RECURSE
  "CMakeFiles/ps_fuzz_test.dir/ps/ps_fuzz_test.cc.o"
  "CMakeFiles/ps_fuzz_test.dir/ps/ps_fuzz_test.cc.o.d"
  "ps_fuzz_test"
  "ps_fuzz_test.pdb"
  "ps_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
