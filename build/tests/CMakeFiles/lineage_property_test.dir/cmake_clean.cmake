file(REMOVE_RECURSE
  "CMakeFiles/lineage_property_test.dir/dataflow/lineage_property_test.cc.o"
  "CMakeFiles/lineage_property_test.dir/dataflow/lineage_property_test.cc.o.d"
  "lineage_property_test"
  "lineage_property_test.pdb"
  "lineage_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lineage_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
