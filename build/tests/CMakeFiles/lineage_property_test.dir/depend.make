# Empty dependencies file for lineage_property_test.
# This may be replaced when dependencies are built.
