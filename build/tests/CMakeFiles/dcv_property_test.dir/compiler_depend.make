# Empty compiler generated dependencies file for dcv_property_test.
# This may be replaced when dependencies are built.
