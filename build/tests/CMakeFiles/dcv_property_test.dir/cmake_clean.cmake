file(REMOVE_RECURSE
  "CMakeFiles/dcv_property_test.dir/dcv/dcv_property_test.cc.o"
  "CMakeFiles/dcv_property_test.dir/dcv/dcv_property_test.cc.o.d"
  "dcv_property_test"
  "dcv_property_test.pdb"
  "dcv_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
