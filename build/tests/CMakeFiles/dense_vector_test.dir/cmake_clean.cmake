file(REMOVE_RECURSE
  "CMakeFiles/dense_vector_test.dir/linalg/dense_vector_test.cc.o"
  "CMakeFiles/dense_vector_test.dir/linalg/dense_vector_test.cc.o.d"
  "dense_vector_test"
  "dense_vector_test.pdb"
  "dense_vector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_vector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
