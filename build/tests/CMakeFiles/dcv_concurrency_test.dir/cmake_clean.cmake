file(REMOVE_RECURSE
  "CMakeFiles/dcv_concurrency_test.dir/dcv/dcv_concurrency_test.cc.o"
  "CMakeFiles/dcv_concurrency_test.dir/dcv/dcv_concurrency_test.cc.o.d"
  "dcv_concurrency_test"
  "dcv_concurrency_test.pdb"
  "dcv_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcv_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
