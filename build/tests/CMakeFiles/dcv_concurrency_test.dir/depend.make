# Empty dependencies file for dcv_concurrency_test.
# This may be replaced when dependencies are built.
