file(REMOVE_RECURSE
  "CMakeFiles/deepwalk_test.dir/ml/deepwalk_test.cc.o"
  "CMakeFiles/deepwalk_test.dir/ml/deepwalk_test.cc.o.d"
  "deepwalk_test"
  "deepwalk_test.pdb"
  "deepwalk_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepwalk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
