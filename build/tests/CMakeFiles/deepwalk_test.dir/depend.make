# Empty dependencies file for deepwalk_test.
# This may be replaced when dependencies are built.
