file(REMOVE_RECURSE
  "CMakeFiles/mllib_star_test.dir/baselines/mllib_star_test.cc.o"
  "CMakeFiles/mllib_star_test.dir/baselines/mllib_star_test.cc.o.d"
  "mllib_star_test"
  "mllib_star_test.pdb"
  "mllib_star_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mllib_star_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
