# Empty compiler generated dependencies file for mllib_star_test.
# This may be replaced when dependencies are built.
