# Empty compiler generated dependencies file for workload_fault_test.
# This may be replaced when dependencies are built.
