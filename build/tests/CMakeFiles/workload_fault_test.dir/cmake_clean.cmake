file(REMOVE_RECURSE
  "CMakeFiles/workload_fault_test.dir/integration/workload_fault_test.cc.o"
  "CMakeFiles/workload_fault_test.dir/integration/workload_fault_test.cc.o.d"
  "workload_fault_test"
  "workload_fault_test.pdb"
  "workload_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
