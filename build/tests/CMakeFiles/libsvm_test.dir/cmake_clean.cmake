file(REMOVE_RECURSE
  "CMakeFiles/libsvm_test.dir/data/libsvm_test.cc.o"
  "CMakeFiles/libsvm_test.dir/data/libsvm_test.cc.o.d"
  "libsvm_test"
  "libsvm_test.pdb"
  "libsvm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libsvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
