# Empty dependencies file for fm_test.
# This may be replaced when dependencies are built.
