file(REMOVE_RECURSE
  "CMakeFiles/cost_property_test.dir/sim/cost_property_test.cc.o"
  "CMakeFiles/cost_property_test.dir/sim/cost_property_test.cc.o.d"
  "cost_property_test"
  "cost_property_test.pdb"
  "cost_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
