file(REMOVE_RECURSE
  "CMakeFiles/ps_server_test.dir/ps/ps_server_test.cc.o"
  "CMakeFiles/ps_server_test.dir/ps/ps_server_test.cc.o.d"
  "ps_server_test"
  "ps_server_test.pdb"
  "ps_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
