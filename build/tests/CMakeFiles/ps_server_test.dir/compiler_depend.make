# Empty compiler generated dependencies file for ps_server_test.
# This may be replaced when dependencies are built.
