file(REMOVE_RECURSE
  "CMakeFiles/lda_test.dir/ml/lda_test.cc.o"
  "CMakeFiles/lda_test.dir/ml/lda_test.cc.o.d"
  "lda_test"
  "lda_test.pdb"
  "lda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
