file(REMOVE_RECURSE
  "CMakeFiles/async_glm_test.dir/ml/async_glm_test.cc.o"
  "CMakeFiles/async_glm_test.dir/ml/async_glm_test.cc.o.d"
  "async_glm_test"
  "async_glm_test.pdb"
  "async_glm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_glm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
