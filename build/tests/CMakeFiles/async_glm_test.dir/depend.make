# Empty dependencies file for async_glm_test.
# This may be replaced when dependencies are built.
