# Empty compiler generated dependencies file for ps2run.
# This may be replaced when dependencies are built.
