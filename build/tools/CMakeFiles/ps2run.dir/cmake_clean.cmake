file(REMOVE_RECURSE
  "CMakeFiles/ps2run.dir/ps2run.cpp.o"
  "CMakeFiles/ps2run.dir/ps2run.cpp.o.d"
  "ps2run"
  "ps2run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps2run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
