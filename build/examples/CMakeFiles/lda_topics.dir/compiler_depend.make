# Empty compiler generated dependencies file for lda_topics.
# This may be replaced when dependencies are built.
