# Empty compiler generated dependencies file for gbdt_classification.
# This may be replaced when dependencies are built.
