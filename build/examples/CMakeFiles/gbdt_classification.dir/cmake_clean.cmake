file(REMOVE_RECURSE
  "CMakeFiles/gbdt_classification.dir/gbdt_classification.cpp.o"
  "CMakeFiles/gbdt_classification.dir/gbdt_classification.cpp.o.d"
  "gbdt_classification"
  "gbdt_classification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbdt_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
