# Empty compiler generated dependencies file for deepwalk_embedding.
# This may be replaced when dependencies are built.
