file(REMOVE_RECURSE
  "CMakeFiles/deepwalk_embedding.dir/deepwalk_embedding.cpp.o"
  "CMakeFiles/deepwalk_embedding.dir/deepwalk_embedding.cpp.o.d"
  "deepwalk_embedding"
  "deepwalk_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepwalk_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
