
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/distml_lr.cc" "src/CMakeFiles/ps2.dir/baselines/distml_lr.cc.o" "gcc" "src/CMakeFiles/ps2.dir/baselines/distml_lr.cc.o.d"
  "/root/repo/src/baselines/glint_lda.cc" "src/CMakeFiles/ps2.dir/baselines/glint_lda.cc.o" "gcc" "src/CMakeFiles/ps2.dir/baselines/glint_lda.cc.o.d"
  "/root/repo/src/baselines/mllib_lda.cc" "src/CMakeFiles/ps2.dir/baselines/mllib_lda.cc.o" "gcc" "src/CMakeFiles/ps2.dir/baselines/mllib_lda.cc.o.d"
  "/root/repo/src/baselines/mllib_lr.cc" "src/CMakeFiles/ps2.dir/baselines/mllib_lr.cc.o" "gcc" "src/CMakeFiles/ps2.dir/baselines/mllib_lr.cc.o.d"
  "/root/repo/src/baselines/mllib_star_lr.cc" "src/CMakeFiles/ps2.dir/baselines/mllib_star_lr.cc.o" "gcc" "src/CMakeFiles/ps2.dir/baselines/mllib_star_lr.cc.o.d"
  "/root/repo/src/baselines/petuum_lda.cc" "src/CMakeFiles/ps2.dir/baselines/petuum_lda.cc.o" "gcc" "src/CMakeFiles/ps2.dir/baselines/petuum_lda.cc.o.d"
  "/root/repo/src/baselines/petuum_lr.cc" "src/CMakeFiles/ps2.dir/baselines/petuum_lr.cc.o" "gcc" "src/CMakeFiles/ps2.dir/baselines/petuum_lr.cc.o.d"
  "/root/repo/src/baselines/pspp_deepwalk.cc" "src/CMakeFiles/ps2.dir/baselines/pspp_deepwalk.cc.o" "gcc" "src/CMakeFiles/ps2.dir/baselines/pspp_deepwalk.cc.o.d"
  "/root/repo/src/baselines/pspp_lr.cc" "src/CMakeFiles/ps2.dir/baselines/pspp_lr.cc.o" "gcc" "src/CMakeFiles/ps2.dir/baselines/pspp_lr.cc.o.d"
  "/root/repo/src/baselines/support_matrix.cc" "src/CMakeFiles/ps2.dir/baselines/support_matrix.cc.o" "gcc" "src/CMakeFiles/ps2.dir/baselines/support_matrix.cc.o.d"
  "/root/repo/src/baselines/xgboost_gbdt.cc" "src/CMakeFiles/ps2.dir/baselines/xgboost_gbdt.cc.o" "gcc" "src/CMakeFiles/ps2.dir/baselines/xgboost_gbdt.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/ps2.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/ps2.dir/common/logging.cc.o.d"
  "/root/repo/src/common/metrics.cc" "src/CMakeFiles/ps2.dir/common/metrics.cc.o" "gcc" "src/CMakeFiles/ps2.dir/common/metrics.cc.o.d"
  "/root/repo/src/common/serde.cc" "src/CMakeFiles/ps2.dir/common/serde.cc.o" "gcc" "src/CMakeFiles/ps2.dir/common/serde.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/ps2.dir/common/status.cc.o" "gcc" "src/CMakeFiles/ps2.dir/common/status.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "src/CMakeFiles/ps2.dir/common/thread_pool.cc.o" "gcc" "src/CMakeFiles/ps2.dir/common/thread_pool.cc.o.d"
  "/root/repo/src/data/classification_gen.cc" "src/CMakeFiles/ps2.dir/data/classification_gen.cc.o" "gcc" "src/CMakeFiles/ps2.dir/data/classification_gen.cc.o.d"
  "/root/repo/src/data/corpus_gen.cc" "src/CMakeFiles/ps2.dir/data/corpus_gen.cc.o" "gcc" "src/CMakeFiles/ps2.dir/data/corpus_gen.cc.o.d"
  "/root/repo/src/data/gbdt_gen.cc" "src/CMakeFiles/ps2.dir/data/gbdt_gen.cc.o" "gcc" "src/CMakeFiles/ps2.dir/data/gbdt_gen.cc.o.d"
  "/root/repo/src/data/graph_gen.cc" "src/CMakeFiles/ps2.dir/data/graph_gen.cc.o" "gcc" "src/CMakeFiles/ps2.dir/data/graph_gen.cc.o.d"
  "/root/repo/src/data/libsvm_io.cc" "src/CMakeFiles/ps2.dir/data/libsvm_io.cc.o" "gcc" "src/CMakeFiles/ps2.dir/data/libsvm_io.cc.o.d"
  "/root/repo/src/data/presets.cc" "src/CMakeFiles/ps2.dir/data/presets.cc.o" "gcc" "src/CMakeFiles/ps2.dir/data/presets.cc.o.d"
  "/root/repo/src/dataflow/cluster.cc" "src/CMakeFiles/ps2.dir/dataflow/cluster.cc.o" "gcc" "src/CMakeFiles/ps2.dir/dataflow/cluster.cc.o.d"
  "/root/repo/src/dcv/dcv.cc" "src/CMakeFiles/ps2.dir/dcv/dcv.cc.o" "gcc" "src/CMakeFiles/ps2.dir/dcv/dcv.cc.o.d"
  "/root/repo/src/dcv/dcv_context.cc" "src/CMakeFiles/ps2.dir/dcv/dcv_context.cc.o" "gcc" "src/CMakeFiles/ps2.dir/dcv/dcv_context.cc.o.d"
  "/root/repo/src/linalg/dense_vector.cc" "src/CMakeFiles/ps2.dir/linalg/dense_vector.cc.o" "gcc" "src/CMakeFiles/ps2.dir/linalg/dense_vector.cc.o.d"
  "/root/repo/src/linalg/sparse_vector.cc" "src/CMakeFiles/ps2.dir/linalg/sparse_vector.cc.o" "gcc" "src/CMakeFiles/ps2.dir/linalg/sparse_vector.cc.o.d"
  "/root/repo/src/ml/async_glm.cc" "src/CMakeFiles/ps2.dir/ml/async_glm.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ml/async_glm.cc.o.d"
  "/root/repo/src/ml/deepwalk.cc" "src/CMakeFiles/ps2.dir/ml/deepwalk.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ml/deepwalk.cc.o.d"
  "/root/repo/src/ml/factorization_machine.cc" "src/CMakeFiles/ps2.dir/ml/factorization_machine.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ml/factorization_machine.cc.o.d"
  "/root/repo/src/ml/gbdt/gbdt.cc" "src/CMakeFiles/ps2.dir/ml/gbdt/gbdt.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ml/gbdt/gbdt.cc.o.d"
  "/root/repo/src/ml/gbdt/histogram.cc" "src/CMakeFiles/ps2.dir/ml/gbdt/histogram.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ml/gbdt/histogram.cc.o.d"
  "/root/repo/src/ml/gbdt/quantile_sketch.cc" "src/CMakeFiles/ps2.dir/ml/gbdt/quantile_sketch.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ml/gbdt/quantile_sketch.cc.o.d"
  "/root/repo/src/ml/gbdt/tree.cc" "src/CMakeFiles/ps2.dir/ml/gbdt/tree.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ml/gbdt/tree.cc.o.d"
  "/root/repo/src/ml/lbfgs.cc" "src/CMakeFiles/ps2.dir/ml/lbfgs.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ml/lbfgs.cc.o.d"
  "/root/repo/src/ml/lda/gibbs_sampler.cc" "src/CMakeFiles/ps2.dir/ml/lda/gibbs_sampler.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ml/lda/gibbs_sampler.cc.o.d"
  "/root/repo/src/ml/lda/lda_trainer.cc" "src/CMakeFiles/ps2.dir/ml/lda/lda_trainer.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ml/lda/lda_trainer.cc.o.d"
  "/root/repo/src/ml/linear_svm.cc" "src/CMakeFiles/ps2.dir/ml/linear_svm.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ml/linear_svm.cc.o.d"
  "/root/repo/src/ml/logreg.cc" "src/CMakeFiles/ps2.dir/ml/logreg.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ml/logreg.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/CMakeFiles/ps2.dir/ml/metrics.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ml/metrics.cc.o.d"
  "/root/repo/src/ml/optimizer.cc" "src/CMakeFiles/ps2.dir/ml/optimizer.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ml/optimizer.cc.o.d"
  "/root/repo/src/net/message.cc" "src/CMakeFiles/ps2.dir/net/message.cc.o" "gcc" "src/CMakeFiles/ps2.dir/net/message.cc.o.d"
  "/root/repo/src/net/network_model.cc" "src/CMakeFiles/ps2.dir/net/network_model.cc.o" "gcc" "src/CMakeFiles/ps2.dir/net/network_model.cc.o.d"
  "/root/repo/src/ps/checkpoint.cc" "src/CMakeFiles/ps2.dir/ps/checkpoint.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ps/checkpoint.cc.o.d"
  "/root/repo/src/ps/partitioner.cc" "src/CMakeFiles/ps2.dir/ps/partitioner.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ps/partitioner.cc.o.d"
  "/root/repo/src/ps/ps_client.cc" "src/CMakeFiles/ps2.dir/ps/ps_client.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ps/ps_client.cc.o.d"
  "/root/repo/src/ps/ps_master.cc" "src/CMakeFiles/ps2.dir/ps/ps_master.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ps/ps_master.cc.o.d"
  "/root/repo/src/ps/ps_server.cc" "src/CMakeFiles/ps2.dir/ps/ps_server.cc.o" "gcc" "src/CMakeFiles/ps2.dir/ps/ps_server.cc.o.d"
  "/root/repo/src/sim/cost_model.cc" "src/CMakeFiles/ps2.dir/sim/cost_model.cc.o" "gcc" "src/CMakeFiles/ps2.dir/sim/cost_model.cc.o.d"
  "/root/repo/src/sim/failure_injector.cc" "src/CMakeFiles/ps2.dir/sim/failure_injector.cc.o" "gcc" "src/CMakeFiles/ps2.dir/sim/failure_injector.cc.o.d"
  "/root/repo/src/sim/sim_clock.cc" "src/CMakeFiles/ps2.dir/sim/sim_clock.cc.o" "gcc" "src/CMakeFiles/ps2.dir/sim/sim_clock.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
