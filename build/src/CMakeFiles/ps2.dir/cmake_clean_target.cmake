file(REMOVE_RECURSE
  "libps2.a"
)
