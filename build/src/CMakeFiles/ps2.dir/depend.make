# Empty dependencies file for ps2.
# This may be replaced when dependencies are built.
