// LDA topic modeling on PS2 (paper §6.3.3).
//
// Trains collapsed-Gibbs LDA against the parameter servers (sparse,
// compressed count traffic), then pulls the word-topic matrix back and
// prints each learned topic's most probable words. On the synthetic corpus
// (built from hidden topics) the learned topics should be sharply peaked.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/corpus_gen.h"
#include "dcv/dcv_context.h"
#include "ml/lda/lda_trainer.h"

int main() {
  using namespace ps2;

  ClusterSpec spec;
  spec.num_workers = 8;
  spec.num_servers = 8;
  Cluster cluster(spec);

  CorpusSpec corpus;
  corpus.num_docs = 4000;
  corpus.vocab_size = 5000;
  corpus.true_topics = 10;
  corpus.avg_doc_length = 80;
  Dataset<Document> docs = MakeCorpusDataset(&cluster, corpus).Cache();
  std::printf("corpus: %zu documents, vocab %u, %u hidden topics\n",
              docs.Count(), corpus.vocab_size, corpus.true_topics);

  DcvContext ctx(&cluster);
  LdaOptions options;
  options.vocab_size = corpus.vocab_size;
  options.num_topics = 10;
  options.alpha = 0.5;  // paper Table 4
  options.beta = 0.01;  // paper Table 4
  options.iterations = 25;

  std::vector<Dcv> topic_rows;
  Result<TrainReport> report = TrainLdaPs2(&ctx, docs, options, &topic_rows);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("negative log-likelihood/token: %.4f -> %.4f over %d "
              "iterations (%.2f virtual s)\n",
              report->curve.front().loss, report->final_loss,
              options.iterations, report->total_time);

  // Pull the learned word-topic counts and print each topic's top words
  // plus its concentration (share of mass on the top 20 words) — sharp
  // topics mean the sampler recovered the corpus's hidden structure.
  std::printf("\nlearned topics (top word ids; concentration of top-20):\n");
  for (uint32_t k = 0; k < options.num_topics; ++k) {
    std::vector<double> counts = *topic_rows[k].Pull();
    std::vector<uint32_t> order(counts.size());
    for (uint32_t w = 0; w < counts.size(); ++w) order[w] = w;
    std::partial_sort(order.begin(), order.begin() + 20, order.end(),
                      [&](uint32_t a, uint32_t b) {
                        return counts[a] > counts[b];
                      });
    double total = 0, top = 0;
    for (double c : counts) total += c;
    for (int i = 0; i < 20; ++i) top += counts[order[i]];
    std::printf("  topic %2u (%5.1f%% in top-20):", k,
                total > 0 ? 100.0 * top / total : 0.0);
    for (int i = 0; i < 8; ++i) std::printf(" %u", order[i]);
    std::printf("\n");
  }

  std::printf("\ntraffic summary:\n%s", cluster.metrics().ToString().c_str());
  return 0;
}
