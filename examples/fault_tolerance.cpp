// Fault tolerance walk-through (paper §5.3).
//
// Runs LR training while exercising all three recoverable failure classes:
//   1. task failures    — injected with probability 0.05; the scheduler
//                         retries, and because the gradient push is each
//                         task's last operation nothing is double-counted;
//   2. executor failure — an executor is killed between runs; its cached
//                         partitions recompute through dataset lineage;
//   3. server failure   — a parameter server is killed and recovered from
//                         the checkpoint store; model state survives.

#include <cstdio>

#include "data/classification_gen.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"

int main() {
  using namespace ps2;

  ClusterSpec spec;
  spec.num_workers = 8;
  spec.num_servers = 8;
  spec.task_failure_prob = 0.05;  // every 20th task attempt dies
  Cluster cluster(spec);

  ClassificationSpec data_spec;
  data_spec.rows = 20000;
  data_spec.dim = 50000;
  Dataset<Example> data =
      MakeClassificationDataset(&cluster, data_spec).Cache();
  data.Count();

  DcvContext ctx(&cluster);
  GlmOptions options;
  options.dim = data_spec.dim;
  options.optimizer.kind = OptimizerKind::kAdam;
  options.optimizer.learning_rate = 0.05;
  options.batch_fraction = 0.05;
  options.iterations = 40;
  options.checkpoint_every = 10;  // periodic PS checkpoints (paper §5.3)

  std::printf("[1] training with task-failure injection (p=%.2f)...\n",
              spec.task_failure_prob);
  Result<TrainReport> first = TrainGlmPs2(&ctx, data, options);
  if (!first.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 first.status().ToString().c_str());
    return 1;
  }
  std::printf("    loss %.4f -> %.4f; %llu task retries absorbed; "
              "%llu checkpoints taken\n",
              first->curve.front().loss, first->final_loss,
              static_cast<unsigned long long>(
                  cluster.metrics().Get("cluster.task_retries")),
              static_cast<unsigned long long>(
                  cluster.metrics().Get("ps.checkpoints")));

  std::printf("[2] killing executor 3: cached partitions drop, lineage "
              "recomputes...\n");
  cluster.KillExecutor(3);
  size_t rows_after = data.Count();
  std::printf("    dataset intact after recompute: %zu rows\n", rows_after);

  std::printf("[3] killing server 5: state restored from its last "
              "checkpoint...\n");
  Dcv probe = *ctx.Dense(1000, 2);
  PS2_CHECK_OK(probe.Set(std::vector<double>(1000, 4.0)));
  PS2_CHECK_OK(ctx.master()->CheckpointAll());
  PS2_CHECK_OK(ctx.master()->KillAndRecoverServer(5));
  std::printf("    probe vector sum after recovery: %.1f (expected 4000)\n",
              *probe.Sum());

  std::printf("[4] training continues normally after all failures...\n");
  DcvContext fresh(&cluster);
  Result<TrainReport> second = TrainGlmPs2(&fresh, data, options);
  std::printf("    loss %.4f -> %.4f — identical trajectory to run [1]: %s\n",
              second->curve.front().loss, second->final_loss,
              std::abs(second->final_loss - first->final_loss) < 1e-9
                  ? "yes"
                  : "no");
  return 0;
}
