// Quickstart: train logistic regression with Adam on PS2.
//
// Walks through the full public API in ~40 lines of user code:
//   1. describe a (simulated) cluster,
//   2. generate a distributed sparse dataset,
//   3. attach the parameter-server application (DcvContext),
//   4. train with the PS2/DCV execution flow of the paper's Fig. 3,
//   5. inspect the loss curve, virtual time, and traffic metrics.

#include <cstdio>
#include <cstdlib>

#include "data/classification_gen.h"
#include "dataflow/cluster.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"
#include "ml/metrics.h"

int main(int argc, char** argv) {
  using namespace ps2;

  // Optional overrides: quickstart [learning_rate] [iterations]
  double learning_rate = 0.05;
  int iterations = 50;
  if (argc > 1) learning_rate = std::atof(argv[1]);
  if (argc > 2) iterations = std::atoi(argv[2]);

  // A 20-worker / 20-server cluster on 10 Gbps Ethernet — the paper's
  // default experimental configuration.
  ClusterSpec spec;
  spec.num_workers = 20;
  spec.num_servers = 20;
  Cluster cluster(spec);

  // 50K sparse examples over 100K features, power-law feature popularity.
  ClassificationSpec data_spec;
  data_spec.rows = 50000;
  data_spec.dim = 100000;
  data_spec.avg_nnz = 30;
  Dataset<Example> data =
      MakeClassificationDataset(&cluster, data_spec).Cache();

  // Launch the parameter servers (a separate application, like PS2).
  DcvContext ctx(&cluster);

  // Train: Adam with the paper's Table 4 batch fraction. (The paper's
  // learning_rate=0.618 is tuned for Tencent's data; the synthetic data here
  // prefers a smaller step.)
  GlmOptions options;
  options.dim = data_spec.dim;
  options.optimizer.kind = OptimizerKind::kAdam;
  options.optimizer.learning_rate = learning_rate;
  options.batch_fraction = 0.01;
  options.iterations = iterations;

  Result<TrainReport> result = TrainGlmPs2(&ctx, data, options);
  if (!result.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const TrainReport& report = *result;

  std::printf("system: %s\n", report.system.c_str());
  std::printf("%-6s %-12s %-10s\n", "iter", "sim_time(s)", "loss");
  for (size_t i = 0; i < report.curve.size(); i += 10) {
    const TrainPoint& p = report.curve[i];
    std::printf("%-6d %-12.3f %-10.4f\n", p.iteration, p.time, p.loss);
  }
  std::printf("final loss %.4f after %.2f virtual seconds (%zu iterations)\n",
              report.final_loss, report.total_time, report.curve.size());

  std::printf("\ncluster metrics:\n%s",
              cluster.metrics().ToString().c_str());
  return 0;
}
