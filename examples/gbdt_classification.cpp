// GBDT classification on PS2 (paper §5.2.3).
//
// Trains a boosted-tree ensemble with DCV-backed histogram aggregation and
// server-side split finding, evaluates train/test accuracy, and prints the
// structure of the first tree.

#include <cstdio>

#include "data/gbdt_gen.h"
#include "dcv/dcv_context.h"
#include "ml/gbdt/gbdt.h"
#include "ml/metrics.h"

int main() {
  using namespace ps2;

  ClusterSpec spec;
  spec.num_workers = 8;
  spec.num_servers = 8;
  Cluster cluster(spec);

  GbdtDataSpec train_spec;
  train_spec.rows = 20000;
  train_spec.num_features = 100;
  Dataset<GbdtRow> train = MakeGbdtDataset(&cluster, train_spec).Cache();

  // Held-out rows: the hidden threshold model is derived from `seed`, so the
  // test set keeps the same spec but draws rows from an independent RNG
  // stream the training generator never uses.
  GbdtDataSpec test_spec = train_spec;
  test_spec.rows = 5000;
  Rng test_rng(4242);
  std::vector<GbdtRow> test_rows =
      GenerateGbdtPartition(test_spec, 0, 1, &test_rng);

  DcvContext ctx(&cluster);
  GbdtOptions options;
  options.num_features = train_spec.num_features;
  options.num_trees = 40;
  options.max_depth = 6;
  options.num_bins = 32;

  Result<GbdtReport> result = TrainGbdtPs2(&ctx, train, options);
  if (!result.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const GbdtReport& report = *result;
  std::printf("trained %zu trees; train logloss %.4f -> %.4f in %.2f "
              "virtual s\n",
              report.model.trees.size(), report.report.curve.front().loss,
              report.report.final_loss, report.report.total_time);

  auto accuracy = [&](const std::vector<GbdtRow>& rows) {
    int correct = 0;
    for (const GbdtRow& row : rows) {
      double margin = report.model.PredictMargin(row.features);
      correct += (margin > 0) == (row.label > 0.5f);
    }
    return static_cast<double>(correct) / rows.size();
  };
  std::printf("train accuracy: %.3f\n", accuracy(train.Collect()));
  std::printf("held-out accuracy: %.3f\n", accuracy(test_rows));

  // Show the first tree's top split decisions.
  const RegressionTree& tree = report.model.trees.front();
  std::printf("\nfirst tree (%zu nodes):\n", tree.size());
  const TreeNode& root = tree.node(0);
  if (!root.is_leaf) {
    std::printf("  root: feature %u <= %.3f ? left : right\n", root.feature,
                root.threshold);
    const TreeNode& left = tree.node(root.left);
    const TreeNode& right = tree.node(root.right);
    std::printf("  left : %s\n",
                left.is_leaf ? "leaf" : "split on another feature");
    std::printf("  right: %s\n",
                right.is_leaf ? "leaf" : "split on another feature");
  }
  return 0;
}
