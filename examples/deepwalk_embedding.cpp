// DeepWalk graph embedding on PS2 (paper §5.2.2).
//
// Generates a power-law social-network-like graph, samples random walks,
// trains skip-gram embeddings with server-side DCV ops, and then uses the
// embeddings: for a few query vertices it prints the nearest neighbors by
// embedding similarity, which should be dominated by graph neighbors.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "data/graph_gen.h"
#include "dcv/dcv_context.h"
#include "ml/deepwalk.h"

int main() {
  using namespace ps2;

  ClusterSpec spec;
  spec.num_workers = 8;
  spec.num_servers = 4;
  Cluster cluster(spec);

  GraphSpec graph_spec;
  graph_spec.num_vertices = 2000;
  graph_spec.num_walks = 2500;
  graph_spec.avg_degree = 10;
  std::shared_ptr<const Graph> graph = Graph::Generate(graph_spec);
  std::printf("graph: %u vertices, %llu edges\n", graph->num_vertices(),
              static_cast<unsigned long long>(graph->num_edges()));

  Dataset<VertexPair> pairs =
      MakeWalkPairDataset(&cluster, graph_spec).Cache();
  std::printf("walk corpus: %zu skip-gram pairs\n", pairs.Count());

  DcvContext ctx(&cluster);
  DeepWalkOptions options;
  options.num_vertices = graph_spec.num_vertices;
  options.embedding_dim = 32;
  options.epochs = 6;
  options.learning_rate = 0.01;  // paper Table 4

  DeepWalkModel model;
  Result<TrainReport> report = TrainDeepWalkPs2(
      &ctx, pairs, CorpusVertexFrequencies(graph_spec), options, &model);
  if (!report.ok()) {
    std::fprintf(stderr, "training failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("trained %d epochs, skip-gram loss %.4f -> %.4f, "
              "%.2f virtual s\n",
              options.epochs, report->curve.front().loss, report->final_loss,
              report->total_time);

  // Pull all input embeddings once for the similarity queries.
  std::vector<std::vector<double>> emb(graph_spec.num_vertices);
  for (uint32_t v = 0; v < graph_spec.num_vertices; ++v) {
    emb[v] = *model.Input(v).Pull();
  }
  auto cosine = [&](uint32_t a, uint32_t b) {
    double dot = 0, na = 0, nb = 0;
    for (uint32_t d = 0; d < options.embedding_dim; ++d) {
      dot += emb[a][d] * emb[b][d];
      na += emb[a][d] * emb[a][d];
      nb += emb[b][d] * emb[b][d];
    }
    return dot / (std::sqrt(na * nb) + 1e-12);
  };

  for (uint32_t query : {3u, 100u, 999u}) {
    std::vector<std::pair<double, uint32_t>> scored;
    for (uint32_t v = 0; v < graph_spec.num_vertices; ++v) {
      if (v != query) scored.push_back({cosine(query, v), v});
    }
    std::partial_sort(scored.begin(), scored.begin() + 5, scored.end(),
                      std::greater<>());
    std::printf("vertex %u nearest:", query);
    const auto& nbrs = graph->Neighbors(query);
    for (int k = 0; k < 5; ++k) {
      bool is_neighbor = std::find(nbrs.begin(), nbrs.end(),
                                   scored[k].second) != nbrs.end();
      std::printf(" %u(%.2f%s)", scored[k].second, scored[k].first,
                  is_neighbor ? ",edge" : "");
    }
    std::printf("\n");
  }
  return 0;
}
