// ps2run: command-line driver for every PS2 workload.
//
//   ps2run lr        --dim=100000 --rows=50000 --optimizer=adam --lr=0.05
//   ps2run svm       --dim=100000 --rows=50000 --lr=0.5
//   ps2run lbfgs     --dim=100000 --rows=50000 --iterations=20
//   ps2run fm        --dim=100000 --rows=50000 --factors=8
//   ps2run deepwalk  --vertices=5000 --walks=8000 --embedding-dim=64
//   ps2run gbdt      --rows=20000 --features=100 --trees=30
//   ps2run lda       --docs=5000 --vocab=10000 --topics=50
//
// Common flags: --workers, --servers, --iterations, --seed,
// --failure-prob (task failure injection), --system=ps2|mllib|petuum|...
// (where the workload has baselines). Prints the loss curve and the
// cluster's traffic metrics.

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baselines/mllib_lr.h"
#include "consistency/consistency.h"
#include "baselines/petuum_lr.h"
#include "baselines/pspp_lr.h"
#include "baselines/xgboost_gbdt.h"
#include "data/classification_gen.h"
#include "data/corpus_gen.h"
#include "data/gbdt_gen.h"
#include "data/graph_gen.h"
#include "data/word2vec_gen.h"
#include "dcv/dcv_context.h"
#include "hotspot/param_mgmt.h"
#include "linalg/kernels/kernels.h"
#include "ml/deepwalk.h"
#include "ml/factorization_machine.h"
#include "ml/gbdt/gbdt.h"
#include "ml/lbfgs.h"
#include "ml/lda/lda_trainer.h"
#include "ml/linear_svm.h"
#include "ml/logreg.h"
#include "ml/word2vec.h"
#include "obs/metrics_json.h"
#include "obs/trace.h"
#include "ps/ps_client.h"
#include "ps/ps_master.h"
#include "serving/serving_loop.h"
#include "serving/snapshot.h"
#include "tools/flags.h"

namespace ps2 {
namespace tools {
namespace {

const Flags* g_flags = nullptr;  ///< set once in Main, read by PrintReport

int Usage();

/// Writes --trace / --metrics-json outputs. Called from PrintReport so every
/// workload path flushes observability data while its Cluster is alive.
void WriteObsOutputs(Cluster* cluster) {
  if (g_flags == nullptr) return;
  if (g_flags->Has("metrics-json")) {
    const std::string path = g_flags->GetString("metrics-json", "");
    Status s = obs::WriteMetricsJson(cluster->metrics(), path);
    if (s.ok()) {
      std::printf("wrote metrics to %s\n", path.c_str());
    } else {
      std::fprintf(stderr, "metrics-json: %s\n", s.ToString().c_str());
    }
  }
  if (g_flags->Has("trace")) {
    const std::string path = g_flags->GetString("trace", "");
    Status s = obs::Tracer::Global().WriteChromeTrace(path);
    if (s.ok()) {
      std::printf("wrote trace to %s (%zu spans, %llu dropped)\n",
                  path.c_str(), obs::Tracer::Global().Collect().size(),
                  static_cast<unsigned long long>(
                      obs::Tracer::Global().dropped()));
    } else {
      std::fprintf(stderr, "trace: %s\n", s.ToString().c_str());
    }
  }
}

void PrintReport(const TrainReport& report, Cluster* cluster) {
  std::printf("system: %s\n", report.system.c_str());
  std::printf("%-8s %-12s %-10s\n", "iter", "time(s)", "loss");
  size_t stride = std::max<size_t>(1, report.curve.size() / 12);
  for (size_t i = 0; i < report.curve.size(); i += stride) {
    const TrainPoint& p = report.curve[i];
    std::printf("%-8d %-12.4f %-10.4f\n", p.iteration, p.time, p.loss);
  }
  std::printf("final loss %.4f in %.3f virtual seconds\n", report.final_loss,
              report.total_time);
  const uint64_t wire = cluster->metrics().Get("net.bytes_wire");
  const uint64_t logical = cluster->metrics().Get("net.bytes_logical");
  if (wire > 0 && wire != logical) {
    std::printf("wire filters: %llu logical -> %llu wire bytes (%.2fx)\n",
                static_cast<unsigned long long>(logical),
                static_cast<unsigned long long>(wire),
                static_cast<double>(logical) / static_cast<double>(wire));
  }
  std::printf("\nmetrics:\n%s", cluster->metrics().ToString().c_str());
  WriteObsOutputs(cluster);
}

ClusterSpec SpecFromFlags(const Flags& flags) {
  ClusterSpec spec;
  spec.num_workers = static_cast<int>(flags.GetInt("workers", 8));
  spec.num_servers = static_cast<int>(flags.GetInt("servers", 8));
  spec.task_failure_prob = flags.GetDouble("failure-prob", 0.0);
  spec.message_failure_prob = flags.GetDouble("message-failure-prob", 0.0);
  spec.server_crash_prob = flags.GetDouble("server-crash-prob", 0.0);
  spec.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  // Fleet headroom for --scale-event=add:<t> (DESIGN.md §12). 0 = fleet ==
  // --servers, the static pre-elastic cluster.
  spec.max_servers = static_cast<int>(flags.GetInt("max-servers", 0));
  if (flags.Has("filters")) {
    Result<FilterConfig> parsed =
        FilterConfig::Parse(flags.GetString("filters", "off"));
    if (!parsed.ok()) {
      // Same convention as --simd: warn and run with the default rather
      // than die deep inside a workload runner.
      std::fprintf(stderr, "--filters: %s (running with filters off)\n",
                   parsed.status().ToString().c_str());
    } else {
      spec.filters = *parsed;
      std::printf("wire filters: %s\n", spec.filters.ToString().c_str());
    }
  }
  return spec;
}

/// Parses --consistency with the --filters convention: warn and fall back
/// to BSP rather than die deep inside a workload runner.
ConsistencyPolicy ConsistencyFromFlags(const Flags& flags) {
  ConsistencyPolicy policy;
  if (!flags.Has("consistency")) return policy;
  Result<ConsistencyPolicy> parsed =
      ConsistencyPolicy::Parse(flags.GetString("consistency", "bsp"));
  if (!parsed.ok()) {
    std::fprintf(stderr, "--consistency: %s (running with bsp)\n",
                 parsed.status().ToString().c_str());
    return policy;
  }
  policy = *parsed;
  std::printf("consistency: %s\n", policy.ToString().c_str());
  return policy;
}

/// Bugfix guard: a --consistency/--filters value that PARSES cleanly but
/// references a cluster with zero servers or an empty model used to trip an
/// assert deep inside ClusterSpec/matrix validation. Reject it up front
/// with a usage error that names the offending flag. Returns true when the
/// run must abort (caller returns Usage()).
bool RejectDegenerateTopology(const Flags& flags, const ClusterSpec& spec,
                              uint64_t model_dim, const char* dim_flag) {
  for (const char* name : {"consistency", "filters"}) {
    if (!flags.Has(name)) continue;
    const std::string value = flags.GetString(name, "");
    if (spec.num_servers <= 0) {
      std::fprintf(stderr,
                   "--%s=%s: no servers to apply it to (--servers=%d); "
                   "need --servers >= 1\n",
                   name, value.c_str(), spec.num_servers);
      return true;
    }
    if (model_dim == 0) {
      std::fprintf(stderr,
                   "--%s=%s: the model is empty (--%s=0); need a non-zero "
                   "dimension\n",
                   name, value.c_str(), dim_flag);
      return true;
    }
  }
  return false;
}

/// \brief One --scale-event entry: add or remove a server once the virtual
/// clock passes `at` seconds.
struct ScaleEvent {
  bool add = false;
  double at = 0.0;
  bool fired = false;
};

/// Parses `--scale-event=add:<t>,remove:<t>,...` (ONE comma-separated flag
/// value; the flag parser keeps only the last occurrence of a repeated
/// flag). Returns false on malformed input, naming the bad token.
bool ParseScaleEvents(const std::string& raw, std::vector<ScaleEvent>* out) {
  size_t pos = 0;
  while (pos < raw.size()) {
    size_t comma = raw.find(',', pos);
    if (comma == std::string::npos) comma = raw.size();
    const std::string token = raw.substr(pos, comma - pos);
    pos = comma + 1;
    const size_t colon = token.find(':');
    ScaleEvent event;
    if (colon != std::string::npos) {
      const std::string kind = token.substr(0, colon);
      event.add = kind == "add";
      if (event.add || kind == "remove") {
        const std::string when = token.substr(colon + 1);
        char* end = nullptr;
        event.at = std::strtod(when.c_str(), &end);
        if (!when.empty() && end != nullptr && *end == '\0' &&
            event.at >= 0.0) {
          out->push_back(event);
          continue;
        }
      }
    }
    std::fprintf(stderr,
                 "--scale-event: bad entry '%s' (want add:<t>|remove:<t>, "
                 "comma-separated, t in virtual seconds)\n",
                 token.c_str());
    return false;
  }
  return true;
}

/// Installs the --scale-event scheduler: a post-stage hook that fires each
/// event the first time the virtual clock passes its time. `remove` always
/// retires the highest active server id (deterministic and symmetric with
/// `add`, which claims the lowest spare slot).
void InstallScaleEvents(std::vector<ScaleEvent> events, Cluster* cluster,
                        PsMaster* master) {
  if (events.empty()) return;
  auto shared = std::make_shared<std::vector<ScaleEvent>>(std::move(events));
  cluster->RegisterPostStageHook([master, shared](Cluster& c) {
    const double now = c.clock().Now();
    for (ScaleEvent& event : *shared) {
      if (event.fired || now < event.at) continue;
      event.fired = true;
      if (event.add) {
        Result<int> added = master->AddServer();
        if (added.ok()) {
          std::printf("[t=%.3f] scale-out: server %d joined "
                      "(routing epoch %llu)\n",
                      now, *added,
                      static_cast<unsigned long long>(
                          master->routing_epoch()));
        } else {
          std::fprintf(stderr, "[t=%.3f] scale-out failed: %s\n", now,
                       added.status().ToString().c_str());
        }
      } else {
        const std::vector<int> active = master->active_servers();
        const int victim = active.empty() ? -1 : active.back();
        Status removed = victim >= 0 ? master->RemoveServer(victim)
                                     : Status::FailedPrecondition(
                                           "no active servers to remove");
        if (removed.ok()) {
          std::printf("[t=%.3f] scale-in: server %d left "
                      "(routing epoch %llu)\n",
                      now, victim,
                      static_cast<unsigned long long>(
                          master->routing_epoch()));
        } else {
          std::fprintf(stderr, "[t=%.3f] scale-in failed: %s\n", now,
                       removed.ToString().c_str());
        }
      }
    }
  });
}

/// Parses + installs --scale-event for a workload runner. Returns false on
/// a parse error (caller returns Usage()).
bool SetupScaleEvents(const Flags& flags, Cluster* cluster, PsMaster* master) {
  if (!flags.Has("scale-event")) return true;
  std::vector<ScaleEvent> events;
  if (!ParseScaleEvents(flags.GetString("scale-event", ""), &events)) {
    return false;
  }
  InstallScaleEvents(std::move(events), cluster, master);
  return true;
}

int RunGlmFamily(const Flags& flags, const std::string& family) {
  ClusterSpec spec = SpecFromFlags(flags);
  if (RejectDegenerateTopology(
          flags, spec, static_cast<uint64_t>(flags.GetInt("dim", 100000)),
          "dim")) {
    return Usage();
  }
  Cluster cluster(spec);
  ClassificationSpec ds;
  ds.rows = static_cast<uint64_t>(flags.GetInt("rows", 50000));
  ds.dim = static_cast<uint64_t>(flags.GetInt("dim", 100000));
  ds.avg_nnz = static_cast<uint32_t>(flags.GetInt("nnz", 30));
  ds.seed = spec.seed;
  Dataset<Example> data = MakeClassificationDataset(&cluster, ds).Cache();
  std::printf("data: %zu examples x %llu features\n", data.Count(),
              static_cast<unsigned long long>(ds.dim));
  DcvContext ctx(&cluster);
  if (!SetupScaleEvents(flags, &cluster, ctx.master())) return Usage();

  if (family == "lbfgs") {
    LbfgsOptions options;
    options.dim = ds.dim;
    options.iterations = static_cast<int>(flags.GetInt("iterations", 20));
    options.history = static_cast<int>(flags.GetInt("history", 5));
    Result<TrainReport> report = TrainLbfgsPs2(&ctx, data, options);
    if (!report.ok()) {
      std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
      return 1;
    }
    PrintReport(*report, &cluster);
    return 0;
  }

  if (family == "fm") {
    FmOptions options;
    options.dim = ds.dim;
    options.factors = static_cast<uint32_t>(flags.GetInt("factors", 8));
    options.learning_rate = flags.GetDouble("lr", 1.0);
    options.batch_fraction = flags.GetDouble("batch-fraction", 0.05);
    options.iterations = static_cast<int>(flags.GetInt("iterations", 100));
    Result<TrainReport> report = TrainFmPs2(&ctx, data, options);
    if (!report.ok()) {
      std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
      return 1;
    }
    PrintReport(*report, &cluster);
    return 0;
  }

  GlmOptions options;
  options.dim = ds.dim;
  std::string optimizer = flags.GetString("optimizer", "adam");
  options.optimizer.kind =
      optimizer == "sgd"       ? OptimizerKind::kSgd
      : optimizer == "adagrad" ? OptimizerKind::kAdagrad
      : optimizer == "rmsprop" ? OptimizerKind::kRmsProp
                               : OptimizerKind::kAdam;
  options.optimizer.learning_rate =
      flags.GetDouble("lr", optimizer == "sgd" ? 2.0 : 0.05);
  options.batch_fraction = flags.GetDouble("batch-fraction", 0.01);
  options.iterations = static_cast<int>(flags.GetInt("iterations", 100));
  options.consistency = ConsistencyFromFlags(flags);

  std::string system = flags.GetString("system", "ps2");
  Result<TrainReport> report = Status::Internal("unset");
  if (family == "svm") {
    report = TrainSvmPs2(&ctx, data, options);
  } else if (system == "ps2") {
    report = TrainGlmPs2(&ctx, data, options);
  } else if (system == "pspp") {
    report = TrainGlmPsPullPush(&ctx, data, options);
  } else if (system == "petuum") {
    report = TrainGlmPetuum(&ctx, data, options);
  } else if (system == "mllib") {
    Result<MllibReport> mllib = TrainGlmMllib(&cluster, data, options);
    if (!mllib.ok()) {
      std::fprintf(stderr, "error: %s\n", mllib.status().ToString().c_str());
      return 1;
    }
    PrintReport(mllib->report, &cluster);
    std::printf("step breakdown: broadcast %.3fs compute %.3fs aggregate "
                "%.3fs update %.3fs\n",
                mllib->breakdown.broadcast, mllib->breakdown.compute,
                mllib->breakdown.aggregate, mllib->breakdown.update);
    return 0;
  } else {
    std::fprintf(stderr, "unknown --system=%s\n", system.c_str());
    return 2;
  }
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  PrintReport(*report, &cluster);
  return 0;
}

int RunDeepWalk(const Flags& flags) {
  ClusterSpec spec = SpecFromFlags(flags);
  if (RejectDegenerateTopology(
          flags, spec, static_cast<uint64_t>(flags.GetInt("vertices", 5000)),
          "vertices")) {
    return Usage();
  }
  Cluster cluster(spec);
  GraphSpec graph;
  graph.num_vertices = static_cast<uint32_t>(flags.GetInt("vertices", 5000));
  graph.num_walks = static_cast<uint64_t>(flags.GetInt("walks", 8000));
  graph.seed = spec.seed;
  Dataset<VertexPair> pairs = MakeWalkPairDataset(&cluster, graph).Cache();
  std::printf("corpus: %zu pairs from %u vertices\n", pairs.Count(),
              graph.num_vertices);
  DcvContext ctx(&cluster);
  if (!SetupScaleEvents(flags, &cluster, ctx.master())) return Usage();
  DeepWalkOptions options;
  options.num_vertices = graph.num_vertices;
  options.embedding_dim =
      static_cast<uint32_t>(flags.GetInt("embedding-dim", 64));
  options.epochs = static_cast<int>(flags.GetInt("iterations", 5));
  options.learning_rate = flags.GetDouble("lr", 0.01);
  options.consistency = ConsistencyFromFlags(flags);
  Result<TrainReport> report = TrainDeepWalkPs2(
      &ctx, pairs, CorpusVertexFrequencies(graph), options);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  PrintReport(*report, &cluster);
  return 0;
}

/// Parses --param-mgmt with the --filters convention: warn and fall back to
/// off rather than die deep inside a workload runner.
ParamMgmtMode ParamMgmtFromFlags(const Flags& flags) {
  ParamMgmtMode mode = ParamMgmtMode::kOff;
  if (!flags.Has("param-mgmt")) return mode;
  const std::string value = flags.GetString("param-mgmt", "off");
  if (!ParseParamMgmtMode(value, &mode)) {
    std::fprintf(stderr,
                 "--param-mgmt=%s: unknown mode (off|hotspot|nups), "
                 "running with off\n",
                 value.c_str());
    return ParamMgmtMode::kOff;
  }
  std::printf("param-mgmt: %s\n", ParamMgmtModeName(mode));
  return mode;
}

int RunWord2Vec(const Flags& flags) {
  ClusterSpec spec = SpecFromFlags(flags);
  if (RejectDegenerateTopology(
          flags, spec, static_cast<uint64_t>(flags.GetInt("vocab", 2000)),
          "vocab")) {
    return Usage();
  }
  // Per-key management relocates keys toward their dominant accessor's
  // co-located server — that only pays off if loopback traffic is free, so
  // the workload runs workers co-located with servers (DESIGN.md §13).
  spec.colocate_workers = true;
  Cluster cluster(spec);
  Word2VecCorpusSpec corpus;
  corpus.vocab = static_cast<uint32_t>(flags.GetInt("vocab", 2000));
  corpus.num_pairs = static_cast<uint64_t>(flags.GetInt("pairs", 100000));
  corpus.seed = spec.seed;
  Dataset<VertexPair> pairs =
      MakeWord2VecPairDataset(&cluster, corpus).Cache();
  std::printf("corpus: %zu pairs over vocab %u\n", pairs.Count(),
              corpus.vocab);
  DcvContext ctx(&cluster);
  if (!SetupScaleEvents(flags, &cluster, ctx.master())) return Usage();
  Word2VecOptions options;
  options.vocab = corpus.vocab;
  options.embedding_dim =
      static_cast<uint32_t>(flags.GetInt("embedding-dim", 32));
  options.epochs = static_cast<int>(flags.GetInt("iterations", 5));
  options.learning_rate = flags.GetDouble("lr", 0.025);
  options.param_mgmt.mode = ParamMgmtFromFlags(flags);
  Result<TrainReport> report = TrainWord2VecPs2(
      &ctx, pairs, Word2VecKeyFrequencies(corpus, pairs.num_partitions()),
      options);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  PrintReport(*report, &cluster);
  return 0;
}

int RunGbdt(const Flags& flags) {
  ClusterSpec spec = SpecFromFlags(flags);
  if (RejectDegenerateTopology(
          flags, spec, static_cast<uint64_t>(flags.GetInt("features", 100)),
          "features")) {
    return Usage();
  }
  Cluster cluster(spec);
  GbdtDataSpec ds;
  ds.rows = static_cast<uint64_t>(flags.GetInt("rows", 20000));
  ds.num_features = static_cast<uint32_t>(flags.GetInt("features", 100));
  ds.seed = spec.seed;
  Dataset<GbdtRow> data = MakeGbdtDataset(&cluster, ds).Cache();
  std::printf("data: %zu rows x %u features\n", data.Count(),
              ds.num_features);
  GbdtOptions options;
  options.num_features = ds.num_features;
  options.num_trees = static_cast<int>(flags.GetInt("trees", 30));
  options.max_depth = static_cast<int>(flags.GetInt("depth", 6));
  options.num_bins = static_cast<uint32_t>(flags.GetInt("bins", 32));

  std::string system = flags.GetString("system", "ps2");
  Result<GbdtReport> report = Status::Internal("unset");
  if (system == "ps2") {
    DcvContext ctx(&cluster);
    if (!SetupScaleEvents(flags, &cluster, ctx.master())) return Usage();
    report = TrainGbdtPs2(&ctx, data, options);
  } else if (system == "xgboost") {
    report = TrainGbdtXgboost(&cluster, data, options);
  } else {
    std::fprintf(stderr, "unknown --system=%s\n", system.c_str());
    return 2;
  }
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  PrintReport(report->report, &cluster);
  return 0;
}

/// `ps2run serve`: train-then-serve in one process. Builds a deterministic
/// model, publishes a serving snapshot, and drives the open-loop serving
/// stack (TrafficGen -> admission -> coalescing frontend), reporting
/// offered/achieved QPS, shed rate and virtual latency percentiles.
int RunServe(const Flags& flags) {
  ClusterSpec spec = SpecFromFlags(flags);
  if (RejectDegenerateTopology(
          flags, spec, static_cast<uint64_t>(flags.GetInt("dim", 10000)),
          "dim")) {
    return Usage();
  }
  Cluster cluster(spec);
  PsMaster master(&cluster);
  PsClient client(&master);

  MatrixOptions matrix;
  matrix.name = "served_model";
  matrix.dim = static_cast<uint64_t>(flags.GetInt("dim", 10000));
  const uint32_t rows = static_cast<uint32_t>(flags.GetInt("rows", 16));
  matrix.reserve_rows = rows;
  Result<int> matrix_id = master.CreateMatrix(matrix);
  if (!matrix_id.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 matrix_id.status().ToString().c_str());
    return 1;
  }
  Status init = client.MatrixInit(*matrix_id, 0, rows, 1.0, spec.seed);
  if (!init.ok()) {
    std::fprintf(stderr, "error: %s\n", init.ToString().c_str());
    return 1;
  }
  Result<SnapshotPublishStats> published =
      master.serving_snapshots()->Publish();
  if (!published.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 published.status().ToString().c_str());
    return 1;
  }
  std::printf("model: %u rows x %llu | snapshot epoch %llu "
              "(%llu rows copied, %llu bytes)\n",
              rows, static_cast<unsigned long long>(matrix.dim),
              static_cast<unsigned long long>(published->epoch),
              static_cast<unsigned long long>(published->rows_copied),
              static_cast<unsigned long long>(published->bytes_copied));

  ServingLoopOptions options;
  options.duration_s = flags.GetDouble("duration", 1.0);
  options.batch_max = static_cast<size_t>(flags.GetInt("batch-max", 8));
  options.traffic.qps = flags.GetDouble("qps", 10000.0);
  options.traffic.skew = flags.GetDouble("zipf", 2.0);
  options.traffic.matrix_id = *matrix_id;
  options.traffic.num_rows = rows;
  options.traffic.dim = matrix.dim;
  options.traffic.keys_per_request =
      static_cast<size_t>(flags.GetInt("keys-per-request", 16));
  options.traffic.seed = spec.seed;
  options.admission.rate_qps = flags.GetDouble("admit-qps", 0.0);
  options.admission.max_queue_depth =
      static_cast<size_t>(flags.GetInt("max-queue-depth", 64));
  options.frontend.coalesce = flags.GetInt("coalesce", 1) != 0;

  Result<ServingReport> report =
      RunServingLoop(&master, &client, options);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("offered %llu (%.0f qps) | served %llu (%.0f qps) | "
              "shed %llu (%.2f%%)\n",
              static_cast<unsigned long long>(report->offered),
              report->offered_qps,
              static_cast<unsigned long long>(report->served),
              report->achieved_qps,
              static_cast<unsigned long long>(report->shed),
              100.0 * report->shed_rate);
  std::printf("virtual latency: p50 %.1fus p95 %.1fus p99 %.1fus over "
              "%.3f virtual seconds\n",
              report->p50_us, report->p95_us, report->p99_us,
              report->span_s);
  std::printf("\nmetrics:\n%s", cluster.metrics().ToString().c_str());
  WriteObsOutputs(&cluster);
  return 0;
}

int RunLda(const Flags& flags) {
  ClusterSpec spec = SpecFromFlags(flags);
  if (RejectDegenerateTopology(
          flags, spec, static_cast<uint64_t>(flags.GetInt("vocab", 10000)),
          "vocab")) {
    return Usage();
  }
  Cluster cluster(spec);
  CorpusSpec corpus;
  corpus.num_docs = static_cast<uint64_t>(flags.GetInt("docs", 5000));
  corpus.vocab_size = static_cast<uint32_t>(flags.GetInt("vocab", 10000));
  corpus.seed = spec.seed;
  Dataset<Document> docs = MakeCorpusDataset(&cluster, corpus).Cache();
  std::printf("corpus: %zu docs, vocab %u\n", docs.Count(),
              corpus.vocab_size);
  DcvContext ctx(&cluster);
  if (!SetupScaleEvents(flags, &cluster, ctx.master())) return Usage();
  LdaOptions options;
  options.vocab_size = corpus.vocab_size;
  options.num_topics = static_cast<uint32_t>(flags.GetInt("topics", 50));
  options.iterations = static_cast<int>(flags.GetInt("iterations", 15));
  options.consistency = ConsistencyFromFlags(flags);
  Result<TrainReport> report = TrainLdaPs2(&ctx, docs, options);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  PrintReport(*report, &cluster);
  return 0;
}

int Usage() {
  std::printf(
      "ps2run <workload> [--flags]\n"
      "workloads: lr svm lbfgs fm deepwalk word2vec gbdt lda serve\n"
      "common flags: --workers=N --servers=N --iterations=N --seed=N\n"
      "              --failure-prob=P --message-failure-prob=P\n"
      "              --server-crash-prob=P\n"
      "              --system=ps2|pspp|petuum|mllib|xgboost\n"
      "              --trace=out.json (Chrome-trace span export)\n"
      "              --metrics-json=out.json (counters + histograms)\n"
      "              --simd=auto|scalar|avx2 (kernel backend; default auto)\n"
      "              --filters=off|keycache,delta,compress|all (wire filter\n"
      "                chain; default off)\n"
      "              --consistency=bsp|ssp:<s>|asp (staleness regime for\n"
      "                lr/svm/lda/deepwalk; default bsp; lr/svm need\n"
      "                --optimizer=sgd for ssp/asp)\n"
      "              --max-servers=N (fleet headroom for scale-out; default\n"
      "                0 = fleet equals --servers)\n"
      "              --scale-event=add:<t>,remove:<t>,... (elastic\n"
      "                membership: join/retire a server once the virtual\n"
      "                clock passes t seconds; remove retires the highest\n"
      "                active id)\n"
      "lr/svm/fm:    --rows --dim --nnz --lr --batch-fraction --optimizer\n"
      "deepwalk:     --vertices --walks --embedding-dim --lr\n"
      "word2vec:     --vocab --pairs --embedding-dim --lr\n"
      "              --param-mgmt=off|hotspot|nups (per-key management:\n"
      "                replicate hot / relocate warm / shard cold;\n"
      "                default off)\n"
      "gbdt:         --rows --features --trees --depth --bins\n"
      "lda:          --docs --vocab --topics\n"
      "serve:        --rows --dim --qps --zipf --duration --batch-max\n"
      "              --keys-per-request --coalesce=0|1 --admit-qps\n"
      "              --max-queue-depth (snapshot-isolated serving loop)\n");
  return 2;
}

int Main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  for (const std::string& error : flags.errors()) {
    std::fprintf(stderr, "%s\n", error.c_str());
  }
  g_flags = &flags;
  if (flags.Has("simd")) {
    const std::string want = flags.GetString("simd", "auto");
    if (want == "scalar") {
      kernels::SetSimdMode(kernels::SimdMode::kScalar);
    } else if (want == "avx2") {
      if (!kernels::SetSimdMode(kernels::SimdMode::kAvx2)) {
        std::fprintf(stderr,
                     "--simd=avx2: backend not available on this build/CPU, "
                     "staying on %s\n",
                     kernels::SimdModeName(kernels::ActiveMode()));
      }
    } else if (want != "auto") {
      std::fprintf(stderr, "--simd=%s: unknown backend (auto|scalar|avx2)\n",
                   want.c_str());
      return Usage();
    }
    std::printf("kernel backend: %s\n",
                kernels::SimdModeName(kernels::ActiveMode()));
  }
  if (flags.Has("trace")) obs::Tracer::Global().Enable();
  const std::string& cmd = flags.command();
  if (cmd == "lr" || cmd == "svm" || cmd == "lbfgs" || cmd == "fm") {
    return RunGlmFamily(flags, cmd);
  }
  if (cmd == "deepwalk") return RunDeepWalk(flags);
  if (cmd == "word2vec") return RunWord2Vec(flags);
  if (cmd == "gbdt") return RunGbdt(flags);
  if (cmd == "lda") return RunLda(flags);
  if (cmd == "serve") return RunServe(flags);
  return Usage();
}

}  // namespace
}  // namespace tools
}  // namespace ps2

int main(int argc, char** argv) { return ps2::tools::Main(argc, argv); }
