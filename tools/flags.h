#pragma once

// Tiny --key=value flag parser for the ps2run CLI.

#include <cstdint>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace ps2 {
namespace tools {

/// \brief Parsed command line: a subcommand plus --key=value flags.
class Flags {
 public:
  /// Parses argv[1] as the subcommand and the rest as flags. Unparsable
  /// arguments are collected in errors().
  static Flags Parse(int argc, char** argv) {
    Flags flags;
    if (argc >= 2 && argv[1][0] != '-') flags.command_ = argv[1];
    for (int i = flags.command_.empty() ? 1 : 2; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        flags.errors_.push_back("unexpected argument: " + arg);
        continue;
      }
      std::string body = arg.substr(2);
      size_t eq = body.find('=');
      if (eq == std::string::npos) {
        flags.values_[body] = "true";
      } else {
        flags.values_[body.substr(0, eq)] = body.substr(eq + 1);
      }
    }
    return flags;
  }

  const std::string& command() const { return command_; }
  const std::vector<std::string>& errors() const { return errors_; }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtoll(it->second.c_str(), nullptr, 10);
  }

  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback
                               : std::strtod(it->second.c_str(), nullptr);
  }

  bool GetBool(const std::string& key, bool fallback) const {
    auto it = values_.find(key);
    if (it == values_.end()) return fallback;
    return it->second == "true" || it->second == "1";
  }

  /// Flags the caller never consumed (typo detection).
  std::vector<std::string> UnusedKeys(
      const std::vector<std::string>& known) const {
    std::vector<std::string> unused;
    for (const auto& [key, value] : values_) {
      bool found = false;
      for (const std::string& k : known) found |= k == key;
      if (!found) unused.push_back(key);
    }
    return unused;
  }

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> errors_;
};

}  // namespace tools
}  // namespace ps2
