#!/usr/bin/env python3
"""Line-coverage aggregator over a gcc --coverage build tree.

Walks the build directory for .gcda files, asks gcov for JSON intermediate
output (no gcovr/lcov dependency — gcov ships with gcc), and aggregates
per-line execution counts per source file. Emits:

  * an lcov-format .info artifact (--lcov-out) for external viewers,
  * a per-directory line-coverage table, also appended to
    $GITHUB_STEP_SUMMARY when that is set,
  * a soft gate: exit 1 if line coverage over --gate-prefix (default src/)
    drops below the checked-in floor (--floor-file, tools/coverage_floor.txt).

Usage:
  tools/coverage_summary.py --build-dir build-cov [--source-root .]
      [--lcov-out coverage.info] [--floor-file tools/coverage_floor.txt]

Exit status: 0 = ok, 1 = coverage below floor or no data, 2 = usage error.
"""

import argparse
import gzip
import json
import os
import subprocess
import sys
import tempfile


def find_gcda(build_dir):
    out = []
    for root, _, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                # Absolute: gcov runs from a different cwd than this script.
                out.append(os.path.abspath(os.path.join(root, name)))
    return sorted(out)


def run_gcov(gcda_files, workdir):
    """Runs gcov --json-format on the .gcda set; returns parsed JSON docs."""
    docs = []
    # Batch to keep command lines bounded.
    for i in range(0, len(gcda_files), 64):
        batch = gcda_files[i : i + 64]
        proc = subprocess.run(
            ["gcov", "--json-format", "--stdout"] + batch,
            cwd=workdir,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            check=False,
        )
        # --stdout emits one JSON document per line per input file.
        for line in proc.stdout.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                docs.append(json.loads(line))
            except json.JSONDecodeError:
                continue
    # A gcov that cannot read an input still emits a doc with empty "files",
    # so gate on actual file records, not on document count.
    if any(doc.get("files") for doc in docs):
        return docs
    # Older gcov without --stdout: fall back to .gcov.json.gz files.
    docs = []
    with tempfile.TemporaryDirectory() as tmp:
        for i in range(0, len(gcda_files), 64):
            batch = gcda_files[i : i + 64]
            subprocess.run(
                ["gcov", "--json-format"] + batch,
                cwd=tmp,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
                check=False,
            )
        for name in os.listdir(tmp):
            if not name.endswith(".gcov.json.gz"):
                continue
            with gzip.open(os.path.join(tmp, name), "rt") as f:
                try:
                    docs.append(json.load(f))
                except json.JSONDecodeError:
                    continue
    return docs


def aggregate(docs, source_root):
    """Returns {relpath: {line: max_count}} for files under source_root."""
    source_root = os.path.abspath(source_root)
    coverage = {}
    for doc in docs:
        for fentry in doc.get("files", []):
            path = fentry.get("file", "")
            if not os.path.isabs(path):
                path = os.path.join(source_root, path)
            path = os.path.abspath(path)
            if not path.startswith(source_root + os.sep):
                continue
            rel = os.path.relpath(path, source_root)
            lines = coverage.setdefault(rel, {})
            for lentry in fentry.get("lines", []):
                num = lentry.get("line_number")
                count = lentry.get("count", 0)
                if num is None:
                    continue
                lines[num] = max(lines.get(num, 0), count)
    return coverage


def write_lcov(coverage, path):
    with open(path, "w") as f:
        f.write("TN:\n")
        for rel in sorted(coverage):
            lines = coverage[rel]
            f.write(f"SF:{rel}\n")
            hit = 0
            for num in sorted(lines):
                count = lines[num]
                f.write(f"DA:{num},{count}\n")
                if count > 0:
                    hit += 1
            f.write(f"LH:{hit}\n")
            f.write(f"LF:{len(lines)}\n")
            f.write("end_of_record\n")


def per_directory(coverage, depth=2):
    """Aggregates {dir: (covered, total)} at `depth` path components."""
    dirs = {}
    for rel, lines in coverage.items():
        parts = rel.split(os.sep)
        key = os.sep.join(parts[: min(depth, max(1, len(parts) - 1))])
        covered, total = dirs.get(key, (0, 0))
        covered += sum(1 for c in lines.values() if c > 0)
        total += len(lines)
        dirs[key] = (covered, total)
    return dirs


def prefix_coverage(coverage, prefix):
    covered = total = 0
    for rel, lines in coverage.items():
        if not rel.startswith(prefix):
            continue
        covered += sum(1 for c in lines.values() if c > 0)
        total += len(lines)
    return covered, total


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--source-root", default=".")
    parser.add_argument("--lcov-out", default="")
    parser.add_argument("--floor-file", default="tools/coverage_floor.txt")
    parser.add_argument("--gate-prefix", default="src/")
    args = parser.parse_args()

    gcda = find_gcda(args.build_dir)
    if not gcda:
        print(f"coverage_summary: no .gcda files under {args.build_dir} "
              "(build with --coverage and run the tests first)",
              file=sys.stderr)
        return 1
    docs = run_gcov(gcda, args.build_dir)
    coverage = aggregate(docs, args.source_root)
    if not coverage:
        print("coverage_summary: gcov produced no usable records",
              file=sys.stderr)
        return 1

    if args.lcov_out:
        write_lcov(coverage, args.lcov_out)
        print(f"coverage_summary: wrote {args.lcov_out} "
              f"({len(coverage)} source files)")

    dirs = per_directory(coverage)
    rows = []
    for key in sorted(dirs):
        covered, total = dirs[key]
        pct = 100.0 * covered / total if total else 0.0
        rows.append((key, covered, total, pct))
    covered, total = prefix_coverage(coverage, args.gate_prefix)
    gate_pct = 100.0 * covered / total if total else 0.0

    width = max(len(r[0]) for r in rows)
    print(f"{'directory':<{width}}  covered/total   line%")
    for key, c, t, pct in rows:
        print(f"{key:<{width}}  {c:>7}/{t:<7} {pct:6.1f}%")
    print(f"{args.gate_prefix + ' (gate)':<{width}}  "
          f"{covered:>7}/{total:<7} {gate_pct:6.1f}%")

    floor = None
    if args.floor_file and os.path.exists(args.floor_file):
        with open(args.floor_file) as f:
            for line in f:
                line = line.split("#", 1)[0].strip()
                if line:
                    floor = float(line)
                    break

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        with open(summary, "a") as f:
            f.write("### Line coverage\n\n")
            f.write("| directory | covered | total | line % |\n")
            f.write("|---|---:|---:|---:|\n")
            for key, c, t, pct in rows:
                f.write(f"| `{key}` | {c} | {t} | {pct:.1f}% |\n")
            f.write(f"| **`{args.gate_prefix}` (gate)** | **{covered}** "
                    f"| **{total}** | **{gate_pct:.1f}%** |\n\n")
            if floor is not None:
                verdict = "PASS" if gate_pct >= floor else "FAIL"
                f.write(f"Floor ({args.floor_file}): {floor:.1f}% — "
                        f"**{verdict}**\n\n")

    if floor is not None and gate_pct < floor:
        print(f"coverage_summary: FAIL — {args.gate_prefix} line coverage "
              f"{gate_pct:.1f}% is below the floor {floor:.1f}% "
              f"({args.floor_file})", file=sys.stderr)
        return 1
    if floor is not None:
        print(f"coverage_summary: PASS — {gate_pct:.1f}% >= floor "
              f"{floor:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
