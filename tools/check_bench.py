#!/usr/bin/env python3
"""Benchmark-regression gate over BENCH_*.json artifacts.

Compares the deterministic metrics of freshly produced bench results against
checked-in baselines (bench/baselines/*.json) and fails on any relative
deviation beyond the tolerance. Only seed-deterministic, virtual-time-domain
fields are gated (CHECK_KEYS below): virtual times, byte/message/round
counts, retry accounting, losses. Wall-clock histogram fields (\"*.p50\" etc.)
vary by machine and are deliberately ignored.

Usage:
  tools/check_bench.py --results-dir build-rel/bench \\
      --baseline-dir bench/baselines [--tolerance 0.15]
  tools/check_bench.py --results-dir ... --baseline-dir ... --update
    (rewrites the baselines from the current results instead of checking)

Exit status: 0 = all gated metrics within tolerance, 1 = regression or
missing data, 2 = usage error.
"""

import argparse
import json
import os
import sys

# Deterministic fields gated by the tolerance check. A field listed here is
# compared whenever the baseline run contains it; anything else in the JSON
# (wall-clock percentiles, machine-specific throughput) is informational.
CHECK_KEYS = (
    "virtual_time_s",
    "bytes_worker_to_server",
    "bytes_server_to_worker",
    "messages",
    "rounds",
    "local_pull_hits",
    "local_pull_bytes",
    "retries",
    "retry_backoff_us",
    "dedup_hits",
    # Consistency controller (bench/staleness_sweep.cpp). Both are
    # seed-deterministic: the trainers' stage windows provably keep the
    # staleness gate from blocking, so these gate that the schedule stays
    # gate-clean (any nonzero wait is a planning regression).
    "staleness_waits",
    "staleness_wait_us",
    "final_loss",
    "retry_penalty",
    "sync_time_s",
    "async_time_s",
    "speedup",
    "bytes_match",
    "server_busy_skew",
    "bytes_wire",
    "bytes_logical",
    "wire_ratio",
    "keycache_hits",
    "keycache_installs",
    "keycache_misses",
    # Serving tier (bench/serving_qps.cpp). Latency percentiles here are
    # VIRTUAL-time percentiles from the serving loop's deterministic queueing
    # model — unlike the wall-clock "*.p50" histogram fields, they are
    # seed-deterministic and safe to gate.
    "offered_qps",
    "achieved_qps",
    "shed_rate",
    "requests_offered",
    "requests_served",
    "requests_shed",
    "p50_virtual_us",
    "p95_virtual_us",
    "p99_virtual_us",
    "coalesce_bytes_ratio",
    "epoch_stable",
    "loss_parity",
    # Per-key parameter management (bench/ablation_nups.cpp). All
    # virtual-time-domain and seed-deterministic: wire byte totals per leg,
    # the loopback diversion, and the tiering census.
    "pulled_bytes",
    "pushed_bytes",
    "loopback_bytes",
)


def is_gated(key):
    # "det." fields are the kernel-equivalence metrics written by
    # microbench_dcv_ops: deterministic by construction (fixed seed, fixed
    # sizes, virtual-time domain), and required to be IDENTICAL across SIMD
    # dispatch modes — CI compares a PS2_SIMD=off run against an auto run
    # with --tolerance 0 to prove the scalar and AVX2 backends equivalent.
    # "migrate." fields are the elastic-membership metrics written by
    # bench/elastic_scaleout.cpp (bytes moved, routing epochs, rebalance
    # virtual time, skew reduction): seed-deterministic outputs of the
    # migration planner, gated so resharding regressions fail the bench job.
    # "nups." fields are the per-key tiering metrics written by
    # bench/ablation_nups.cpp (pull-reduction ratios, relocation bytes, the
    # replicated/relocated/cold census): deterministic classifier outputs,
    # gated so a tiering regression fails the bench job.
    return key in CHECK_KEYS or key.startswith(("det.", "migrate.", "nups."))


def load_runs(path):
    """Returns {run_name: {field: value}} from one BENCH_*.json."""
    with open(path) as f:
        doc = json.load(f)
    runs = {}
    for run in doc.get("runs", []):
        fields = {k: v for k, v in run.items() if k != "name"}
        runs[run["name"]] = fields
    return doc.get("bench", os.path.basename(path)), runs


def compare(bench, baseline_runs, result_runs, tolerance, rows):
    """Returns a list of failure strings (empty = pass). Appends one
    (field, baseline, observed, delta, verdict) row per gated metric to
    `rows` for the step-summary table."""
    failures = []
    for run_name, base_fields in baseline_runs.items():
        if run_name not in result_runs:
            failures.append(f"{bench}/{run_name}: run missing from results")
            rows.append((f"{bench}/{run_name}", "-", "missing", "-", "FAIL"))
            continue
        got_fields = result_runs[run_name]
        for key, base in base_fields.items():
            if not is_gated(key):
                continue
            if base is None:
                continue  # null in baseline: value was non-finite, skip
            field = f"{bench}/{run_name}/{key}"
            if key not in got_fields:
                failures.append(f"{field}: missing from results")
                rows.append((field, f"{base:g}", "missing", "-", "FAIL"))
                continue
            got = got_fields[key]
            if got is None:
                failures.append(f"{field}: non-finite result")
                rows.append((field, f"{base:g}", "non-finite", "-", "FAIL"))
                continue
            denom = abs(base) if base != 0 else 1.0
            rel = abs(got - base) / denom
            verdict = "OK" if rel <= tolerance else "FAIL"
            rows.append((field, f"{base:g}", f"{got:g}", f"{rel * 100:+.1f}%",
                         verdict))
            if verdict == "FAIL":
                failures.append(
                    f"{field}: baseline {base:g} vs "
                    f"result {got:g} ({rel * 100:.1f}% off, "
                    f"tolerance {tolerance * 100:.0f}%)"
                )
    return failures


def write_step_summary(rows, tolerance, failures):
    """Emits the gate table to $GITHUB_STEP_SUMMARY (no-op outside CI)."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path or not rows:
        return
    verdict = "FAIL" if failures else "PASS"
    failed = sum(1 for r in rows if r[4] != "OK")
    with open(path, "a") as f:
        f.write(f"### Bench regression gate: {verdict} "
                f"({len(rows)} gated metrics, {failed} failing, "
                f"tolerance ±{tolerance * 100:.0f}%)\n\n")
        f.write("| field | baseline | observed | delta | gate |\n")
        f.write("|---|---:|---:|---:|---|\n")
        # Failures first so they are visible without expanding anything.
        for row in sorted(rows, key=lambda r: r[4] == "OK"):
            mark = ":white_check_mark:" if row[4] == "OK" else ":x:"
            f.write(f"| `{row[0]}` | {row[1]} | {row[2]} | {row[3]} "
                    f"| {mark} {row[4]} |\n")
        f.write("\n")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--results-dir", default=".")
    parser.add_argument("--tolerance", type=float, default=0.15)
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite baselines from the current results instead of checking",
    )
    args = parser.parse_args()

    baselines = sorted(
        f for f in os.listdir(args.baseline_dir)
        if f.startswith("BENCH_") and f.endswith(".json")
    ) if os.path.isdir(args.baseline_dir) else []

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        results = sorted(
            f for f in os.listdir(args.results_dir)
            if f.startswith("BENCH_") and f.endswith(".json")
        )
        if not results:
            print(f"check_bench: no BENCH_*.json in {args.results_dir}")
            return 2
        for name in results:
            src = os.path.join(args.results_dir, name)
            dst = os.path.join(args.baseline_dir, name)
            with open(src) as f:
                doc = json.load(f)  # validate before installing
            with open(dst, "w") as f:
                json.dump(doc, f, indent=2, sort_keys=True)
                f.write("\n")
            print(f"check_bench: installed baseline {dst}")
        return 0

    if not baselines:
        print(f"check_bench: no baselines in {args.baseline_dir}", file=sys.stderr)
        return 1

    failures = []
    rows = []
    checked = 0
    for name in baselines:
        bench, baseline_runs = load_runs(os.path.join(args.baseline_dir, name))
        result_path = os.path.join(args.results_dir, name)
        if not os.path.exists(result_path):
            failures.append(f"{bench}: {name} missing from {args.results_dir}")
            rows.append((f"{bench}", "-", "file missing", "-", "FAIL"))
            continue
        _, result_runs = load_runs(result_path)
        failures.extend(
            compare(bench, baseline_runs, result_runs, args.tolerance, rows))
        gated = sum(
            1
            for fields in baseline_runs.values()
            for k, v in fields.items()
            if is_gated(k) and v is not None
        )
        checked += gated
        print(f"check_bench: {bench}: {len(baseline_runs)} runs, {gated} gated metrics")

    write_step_summary(rows, args.tolerance, failures)
    if failures:
        print(f"\ncheck_bench: FAIL — {len(failures)} regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"check_bench: PASS — {checked} metrics within "
          f"±{args.tolerance * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
