#pragma once

// Dcv: Dimension Co-located Vector — the paper's core abstraction (§4).
//
// A Dcv is one row of a column-partitioned distributed matrix on the
// parameter servers. Dcvs created from the same base via `derive` share the
// matrix's partitioning, so the same dimension of every vector lives on the
// same server and element-wise (column access) operations run entirely
// server-side.
//
// Operator set (paper Table 1):
//   row access:    Pull, PullSparse, Push, Add, Sum, Nnz, Norm2 (+ Max)
//   column access: Axpy, Dot, CopyFrom, SubOf, AddOf, MulOf, DivOf
//                  (+ Fill, Zero, Scale, Zip, ZipAggregate)
//   creation:      DcvContext::Dense / Sparse / Derive (alias Duplicate)
//
// Column ops on NON-co-located Dcvs still work, but take the naive
// pull-compute-push path and cost O(dim) network traffic — the trap of
// paper Fig. 4.

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "linalg/sparse_vector.h"
#include "ps/ps_future.h"
#include "ps/ps_types.h"

namespace ps2 {

class DcvBatch;
class DcvContext;

/// \brief Handle to a distributed vector on the parameter servers.
class Dcv {
 public:
  Dcv() = default;

  uint64_t dim() const { return dim_; }
  RowRef ref() const { return ref_; }
  DcvContext* context() const { return context_; }
  bool valid() const { return context_ != nullptr; }

  /// True if element-wise ops with `other` need no cross-server traffic.
  bool CoLocatedWith(const Dcv& other) const;

  // ---- Row access ----
  //
  // Ops that write the distributed vector are non-const: a Dcv handle is
  // trivially copyable, but the state it names is shared and mutable — the
  // const qualifier tracks whether an op can change what other handles see.

  /// Pulls the whole vector (dense). O(dim) traffic — prefer PullSparse.
  Result<std::vector<double>> Pull() const;

  /// Pulls only `indices` (sorted, unique): PS2's sparse communication.
  Result<std::vector<double>> PullSparse(
      const std::vector<uint64_t>& indices) const;

  /// Adds a dense delta (the gradient-push of paper Fig. 3 line 18).
  Status Push(const std::vector<double>& delta);

  /// Adds a sparse delta.
  Status Add(const SparseVector& delta);

  /// Overwrites the vector with `values` (zero + push).
  Status Set(const std::vector<double>& values);

  Result<double> Sum() const;
  Result<double> Nnz() const;
  Result<double> Norm2() const;
  Result<double> Max() const;

  // ---- Asynchronous row access (paper §5.1's asynchronous client) ----
  //
  // Returns immediately with a PsFuture; Wait()/Get() on the issuing thread
  // retrieves the value and charges the traffic. Ops issued while another is
  // outstanding overlap it and share one round of latency.

  PsFuture<std::vector<double>> PullAsync() const;
  PsFuture<std::vector<double>> PullSparseAsync(
      const std::vector<uint64_t>& indices) const;
  PsFuture<Ack> PushAsync(const std::vector<double>& delta);
  PsFuture<Ack> AddAsync(const SparseVector& delta);

  /// Opens a coalescing multi-op builder on this DCV's context (see
  /// dcv/dcv_batch.h). Sugar for DcvContext::Batch().
  DcvBatch Batch() const;

  // ---- Column access (element-wise, server-side when co-located) ----

  Result<double> Dot(const Dcv& other) const;
  /// this += alpha * x  (the paper's axpy / iaxpy).
  Status Axpy(const Dcv& x, double alpha);
  Status CopyFrom(const Dcv& src);
  Status AddOf(const Dcv& a, const Dcv& b);  ///< this = a + b
  Status SubOf(const Dcv& a, const Dcv& b);  ///< this = a - b
  Status MulOf(const Dcv& a, const Dcv& b);  ///< this = a * b
  Status DivOf(const Dcv& a, const Dcv& b);  ///< this = a / b
  Status Fill(double value);
  Status Zero() { return Fill(0.0); }
  Status Scale(double alpha);

  /// Runs registered server-side UDF `udf_id` over [this, others...] — the
  /// paper's `zip(...).mapPartition{...}` (Fig. 3 lines 22-26). The UDF may
  /// mutate every zipped row, hence non-const.
  Status Zip(const std::vector<Dcv>& others, int udf_id);

  /// Read-only server-side aggregation over [this, others...]; returns one
  /// result vector per partition (paper Fig. 8's split finding).
  Result<std::vector<std::vector<double>>> ZipAggregate(
      const std::vector<Dcv>& others, int udf_id) const;

 private:
  friend class DcvContext;
  Dcv(DcvContext* context, RowRef ref, uint64_t dim)
      : context_(context), ref_(ref), dim_(dim) {}

  DcvContext* context_ = nullptr;
  RowRef ref_;
  uint64_t dim_ = 0;
};

}  // namespace ps2
