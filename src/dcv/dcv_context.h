#pragma once

// DcvContext: creation ops and server-side UDF registration for DCVs.
//
// Owns the parameter-server application (PsMaster + servers) attached to a
// Cluster, mirroring PS2's deployment as a separate application alongside
// Spark. All DCV handles are created here.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "dcv/dcv.h"
#include "ps/ps_client.h"
#include "ps/ps_master.h"

namespace ps2 {

class DcvBatch;

/// \brief Factory and runtime context for Dimension Co-located Vectors.
class DcvContext {
 public:
  /// Launches the PS application against `cluster` (spec.num_servers
  /// servers).
  explicit DcvContext(Cluster* cluster);

  Cluster* cluster() const { return cluster_; }
  PsMaster* master() { return master_.get(); }
  PsClient* client() { return client_.get(); }

  /// Creates a dense DCV of `dim` columns, reserving `reserve_rows` rows in
  /// the backing matrix for later `derive` calls (paper §4.3: "(k-1) rows
  /// are pre-allocated for future usage").
  /// `alignment` pins partition boundaries to multiples of a unit (GBDT
  /// histograms); `num_servers` limits the spread (0 = all).
  Result<Dcv> Dense(uint64_t dim, uint32_t reserve_rows = 10,
                    uint64_t alignment = 1, int num_servers = 0,
                    const std::string& name = "dcv");

  /// Creates a sparse-storage DCV (hash-map shards; for very high
  /// dimensional, rarely touched vectors). Row ops only.
  Result<Dcv> Sparse(uint64_t dim, uint32_t reserve_rows = 10,
                     const std::string& name = "dcv_sparse");

  /// Creates a DCV co-located with `base` (the paper's `derive`): hands out
  /// the next pre-allocated row, or transparently allocates an aligned
  /// extension matrix when the reservation is exhausted.
  Result<Dcv> Derive(const Dcv& base);

  /// Paper Fig. 6 alias.
  Result<Dcv> Duplicate(const Dcv& base) { return Derive(base); }

  /// Derives `n` co-located DCVs at once.
  Result<std::vector<Dcv>> DeriveN(const Dcv& base, size_t n);

  /// Creates a matrix of `num_rows` co-located DCVs in one shot and returns
  /// every row handle — the DeepWalk embedding store (paper Fig. 6 allocates
  /// a V*2-row matrix). Rows are initialized server-side to hash-uniform
  /// values in [-init_scale, init_scale] (0 = leave zeroed).
  Result<std::vector<Dcv>> DenseMatrix(uint64_t dim, uint32_t num_rows,
                                       double init_scale = 0.0,
                                       uint64_t init_seed = 0,
                                       const std::string& name = "dcv_matrix",
                                       int num_servers = 0);

  /// Opens a coalescing multi-op builder (dcv/dcv_batch.h): stage dots,
  /// axpys, row pulls/pushes and sparse pulls/pushes, then Submit() once —
  /// the whole batch overlaps into a single round of latency.
  DcvBatch Batch();

  /// Registers a mutating server-side function for use with Dcv::Zip.
  int RegisterZip(ZipFn fn) { return master_->udfs()->RegisterZip(std::move(fn)); }

  /// Registers an aggregating server-side function for Dcv::ZipAggregate.
  int RegisterZipAggregate(ZipAggFn fn) {
    return master_->udfs()->RegisterZipAggregate(std::move(fn));
  }

  /// Number of servers a DCV's matrix actually spans.
  Result<int> SpanServers(const Dcv& dcv) const;

 private:
  friend class Dcv;

  Cluster* cluster_;
  std::unique_ptr<PsMaster> master_;
  std::unique_ptr<PsClient> client_;

  std::mutex mu_;
  // base matrix id -> latest extension matrix id for derive overflow.
  std::map<int, int> extensions_;
};

}  // namespace ps2
