#include "dcv/dcv_batch.h"

#include "common/logging.h"
#include "dcv/dcv_context.h"
#include "obs/trace.h"

namespace ps2 {

DcvBatch::DcvBatch(DcvContext* context) : context_(context) {
  PS2_CHECK(context != nullptr);
}

void DcvBatch::Note(const Status& status) {
  if (error_.ok() && !status.ok()) error_ = status;
}

Status DcvBatch::CheckHandle(const Dcv& dcv) const {
  if (!dcv.valid() || dcv.context() != context_) {
    return Status::FailedPrecondition("DCV does not belong to this batch's context");
  }
  return Status::OK();
}

size_t DcvBatch::Dot(const Dcv& a, const Dcv& b) {
  Note(CheckHandle(a));
  Note(CheckHandle(b));
  dot_pairs_.emplace_back(a.ref(), b.ref());
  return dot_pairs_.size() - 1;
}

DcvBatch& DcvBatch::Axpy(Dcv& dst, const Dcv& src, double alpha) {
  Note(CheckHandle(dst));
  Note(CheckHandle(src));
  axpy_tasks_.push_back({dst.ref(), src.ref(), alpha});
  return *this;
}

size_t DcvBatch::Pull(const Dcv& v) {
  Note(CheckHandle(v));
  pull_rows_.push_back(v.ref());
  return pull_rows_.size() - 1;
}

DcvBatch& DcvBatch::Push(Dcv& v, std::vector<double> delta) {
  Note(CheckHandle(v));
  push_rows_.push_back(v.ref());
  push_deltas_.push_back(std::move(delta));
  return *this;
}

size_t DcvBatch::PullSparse(const std::vector<Dcv>& rows,
                            std::vector<uint64_t> indices,
                            bool compress_counts) {
  SparsePullGroup group;
  group.rows.reserve(rows.size());
  for (const Dcv& r : rows) {
    Note(CheckHandle(r));
    group.rows.push_back(r.ref());
  }
  group.indices = std::move(indices);
  group.compress = compress_counts;
  sparse_pulls_.push_back(std::move(group));
  return sparse_pulls_.size() - 1;
}

DcvBatch& DcvBatch::PushSparse(std::vector<Dcv>& rows,
                               std::vector<SparseVector> deltas,
                               bool compress_counts) {
  SparsePushGroup group;
  group.rows.reserve(rows.size());
  for (const Dcv& r : rows) {
    Note(CheckHandle(r));
    group.rows.push_back(r.ref());
  }
  group.deltas = std::move(deltas);
  group.compress = compress_counts;
  sparse_pushes_.push_back(std::move(group));
  return *this;
}

bool DcvBatch::empty() const {
  return dot_pairs_.empty() && axpy_tasks_.empty() && pull_rows_.empty() &&
         push_rows_.empty() && sparse_pulls_.empty() && sparse_pushes_.empty();
}

DcvBatch::Future DcvBatch::Submit() {
  PS2_TRACE_SPAN("dcv", "batch_submit");
  PS2_CHECK(!submitted_) << "DcvBatch::Submit called twice";
  submitted_ = true;
  Future f;
  if (!error_.ok()) {
    f.error_ = error_;
    return f;
  }
  PsClient* client = context_->client();
  // Issue groups back-to-back: the first becomes the round leader, the rest
  // overlap it — the whole batch charges one round of latency.
  if (!dot_pairs_.empty()) f.dots_ = client->DotBatchAsync(dot_pairs_);
  if (!axpy_tasks_.empty()) f.axpys_ = client->AxpyBatchAsync(axpy_tasks_);
  if (!pull_rows_.empty()) f.pulls_ = client->PullRowsAsync(pull_rows_);
  if (!push_rows_.empty()) {
    f.pushes_ = client->PushRowsAsync(push_rows_, push_deltas_);
  }
  for (const SparsePullGroup& g : sparse_pulls_) {
    f.sparse_pulls_.push_back(
        client->PullSparseRowsAsync(g.rows, g.indices, g.compress));
  }
  for (const SparsePushGroup& g : sparse_pushes_) {
    f.sparse_pushes_.push_back(
        client->PushSparseRowsAsync(g.rows, g.deltas, g.compress));
  }
  return f;
}

Status DcvBatch::Future::Wait() {
  PS2_TRACE_SPAN("dcv", "batch_wait");
  Status first = error_;
  auto track = [&first](const Status& s) {
    if (first.ok() && !s.ok()) first = s;
  };
  if (dots_.valid()) track(dots_.Wait());
  if (axpys_.valid()) track(axpys_.Wait());
  if (pulls_.valid()) track(pulls_.Wait());
  if (pushes_.valid()) track(pushes_.Wait());
  for (auto& f : sparse_pulls_) track(f.Wait());
  for (auto& f : sparse_pushes_) track(f.Wait());
  return first;
}

Result<DcvBatchResults> DcvBatch::Future::Get() {
  DcvBatchResults out;
  Status first = error_;
  auto track = [&first](const Status& s) {
    if (first.ok() && !s.ok()) first = s;
  };
  // Drain everything even after an error so the window always empties and
  // every op's traffic is charged.
  if (dots_.valid()) {
    Result<std::vector<double>> r = dots_.Get();
    if (r.ok()) out.dots = std::move(*r);
    track(r.status());
  }
  if (axpys_.valid()) track(axpys_.Wait());
  if (pulls_.valid()) {
    Result<std::vector<std::vector<double>>> r = pulls_.Get();
    if (r.ok()) out.pulled = std::move(*r);
    track(r.status());
  }
  if (pushes_.valid()) track(pushes_.Wait());
  for (auto& f : sparse_pulls_) {
    Result<std::vector<std::vector<double>>> r = f.Get();
    if (r.ok()) out.sparse_pulled.push_back(std::move(*r));
    track(r.status());
  }
  for (auto& f : sparse_pushes_) track(f.Wait());
  if (!first.ok()) return first;
  return out;
}

}  // namespace ps2
