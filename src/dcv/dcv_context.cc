#include "dcv/dcv_context.h"

#include "common/logging.h"
#include "dcv/dcv_batch.h"

namespace ps2 {

DcvContext::DcvContext(Cluster* cluster)
    : cluster_(cluster),
      master_(std::make_unique<PsMaster>(cluster)),
      client_(std::make_unique<PsClient>(master_.get())) {}

Result<Dcv> DcvContext::Dense(uint64_t dim, uint32_t reserve_rows,
                              uint64_t alignment, int num_servers,
                              const std::string& name) {
  MatrixOptions options;
  options.name = name;
  options.dim = dim;
  options.reserve_rows = reserve_rows;
  options.storage = MatrixStorage::kDense;
  options.alignment = alignment;
  options.num_servers = num_servers;
  PS2_ASSIGN_OR_RETURN(int matrix_id, master_->CreateMatrix(options));
  return Dcv(this, RowRef{matrix_id, 0}, dim);
}

Result<Dcv> DcvContext::Sparse(uint64_t dim, uint32_t reserve_rows,
                               const std::string& name) {
  MatrixOptions options;
  options.name = name;
  options.dim = dim;
  options.reserve_rows = reserve_rows;
  options.storage = MatrixStorage::kSparse;
  PS2_ASSIGN_OR_RETURN(int matrix_id, master_->CreateMatrix(options));
  return Dcv(this, RowRef{matrix_id, 0}, dim);
}

Result<Dcv> DcvContext::Derive(const Dcv& base) {
  if (!base.valid()) return Status::InvalidArgument("derive from invalid DCV");
  // Find the matrix currently handing out rows for this group: the base
  // matrix, or its newest extension.
  int target;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = extensions_.find(base.ref().matrix_id);
    target = it == extensions_.end() ? base.ref().matrix_id : it->second;
  }
  Result<RowRef> row = master_->AllocateRow(target);
  if (row.ok()) return Dcv(this, *row, base.dim());
  if (!row.status().IsOutOfRange()) return row.status();

  // Reservation exhausted: grow the group with an aligned extension matrix
  // (same partitioner + rotation, hence still co-located).
  PS2_ASSIGN_OR_RETURN(MatrixMeta base_meta,
                       master_->GetMeta(base.ref().matrix_id));
  PS2_ASSIGN_OR_RETURN(
      int ext_id,
      master_->CreateAlignedMatrix(target, base_meta.name + ".ext",
                                   base_meta.num_rows));
  {
    std::lock_guard<std::mutex> lock(mu_);
    extensions_[base.ref().matrix_id] = ext_id;
  }
  // Row 0 of the new matrix is the derived DCV.
  return Dcv(this, RowRef{ext_id, 0}, base.dim());
}

Result<std::vector<Dcv>> DcvContext::DeriveN(const Dcv& base, size_t n) {
  std::vector<Dcv> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    PS2_ASSIGN_OR_RETURN(Dcv dcv, Derive(base));
    out.push_back(dcv);
  }
  return out;
}

Result<std::vector<Dcv>> DcvContext::DenseMatrix(uint64_t dim,
                                                 uint32_t num_rows,
                                                 double init_scale,
                                                 uint64_t init_seed,
                                                 const std::string& name,
                                                 int num_servers) {
  MatrixOptions options;
  options.name = name;
  options.dim = dim;
  options.reserve_rows = num_rows;
  options.num_servers = num_servers;
  PS2_ASSIGN_OR_RETURN(int matrix_id, master_->CreateMatrix(options));
  // Claim every reserved row so later Derive calls on these handles extend
  // rather than alias.
  for (uint32_t r = 1; r < num_rows; ++r) {
    PS2_ASSIGN_OR_RETURN(RowRef ref, master_->AllocateRow(matrix_id));
    (void)ref;
  }
  if (init_scale != 0.0) {
    PS2_RETURN_NOT_OK(
        client_->MatrixInit(matrix_id, 0, num_rows, init_scale, init_seed));
  }
  std::vector<Dcv> rows;
  rows.reserve(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    rows.push_back(Dcv(this, RowRef{matrix_id, r}, dim));
  }
  return rows;
}

Result<int> DcvContext::SpanServers(const Dcv& dcv) const {
  PS2_ASSIGN_OR_RETURN(MatrixMeta meta,
                       master_->GetMeta(dcv.ref().matrix_id));
  return meta.partitioner.num_servers();
}

DcvBatch DcvContext::Batch() { return DcvBatch(this); }

}  // namespace ps2
