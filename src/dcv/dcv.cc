#include "dcv/dcv.h"

#include <cmath>

#include "common/logging.h"
#include "dcv/dcv_batch.h"
#include "obs/trace.h"
#include "dcv/dcv_context.h"

namespace ps2 {

namespace {
Status CheckValid(const Dcv& dcv) {
  if (!dcv.valid()) return Status::FailedPrecondition("invalid DCV handle");
  return Status::OK();
}
}  // namespace

bool Dcv::CoLocatedWith(const Dcv& other) const {
  if (!valid() || !other.valid() || context_ != other.context_) return false;
  if (ref_.matrix_id == other.ref_.matrix_id) return true;
  // A replicated hot row (DESIGN.md §5d) lives in full on every server, so
  // it reads as co-located with everything in the same context.
  HotspotManager* hotspot = context_->master()->hotspot();
  if (hotspot->IsReplicated(ref_) || hotspot->IsReplicated(other.ref_)) {
    return true;
  }
  Result<MatrixMeta> a = context_->master()->GetMeta(ref_.matrix_id);
  Result<MatrixMeta> b = context_->master()->GetMeta(other.ref_.matrix_id);
  if (!a.ok() || !b.ok()) return false;
  return a->partitioner.CoLocatedWith(b->partitioner);
}

Result<std::vector<double>> Dcv::Pull() const {
  PS2_TRACE_SPAN("dcv", "pull");
  PS2_RETURN_NOT_OK(CheckValid(*this));
  return context_->client()->PullDense(ref_);
}

Result<std::vector<double>> Dcv::PullSparse(
    const std::vector<uint64_t>& indices) const {
  PS2_TRACE_SPAN("dcv", "pull_sparse");
  PS2_RETURN_NOT_OK(CheckValid(*this));
  return context_->client()->PullSparse(ref_, indices);
}

Status Dcv::Push(const std::vector<double>& delta) {
  PS2_TRACE_SPAN("dcv", "push");
  PS2_RETURN_NOT_OK(CheckValid(*this));
  return context_->client()->PushDense(ref_, delta);
}

Status Dcv::Add(const SparseVector& delta) {
  PS2_TRACE_SPAN("dcv", "add");
  PS2_RETURN_NOT_OK(CheckValid(*this));
  return context_->client()->PushSparse(ref_, delta);
}

Status Dcv::Set(const std::vector<double>& values) {
  PS2_RETURN_NOT_OK(CheckValid(*this));
  PS2_RETURN_NOT_OK(Fill(0.0));
  return Push(values);
}

PsFuture<std::vector<double>> Dcv::PullAsync() const {
  if (Status s = CheckValid(*this); !s.ok()) {
    return MakeReadyFuture<std::vector<double>>(std::move(s));
  }
  return context_->client()->PullDenseAsync(ref_);
}

PsFuture<std::vector<double>> Dcv::PullSparseAsync(
    const std::vector<uint64_t>& indices) const {
  if (Status s = CheckValid(*this); !s.ok()) {
    return MakeReadyFuture<std::vector<double>>(std::move(s));
  }
  return context_->client()->PullSparseAsync(ref_, indices);
}

PsFuture<Ack> Dcv::PushAsync(const std::vector<double>& delta) {
  if (Status s = CheckValid(*this); !s.ok()) {
    return MakeReadyFuture<Ack>(std::move(s));
  }
  return context_->client()->PushDenseAsync(ref_, delta);
}

PsFuture<Ack> Dcv::AddAsync(const SparseVector& delta) {
  if (Status s = CheckValid(*this); !s.ok()) {
    return MakeReadyFuture<Ack>(std::move(s));
  }
  return context_->client()->PushSparseAsync(ref_, delta);
}

DcvBatch Dcv::Batch() const {
  PS2_CHECK(valid()) << "Batch() on an invalid DCV handle";
  return DcvBatch(context_);
}

Result<double> Dcv::Sum() const {
  PS2_RETURN_NOT_OK(CheckValid(*this));
  return context_->client()->RowAggregate(ref_, RowAggKind::kSum);
}

Result<double> Dcv::Nnz() const {
  PS2_RETURN_NOT_OK(CheckValid(*this));
  return context_->client()->RowAggregate(ref_, RowAggKind::kNnz);
}

Result<double> Dcv::Norm2() const {
  PS2_RETURN_NOT_OK(CheckValid(*this));
  PS2_ASSIGN_OR_RETURN(
      double sq,
      context_->client()->RowAggregate(ref_, RowAggKind::kNorm2Squared));
  return std::sqrt(sq);
}

Result<double> Dcv::Max() const {
  PS2_RETURN_NOT_OK(CheckValid(*this));
  return context_->client()->RowAggregate(ref_, RowAggKind::kMax);
}

Result<double> Dcv::Dot(const Dcv& other) const {
  PS2_TRACE_SPAN("dcv", "dot");
  PS2_RETURN_NOT_OK(CheckValid(*this));
  PS2_RETURN_NOT_OK(CheckValid(other));
  return context_->client()->Dot(ref_, other.ref_);
}

Status Dcv::Axpy(const Dcv& x, double alpha) {
  PS2_TRACE_SPAN("dcv", "axpy");
  PS2_RETURN_NOT_OK(CheckValid(*this));
  PS2_RETURN_NOT_OK(CheckValid(x));
  return context_->client()->ColumnOp(ColOpKind::kAxpy, ref_, {x.ref_}, alpha);
}

Status Dcv::CopyFrom(const Dcv& src) {
  PS2_RETURN_NOT_OK(CheckValid(*this));
  PS2_RETURN_NOT_OK(CheckValid(src));
  return context_->client()->ColumnOp(ColOpKind::kCopy, ref_, {src.ref_});
}

Status Dcv::AddOf(const Dcv& a, const Dcv& b) {
  PS2_RETURN_NOT_OK(CheckValid(*this));
  return context_->client()->ColumnOp(ColOpKind::kAdd, ref_,
                                      {a.ref_, b.ref_});
}

Status Dcv::SubOf(const Dcv& a, const Dcv& b) {
  PS2_RETURN_NOT_OK(CheckValid(*this));
  return context_->client()->ColumnOp(ColOpKind::kSub, ref_,
                                      {a.ref_, b.ref_});
}

Status Dcv::MulOf(const Dcv& a, const Dcv& b) {
  PS2_RETURN_NOT_OK(CheckValid(*this));
  return context_->client()->ColumnOp(ColOpKind::kMul, ref_,
                                      {a.ref_, b.ref_});
}

Status Dcv::DivOf(const Dcv& a, const Dcv& b) {
  PS2_RETURN_NOT_OK(CheckValid(*this));
  return context_->client()->ColumnOp(ColOpKind::kDiv, ref_,
                                      {a.ref_, b.ref_});
}

Status Dcv::Fill(double value) {
  PS2_RETURN_NOT_OK(CheckValid(*this));
  return context_->client()->ColumnOp(ColOpKind::kFill, ref_, {}, value);
}

Status Dcv::Scale(double alpha) {
  PS2_RETURN_NOT_OK(CheckValid(*this));
  return context_->client()->ColumnOp(ColOpKind::kScale, ref_, {}, alpha);
}

Status Dcv::Zip(const std::vector<Dcv>& others, int udf_id) {
  PS2_TRACE_SPAN("dcv", "zip");
  PS2_RETURN_NOT_OK(CheckValid(*this));
  std::vector<RowRef> rows{ref_};
  for (const Dcv& d : others) {
    PS2_RETURN_NOT_OK(CheckValid(d));
    rows.push_back(d.ref_);
  }
  return context_->client()->Zip(rows, udf_id);
}

Result<std::vector<std::vector<double>>> Dcv::ZipAggregate(
    const std::vector<Dcv>& others, int udf_id) const {
  PS2_TRACE_SPAN("dcv", "zip_aggregate");
  PS2_RETURN_NOT_OK(CheckValid(*this));
  std::vector<RowRef> rows{ref_};
  for (const Dcv& d : others) {
    PS2_RETURN_NOT_OK(CheckValid(d));
    rows.push_back(d.ref_);
  }
  return context_->client()->ZipAggregate(rows, udf_id);
}

}  // namespace ps2
