#pragma once

// Dcv::Batch() — the unified coalescing builder over the PS batch protocol.
//
// Workloads that touch many DCVs per step (DeepWalk scores every walk pair,
// LDA pulls its vocabulary slice of every topic row) used to call the
// ad-hoc PsClient batch entry points (DotBatch / AxpyBatch / PullRows /
// PullSparseRows / PushSparseRows) directly. DcvBatch subsumes them: stage
// any mix of dots, axpys, row pulls/pushes and shared-index sparse
// pulls/pushes, then Submit() once. Staged work coalesces into one wire op
// per kind, and the ops are issued back-to-back through the async client —
// the first is the round leader, the rest ride its latency window
// (TaskTraffic::pipelined_rounds), so a whole batch costs one round of
// latency no matter how many kinds it mixes.
//
//   DcvBatch batch = ctx.Batch();
//   size_t uv = batch.Dot(u, v);
//   batch.Axpy(u, v, -lr);
//   size_t counts = batch.PullSparse(topic_rows, vocab, /*compress=*/true);
//   DcvBatch::Future f = batch.Submit();   // everything in flight, 1 round
//   ...overlap local compute here...
//   DcvBatchResults r = *f.Get();
//   r.dots[uv]; r.sparse_pulled[counts];
//
// A builder is single-shot: Submit() (or Execute()) may be called once.
// Staging never talks to the servers; all traffic happens at Submit().

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/result.h"
#include "dcv/dcv.h"
#include "linalg/sparse_vector.h"
#include "ps/ps_client.h"
#include "ps/ps_future.h"

namespace ps2 {

class DcvContext;

/// \brief Values produced by a submitted batch, indexed by staging slot.
struct DcvBatchResults {
  /// One scalar per Dot() call, in staging order.
  std::vector<double> dots;
  /// One full row per Pull() call, in staging order.
  std::vector<std::vector<double>> pulled;
  /// One [row][index] table per PullSparse() group, in staging order.
  std::vector<std::vector<std::vector<double>>> sparse_pulled;
};

/// \brief Staged multi-op builder; see file comment.
class DcvBatch {
 public:
  /// In-flight handle for a submitted batch. Wait/Get drain every underlying
  /// op (even after the first error) so the client window always empties.
  class Future {
   public:
    Future() = default;

    /// Blocks until every staged op completes; first error in staging-group
    /// order (dots, axpys, pulls, pushes, sparse pulls, sparse pushes).
    Status Wait();

    /// Wait() then assemble the results. Call at most once.
    Result<DcvBatchResults> Get();

   private:
    friend class DcvBatch;

    Status error_ = Status::OK();  ///< staging-time error, if any
    PsFuture<std::vector<double>> dots_;
    PsFuture<Ack> axpys_;
    PsFuture<std::vector<std::vector<double>>> pulls_;
    PsFuture<Ack> pushes_;
    std::vector<PsFuture<std::vector<std::vector<double>>>> sparse_pulls_;
    std::vector<PsFuture<Ack>> sparse_pushes_;
  };

  explicit DcvBatch(DcvContext* context);

  // ---- Staging (no traffic; slot ids index DcvBatchResults) ----

  /// Stages a distributed dot; result lands in DcvBatchResults::dots[slot].
  size_t Dot(const Dcv& a, const Dcv& b);

  /// Stages dst += alpha * src.
  DcvBatch& Axpy(Dcv& dst, const Dcv& src, double alpha);

  /// Stages a full-row pull; lands in DcvBatchResults::pulled[slot].
  size_t Pull(const Dcv& v);

  /// Stages a dense-delta push into v.
  DcvBatch& Push(Dcv& v, std::vector<double> delta);

  /// Stages one shared-index sparse pull over `rows` (LDA's vocabulary
  /// slice); lands in DcvBatchResults::sparse_pulled[slot].
  /// `compress_counts` uses varint integer compression (integer matrices).
  size_t PullSparse(const std::vector<Dcv>& rows,
                    std::vector<uint64_t> indices,
                    bool compress_counts = false);

  /// Stages per-row sparse deltas into `rows`.
  DcvBatch& PushSparse(std::vector<Dcv>& rows,
                       std::vector<SparseVector> deltas,
                       bool compress_counts = false);

  /// True if nothing has been staged.
  bool empty() const;

  // ---- Execution ----

  /// Issues every staged group through the async client (one overlapped
  /// round) and returns the in-flight handle. Single-shot.
  Future Submit();

  /// Submit() and block for the results.
  Result<DcvBatchResults> Execute() { return Submit().Get(); }

 private:
  struct SparsePullGroup {
    std::vector<RowRef> rows;
    std::vector<uint64_t> indices;
    bool compress;
  };
  struct SparsePushGroup {
    std::vector<RowRef> rows;
    std::vector<SparseVector> deltas;
    bool compress;
  };

  void Note(const Status& status);
  Status CheckHandle(const Dcv& dcv) const;

  DcvContext* context_;
  bool submitted_ = false;
  Status error_ = Status::OK();

  std::vector<std::pair<RowRef, RowRef>> dot_pairs_;
  std::vector<PsClient::AxpyTask> axpy_tasks_;
  std::vector<RowRef> pull_rows_;
  std::vector<RowRef> push_rows_;
  std::vector<std::vector<double>> push_deltas_;
  std::vector<SparsePullGroup> sparse_pulls_;
  std::vector<SparsePushGroup> sparse_pushes_;
};

}  // namespace ps2
