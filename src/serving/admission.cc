#include "serving/admission.h"

#include <algorithm>

namespace ps2 {

Status AdmissionOptions::Validate() const {
  if (rate_qps < 0.0) {
    return Status::InvalidArgument("rate_qps must be >= 0");
  }
  if (rate_qps > 0.0 && burst < 1.0) {
    return Status::InvalidArgument("burst must be >= 1 when rate limiting");
  }
  return Status::OK();
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options), tokens_(options.burst) {}

bool AdmissionController::Admit(double now_s, size_t queue_depth) {
  if (options_.max_queue_depth > 0 && queue_depth >= options_.max_queue_depth) {
    ++shed_;
    return false;
  }
  if (options_.rate_qps > 0.0) {
    tokens_ = std::min(options_.burst,
                       tokens_ + (now_s - last_refill_s_) * options_.rate_qps);
    last_refill_s_ = now_s;
    if (tokens_ < 1.0) {
      ++shed_;
      return false;
    }
    tokens_ -= 1.0;
  }
  ++admitted_;
  return true;
}

}  // namespace ps2
