#pragma once

// The serving event loop (DESIGN.md §10): replays an open-loop request
// stream (traffic_gen.h) through admission control (admission.h) and the
// coalescing frontend (frontend.h) against a pinned snapshot epoch, in
// virtual time.
//
// Queueing model: one logical serving pipeline. Admitted requests wait in
// a FIFO queue; whenever the pipeline is free it takes up to `batch_max`
// queued requests and serves them as one coalesced fan-out, whose service
// time is the cost model's price for the traffic the exchange actually
// recorded (TaskWorkerTime: round latency + bytes + compute). A request's
// virtual latency is completion minus arrival — queueing delay included —
// so driving the offered load past the pipeline's capacity visibly fattens
// the tail until the queue-depth shed kicks in. Everything (arrivals,
// admission, service order, latencies) derives from the seed and the cost
// model: the p50/p95/p99 the report carries are deterministic and CI-gated.
//
// The recorded traffic is charged to the cluster once, at the end: metrics
// get the full per-server breakdown, and the clock advances by the loop's
// virtual span (not the cost model's out-of-task estimate — the loop itself
// already scheduled the work in virtual time).

#include <cstdint>

#include "common/result.h"
#include "serving/admission.h"
#include "serving/frontend.h"
#include "serving/traffic_gen.h"

namespace ps2 {

class PsClient;
class PsMaster;

/// \brief One serving run: how long, how batchy, what load, what limits.
struct ServingLoopOptions {
  /// Arrivals are generated for this many virtual seconds.
  double duration_s = 1.0;
  /// Max requests coalesced into one fan-out.
  size_t batch_max = 8;
  TrafficGenOptions traffic;
  AdmissionOptions admission;
  ServingFrontendOptions frontend;
};

/// \brief What a serving run measured. All fields are virtual-time derived
/// and seed-deterministic.
struct ServingReport {
  uint64_t offered = 0;   ///< arrivals generated
  uint64_t admitted = 0;  ///< arrivals past admission control
  uint64_t shed = 0;      ///< arrivals dropped (bucket or queue bound)
  uint64_t served = 0;    ///< requests answered (== admitted)
  double offered_qps = 0.0;
  double achieved_qps = 0.0;  ///< served / span_s
  double shed_rate = 0.0;     ///< shed / offered
  /// First arrival to last completion (>= duration_s under backlog).
  double span_s = 0.0;
  /// Exact percentiles of per-request virtual latency in microseconds.
  double p50_us = 0.0;
  double p95_us = 0.0;
  double p99_us = 0.0;
};

/// Runs the loop on the coordinator (between training stages). Requires a
/// published snapshot epoch; the frontend repins as training publishes more.
Result<ServingReport> RunServingLoop(PsMaster* master, PsClient* client,
                                     const ServingLoopOptions& options);

}  // namespace ps2
