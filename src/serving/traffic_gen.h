#pragma once

// Open-loop serving traffic (DESIGN.md §10).
//
// The TrafficGen produces the request stream the serving bench replays:
// Poisson arrivals at a configured offered rate (inter-arrival gaps are
// exponential, so bursts happen naturally) over a Zipf-popular key space —
// the same power-law primitives (data/zipf.h) the dataset generators use,
// so the serving mix matches the skew the training side optimizes for and
// hot rows surface in the hotspot sketches the same way.
//
// Open-loop matters: arrivals do NOT wait for responses, so an overloaded
// server sees the queue grow instead of the load politely backing off —
// which is what makes admission control (admission.h) measurable.
//
// Everything is drawn from one seeded Rng in virtual time; a (seed, options)
// pair replays bit-identically.

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ps/ps_types.h"

namespace ps2 {

/// \brief Shape of the offered serving load.
struct TrafficGenOptions {
  /// Offered arrival rate in requests per virtual second.
  double qps = 1000.0;
  /// Row/column popularity skew (data/zipf.h PowerLawRank exponent):
  /// 1 = uniform, larger = more skewed toward low ranks.
  double skew = 1.5;
  /// The served matrix and how many of its leading rows requests draw from.
  int matrix_id = 0;
  uint32_t num_rows = 1;
  /// Row width, for index draws.
  uint64_t dim = 0;
  /// Column indices sampled per request (deduped, so the realized count can
  /// be lower); 0 = full-row reads.
  uint32_t keys_per_request = 0;
  uint64_t seed = 1;

  Status Validate() const;
};

/// \brief One serving request: a row (or a sparse slice of it) wanted at a
/// point in virtual time.
struct ServingRequest {
  double arrival_s = 0.0;
  RowRef row;
  /// Sorted unique column indices; empty = the whole row.
  std::vector<uint64_t> indices;
};

/// \brief Deterministic Poisson/Zipf request stream.
class TrafficGen {
 public:
  explicit TrafficGen(const TrafficGenOptions& options);

  /// The next arrival: advances the internal clock by an exponential gap
  /// and draws the request's row and indices.
  ServingRequest Next();

  /// Virtual time of the last arrival returned by Next().
  double now_s() const { return now_s_; }

 private:
  TrafficGenOptions options_;
  Rng rng_;
  double now_s_ = 0.0;
};

}  // namespace ps2
