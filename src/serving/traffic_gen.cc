#include "serving/traffic_gen.h"

#include <algorithm>
#include <cmath>

#include "data/zipf.h"

namespace ps2 {

Status TrafficGenOptions::Validate() const {
  if (qps <= 0.0) return Status::InvalidArgument("qps must be > 0");
  if (skew <= 0.0) return Status::InvalidArgument("skew must be > 0");
  if (num_rows == 0) return Status::InvalidArgument("num_rows must be > 0");
  if (keys_per_request > 0 && dim == 0) {
    return Status::InvalidArgument("dim must be > 0 for indexed reads");
  }
  return Status::OK();
}

TrafficGen::TrafficGen(const TrafficGenOptions& options)
    : options_(options), rng_(options.seed ^ 0x5E41C0DEULL) {}

ServingRequest TrafficGen::Next() {
  // Poisson process: exponential inter-arrival gaps. NextDouble() is in
  // [0, 1), so 1 - u is in (0, 1] and the log is finite.
  now_s_ += -std::log(1.0 - rng_.NextDouble()) / options_.qps;

  ServingRequest req;
  req.arrival_s = now_s_;
  req.row.matrix_id = options_.matrix_id;
  // Plain (unscattered) power law: rank == row id, so the hot rows are the
  // low ids — easy to reason about in tests and hotspot sketches.
  req.row.row = static_cast<uint32_t>(
      SamplePowerLaw(&rng_, options_.num_rows, options_.skew));
  if (options_.keys_per_request > 0) {
    req.indices.reserve(options_.keys_per_request);
    for (uint32_t k = 0; k < options_.keys_per_request; ++k) {
      // Scattered: popular columns spread over the whole width (and with it
      // over all servers), like the feature generators.
      req.indices.push_back(
          SampleScatteredPowerLaw(&rng_, options_.dim, options_.skew));
    }
    std::sort(req.indices.begin(), req.indices.end());
    req.indices.erase(std::unique(req.indices.begin(), req.indices.end()),
                      req.indices.end());
  }
  return req;
}

}  // namespace ps2
