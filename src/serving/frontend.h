#pragma once

// Serving frontend: request coalescing + epoch pinning (DESIGN.md §10).
//
// Concurrent clients of an online model ask for overlapping keys — Zipf
// popularity guarantees it. The ServingFrontend sits between the request
// stream and the PsClient and exploits that: requests in a batch that hit
// the same row are coalesced into ONE ServingRead whose index set is the
// deduplicated union (a full-row request absorbs every indexed one), so the
// key travels the wire once no matter how many requests wanted it. The
// whole batch then rides a single kServingPull fan-out (one request per
// server — PsClient::ServingPullAsync batches same-server entries), and the
// responses are scattered back per request. The bench pins the resulting
// net.bytes_wire drop vs the uncoalesced baseline.
//
// Reads are pinned to a published snapshot epoch (serving/snapshot.h), so
// every request in a batch — and every batch until a repin — observes one
// consistent model cut while training mutates the live rows. When the
// pinned epoch falls out of a server's retention window (training published
// past it, or a crash dropped it), the server answers FailedPrecondition
// and the frontend repins to the master's current epoch and retries —
// bounded, so a genuinely broken setup surfaces instead of spinning.
//
// Per-row demand counters record what the serving mix actually wants; the
// server side already feeds the hotspot sketches (HandleServingPull calls
// RecordPull), so hot serving rows become replication/cache candidates the
// same way hot training rows do.

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ps/ps_client.h"
#include "serving/traffic_gen.h"

namespace ps2 {

/// \brief Frontend tuning knobs.
struct ServingFrontendOptions {
  /// Merge same-row requests of a batch into one deduplicated read. Off =
  /// every request travels alone (the bench's bytes baseline).
  bool coalesce = true;
  /// Repin + retry budget when the pinned epoch is no longer served.
  int max_epoch_retries = 3;
};

/// \brief Coalescing, epoch-pinned read path over PsClient::ServingPullAsync.
///
/// Thread-safe: batches may be served from concurrent threads (the
/// snapshot-isolation test does); the exchange itself runs outside the
/// frontend lock.
class ServingFrontend {
 public:
  ServingFrontend(PsMaster* master, PsClient* client,
                  ServingFrontendOptions options = {});

  /// Pins subsequent reads to the master's current published epoch. Fails
  /// with FailedPrecondition when nothing has been published yet.
  Status PinCurrentEpoch();

  uint64_t pinned_epoch() const;

  /// Serves one batch: coalesces, executes the pinned-epoch fan-out
  /// (repinning on epoch misses), and scatters values back — one vector per
  /// request, in request order (the whole row, or the request's indices).
  Result<std::vector<std::vector<double>>> ServeBatch(
      const std::vector<ServingRequest>& batch);

  /// \brief Counters for tests and the bench.
  struct Stats {
    uint64_t requests = 0;        ///< requests served
    uint64_t batches = 0;         ///< ServeBatch calls that did work
    uint64_t raw_reads = 0;       ///< reads before coalescing (== requests)
    uint64_t coalesced_reads = 0; ///< reads that actually went to the wire
    uint64_t epoch_repins = 0;    ///< pinned-epoch misses that re-resolved
  };
  Stats stats() const;

  /// How many requests have asked for `row` (any index subset) so far.
  uint64_t DemandCount(RowRef row) const;

 private:
  /// The server's "pinned epoch fell out of retention" signal
  /// (ps_server.cc HandleServingPull). Distinct from the keycache-miss
  /// FailedPrecondition, which PsClient consumes internally.
  static bool IsEpochMiss(const Status& status);

  PsMaster* master_;
  PsClient* client_;
  ServingFrontendOptions options_;

  mutable std::mutex mu_;
  uint64_t pinned_epoch_ = 0;
  Stats stats_;
  std::map<std::pair<int, uint32_t>, uint64_t> demand_;
};

}  // namespace ps2
