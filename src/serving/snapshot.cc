#include "serving/snapshot.h"

#include <algorithm>

#include "common/logging.h"
#include "net/message.h"
#include "net/network_model.h"
#include "ps/ps_master.h"

namespace ps2 {

namespace {

// The publish command on the wire: opcode + epoch varint. The ack carries a
// handful of counters back. Both are control-plane small; the real cost is
// the copy work on the server, charged as server ops below.
constexpr uint64_t kPublishRequestBytes = 12;
constexpr uint64_t kPublishResponseBytes = 40;

}  // namespace

ModelSnapshotManager::ModelSnapshotManager(PsMaster* master)
    : master_(master) {
  PS2_CHECK(master != nullptr);
}

Result<SnapshotPublishStats> ModelSnapshotManager::Publish() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t next = epoch_ + 1;
  SnapshotPublishStats stats;
  stats.epoch = next;
  TaskTraffic t;
  t.rounds += 1;  // servers publish in parallel: one dependent round
  for (int s = 0; s < master_->num_servers(); ++s) {
    PS2_ASSIGN_OR_RETURN(PsServer::PublishStats ps,
                         master_->server(s)->PublishSnapshot(next));
    stats.rows_total += ps.rows_total;
    stats.rows_copied += ps.rows_copied;
    stats.rows_reused += ps.rows_reused;
    stats.bytes_copied += ps.bytes_copied;
    // Copy-on-publish is in-memory work on the server; price it as one op
    // per copied double so a quiet model publishes almost for free.
    t.RecordExchange(s, kPublishRequestBytes + Message::kHeaderBytes,
                     kPublishResponseBytes + Message::kHeaderBytes,
                     ps.bytes_copied / sizeof(double));
  }
  epoch_ = next;
  // Publish may run from inside a task (tests, serving loops): the ambient
  // scope then absorbs the traffic and the stage barrier prices it; from
  // the coordinator it goes straight to the cluster clock.
  if (TaskTraffic* ambient = TrafficScope::Current()) {
    ambient->MergeFrom(t);
  } else {
    master_->cluster()->ChargeOutOfTask(t);
  }
  auto& metrics = master_->cluster()->metrics();
  metrics.Add("serving.snapshots_published", 1);
  metrics.Add("serving.snapshot_rows_copied", stats.rows_copied);
  metrics.Add("serving.snapshot_rows_reused", stats.rows_reused);
  metrics.Add("serving.snapshot_bytes_copied", stats.bytes_copied);
  return stats;
}

uint64_t ModelSnapshotManager::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

Status ModelSnapshotManager::OnServerRecovered(int server_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch_ == 0) return Status::OK();  // nothing was ever published
  // The restored process has empty snapshot state, so republishing the
  // current epoch is a full copy of its shards — correct (the checkpoint
  // image is a consistent cut) if checkpoint-stale until the next Publish.
  PS2_ASSIGN_OR_RETURN(PsServer::PublishStats ps,
                       master_->server(server_id)->PublishSnapshot(epoch_));
  (void)ps;
  master_->cluster()->metrics().Add("serving.snapshot_republishes", 1);
  return Status::OK();
}

}  // namespace ps2
