#include "serving/frontend.h"

#include <algorithm>

#include "common/logging.h"

namespace ps2 {

ServingFrontend::ServingFrontend(PsMaster* master, PsClient* client,
                                 ServingFrontendOptions options)
    : master_(master), client_(client), options_(options) {
  PS2_CHECK(master != nullptr);
  PS2_CHECK(client != nullptr);
}

Status ServingFrontend::PinCurrentEpoch() {
  const uint64_t epoch = master_->serving_snapshots()->epoch();
  if (epoch == 0) {
    return Status::FailedPrecondition("no serving snapshot published yet");
  }
  std::lock_guard<std::mutex> lock(mu_);
  pinned_epoch_ = epoch;
  return Status::OK();
}

uint64_t ServingFrontend::pinned_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pinned_epoch_;
}

bool ServingFrontend::IsEpochMiss(const Status& status) {
  return status.IsFailedPrecondition() &&
         status.message().find("serving snapshot epoch") != std::string::npos;
}

Result<std::vector<std::vector<double>>> ServingFrontend::ServeBatch(
    const std::vector<ServingRequest>& batch) {
  if (batch.empty()) return std::vector<std::vector<double>>{};

  // ---- Plan: one read per distinct row (coalesced) or per request. ----
  std::vector<PsClient::ServingRead> reads;
  std::vector<size_t> read_of_request(batch.size());
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.requests += batch.size();
    stats_.batches += 1;
    stats_.raw_reads += batch.size();
    for (const ServingRequest& req : batch) {
      demand_[{req.row.matrix_id, req.row.row}] += 1;
    }
    if (options_.coalesce) {
      // Union the index sets per row; a full-row request (empty indices)
      // absorbs every indexed one. std::map keeps the read order — and with
      // it the wire bytes — deterministic regardless of batch order.
      struct Union {
        bool full = false;
        std::vector<uint64_t> indices;
      };
      std::map<std::pair<int, uint32_t>, Union> unions;
      for (const ServingRequest& req : batch) {
        Union& u = unions[{req.row.matrix_id, req.row.row}];
        if (req.indices.empty()) {
          u.full = true;
          u.indices.clear();
        } else if (!u.full) {
          u.indices.insert(u.indices.end(), req.indices.begin(),
                           req.indices.end());
        }
      }
      std::map<std::pair<int, uint32_t>, size_t> read_of_row;
      for (auto& [key, u] : unions) {
        std::sort(u.indices.begin(), u.indices.end());
        u.indices.erase(std::unique(u.indices.begin(), u.indices.end()),
                        u.indices.end());
        read_of_row[key] = reads.size();
        PsClient::ServingRead read;
        read.row.matrix_id = key.first;
        read.row.row = key.second;
        read.indices = std::move(u.indices);
        reads.push_back(std::move(read));
      }
      for (size_t i = 0; i < batch.size(); ++i) {
        read_of_request[i] =
            read_of_row[{batch[i].row.matrix_id, batch[i].row.row}];
      }
    } else {
      reads.reserve(batch.size());
      for (size_t i = 0; i < batch.size(); ++i) {
        read_of_request[i] = i;
        reads.push_back({batch[i].row, batch[i].indices});
      }
    }
    stats_.coalesced_reads += reads.size();
    epoch = pinned_epoch_;
  }

  // ---- Execute, repinning when the pinned epoch is no longer served. ----
  if (epoch == 0) {
    PS2_RETURN_NOT_OK(PinCurrentEpoch());
    epoch = pinned_epoch();
  }
  Result<std::vector<std::vector<double>>> values =
      client_->ServingPullAsync(epoch, reads).Get();
  for (int attempt = 0;
       !values.ok() && IsEpochMiss(values.status()) &&
       attempt < options_.max_epoch_retries;
       ++attempt) {
    const uint64_t current = master_->serving_snapshots()->epoch();
    if (current == epoch) break;  // nothing newer to repin to — surface it
    epoch = current;
    {
      std::lock_guard<std::mutex> lock(mu_);
      pinned_epoch_ = current;
      stats_.epoch_repins += 1;
    }
    values = client_->ServingPullAsync(epoch, reads).Get();
  }
  PS2_RETURN_NOT_OK(values.status());

  // ---- Scatter the per-read values back per request. ----
  std::vector<std::vector<double>> out(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const PsClient::ServingRead& read = reads[read_of_request[i]];
    const std::vector<double>& got = (*values)[read_of_request[i]];
    const ServingRequest& req = batch[i];
    if (req.indices.empty()) {
      // A full-row request forces its read to be full-row, so `got` is the
      // whole row.
      out[i] = got;
    } else if (read.indices.empty()) {
      // The read was widened to the full row by another request; pick the
      // request's columns straight out of it.
      out[i].reserve(req.indices.size());
      for (uint64_t idx : req.indices) out[i].push_back(got[idx]);
    } else {
      // Both indexed: the request's indices are a subset of the read's
      // sorted union.
      out[i].reserve(req.indices.size());
      for (uint64_t idx : req.indices) {
        auto pos = std::lower_bound(read.indices.begin(), read.indices.end(),
                                    idx);
        PS2_CHECK(pos != read.indices.end() && *pos == idx);
        out[i].push_back(
            got[static_cast<size_t>(pos - read.indices.begin())]);
      }
    }
  }
  return out;
}

ServingFrontend::Stats ServingFrontend::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

uint64_t ServingFrontend::DemandCount(RowRef row) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = demand_.find({row.matrix_id, row.row});
  return it == demand_.end() ? 0 : it->second;
}

}  // namespace ps2
