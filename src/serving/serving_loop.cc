#include "serving/serving_loop.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "dataflow/cluster.h"
#include "net/network_model.h"
#include "ps/ps_client.h"
#include "ps/ps_master.h"

namespace ps2 {

namespace {

/// Exact percentile of a sorted sample (nearest-rank; the report's
/// percentiles are exact, unlike the log-bucketed histogram's).
double SortedPercentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(p / 100.0 * sorted.size());
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

Result<ServingReport> RunServingLoop(PsMaster* master, PsClient* client,
                                     const ServingLoopOptions& options) {
  PS2_RETURN_NOT_OK(options.traffic.Validate());
  PS2_RETURN_NOT_OK(options.admission.Validate());
  if (options.duration_s <= 0.0) {
    return Status::InvalidArgument("duration_s must be > 0");
  }
  if (options.batch_max == 0) {
    return Status::InvalidArgument("batch_max must be > 0");
  }
  Cluster* cluster = master->cluster();

  ServingFrontend frontend(master, client, options.frontend);
  PS2_RETURN_NOT_OK(frontend.PinCurrentEpoch());
  TrafficGen gen(options.traffic);
  AdmissionController admission(options.admission);

  Histogram* latency_hist =
      cluster->metrics().GetOrCreateHistogram("serving.latency_us");
  std::deque<ServingRequest> queue;
  std::vector<double> latencies;
  TaskTraffic total;
  double pipeline_free_s = 0.0;
  uint64_t offered = 0;
  uint64_t served = 0;

  // Serves the front of the queue as one coalesced fan-out and advances the
  // pipeline clock by what the exchange's recorded traffic costs.
  auto serve_one_batch = [&]() -> Status {
    const size_t n = std::min(options.batch_max, queue.size());
    std::vector<ServingRequest> batch(queue.begin(),
                                      queue.begin() + static_cast<long>(n));
    const double start_s = std::max(pipeline_free_s, batch.back().arrival_s);
    TaskTraffic t;
    {
      TrafficScope scope(&t);
      PS2_RETURN_NOT_OK(frontend.ServeBatch(batch).status());
    }
    const double completion_s = start_s + TaskWorkerTime(cluster->cost(), t);
    for (const ServingRequest& req : batch) {
      const double latency_us = (completion_s - req.arrival_s) * 1e6;
      latencies.push_back(latency_us);
      latency_hist->Record(latency_us);
    }
    queue.erase(queue.begin(), queue.begin() + static_cast<long>(n));
    served += n;
    pipeline_free_s = completion_s;
    total.MergeFrom(t);
    return Status::OK();
  };

  while (true) {
    ServingRequest req = gen.Next();
    if (req.arrival_s > options.duration_s) break;
    ++offered;
    // Every batch that can start before this arrival completes first, so
    // the admission decision sees the true backlog at arrival time.
    while (!queue.empty() && pipeline_free_s <= req.arrival_s) {
      PS2_RETURN_NOT_OK(serve_one_batch());
    }
    if (admission.Admit(req.arrival_s, queue.size())) {
      queue.push_back(std::move(req));
    }
  }
  while (!queue.empty()) PS2_RETURN_NOT_OK(serve_one_batch());

  ServingReport report;
  report.offered = offered;
  report.admitted = admission.admitted();
  report.shed = admission.shed();
  report.served = served;
  report.span_s = std::max(options.duration_s, pipeline_free_s);
  report.offered_qps = static_cast<double>(offered) / options.duration_s;
  report.achieved_qps = static_cast<double>(served) / report.span_s;
  report.shed_rate =
      offered == 0 ? 0.0
                   : static_cast<double>(report.shed) /
                         static_cast<double>(offered);
  std::sort(latencies.begin(), latencies.end());
  report.p50_us = SortedPercentile(latencies, 50.0);
  report.p95_us = SortedPercentile(latencies, 95.0);
  report.p99_us = SortedPercentile(latencies, 99.0);

  auto& metrics = cluster->metrics();
  metrics.Add("serving.requests_offered", offered);
  metrics.Add("serving.requests_shed", report.shed);
  metrics.Add("serving.requests_served", served);

  // One charge for the whole run. Inside a task (tests) the ambient scope
  // absorbs it; on the coordinator, metrics get the breakdown and the clock
  // advances by the loop's own virtual span — the loop already scheduled
  // the exchanges in virtual time, so the out-of-task estimate would
  // double-count.
  if (TaskTraffic* ambient = TrafficScope::Current()) {
    ambient->MergeFrom(total);
  } else {
    cluster->RecordTraffic(total);
    cluster->AdvanceClock(report.span_s);
  }
  return report;
}

}  // namespace ps2
