#pragma once

// Model snapshot publication for the online serving tier (DESIGN.md §10).
//
// Training mutates rows in place; serving needs repeatable reads. The
// ModelSnapshotManager — owned by PsMaster, driven by the trainer between
// stages — closes that gap with epoch-versioned snapshots: Publish() asks
// every server to freeze its current shard state under the next epoch
// (PsServer::PublishSnapshot — copy-on-publish of rows touched since the
// previous epoch, pointer reuse for the rest), after which kServingPull
// requests pinned to epoch N are bit-stable no matter how far epoch N+1
// training has progressed.
//
// Snapshots are process-local soft state: a crashed server loses them with
// the rest of its memory, and recovery (PsMaster::RecoverServerInternal)
// calls OnServerRecovered to republish the current epoch from the restored
// checkpoint image. Readers pinned to an epoch the restored server no longer
// has are told so (FailedPrecondition) and repin via the ServingFrontend.

#include <cstdint>
#include <mutex>

#include "common/result.h"
#include "common/status.h"

namespace ps2 {

class PsMaster;

/// \brief What one Publish() round actually moved.
struct SnapshotPublishStats {
  uint64_t epoch = 0;        ///< the epoch this publish installed
  uint64_t rows_total = 0;   ///< rows across all shards on all servers
  uint64_t rows_copied = 0;  ///< rows touched since the previous epoch
  uint64_t rows_reused = 0;  ///< rows shared with the previous epoch
  uint64_t bytes_copied = 0; ///< payload bytes materialized by the copies
};

/// \brief Master-side coordinator of serving snapshot epochs.
///
/// Thread-safe, but Publish is expected to run on the coordinator between
/// training stages (like CheckpointAll) — that is what makes "epoch N serves
/// while N+1 trains" a clean handoff rather than a race.
class ModelSnapshotManager {
 public:
  explicit ModelSnapshotManager(PsMaster* master);

  /// Freezes the current model state under a new epoch on every server and
  /// returns what it cost. The publish command is priced like any other
  /// coordinator->server exchange; the copy work is charged as server ops,
  /// so a quiet model (few touched rows) publishes almost for free.
  Result<SnapshotPublishStats> Publish();

  /// The latest published epoch; 0 means nothing has been published yet.
  uint64_t epoch() const;

  /// Called by PsMaster after a server crash + restore. The restarted
  /// process dropped its snapshots with the rest of its state, so without
  /// this hook every serving read against it fails until the next Publish.
  /// Republishes the current epoch from the restored shards (their contents
  /// are checkpoint-old, but epoch pinning only promises a *consistent*
  /// cut, and the next Publish catches serving back up). No-op while no
  /// epoch has been published.
  Status OnServerRecovered(int server_id);

 private:
  PsMaster* master_;
  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
};

}  // namespace ps2
