#pragma once

// Admission control for the serving loop (DESIGN.md §10).
//
// An open-loop workload does not slow down when the servers fall behind —
// arrivals keep coming at the offered rate, the queue grows without bound
// and every request's latency diverges. The AdmissionController bounds
// that: a token bucket caps the sustained admitted rate (with a burst
// allowance), and a queue-depth bound sheds arrivals outright once the
// backlog says the servers are saturated. Shedding early keeps the p99 of
// the *admitted* traffic finite — the classic load-shedding trade the
// serving bench measures (shed rate vs achieved QPS vs tail latency).
//
// All time is virtual (the serving loop's arrival clock), so admission
// decisions are seed-deterministic and benchable.

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace ps2 {

/// \brief Tuning knobs for admission control.
struct AdmissionOptions {
  /// Sustained admitted rate in requests per virtual second; 0 disables the
  /// token bucket (queue-depth shedding still applies).
  double rate_qps = 0.0;
  /// Bucket capacity in tokens — how far above rate_qps a burst may ride.
  double burst = 32.0;
  /// Arrivals are shed while this many admitted requests are already
  /// waiting; 0 disables the bound.
  size_t max_queue_depth = 64;

  Status Validate() const;
};

/// \brief Token bucket + queue-depth load shedder.
///
/// Driven from the single-threaded serving loop in virtual-arrival-time
/// order (`now_s` must be non-decreasing), so it needs no lock and its
/// decisions are deterministic.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  /// Decides the fate of a request arriving at `now_s` while `queue_depth`
  /// admitted requests wait. True = admitted (a token is consumed);
  /// false = shed.
  bool Admit(double now_s, size_t queue_depth);

  uint64_t admitted() const { return admitted_; }
  uint64_t shed() const { return shed_; }

 private:
  AdmissionOptions options_;
  double tokens_;
  double last_refill_s_ = 0.0;
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
};

}  // namespace ps2
