#include "membership/membership_manager.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/serde.h"
#include "dataflow/cluster.h"
#include "ps/ps_client.h"
#include "ps/ps_master.h"
#include "ps/ps_server.h"

namespace ps2 {

MembershipManager::MembershipManager(PsMaster* master) : master_(master) {
  PS2_CHECK(master != nullptr);
}

MembershipManager::~MembershipManager() = default;

PsClient* MembershipManager::client() {
  if (client_ == nullptr) {
    // Lazy: clusters that never migrate must not allocate a client id here,
    // or every data client's id — and with it the deterministic fault draws
    // keyed on (server, client, seq, attempt) — would shift by one.
    PsClientOptions options;
    options.window_depth = 1;
    options.parallel_fanout = false;  // control legs are sequential
    client_ = std::make_unique<PsClient>(master_, options);
  }
  return client_.get();
}

uint64_t MembershipManager::migrations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return migrations_;
}

MigrationStats MembershipManager::last_migration() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_;
}

std::map<int, std::vector<int>> MembershipManager::BlockPlan(
    const std::vector<int>& new_active) const {
  std::map<int, std::vector<int>> plan;
  for (const MatrixMeta& meta : master_->AllMetas()) {
    plan[meta.id] = ColumnPartitioner::BlockAssignment(
        new_active, meta.partitioner.num_partitions(),
        meta.partitioner.rotation());
  }
  return plan;
}

Result<int> MembershipManager::AddServer() {
  std::lock_guard<std::mutex> lock(mu_);
  PS2_ASSIGN_OR_RETURN(int candidate, master_->ClaimableSpare());
  std::vector<int> new_active = master_->active_servers();
  new_active.push_back(candidate);
  std::sort(new_active.begin(), new_active.end());
  // Sequenced before the call: the by-value new_active parameter is
  // move-constructed, which may run before a same-call BlockPlan argument
  // would read the vector.
  std::map<int, std::vector<int>> plan = BlockPlan(new_active);
  PS2_RETURN_NOT_OK(MigrateToAssignment(plan, std::move(new_active),
                                        /*removed=*/-1, /*joined=*/candidate)
                        .status());
  return candidate;
}

Status MembershipManager::RemoveServer(int server_id) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> active = master_->active_servers();
  if (!std::binary_search(active.begin(), active.end(), server_id)) {
    return Status::InvalidArgument("server is not active");
  }
  if (active.size() <= 1) {
    return Status::FailedPrecondition("cannot remove the last active server");
  }
  std::vector<int> new_active;
  new_active.reserve(active.size() - 1);
  for (int s : active) {
    if (s != server_id) new_active.push_back(s);
  }
  std::map<int, std::vector<int>> plan = BlockPlan(new_active);
  return MigrateToAssignment(plan, std::move(new_active),
                             /*removed=*/server_id, /*joined=*/-1)
      .status();
}

Result<MigrationStats> MembershipManager::RelocateMatrices(
    const std::map<int, int>& targets) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> active = master_->active_servers();
  std::map<int, std::vector<int>> plan;
  for (const auto& [matrix_id, server] : targets) {
    if (!std::binary_search(active.begin(), active.end(), server)) {
      return Status::InvalidArgument("relocation target is not active");
    }
    PS2_ASSIGN_OR_RETURN(MatrixMeta meta, master_->GetMeta(matrix_id));
    const std::vector<int>& assignment = meta.partitioner.assignment();
    if (assignment.size() != 1) {
      return Status::InvalidArgument(
          "only single-partition (home_server) matrices can relocate");
    }
    if (assignment[0] == server) continue;  // already home
    plan[matrix_id] = {server};
  }
  if (plan.empty()) return MigrationStats{};
  return MigrateToAssignment(plan, std::move(active), /*removed=*/-1,
                             /*joined=*/-1);
}

Result<bool> MembershipManager::RebalanceOnce(double min_skew) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::vector<int> active = master_->active_servers();
  if (active.size() < 2) return false;
  MetricsRegistry& metrics = master_->cluster()->metrics();
  // Busy time is cumulative; the signal is the delta since the last call,
  // i.e. the load distribution of the most recent training window.
  std::map<int, uint64_t> busy;
  uint64_t total = 0, max_busy = 0;
  int busiest = -1;
  for (int s : active) {
    const uint64_t now =
        metrics.Get(ServerTaggedName("obs.server_busy_time", s));
    const uint64_t delta = now - last_busy_[s];
    last_busy_[s] = now;
    busy[s] = delta;
    total += delta;
    if (delta > max_busy) {
      max_busy = delta;
      busiest = s;
    }
  }
  if (busiest < 0 || total == 0) return false;
  const double mean =
      static_cast<double>(total) / static_cast<double>(active.size());
  if (static_cast<double>(max_busy) < min_skew * mean) return false;
  // Move one edge partition per matrix off the busiest server, to whichever
  // partition-space neighbor is less busy. The rule is a pure function of
  // (assignment, busy deltas), so co-located matrices — identical
  // assignments — move in lockstep and stay co-located.
  std::map<int, std::vector<int>> plan;
  for (const MatrixMeta& meta : master_->AllMetas()) {
    const std::vector<int>& a = meta.partitioner.assignment();
    int lo = -1, hi = -1;
    for (size_t p = 0; p < a.size(); ++p) {
      if (a[p] != busiest) continue;
      if (lo < 0) lo = static_cast<int>(p);
      hi = static_cast<int>(p);
    }
    if (lo < 0 || hi == lo) continue;  // absent, or move would empty it
    const int left = lo > 0 ? a[lo - 1] : -1;
    const int right = hi + 1 < static_cast<int>(a.size()) ? a[hi + 1] : -1;
    int target = -1, edge = -1;
    if (left >= 0 && (right < 0 || busy[left] <= busy[right])) {
      target = left;
      edge = lo;
    } else if (right >= 0) {
      target = right;
      edge = hi;
    }
    if (target < 0) continue;
    std::vector<int> assignment = a;
    assignment[static_cast<size_t>(edge)] = target;
    plan[meta.id] = std::move(assignment);
  }
  if (plan.empty()) return false;
  PS2_RETURN_NOT_OK(
      MigrateToAssignment(plan, active, /*removed=*/-1, /*joined=*/-1)
          .status());
  metrics.Add("migrate.rebalances", 1);
  return true;
}

Result<std::vector<uint8_t>> MembershipManager::ExtractRange(
    const Move& move) {
  BufferWriter writer;
  writer.WriteU8(static_cast<uint8_t>(PsOpCode::kRangeExtract));
  writer.WriteVarint(static_cast<uint64_t>(move.matrix_id));
  writer.WriteVarint(move.begin);
  writer.WriteVarint(move.end);
  return client()->ControlCall(move.from, &writer);
}

Status MembershipManager::InstallRange(const Move& move, uint64_t epoch,
                                       const std::vector<uint8_t>& payload) {
  // The install request is the extract response re-framed under the target
  // epoch — the range bytes travel verbatim.
  BufferWriter writer;
  writer.WriteU8(static_cast<uint8_t>(PsOpCode::kRangeMigrate));
  writer.WriteVarint(epoch);
  writer.WriteVarint(static_cast<uint64_t>(move.matrix_id));
  writer.WriteBytes(Slice(payload));
  return client()->ControlCall(move.to, &writer).status();
}

Status MembershipManager::CommitServer(
    int server, uint64_t epoch, const std::vector<MatrixMeta>& old_metas,
    const std::vector<MatrixMeta>& new_metas) {
  BufferWriter writer;
  writer.WriteU8(static_cast<uint8_t>(PsOpCode::kRoutingUpdate));
  writer.WriteVarint(epoch);
  // One entry per matrix whose span on `server` changes; the commit handler
  // leaves unlisted shards alone.
  std::vector<size_t> changed;
  for (size_t i = 0; i < new_metas.size(); ++i) {
    uint64_t ob = 0, oe = 0, nb = 0, ne = 0;
    const bool had = old_metas[i].partitioner.ServerSpan(server, &ob, &oe);
    const bool has = new_metas[i].partitioner.ServerSpan(server, &nb, &ne);
    if (!had && !has) continue;
    if (had && has && ob == nb && oe == ne) continue;
    changed.push_back(i);
  }
  writer.WriteVarint(changed.size());
  for (size_t i : changed) {
    const MatrixMeta& nm = new_metas[i];
    uint64_t nb = 0, ne = 0;
    if (!nm.partitioner.ServerSpan(server, &nb, &ne)) {
      nb = 0;
      ne = 0;  // span gone: the commit drops the shard
    }
    writer.WriteVarint(static_cast<uint64_t>(nm.id));
    writer.WriteVarint(nb);
    writer.WriteVarint(ne);
    writer.WriteVarint(nm.dim);
    writer.WriteVarint(nm.num_rows);
    writer.WriteU8(static_cast<uint8_t>(nm.storage));
  }
  return client()->ControlCall(server, &writer).status();
}

Result<MigrationStats> MembershipManager::MigrateToAssignment(
    const std::map<int, std::vector<int>>& plan, std::vector<int> new_active,
    int removed, int joined) {
  Cluster* cluster = master_->cluster();
  const uint64_t epoch = master_->routing_epoch() + 1;
  const std::vector<MatrixMeta> old_metas = master_->AllMetas();
  std::vector<MatrixMeta> new_metas;
  new_metas.reserve(old_metas.size());
  std::vector<Move> moves;
  std::set<int> involved;
  for (const MatrixMeta& meta : old_metas) {
    auto it = plan.find(meta.id);
    if (it == plan.end()) {
      new_metas.push_back(meta);
      new_metas.back().routing_epoch = epoch;
      continue;
    }
    const std::vector<int>& assignment = it->second;
    const std::vector<int>& old_assignment = meta.partitioner.assignment();
    PS2_CHECK_EQ(assignment.size(), old_assignment.size());
    for (size_t p = 0; p < old_assignment.size(); ++p) {
      if (old_assignment[p] == assignment[p]) continue;
      Move m;
      m.matrix_id = meta.id;
      m.partition = static_cast<int>(p);
      m.from = old_assignment[p];
      m.to = assignment[p];
      m.begin = meta.partitioner.RangeBegin(static_cast<int>(p));
      m.end = meta.partitioner.RangeEnd(static_cast<int>(p));
      involved.insert(m.from);
      involved.insert(m.to);
      // Zero-width tail partitions change owner without moving bytes.
      if (m.begin < m.end) moves.push_back(m);
    }
    PS2_ASSIGN_OR_RETURN(ColumnPartitioner np,
                         meta.partitioner.WithAssignment(assignment));
    MatrixMeta nm = meta;
    nm.partitioner = std::move(np);
    nm.routing_epoch = epoch;
    new_metas.push_back(std::move(nm));
  }
  if (removed >= 0) involved.insert(removed);

  MigrationStats stats;
  stats.epoch = epoch;
  stats.moves = moves.size();

  TaskTraffic traffic;
  {
    TrafficScope scope(&traffic);
    // Fence first: from here until each server's commit, tracked data
    // traffic bounces off with `routing stale (fenced)` and clients wait,
    // so every extracted byte is the final pre-migration value.
    for (int s : involved) master_->server(s)->FenceForMigration();
    std::vector<std::vector<uint8_t>> payloads(moves.size());
    for (size_t i = 0; i < moves.size(); ++i) {
      PS2_ASSIGN_OR_RETURN(payloads[i], ExtractRange(moves[i]));
      stats.bytes_moved += payloads[i].size();
    }
    for (size_t i = 0; i < moves.size(); ++i) {
      PS2_RETURN_NOT_OK(InstallRange(moves[i], epoch, payloads[i]));
    }
    for (int s : involved) {
      if (s == removed) continue;
      Status commit = Status::OK();
      for (int round = 0; round < 3; ++round) {
        commit = CommitServer(s, epoch, old_metas, new_metas);
        if (commit.ok() || !commit.IsFailedPrecondition()) break;
        // A crash between install and commit dropped the server's staged
        // state (it is process-soft); re-install from the payloads we still
        // hold and retry the commit.
        for (size_t i = 0; i < moves.size(); ++i) {
          if (moves[i].to != s) continue;
          PS2_RETURN_NOT_OK(InstallRange(moves[i], epoch, payloads[i]));
        }
      }
      PS2_RETURN_NOT_OK(commit);
    }
    // Everyone else learns the epoch directly (no fence to lift, no data to
    // move); the removed server is decommissioned instead — it keeps its
    // dedup table to answer applied-probes, and nothing else.
    for (int s = 0; s < master_->num_servers(); ++s) {
      if (s == removed || involved.count(s) != 0) continue;
      master_->server(s)->SetRoutingEpoch(epoch);
    }
    if (removed >= 0) master_->server(removed)->Decommission(epoch);
  }
  // Publish LAST: once the master hands out metas stamped with `epoch`,
  // every server already enforces it.
  master_->CommitRouting(new_metas, std::move(new_active), epoch, removed);
  if (TaskTraffic* ambient = TrafficScope::Current()) {
    ambient->MergeFrom(traffic);
  } else {
    cluster->ChargeOutOfTask(traffic);
  }
  // Composition hooks. A joining server is hotspot-wise a recovered one:
  // recreate its replica slots and force a full sync + client cache refresh.
  // Serving gets a fresh snapshot epoch covering the new layout; readers
  // pinned to older epochs repin via the documented retention protocol.
  if (joined >= 0) {
    PS2_RETURN_NOT_OK(master_->hotspot()->OnServerRecovered(joined));
  }
  if (master_->serving_snapshots()->epoch() > 0) {
    PS2_RETURN_NOT_OK(master_->serving_snapshots()->Publish().status());
  }
  // Durability: fresh images carry the new shard bounds, so recovery after
  // this point restores straight into the new routing table.
  PS2_RETURN_NOT_OK(master_->CheckpointAll());
  MetricsRegistry& metrics = cluster->metrics();
  metrics.Add("migrate.migrations", 1);
  metrics.Add("migrate.moves", stats.moves);
  metrics.Add("migrate.bytes", stats.bytes_moved);
  migrations_ += 1;  // mu_ held by our public caller
  last_ = stats;
  return stats;
}

}  // namespace ps2
