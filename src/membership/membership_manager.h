#pragma once

// Elastic membership and online resharding (DESIGN.md §12).
//
// The MembershipManager is the coordinator-side driver of live server
// join/leave and of the skew-healing rebalancer. A membership change is an
// epoch-stamped migration:
//
//   1. plan    — diff each matrix's current partition→server assignment
//                against the block assignment over the new active list;
//                every differing partition is one *move* (boundaries are
//                fixed at matrix creation, so a move never re-splits).
//   2. fence   — involved servers stop accepting tracked data traffic
//                (clients wait out the fence via the `routing stale`
//                refetch protocol, ps/ps_client.cc).
//   3. extract — read every moving range off its source (kRangeExtract,
//                non-mutating so retries re-read).
//   4. install — stage every range on its target under the new epoch
//                (kRangeMigrate, idempotent overwrite).
//   5. commit  — per involved server, atomically swap shard bounds to the
//                new routing table, max-merge staged worker clocks, install
//                the epoch and lift the fence (kRoutingUpdate). A commit
//                that finds staged state missing (target crashed between
//                install and commit) fails cleanly; the driver re-installs
//                from the payloads it still holds and retries.
//   6. publish — the master swaps in the new partitioner snapshots, active
//                list and routing epoch last, so no client ever stamps an
//                epoch ahead of the servers'.
//
// All three control legs travel through a dedicated tracked PsClient, so
// injected message faults, bounded retries, dedup and crash recovery apply
// to the migration path exactly as to data traffic — that is what the
// migration-faults CI lane exercises.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "ps/ps_types.h"

namespace ps2 {

class PsClient;
class PsMaster;

/// \brief Outcome of one committed migration.
struct MigrationStats {
  uint64_t epoch = 0;        ///< routing epoch this migration installed
  uint64_t moves = 0;        ///< partition moves executed
  uint64_t bytes_moved = 0;  ///< extracted payload bytes staged on targets
};

/// \brief Drives join/leave migrations and the busy-time rebalancer.
class MembershipManager {
 public:
  explicit MembershipManager(PsMaster* master);
  ~MembershipManager();

  MembershipManager(const MembershipManager&) = delete;
  MembershipManager& operator=(const MembershipManager&) = delete;

  /// Activates the lowest spare (never-retired) fleet slot and migrates a
  /// balanced share of every matrix to it. Returns the new server id.
  Result<int> AddServer();

  /// Migrates `server_id`'s ranges away, then decommissions it. The slot is
  /// retired — it keeps answering dedup applied-probes, nothing else.
  Status RemoveServer(int server_id);

  /// One rebalancer step: compares per-server `obs.server_busy_time` deltas
  /// since the previous call; when max/mean skew >= `min_skew`, moves one
  /// edge partition per matrix from the busiest server to its less-busy
  /// partition-space neighbor. Returns whether a migration ran.
  Result<bool> RebalanceOnce(double min_skew);

  /// Moves each listed matrix whole to its target server — the warm-tier
  /// *relocation* leg of per-key parameter management (DESIGN.md §13). Only
  /// single-partition matrices (MatrixOptions::home_server) can relocate;
  /// targets must be active. The whole batch commits as ONE epoch-stamped
  /// migration through the same fence/extract/install/commit path joins and
  /// leaves use. Entries already on their target are skipped; an all-skip
  /// batch returns zeroed stats without bumping the epoch.
  Result<MigrationStats> RelocateMatrices(const std::map<int, int>& targets);

  /// Migrations committed so far (== current routing epoch delta).
  uint64_t migrations() const;

  /// Stats of the most recent committed migration (tests, benches).
  MigrationStats last_migration() const;

 private:
  struct Move {
    int matrix_id = -1;
    int partition = -1;
    int from = -1;
    int to = -1;
    uint64_t begin = 0;
    uint64_t end = 0;
  };

  /// Plans and executes one migration to `plan` (matrix id → new
  /// assignment; matrices absent from the plan keep their assignment).
  /// `removed` (or -1) is decommissioned after the fence lifts; `joined`
  /// (or -1) gets the hotspot replica/cache resync a recovered server gets.
  Result<MigrationStats> MigrateToAssignment(
      const std::map<int, std::vector<int>>& plan, std::vector<int> new_active,
      int removed, int joined);

  /// Block-assignment plan for every matrix over `new_active`.
  std::map<int, std::vector<int>> BlockPlan(
      const std::vector<int>& new_active) const;

  Result<std::vector<uint8_t>> ExtractRange(const Move& move);
  Status InstallRange(const Move& move, uint64_t epoch,
                      const std::vector<uint8_t>& payload);
  Status CommitServer(int server, uint64_t epoch,
                      const std::vector<MatrixMeta>& old_metas,
                      const std::vector<MatrixMeta>& new_metas);

  /// The control-plane client, created on first use so clusters that never
  /// migrate allocate no client id (keeps pre-elastic fault draws and seq
  /// streams bit-identical).
  PsClient* client();

  PsMaster* master_;
  std::unique_ptr<PsClient> client_;
  /// Serializes migrations; data traffic keeps flowing around the fence.
  mutable std::mutex mu_;
  uint64_t migrations_ = 0;
  MigrationStats last_;
  /// Busy-time counter snapshot per server id at the last RebalanceOnce.
  std::map<int, uint64_t> last_busy_;
};

}  // namespace ps2
