#pragma once

// Span tracing for the simulated cluster (DESIGN.md §7).
//
// A span is one timed region of code — a client op, a server opcode handler,
// a dataflow stage — recorded with BOTH clocks that matter here:
//
//   wall time    (std::chrono::steady_clock) — where the real CPU seconds of
//                this process go; what you profile.
//   virtual time (sim/sim_clock.h)           — where the modeled cluster
//                seconds go; what the paper's figures report.
//
// Usage: `PS2_TRACE_SPAN("ps.client", "pull_dense");` opens an RAII span that
// closes at scope exit. Tracing is off by default; a disabled span is a
// single relaxed atomic load (no allocation, no clock read), so the
// instrumentation can stay in the hot paths permanently. Virtual time is
// *not* affected either way — the tracer only observes, it never feeds the
// cost model — so traced and untraced runs produce identical virtual times.
//
// Recording is per-thread: each thread owns a fixed-capacity ring buffer
// registered with the global Tracer. When a ring is full the oldest span is
// overwritten (and counted in dropped()), so a long run keeps its most
// recent window instead of growing without bound. Tracer::WriteChromeTrace()
// drains every ring into a `chrome://tracing` / Perfetto-loadable JSON file
// of complete ("ph":"X") events; the virtual interval of each span travels
// in its `args`.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/sim_clock.h"

namespace ps2 {
namespace obs {

/// \brief One completed span.
struct TraceEvent {
  const char* category = "";  ///< static string (macro argument)
  std::string name;
  double wall_begin_us = 0.0;  ///< steady_clock, µs since an arbitrary epoch
  double wall_dur_us = 0.0;
  double virt_begin_s = -1.0;  ///< SimClock; -1 = no clock was registered
  double virt_end_s = -1.0;
  uint32_t tid = 0;  ///< small dense per-thread id (not the OS tid)
  int depth = 0;     ///< nesting level within the thread, outermost = 1
};

/// \brief Process-global trace collector.
class Tracer {
 public:
  static constexpr size_t kDefaultRingCapacity = 1 << 15;

  static Tracer& Global();

  /// Turns tracing on, drops anything previously recorded, and sets the
  /// per-thread ring capacity used from now on.
  void Enable(size_t ring_capacity = kDefaultRingCapacity);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Registers the virtual clock spans read their virt_* stamps from.
  /// Cluster registers its own clock on construction while tracing is
  /// enabled; ClearClock is idempotent and only unregisters `clock` if it is
  /// the one currently registered (so destroying an unrelated cluster never
  /// unhooks the traced one).
  void SetClock(const SimClock* clock);
  void ClearClock(const SimClock* clock);

  /// Drops all recorded spans (ring capacity keeps its current value).
  void Clear();

  /// Copies out every recorded span, sorted by wall begin time.
  std::vector<TraceEvent> Collect() const;

  /// Spans overwritten by ring wraparound since the last Enable/Clear.
  uint64_t dropped() const;

  /// Writes all recorded spans as Chrome-trace JSON ("traceEvents" array of
  /// complete events). Loadable in chrome://tracing and ui.perfetto.dev.
  Status WriteChromeTrace(const std::string& path) const;

  /// Appends one finished event to the calling thread's ring. Exposed for
  /// call sites that finish a span on a different thread than the one that
  /// opened it (the async client's completion hook).
  void Record(TraceEvent event);

  /// Stamps of "now" on both clocks (wall µs, virtual s or -1).
  void Now(double* wall_us, double* virt_s) const;

 private:
  struct ThreadRing;

  Tracer() = default;
  ThreadRing* RingForThisThread();

  std::atomic<bool> enabled_{false};
  std::atomic<const SimClock*> clock_{nullptr};
  mutable std::mutex mu_;  ///< guards rings_ and capacity_
  size_t capacity_ = kDefaultRingCapacity;
  std::vector<std::shared_ptr<ThreadRing>> rings_;
  std::atomic<uint32_t> next_tid_{0};
};

/// \brief RAII span: opens in the constructor, records at scope exit.
class SpanGuard {
 public:
  SpanGuard(const char* category, const char* name);
  SpanGuard(const char* category, std::string name);
  ~SpanGuard();

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  void Open(const char* category);

  bool active_ = false;
  TraceEvent event_;
};

}  // namespace obs
}  // namespace ps2

#define PS2_OBS_CONCAT_(a, b) a##b
#define PS2_OBS_CONCAT(a, b) PS2_OBS_CONCAT_(a, b)

/// Opens an RAII trace span covering the rest of the enclosing scope.
/// `category` must be a string literal; `name` may be a literal (no
/// allocation when tracing is off) or a std::string.
#define PS2_TRACE_SPAN(category, name)                 \
  ::ps2::obs::SpanGuard PS2_OBS_CONCAT(ps2_trace_span_, \
                                       __LINE__)((category), (name))
