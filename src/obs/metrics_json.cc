#include "obs/metrics_json.h"

#include <cstdio>

namespace ps2 {
namespace obs {
namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

}  // namespace

std::string MetricsToJson(const MetricsRegistry& metrics) {
  std::string json;
  json.append("{\n  \"counters\": {");
  bool first = true;
  for (const auto& [name, value] : metrics.Snapshot()) {
    json.append(first ? "\n" : ",\n");
    first = false;
    json.append("    \"");
    AppendEscaped(&json, name);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "\": %llu",
                  static_cast<unsigned long long>(value));
    json.append(buf);
  }
  json.append(first ? "},\n" : "\n  },\n");
  json.append("  \"histograms\": {");
  first = true;
  for (const auto& [name, snap] : metrics.HistogramSnapshots()) {
    json.append(first ? "\n" : ",\n");
    first = false;
    json.append("    \"");
    AppendEscaped(&json, name);
    json.append("\": {\"count\": ");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(snap.count));
    json.append(buf);
    json.append(", \"sum\": ");
    AppendDouble(&json, snap.sum);
    json.append(", \"min\": ");
    AppendDouble(&json, snap.min);
    json.append(", \"max\": ");
    AppendDouble(&json, snap.max);
    json.append(", \"p50\": ");
    AppendDouble(&json, snap.p50);
    json.append(", \"p95\": ");
    AppendDouble(&json, snap.p95);
    json.append(", \"p99\": ");
    AppendDouble(&json, snap.p99);
    json.append("}");
  }
  json.append(first ? "}\n}\n" : "\n  }\n}\n");
  return json;
}

Status WriteMetricsJson(const MetricsRegistry& metrics,
                        const std::string& path) {
  std::string json = MetricsToJson(metrics);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open metrics file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal("short write to metrics file: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace ps2
