#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

namespace ps2 {
namespace obs {
namespace {

double WallNowUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

thread_local int t_depth = 0;

// JSON string escaping for span names (categories are code literals but get
// the same treatment — it is cheap and WriteChromeTrace is cold).
void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

/// Fixed-capacity overwrite-oldest buffer owned by one thread. Writes touch
/// only this ring (under its own mutex, uncontended except during Collect),
/// so tracing never serializes worker threads against each other.
struct Tracer::ThreadRing {
  explicit ThreadRing(size_t capacity, uint32_t tid)
      : capacity(capacity), tid(tid) {
    events.reserve(capacity);
  }

  void Push(TraceEvent event) {
    std::lock_guard<std::mutex> lock(mu);
    if (events.size() < capacity) {
      events.push_back(std::move(event));
    } else {
      events[next] = std::move(event);
      next = (next + 1) % capacity;
      ++dropped;
    }
  }

  std::mutex mu;
  size_t capacity;
  uint32_t tid;
  std::vector<TraceEvent> events;
  size_t next = 0;  ///< overwrite cursor once full (oldest entry)
  uint64_t dropped = 0;
};

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: outlives exiting threads
  return *tracer;
}

Tracer::ThreadRing* Tracer::RingForThisThread() {
  // One ring per (thread, tracer-lifetime): rings are owned by the tracer via
  // shared_ptr so Collect can read them after the thread exits; the
  // thread_local caches a lookup keyed by nothing because each thread only
  // ever creates one ring per process (Clear empties rings in place rather
  // than discarding them, so the cache stays valid across Enable/Clear).
  thread_local std::shared_ptr<ThreadRing> ring;
  if (!ring) {
    std::lock_guard<std::mutex> lock(mu_);
    ring = std::make_shared<ThreadRing>(
        capacity_, next_tid_.fetch_add(1, std::memory_order_relaxed));
    rings_.push_back(ring);
  }
  return ring.get();
}

void Tracer::Enable(size_t ring_capacity) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = ring_capacity == 0 ? 1 : ring_capacity;
    for (auto& ring : rings_) {
      std::lock_guard<std::mutex> ring_lock(ring->mu);
      ring->events.clear();
      ring->events.reserve(capacity_);
      ring->capacity = capacity_;
      ring->next = 0;
      ring->dropped = 0;
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::SetClock(const SimClock* clock) {
  clock_.store(clock, std::memory_order_release);
}

void Tracer::ClearClock(const SimClock* clock) {
  const SimClock* expected = clock;
  clock_.compare_exchange_strong(expected, nullptr,
                                 std::memory_order_acq_rel);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    ring->events.clear();
    ring->next = 0;
    ring->dropped = 0;
  }
}

void Tracer::Record(TraceEvent event) {
  if (!enabled()) return;
  event.tid = 0;  // overwritten below with the ring's dense id
  ThreadRing* ring = RingForThisThread();
  event.tid = ring->tid;
  ring->Push(std::move(event));
}

void Tracer::Now(double* wall_us, double* virt_s) const {
  *wall_us = WallNowUs();
  const SimClock* clock = clock_.load(std::memory_order_acquire);
  *virt_s = clock ? clock->Now() : -1.0;
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rings = rings_;
  }
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    out.insert(out.end(), ring->events.begin(), ring->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.wall_begin_us < b.wall_begin_us;
                   });
  return out;
}

uint64_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    total += ring->dropped;
  }
  return total;
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  std::vector<TraceEvent> events = Collect();
  // Normalize timestamps so the trace starts near t=0 — chrome://tracing
  // handles absolute steady_clock values but the viewport math gets ugly.
  double epoch = events.empty() ? 0.0 : events.front().wall_begin_us;

  std::string json;
  json.reserve(events.size() * 160 + 256);
  json.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  char buf[64];
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) json.push_back(',');
    first = false;
    json.append("{\"name\":\"");
    AppendJsonEscaped(&json, e.name);
    json.append("\",\"cat\":\"");
    AppendJsonEscaped(&json, e.category);
    json.append("\",\"ph\":\"X\",\"pid\":0,\"tid\":");
    std::snprintf(buf, sizeof(buf), "%u", e.tid);
    json.append(buf);
    json.append(",\"ts\":");
    std::snprintf(buf, sizeof(buf), "%.3f", e.wall_begin_us - epoch);
    json.append(buf);
    json.append(",\"dur\":");
    std::snprintf(buf, sizeof(buf), "%.3f", e.wall_dur_us);
    json.append(buf);
    json.append(",\"args\":{\"virt_begin_s\":");
    std::snprintf(buf, sizeof(buf), "%.9g", e.virt_begin_s);
    json.append(buf);
    json.append(",\"virt_dur_s\":");
    std::snprintf(buf, sizeof(buf), "%.9g",
                  e.virt_end_s >= 0.0 && e.virt_begin_s >= 0.0
                      ? e.virt_end_s - e.virt_begin_s
                      : 0.0);
    json.append(buf);
    json.append(",\"depth\":");
    std::snprintf(buf, sizeof(buf), "%d", e.depth);
    json.append(buf);
    json.append("}}");
  }
  json.append("]}\n");

  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot open trace file: " + path);
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal("short write to trace file: " + path);
  }
  return Status::OK();
}

// -------------------------------------------------------------------- SpanGuard

SpanGuard::SpanGuard(const char* category, const char* name) {
  if (!Tracer::Global().enabled()) return;
  event_.name = name;
  Open(category);
}

SpanGuard::SpanGuard(const char* category, std::string name) {
  if (!Tracer::Global().enabled()) return;
  event_.name = std::move(name);
  Open(category);
}

void SpanGuard::Open(const char* category) {
  active_ = true;
  event_.category = category;
  event_.depth = ++t_depth;
  Tracer::Global().Now(&event_.wall_begin_us, &event_.virt_begin_s);
}

SpanGuard::~SpanGuard() {
  if (!active_) return;
  --t_depth;
  double wall_end_us = 0.0;
  Tracer::Global().Now(&wall_end_us, &event_.virt_end_s);
  event_.wall_dur_us = wall_end_us - event_.wall_begin_us;
  Tracer::Global().Record(std::move(event_));
}

}  // namespace obs
}  // namespace ps2
