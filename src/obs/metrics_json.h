#pragma once

// JSON export of a MetricsRegistry: all counters plus percentile summaries
// of all histograms. Consumed by `ps2run --metrics-json=...` and by humans
// diffing two runs.

#include <string>

#include "common/metrics.h"
#include "common/status.h"

namespace ps2 {
namespace obs {

/// Serializes `metrics` as
/// `{"counters": {name: value, ...},
///   "histograms": {name: {count,sum,min,max,p50,p95,p99}, ...}}`.
std::string MetricsToJson(const MetricsRegistry& metrics);

/// MetricsToJson written to `path`.
Status WriteMetricsJson(const MetricsRegistry& metrics,
                        const std::string& path);

}  // namespace obs
}  // namespace ps2
