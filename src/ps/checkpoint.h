#pragma once

// Checkpoint store: the "reliable external storage" of paper §5.3.
//
// PS-servers periodically serialize their shards here; after a simulated
// server crash the master restores the latest checkpoint, losing only the
// updates pushed since. The store is in-memory, but writes and reads charge
// virtual IO time so checkpoint frequency has a visible cost.

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "sim/sim_clock.h"

namespace ps2 {

/// \brief Durable (simulated) storage of per-server checkpoint images.
class CheckpointStore {
 public:
  /// Stores a server image; returns its size in bytes.
  uint64_t Put(int server_id, std::vector<uint8_t> image);

  /// Latest image for a server, or empty if never checkpointed.
  std::vector<uint8_t> Get(int server_id) const;

  /// Latest image for a server, or nullopt if never checkpointed. Single
  /// lock acquisition — the check-then-fetch used on the recovery path.
  std::optional<std::vector<uint8_t>> TryGet(int server_id) const;

  bool Has(int server_id) const;
  uint64_t TotalBytes() const;
  uint64_t checkpoints_taken() const { return puts_; }

 private:
  mutable std::mutex mu_;
  std::map<int, std::vector<uint8_t>> images_;
  uint64_t puts_ = 0;
};

}  // namespace ps2
