#pragma once

// PS-client: the bridge between workers (or the coordinator) and PS-servers
// (paper §5.1). Each operation
//
//   1. builds one serialized request per server whose column range it
//      touches,
//   2. executes it (an in-process PsServer::Handle call standing in for a
//      Netty RPC), and
//   3. records the exchange — request bytes, response bytes, server ops —
//      into the ambient task's TaskTraffic. When no task is active (the
//      coordinator issuing a DCV op between stages, e.g. the Adam update
//      zip), the op charges the cluster clock directly with the collective
//      cost of its fan-out.
//
// Column ops verify co-location; on non-co-located operands they fall back
// to the naive pull-compute-push path, whose (large, measured) traffic is
// exactly the inefficiency paper Fig. 4 warns about.

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "linalg/sparse_vector.h"
#include "ps/ps_master.h"
#include "ps/ps_types.h"

namespace ps2 {

/// \brief Stateless, thread-safe client for PS operations.
class PsClient {
 public:
  static constexpr uint64_t kWholeRow = ~0ULL;

  explicit PsClient(PsMaster* master);

  // ---- Row access ops (paper Table 1: pull, push, sum, nnz, norm2) ----

  /// Pulls [begin, end) of a row as a dense vector (default: whole row).
  Result<std::vector<double>> PullDense(RowRef ref, uint64_t begin = 0,
                                        uint64_t end = kWholeRow);

  /// Pulls the values at `indices` (sorted, unique). This is PS2's sparse
  /// communication: only the needed parameters travel.
  Result<std::vector<double>> PullSparse(RowRef ref,
                                         const std::vector<uint64_t>& indices);

  /// Adds `delta` into row columns [begin, begin+delta.size()).
  Status PushDense(RowRef ref, const std::vector<double>& delta,
                   uint64_t begin = 0);

  /// Adds a sparse delta into the row (the DCV `add` used for gradients).
  Status PushSparse(RowRef ref, const SparseVector& delta);

  /// Distributed sum / nnz / squared-norm / max of a row.
  Result<double> RowAggregate(RowRef ref, RowAggKind kind);

  // ---- Column access ops (paper Table 1: axpy, dot, copy, sub, add, ...) --

  /// dst = op(srcs...) element-wise, server-side when co-located.
  Status ColumnOp(ColOpKind kind, RowRef dst, const std::vector<RowRef>& srcs,
                  double scalar = 0.0);

  /// Distributed dot product of two rows.
  Result<double> Dot(RowRef a, RowRef b);

  /// Runs a registered mutating UDF over the co-located rows, server-side.
  Status Zip(const std::vector<RowRef>& rows, int udf_id);

  /// Runs a registered aggregation UDF server-side; returns one result
  /// vector per partition (in partition order).
  Result<std::vector<std::vector<double>>> ZipAggregate(
      const std::vector<RowRef>& rows, int udf_id);

  /// Many dots in one round trip (DeepWalk batches).
  Result<std::vector<double>> DotBatch(
      const std::vector<std::pair<RowRef, RowRef>>& pairs);

  struct AxpyTask {
    RowRef dst;
    RowRef src;
    double alpha;
  };
  /// Many dst += alpha*src updates in one round trip (DeepWalk batches).
  Status AxpyBatch(const std::vector<AxpyTask>& tasks);

  /// Pulls many full rows in one round (all rows must be co-located).
  /// Returns the rows in request order.
  Result<std::vector<std::vector<double>>> PullRows(
      const std::vector<RowRef>& rows);

  /// Adds dense deltas into many rows in one round.
  Status PushRows(const std::vector<RowRef>& rows,
                  const std::vector<std::vector<double>>& deltas);

  /// Pulls the values at the SHARED sorted `indices` from many co-located
  /// rows in one round (LDA pulls its local vocabulary's counts for every
  /// topic row this way). Result is [row][index].
  /// With `compress_counts` the values travel as zigzag varints of their
  /// rounded integer value (PS2's message compression; only valid for
  /// integer-valued matrices such as LDA count tables).
  Result<std::vector<std::vector<double>>> PullSparseRows(
      const std::vector<RowRef>& rows, const std::vector<uint64_t>& indices,
      bool compress_counts = false);

  /// Adds per-row sparse deltas to many co-located rows in one round.
  Status PushSparseRows(const std::vector<RowRef>& rows,
                        const std::vector<SparseVector>& deltas,
                        bool compress_counts = false);

  /// Initializes rows [row_begin, row_end) of a matrix with deterministic
  /// hash-uniform values in [-scale, scale], entirely server-side — the
  /// bulk initializer for embedding matrices (2V rows would otherwise need
  /// 2V pushes).
  Status MatrixInit(int matrix_id, uint32_t row_begin, uint32_t row_end,
                    double scale, uint64_t seed);

  PsMaster* master() const { return master_; }

 private:
  class OpScope;

  /// Sends `request` to `server`, recording the exchange into `traffic`.
  Result<PsServer::HandleResult> Exchange(TaskTraffic* traffic, int server,
                                          std::vector<uint8_t> request);

  /// True if all rows' matrices place every column on the same server.
  Result<bool> CoLocated(const std::vector<RowRef>& rows,
                         MatrixMeta* first_meta);

  Status ColumnOpSlowPath(ColOpKind kind, RowRef dst,
                          const std::vector<RowRef>& srcs, double scalar);

  PsMaster* master_;
};

}  // namespace ps2
