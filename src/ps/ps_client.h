#pragma once

// PS-client: the bridge between workers (or the coordinator) and PS-servers
// (paper §5.1). Each operation
//
//   1. builds one serialized request per server whose column range it
//      touches,
//   2. executes the fan-out — in parallel on the client's I/O pool (an
//      in-process PsServer::Handle call standing in for a Netty RPC per
//      server), and
//   3. records the exchanges — request bytes, response bytes, server ops —
//      into the issuing task's TaskTraffic. When no task is active (the
//      coordinator issuing a DCV op between stages, e.g. the Adam update
//      zip), the op charges the cluster clock directly with the collective
//      cost of its fan-out.
//
// Every operation has an asynchronous twin returning a PsFuture<T>
// (paper §5.1's asynchronous client). Async ops enter a bounded in-flight
// window (PsClientOptions::window_depth; issue blocks when full) and record
// their traffic into a future-local record that the first Wait()/Get()
// merges into the caller's scope. Overlap accounting: the first op issued
// while a context has nothing outstanding is the round *leader*
// (TaskTraffic::rounds += 1); ops issued while others are outstanding ride
// the leader's latency window (TaskTraffic::pipelined_rounds += 1), so an
// overlapped group of k ops charges max — one round — rather than the sum
// the serial client paid. Leader/follower is decided at issue time and
// retired at harvest time, both on the caller thread in program order, so
// virtual time stays deterministic no matter how pool threads interleave.
// The synchronous API is a thin XAsync(...).Get() wrapper — with nothing
// outstanding it is leader-classified and byte-and-round identical to the
// old serial client.
//
// Error fan-out semantics (identical under both parallel_fanout settings):
// every request executes on its server, every *successful* exchange is
// recorded in partition order, and the reported Status is the first failure
// in partition order. There is no partial-execution mode — a stage that
// fails on server k still ran its requests on servers > k, and the dedup
// layer below makes re-driving the whole fan-out safe.
//
// Fault tolerance (DESIGN.md §6): every request carries an RpcHeader
// (client id, per-server monotonic sequence number, attempt). Injected
// message faults (lost request, lost response, server crash — see
// sim/failure_injector.h) surface as Unavailable; the client retries the
// *same* sequence number up to PsClientOptions::max_attempts times with
// exponential backoff charged to virtual time (TaskTraffic::
// retry_backoff_time), optionally recovering a crashed server from its
// latest checkpoint first. Servers deduplicate retried mutations by
// (client, seq), so a push whose response was lost is applied exactly once.
//
// Column ops verify co-location; on non-co-located operands they fall back
// to the naive pull-compute-push path, whose (large, measured) traffic is
// exactly the inefficiency paper Fig. 4 warns about. The fallback runs
// synchronously at issue time even through ColumnOpAsync.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/serde.h"
#include "common/slice.h"
#include "common/thread_pool.h"
#include "hotspot/client_cache.h"
#include "linalg/sparse_vector.h"
#include "net/filter_config.h"
#include "net/filters.h"
#include "ps/ps_future.h"
#include "ps/ps_master.h"
#include "ps/ps_types.h"

namespace ps2 {

/// \brief Tunables of the client's asynchronous pipeline.
struct PsClientOptions {
  /// Maximum async ops in flight per client. Further issues block until a
  /// slot frees — the backpressure that bounds worker-side staleness.
  int window_depth = 8;
  /// Threads in the per-client fan-out pool; 0 = one per server (capped).
  int fanout_threads = 0;
  /// When false, every exchange runs serially on the caller thread (the
  /// pre-async client's execution order; futures complete at issue).
  bool parallel_fanout = true;
  /// Total tries per request (1 = no retries). Only Unavailable results —
  /// injected message faults and crashed servers — are retried; the backoff
  /// between tries is charged to virtual time via CostModel::RetryBackoff.
  int max_attempts = 4;
  /// When a retry finds the server crashed (sim/failure_injector.h), ask the
  /// master to restore it from its latest checkpoint before retrying. The
  /// recovery stall is charged to the retrying task. When false, the request
  /// keeps retrying against the dead server and surfaces Unavailable.
  bool recover_crashed_servers = true;
  /// Wire filter chain for this client's traffic (net/filters.h). Unset
  /// (the default) inherits ClusterSpec::filters — the same convention as
  /// the --simd flag's runtime dispatch: one spec-level switch, per-client
  /// override for tests.
  std::optional<FilterConfig> filters;
};

/// \brief Thread-safe client for PS operations.
class PsClient {
 public:
  explicit PsClient(PsMaster* master, PsClientOptions options = {});

  /// Quiesces the async window (waits for all in-flight ops) before
  /// tearing down the fan-out pool.
  ~PsClient();

  PsClient(const PsClient&) = delete;
  PsClient& operator=(const PsClient&) = delete;

  // ---- Row access ops (paper Table 1: pull, push, sum, nnz, norm2) ----

  /// Pulls `cols` of a row as a dense vector (default: the whole row).
  Result<std::vector<double>> PullDense(RowRef ref,
                                        ColRange cols = ColRange::All());

  /// Pulls the values at `indices` (sorted, unique). This is PS2's sparse
  /// communication: only the needed parameters travel.
  Result<std::vector<double>> PullSparse(RowRef ref,
                                         const std::vector<uint64_t>& indices);

  /// Adds `delta` into the row's `cols` window. ColRange::All() means
  /// [0, delta.size()); an explicit range must have width() == delta.size().
  Status PushDense(RowRef ref, const std::vector<double>& delta,
                   ColRange cols = ColRange::All());

  /// Adds a sparse delta into the row (the DCV `add` used for gradients).
  Status PushSparse(RowRef ref, const SparseVector& delta);

  /// Distributed sum / nnz / squared-norm / max of a row.
  Result<double> RowAggregate(RowRef ref, RowAggKind kind);

  // ---- Column access ops (paper Table 1: axpy, dot, copy, sub, add, ...) --

  /// dst = op(srcs...) element-wise, server-side when co-located.
  Status ColumnOp(ColOpKind kind, RowRef dst, const std::vector<RowRef>& srcs,
                  double scalar = 0.0);

  /// Distributed dot product of two rows.
  Result<double> Dot(RowRef a, RowRef b);

  /// Runs a registered mutating UDF over the co-located rows, server-side.
  Status Zip(const std::vector<RowRef>& rows, int udf_id);

  /// Runs a registered aggregation UDF server-side; returns one result
  /// vector per partition (in partition order).
  Result<std::vector<std::vector<double>>> ZipAggregate(
      const std::vector<RowRef>& rows, int udf_id);

  struct AxpyTask {
    RowRef dst;
    RowRef src;
    double alpha;
  };

  /// \brief One read of the serving tier: a row, at `indices` (sorted,
  /// unique) or the whole row when `indices` is empty.
  struct ServingRead {
    RowRef row;
    std::vector<uint64_t> indices;
  };

  // ---- Batch entry points -------------------------------------------------
  //
  // Batched work goes through Dcv::Batch() (dcv/dcv_batch.h) or the *Async
  // variants below; the old synchronous DotBatch/AxpyBatch/PullRows/
  // PushRows/PullSparseRows/PushSparseRows wrappers are gone — call
  // XAsync(...).Wait()/.Get() where a blocking round is genuinely wanted.

  /// Initializes rows [row_begin, row_end) of a matrix with deterministic
  /// hash-uniform values in [-scale, scale], entirely server-side — the
  /// bulk initializer for embedding matrices (2V rows would otherwise need
  /// 2V pushes).
  Status MatrixInit(int matrix_id, uint32_t row_begin, uint32_t row_end,
                    double scale, uint64_t seed);

  // ---- Asynchronous API ---------------------------------------------------
  //
  // Each op validates at issue time (an invalid call returns an
  // already-failed future that charges nothing), claims a window slot, and
  // fans its requests out on the I/O pool. Wait()/Get() the future — on the
  // issuing thread — to retrieve the result and charge the traffic.

  PsFuture<std::vector<double>> PullDenseAsync(RowRef ref,
                                               ColRange cols = ColRange::All());
  PsFuture<std::vector<double>> PullSparseAsync(
      RowRef ref, const std::vector<uint64_t>& indices);
  PsFuture<Ack> PushDenseAsync(RowRef ref, const std::vector<double>& delta,
                               ColRange cols = ColRange::All());
  PsFuture<Ack> PushSparseAsync(RowRef ref, const SparseVector& delta);
  PsFuture<double> RowAggregateAsync(RowRef ref, RowAggKind kind);
  PsFuture<Ack> ColumnOpAsync(ColOpKind kind, RowRef dst,
                              const std::vector<RowRef>& srcs,
                              double scalar = 0.0);
  PsFuture<double> DotAsync(RowRef a, RowRef b);
  PsFuture<std::vector<double>> DotBatchAsync(
      const std::vector<std::pair<RowRef, RowRef>>& pairs);
  PsFuture<Ack> AxpyBatchAsync(const std::vector<AxpyTask>& tasks);
  PsFuture<std::vector<std::vector<double>>> PullRowsAsync(
      const std::vector<RowRef>& rows);
  PsFuture<Ack> PushRowsAsync(const std::vector<RowRef>& rows,
                              const std::vector<std::vector<double>>& deltas);
  PsFuture<std::vector<std::vector<double>>> PullSparseRowsAsync(
      const std::vector<RowRef>& rows, const std::vector<uint64_t>& indices,
      bool compress_counts = false);
  PsFuture<Ack> PushSparseRowsAsync(const std::vector<RowRef>& rows,
                                    const std::vector<SparseVector>& deltas,
                                    bool compress_counts = false);

  /// Pulls each row's FULL vector, where rows may live in DIFFERENT
  /// single-partition matrices (MatrixOptions::home_server — per-key
  /// parameter management, DESIGN.md §13). Requests group by owning server
  /// over kPullRowsBatch; hot rows fresh in the HotRowCache are served
  /// locally, hot-but-stale rows warm the cache from the pull. Metas are
  /// fetched per call, so a batch issued after a relocation tick routes to
  /// the new homes; callers must not relocate mid-batch (trainers tick the
  /// classifier at stage barriers).
  PsFuture<std::vector<std::vector<double>>> PullOwnedRowsAsync(
      const std::vector<RowRef>& rows);
  /// Push counterpart: adds each full-width delta to its row at the owning
  /// server, grouped by owner over kPushRowsBatch.
  PsFuture<Ack> PushOwnedRowsAsync(
      const std::vector<RowRef>& rows,
      const std::vector<std::vector<double>>& deltas);

  /// Advances `worker`'s clock to `clock` in every active server's
  /// worker-clock vector (kClockAdvance fan-out; consistency/, DESIGN.md
  /// §11). Servers max-merge, so the op is idempotent and retry-safe.
  PsFuture<Ack> ClockAdvanceAsync(int worker, uint64_t clock);
  /// Blocking wrapper around ClockAdvanceAsync.
  Status ClockAdvance(int worker, uint64_t clock);

  /// Batched snapshot-isolated reads against published epoch `epoch`
  /// (kServingPull). Entries bound for the same server travel in ONE
  /// request — the ServingFrontend's coalescing lever. Returns one dense
  /// vector per read: the whole row for a full-row read, else the values at
  /// the read's indices. Fails with FailedPrecondition("serving snapshot
  /// epoch not available") when `epoch` fell out of a server's retention
  /// window; callers repin to the current epoch and retry.
  PsFuture<std::vector<std::vector<double>>> ServingPullAsync(
      uint64_t epoch, const std::vector<ServingRead>& reads);

  /// Runs one migration-control exchange (membership/, DESIGN.md §12):
  /// seals `writer` into a request for `server`, drives it through the full
  /// fault/retry/dedup machinery, and returns the raw response bytes.
  /// Control opcodes are exempt from the routing-staleness check, so this
  /// works against fenced and decommissioned servers — it is what un-fences
  /// them.
  Result<std::vector<uint8_t>> ControlCall(int server, BufferWriter* writer);

  /// \brief Observability of the async window (tests, benches).
  struct AsyncStats {
    uint64_t issued = 0;     ///< async ops ever issued
    int inflight = 0;        ///< currently in flight
    int peak_inflight = 0;   ///< high-water mark (<= window_depth)
  };
  AsyncStats async_stats() const;

  const PsClientOptions& options() const { return options_; }
  PsMaster* master() const { return master_; }

  /// The client's bounded-staleness hot-row cache (hotspot/, §5d). Kept in
  /// sync by the HotspotManager; exposed for tests and benches.
  const HotRowCache& hot_cache() const { return cache_; }

 private:
  class OpScope;
  struct AsyncCore;

  /// One serialized request bound for one server. `payload` holds the
  /// logical (unfiltered) bytes; `wire` is what actually travels. With the
  /// filter chain off (or a no-gain encode) `wire` aliases `payload` — same
  /// SharedBuf control block, zero copies (the DeepCopies()==0 contract).
  struct ServerRequest {
    int server = -1;
    SharedBuf payload;                     ///< logical serialized request
    std::vector<PayloadSection> sections;  ///< filterable spans within payload
    /// Stamped on the issuing thread (program order) by StampRequests so the
    /// per-server sequence numbers — and the fault draws keyed on them — do
    /// not depend on I/O-pool scheduling.
    RpcHeader header;
    SharedBuf wire;        ///< filtered bytes; aliases payload when mask == 0
    uint8_t wire_mask = 0; ///< WireFrame::filter_mask for this request
    EncodeStats estats;    ///< per-request encode accounting
    /// Routing identity for the `routing stale` re-route protocol
    /// (DESIGN.md §12). Partition-routed requests (route_matrix >= 0)
    /// re-aim via ServerOfPartition against a refetched meta; hash-routed
    /// ones (hash_routed) re-home hash_ref over the fresh active list.
    /// Untagged requests retry in place and never re-aim.
    int route_matrix = -1;
    int route_partition = -1;
    bool hash_routed = false;
    RowRef hash_ref;
  };

  /// Result of driving one request through the retry loop.
  struct ExchangeOutcome {
    std::optional<Result<PsServer::HandleResult>> result;
    uint64_t retries = 0;      ///< failed attempts that were retried
    double backoff = 0.0;      ///< virtual seconds of backoff + recovery stall
    uint64_t dedup_hits = 0;   ///< duplicate mutations the server suppressed
                               ///< (counted even when the ack was then lost)
    uint64_t req_wire = 0;     ///< request bytes on the wire (incl. header)
    uint64_t req_logical = 0;  ///< request bytes pre-filter (incl. header)
    uint64_t resp_wire = 0;    ///< response bytes on the wire (incl. header)
    uint64_t resp_logical = 0; ///< response bytes post-decode (incl. header)
    uint64_t kc_refs = 0;      ///< key-lists replaced by a cached-hash ref
    uint64_t kc_installs = 0;  ///< key-lists installed into the server cache
    uint64_t kc_misses = 0;    ///< keycache-miss round trips (re-encodes)
    uint64_t routing_refetches = 0;  ///< routing-stale waits + re-aims
  };

  /// Parses the per-server responses (in request order) into the op's value.
  /// Runs on whichever thread completes the op; records any client-side
  /// compute into `traffic`.
  template <typename T>
  using ParseFn = std::function<Result<T>(
      std::vector<PsServer::HandleResult>&&, TaskTraffic*)>;

  /// Claims a window slot, classifies leader/follower, fans `requests` out
  /// on the I/O pool and completes the future with `parse`'s result.
  template <typename T>
  PsFuture<T> SubmitAsync(std::vector<ServerRequest> requests,
                          ParseFn<T> parse);

  /// An already-completed future outside the window (validation errors and
  /// trivially empty ops that the serial client answered without traffic).
  template <typename T>
  static PsFuture<T> ReadyFuture(Result<T> result);

  /// Seals `writer` into a request bound for `server`: takes the section
  /// marks, releases the buffer into a SharedBuf (no copy), and leaves the
  /// wire view aliasing the payload until EncodeRequest runs.
  ServerRequest MakeRequest(int server, BufferWriter* writer);

  /// MakeRequest aimed by (matrix, partition): targets
  /// `meta.partitioner.ServerOfPartition(partition)`, stamps
  /// `meta.routing_epoch` into the header and records the routing identity
  /// so ExecuteRequest can re-aim after a `routing stale` rejection.
  ServerRequest MakeRouted(const MatrixMeta& meta, int partition,
                           BufferWriter* writer);

  /// MakeRequest for hash-homed hot-row traffic: targets
  /// `active[HotHomeServer(ref, active.size())]` and records `ref` so a
  /// stale rejection re-homes over the then-current active list.
  ServerRequest MakeHashRouted(const MatrixMeta& meta, RowRef ref,
                               BufferWriter* writer);

  /// Runs the filter chain over `req->payload` per this client's
  /// FilterConfig, filling `wire`/`wire_mask`/`estats`. With
  /// `force_key_install` the key-cache filter re-sends the key list verbatim
  /// even on a client-side cache hit (the keycache-miss recovery path).
  /// Idempotent: resets the wire view first, so re-encoding is safe.
  void EncodeRequest(ServerRequest* req, bool force_key_install);

  /// Assigns each request its RpcHeader (client id + next per-server seq)
  /// and runs EncodeRequest on it. Must run on the issuing thread, in
  /// program order — the keycache install/ref decisions (client-side state)
  /// stay deterministic, and with them the wire bytes the benches pin.
  void StampRequests(std::vector<ServerRequest>* requests);

  /// Drives one stamped request through fault injection and the bounded
  /// retry loop (same seq, incremented attempt). Safe on any thread.
  /// Mutable: a keycache miss re-encodes the request in place (same seq,
  /// key list forced verbatim) and re-drives it without consuming an
  /// attempt.
  ExchangeOutcome ExecuteRequest(ServerRequest& request);

  /// Executes all requests (parallel when the pool allows), then records
  /// every success into `traffic` in request order; the returned Status is
  /// the first failure in that order (see the header comment).
  Result<std::vector<PsServer::HandleResult>> ExchangeAll(
      TaskTraffic* traffic, std::vector<ServerRequest> requests);

  /// True if all rows' matrices place every column on the same server.
  Result<bool> CoLocated(const std::vector<RowRef>& rows,
                         MatrixMeta* first_meta);

  Status ColumnOpSlowPath(ColOpKind kind, RowRef dst,
                          const std::vector<RowRef>& srcs, double scalar);

  PsMaster* master_;
  PsClientOptions options_;
  /// Resolved filter chain config (options_.filters or ClusterSpec::filters).
  FilterConfig filters_;
  FilterChain chain_;
  /// Client-side mirror of each server's key-set cache; epoch-synced with
  /// the hotspot replica epoch so invalidation piggybacks on recovery.
  ClientKeyCache keycache_;
  int client_id_;  ///< unique per client (PsMaster::AllocateClientId)
  /// Next sequence number per server, starting at 1 (0 = never sent).
  std::unique_ptr<std::atomic<uint64_t>[]> next_seq_;
  std::unique_ptr<ThreadPool> io_pool_;
  std::shared_ptr<AsyncCore> core_;
  /// Bounded-staleness copies of the hot rows, warmed by the
  /// HotspotManager at every replica sync.
  HotRowCache cache_;
  /// Per-opcode latency histograms (index kNumPsOpCodes = unknown opcode),
  /// resolved once at construction so the per-exchange cost is a direct
  /// Histogram::Record — no registry lock or string lookup on the hot path.
  /// Pointers survive MetricsRegistry::Reset (see GetOrCreateHistogram).
  std::vector<Histogram*> exchange_us_hists_;
  std::vector<Histogram*> async_op_us_hists_;
  Histogram* retries_hist_ = nullptr;
  Histogram* backoff_hist_ = nullptr;
};

}  // namespace ps2
