#include "ps/ps_server.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "linalg/dense_vector.h"
#include "obs/trace.h"

namespace ps2 {

namespace {

// Precomputed per-opcode histogram names (building a tagged name allocates;
// Handle is the hottest function in the tree).
const std::string& HandleUsName(PsOpCode op) {
  static const auto* names = [] {
    auto* n = new std::array<std::string, kNumPsOpCodes + 1>;
    for (int i = 0; i < kNumPsOpCodes; ++i) {
      (*n)[i] = TaggedName("ps.server.handle_us",
                           {{"op", PsOpCodeName(static_cast<PsOpCode>(i))}});
    }
    (*n)[kNumPsOpCodes] = TaggedName("ps.server.handle_us", {{"op", "unknown"}});
    return n;
  }();
  const int i = static_cast<int>(op);
  return (*names)[i >= 0 && i < kNumPsOpCodes ? i : kNumPsOpCodes];
}

}  // namespace

// ---------------------------------------------------------------- UdfRegistry

int UdfRegistry::RegisterZip(ZipFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  zip_fns_.push_back(std::move(fn));
  return static_cast<int>(zip_fns_.size()) - 1;
}

int UdfRegistry::RegisterZipAggregate(ZipAggFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  zip_agg_fns_.push_back(std::move(fn));
  return static_cast<int>(zip_agg_fns_.size()) - 1;
}

const ZipFn* UdfRegistry::GetZip(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(zip_fns_.size())) return nullptr;
  return &zip_fns_[id];
}

const ZipAggFn* UdfRegistry::GetZipAggregate(int id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(zip_agg_fns_.size())) return nullptr;
  return &zip_agg_fns_[id];
}

// ------------------------------------------------------------------- PsServer

Status PsServer::CreateMatrixShard(const MatrixMeta& meta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shards_.count(meta.id) > 0) {
    return Status::AlreadyExists("matrix shard already exists on server");
  }
  // This server's slice is the union span of its assigned partitions (block
  // assignment keeps them contiguous — ps/partitioner.h).
  const ColumnPartitioner& part = meta.partitioner;
  uint64_t begin = 0, end = 0;
  if (!part.ServerSpan(id_, &begin, &end)) {
    return Status::InvalidArgument("server not covered by partitioner");
  }
  Shard shard;
  shard.meta = meta;
  shard.begin = begin;
  shard.end = end;
  if (shard.dense()) {
    shard.dense_rows.assign(meta.num_rows,
                            std::vector<double>(shard.width(), 0.0));
  } else {
    shard.sparse_rows.assign(meta.num_rows, {});
  }
  shard.row_versions.assign(meta.num_rows, 0);
  shards_.emplace(meta.id, std::move(shard));
  return Status::OK();
}

Status PsServer::FreeMatrixShard(int matrix_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shards_.erase(matrix_id) == 0) {
    return Status::NotFound("matrix shard not found");
  }
  return Status::OK();
}

bool PsServer::HasMatrix(int matrix_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shards_.count(matrix_id) > 0;
}

void PsServer::FenceForMigration() {
  std::lock_guard<std::mutex> lock(mu_);
  fenced_ = true;
}

void PsServer::SetRoutingEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch > routing_epoch_) routing_epoch_ = epoch;
}

void PsServer::Decommission(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  decommissioned_ = true;
  fenced_ = false;
  if (epoch > routing_epoch_) routing_epoch_ = epoch;
  // Shard contents were migrated away; drop them (the dedup table stays —
  // it answers applied-probes for mutations this server absorbed before the
  // migration, DESIGN.md §12).
  shards_.clear();
  replicas_.clear();
  snapshots_.clear();
  staged_.clear();
}

bool PsServer::fenced() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fenced_;
}

bool PsServer::decommissioned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return decommissioned_;
}

uint64_t PsServer::routing_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return routing_epoch_;
}

void PsServer::ResizeShardLocked(Shard* shard, uint64_t new_begin,
                                 uint64_t new_end, uint64_t epoch) {
  const uint64_t old_begin = shard->begin;
  const uint64_t old_end = shard->end;
  const uint64_t n_rows = shard->meta.num_rows;
  if (shard->dense()) {
    const uint64_t new_width = new_end - new_begin;
    const uint64_t lo = std::max(old_begin, new_begin);
    const uint64_t hi = std::min(old_end, new_end);
    for (uint64_t r = 0; r < n_rows; ++r) {
      std::vector<double> row(new_width, 0.0);
      if (lo < hi) {
        const double* src = shard->dense_rows[r].data() + (lo - old_begin);
        std::copy(src, src + (hi - lo), row.data() + (lo - new_begin));
      }
      shard->dense_rows[r] = std::move(row);
    }
  } else {
    for (uint64_t r = 0; r < n_rows; ++r) {
      auto& map = shard->sparse_rows[r];
      map.erase(map.begin(), map.lower_bound(new_begin));
      map.erase(map.lower_bound(new_end), map.end());
    }
  }
  shard->begin = new_begin;
  shard->end = new_end;
  // Fill the non-overlap from this epoch's staged ranges (installed by
  // kRangeMigrate; the commit validated coverage before calling here).
  const int matrix_id = shard->meta.id;
  for (auto& [key, staged] : staged_) {
    if (std::get<0>(key) != epoch || std::get<1>(key) != matrix_id) continue;
    const uint64_t lo = std::max(staged.begin, new_begin);
    const uint64_t hi = std::min(staged.end, new_end);
    if (lo >= hi) continue;
    for (uint64_t r = 0; r < n_rows && r < staged.num_rows; ++r) {
      if (shard->dense()) {
        const double* src = staged.dense_rows[r].data() + (lo - staged.begin);
        std::copy(src, src + (hi - lo),
                  shard->dense_rows[r].data() + (lo - new_begin));
      } else {
        const auto& src = staged.sparse_rows[r];
        for (auto it = src.lower_bound(lo); it != src.end() && it->first < hi;
             ++it) {
          shard->sparse_rows[r][it->first] = it->second;
        }
      }
    }
  }
  // The row layout changed under every row: stamp them all so the next
  // snapshot publish re-copies, and so serving never aliases stale buffers.
  for (uint64_t r = 0; r < n_rows; ++r) TouchRowLocked(shard, r);
}

Result<bool> PsServer::ReconcileShardBounds(const MatrixMeta& meta) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t begin = 0, end = 0;
  const bool covered = meta.partitioner.ServerSpan(id_, &begin, &end);
  auto it = shards_.find(meta.id);
  if (!covered) {
    if (it == shards_.end()) return false;
    shards_.erase(it);
    return true;
  }
  if (it == shards_.end()) {
    Shard shard;
    shard.meta = meta;
    shard.begin = begin;
    shard.end = end;
    if (shard.dense()) {
      shard.dense_rows.assign(meta.num_rows,
                              std::vector<double>(shard.width(), 0.0));
    } else {
      shard.sparse_rows.assign(meta.num_rows, {});
    }
    shard.row_versions.assign(meta.num_rows, 0);
    shards_.emplace(meta.id, std::move(shard));
    return true;
  }
  Shard& shard = it->second;
  shard.meta = meta;
  if (shard.begin == begin && shard.end == end) return false;
  // Epoch 0 never matches a staged key, so this is a pure overlap-preserving
  // resize: the non-overlap restores as zeros, the standard post-checkpoint
  // loss semantics.
  ResizeShardLocked(&shard, begin, end, /*epoch=*/0);
  return true;
}

void PsServer::SetMetrics(MetricsRegistry* metrics) {
  // Called once at wiring time (PsMaster ctor), before any data-plane
  // traffic — the pointer caches are never written concurrently with Handle.
  handle_us_hists_.resize(kNumPsOpCodes + 1);
  for (int i = 0; i <= kNumPsOpCodes; ++i) {
    handle_us_hists_[i] = metrics->GetOrCreateHistogram(HandleUsName(
        static_cast<PsOpCode>(i < kNumPsOpCodes ? i : 0xff)));
  }
  queue_depth_hist_ = metrics->GetOrCreateHistogram(
      ServerTaggedName("ps.server.queue_depth", id_));
  metrics_.store(metrics, std::memory_order_release);
}

void PsServer::EnableAccessStats(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_capacity_ = capacity;
  stats_ = capacity > 0 ? std::make_unique<AccessStats>(capacity) : nullptr;
}

std::vector<SpaceSavingSketch::Entry> PsServer::TopPulledRows(size_t k) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (stats_ == nullptr) return {};
  return stats_->pulls.TopK(k);
}

void PsServer::DropStaleReplicaPendings(uint64_t current_epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, replica] : replicas_) {
    if (replica.version < current_epoch) replica.pending.clear();
  }
}

bool PsServer::HasReplica(RowRef ref) const {
  std::lock_guard<std::mutex> lock(mu_);
  return replicas_.count({ref.matrix_id, ref.row}) > 0;
}

Result<PsServer::ReplicaSnapshot> PsServer::DebugReplica(RowRef ref) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = replicas_.find({ref.matrix_id, ref.row});
  if (it == replicas_.end()) return Status::NotFound("no replica on server");
  ReplicaSnapshot snap;
  snap.values = it->second.values;
  snap.pending = it->second.pending;
  snap.version = it->second.version;
  return snap;
}

void PsServer::TouchRowLocked(Shard* shard, uint64_t row) {
  shard->row_versions[row] = ++mutation_clock_;
}

void PsServer::TouchRowIdLocked(int matrix_id, uint64_t row) {
  auto it = shards_.find(matrix_id);
  if (it != shards_.end() && row < it->second.meta.num_rows) {
    TouchRowLocked(&it->second, row);
  }
}

void PsServer::TouchAllRowsLocked() {
  for (auto& [id, shard] : shards_) {
    for (uint64_t& v : shard.row_versions) v = ++mutation_clock_;
  }
}

void PsServer::RecordPull(int matrix_id, uint32_t row) {
  if (stats_ != nullptr) stats_->pulls.Record(RowRef{matrix_id, row});
}

void PsServer::RecordPush(int matrix_id, uint32_t row) {
  if (stats_ != nullptr) stats_->pushes.Record(RowRef{matrix_id, row});
}

PsServer::Replica* PsServer::FindReplica(int matrix_id, uint32_t row) {
  auto it = replicas_.find({matrix_id, row});
  if (it == replicas_.end() || it->second.version == 0) return nullptr;
  return &it->second;
}

Result<const double*> PsServer::ReadRowView(int matrix_id, uint32_t row,
                                            uint64_t begin, uint64_t width) {
  auto it = shards_.find(matrix_id);
  if (it != shards_.end() && row < it->second.meta.num_rows &&
      it->second.dense() && it->second.begin == begin &&
      it->second.width() == width) {
    return it->second.dense_rows[row].data();
  }
  Replica* replica = FindReplica(matrix_id, row);
  if (replica != nullptr && begin + width <= replica->dim) {
    return replica->values.data() + begin;
  }
  return Status::FailedPrecondition(
      "row is neither a local primary slice nor a replica");
}

Result<PsServer::Shard*> PsServer::FindShard(int matrix_id, uint32_t row) {
  auto it = shards_.find(matrix_id);
  if (it == shards_.end()) {
    return Status::NotFound("matrix not found on server");
  }
  if (row >= it->second.meta.num_rows) {
    return Status::OutOfRange("row out of range");
  }
  return &it->second;
}

Result<double*> PsServer::DenseRow(int matrix_id, uint32_t row, uint64_t* width,
                                   uint64_t* begin) {
  PS2_ASSIGN_OR_RETURN(Shard * shard, FindShard(matrix_id, row));
  if (!shard->dense()) {
    return Status::FailedPrecondition(
        "operation requires dense matrix storage");
  }
  *width = shard->width();
  *begin = shard->begin;
  return shard->dense_rows[row].data();
}

void PsServer::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = true;
}

void PsServer::Revive() {
  std::lock_guard<std::mutex> lock(mu_);
  crashed_ = false;
}

bool PsServer::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

uint64_t PsServer::dedup_hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dedup_hits_;
}

bool PsServer::IsDuplicateLocked(int client_id, uint64_t seq) const {
  auto it = dedup_.find(client_id);
  if (it == dedup_.end()) return false;
  return seq <= it->second.floor || it->second.seen.count(seq) > 0;
}

void PsServer::RecordSeqLocked(int client_id, uint64_t seq) {
  ClientDedup& d = dedup_[client_id];
  if (seq <= d.floor) return;
  d.seen.insert(seq);
  while (!d.seen.empty() && *d.seen.begin() == d.floor + 1) {
    d.floor += 1;
    d.seen.erase(d.seen.begin());
  }
  if (d.seen.size() > kMaxSeenPerClient) {
    // Permanently missing seqs (ops whose every attempt was lost). Jump the
    // floor forward: a duplicate of a skipped seq would be wrongly deduped,
    // but the client already gave up on it after max_attempts.
    d.floor = *d.seen.begin();
    d.seen.erase(d.seen.begin());
    while (!d.seen.empty() && *d.seen.begin() == d.floor + 1) {
      d.floor += 1;
      d.seen.erase(d.seen.begin());
    }
  }
}

void PsServer::SetFilterConfig(const FilterConfig& config) {
  filters_ = config;
}

Result<PsServer::HandleResult> PsServer::Handle(
    const std::vector<uint8_t>& request) {
  return Handle(RpcHeader{}, WireFrame{Slice(request), 0});
}

Result<PsServer::HandleResult> PsServer::Handle(
    const RpcHeader& header, const std::vector<uint8_t>& request) {
  return Handle(header, WireFrame{Slice(request), 0});
}

Result<PsServer::HandleResult> PsServer::Handle(const RpcHeader& header,
                                                const WireFrame& frame) {
  // The opcode is verbatim at payload[0] whatever the filter mask (the
  // chain's prefix rule), so dispatch labels never require a decode.
  const PsOpCode op = frame.payload.empty()
                          ? static_cast<PsOpCode>(0xff)
                          : static_cast<PsOpCode>(frame.payload[0]);
  PS2_TRACE_SPAN("ps.server", PsOpCodeName(op));
  if (metrics_.load(std::memory_order_acquire) == nullptr) {
    Result<HandleResult> result = HandleInternal(header, frame);
    if (result.ok()) EncodeResponse(header, frame, &*result);
    return result;
  }
  // Latency/queue-depth histograms sample 1 in 16 requests per thread: two
  // clock reads plus two histogram records per request measurably slow the
  // hottest loop in the tree, and the distributions converge just as well
  // from a deterministic per-thread 1/16 stride. `active_` still counts every
  // request, so sampled depth readings see the true in-flight population.
  static thread_local uint32_t sample_tick = 0;
  const bool sampled = (sample_tick++ & 15) == 0;
  const int depth = active_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!sampled) {
    Result<HandleResult> result = HandleInternal(header, frame);
    active_.fetch_sub(1, std::memory_order_relaxed);
    if (result.ok()) EncodeResponse(header, frame, &*result);
    return result;
  }
  // Queue depth = requests in flight on this server the moment this one
  // arrives (including itself). Service time is measured from arrival to
  // return, so it includes the wait for mu_ — i.e. queueing delay, which is
  // exactly the straggler signal we want per opcode.
  const auto start = std::chrono::steady_clock::now();
  Result<HandleResult> result = HandleInternal(header, frame);
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  active_.fetch_sub(1, std::memory_order_relaxed);
  const int i = static_cast<int>(op);
  handle_us_hists_[i >= 0 && i < kNumPsOpCodes ? i : kNumPsOpCodes]
      ->Record(us);
  queue_depth_hist_->Record(static_cast<double>(depth));
  if (result.ok()) EncodeResponse(header, frame, &*result);
  return result;
}

Result<PsServer::HandleResult> PsServer::HandleInternal(
    const RpcHeader& header, const WireFrame& frame) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return Status::Unavailable("server is down (injected crash)");
  }
  // Routing staleness (DESIGN.md §12): while fenced or after decommission —
  // and for requests stamped with an out-of-date routing epoch — tracked
  // data-plane traffic is bounced with FailedPrecondition so the client
  // refetches the routing table and re-plans (mirrors the key-cache miss
  // protocol: the seq is NOT consumed). Migration control ops are exempt:
  // they are how the fence is lifted. For mutating requests the rejection
  // carries an applied-probe — whether this (client, seq) already executed
  // here — so a re-routed retry of a lost-response mutation never
  // double-applies on the new owner.
  if (header.tracked() && !frame.payload.empty()) {
    const PsOpCode op = static_cast<PsOpCode>(frame.payload[0]);
    if (!IsMigrationControlOpcode(op)) {
      const char* why = nullptr;
      if (decommissioned_) {
        why = "decommissioned";
      } else if (fenced_) {
        why = "fenced";
      } else if (header.routing_epoch != 0 &&
                 header.routing_epoch <= routing_epoch_) {
        // Stamps carry version + 1, so `<=` means "planned against a table
        // older than mine" — including requests planned against the initial
        // version-0 table arriving after the first migration committed.
        why = "epoch";
      }
      if (why != nullptr) {
        std::string msg = std::string("routing stale (") + why + ")";
        if (IsMutatingOpcode(op) &&
            IsDuplicateLocked(header.client_id, header.seq)) {
          msg += " (applied)";
        }
        return Status::FailedPrecondition(msg);
      }
    }
  }
  Slice payload = frame.payload;
  std::vector<uint8_t> decoded;  // keeps decoded bytes alive for HandleLocked
  auto decode = [&]() -> Status {
    if (frame.filter_mask == 0) return Status::OK();
    FilterContext ctx;
    ctx.dir = FilterDir::kClientToServer;
    ctx.server_keys = &keycache_;
    PS2_ASSIGN_OR_RETURN(
        decoded, chain_.Decode(payload, frame.filter_mask, /*prefix=*/1, &ctx));
    payload = Slice(decoded);
    return Status::OK();
  };
  if (!header.tracked()) {
    PS2_RETURN_NOT_OK(decode());
    return HandleLocked(header, payload);
  }
  if (payload.empty()) return Status::InvalidArgument("empty request");
  const bool mutating = IsMutatingOpcode(static_cast<PsOpCode>(payload[0]));
  if (mutating && IsDuplicateLocked(header.client_id, header.seq)) {
    // Retry of an already-applied mutation: ack without re-applying — and
    // without decoding, so a replayed request can never re-touch key-cache
    // state. All mutating client ops are ack-parsed, so the empty response
    // is valid.
    dedup_hits_ += 1;
    HandleResult out;
    out.dedup_hit = true;
    return out;
  }
  // A key-cache miss surfaces here as FailedPrecondition: the seq is NOT
  // recorded, so the client's re-encoded retry of the same seq still applies.
  PS2_RETURN_NOT_OK(decode());
  Result<HandleResult> result = HandleLocked(header, payload);
  if (result.ok()) RecordSeqLocked(header.client_id, header.seq);
  return result;
}

void PsServer::EncodeResponse(const RpcHeader& header, const WireFrame& frame,
                              HandleResult* out) {
  // Response-side filtering (delta/compress only — key caching is
  // request-side). Untracked traffic (control plane, legacy callers) is
  // never filtered: those callers parse the response directly.
  if (!header.tracked() || out->dedup_hit || out->response.empty()) return;
  const uint8_t opcode = frame.payload.empty() ? 0xff : frame.payload[0];
  const uint8_t want =
      filters_.MaskFor(opcode) & (kFilterDelta | kFilterCompress);
  if (want == 0) return;
  FilterContext ctx;
  ctx.dir = FilterDir::kServerToClient;
  EncodedPayload enc = chain_.Encode(Slice(out->response),
                                     out->response_sections, want,
                                     /*prefix=*/0, &ctx);
  if (enc.mask == 0) return;  // nothing transformed or shrank
  out->response_logical_bytes = out->response.size();
  out->response = std::move(enc.wire);
  out->response_mask = enc.mask;
}

Result<PsServer::HandleResult> PsServer::HandleLocked(const RpcHeader& header,
                                                      Slice request) {
  (void)header;
  BufferReader in(request);
  PS2_ASSIGN_OR_RETURN(uint8_t opcode, in.ReadU8());
  switch (static_cast<PsOpCode>(opcode)) {
    case PsOpCode::kPullDense:
      return HandlePullDense(&in);
    case PsOpCode::kPullSparse:
      return HandlePullSparse(&in);
    case PsOpCode::kPushDense:
      return HandlePushDense(&in);
    case PsOpCode::kPushSparse:
      return HandlePushSparse(&in);
    case PsOpCode::kRowAgg:
      return HandleRowAgg(&in);
    case PsOpCode::kColumnOp:
      return HandleColumnOp(&in);
    case PsOpCode::kDotPartial:
      return HandleDotPartial(&in);
    case PsOpCode::kZip:
      return HandleZip(&in);
    case PsOpCode::kZipAggregate:
      return HandleZipAggregate(&in);
    case PsOpCode::kDotBatch:
      return HandleDotBatch(&in);
    case PsOpCode::kAxpyBatch:
      return HandleAxpyBatch(&in);
    case PsOpCode::kMatrixInit:
      return HandleMatrixInit(&in);
    case PsOpCode::kPullRowsBatch:
      return HandlePullRowsBatch(&in);
    case PsOpCode::kPushRowsBatch:
      return HandlePushRowsBatch(&in);
    case PsOpCode::kPullSparseRowsBatch:
      return HandlePullSparseRowsBatch(&in);
    case PsOpCode::kPushSparseRowsBatch:
      return HandlePushSparseRowsBatch(&in);
    case PsOpCode::kHotSetUpdate:
      return HandleHotSetUpdate(&in);
    case PsOpCode::kReplicaSync:
      return HandleReplicaSync(&in);
    case PsOpCode::kHotPush:
      return HandleHotPush(&in);
    case PsOpCode::kServingPull:
      return HandleServingPull(&in);
    case PsOpCode::kClockAdvance:
      return HandleClockAdvance(&in);
    case PsOpCode::kRangeExtract:
      return HandleRangeExtract(&in);
    case PsOpCode::kRangeMigrate:
      return HandleRangeMigrate(&in);
    case PsOpCode::kRoutingUpdate:
      return HandleRoutingUpdate(&in);
  }
  return Status::InvalidArgument("unknown opcode");
}

Result<PsServer::HandleResult> PsServer::HandlePullDense(BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint64_t matrix_id, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t row, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t begin, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t end, in->ReadVarint());
  RecordPull(static_cast<int>(matrix_id), static_cast<uint32_t>(row));
  // An installed replica serves any window of the row, not just this
  // server's primary range — the bounded-staleness read path (§5d).
  if (Replica* replica = FindReplica(static_cast<int>(matrix_id),
                                     static_cast<uint32_t>(row))) {
    uint64_t hi = std::min(end, replica->dim);
    HandleResult out;
    BufferWriter writer;
    if (begin >= hi) {
      writer.WriteVarint(0);
      out.response = writer.Release();
      return out;
    }
    writer.WriteVarint(hi - begin);
    writer.BeginSection(SectionKind::kF64Values);
    writer.WriteF64Span(replica->values.data() + begin, hi - begin);
    writer.EndSection();
    out.server_ops = hi - begin;
    out.response_sections = writer.TakeSections();
    out.response = writer.Release();
    return out;
  }
  PS2_ASSIGN_OR_RETURN(Shard * shard,
                       FindShard(static_cast<int>(matrix_id),
                                 static_cast<uint32_t>(row)));
  uint64_t lo = std::max(begin, shard->begin);
  uint64_t hi = std::min(end, shard->end);
  HandleResult out;
  BufferWriter writer;
  if (lo >= hi) {
    writer.WriteVarint(0);
    out.response = writer.Release();
    return out;
  }
  uint64_t n = hi - lo;
  writer.WriteVarint(n);
  writer.BeginSection(SectionKind::kF64Values);
  if (shard->dense()) {
    writer.WriteF64Span(shard->dense_rows[row].data() + (lo - shard->begin),
                        n);
  } else {
    const auto& map = shard->sparse_rows[row];
    // Materialize the dense window from the sparse map.
    std::vector<double> window(n, 0.0);
    for (auto it = map.lower_bound(lo); it != map.end() && it->first < hi;
         ++it) {
      window[it->first - lo] = it->second;
    }
    writer.WriteF64Span(window.data(), window.size());
  }
  writer.EndSection();
  out.server_ops = n;
  out.response_sections = writer.TakeSections();
  out.response = writer.Release();
  return out;
}

Result<PsServer::HandleResult> PsServer::HandlePullSparse(BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint64_t matrix_id, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t row, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t n, in->ReadVarint());
  if (n > in->remaining()) {
    return Status::OutOfRange("index count exceeds request buffer");
  }
  RecordPull(static_cast<int>(matrix_id), static_cast<uint32_t>(row));
  if (Replica* replica = FindReplica(static_cast<int>(matrix_id),
                                     static_cast<uint32_t>(row))) {
    // Replica serves any index of the row (no partition-range check).
    HandleResult out;
    BufferWriter writer;
    writer.WriteVarint(n);
    writer.BeginSection(SectionKind::kF64Values);
    uint64_t prev = 0;
    for (uint64_t i = 0; i < n; ++i) {
      PS2_ASSIGN_OR_RETURN(uint64_t delta, in->ReadVarint());
      prev += delta;
      if (prev >= replica->dim) {
        return Status::OutOfRange("pull index outside replica");
      }
      writer.WriteF64(replica->values[prev]);
    }
    writer.EndSection();
    out.server_ops = n;
    out.response_sections = writer.TakeSections();
    out.response = writer.Release();
    return out;
  }
  PS2_ASSIGN_OR_RETURN(Shard * shard,
                       FindShard(static_cast<int>(matrix_id),
                                 static_cast<uint32_t>(row)));
  HandleResult out;
  BufferWriter writer;
  writer.WriteVarint(n);
  writer.BeginSection(SectionKind::kF64Values);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    PS2_ASSIGN_OR_RETURN(uint64_t delta, in->ReadVarint());
    uint64_t col = prev + delta;
    prev = col;
    if (col < shard->begin || col >= shard->end) {
      return Status::OutOfRange("pull index outside server range");
    }
    double value;
    if (shard->dense()) {
      value = shard->dense_rows[row][col - shard->begin];
    } else {
      const auto& map = shard->sparse_rows[row];
      auto it = map.find(col);
      value = it == map.end() ? 0.0 : it->second;
    }
    writer.WriteF64(value);
  }
  writer.EndSection();
  out.server_ops = n;
  out.response_sections = writer.TakeSections();
  out.response = writer.Release();
  return out;
}

Result<PsServer::HandleResult> PsServer::HandlePushDense(BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint64_t matrix_id, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t row, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t begin, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t n, in->ReadVarint());
  RecordPush(static_cast<int>(matrix_id), static_cast<uint32_t>(row));
  PS2_ASSIGN_OR_RETURN(Shard * shard,
                       FindShard(static_cast<int>(matrix_id),
                                 static_cast<uint32_t>(row)));
  if (begin < shard->begin || begin + n > shard->end) {
    return Status::OutOfRange("push window outside server range");
  }
  PS2_ASSIGN_OR_RETURN(std::vector<double> values, in->ReadF64Span(n));
  TouchRowLocked(shard, row);
  if (shard->dense()) {
    double* dst = shard->dense_rows[row].data() + (begin - shard->begin);
    for (uint64_t i = 0; i < n; ++i) dst[i] += values[i];
  } else {
    for (uint64_t i = 0; i < n; ++i) {
      if (values[i] != 0.0) shard->sparse_rows[row][begin + i] += values[i];
    }
  }
  HandleResult out;
  out.server_ops = n;
  return out;
}

Result<PsServer::HandleResult> PsServer::HandlePushSparse(BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint64_t matrix_id, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t row, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t n, in->ReadVarint());
  if (n > in->remaining()) {
    return Status::OutOfRange("index count exceeds request buffer");
  }
  RecordPush(static_cast<int>(matrix_id), static_cast<uint32_t>(row));
  PS2_ASSIGN_OR_RETURN(Shard * shard,
                       FindShard(static_cast<int>(matrix_id),
                                 static_cast<uint32_t>(row)));
  std::vector<uint64_t> cols(n);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    PS2_ASSIGN_OR_RETURN(uint64_t delta, in->ReadVarint());
    prev += delta;
    cols[i] = prev;
    if (prev < shard->begin || prev >= shard->end) {
      return Status::OutOfRange("push index outside server range");
    }
  }
  TouchRowLocked(shard, row);
  for (uint64_t i = 0; i < n; ++i) {
    PS2_ASSIGN_OR_RETURN(double v, in->ReadF64());
    if (shard->dense()) {
      shard->dense_rows[row][cols[i] - shard->begin] += v;
    } else if (v != 0.0) {
      shard->sparse_rows[row][cols[i]] += v;
    }
  }
  HandleResult out;
  out.server_ops = n;
  return out;
}

Result<PsServer::HandleResult> PsServer::HandleRowAgg(BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint64_t matrix_id, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t row, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint8_t kind_raw, in->ReadU8());
  PS2_ASSIGN_OR_RETURN(Shard * shard,
                       FindShard(static_cast<int>(matrix_id),
                                 static_cast<uint32_t>(row)));
  double result = 0.0;
  uint64_t touched = 0;
  auto apply = [&](double v) {
    switch (static_cast<RowAggKind>(kind_raw)) {
      case RowAggKind::kSum:
        result += v;
        break;
      case RowAggKind::kNnz:
        result += (v != 0.0) ? 1.0 : 0.0;
        break;
      case RowAggKind::kNorm2Squared:
        result += v * v;
        break;
      case RowAggKind::kMax:
        result = std::max(result, v);
        break;
    }
  };
  if (static_cast<RowAggKind>(kind_raw) == RowAggKind::kMax) {
    result = -std::numeric_limits<double>::infinity();
  }
  if (shard->dense()) {
    // Dense aggregations go through the dispatched kernels (max has no
    // kernel — it stays a scalar scan, it's not on the hot DCV op set).
    const double* data = shard->dense_rows[row].data();
    const size_t width = shard->width();
    switch (static_cast<RowAggKind>(kind_raw)) {
      case RowAggKind::kSum:
        result = kernels::Sum(data, width);
        break;
      case RowAggKind::kNnz:
        result = static_cast<double>(kernels::Nnz(data, width));
        break;
      case RowAggKind::kNorm2Squared:
        result = kernels::Norm2Sq(data, width);
        break;
      case RowAggKind::kMax:
        for (size_t i = 0; i < width; ++i) apply(data[i]);
        break;
    }
    touched = width;
  } else {
    // Sparse rows: zeros contribute nothing to sum/nnz/norm2; for max they
    // contribute only if the row has implicit zeros.
    for (const auto& [col, v] : shard->sparse_rows[row]) apply(v);
    touched = shard->sparse_rows[row].size();
    if (static_cast<RowAggKind>(kind_raw) == RowAggKind::kMax &&
        touched < shard->width()) {
      apply(0.0);
    }
  }
  HandleResult out;
  BufferWriter writer;
  writer.WriteF64(result);
  out.response = writer.Release();
  out.server_ops = touched;
  return out;
}

Result<PsServer::HandleResult> PsServer::HandleColumnOp(BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint8_t kind_raw, in->ReadU8());
  PS2_ASSIGN_OR_RETURN(uint64_t dst_matrix, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t dst_row, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t n_src, in->ReadVarint());
  if (n_src > in->remaining()) {
    return Status::OutOfRange("operand count exceeds request buffer");
  }
  std::vector<std::pair<uint64_t, uint64_t>> srcs(n_src);
  for (auto& [m, r] : srcs) {
    PS2_ASSIGN_OR_RETURN(m, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(r, in->ReadVarint());
  }
  PS2_ASSIGN_OR_RETURN(double scalar, in->ReadF64());

  uint64_t width = 0, begin = 0;
  PS2_ASSIGN_OR_RETURN(double* dst,
                       DenseRow(static_cast<int>(dst_matrix),
                                static_cast<uint32_t>(dst_row), &width,
                                &begin));
  TouchRowIdLocked(static_cast<int>(dst_matrix), dst_row);
  std::vector<const double*> src_ptrs;
  for (const auto& [m, r] : srcs) {
    // A source may be a primary slice co-located with dst, or an installed
    // replica of a hot row (which reads as co-located everywhere, §5d).
    PS2_ASSIGN_OR_RETURN(
        const double* p,
        ReadRowView(static_cast<int>(m), static_cast<uint32_t>(r), begin,
                    width));
    src_ptrs.push_back(p);
  }

  auto need = [&](size_t k) -> Status {
    if (src_ptrs.size() != k) {
      return Status::InvalidArgument("wrong operand count for column op");
    }
    return Status::OK();
  };

  HandleResult out;
  switch (static_cast<ColOpKind>(kind_raw)) {
    case ColOpKind::kAdd:
      PS2_RETURN_NOT_OK(need(2));
      out.server_ops = kernels::Add(dst, src_ptrs[0], src_ptrs[1], width);
      break;
    case ColOpKind::kSub:
      PS2_RETURN_NOT_OK(need(2));
      out.server_ops = kernels::Sub(dst, src_ptrs[0], src_ptrs[1], width);
      break;
    case ColOpKind::kMul:
      PS2_RETURN_NOT_OK(need(2));
      out.server_ops = kernels::Mul(dst, src_ptrs[0], src_ptrs[1], width);
      break;
    case ColOpKind::kDiv:
      PS2_RETURN_NOT_OK(need(2));
      out.server_ops = kernels::Div(dst, src_ptrs[0], src_ptrs[1], width);
      break;
    case ColOpKind::kCopy:
      PS2_RETURN_NOT_OK(need(1));
      out.server_ops = kernels::Copy(dst, src_ptrs[0], width);
      break;
    case ColOpKind::kAxpy:
      PS2_RETURN_NOT_OK(need(1));
      out.server_ops = kernels::Axpy(dst, src_ptrs[0], scalar, width);
      break;
    case ColOpKind::kFill:
      PS2_RETURN_NOT_OK(need(0));
      out.server_ops = kernels::Fill(dst, scalar, width);
      break;
    case ColOpKind::kScale:
      PS2_RETURN_NOT_OK(need(0));
      out.server_ops = kernels::Scale(dst, scalar, width);
      break;
    default:
      return Status::InvalidArgument("unknown column op kind");
  }
  return out;
}

Result<PsServer::HandleResult> PsServer::HandleDotPartial(BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint64_t ma, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t ra, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t mb, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t rb, in->ReadVarint());
  // Either operand may be a hot-row replica; anchor the window on whichever
  // one is a local primary slice and read the other through ReadRowView.
  uint64_t width = 0, begin = 0;
  const double* a = nullptr;
  const double* b = nullptr;
  Result<double*> a_primary =
      DenseRow(static_cast<int>(ma), static_cast<uint32_t>(ra), &width, &begin);
  if (a_primary.ok()) {
    a = *a_primary;
    PS2_ASSIGN_OR_RETURN(b, ReadRowView(static_cast<int>(mb),
                                        static_cast<uint32_t>(rb), begin,
                                        width));
  } else {
    PS2_ASSIGN_OR_RETURN(double* bp, DenseRow(static_cast<int>(mb),
                                              static_cast<uint32_t>(rb), &width,
                                              &begin));
    b = bp;
    PS2_ASSIGN_OR_RETURN(a, ReadRowView(static_cast<int>(ma),
                                        static_cast<uint32_t>(ra), begin,
                                        width));
  }
  double partial = 0.0;
  HandleResult out;
  out.server_ops = kernels::Dot(a, b, width, &partial);
  BufferWriter writer;
  writer.WriteF64(partial);
  out.response = writer.Release();
  return out;
}

Result<PsServer::HandleResult> PsServer::HandleZip(BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint64_t udf_id, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t k, in->ReadVarint());
  std::vector<double*> rows;
  std::vector<std::pair<uint64_t, uint64_t>> touched;
  uint64_t width = 0, begin = 0;
  for (uint64_t i = 0; i < k; ++i) {
    PS2_ASSIGN_OR_RETURN(uint64_t m, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t r, in->ReadVarint());
    uint64_t w = 0, b = 0;
    PS2_ASSIGN_OR_RETURN(double* p, DenseRow(static_cast<int>(m),
                                             static_cast<uint32_t>(r), &w, &b));
    if (i == 0) {
      width = w;
      begin = b;
    } else if (w != width || b != begin) {
      return Status::FailedPrecondition(
          "zip operands are not co-located on this server");
    }
    rows.push_back(p);
    // Every operand is handed to the UDF as mutable — conservatively treat
    // all of them as written for snapshot copy-on-publish.
    touched.emplace_back(m, r);
  }
  const ZipFn* fn = udfs_->GetZip(static_cast<int>(udf_id));
  if (fn == nullptr) return Status::NotFound("zip udf not registered");
  for (const auto& [m, r] : touched) {
    TouchRowIdLocked(static_cast<int>(m), r);
  }
  HandleResult out;
  out.server_ops = (*fn)(rows, width, begin);
  return out;
}

Result<PsServer::HandleResult> PsServer::HandleZipAggregate(BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint64_t udf_id, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t k, in->ReadVarint());
  std::vector<const double*> rows;
  uint64_t width = 0, begin = 0;
  for (uint64_t i = 0; i < k; ++i) {
    PS2_ASSIGN_OR_RETURN(uint64_t m, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t r, in->ReadVarint());
    uint64_t w = 0, b = 0;
    PS2_ASSIGN_OR_RETURN(double* p, DenseRow(static_cast<int>(m),
                                             static_cast<uint32_t>(r), &w, &b));
    if (i == 0) {
      width = w;
      begin = b;
    } else if (w != width || b != begin) {
      return Status::FailedPrecondition(
          "zip operands are not co-located on this server");
    }
    rows.push_back(p);
  }
  const ZipAggFn* fn = udfs_->GetZipAggregate(static_cast<int>(udf_id));
  if (fn == nullptr) return Status::NotFound("zip-aggregate udf not registered");
  std::vector<double> result = (*fn)(rows, width, begin);
  HandleResult out;
  out.server_ops = k * width;  // conservative: reads every operand element
  BufferWriter writer;
  writer.WritePodVector(result);
  out.response = writer.Release();
  return out;
}

Result<PsServer::HandleResult> PsServer::HandleDotBatch(BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint64_t count, in->ReadVarint());
  HandleResult out;
  BufferWriter writer;
  writer.WriteVarint(count);
  for (uint64_t i = 0; i < count; ++i) {
    PS2_ASSIGN_OR_RETURN(uint64_t ma, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t ra, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t mb, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t rb, in->ReadVarint());
    uint64_t width = 0, begin = 0;
    const double* a = nullptr;
    const double* b = nullptr;
    Result<double*> a_primary = DenseRow(static_cast<int>(ma),
                                         static_cast<uint32_t>(ra), &width,
                                         &begin);
    if (a_primary.ok()) {
      a = *a_primary;
      PS2_ASSIGN_OR_RETURN(b, ReadRowView(static_cast<int>(mb),
                                          static_cast<uint32_t>(rb), begin,
                                          width));
    } else {
      PS2_ASSIGN_OR_RETURN(double* bp, DenseRow(static_cast<int>(mb),
                                                static_cast<uint32_t>(rb),
                                                &width, &begin));
      b = bp;
      PS2_ASSIGN_OR_RETURN(a, ReadRowView(static_cast<int>(ma),
                                          static_cast<uint32_t>(ra), begin,
                                          width));
    }
    double partial = 0.0;
    out.server_ops += kernels::Dot(a, b, width, &partial);
    writer.WriteF64(partial);
  }
  out.response = writer.Release();
  return out;
}

Result<PsServer::HandleResult> PsServer::HandleAxpyBatch(BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint64_t count, in->ReadVarint());
  HandleResult out;
  for (uint64_t i = 0; i < count; ++i) {
    PS2_ASSIGN_OR_RETURN(uint64_t md, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t rd, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t ms, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t rs, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(double alpha, in->ReadF64());
    uint64_t wd = 0, bd = 0;
    PS2_ASSIGN_OR_RETURN(double* dst, DenseRow(static_cast<int>(md),
                                               static_cast<uint32_t>(rd), &wd,
                                               &bd));
    // The source may be a replica; the destination must be primary.
    PS2_ASSIGN_OR_RETURN(
        const double* src,
        ReadRowView(static_cast<int>(ms), static_cast<uint32_t>(rs), bd, wd));
    TouchRowIdLocked(static_cast<int>(md), rd);
    out.server_ops += kernels::Axpy(dst, src, alpha, wd);
  }
  return out;
}

Result<PsServer::HandleResult> PsServer::HandleMatrixInit(BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint64_t matrix_id, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t row_begin, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t row_end, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(double scale, in->ReadF64());
  PS2_ASSIGN_OR_RETURN(uint64_t seed, in->ReadU64());
  auto it = shards_.find(static_cast<int>(matrix_id));
  if (it == shards_.end()) return Status::NotFound("matrix not found");
  Shard& shard = it->second;
  if (!shard.dense()) {
    return Status::FailedPrecondition("matrix init requires dense storage");
  }
  row_end = std::min<uint64_t>(row_end, shard.meta.num_rows);
  HandleResult out;
  for (uint64_t r = row_begin; r < row_end; ++r) {
    TouchRowLocked(&shard, r);
    double* data = shard.dense_rows[r].data();
    for (uint64_t c = 0; c < shard.width(); ++c) {
      // Value depends only on (seed, row, global column): every server
      // produces the same overall matrix regardless of partitioning.
      uint64_t x = seed ^ (r * 0x9E3779B97F4A7C15ULL) ^
                   ((shard.begin + c) * 0xC2B2AE3D27D4EB4FULL);
      x ^= x >> 33;
      x *= 0xFF51AFD7ED558CCDULL;
      x ^= x >> 33;
      double u = static_cast<double>(x >> 11) * 0x1.0p-53;  // [0,1)
      data[c] = (2.0 * u - 1.0) * scale;
    }
  }
  out.server_ops = (row_end - row_begin) * shard.width();
  return out;
}

Result<PsServer::HandleResult> PsServer::HandlePullRowsBatch(
    BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint64_t count, in->ReadVarint());
  HandleResult out;
  BufferWriter writer;
  writer.WriteVarint(count);
  for (uint64_t i = 0; i < count; ++i) {
    PS2_ASSIGN_OR_RETURN(uint64_t m, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t r, in->ReadVarint());
    RecordPull(static_cast<int>(m), static_cast<uint32_t>(r));
    uint64_t w = 0, b = 0;
    PS2_ASSIGN_OR_RETURN(double* p, DenseRow(static_cast<int>(m),
                                             static_cast<uint32_t>(r), &w,
                                             &b));
    writer.WriteVarint(w);
    writer.BeginSection(SectionKind::kF64Values);
    writer.WriteF64Span(p, w);
    writer.EndSection();
    out.server_ops += w;
  }
  out.response_sections = writer.TakeSections();
  out.response = writer.Release();
  return out;
}

Result<PsServer::HandleResult> PsServer::HandlePushRowsBatch(
    BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint64_t count, in->ReadVarint());
  HandleResult out;
  for (uint64_t i = 0; i < count; ++i) {
    PS2_ASSIGN_OR_RETURN(uint64_t m, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t r, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t n, in->ReadVarint());
    RecordPush(static_cast<int>(m), static_cast<uint32_t>(r));
    uint64_t w = 0, b = 0;
    PS2_ASSIGN_OR_RETURN(double* p, DenseRow(static_cast<int>(m),
                                             static_cast<uint32_t>(r), &w,
                                             &b));
    if (n != w) return Status::OutOfRange("row push width mismatch");
    PS2_ASSIGN_OR_RETURN(std::vector<double> values, in->ReadF64Span(w));
    TouchRowIdLocked(static_cast<int>(m), r);
    for (uint64_t c = 0; c < w; ++c) p[c] += values[c];
    out.server_ops += w;
  }
  return out;
}

Result<PsServer::HandleResult> PsServer::HandlePullSparseRowsBatch(
    BufferReader* in) {
  // Shared delta-encoded index list, then the row list; response is
  // rows x indices values (row-major). With compress=1, values travel as
  // zigzag varints of llround(value) — PS2's message compression for
  // integer count matrices (LDA).
  PS2_ASSIGN_OR_RETURN(uint8_t compress, in->ReadU8());
  PS2_ASSIGN_OR_RETURN(uint64_t n_idx, in->ReadVarint());
  if (n_idx > in->remaining()) {
    return Status::OutOfRange("index count exceeds request buffer");
  }
  std::vector<uint64_t> cols(n_idx);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < n_idx; ++i) {
    PS2_ASSIGN_OR_RETURN(uint64_t delta, in->ReadVarint());
    prev += delta;
    cols[i] = prev;
  }
  PS2_ASSIGN_OR_RETURN(uint64_t n_rows, in->ReadVarint());
  HandleResult out;
  BufferWriter writer;
  writer.WriteVarint(n_rows);
  std::vector<double> values(n_idx);
  for (uint64_t r = 0; r < n_rows; ++r) {
    PS2_ASSIGN_OR_RETURN(uint64_t m, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t row, in->ReadVarint());
    RecordPull(static_cast<int>(m), static_cast<uint32_t>(row));
    uint64_t w = 0, b = 0;
    PS2_ASSIGN_OR_RETURN(double* p, DenseRow(static_cast<int>(m),
                                             static_cast<uint32_t>(row), &w,
                                             &b));
    for (uint64_t i = 0; i < n_idx; ++i) {
      if (cols[i] < b || cols[i] >= b + w) {
        return Status::OutOfRange("pull index outside server range");
      }
      values[i] = p[cols[i] - b];
    }
    if (compress != 0) {
      for (uint64_t i = 0; i < n_idx; ++i) {
        writer.WriteSignedVarint(static_cast<int64_t>(std::llround(values[i])));
      }
    } else {
      writer.BeginSection(SectionKind::kF64Values);
      writer.WriteF64Span(values.data(), n_idx);
      writer.EndSection();
    }
    out.server_ops += n_idx;
  }
  out.response_sections = writer.TakeSections();
  out.response = writer.Release();
  return out;
}

Result<PsServer::HandleResult> PsServer::HandlePushSparseRowsBatch(
    BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint8_t compress, in->ReadU8());
  PS2_ASSIGN_OR_RETURN(uint64_t n_rows, in->ReadVarint());
  HandleResult out;
  for (uint64_t r = 0; r < n_rows; ++r) {
    PS2_ASSIGN_OR_RETURN(uint64_t m, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t row, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t nnz, in->ReadVarint());
    if (nnz > in->remaining()) {
      return Status::OutOfRange("delta count exceeds request buffer");
    }
    RecordPush(static_cast<int>(m), static_cast<uint32_t>(row));
    uint64_t w = 0, b = 0;
    PS2_ASSIGN_OR_RETURN(double* p, DenseRow(static_cast<int>(m),
                                             static_cast<uint32_t>(row), &w,
                                             &b));
    uint64_t prev = 0;
    std::vector<uint64_t> cols(nnz);
    for (uint64_t i = 0; i < nnz; ++i) {
      PS2_ASSIGN_OR_RETURN(uint64_t delta, in->ReadVarint());
      prev += delta;
      if (prev < b || prev >= b + w) {
        return Status::OutOfRange("push index outside server range");
      }
      cols[i] = prev - b;
    }
    TouchRowIdLocked(static_cast<int>(m), row);
    for (uint64_t i = 0; i < nnz; ++i) {
      double v;
      if (compress != 0) {
        PS2_ASSIGN_OR_RETURN(int64_t iv, in->ReadSignedVarint());
        v = static_cast<double>(iv);
      } else {
        PS2_ASSIGN_OR_RETURN(double fv, in->ReadF64());
        v = fv;
      }
      p[cols[i]] += v;
    }
    out.server_ops += nnz;
  }
  return out;
}

Result<PsServer::HandleResult> PsServer::HandleHotSetUpdate(BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint64_t count, in->ReadVarint());
  if (count > in->remaining()) {
    return Status::OutOfRange("row count exceeds request buffer");
  }
  // Replace the replica set: survivors keep their values and version, rows
  // leaving the hot set are dropped, newcomers start zero-filled at version
  // 0 so pulls fall through to the primary until the first install.
  std::map<std::pair<int, uint32_t>, Replica> next;
  for (uint64_t i = 0; i < count; ++i) {
    PS2_ASSIGN_OR_RETURN(uint64_t m, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t r, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t dim, in->ReadVarint());
    const std::pair<int, uint32_t> key{static_cast<int>(m),
                                       static_cast<uint32_t>(r)};
    auto it = replicas_.find(key);
    if (it != replicas_.end() && it->second.dim == dim) {
      next.emplace(key, std::move(it->second));
    } else {
      Replica replica;
      replica.dim = dim;
      replica.values.assign(dim, 0.0);
      next.emplace(key, std::move(replica));
    }
  }
  replicas_ = std::move(next);
  return HandleResult{};
}

Result<PsServer::HandleResult> PsServer::HandleReplicaSync(BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint8_t phase, in->ReadU8());
  HandleResult out;
  BufferWriter writer;
  if (phase == 0) {
    // Collect: drain pending deltas and report this server's primary slice
    // of each listed row, so the master can rebuild the authoritative value.
    PS2_ASSIGN_OR_RETURN(uint64_t n, in->ReadVarint());
    if (n > in->remaining()) {
      return Status::OutOfRange("row count exceeds request buffer");
    }
    for (uint64_t i = 0; i < n; ++i) {
      PS2_ASSIGN_OR_RETURN(uint64_t m, in->ReadVarint());
      PS2_ASSIGN_OR_RETURN(uint64_t r, in->ReadVarint());
      auto it = replicas_.find({static_cast<int>(m), static_cast<uint32_t>(r)});
      if (it == replicas_.end()) {
        return Status::FailedPrecondition(
            "replica sync for a row without a replica");
      }
      Replica& replica = it->second;
      writer.WriteVarint(replica.pending.size());
      uint64_t prev = 0;
      for (const auto& [col, v] : replica.pending) {
        writer.WriteVarint(col - prev);
        prev = col;
      }
      for (const auto& [col, v] : replica.pending) writer.WriteF64(v);
      out.server_ops += replica.pending.size();
      replica.pending.clear();
      auto sit = shards_.find(static_cast<int>(m));
      const bool has_slice = sit != shards_.end() && sit->second.dense() &&
                             r < sit->second.meta.num_rows &&
                             sit->second.width() > 0;
      writer.WriteU8(has_slice ? 1 : 0);
      if (has_slice) {
        const Shard& shard = sit->second;
        writer.WriteVarint(shard.begin);
        writer.WriteVarint(shard.width());
        writer.WriteF64Span(shard.dense_rows[r].data(), shard.width());
        out.server_ops += shard.width();
      }
    }
  } else if (phase == 1) {
    // Install: overwrite replica values with the reconciled rows and stamp
    // them with the new epoch, making them servable.
    PS2_ASSIGN_OR_RETURN(uint64_t epoch, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t n, in->ReadVarint());
    for (uint64_t i = 0; i < n; ++i) {
      PS2_ASSIGN_OR_RETURN(uint64_t m, in->ReadVarint());
      PS2_ASSIGN_OR_RETURN(uint64_t r, in->ReadVarint());
      PS2_ASSIGN_OR_RETURN(uint64_t dim, in->ReadVarint());
      PS2_ASSIGN_OR_RETURN(std::vector<double> values, in->ReadF64Span(dim));
      auto it = replicas_.find({static_cast<int>(m), static_cast<uint32_t>(r)});
      if (it == replicas_.end() || it->second.dim != dim) {
        return Status::FailedPrecondition(
            "replica install for a row without a matching replica");
      }
      it->second.values = std::move(values);
      it->second.version = epoch;
      out.server_ops += dim;
    }
  } else {
    return Status::InvalidArgument("unknown replica sync phase");
  }
  out.response = writer.Release();
  return out;
}

Result<PsServer::HandleResult> PsServer::HandleHotPush(BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint64_t m, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t r, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t nnz, in->ReadVarint());
  if (nnz > in->remaining()) {
    return Status::OutOfRange("delta count exceeds request buffer");
  }
  RecordPush(static_cast<int>(m), static_cast<uint32_t>(r));
  // Accumulate into pending even for a version-0 (not-yet-installed)
  // replica: the next sync folds the deltas into the primary either way.
  auto it = replicas_.find({static_cast<int>(m), static_cast<uint32_t>(r)});
  if (it == replicas_.end()) {
    return Status::FailedPrecondition("hot push to a row without a replica");
  }
  Replica& replica = it->second;
  std::vector<uint64_t> cols(nnz);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < nnz; ++i) {
    PS2_ASSIGN_OR_RETURN(uint64_t delta, in->ReadVarint());
    prev += delta;
    if (prev >= replica.dim) {
      return Status::OutOfRange("push index outside replica");
    }
    cols[i] = prev;
  }
  for (uint64_t i = 0; i < nnz; ++i) {
    PS2_ASSIGN_OR_RETURN(double v, in->ReadF64());
    if (v != 0.0) replica.pending[cols[i]] += v;
  }
  HandleResult out;
  out.server_ops = nnz;
  return out;
}

Result<PsServer::HandleResult> PsServer::HandleServingPull(BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint64_t epoch, in->ReadVarint());
  const ModelSnapshot* snap = nullptr;
  for (const ModelSnapshot& s : snapshots_) {
    if (s.epoch == epoch) {
      snap = &s;
      break;
    }
  }
  if (snap == nullptr) {
    // The frontend repins to the current epoch and re-encodes on this — it
    // happens when a publish raced the read past the retention window, or
    // after a recovery republished under a fresh epoch.
    return Status::FailedPrecondition("serving snapshot epoch not available");
  }
  PS2_ASSIGN_OR_RETURN(uint64_t n_entries, in->ReadVarint());
  if (n_entries > in->remaining()) {
    return Status::OutOfRange("entry count exceeds request buffer");
  }
  HandleResult out;
  BufferWriter writer;
  writer.WriteVarint(n_entries);
  for (uint64_t e = 0; e < n_entries; ++e) {
    PS2_ASSIGN_OR_RETURN(uint64_t m, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t row, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t n_idx, in->ReadVarint());
    auto it = snap->shards.find(static_cast<int>(m));
    if (it == snap->shards.end()) {
      return Status::NotFound("matrix not in serving snapshot");
    }
    const ShardSnapshot& shard = it->second;
    if (row >= shard.rows.size()) {
      return Status::OutOfRange("row out of range");
    }
    // Serving reads feed the same demand sketches as training pulls, so the
    // hotspot plane sees the Zipfian read mix too.
    RecordPull(static_cast<int>(m), static_cast<uint32_t>(row));
    const SnapshotRow& snaprow = shard.rows[row];
    if (n_idx == 0) {
      // Full local slice [begin, end) of the row.
      const uint64_t w = shard.end - shard.begin;
      writer.WriteVarint(w);
      writer.BeginSection(SectionKind::kF64Values);
      if (shard.dense) {
        writer.WriteF64Span(snaprow.dense->data(), w);
      } else {
        std::vector<double> window(w, 0.0);
        for (const auto& [col, v] : *snaprow.sparse) {
          if (col >= shard.begin && col < shard.end) {
            window[col - shard.begin] = v;
          }
        }
        writer.WriteF64Span(window.data(), w);
      }
      writer.EndSection();
      out.server_ops += w;
    } else {
      if (n_idx > in->remaining()) {
        return Status::OutOfRange("index count exceeds request buffer");
      }
      writer.WriteVarint(n_idx);
      writer.BeginSection(SectionKind::kF64Values);
      uint64_t prev = 0;
      for (uint64_t i = 0; i < n_idx; ++i) {
        PS2_ASSIGN_OR_RETURN(uint64_t delta, in->ReadVarint());
        prev += delta;
        if (prev < shard.begin || prev >= shard.end) {
          return Status::OutOfRange("pull index outside server range");
        }
        double value;
        if (shard.dense) {
          value = (*snaprow.dense)[prev - shard.begin];
        } else {
          auto vit = snaprow.sparse->find(prev);
          value = vit == snaprow.sparse->end() ? 0.0 : vit->second;
        }
        writer.WriteF64(value);
      }
      writer.EndSection();
      out.server_ops += n_idx;
    }
  }
  out.response_sections = writer.TakeSections();
  out.response = writer.Release();
  return out;
}

Result<PsServer::HandleResult> PsServer::HandleClockAdvance(BufferReader* in) {
  PS2_ASSIGN_OR_RETURN(uint64_t worker, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t clock, in->ReadVarint());
  if (worker >= worker_clocks_.size()) {
    return Status::OutOfRange("worker id outside the clock vector");
  }
  // Max-merge: clocks only move forward. A retry whose first ack was lost —
  // or that slipped past a dedup table dropped in a crash — re-applies as a
  // no-op, so the advance is idempotent at the semantic level too.
  worker_clocks_[worker] = std::max(worker_clocks_[worker], clock);
  HandleResult out;
  out.server_ops += 1;
  return out;
}

Result<PsServer::HandleResult> PsServer::HandleRangeExtract(BufferReader* in) {
  // Non-mutating read of one matrix's column range [begin, end): the source
  // leg of a migration move. Deliberately outside the dedup table — a retry
  // must re-execute and re-produce the payload (a deduped empty ack would
  // lose it). Re-reading is safe: the source is fenced, so the range cannot
  // change between attempts.
  PS2_ASSIGN_OR_RETURN(uint64_t matrix_id, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t begin, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t end, in->ReadVarint());
  auto it = shards_.find(static_cast<int>(matrix_id));
  if (it == shards_.end()) {
    return Status::NotFound("matrix not found on server");
  }
  const Shard& shard = it->second;
  if (begin >= end || begin < shard.begin || end > shard.end) {
    return Status::FailedPrecondition("extract range not owned by server");
  }
  HandleResult out;
  BufferWriter writer;
  writer.WriteVarint(begin);
  writer.WriteVarint(end);
  writer.WriteVarint(shard.meta.dim);
  writer.WriteVarint(shard.meta.num_rows);
  writer.WriteU8(static_cast<uint8_t>(shard.meta.storage));
  const uint64_t n = end - begin;
  for (uint64_t r = 0; r < shard.meta.num_rows; ++r) {
    if (shard.dense()) {
      writer.BeginSection(SectionKind::kF64Values);
      writer.WriteF64Span(shard.dense_rows[r].data() + (begin - shard.begin),
                          n);
      writer.EndSection();
      out.server_ops += n;
    } else {
      const auto& map = shard.sparse_rows[r];
      const auto lo = map.lower_bound(begin);
      const auto hi = map.lower_bound(end);
      uint64_t nnz = 0;
      for (auto itc = lo; itc != hi; ++itc) ++nnz;
      writer.WriteVarint(nnz);
      uint64_t prev = 0;
      for (auto itc = lo; itc != hi; ++itc) {
        writer.WriteVarint(itc->first - prev);
        prev = itc->first;
      }
      for (auto itc = lo; itc != hi; ++itc) writer.WriteF64(itc->second);
      out.server_ops += nnz;
    }
  }
  // The source's worker-clock view travels with the range: clock tables
  // follow the range owner (DESIGN.md §11/§12), max-merged at commit.
  writer.WriteVarint(worker_clocks_.size());
  for (uint64_t c : worker_clocks_) writer.WriteVarint(c);
  out.response_sections = writer.TakeSections();
  out.response = writer.Release();
  return out;
}

Result<PsServer::HandleResult> PsServer::HandleRangeMigrate(BufferReader* in) {
  // Install leg: stages an extracted range under (epoch, matrix, begin),
  // waiting for the epoch's commit. Mutating and tracked, but a replay is
  // also value-idempotent — it overwrites its own key with identical bytes.
  PS2_ASSIGN_OR_RETURN(uint64_t epoch, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t matrix_id, in->ReadVarint());
  StagedRange staged;
  PS2_ASSIGN_OR_RETURN(staged.begin, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(staged.end, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(staged.dim, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint64_t num_rows, in->ReadVarint());
  PS2_ASSIGN_OR_RETURN(uint8_t storage, in->ReadU8());
  if (epoch == 0) return Status::InvalidArgument("migration epoch must be > 0");
  if (staged.begin >= staged.end) {
    return Status::InvalidArgument("empty staged range");
  }
  staged.num_rows = static_cast<uint32_t>(num_rows);
  staged.storage = static_cast<MatrixStorage>(storage);
  const uint64_t n = staged.end - staged.begin;
  HandleResult out;
  if (staged.storage == MatrixStorage::kDense) {
    staged.dense_rows.reserve(num_rows);
    for (uint64_t r = 0; r < num_rows; ++r) {
      PS2_ASSIGN_OR_RETURN(std::vector<double> row, in->ReadF64Span(n));
      staged.dense_rows.push_back(std::move(row));
      out.server_ops += n;
    }
  } else {
    staged.sparse_rows.assign(num_rows, {});
    for (uint64_t r = 0; r < num_rows; ++r) {
      PS2_ASSIGN_OR_RETURN(uint64_t nnz, in->ReadVarint());
      if (nnz > in->remaining()) {
        return Status::OutOfRange("nnz exceeds request buffer");
      }
      std::vector<uint64_t> cols(nnz);
      uint64_t prev = 0;
      for (uint64_t i = 0; i < nnz; ++i) {
        PS2_ASSIGN_OR_RETURN(uint64_t delta, in->ReadVarint());
        prev += delta;
        if (prev < staged.begin || prev >= staged.end) {
          return Status::OutOfRange("staged column outside range");
        }
        cols[i] = prev;
      }
      for (uint64_t i = 0; i < nnz; ++i) {
        PS2_ASSIGN_OR_RETURN(double v, in->ReadF64());
        staged.sparse_rows[r][cols[i]] = v;
      }
      out.server_ops += nnz;
    }
  }
  PS2_ASSIGN_OR_RETURN(uint64_t n_clocks, in->ReadVarint());
  staged.worker_clocks.resize(n_clocks, 0);
  for (uint64_t w = 0; w < n_clocks; ++w) {
    PS2_ASSIGN_OR_RETURN(staged.worker_clocks[w], in->ReadVarint());
  }
  staged_[std::make_tuple(epoch, static_cast<int>(matrix_id), staged.begin)] =
      std::move(staged);
  return out;
}

Result<PsServer::HandleResult> PsServer::HandleRoutingUpdate(BufferReader* in) {
  // Commit leg (kRoutingUpdate): atomically applies this epoch's staged
  // ranges, swaps shard bounds to the new routing table, installs the epoch
  // and lifts the fence. Runs under mu_ like all of HandleLocked, so the
  // data plane observes either the old or the new layout, never a mix.
  PS2_ASSIGN_OR_RETURN(uint64_t epoch, in->ReadVarint());
  if (epoch == 0) return Status::InvalidArgument("migration epoch must be > 0");
  PS2_ASSIGN_OR_RETURN(uint64_t n_matrices, in->ReadVarint());
  struct Entry {
    int matrix_id;
    uint64_t begin, end, dim;
    uint32_t num_rows;
    MatrixStorage storage;
  };
  std::vector<Entry> entries;
  entries.reserve(n_matrices);
  for (uint64_t i = 0; i < n_matrices; ++i) {
    Entry e;
    PS2_ASSIGN_OR_RETURN(uint64_t m, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(e.begin, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(e.end, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(e.dim, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t rows, in->ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint8_t storage, in->ReadU8());
    e.matrix_id = static_cast<int>(m);
    e.num_rows = static_cast<uint32_t>(rows);
    e.storage = static_cast<MatrixStorage>(storage);
    entries.push_back(e);
  }
  if (routing_epoch_ >= epoch && !fenced_) {
    // Replay of an already-committed epoch that slipped past the dedup
    // table (e.g. it rolled back with a crash). Committing is idempotent at
    // the routing level; the staged state is gone, so just ack.
    return HandleResult{};
  }
  // Validate coverage BEFORE mutating anything: for every matrix, the new
  // range must be covered by the old range's overlap plus staged ranges. A
  // gap means an install was lost mid-crash — the master re-installs and
  // retries the commit.
  for (const Entry& e : entries) {
    if (e.begin >= e.end) continue;  // shard is dropped, nothing to cover
    std::vector<std::pair<uint64_t, uint64_t>> covered;
    auto it = shards_.find(e.matrix_id);
    if (it != shards_.end()) {
      const uint64_t lo = std::max(it->second.begin, e.begin);
      const uint64_t hi = std::min(it->second.end, e.end);
      if (lo < hi) covered.emplace_back(lo, hi);
    }
    for (const auto& [key, staged] : staged_) {
      if (std::get<0>(key) != epoch || std::get<1>(key) != e.matrix_id) {
        continue;
      }
      const uint64_t lo = std::max(staged.begin, e.begin);
      const uint64_t hi = std::min(staged.end, e.end);
      if (lo < hi) covered.emplace_back(lo, hi);
    }
    std::sort(covered.begin(), covered.end());
    uint64_t reach = e.begin;
    for (const auto& [lo, hi] : covered) {
      if (lo > reach) break;
      reach = std::max(reach, hi);
    }
    if (reach < e.end) {
      return Status::FailedPrecondition(
          "missing staged range for migration commit");
    }
  }
  HandleResult out;
  for (const Entry& e : entries) {
    auto it = shards_.find(e.matrix_id);
    if (e.begin >= e.end) {
      if (it != shards_.end()) shards_.erase(it);
      continue;
    }
    if (it == shards_.end()) {
      // Joining server: create the shard from the commit's meta core. The
      // partitioner snapshot inside the meta is not used on the server data
      // path (bounds are explicit); the master refreshes it on publish.
      Shard shard;
      shard.meta.id = e.matrix_id;
      shard.meta.dim = e.dim;
      shard.meta.num_rows = e.num_rows;
      shard.meta.storage = e.storage;
      shard.meta.routing_epoch = epoch;
      shard.begin = e.begin;
      shard.end = e.begin;  // empty; ResizeShardLocked fills from staged
      if (e.storage == MatrixStorage::kDense) {
        shard.dense_rows.assign(e.num_rows, {});
      } else {
        shard.sparse_rows.assign(e.num_rows, {});
      }
      shard.row_versions.assign(e.num_rows, 0);
      it = shards_.emplace(e.matrix_id, std::move(shard)).first;
    }
    ResizeShardLocked(&it->second, e.begin, e.end, epoch);
    out.server_ops += static_cast<uint64_t>(e.num_rows) * (e.end - e.begin);
  }
  // Clock tables follow the range owner: max-merge every staged view.
  for (const auto& [key, staged] : staged_) {
    if (std::get<0>(key) != epoch) continue;
    if (worker_clocks_.size() < staged.worker_clocks.size()) {
      worker_clocks_.resize(staged.worker_clocks.size(), 0);
    }
    for (size_t w = 0; w < staged.worker_clocks.size(); ++w) {
      worker_clocks_[w] = std::max(worker_clocks_[w], staged.worker_clocks[w]);
    }
  }
  // Commit point: epoch forward, staged state consumed, fence lifted.
  for (auto it = staged_.begin(); it != staged_.end();) {
    it = std::get<0>(it->first) <= epoch ? staged_.erase(it) : ++it;
  }
  if (epoch > routing_epoch_) routing_epoch_ = epoch;
  fenced_ = false;
  return out;
}

void PsServer::InitWorkerClocks(int num_workers) {
  std::lock_guard<std::mutex> lock(mu_);
  worker_clocks_.assign(static_cast<size_t>(num_workers), 0);
}

std::vector<uint64_t> PsServer::WorkerClocks() const {
  std::lock_guard<std::mutex> lock(mu_);
  return worker_clocks_;
}

uint64_t PsServer::MinWorkerClock() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (worker_clocks_.empty()) return 0;
  uint64_t min_clock = worker_clocks_[0];
  for (uint64_t c : worker_clocks_) min_clock = std::min(min_clock, c);
  return min_clock;
}

Result<PsServer::PublishStats> PsServer::PublishSnapshot(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return Status::Unavailable("server is down (injected crash)");
  }
  if (!snapshots_.empty() && epoch <= snapshots_.back().epoch) {
    return Status::InvalidArgument("snapshot epoch must increase");
  }
  const ModelSnapshot* prev = snapshots_.empty() ? nullptr : &snapshots_.back();
  ModelSnapshot snap;
  snap.epoch = epoch;
  PublishStats stats;
  for (const auto& [id, shard] : shards_) {
    ShardSnapshot ss;
    ss.begin = shard.begin;
    ss.end = shard.end;
    ss.dense = shard.dense();
    const size_t n_rows = shard.meta.num_rows;
    ss.rows.resize(n_rows);
    const ShardSnapshot* prev_ss = nullptr;
    if (prev != nullptr) {
      auto it = prev->shards.find(id);
      if (it != prev->shards.end() && it->second.begin == shard.begin &&
          it->second.end == shard.end && it->second.dense == ss.dense &&
          it->second.rows.size() == n_rows) {
        prev_ss = &it->second;
      }
    }
    for (size_t r = 0; r < n_rows; ++r) {
      const uint64_t version = shard.row_versions[r];
      if (prev_ss != nullptr && prev_ss->rows[r].version == version) {
        // Untouched since the previous publish: share its immutable buffer.
        ss.rows[r] = prev_ss->rows[r];
        stats.rows_reused += 1;
      } else {
        SnapshotRow& dst = ss.rows[r];
        dst.version = version;
        if (ss.dense) {
          dst.dense = std::make_shared<const std::vector<double>>(
              shard.dense_rows[r]);
          stats.bytes_copied += shard.width() * sizeof(double);
        } else {
          dst.sparse = std::make_shared<const std::map<uint64_t, double>>(
              shard.sparse_rows[r]);
          stats.bytes_copied += shard.sparse_rows[r].size() *
                                (sizeof(uint64_t) + sizeof(double));
        }
        stats.rows_copied += 1;
      }
      stats.rows_total += 1;
    }
    snap.shards.emplace(id, std::move(ss));
  }
  snapshots_.push_back(std::move(snap));
  if (snapshots_.size() > kRetainedSnapshots) {
    snapshots_.erase(snapshots_.begin());
  }
  return stats;
}

uint64_t PsServer::snapshot_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshots_.empty() ? 0 : snapshots_.back().epoch;
}

bool PsServer::HasSnapshotEpoch(uint64_t epoch) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const ModelSnapshot& s : snapshots_) {
    if (s.epoch == epoch) return true;
  }
  return false;
}

std::vector<uint8_t> PsServer::SerializeState() const {
  std::lock_guard<std::mutex> lock(mu_);
  BufferWriter writer;
  writer.WriteVarint(shards_.size());
  for (const auto& [id, shard] : shards_) {
    writer.WriteVarint(static_cast<uint64_t>(id));
    writer.WriteU8(static_cast<uint8_t>(shard.meta.storage));
    // Shard bounds are part of the image (DESIGN.md §12): with elastic
    // membership a server's column span can change between checkpoints, so
    // restore must not assume the current bounds match the checkpoint's.
    writer.WriteVarint(shard.begin);
    writer.WriteVarint(shard.end);
    if (shard.dense()) {
      writer.WriteVarint(shard.dense_rows.size());
      for (const auto& row : shard.dense_rows) writer.WritePodVector(row);
    } else {
      writer.WriteVarint(shard.sparse_rows.size());
      for (const auto& row : shard.sparse_rows) {
        writer.WriteVarint(row.size());
        uint64_t prev = 0;
        for (const auto& [col, v] : row) {
          writer.WriteVarint(col - prev);
          prev = col;
          writer.WriteF64(v);
        }
      }
    }
  }
  // Replica section (appended so pre-§5d checkpoints stay readable).
  writer.WriteVarint(replicas_.size());
  for (const auto& [key, replica] : replicas_) {
    writer.WriteVarint(static_cast<uint64_t>(key.first));
    writer.WriteVarint(key.second);
    writer.WriteVarint(replica.dim);
    writer.WriteVarint(replica.version);
    writer.WritePodVector(replica.values);
    writer.WriteVarint(replica.pending.size());
    uint64_t prev = 0;
    for (const auto& [col, v] : replica.pending) {
      writer.WriteVarint(col - prev);
      prev = col;
      writer.WriteF64(v);
    }
  }
  // Dedup section (appended after replicas so older checkpoints stay
  // readable). Restoring it with the shard values makes recovery
  // crash-consistent: a retry racing a crash can never double-apply.
  writer.WriteVarint(dedup_.size());
  for (const auto& [client_id, d] : dedup_) {
    writer.WriteVarint(static_cast<uint64_t>(client_id));
    writer.WriteVarint(d.floor);
    writer.WriteVarint(d.seen.size());
    uint64_t prev = d.floor;
    for (uint64_t seq : d.seen) {
      writer.WriteVarint(seq - prev);
      prev = seq;
    }
  }
  // Worker-clock section (appended after dedup so §6-era checkpoints stay
  // readable). A recovered server restores the consistency controller's
  // clock vector together with the values it gates (DESIGN.md §11).
  writer.WriteVarint(worker_clocks_.size());
  for (uint64_t c : worker_clocks_) writer.WriteVarint(c);
  return writer.Release();
}

Status PsServer::RestoreState(const std::vector<uint8_t>& buffer) {
  std::lock_guard<std::mutex> lock(mu_);
  BufferReader in(buffer);
  PS2_ASSIGN_OR_RETURN(uint64_t n_shards, in.ReadVarint());
  for (uint64_t s = 0; s < n_shards; ++s) {
    PS2_ASSIGN_OR_RETURN(uint64_t id, in.ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint8_t storage, in.ReadU8());
    PS2_ASSIGN_OR_RETURN(uint64_t img_begin, in.ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t img_end, in.ReadVarint());
    auto it = shards_.find(static_cast<int>(id));
    if (it == shards_.end()) {
      return Status::NotFound("checkpoint contains unknown matrix shard");
    }
    Shard& shard = it->second;
    if (static_cast<MatrixStorage>(storage) != shard.meta.storage) {
      return Status::Internal("checkpoint storage kind mismatch");
    }
    if (img_begin > img_end) {
      return Status::Internal("checkpoint shard bounds invalid");
    }
    PS2_ASSIGN_OR_RETURN(uint64_t n_rows, in.ReadVarint());
    if (n_rows != shard.meta.num_rows) {
      return Status::Internal("checkpoint row count mismatch");
    }
    // The image is authoritative for bounds: a checkpoint written before a
    // migration restores the pre-migration span, and the master reconciles
    // it against the current routing table afterwards
    // (PsServer::ReconcileShardBounds — DESIGN.md §12).
    shard.begin = img_begin;
    shard.end = img_end;
    if (shard.dense()) {
      for (uint64_t r = 0; r < n_rows; ++r) {
        PS2_ASSIGN_OR_RETURN(std::vector<double> row,
                             in.ReadPodVector<double>());
        if (row.size() != img_end - img_begin) {
          return Status::Internal("checkpoint row width mismatch");
        }
        shard.dense_rows[r] = std::move(row);
      }
    } else {
      for (uint64_t r = 0; r < n_rows; ++r) {
        PS2_ASSIGN_OR_RETURN(uint64_t nnz, in.ReadVarint());
        shard.sparse_rows[r].clear();
        uint64_t prev = 0;
        for (uint64_t i = 0; i < nnz; ++i) {
          PS2_ASSIGN_OR_RETURN(uint64_t delta, in.ReadVarint());
          prev += delta;
          PS2_ASSIGN_OR_RETURN(double v, in.ReadF64());
          shard.sparse_rows[r][prev] = v;
        }
      }
    }
  }
  replicas_.clear();
  if (in.AtEnd()) return Status::OK();  // checkpoint predates §5d replicas
  PS2_ASSIGN_OR_RETURN(uint64_t n_replicas, in.ReadVarint());
  for (uint64_t i = 0; i < n_replicas; ++i) {
    PS2_ASSIGN_OR_RETURN(uint64_t m, in.ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t row, in.ReadVarint());
    Replica replica;
    PS2_ASSIGN_OR_RETURN(replica.dim, in.ReadVarint());
    PS2_ASSIGN_OR_RETURN(replica.version, in.ReadVarint());
    PS2_ASSIGN_OR_RETURN(replica.values, in.ReadPodVector<double>());
    if (replica.values.size() != replica.dim) {
      return Status::Internal("checkpoint replica width mismatch");
    }
    PS2_ASSIGN_OR_RETURN(uint64_t nnz, in.ReadVarint());
    uint64_t prev = 0;
    for (uint64_t j = 0; j < nnz; ++j) {
      PS2_ASSIGN_OR_RETURN(uint64_t delta, in.ReadVarint());
      prev += delta;
      PS2_ASSIGN_OR_RETURN(double v, in.ReadF64());
      replica.pending[prev] = v;
    }
    replicas_.emplace(
        std::make_pair(static_cast<int>(m), static_cast<uint32_t>(row)),
        std::move(replica));
  }
  dedup_.clear();
  if (in.AtEnd()) return Status::OK();  // checkpoint predates §6 dedup
  PS2_ASSIGN_OR_RETURN(uint64_t n_clients, in.ReadVarint());
  for (uint64_t i = 0; i < n_clients; ++i) {
    PS2_ASSIGN_OR_RETURN(uint64_t client_id, in.ReadVarint());
    ClientDedup d;
    PS2_ASSIGN_OR_RETURN(d.floor, in.ReadVarint());
    PS2_ASSIGN_OR_RETURN(uint64_t n_seen, in.ReadVarint());
    uint64_t prev = d.floor;
    for (uint64_t j = 0; j < n_seen; ++j) {
      PS2_ASSIGN_OR_RETURN(uint64_t delta, in.ReadVarint());
      prev += delta;
      d.seen.insert(prev);
    }
    dedup_[static_cast<int>(client_id)] = std::move(d);
  }
  // Restored values differ from whatever the row versions said: stamp every
  // row so the next snapshot publish re-copies from the restored state.
  TouchAllRowsLocked();
  if (in.AtEnd()) return Status::OK();  // checkpoint predates §11 clocks
  PS2_ASSIGN_OR_RETURN(uint64_t n_clocks, in.ReadVarint());
  // Max-merge into whatever the vector holds: clock advances applied after
  // the checkpoint (replayed via retries during recovery) must not be
  // rewound by restoring the older image.
  if (worker_clocks_.size() < n_clocks) worker_clocks_.resize(n_clocks, 0);
  for (uint64_t w = 0; w < n_clocks; ++w) {
    PS2_ASSIGN_OR_RETURN(uint64_t c, in.ReadVarint());
    worker_clocks_[w] = std::max(worker_clocks_[w], c);
  }
  return Status::OK();
}

void PsServer::DropAllState() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, shard] : shards_) {
    if (shard.dense()) {
      for (auto& row : shard.dense_rows) {
        std::fill(row.begin(), row.end(), 0.0);
      }
    } else {
      for (auto& row : shard.sparse_rows) row.clear();
    }
  }
  replicas_.clear();
  // Staged migration ranges die with the process: a commit after recovery
  // fails coverage validation and the master re-installs (DESIGN.md §12).
  staged_.clear();
  // Published snapshots die with the process: the master republishes from
  // the restored shards after recovery (ModelSnapshotManager).
  snapshots_.clear();
  TouchAllRowsLocked();
  // The key cache is soft state: clients' refs to forgotten hashes fault a
  // fresh install back in via the miss protocol.
  keycache_.Clear();
  // The dedup table rolls back with the state it guards: seqs applied after
  // the checkpoint are forgotten together with their effects, so their
  // retries re-apply cleanly.
  dedup_.clear();
  // Worker clocks roll back too (the vector keeps its size so advances that
  // race the recovery still land). Zeroed clocks only make the staleness
  // gate more conservative; RestoreState max-merges the checkpoint image
  // back in, and the controller rebroadcasts live clocks after recovery.
  std::fill(worker_clocks_.begin(), worker_clocks_.end(), 0);
  // The frequency sketches are soft state: a crashed server restarts cold.
  if (stats_capacity_ > 0) {
    stats_ = std::make_unique<AccessStats>(stats_capacity_);
  }
}

uint64_t PsServer::StoredValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [id, shard] : shards_) {
    if (shard.dense()) {
      total += shard.meta.num_rows * shard.width();
    } else {
      for (const auto& row : shard.sparse_rows) total += row.size();
    }
  }
  return total;
}

}  // namespace ps2
