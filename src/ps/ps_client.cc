#include "ps/ps_client.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "linalg/dense_vector.h"
#include "net/message.h"

namespace ps2 {

// ------------------------------------------------------------------- OpScope

/// Binds the op to the ambient task's traffic record, or — when issued from
/// the coordinator between stages — accumulates locally and charges the
/// cluster clock with the collective fan-out cost on destruction.
class PsClient::OpScope {
 public:
  explicit OpScope(Cluster* cluster) : cluster_(cluster) {
    ambient_ = TrafficScope::Current();
    traffic_ = ambient_ != nullptr ? ambient_ : &local_;
  }

  ~OpScope() {
    if (ambient_ != nullptr) return;
    const CostModel& cost = cluster_->cost();
    const ClusterSpec& spec = cost.spec();
    SimTime worst_server = 0;
    for (size_t s = 0; s < local_.bytes_to_server.size(); ++s) {
      SimTime t =
          static_cast<double>(local_.bytes_to_server[s] +
                              local_.bytes_from_server[s]) /
              spec.net_bandwidth_bps +
          cost.MessageOverhead(local_.msgs_to_server[s] +
                               local_.msgs_from_server[s]) +
          cost.ServerCompute(local_.server_ops[s]);
      worst_server = std::max(worst_server, t);
    }
    SimTime elapsed = cost.RoundLatency(local_.rounds) + worst_server +
                      cost.WorkerCompute(local_.worker_ops);
    cluster_->AdvanceClock(elapsed);
    cluster_->metrics().Add("net.bytes_worker_to_server",
                            local_.TotalBytesToServers());
    cluster_->metrics().Add("net.bytes_server_to_worker",
                            local_.TotalBytesFromServers());
    cluster_->metrics().Add("net.messages", local_.TotalMsgs());
  }

  TaskTraffic* traffic() { return traffic_; }

 private:
  Cluster* cluster_;
  TaskTraffic* ambient_;
  TaskTraffic local_;
  TaskTraffic* traffic_;
};

// ------------------------------------------------------------------ PsClient

PsClient::PsClient(PsMaster* master) : master_(master) {
  PS2_CHECK(master != nullptr);
}

Result<PsServer::HandleResult> PsClient::Exchange(
    TaskTraffic* traffic, int server, std::vector<uint8_t> request) {
  const uint64_t request_bytes = request.size() + Message::kHeaderBytes;
  PS2_ASSIGN_OR_RETURN(PsServer::HandleResult result,
                       master_->server(server)->Handle(request));
  const uint64_t response_bytes =
      result.response.size() + Message::kHeaderBytes;
  traffic->RecordExchange(server, request_bytes, response_bytes,
                          result.server_ops);
  return result;
}

Result<bool> PsClient::CoLocated(const std::vector<RowRef>& rows,
                                 MatrixMeta* first_meta) {
  PS2_CHECK(!rows.empty());
  PS2_ASSIGN_OR_RETURN(*first_meta, master_->GetMeta(rows[0].matrix_id));
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].matrix_id == rows[0].matrix_id) continue;
    PS2_ASSIGN_OR_RETURN(MatrixMeta meta, master_->GetMeta(rows[i].matrix_id));
    if (!meta.partitioner.CoLocatedWith(first_meta->partitioner)) {
      return false;
    }
  }
  return true;
}

Result<std::vector<double>> PsClient::PullDense(RowRef ref, uint64_t begin,
                                                uint64_t end) {
  PS2_ASSIGN_OR_RETURN(MatrixMeta meta, master_->GetMeta(ref.matrix_id));
  if (end == kWholeRow) end = meta.dim;
  if (begin > end || end > meta.dim) {
    return Status::OutOfRange("pull window out of range");
  }
  OpScope scope(master_->cluster());
  scope.traffic()->rounds += 1;
  std::vector<double> out(end - begin, 0.0);
  const ColumnPartitioner& part = meta.partitioner;
  for (int p = 0; p < part.num_servers(); ++p) {
    uint64_t lo = std::max(begin, part.RangeBegin(p));
    uint64_t hi = std::min(end, part.RangeEnd(p));
    if (lo >= hi) continue;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPullDense));
    writer.WriteVarint(ref.matrix_id);
    writer.WriteVarint(ref.row);
    writer.WriteVarint(lo);
    writer.WriteVarint(hi);
    PS2_ASSIGN_OR_RETURN(
        PsServer::HandleResult result,
        Exchange(scope.traffic(), part.ServerOfPartition(p), writer.Release()));
    BufferReader reader(result.response);
    PS2_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
    if (n != hi - lo) return Status::Internal("pull window size mismatch");
    PS2_ASSIGN_OR_RETURN(std::vector<double> values, reader.ReadF64Span(n));
    std::copy(values.begin(), values.end(), out.begin() + (lo - begin));
  }
  return out;
}

Result<std::vector<double>> PsClient::PullSparse(
    RowRef ref, const std::vector<uint64_t>& indices) {
  PS2_ASSIGN_OR_RETURN(MatrixMeta meta, master_->GetMeta(ref.matrix_id));
  OpScope scope(master_->cluster());
  scope.traffic()->rounds += 1;
  std::vector<double> out(indices.size(), 0.0);
  const ColumnPartitioner& part = meta.partitioner;
  // Sorted indices split into one contiguous run per partition.
  size_t i = 0;
  while (i < indices.size()) {
    if (indices[i] >= meta.dim) {
      return Status::OutOfRange("pull index out of range");
    }
    int p = part.PartitionOfColumn(indices[i]);
    uint64_t range_end = part.RangeEnd(p);
    size_t j = i;
    while (j < indices.size() && indices[j] < range_end) ++j;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPullSparse));
    writer.WriteVarint(ref.matrix_id);
    writer.WriteVarint(ref.row);
    writer.WriteVarint(j - i);
    uint64_t prev = 0;
    for (size_t k = i; k < j; ++k) {
      writer.WriteVarint(indices[k] - prev);
      prev = indices[k];
    }
    PS2_ASSIGN_OR_RETURN(
        PsServer::HandleResult result,
        Exchange(scope.traffic(), part.ServerOfPartition(p), writer.Release()));
    BufferReader reader(result.response);
    PS2_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
    if (n != j - i) return Status::Internal("sparse pull count mismatch");
    for (size_t k = i; k < j; ++k) {
      PS2_ASSIGN_OR_RETURN(out[k], reader.ReadF64());
    }
    i = j;
  }
  return out;
}

Status PsClient::PushDense(RowRef ref, const std::vector<double>& delta,
                           uint64_t begin) {
  PS2_ASSIGN_OR_RETURN(MatrixMeta meta, master_->GetMeta(ref.matrix_id));
  uint64_t end = begin + delta.size();
  if (end > meta.dim) return Status::OutOfRange("push window out of range");
  OpScope scope(master_->cluster());
  scope.traffic()->rounds += 1;
  const ColumnPartitioner& part = meta.partitioner;
  for (int p = 0; p < part.num_servers(); ++p) {
    uint64_t lo = std::max(begin, part.RangeBegin(p));
    uint64_t hi = std::min(end, part.RangeEnd(p));
    if (lo >= hi) continue;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPushDense));
    writer.WriteVarint(ref.matrix_id);
    writer.WriteVarint(ref.row);
    writer.WriteVarint(lo);
    writer.WriteVarint(hi - lo);
    writer.WriteF64Span(&delta[lo - begin], hi - lo);
    PS2_ASSIGN_OR_RETURN(
        PsServer::HandleResult result,
        Exchange(scope.traffic(), part.ServerOfPartition(p), writer.Release()));
    (void)result;
  }
  return Status::OK();
}

Status PsClient::PushSparse(RowRef ref, const SparseVector& delta) {
  PS2_ASSIGN_OR_RETURN(MatrixMeta meta, master_->GetMeta(ref.matrix_id));
  if (delta.nnz() > 0 && delta.indices().back() >= meta.dim) {
    return Status::OutOfRange("push index out of range");
  }
  OpScope scope(master_->cluster());
  scope.traffic()->rounds += 1;
  const ColumnPartitioner& part = meta.partitioner;
  const auto& idx = delta.indices();
  const auto& val = delta.values();
  size_t i = 0;
  while (i < idx.size()) {
    int p = part.PartitionOfColumn(idx[i]);
    uint64_t range_end = part.RangeEnd(p);
    size_t j = i;
    while (j < idx.size() && idx[j] < range_end) ++j;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPushSparse));
    writer.WriteVarint(ref.matrix_id);
    writer.WriteVarint(ref.row);
    writer.WriteVarint(j - i);
    uint64_t prev = 0;
    for (size_t k = i; k < j; ++k) {
      writer.WriteVarint(idx[k] - prev);
      prev = idx[k];
    }
    for (size_t k = i; k < j; ++k) writer.WriteF64(val[k]);
    PS2_ASSIGN_OR_RETURN(
        PsServer::HandleResult result,
        Exchange(scope.traffic(), part.ServerOfPartition(p), writer.Release()));
    (void)result;
    i = j;
  }
  return Status::OK();
}

Result<double> PsClient::RowAggregate(RowRef ref, RowAggKind kind) {
  PS2_ASSIGN_OR_RETURN(MatrixMeta meta, master_->GetMeta(ref.matrix_id));
  OpScope scope(master_->cluster());
  scope.traffic()->rounds += 1;
  double acc = kind == RowAggKind::kMax
                   ? -std::numeric_limits<double>::infinity()
                   : 0.0;
  const ColumnPartitioner& part = meta.partitioner;
  for (int p = 0; p < part.num_servers(); ++p) {
    if (part.RangeWidth(p) == 0) continue;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kRowAgg));
    writer.WriteVarint(ref.matrix_id);
    writer.WriteVarint(ref.row);
    writer.WriteU8(static_cast<uint8_t>(kind));
    PS2_ASSIGN_OR_RETURN(
        PsServer::HandleResult result,
        Exchange(scope.traffic(), part.ServerOfPartition(p), writer.Release()));
    BufferReader reader(result.response);
    PS2_ASSIGN_OR_RETURN(double partial, reader.ReadF64());
    if (kind == RowAggKind::kMax) {
      acc = std::max(acc, partial);
    } else {
      acc += partial;
    }
  }
  return acc;
}

Status PsClient::ColumnOp(ColOpKind kind, RowRef dst,
                          const std::vector<RowRef>& srcs, double scalar) {
  std::vector<RowRef> all{dst};
  all.insert(all.end(), srcs.begin(), srcs.end());
  MatrixMeta meta;
  PS2_ASSIGN_OR_RETURN(bool colocated, CoLocated(all, &meta));
  if (!colocated) {
    master_->cluster()->metrics().Add("dcv.noncolocated_column_ops", 1);
    return ColumnOpSlowPath(kind, dst, srcs, scalar);
  }
  OpScope scope(master_->cluster());
  scope.traffic()->rounds += 1;
  const ColumnPartitioner& part = meta.partitioner;
  for (int p = 0; p < part.num_servers(); ++p) {
    if (part.RangeWidth(p) == 0) continue;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kColumnOp));
    writer.WriteU8(static_cast<uint8_t>(kind));
    writer.WriteVarint(dst.matrix_id);
    writer.WriteVarint(dst.row);
    writer.WriteVarint(srcs.size());
    for (const RowRef& src : srcs) {
      writer.WriteVarint(src.matrix_id);
      writer.WriteVarint(src.row);
    }
    writer.WriteF64(scalar);
    PS2_ASSIGN_OR_RETURN(
        PsServer::HandleResult result,
        Exchange(scope.traffic(), part.ServerOfPartition(p), writer.Release()));
    (void)result;
  }
  return Status::OK();
}

Status PsClient::ColumnOpSlowPath(ColOpKind kind, RowRef dst,
                                  const std::vector<RowRef>& srcs,
                                  double scalar) {
  // The naive path of paper Fig. 4: pull full operand rows to the client,
  // compute locally, write the result back. All that traffic is real and
  // recorded; this is what non-co-located DCVs cost.
  std::vector<std::vector<double>> pulled;
  for (const RowRef& src : srcs) {
    PS2_ASSIGN_OR_RETURN(std::vector<double> row, PullDense(src));
    pulled.push_back(std::move(row));
  }
  PS2_ASSIGN_OR_RETURN(MatrixMeta dst_meta, master_->GetMeta(dst.matrix_id));
  const uint64_t dim = dst_meta.dim;
  std::vector<double> result(dim, 0.0);
  auto need = [&](size_t k) -> Status {
    if (pulled.size() != k) {
      return Status::InvalidArgument("wrong operand count for column op");
    }
    for (const auto& row : pulled) {
      if (row.size() != dim) {
        return Status::InvalidArgument("column op dimension mismatch");
      }
    }
    return Status::OK();
  };
  uint64_t ops = 0;
  switch (kind) {
    case ColOpKind::kAdd:
      PS2_RETURN_NOT_OK(need(2));
      ops = kernels::Add(result.data(), pulled[0].data(), pulled[1].data(),
                         dim);
      break;
    case ColOpKind::kSub:
      PS2_RETURN_NOT_OK(need(2));
      ops = kernels::Sub(result.data(), pulled[0].data(), pulled[1].data(),
                         dim);
      break;
    case ColOpKind::kMul:
      PS2_RETURN_NOT_OK(need(2));
      ops = kernels::Mul(result.data(), pulled[0].data(), pulled[1].data(),
                         dim);
      break;
    case ColOpKind::kDiv:
      PS2_RETURN_NOT_OK(need(2));
      ops = kernels::Div(result.data(), pulled[0].data(), pulled[1].data(),
                         dim);
      break;
    case ColOpKind::kCopy:
      PS2_RETURN_NOT_OK(need(1));
      ops = kernels::Copy(result.data(), pulled[0].data(), dim);
      break;
    case ColOpKind::kAxpy: {
      PS2_RETURN_NOT_OK(need(1));
      // dst += alpha*src: additive push works without reading dst.
      std::vector<double> delta(dim);
      for (uint64_t i = 0; i < dim; ++i) delta[i] = scalar * pulled[0][i];
      {
        OpScope scope(master_->cluster());
        scope.traffic()->worker_ops += dim;
      }
      return PushDense(dst, delta);
    }
    case ColOpKind::kFill:
    case ColOpKind::kScale:
      // Fill/scale never need operands from other servers; they are always
      // served by the fast path.
      return Status::Internal("fill/scale cannot reach the slow path");
  }
  {
    OpScope scope(master_->cluster());
    scope.traffic()->worker_ops += ops;
  }
  // Overwrite dst: zero it server-side, then push the result additively.
  PS2_RETURN_NOT_OK(ColumnOp(ColOpKind::kFill, dst, {}, 0.0));
  return PushDense(dst, result);
}

Result<double> PsClient::Dot(RowRef a, RowRef b) {
  MatrixMeta meta;
  PS2_ASSIGN_OR_RETURN(bool colocated, CoLocated({a, b}, &meta));
  if (!colocated) {
    // Naive path: ship both full rows to the client (paper Fig. 4, lines
    // 1-4 — "huge communication cost").
    master_->cluster()->metrics().Add("dcv.noncolocated_dots", 1);
    PS2_ASSIGN_OR_RETURN(std::vector<double> ra, PullDense(a));
    PS2_ASSIGN_OR_RETURN(std::vector<double> rb, PullDense(b));
    double out = 0.0;
    uint64_t ops =
        kernels::Dot(ra.data(), rb.data(), std::min(ra.size(), rb.size()),
                     &out);
    OpScope scope(master_->cluster());
    scope.traffic()->worker_ops += ops;
    return out;
  }
  OpScope scope(master_->cluster());
  scope.traffic()->rounds += 1;
  double total = 0.0;
  const ColumnPartitioner& part = meta.partitioner;
  for (int p = 0; p < part.num_servers(); ++p) {
    if (part.RangeWidth(p) == 0) continue;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kDotPartial));
    writer.WriteVarint(a.matrix_id);
    writer.WriteVarint(a.row);
    writer.WriteVarint(b.matrix_id);
    writer.WriteVarint(b.row);
    PS2_ASSIGN_OR_RETURN(
        PsServer::HandleResult result,
        Exchange(scope.traffic(), part.ServerOfPartition(p), writer.Release()));
    BufferReader reader(result.response);
    PS2_ASSIGN_OR_RETURN(double partial, reader.ReadF64());
    total += partial;
  }
  return total;
}

Status PsClient::Zip(const std::vector<RowRef>& rows, int udf_id) {
  if (rows.empty()) return Status::InvalidArgument("zip needs rows");
  MatrixMeta meta;
  PS2_ASSIGN_OR_RETURN(bool colocated, CoLocated(rows, &meta));
  if (!colocated) {
    return Status::FailedPrecondition(
        "zip requires co-located DCVs; create them with derive");
  }
  OpScope scope(master_->cluster());
  scope.traffic()->rounds += 1;
  const ColumnPartitioner& part = meta.partitioner;
  for (int p = 0; p < part.num_servers(); ++p) {
    if (part.RangeWidth(p) == 0) continue;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kZip));
    writer.WriteVarint(udf_id);
    writer.WriteVarint(rows.size());
    for (const RowRef& r : rows) {
      writer.WriteVarint(r.matrix_id);
      writer.WriteVarint(r.row);
    }
    PS2_ASSIGN_OR_RETURN(
        PsServer::HandleResult result,
        Exchange(scope.traffic(), part.ServerOfPartition(p), writer.Release()));
    (void)result;
  }
  return Status::OK();
}

Result<std::vector<std::vector<double>>> PsClient::ZipAggregate(
    const std::vector<RowRef>& rows, int udf_id) {
  if (rows.empty()) return Status::InvalidArgument("zip-aggregate needs rows");
  MatrixMeta meta;
  PS2_ASSIGN_OR_RETURN(bool colocated, CoLocated(rows, &meta));
  if (!colocated) {
    return Status::FailedPrecondition(
        "zip-aggregate requires co-located DCVs; create them with derive");
  }
  OpScope scope(master_->cluster());
  scope.traffic()->rounds += 1;
  const ColumnPartitioner& part = meta.partitioner;
  std::vector<std::vector<double>> out;
  for (int p = 0; p < part.num_servers(); ++p) {
    if (part.RangeWidth(p) == 0) continue;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kZipAggregate));
    writer.WriteVarint(udf_id);
    writer.WriteVarint(rows.size());
    for (const RowRef& r : rows) {
      writer.WriteVarint(r.matrix_id);
      writer.WriteVarint(r.row);
    }
    PS2_ASSIGN_OR_RETURN(
        PsServer::HandleResult result,
        Exchange(scope.traffic(), part.ServerOfPartition(p), writer.Release()));
    BufferReader reader(result.response);
    PS2_ASSIGN_OR_RETURN(std::vector<double> values,
                         reader.ReadPodVector<double>());
    out.push_back(std::move(values));
  }
  return out;
}

Result<std::vector<double>> PsClient::DotBatch(
    const std::vector<std::pair<RowRef, RowRef>>& pairs) {
  if (pairs.empty()) return std::vector<double>{};
  std::vector<RowRef> all;
  for (const auto& [a, b] : pairs) {
    all.push_back(a);
    all.push_back(b);
  }
  MatrixMeta meta;
  PS2_ASSIGN_OR_RETURN(bool colocated, CoLocated(all, &meta));
  if (!colocated) {
    return Status::FailedPrecondition(
        "dot-batch requires co-located DCVs; create them with derive");
  }
  OpScope scope(master_->cluster());
  scope.traffic()->rounds += 1;
  std::vector<double> out(pairs.size(), 0.0);
  const ColumnPartitioner& part = meta.partitioner;
  for (int p = 0; p < part.num_servers(); ++p) {
    if (part.RangeWidth(p) == 0) continue;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kDotBatch));
    writer.WriteVarint(pairs.size());
    for (const auto& [a, b] : pairs) {
      writer.WriteVarint(a.matrix_id);
      writer.WriteVarint(a.row);
      writer.WriteVarint(b.matrix_id);
      writer.WriteVarint(b.row);
    }
    PS2_ASSIGN_OR_RETURN(
        PsServer::HandleResult result,
        Exchange(scope.traffic(), part.ServerOfPartition(p), writer.Release()));
    BufferReader reader(result.response);
    PS2_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
    if (n != pairs.size()) return Status::Internal("dot-batch count mismatch");
    for (size_t i = 0; i < pairs.size(); ++i) {
      PS2_ASSIGN_OR_RETURN(double partial, reader.ReadF64());
      out[i] += partial;
    }
  }
  return out;
}

Status PsClient::AxpyBatch(const std::vector<AxpyTask>& tasks) {
  if (tasks.empty()) return Status::OK();
  std::vector<RowRef> all;
  for (const auto& t : tasks) {
    all.push_back(t.dst);
    all.push_back(t.src);
  }
  MatrixMeta meta;
  PS2_ASSIGN_OR_RETURN(bool colocated, CoLocated(all, &meta));
  if (!colocated) {
    return Status::FailedPrecondition(
        "axpy-batch requires co-located DCVs; create them with derive");
  }
  OpScope scope(master_->cluster());
  scope.traffic()->rounds += 1;
  const ColumnPartitioner& part = meta.partitioner;
  for (int p = 0; p < part.num_servers(); ++p) {
    if (part.RangeWidth(p) == 0) continue;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kAxpyBatch));
    writer.WriteVarint(tasks.size());
    for (const auto& t : tasks) {
      writer.WriteVarint(t.dst.matrix_id);
      writer.WriteVarint(t.dst.row);
      writer.WriteVarint(t.src.matrix_id);
      writer.WriteVarint(t.src.row);
      writer.WriteF64(t.alpha);
    }
    PS2_ASSIGN_OR_RETURN(
        PsServer::HandleResult result,
        Exchange(scope.traffic(), part.ServerOfPartition(p), writer.Release()));
    (void)result;
  }
  return Status::OK();
}

Result<std::vector<std::vector<double>>> PsClient::PullRows(
    const std::vector<RowRef>& rows) {
  if (rows.empty()) return std::vector<std::vector<double>>{};
  MatrixMeta meta;
  PS2_ASSIGN_OR_RETURN(bool colocated, CoLocated(rows, &meta));
  if (!colocated) {
    return Status::FailedPrecondition("PullRows requires co-located rows");
  }
  OpScope scope(master_->cluster());
  scope.traffic()->rounds += 1;
  std::vector<std::vector<double>> out(rows.size());
  for (auto& row : out) row.assign(meta.dim, 0.0);
  const ColumnPartitioner& part = meta.partitioner;
  for (int p = 0; p < part.num_servers(); ++p) {
    uint64_t lo = part.RangeBegin(p);
    uint64_t width = part.RangeWidth(p);
    if (width == 0) continue;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPullRowsBatch));
    writer.WriteVarint(rows.size());
    for (const RowRef& r : rows) {
      writer.WriteVarint(r.matrix_id);
      writer.WriteVarint(r.row);
    }
    PS2_ASSIGN_OR_RETURN(
        PsServer::HandleResult result,
        Exchange(scope.traffic(), part.ServerOfPartition(p), writer.Release()));
    BufferReader reader(result.response);
    PS2_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
    if (count != rows.size()) {
      return Status::Internal("row-batch pull count mismatch");
    }
    for (size_t i = 0; i < rows.size(); ++i) {
      PS2_ASSIGN_OR_RETURN(uint64_t w, reader.ReadVarint());
      if (w != width) return Status::Internal("row-batch width mismatch");
      PS2_ASSIGN_OR_RETURN(std::vector<double> values, reader.ReadF64Span(w));
      std::copy(values.begin(), values.end(), out[i].begin() + lo);
    }
  }
  return out;
}

Status PsClient::PushRows(const std::vector<RowRef>& rows,
                          const std::vector<std::vector<double>>& deltas) {
  if (rows.empty()) return Status::OK();
  if (rows.size() != deltas.size()) {
    return Status::InvalidArgument("rows/deltas size mismatch");
  }
  MatrixMeta meta;
  PS2_ASSIGN_OR_RETURN(bool colocated, CoLocated(rows, &meta));
  if (!colocated) {
    return Status::FailedPrecondition("PushRows requires co-located rows");
  }
  for (const auto& d : deltas) {
    if (d.size() != meta.dim) {
      return Status::InvalidArgument("row delta dimension mismatch");
    }
  }
  OpScope scope(master_->cluster());
  scope.traffic()->rounds += 1;
  const ColumnPartitioner& part = meta.partitioner;
  for (int p = 0; p < part.num_servers(); ++p) {
    uint64_t lo = part.RangeBegin(p);
    uint64_t width = part.RangeWidth(p);
    if (width == 0) continue;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPushRowsBatch));
    writer.WriteVarint(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      writer.WriteVarint(rows[i].matrix_id);
      writer.WriteVarint(rows[i].row);
      writer.WriteVarint(width);
      writer.WriteF64Span(&deltas[i][lo], width);
    }
    PS2_ASSIGN_OR_RETURN(
        PsServer::HandleResult result,
        Exchange(scope.traffic(), part.ServerOfPartition(p), writer.Release()));
    (void)result;
  }
  return Status::OK();
}

Result<std::vector<std::vector<double>>> PsClient::PullSparseRows(
    const std::vector<RowRef>& rows, const std::vector<uint64_t>& indices,
    bool compress_counts) {
  if (rows.empty() || indices.empty()) {
    return std::vector<std::vector<double>>(rows.size());
  }
  MatrixMeta meta;
  PS2_ASSIGN_OR_RETURN(bool colocated, CoLocated(rows, &meta));
  if (!colocated) {
    return Status::FailedPrecondition(
        "PullSparseRows requires co-located rows");
  }
  OpScope scope(master_->cluster());
  scope.traffic()->rounds += 1;
  std::vector<std::vector<double>> out(
      rows.size(), std::vector<double>(indices.size(), 0.0));
  const ColumnPartitioner& part = meta.partitioner;
  size_t i = 0;
  while (i < indices.size()) {
    if (indices[i] >= meta.dim) {
      return Status::OutOfRange("pull index out of range");
    }
    int p = part.PartitionOfColumn(indices[i]);
    uint64_t range_end = part.RangeEnd(p);
    size_t j = i;
    while (j < indices.size() && indices[j] < range_end) ++j;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPullSparseRowsBatch));
    writer.WriteU8(compress_counts ? 1 : 0);
    writer.WriteVarint(j - i);
    uint64_t prev = 0;
    for (size_t k = i; k < j; ++k) {
      writer.WriteVarint(indices[k] - prev);
      prev = indices[k];
    }
    writer.WriteVarint(rows.size());
    for (const RowRef& r : rows) {
      writer.WriteVarint(r.matrix_id);
      writer.WriteVarint(r.row);
    }
    PS2_ASSIGN_OR_RETURN(
        PsServer::HandleResult result,
        Exchange(scope.traffic(), part.ServerOfPartition(p), writer.Release()));
    BufferReader reader(result.response);
    PS2_ASSIGN_OR_RETURN(uint64_t n_rows, reader.ReadVarint());
    if (n_rows != rows.size()) {
      return Status::Internal("sparse-rows pull row count mismatch");
    }
    for (size_t r = 0; r < rows.size(); ++r) {
      if (compress_counts) {
        for (size_t k = i; k < j; ++k) {
          PS2_ASSIGN_OR_RETURN(int64_t iv, reader.ReadSignedVarint());
          out[r][k] = static_cast<double>(iv);
        }
      } else {
        PS2_ASSIGN_OR_RETURN(std::vector<double> values,
                             reader.ReadF64Span(j - i));
        std::copy(values.begin(), values.end(), out[r].begin() + i);
      }
    }
    i = j;
  }
  return out;
}

Status PsClient::PushSparseRows(const std::vector<RowRef>& rows,
                                const std::vector<SparseVector>& deltas,
                                bool compress_counts) {
  if (rows.size() != deltas.size()) {
    return Status::InvalidArgument("rows/deltas size mismatch");
  }
  if (rows.empty()) return Status::OK();
  MatrixMeta meta;
  PS2_ASSIGN_OR_RETURN(bool colocated, CoLocated(rows, &meta));
  if (!colocated) {
    return Status::FailedPrecondition(
        "PushSparseRows requires co-located rows");
  }
  OpScope scope(master_->cluster());
  scope.traffic()->rounds += 1;
  const ColumnPartitioner& part = meta.partitioner;
  // One request per server: for every row, the slice of its delta that the
  // server owns.
  for (int p = 0; p < part.num_servers(); ++p) {
    uint64_t lo = part.RangeBegin(p);
    uint64_t hi = part.RangeEnd(p);
    if (lo >= hi) continue;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPushSparseRowsBatch));
    writer.WriteU8(compress_counts ? 1 : 0);
    // Count rows with any entry in this range first.
    size_t rows_here = 0;
    std::vector<std::pair<size_t, size_t>> spans(rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      const auto& idx = deltas[r].indices();
      auto begin_it = std::lower_bound(idx.begin(), idx.end(), lo);
      auto end_it = std::lower_bound(begin_it, idx.end(), hi);
      spans[r] = {static_cast<size_t>(begin_it - idx.begin()),
                  static_cast<size_t>(end_it - idx.begin())};
      rows_here += spans[r].first != spans[r].second;
    }
    if (rows_here == 0) continue;
    writer.WriteVarint(rows_here);
    for (size_t r = 0; r < rows.size(); ++r) {
      auto [sb, se] = spans[r];
      if (sb == se) continue;
      const auto& idx = deltas[r].indices();
      const auto& val = deltas[r].values();
      writer.WriteVarint(rows[r].matrix_id);
      writer.WriteVarint(rows[r].row);
      writer.WriteVarint(se - sb);
      uint64_t prev = 0;
      for (size_t k = sb; k < se; ++k) {
        writer.WriteVarint(idx[k] - prev);
        prev = idx[k];
      }
      if (compress_counts) {
        for (size_t k = sb; k < se; ++k) {
          writer.WriteSignedVarint(static_cast<int64_t>(std::llround(val[k])));
        }
      } else {
        for (size_t k = sb; k < se; ++k) writer.WriteF64(val[k]);
      }
    }
    PS2_ASSIGN_OR_RETURN(
        PsServer::HandleResult result,
        Exchange(scope.traffic(), part.ServerOfPartition(p), writer.Release()));
    (void)result;
  }
  return Status::OK();
}

Status PsClient::MatrixInit(int matrix_id, uint32_t row_begin,
                            uint32_t row_end, double scale, uint64_t seed) {
  PS2_ASSIGN_OR_RETURN(MatrixMeta meta, master_->GetMeta(matrix_id));
  OpScope scope(master_->cluster());
  scope.traffic()->rounds += 1;
  const ColumnPartitioner& part = meta.partitioner;
  for (int p = 0; p < part.num_servers(); ++p) {
    if (part.RangeWidth(p) == 0) continue;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kMatrixInit));
    writer.WriteVarint(matrix_id);
    writer.WriteVarint(row_begin);
    writer.WriteVarint(row_end);
    writer.WriteF64(scale);
    writer.WriteU64(seed);
    PS2_ASSIGN_OR_RETURN(
        PsServer::HandleResult result,
        Exchange(scope.traffic(), part.ServerOfPartition(p), writer.Release()));
    (void)result;
  }
  return Status::OK();
}

}  // namespace ps2
