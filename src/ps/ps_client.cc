#include "ps/ps_client.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "common/logging.h"
#include "linalg/dense_vector.h"
#include "net/message.h"
#include "obs/trace.h"

namespace ps2 {

namespace {

double WallUs() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Opcode byte of a serialized request (0xff for an empty payload). Always
/// peeked on the logical payload — the wire form keeps byte 0 verbatim
/// (FilterChain prefix rule), so either view answers the same.
PsOpCode PeekOpCode(Slice payload) {
  return payload.empty() ? static_cast<PsOpCode>(0xff)
                         : static_cast<PsOpCode>(payload[0]);
}

/// One lazily built name table per metric base: tagged names allocate, and
/// ExecuteRequest runs for every message of every op.
const std::string* MakeOpNames(const char* base) {
  auto* names = new std::array<std::string, kNumPsOpCodes + 1>;
  for (int i = 0; i < kNumPsOpCodes; ++i) {
    (*names)[i] =
        TaggedName(base, {{"op", PsOpCodeName(static_cast<PsOpCode>(i))}});
  }
  (*names)[kNumPsOpCodes] = TaggedName(base, {{"op", "unknown"}});
  return names->data();
}

const std::string& OpName(const std::string* table, PsOpCode op) {
  const int i = static_cast<int>(op);
  return table[i >= 0 && i < kNumPsOpCodes ? i : kNumPsOpCodes];
}

/// Per-opcode slot in a histogram-pointer table sized kNumPsOpCodes + 1.
Histogram* OpHist(const std::vector<Histogram*>& table, PsOpCode op) {
  const int i = static_cast<int>(op);
  return table[i >= 0 && i < kNumPsOpCodes ? i : kNumPsOpCodes];
}

const std::string& ExchangeUsName(PsOpCode op) {
  static const std::string* table = MakeOpNames("ps.client.exchange_us");
  return OpName(table, op);
}

const std::string& AsyncOpUsName(PsOpCode op) {
  static const std::string* table = MakeOpNames("ps.client.async_op_us");
  return OpName(table, op);
}

/// Charges the cluster clock with the collective cost of a coordinator-issued
/// op's fan-out: dependent round latency, the worst single server's share,
/// and local compute. Shared by OpScope (sync slow paths) and the async
/// harvest hook, so a coordinator op costs the same through either path.
void ChargeCoordinator(Cluster* cluster, const TaskTraffic& local) {
  cluster->ChargeOutOfTask(local);
}

/// Deterministic "home" server a client refreshes a hot row from. Every
/// server holds the replica; hashing spreads refresh (and hot-push) load of
/// different hot rows across the fleet.
int HotHomeServer(RowRef ref, int num_servers) {
  uint64_t h = static_cast<uint64_t>(ref.matrix_id) * 0x9E3779B97F4A7C15ULL +
               static_cast<uint64_t>(ref.row) * 0xC2B2AE3D27D4EB4FULL;
  return static_cast<int>(h % static_cast<uint64_t>(num_servers));
}

}  // namespace

// ------------------------------------------------------------------- OpScope

/// Binds the op to the ambient task's traffic record, or — when issued from
/// the coordinator between stages — accumulates locally and charges the
/// cluster clock with the collective fan-out cost on destruction.
class PsClient::OpScope {
 public:
  explicit OpScope(Cluster* cluster) : cluster_(cluster) {
    ambient_ = TrafficScope::Current();
    traffic_ = ambient_ != nullptr ? ambient_ : &local_;
  }

  ~OpScope() {
    if (ambient_ != nullptr) return;
    ChargeCoordinator(cluster_, local_);
  }

  TaskTraffic* traffic() { return traffic_; }

 private:
  Cluster* cluster_;
  TaskTraffic* ambient_;
  TaskTraffic local_;
  TaskTraffic* traffic_;
};

// ----------------------------------------------------------------- AsyncCore

/// Shared async-window state. Held by shared_ptr so harvest hooks (and their
/// retire tokens) stay valid even if a future outlives the client.
///
/// Two counters with different lifecycles:
///   inflight     — issued but not yet *completed*; bounds the window and is
///                  what ~PsClient quiesces on. Decremented by the thread
///                  that completes the op.
///   outstanding  — per issue-context (TrafficScope pointer; nullptr = the
///                  coordinator) count of ops issued but not yet *harvested*.
///                  Touched only in caller program order (issue at submit,
///                  retire at first Wait/Get — or at future abandonment),
///                  which is what makes leader/follower classification — and
///                  hence virtual time — deterministic.
struct PsClient::AsyncCore {
  Cluster* cluster = nullptr;
  int window_depth = 8;

  mutable std::mutex mu;
  std::condition_variable cv;
  int inflight = 0;
  int peak_inflight = 0;
  uint64_t issued = 0;
  std::map<const void*, int> outstanding;

  /// Blocks until a window slot frees, claims it, and classifies the op:
  /// true = round leader (nothing outstanding in this context).
  bool Issue(const void* ctx) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return inflight < window_depth; });
    inflight += 1;
    peak_inflight = std::max(peak_inflight, inflight);
    issued += 1;
    int& n = outstanding[ctx];
    const bool leader = n == 0;
    n += 1;
    return leader;
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu);
      inflight -= 1;
    }
    cv.notify_all();
  }

  void Retire(const void* ctx) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = outstanding.find(ctx);
    if (it != outstanding.end() && --it->second == 0) outstanding.erase(it);
  }

  void Quiesce() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return inflight == 0; });
  }
};

// ------------------------------------------------------------------ PsClient

PsClient::PsClient(PsMaster* master, PsClientOptions options)
    : master_(master),
      options_(options),
      core_(std::make_shared<AsyncCore>()) {
  PS2_CHECK(master != nullptr);
  if (options_.window_depth < 1) options_.window_depth = 1;
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  filters_ =
      options_.filters.value_or(master_->cluster()->spec().filters);
  client_id_ = master_->AllocateClientId();
  const size_t n_servers =
      static_cast<size_t>(std::max(master_->num_servers(), 1));
  next_seq_ = std::make_unique<std::atomic<uint64_t>[]>(n_servers);
  for (size_t s = 0; s < n_servers; ++s) next_seq_[s].store(0);
  core_->cluster = master_->cluster();
  core_->window_depth = options_.window_depth;
  if (options_.parallel_fanout) {
    int threads = options_.fanout_threads;
    if (threads <= 0) threads = std::min(std::max(master_->num_servers(), 1), 16);
    io_pool_ = std::make_unique<ThreadPool>(static_cast<size_t>(threads));
  }
  MetricsRegistry& metrics = master_->cluster()->metrics();
  exchange_us_hists_.resize(kNumPsOpCodes + 1);
  async_op_us_hists_.resize(kNumPsOpCodes + 1);
  for (int i = 0; i <= kNumPsOpCodes; ++i) {
    const PsOpCode op =
        static_cast<PsOpCode>(i < kNumPsOpCodes ? i : 0xff);
    exchange_us_hists_[i] = metrics.GetOrCreateHistogram(ExchangeUsName(op));
    async_op_us_hists_[i] = metrics.GetOrCreateHistogram(AsyncOpUsName(op));
  }
  retries_hist_ =
      metrics.GetOrCreateHistogram("ps.client.retries_per_exchange");
  backoff_hist_ =
      metrics.GetOrCreateHistogram("ps.client.backoff_per_exchange_s");
  master_->hotspot()->RegisterCache(&cache_);
}

PsClient::~PsClient() {
  core_->Quiesce();
  master_->hotspot()->UnregisterCache(&cache_);
}

PsClient::AsyncStats PsClient::async_stats() const {
  std::lock_guard<std::mutex> lock(core_->mu);
  AsyncStats stats;
  stats.issued = core_->issued;
  stats.inflight = core_->inflight;
  stats.peak_inflight = core_->peak_inflight;
  return stats;
}

PsClient::ServerRequest PsClient::MakeRequest(int server,
                                              BufferWriter* writer) {
  ServerRequest req;
  req.server = server;
  req.sections = writer->TakeSections();
  req.payload = writer->ReleaseShared();
  return req;
}

PsClient::ServerRequest PsClient::MakeRouted(const MatrixMeta& meta,
                                             int partition,
                                             BufferWriter* writer) {
  ServerRequest req =
      MakeRequest(meta.partitioner.ServerOfPartition(partition), writer);
  req.route_matrix = meta.id;
  req.route_partition = partition;
  // Stamp = version + 1: 0 stays the "unstamped" sentinel, so a request
  // planned against the initial table (version 0) is still distinguishable
  // from one that carries no routing information at all.
  req.header.routing_epoch = meta.routing_epoch + 1;
  return req;
}

PsClient::ServerRequest PsClient::MakeHashRouted(const MatrixMeta& meta,
                                                 RowRef ref,
                                                 BufferWriter* writer) {
  // Hash-homed hot traffic spreads over the ACTIVE servers, not the fleet:
  // with a static cluster the two are the same list and this reduces to the
  // pre-elastic HotHomeServer(ref, num_servers()) routing bit-exactly.
  const std::vector<int> active = master_->active_servers();
  const int home = active[static_cast<size_t>(
      HotHomeServer(ref, static_cast<int>(active.size())))];
  ServerRequest req = MakeRequest(home, writer);
  req.hash_routed = true;
  req.hash_ref = ref;
  req.header.routing_epoch = meta.routing_epoch + 1;
  return req;
}

namespace {

/// One entry per owning server, in partition order. Shard-scoped opcodes
/// (column ops, zip, row aggregates, row batches) operate on the target
/// server's whole contiguous shard and carry no column window, so they must
/// go out once per SERVER. Under elastic membership partitions are finer
/// than shards (DESIGN.md §12) and a per-partition fan-out would apply a
/// mutating op k times on a server owning k partitions. The representative
/// partition is the lowest one in the server's block: it routes the request
/// and re-aims it after a routing-epoch swap. With one partition per server
/// (a static cluster) this is exactly the old per-partition fan-out.
struct SpanTarget {
  int partition = 0;   // representative partition for routing
  uint64_t begin = 0;  // server's column span
  uint64_t end = 0;
};

std::vector<SpanTarget> SpanTargets(const ColumnPartitioner& part) {
  std::vector<SpanTarget> out;
  int last_server = -1;
  for (int p = 0; p < part.num_partitions(); ++p) {
    if (part.RangeWidth(p) == 0) continue;
    const int server = part.ServerOfPartition(p);
    if (server == last_server) continue;  // block assignments are contiguous
    last_server = server;
    SpanTarget t;
    t.partition = p;
    PS2_CHECK(part.ServerSpan(server, &t.begin, &t.end));
    out.push_back(t);
  }
  return out;
}

}  // namespace

void PsClient::EncodeRequest(ServerRequest* req, bool force_key_install) {
  // Reset to the zero-copy identity encoding first (idempotence: the
  // keycache-miss path re-encodes an already-encoded request).
  req->wire = req->payload;
  req->wire_mask = 0;
  req->estats = EncodeStats{};
  req->estats.logical_bytes = req->payload.size();
  req->estats.wire_bytes = req->payload.size();
  if (req->payload.empty()) return;
  const uint8_t want =
      filters_.MaskFor(req->payload.slice()[0]);
  if (want == 0) return;
  // Key-cache decisions are epoch-scoped: any hotspot epoch bump (server
  // recovery, hot-set move) clears the client's installed sets, exactly when
  // servers may have lost theirs.
  if (want & kFilterKeyCache) {
    keycache_.SyncEpoch(master_->hotspot()->epoch());
  }
  FilterContext ctx;
  ctx.dir = FilterDir::kClientToServer;
  ctx.server = req->server;
  ctx.force_key_install = force_key_install;
  ctx.client_keys = &keycache_;
  EncodedPayload enc = chain_.Encode(req->payload.slice(), req->sections, want,
                                     /*prefix=*/1, &ctx);
  req->estats = enc.stats;
  if (enc.mask != 0) {
    req->wire = SharedBuf::FromVector(std::move(enc.wire));
    req->wire_mask = enc.mask;
  }
}

void PsClient::StampRequests(std::vector<ServerRequest>* requests) {
  for (ServerRequest& req : *requests) {
    req.header.client_id = client_id_;
    req.header.seq =
        next_seq_[req.server].fetch_add(1, std::memory_order_relaxed) + 1;
    req.header.attempt = 1;
    // Encode here — issuing thread, program order — so install-vs-ref
    // decisions (and with them the wire bytes the benches pin) are
    // deterministic regardless of I/O-pool scheduling.
    EncodeRequest(&req, /*force_key_install=*/false);
  }
}

PsClient::ExchangeOutcome PsClient::ExecuteRequest(ServerRequest& request) {
  ExchangeOutcome out;
  Cluster* cluster = master_->cluster();
  PsServer* server = master_->server(request.server);
  RpcHeader header = request.header;
  const int max_attempts = options_.max_attempts;
  const PsOpCode op = PeekOpCode(request.payload.slice());
  // Key-cache miss recovery re-encodes once (below); the guard keeps a
  // byzantine server from looping us.
  bool reencoded = false;
  // Routing-stale protocol rounds (fence waits + re-aims). Bounded so a
  // wedged fence surfaces as an error instead of hanging the exchange; the
  // bound is generous because a fence stays up for the real-time span of a
  // concurrent migration's extract/install/commit legs.
  uint32_t routing_rounds = 0;
  constexpr uint32_t kMaxRoutingRounds = 4096;
  PS2_TRACE_SPAN("ps.client", PsOpCodeName(op));
  // Wall-clock per-exchange latency and virtual retry/backoff samples land
  // in histograms only; the deterministic totals stay on the TaskTraffic
  // counter path (Cluster::RecordTraffic). Latency is sampled 1 in 16 per
  // thread (same rationale as PsServer::Handle: the clock reads and record
  // cost real time on the hottest path); retries are rare events and every
  // one is recorded.
  static thread_local uint32_t sample_tick = 0;
  const bool sampled = (sample_tick++ & 15) == 0;
  struct LatencyObserver {
    Histogram* exchange_us;
    Histogram* retries_hist;
    Histogram* backoff_hist;
    double start_us;
    const ExchangeOutcome* out;
    ~LatencyObserver() {
      if (exchange_us != nullptr) exchange_us->Record(WallUs() - start_us);
      if (out->retries > 0) {
        retries_hist->Record(static_cast<double>(out->retries));
        backoff_hist->Record(out->backoff);
      }
    }
  } observer{sampled ? OpHist(exchange_us_hists_, op) : nullptr,
             retries_hist_, backoff_hist_, sampled ? WallUs() : 0.0, &out};
  for (int attempt = 1;; ++attempt) {
    // routing_rounds joins the attempt so every routing-stale poll/re-aim
    // draws a fresh deterministic fault (the draw is keyed on the header).
    header.attempt = static_cast<uint32_t>(attempt) + routing_rounds;
    // Rebuilt each iteration: a key-cache miss swaps the wire view in place.
    const WireFrame frame{request.wire.slice(), request.wire_mask};
    const MessageFault fault = cluster->failures().DrawMessageFault(
        request.server, header.client_id, header.seq, header.attempt);
    std::optional<Result<PsServer::HandleResult>> r;
    switch (fault) {
      case MessageFault::kServerCrash:
        // The server process dies while this request is on the wire; it
        // stays down (rejecting everything) until recovered.
        server->Crash();
        r.emplace(Status::Unavailable("injected server crash"));
        break;
      case MessageFault::kRequestLost:
        r.emplace(Status::Unavailable("injected request loss"));
        break;
      case MessageFault::kResponseLost: {
        // The ambiguous failure: the server handles the request — a
        // mutation applies and its seq is recorded — but the client never
        // sees the ack. The retry below is what the dedup table deduplicates.
        // A retry whose ack is lost AGAIN was still suppressed server-side,
        // so its dedup hit is counted here to keep the traffic metric in
        // lockstep with the servers' own counters.
        Result<PsServer::HandleResult> applied = server->Handle(header, frame);
        if (applied.ok() && applied->dedup_hit) out.dedup_hits += 1;
        r.emplace(Status::Unavailable("injected response loss"));
        break;
      }
      case MessageFault::kNone:
        r.emplace(server->Handle(header, frame));
        break;
    }
    // Key-cache miss: the server lost its key cache (recovery, eviction)
    // since we installed. Re-encode with the key list forced verbatim and
    // re-drive the SAME seq immediately — a protocol round trip, not a
    // fault, so it consumes no attempt and no backoff. Only the final,
    // successful request's bytes are charged (the simplification DESIGN.md
    // §9 documents).
    if (!r->ok() && IsKeyCacheMiss(r->status()) && !reencoded) {
      reencoded = true;
      out.kc_misses += 1;
      keycache_.InvalidateServer(request.server);
      EncodeRequest(&request, /*force_key_install=*/true);
      --attempt;
      continue;
    }
    // Routing staleness (DESIGN.md §12): a migration moved the routing
    // table out from under this request. Each resolution round is a
    // protocol round trip — counted in net.routing_refetches, no attempt
    // consumed — mirroring the keycache-miss path above.
    if (!r->ok() && IsRoutingStale(r->status()) &&
        !IsMigrationControlOpcode(op) && routing_rounds < kMaxRoutingRounds) {
      const std::string& msg = r->status().message();
      routing_rounds += 1;
      out.routing_refetches += 1;
      if (msg.find("(applied)") != std::string::npos) {
        // The old owner's dedup table proves this mutation already ran
        // there before its range moved: ack it exactly like a dedup hit
        // (every mutating op parses an empty response as an ack).
        out.dedup_hits += 1;
        r.emplace(PsServer::HandleResult{});
        // Falls through to the terminal branch below.
      } else if (msg.find("(fenced)") != std::string::npos) {
        // Mid-migration: wait out the fence, then re-drive the SAME seq at
        // the same server. Flat (first-attempt) backoff per poll — the
        // fence is a protocol state, not an escalating failure.
        out.backoff += cluster->cost().RetryBackoff(1);
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        --attempt;
        continue;
      } else {
        // The epoch moved on or the server was decommissioned: refetch the
        // route and re-aim.
        int target = -1;
        uint64_t stamp = 0;
        if (request.route_matrix >= 0) {
          Result<MatrixMeta> meta = master_->GetMeta(request.route_matrix);
          if (meta.ok()) {
            target =
                meta->partitioner.ServerOfPartition(request.route_partition);
            stamp = meta->routing_epoch + 1;
          }
        } else if (request.hash_routed) {
          const std::vector<int> active = master_->active_servers();
          if (!active.empty()) {
            target = active[static_cast<size_t>(HotHomeServer(
                request.hash_ref, static_cast<int>(active.size())))];
            stamp = master_->routing_epoch() + 1;
          }
        } else if (op == PsOpCode::kClockAdvance) {
          // The worker-clock vector followed the ranges to the new owners
          // (max-merged at commit); this server needs no advance anymore.
          r.emplace(PsServer::HandleResult{});
        }
        if (target >= 0) {
          if (stamp <= request.header.routing_epoch) {
            // Servers learn the new epoch before the master publishes the
            // metas that carry it (MigrateToAssignment commits routing
            // last), so a refetch in that window hands back the stamp that
            // just bounced. Poll like a fence wait instead of spinning the
            // round budget dry before the publish lands.
            out.backoff += cluster->cost().RetryBackoff(1);
            std::this_thread::sleep_for(std::chrono::microseconds(50));
          }
          request.header.routing_epoch = stamp;
          if (target != request.server) {
            // A new owner is a new (client, server) seq stream. The old
            // server rejected before its dedup table saw this seq, so the
            // old number is simply never used.
            request.server = target;
            request.header.seq =
                next_seq_[target].fetch_add(1, std::memory_order_relaxed) + 1;
            server = master_->server(target);
          }
          // Re-encode for the (possibly new) server: keycache decisions are
          // per-server state.
          EncodeRequest(&request, /*force_key_install=*/false);
          header = request.header;
          --attempt;
          continue;
        }
        // No route identity (or the matrix is gone): surface the rejection.
      }
    }
    if (r->ok() || !r->status().IsUnavailable() || attempt >= max_attempts) {
      if (r->ok() && (*r)->dedup_hit) out.dedup_hits += 1;
      // Decode a filtered response here — off the server's lock, on
      // whichever pool thread ran the exchange (the chain is stateless
      // server-to-client, so this is safe anywhere).
      if (r->ok() && (*r)->response_mask != 0) {
        PsServer::HandleResult& h = **r;
        out.resp_wire = h.response.size() + Message::kHeaderBytes;
        FilterContext ctx;
        ctx.dir = FilterDir::kServerToClient;
        Result<std::vector<uint8_t>> decoded =
            chain_.Decode(Slice(h.response), h.response_mask, /*prefix=*/0,
                          &ctx);
        if (!decoded.ok()) {
          r.emplace(decoded.status());
        } else {
          h.response = std::move(*decoded);
          h.response_mask = 0;
        }
      }
      out.req_wire = request.wire.size() + Message::kHeaderBytes;
      out.req_logical = request.payload.size() + Message::kHeaderBytes;
      if (r->ok()) {
        if (out.resp_wire == 0) {
          out.resp_wire = (*r)->response.size() + Message::kHeaderBytes;
        }
        out.resp_logical = (*r)->response.size() + Message::kHeaderBytes;
      }
      out.kc_refs = request.estats.keycache_refs;
      out.kc_installs = request.estats.keycache_installs;
      out.result = std::move(r);
      return out;
    }
    // Unavailable with attempts left: optionally recover a crashed server
    // (charging the stall to this task), then back off and retry the SAME
    // seq — the dedup table makes the retry idempotent.
    if (server->crashed() && options_.recover_crashed_servers) {
      Result<SimTime> stall = master_->RecoverCrashedServer(request.server);
      if (!stall.ok()) {
        out.result.emplace(stall.status());
        return out;
      }
      out.backoff += *stall;
    }
    out.backoff += cluster->cost().RetryBackoff(header.attempt);
    out.retries += 1;
  }
}

Result<std::vector<PsServer::HandleResult>> PsClient::ExchangeAll(
    TaskTraffic* traffic, std::vector<ServerRequest> requests) {
  const size_t n = requests.size();
  PS2_TRACE_SPAN("ps.client", "exchange_all");
  StampRequests(&requests);
  std::vector<ExchangeOutcome> slots(n);
  if (io_pool_ != nullptr && options_.parallel_fanout && n > 1) {
    std::vector<std::future<void>> pending;
    pending.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      pending.push_back(io_pool_->Submit(
          [this, &requests, &slots, i] { slots[i] = ExecuteRequest(requests[i]); }));
    }
    for (auto& f : pending) f.wait();
  } else {
    for (size_t i = 0; i < n; ++i) slots[i] = ExecuteRequest(requests[i]);
  }
  // Unified error semantics (identical under both parallel_fanout settings):
  // every request executed; every success is recorded in request
  // (= partition) order; the first failure in that order is reported.
  std::optional<Status> failed;
  std::vector<PsServer::HandleResult> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    traffic->retries += slots[i].retries;
    traffic->retry_backoff_time += slots[i].backoff;
    traffic->dedup_hits += slots[i].dedup_hits;
    traffic->keycache_misses += slots[i].kc_misses;
    traffic->routing_refetches += slots[i].routing_refetches;
    Result<PsServer::HandleResult>& r = *slots[i].result;
    if (!r.ok()) {
      if (!failed.has_value()) failed = r.status();
      continue;
    }
    traffic->RecordExchange(requests[i].server, slots[i].req_wire,
                            slots[i].resp_wire, r->server_ops,
                            slots[i].req_logical, slots[i].resp_logical);
    traffic->keycache_hits += slots[i].kc_refs;
    traffic->keycache_installs += slots[i].kc_installs;
    out.push_back(std::move(*r));
  }
  if (failed.has_value()) return *failed;
  return out;
}

Result<std::vector<uint8_t>> PsClient::ControlCall(int server,
                                                   BufferWriter* writer) {
  if (server < 0 || server >= master_->num_servers()) {
    return Status::InvalidArgument("control call to unknown server");
  }
  std::vector<ServerRequest> requests;
  requests.push_back(MakeRequest(server, writer));
  // One control leg = one round. Inside a task (or the migration driver's
  // scope) the traffic lands there; standalone calls charge the clock
  // directly, like any coordinator-issued op.
  TaskTraffic local;
  TaskTraffic* traffic = TrafficScope::Current();
  const bool ambient = traffic != nullptr;
  if (!ambient) traffic = &local;
  traffic->rounds += 1;
  PS2_ASSIGN_OR_RETURN(std::vector<PsServer::HandleResult> results,
                       ExchangeAll(traffic, std::move(requests)));
  if (!ambient) master_->cluster()->ChargeOutOfTask(local);
  return std::move(results[0].response);
}

template <typename T>
PsFuture<T> PsClient::ReadyFuture(Result<T> result) {
  return MakeReadyFuture<T>(std::move(result));
}

namespace {

/// Issue-to-complete observability of one async op. Captured by value into
/// the fan-out completion lambda: the op can finish on a pool thread, so a
/// scope-bound SpanGuard on the issuing thread would under-report — the
/// completing thread stamps the end and records the whole interval.
struct AsyncOpObs {
  Histogram* async_op_us = nullptr;
  PsOpCode op = static_cast<PsOpCode>(0xff);
  double wall_begin_us = 0.0;
  double virt_begin_s = -1.0;
  bool traced = false;

  static AsyncOpObs Begin(Histogram* async_op_us, PsOpCode op) {
    AsyncOpObs obs;
    obs.op = op;
    obs.traced = obs::Tracer::Global().enabled();
    if (obs.traced) {
      // Tracing wants every span; the histogram rides along for free.
      obs.async_op_us = async_op_us;
      obs::Tracer::Global().Now(&obs.wall_begin_us, &obs.virt_begin_s);
      return obs;
    }
    // Tracing off: sample the latency histogram 1 in 16 per thread, same as
    // the sync exchange path — issue-to-complete spans are per async op,
    // and the two clock reads add up on pipelined flows.
    static thread_local uint32_t sample_tick = 0;
    if ((sample_tick++ & 15) == 0) {
      obs.async_op_us = async_op_us;
      obs.wall_begin_us = WallUs();
    }
    return obs;
  }

  void Complete() const {
    double wall_end_us = 0.0, virt_end_s = -1.0;
    if (traced) {
      obs::Tracer::Global().Now(&wall_end_us, &virt_end_s);
      obs::TraceEvent event;
      event.category = "ps.client.async";
      event.name = PsOpCodeName(op);
      event.wall_begin_us = wall_begin_us;
      event.wall_dur_us = wall_end_us - wall_begin_us;
      event.virt_begin_s = virt_begin_s;
      event.virt_end_s = virt_end_s;
      obs::Tracer::Global().Record(std::move(event));
    } else if (async_op_us != nullptr) {
      wall_end_us = WallUs();
    } else {
      return;
    }
    async_op_us->Record(wall_end_us - wall_begin_us);
  }
};

}  // namespace

template <typename T>
PsFuture<T> PsClient::SubmitAsync(std::vector<ServerRequest> requests,
                                  ParseFn<T> parse) {
  auto state = std::make_shared<internal::PsFutureState<T>>();
  std::shared_ptr<AsyncCore> core = core_;
  const void* ctx = TrafficScope::Current();
  // Loopback diversion is decided per exchange against the ISSUING task's
  // co-located server; completions may run on pool threads, so the binding
  // must travel with the op's private traffic record.
  if (const TaskTraffic* ambient = TrafficScope::Current()) {
    state->traffic.colocated_server = ambient->colocated_server;
  }
  const PsOpCode first_op = requests.empty()
                                ? static_cast<PsOpCode>(0xff)
                                : PeekOpCode(requests[0].payload.slice());
  const AsyncOpObs op_obs =
      AsyncOpObs::Begin(OpHist(async_op_us_hists_, first_op), first_op);

  const bool leader = core->Issue(ctx);
  if (leader) {
    state->traffic.rounds += 1;
  } else {
    state->traffic.pipelined_rounds += 1;
  }

  // The retire token travels inside the harvest hook: retiring happens right
  // after the hook runs (first Wait/Get, caller thread) — or when the hook is
  // destroyed unrun because the future was abandoned, so a dropped future
  // cannot leave its context permanently "outstanding".
  auto token = std::shared_ptr<void>(
      nullptr, [core, ctx](void*) { core->Retire(ctx); });
  Cluster* cluster = master_->cluster();
  state->harvest = [cluster, token](const TaskTraffic& t) {
    if (TaskTraffic* ambient = TrafficScope::Current()) {
      ambient->MergeFrom(t);
    } else {
      ChargeCoordinator(cluster, t);
    }
  };

  const size_t n = requests.size();
  if (io_pool_ == nullptr || !options_.parallel_fanout || n <= 1) {
    // Degenerate fan-out: execute inline; the future completes at issue.
    Result<std::vector<PsServer::HandleResult>> results =
        ExchangeAll(&state->traffic, std::move(requests));
    // Release before Complete so that once every future has been waited,
    // the window is observably empty (async_stats().inflight == 0).
    core->Release();
    if (!results.ok()) {
      state->Complete(Result<T>(results.status()));
    } else {
      state->Complete(parse(std::move(*results), &state->traffic));
    }
    op_obs.Complete();
    return PsFuture<T>(std::move(state));
  }

  struct Fanout {
    std::vector<ServerRequest> requests;
    std::vector<ExchangeOutcome> slots;
    std::atomic<size_t> remaining{0};
    PsClient::ParseFn<T> parse;
  };
  auto op = std::make_shared<Fanout>();
  op->requests = std::move(requests);
  // Stamp on the issuing thread, before any pool thread runs: seq order —
  // and the fault draws keyed on it — must follow program order.
  StampRequests(&op->requests);
  op->slots.resize(n);
  op->remaining.store(n, std::memory_order_relaxed);
  op->parse = std::move(parse);
  for (size_t i = 0; i < n; ++i) {
    io_pool_->Submit([this, op, state, core, i, op_obs] {
      op->slots[i] = ExecuteRequest(op->requests[i]);
      if (op->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
      // Last response in: record in request order with the unified error
      // semantics (every success recorded, first failure reported), free
      // the window slot, parse, complete.
      std::optional<Status> failed;
      std::vector<PsServer::HandleResult> results;
      results.reserve(op->slots.size());
      for (size_t k = 0; k < op->slots.size(); ++k) {
        state->traffic.retries += op->slots[k].retries;
        state->traffic.retry_backoff_time += op->slots[k].backoff;
        state->traffic.dedup_hits += op->slots[k].dedup_hits;
        state->traffic.keycache_misses += op->slots[k].kc_misses;
        Result<PsServer::HandleResult>& r = *op->slots[k].result;
        if (!r.ok()) {
          if (!failed.has_value()) failed = r.status();
          continue;
        }
        state->traffic.RecordExchange(
            op->requests[k].server, op->slots[k].req_wire,
            op->slots[k].resp_wire, r->server_ops, op->slots[k].req_logical,
            op->slots[k].resp_logical);
        state->traffic.keycache_hits += op->slots[k].kc_refs;
        state->traffic.keycache_installs += op->slots[k].kc_installs;
        results.push_back(std::move(*r));
      }
      // Release before Complete so that once every future has been waited,
      // the window is observably empty (async_stats().inflight == 0).
      core->Release();
      if (failed.has_value()) {
        state->Complete(Result<T>(std::move(*failed)));
      } else {
        state->Complete(op->parse(std::move(results), &state->traffic));
      }
      op_obs.Complete();
    });
  }
  return PsFuture<T>(std::move(state));
}

namespace {
/// ParseFn for push-like ops: responses carry no payload the client needs.
Result<Ack> AckParse(std::vector<PsServer::HandleResult>&&, TaskTraffic*) {
  return Ack{};
}
}  // namespace

Result<bool> PsClient::CoLocated(const std::vector<RowRef>& rows,
                                 MatrixMeta* first_meta) {
  PS2_CHECK(!rows.empty());
  PS2_ASSIGN_OR_RETURN(*first_meta, master_->GetMeta(rows[0].matrix_id));
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i].matrix_id == rows[0].matrix_id) continue;
    PS2_ASSIGN_OR_RETURN(MatrixMeta meta, master_->GetMeta(rows[i].matrix_id));
    if (!meta.partitioner.CoLocatedWith(first_meta->partitioner)) {
      return false;
    }
  }
  return true;
}

// ----------------------------------------------------------- row access ops

PsFuture<std::vector<double>> PsClient::PullDenseAsync(RowRef ref,
                                                       ColRange cols) {
  using Out = std::vector<double>;
  Result<MatrixMeta> meta_r = master_->GetMeta(ref.matrix_id);
  if (!meta_r.ok()) return ReadyFuture<Out>(meta_r.status());
  const MatrixMeta& meta = *meta_r;
  const ColRange w = cols.Resolve(meta.dim);
  if (w.begin > w.end || w.end > meta.dim) {
    return ReadyFuture<Out>(Status::OutOfRange("pull window out of range"));
  }
  if (cache_.HasHot() && cache_.HotDim(ref) == meta.dim) {
    // Hot row: serve from the bounded-staleness cache (worker compute only),
    // or refresh the whole row once from its home server's replica.
    Out served(w.width(), 0.0);
    if (cache_.TryServeDense(ref, w.begin, w.end, served.data())) {
      OpScope scope(master_->cluster());
      TaskTraffic* t = scope.traffic();
      t->worker_ops += w.width();
      t->local_pull_hits += 1;
      t->local_pull_bytes += w.width() * sizeof(double);
      return ReadyFuture<Out>(std::move(served));
    }
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPullDense));
    writer.WriteVarint(ref.matrix_id);
    writer.WriteVarint(ref.row);
    writer.WriteVarint(0);
    writer.WriteVarint(meta.dim);
    std::vector<ServerRequest> refresh;
    refresh.push_back(
        MakeHashRouted(meta, ref, &writer));
    const uint64_t dim = meta.dim;
    return SubmitAsync<Out>(
        std::move(refresh),
        [this, ref, dim, begin = w.begin, width = w.width()](
            std::vector<PsServer::HandleResult>&& results,
            TaskTraffic*) -> Result<Out> {
          BufferReader reader(results[0].response);
          PS2_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
          if (n != dim) {
            return Status::Internal("hot-row refresh size mismatch");
          }
          PS2_ASSIGN_OR_RETURN(std::vector<double> values,
                               reader.ReadF64Span(n));
          cache_.Store(ref, values, cache_.epoch());
          Out out(width);
          std::copy(values.begin() + begin, values.begin() + begin + width,
                    out.begin());
          return out;
        });
  }
  const ColumnPartitioner& part = meta.partitioner;
  std::vector<ServerRequest> requests;
  std::vector<std::pair<uint64_t, uint64_t>> windows;
  for (int p = 0; p < part.num_servers(); ++p) {
    uint64_t lo = std::max(w.begin, part.RangeBegin(p));
    uint64_t hi = std::min(w.end, part.RangeEnd(p));
    if (lo >= hi) continue;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPullDense));
    writer.WriteVarint(ref.matrix_id);
    writer.WriteVarint(ref.row);
    writer.WriteVarint(lo);
    writer.WriteVarint(hi);
    requests.push_back(MakeRouted(meta, p, &writer));
    windows.emplace_back(lo, hi);
  }
  const uint64_t begin = w.begin;
  const uint64_t width = w.width();
  return SubmitAsync<Out>(
      std::move(requests),
      [windows = std::move(windows), begin, width](
          std::vector<PsServer::HandleResult>&& results,
          TaskTraffic*) -> Result<Out> {
        Out out(width, 0.0);
        for (size_t i = 0; i < results.size(); ++i) {
          const auto [lo, hi] = windows[i];
          BufferReader reader(results[i].response);
          PS2_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
          if (n != hi - lo) {
            return Status::Internal("pull window size mismatch");
          }
          PS2_ASSIGN_OR_RETURN(std::vector<double> values,
                               reader.ReadF64Span(n));
          std::copy(values.begin(), values.end(), out.begin() + (lo - begin));
        }
        return out;
      });
}

Result<std::vector<double>> PsClient::PullDense(RowRef ref, ColRange cols) {
  return PullDenseAsync(ref, cols).Get();
}

PsFuture<std::vector<double>> PsClient::PullSparseAsync(
    RowRef ref, const std::vector<uint64_t>& indices) {
  using Out = std::vector<double>;
  Result<MatrixMeta> meta_r = master_->GetMeta(ref.matrix_id);
  if (!meta_r.ok()) return ReadyFuture<Out>(meta_r.status());
  const MatrixMeta& meta = *meta_r;
  if (cache_.HasHot() && cache_.HotDim(ref) == meta.dim) {
    if (!indices.empty() && indices.back() >= meta.dim) {
      return ReadyFuture<Out>(Status::OutOfRange("pull index out of range"));
    }
    Out served(indices.size(), 0.0);
    if (cache_.TryServeSparse(ref, indices, served.data())) {
      OpScope scope(master_->cluster());
      TaskTraffic* t = scope.traffic();
      t->worker_ops += indices.size();
      t->local_pull_hits += 1;
      t->local_pull_bytes += indices.size() * sizeof(double);
      return ReadyFuture<Out>(std::move(served));
    }
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPullDense));
    writer.WriteVarint(ref.matrix_id);
    writer.WriteVarint(ref.row);
    writer.WriteVarint(0);
    writer.WriteVarint(meta.dim);
    std::vector<ServerRequest> refresh;
    refresh.push_back(
        MakeHashRouted(meta, ref, &writer));
    const uint64_t dim = meta.dim;
    return SubmitAsync<Out>(
        std::move(refresh),
        [this, ref, dim, indices](std::vector<PsServer::HandleResult>&& results,
                                  TaskTraffic*) -> Result<Out> {
          BufferReader reader(results[0].response);
          PS2_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
          if (n != dim) {
            return Status::Internal("hot-row refresh size mismatch");
          }
          PS2_ASSIGN_OR_RETURN(std::vector<double> values,
                               reader.ReadF64Span(n));
          cache_.Store(ref, values, cache_.epoch());
          Out out(indices.size());
          for (size_t k = 0; k < indices.size(); ++k) {
            out[k] = values[indices[k]];
          }
          return out;
        });
  }
  const ColumnPartitioner& part = meta.partitioner;
  // Sorted indices split into one contiguous run per partition.
  std::vector<ServerRequest> requests;
  std::vector<std::pair<size_t, size_t>> runs;
  size_t i = 0;
  while (i < indices.size()) {
    if (indices[i] >= meta.dim) {
      return ReadyFuture<Out>(Status::OutOfRange("pull index out of range"));
    }
    int p = part.PartitionOfColumn(indices[i]);
    uint64_t range_end = part.RangeEnd(p);
    size_t j = i;
    while (j < indices.size() && indices[j] < range_end) ++j;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPullSparse));
    writer.WriteVarint(ref.matrix_id);
    writer.WriteVarint(ref.row);
    writer.WriteVarint(j - i);
    writer.BeginSection(SectionKind::kKeys);
    uint64_t prev = 0;
    for (size_t k = i; k < j; ++k) {
      writer.WriteVarint(indices[k] - prev);
      prev = indices[k];
    }
    writer.EndSection();
    requests.push_back(MakeRouted(meta, p, &writer));
    runs.emplace_back(i, j);
    i = j;
  }
  const size_t total = indices.size();
  return SubmitAsync<Out>(
      std::move(requests),
      [runs = std::move(runs), total](
          std::vector<PsServer::HandleResult>&& results,
          TaskTraffic*) -> Result<Out> {
        Out out(total, 0.0);
        for (size_t r = 0; r < results.size(); ++r) {
          const auto [lo, hi] = runs[r];
          BufferReader reader(results[r].response);
          PS2_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
          if (n != hi - lo) {
            return Status::Internal("sparse pull count mismatch");
          }
          for (size_t k = lo; k < hi; ++k) {
            PS2_ASSIGN_OR_RETURN(out[k], reader.ReadF64());
          }
        }
        return out;
      });
}

Result<std::vector<double>> PsClient::PullSparse(
    RowRef ref, const std::vector<uint64_t>& indices) {
  return PullSparseAsync(ref, indices).Get();
}

PsFuture<std::vector<std::vector<double>>> PsClient::ServingPullAsync(
    uint64_t epoch, const std::vector<ServingRead>& reads) {
  using Out = std::vector<std::vector<double>>;
  if (reads.empty()) return ReadyFuture<Out>(Out{});
  // One wire entry per (read, partition) pair; entries bound for the same
  // server share a single kServingPull request (the coalescing lever).
  struct WireEntry {
    int matrix_id = -1;
    uint32_t row = 0;
    size_t read = 0;      ///< index into `reads` / the output vector
    uint64_t dst_off = 0; ///< write offset within the read's output
    uint64_t expect = 0;  ///< values this entry must return
    size_t idx_lo = 0;    ///< run [idx_lo, idx_hi) of the read's indices;
    size_t idx_hi = 0;    ///< lo == hi encodes a full-slice read
  };
  std::map<int, MatrixMeta> metas;
  std::map<int, std::vector<WireEntry>> by_server;
  std::vector<size_t> out_sizes(reads.size());
  for (size_t r = 0; r < reads.size(); ++r) {
    const ServingRead& read = reads[r];
    auto mit = metas.find(read.row.matrix_id);
    if (mit == metas.end()) {
      Result<MatrixMeta> meta_r = master_->GetMeta(read.row.matrix_id);
      if (!meta_r.ok()) return ReadyFuture<Out>(meta_r.status());
      mit = metas.emplace(read.row.matrix_id, std::move(*meta_r)).first;
    }
    const MatrixMeta& meta = mit->second;
    const ColumnPartitioner& part = meta.partitioner;
    WireEntry e;
    e.matrix_id = read.row.matrix_id;
    e.row = read.row.row;
    e.read = r;
    if (read.indices.empty()) {
      out_sizes[r] = meta.dim;
      for (int p = 0; p < part.num_servers(); ++p) {
        e.dst_off = part.RangeBegin(p);
        e.expect = part.RangeEnd(p) - part.RangeBegin(p);
        by_server[part.ServerOfPartition(p)].push_back(e);
      }
    } else {
      out_sizes[r] = read.indices.size();
      size_t i = 0;
      while (i < read.indices.size()) {
        if (read.indices[i] >= meta.dim) {
          return ReadyFuture<Out>(
              Status::OutOfRange("serving pull index out of range"));
        }
        const int p = part.PartitionOfColumn(read.indices[i]);
        const uint64_t range_end = part.RangeEnd(p);
        size_t j = i;
        while (j < read.indices.size() && read.indices[j] < range_end) ++j;
        e.dst_off = i;
        e.expect = j - i;
        e.idx_lo = i;
        e.idx_hi = j;
        by_server[part.ServerOfPartition(p)].push_back(e);
        i = j;
      }
    }
  }
  std::vector<ServerRequest> requests;
  std::vector<std::vector<WireEntry>> plans;
  for (auto& [server, entries] : by_server) {
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kServingPull));
    writer.WriteVarint(epoch);
    writer.WriteVarint(entries.size());
    for (const WireEntry& e : entries) {
      writer.WriteVarint(e.matrix_id);
      writer.WriteVarint(e.row);
      writer.WriteVarint(e.idx_hi - e.idx_lo);
      if (e.idx_hi > e.idx_lo) {
        const std::vector<uint64_t>& idx = reads[e.read].indices;
        writer.BeginSection(SectionKind::kKeys);
        uint64_t prev = 0;
        for (size_t k = e.idx_lo; k < e.idx_hi; ++k) {
          writer.WriteVarint(idx[k] - prev);
          prev = idx[k];
        }
        writer.EndSection();
      }
    }
    requests.push_back(MakeRequest(server, &writer));
    plans.push_back(std::move(entries));
  }
  return SubmitAsync<Out>(
      std::move(requests),
      [plans = std::move(plans), out_sizes = std::move(out_sizes)](
          std::vector<PsServer::HandleResult>&& results,
          TaskTraffic*) -> Result<Out> {
        Out out(out_sizes.size());
        for (size_t r = 0; r < out_sizes.size(); ++r) {
          out[r].assign(out_sizes[r], 0.0);
        }
        for (size_t s = 0; s < results.size(); ++s) {
          BufferReader reader(results[s].response);
          PS2_ASSIGN_OR_RETURN(uint64_t n_entries, reader.ReadVarint());
          if (n_entries != plans[s].size()) {
            return Status::Internal("serving pull entry count mismatch");
          }
          for (const WireEntry& e : plans[s]) {
            PS2_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
            if (n != e.expect) {
              return Status::Internal("serving pull span size mismatch");
            }
            PS2_RETURN_NOT_OK(
                reader.ReadF64Into(out[e.read].data() + e.dst_off, n));
          }
        }
        return out;
      });
}

PsFuture<Ack> PsClient::PushDenseAsync(RowRef ref,
                                       const std::vector<double>& delta,
                                       ColRange cols) {
  Result<MatrixMeta> meta_r = master_->GetMeta(ref.matrix_id);
  if (!meta_r.ok()) return ReadyFuture<Ack>(meta_r.status());
  const MatrixMeta& meta = *meta_r;
  const ColRange w =
      cols.whole ? ColRange::Of(0, delta.size()) : cols;
  if (w.width() != delta.size()) {
    return ReadyFuture<Ack>(
        Status::InvalidArgument("push window/delta size mismatch"));
  }
  if (w.end > meta.dim) {
    return ReadyFuture<Ack>(Status::OutOfRange("push window out of range"));
  }
  if (cache_.HasHot() && cache_.HotDim(ref) == meta.dim) {
    // Hot row: one sparse delta to the home server's replica, applied to
    // the primary at the next ReplicaSync instead of fanning out now.
    std::vector<uint64_t> idx;
    std::vector<double> val;
    for (uint64_t i = 0; i < w.width(); ++i) {
      if (delta[i] != 0.0) {
        idx.push_back(w.begin + i);
        val.push_back(delta[i]);
      }
    }
    if (idx.empty()) return ReadyFuture<Ack>(Ack{});
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kHotPush));
    writer.WriteVarint(ref.matrix_id);
    writer.WriteVarint(ref.row);
    writer.WriteVarint(idx.size());
    writer.BeginSection(SectionKind::kKeys);
    uint64_t prev = 0;
    for (uint64_t col : idx) {
      writer.WriteVarint(col - prev);
      prev = col;
    }
    writer.EndSection();
    writer.BeginSection(SectionKind::kF64Values);
    for (double v : val) writer.WriteF64(v);
    writer.EndSection();
    std::vector<ServerRequest> requests;
    requests.push_back(
        MakeHashRouted(meta, ref, &writer));
    return SubmitAsync<Ack>(std::move(requests), AckParse);
  }
  const ColumnPartitioner& part = meta.partitioner;
  std::vector<ServerRequest> requests;
  for (int p = 0; p < part.num_servers(); ++p) {
    uint64_t lo = std::max(w.begin, part.RangeBegin(p));
    uint64_t hi = std::min(w.end, part.RangeEnd(p));
    if (lo >= hi) continue;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPushDense));
    writer.WriteVarint(ref.matrix_id);
    writer.WriteVarint(ref.row);
    writer.WriteVarint(lo);
    writer.WriteVarint(hi - lo);
    writer.BeginSection(SectionKind::kF64Values);
    writer.WriteF64Span(&delta[lo - w.begin], hi - lo);
    writer.EndSection();
    requests.push_back(MakeRouted(meta, p, &writer));
  }
  return SubmitAsync<Ack>(std::move(requests), AckParse);
}

Status PsClient::PushDense(RowRef ref, const std::vector<double>& delta,
                           ColRange cols) {
  return PushDenseAsync(ref, delta, cols).Wait();
}

PsFuture<Ack> PsClient::PushSparseAsync(RowRef ref, const SparseVector& delta) {
  Result<MatrixMeta> meta_r = master_->GetMeta(ref.matrix_id);
  if (!meta_r.ok()) return ReadyFuture<Ack>(meta_r.status());
  const MatrixMeta& meta = *meta_r;
  if (delta.nnz() > 0 && delta.indices().back() >= meta.dim) {
    return ReadyFuture<Ack>(Status::OutOfRange("push index out of range"));
  }
  if (cache_.HasHot() && cache_.HotDim(ref) == meta.dim) {
    if (delta.nnz() == 0) return ReadyFuture<Ack>(Ack{});
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kHotPush));
    writer.WriteVarint(ref.matrix_id);
    writer.WriteVarint(ref.row);
    writer.WriteVarint(delta.nnz());
    writer.BeginSection(SectionKind::kKeys);
    uint64_t prev = 0;
    for (uint64_t col : delta.indices()) {
      writer.WriteVarint(col - prev);
      prev = col;
    }
    writer.EndSection();
    writer.BeginSection(SectionKind::kF64Values);
    for (double v : delta.values()) writer.WriteF64(v);
    writer.EndSection();
    std::vector<ServerRequest> requests;
    requests.push_back(
        MakeHashRouted(meta, ref, &writer));
    return SubmitAsync<Ack>(std::move(requests), AckParse);
  }
  const ColumnPartitioner& part = meta.partitioner;
  const auto& idx = delta.indices();
  const auto& val = delta.values();
  std::vector<ServerRequest> requests;
  size_t i = 0;
  while (i < idx.size()) {
    int p = part.PartitionOfColumn(idx[i]);
    uint64_t range_end = part.RangeEnd(p);
    size_t j = i;
    while (j < idx.size() && idx[j] < range_end) ++j;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPushSparse));
    writer.WriteVarint(ref.matrix_id);
    writer.WriteVarint(ref.row);
    writer.WriteVarint(j - i);
    writer.BeginSection(SectionKind::kKeys);
    uint64_t prev = 0;
    for (size_t k = i; k < j; ++k) {
      writer.WriteVarint(idx[k] - prev);
      prev = idx[k];
    }
    writer.EndSection();
    writer.BeginSection(SectionKind::kF64Values);
    for (size_t k = i; k < j; ++k) writer.WriteF64(val[k]);
    writer.EndSection();
    requests.push_back(MakeRouted(meta, p, &writer));
    i = j;
  }
  return SubmitAsync<Ack>(std::move(requests), AckParse);
}

Status PsClient::PushSparse(RowRef ref, const SparseVector& delta) {
  return PushSparseAsync(ref, delta).Wait();
}

PsFuture<double> PsClient::RowAggregateAsync(RowRef ref, RowAggKind kind) {
  Result<MatrixMeta> meta_r = master_->GetMeta(ref.matrix_id);
  if (!meta_r.ok()) return ReadyFuture<double>(meta_r.status());
  const MatrixMeta& meta = *meta_r;
  const ColumnPartitioner& part = meta.partitioner;
  std::vector<ServerRequest> requests;
  for (const SpanTarget& target : SpanTargets(part)) {
    const int p = target.partition;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kRowAgg));
    writer.WriteVarint(ref.matrix_id);
    writer.WriteVarint(ref.row);
    writer.WriteU8(static_cast<uint8_t>(kind));
    requests.push_back(MakeRouted(meta, p, &writer));
  }
  return SubmitAsync<double>(
      std::move(requests),
      [kind](std::vector<PsServer::HandleResult>&& results,
             TaskTraffic*) -> Result<double> {
        double acc = kind == RowAggKind::kMax
                         ? -std::numeric_limits<double>::infinity()
                         : 0.0;
        for (const auto& result : results) {
          BufferReader reader(result.response);
          PS2_ASSIGN_OR_RETURN(double partial, reader.ReadF64());
          if (kind == RowAggKind::kMax) {
            acc = std::max(acc, partial);
          } else {
            acc += partial;
          }
        }
        return acc;
      });
}

Result<double> PsClient::RowAggregate(RowRef ref, RowAggKind kind) {
  return RowAggregateAsync(ref, kind).Get();
}

// -------------------------------------------------------- column access ops

PsFuture<Ack> PsClient::ColumnOpAsync(ColOpKind kind, RowRef dst,
                                      const std::vector<RowRef>& srcs,
                                      double scalar) {
  std::vector<RowRef> all{dst};
  all.insert(all.end(), srcs.begin(), srcs.end());
  MatrixMeta meta;
  Result<bool> colocated = CoLocated(all, &meta);
  if (!colocated.ok()) return ReadyFuture<Ack>(colocated.status());
  bool fast = *colocated;
  if (!fast) {
    // Relaxation: replicated (hot) sources read as co-located with any dst
    // slice; only dst and the non-replicated sources must share placement.
    HotspotManager* hotspot = master_->hotspot();
    std::vector<RowRef> anchored{dst};
    for (const RowRef& src : srcs) {
      if (!hotspot->IsReplicated(src)) anchored.push_back(src);
    }
    if (anchored.size() < all.size()) {
      Result<bool> relaxed = CoLocated(anchored, &meta);
      if (!relaxed.ok()) return ReadyFuture<Ack>(relaxed.status());
      fast = *relaxed;
    }
  }
  if (!fast) {
    // The naive pull-compute-push fallback is inherently synchronous (it is
    // itself a chain of dependent client ops); run it at issue time.
    master_->cluster()->metrics().Add("dcv.noncolocated_column_ops", 1);
    Status status = ColumnOpSlowPath(kind, dst, srcs, scalar);
    if (!status.ok()) return ReadyFuture<Ack>(std::move(status));
    return ReadyFuture<Ack>(Ack{});
  }
  const ColumnPartitioner& part = meta.partitioner;
  std::vector<ServerRequest> requests;
  for (const SpanTarget& target : SpanTargets(part)) {
    const int p = target.partition;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kColumnOp));
    writer.WriteU8(static_cast<uint8_t>(kind));
    writer.WriteVarint(dst.matrix_id);
    writer.WriteVarint(dst.row);
    writer.WriteVarint(srcs.size());
    for (const RowRef& src : srcs) {
      writer.WriteVarint(src.matrix_id);
      writer.WriteVarint(src.row);
    }
    writer.WriteF64(scalar);
    requests.push_back(MakeRouted(meta, p, &writer));
  }
  return SubmitAsync<Ack>(std::move(requests), AckParse);
}

Status PsClient::ColumnOp(ColOpKind kind, RowRef dst,
                          const std::vector<RowRef>& srcs, double scalar) {
  return ColumnOpAsync(kind, dst, srcs, scalar).Wait();
}

Status PsClient::ColumnOpSlowPath(ColOpKind kind, RowRef dst,
                                  const std::vector<RowRef>& srcs,
                                  double scalar) {
  // The naive path of paper Fig. 4: pull full operand rows to the client,
  // compute locally, write the result back. All that traffic is real and
  // recorded; this is what non-co-located DCVs cost.
  std::vector<std::vector<double>> pulled;
  for (const RowRef& src : srcs) {
    PS2_ASSIGN_OR_RETURN(std::vector<double> row, PullDense(src));
    pulled.push_back(std::move(row));
  }
  PS2_ASSIGN_OR_RETURN(MatrixMeta dst_meta, master_->GetMeta(dst.matrix_id));
  const uint64_t dim = dst_meta.dim;
  std::vector<double> result(dim, 0.0);
  auto need = [&](size_t k) -> Status {
    if (pulled.size() != k) {
      return Status::InvalidArgument("wrong operand count for column op");
    }
    for (const auto& row : pulled) {
      if (row.size() != dim) {
        return Status::InvalidArgument("column op dimension mismatch");
      }
    }
    return Status::OK();
  };
  uint64_t ops = 0;
  switch (kind) {
    case ColOpKind::kAdd:
      PS2_RETURN_NOT_OK(need(2));
      ops = kernels::Add(result.data(), pulled[0].data(), pulled[1].data(),
                         dim);
      break;
    case ColOpKind::kSub:
      PS2_RETURN_NOT_OK(need(2));
      ops = kernels::Sub(result.data(), pulled[0].data(), pulled[1].data(),
                         dim);
      break;
    case ColOpKind::kMul:
      PS2_RETURN_NOT_OK(need(2));
      ops = kernels::Mul(result.data(), pulled[0].data(), pulled[1].data(),
                         dim);
      break;
    case ColOpKind::kDiv:
      PS2_RETURN_NOT_OK(need(2));
      ops = kernels::Div(result.data(), pulled[0].data(), pulled[1].data(),
                         dim);
      break;
    case ColOpKind::kCopy:
      PS2_RETURN_NOT_OK(need(1));
      ops = kernels::Copy(result.data(), pulled[0].data(), dim);
      break;
    case ColOpKind::kAxpy: {
      PS2_RETURN_NOT_OK(need(1));
      // dst += alpha*src: additive push works without reading dst.
      std::vector<double> delta(dim);
      for (uint64_t i = 0; i < dim; ++i) delta[i] = scalar * pulled[0][i];
      {
        OpScope scope(master_->cluster());
        scope.traffic()->worker_ops += dim;
      }
      return PushDense(dst, delta);
    }
    case ColOpKind::kFill:
    case ColOpKind::kScale:
      // Fill/scale never need operands from other servers; they are always
      // served by the fast path.
      return Status::Internal("fill/scale cannot reach the slow path");
  }
  {
    OpScope scope(master_->cluster());
    scope.traffic()->worker_ops += ops;
  }
  // Overwrite dst: zero it server-side, then push the result additively.
  PS2_RETURN_NOT_OK(ColumnOp(ColOpKind::kFill, dst, {}, 0.0));
  return PushDense(dst, result);
}

PsFuture<double> PsClient::DotAsync(RowRef a, RowRef b) {
  MatrixMeta meta;
  Result<bool> colocated = CoLocated({a, b}, &meta);
  if (!colocated.ok()) return ReadyFuture<double>(colocated.status());
  bool fast = *colocated;
  if (!fast) {
    // Relaxation: if one operand is replicated everywhere, drive the fan-out
    // with the *other* operand's partitioner — each server dots its primary
    // slice against the replica's matching slice.
    HotspotManager* hotspot = master_->hotspot();
    if (hotspot->IsReplicated(b)) {
      fast = true;  // meta already holds a's placement
    } else if (hotspot->IsReplicated(a)) {
      Result<MatrixMeta> meta_b = master_->GetMeta(b.matrix_id);
      if (!meta_b.ok()) return ReadyFuture<double>(meta_b.status());
      meta = *meta_b;
      fast = true;
    }
  }
  if (!fast) {
    // Naive path: ship both full rows to the client (paper Fig. 4, lines
    // 1-4 — "huge communication cost"). Synchronous at issue time.
    master_->cluster()->metrics().Add("dcv.noncolocated_dots", 1);
    Result<std::vector<double>> ra = PullDense(a);
    if (!ra.ok()) return ReadyFuture<double>(ra.status());
    Result<std::vector<double>> rb = PullDense(b);
    if (!rb.ok()) return ReadyFuture<double>(rb.status());
    double out = 0.0;
    uint64_t ops =
        kernels::Dot(ra->data(), rb->data(), std::min(ra->size(), rb->size()),
                     &out);
    OpScope scope(master_->cluster());
    scope.traffic()->worker_ops += ops;
    return ReadyFuture<double>(out);
  }
  const ColumnPartitioner& part = meta.partitioner;
  std::vector<ServerRequest> requests;
  for (const SpanTarget& target : SpanTargets(part)) {
    const int p = target.partition;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kDotPartial));
    writer.WriteVarint(a.matrix_id);
    writer.WriteVarint(a.row);
    writer.WriteVarint(b.matrix_id);
    writer.WriteVarint(b.row);
    requests.push_back(MakeRouted(meta, p, &writer));
  }
  return SubmitAsync<double>(
      std::move(requests),
      [](std::vector<PsServer::HandleResult>&& results,
         TaskTraffic*) -> Result<double> {
        double total = 0.0;
        for (const auto& result : results) {
          BufferReader reader(result.response);
          PS2_ASSIGN_OR_RETURN(double partial, reader.ReadF64());
          total += partial;
        }
        return total;
      });
}

Result<double> PsClient::Dot(RowRef a, RowRef b) {
  return DotAsync(a, b).Get();
}

Status PsClient::Zip(const std::vector<RowRef>& rows, int udf_id) {
  if (rows.empty()) return Status::InvalidArgument("zip needs rows");
  MatrixMeta meta;
  PS2_ASSIGN_OR_RETURN(bool colocated, CoLocated(rows, &meta));
  if (!colocated) {
    return Status::FailedPrecondition(
        "zip requires co-located DCVs; create them with derive");
  }
  const ColumnPartitioner& part = meta.partitioner;
  std::vector<ServerRequest> requests;
  for (const SpanTarget& target : SpanTargets(part)) {
    const int p = target.partition;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kZip));
    writer.WriteVarint(udf_id);
    writer.WriteVarint(rows.size());
    for (const RowRef& r : rows) {
      writer.WriteVarint(r.matrix_id);
      writer.WriteVarint(r.row);
    }
    requests.push_back(MakeRouted(meta, p, &writer));
  }
  return SubmitAsync<Ack>(std::move(requests), AckParse).Wait();
}

Result<std::vector<std::vector<double>>> PsClient::ZipAggregate(
    const std::vector<RowRef>& rows, int udf_id) {
  using Out = std::vector<std::vector<double>>;
  if (rows.empty()) return Status::InvalidArgument("zip-aggregate needs rows");
  MatrixMeta meta;
  PS2_ASSIGN_OR_RETURN(bool colocated, CoLocated(rows, &meta));
  if (!colocated) {
    return Status::FailedPrecondition(
        "zip-aggregate requires co-located DCVs; create them with derive");
  }
  const ColumnPartitioner& part = meta.partitioner;
  std::vector<ServerRequest> requests;
  for (const SpanTarget& target : SpanTargets(part)) {
    const int p = target.partition;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kZipAggregate));
    writer.WriteVarint(udf_id);
    writer.WriteVarint(rows.size());
    for (const RowRef& r : rows) {
      writer.WriteVarint(r.matrix_id);
      writer.WriteVarint(r.row);
    }
    requests.push_back(MakeRouted(meta, p, &writer));
  }
  return SubmitAsync<Out>(
             std::move(requests),
             [](std::vector<PsServer::HandleResult>&& results,
                TaskTraffic*) -> Result<Out> {
               Out out;
               for (const auto& result : results) {
                 BufferReader reader(result.response);
                 PS2_ASSIGN_OR_RETURN(std::vector<double> values,
                                      reader.ReadPodVector<double>());
                 out.push_back(std::move(values));
               }
               return out;
             })
      .Get();
}

// ------------------------------------------------------------- batched ops

PsFuture<std::vector<double>> PsClient::DotBatchAsync(
    const std::vector<std::pair<RowRef, RowRef>>& pairs) {
  using Out = std::vector<double>;
  if (pairs.empty()) return ReadyFuture<Out>(Out{});
  std::vector<RowRef> all;
  for (const auto& [a, b] : pairs) {
    all.push_back(a);
    all.push_back(b);
  }
  MatrixMeta meta;
  Result<bool> colocated = CoLocated(all, &meta);
  if (!colocated.ok()) return ReadyFuture<Out>(colocated.status());
  if (!*colocated) {
    return ReadyFuture<Out>(Status::FailedPrecondition(
        "dot-batch requires co-located DCVs; create them with derive"));
  }
  const ColumnPartitioner& part = meta.partitioner;
  std::vector<ServerRequest> requests;
  for (const SpanTarget& target : SpanTargets(part)) {
    const int p = target.partition;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kDotBatch));
    writer.WriteVarint(pairs.size());
    for (const auto& [a, b] : pairs) {
      writer.WriteVarint(a.matrix_id);
      writer.WriteVarint(a.row);
      writer.WriteVarint(b.matrix_id);
      writer.WriteVarint(b.row);
    }
    requests.push_back(MakeRouted(meta, p, &writer));
  }
  const size_t count = pairs.size();
  return SubmitAsync<Out>(
      std::move(requests),
      [count](std::vector<PsServer::HandleResult>&& results,
              TaskTraffic*) -> Result<Out> {
        Out out(count, 0.0);
        for (const auto& result : results) {
          BufferReader reader(result.response);
          PS2_ASSIGN_OR_RETURN(uint64_t n, reader.ReadVarint());
          if (n != count) return Status::Internal("dot-batch count mismatch");
          for (size_t i = 0; i < count; ++i) {
            PS2_ASSIGN_OR_RETURN(double partial, reader.ReadF64());
            out[i] += partial;
          }
        }
        return out;
      });
}

PsFuture<Ack> PsClient::AxpyBatchAsync(const std::vector<AxpyTask>& tasks) {
  if (tasks.empty()) return ReadyFuture<Ack>(Ack{});
  std::vector<RowRef> all;
  for (const auto& t : tasks) {
    all.push_back(t.dst);
    all.push_back(t.src);
  }
  MatrixMeta meta;
  Result<bool> colocated = CoLocated(all, &meta);
  if (!colocated.ok()) return ReadyFuture<Ack>(colocated.status());
  if (!*colocated) {
    return ReadyFuture<Ack>(Status::FailedPrecondition(
        "axpy-batch requires co-located DCVs; create them with derive"));
  }
  const ColumnPartitioner& part = meta.partitioner;
  std::vector<ServerRequest> requests;
  for (const SpanTarget& target : SpanTargets(part)) {
    const int p = target.partition;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kAxpyBatch));
    writer.WriteVarint(tasks.size());
    for (const auto& t : tasks) {
      writer.WriteVarint(t.dst.matrix_id);
      writer.WriteVarint(t.dst.row);
      writer.WriteVarint(t.src.matrix_id);
      writer.WriteVarint(t.src.row);
      writer.WriteF64(t.alpha);
    }
    requests.push_back(MakeRouted(meta, p, &writer));
  }
  return SubmitAsync<Ack>(std::move(requests), AckParse);
}

PsFuture<std::vector<std::vector<double>>> PsClient::PullRowsAsync(
    const std::vector<RowRef>& rows) {
  using Out = std::vector<std::vector<double>>;
  if (rows.empty()) return ReadyFuture<Out>(Out{});
  MatrixMeta meta;
  Result<bool> colocated = CoLocated(rows, &meta);
  if (!colocated.ok()) return ReadyFuture<Out>(colocated.status());
  if (!*colocated) {
    return ReadyFuture<Out>(
        Status::FailedPrecondition("PullRows requires co-located rows"));
  }
  const ColumnPartitioner& part = meta.partitioner;
  std::vector<ServerRequest> requests;
  std::vector<std::pair<uint64_t, uint64_t>> windows;  // (lo, width)
  for (const SpanTarget& target : SpanTargets(part)) {
    const uint64_t lo = target.begin;
    const uint64_t width = target.end - target.begin;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPullRowsBatch));
    writer.WriteVarint(rows.size());
    for (const RowRef& r : rows) {
      writer.WriteVarint(r.matrix_id);
      writer.WriteVarint(r.row);
    }
    requests.push_back(MakeRouted(meta, target.partition, &writer));
    windows.emplace_back(lo, width);
  }
  const size_t num_rows = rows.size();
  const uint64_t dim = meta.dim;
  return SubmitAsync<Out>(
      std::move(requests),
      [windows = std::move(windows), num_rows, dim](
          std::vector<PsServer::HandleResult>&& results,
          TaskTraffic*) -> Result<Out> {
        Out out(num_rows);
        for (auto& row : out) row.assign(dim, 0.0);
        for (size_t r = 0; r < results.size(); ++r) {
          const auto [lo, width] = windows[r];
          BufferReader reader(results[r].response);
          PS2_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
          if (count != num_rows) {
            return Status::Internal("row-batch pull count mismatch");
          }
          for (size_t i = 0; i < num_rows; ++i) {
            PS2_ASSIGN_OR_RETURN(uint64_t w, reader.ReadVarint());
            if (w != width) return Status::Internal("row-batch width mismatch");
            PS2_ASSIGN_OR_RETURN(std::vector<double> values,
                                 reader.ReadF64Span(w));
            std::copy(values.begin(), values.end(), out[i].begin() + lo);
          }
        }
        return out;
      });
}

PsFuture<Ack> PsClient::PushRowsAsync(
    const std::vector<RowRef>& rows,
    const std::vector<std::vector<double>>& deltas) {
  if (rows.empty()) return ReadyFuture<Ack>(Ack{});
  if (rows.size() != deltas.size()) {
    return ReadyFuture<Ack>(
        Status::InvalidArgument("rows/deltas size mismatch"));
  }
  MatrixMeta meta;
  Result<bool> colocated = CoLocated(rows, &meta);
  if (!colocated.ok()) return ReadyFuture<Ack>(colocated.status());
  if (!*colocated) {
    return ReadyFuture<Ack>(
        Status::FailedPrecondition("PushRows requires co-located rows"));
  }
  for (const auto& d : deltas) {
    if (d.size() != meta.dim) {
      return ReadyFuture<Ack>(
          Status::InvalidArgument("row delta dimension mismatch"));
    }
  }
  const ColumnPartitioner& part = meta.partitioner;
  std::vector<ServerRequest> requests;
  for (const SpanTarget& target : SpanTargets(part)) {
    const uint64_t lo = target.begin;
    const uint64_t width = target.end - target.begin;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPushRowsBatch));
    writer.WriteVarint(rows.size());
    for (size_t i = 0; i < rows.size(); ++i) {
      writer.WriteVarint(rows[i].matrix_id);
      writer.WriteVarint(rows[i].row);
      writer.WriteVarint(width);
      writer.BeginSection(SectionKind::kF64Values);
      writer.WriteF64Span(&deltas[i][lo], width);
      writer.EndSection();
    }
    requests.push_back(MakeRouted(meta, target.partition, &writer));
  }
  return SubmitAsync<Ack>(std::move(requests), AckParse);
}

PsFuture<std::vector<std::vector<double>>> PsClient::PullOwnedRowsAsync(
    const std::vector<RowRef>& rows) {
  using Out = std::vector<std::vector<double>>;
  if (rows.empty()) return ReadyFuture<Out>(Out{});
  const size_t n = rows.size();
  Out out(n);
  std::map<int, MatrixMeta> metas;
  std::map<int, std::vector<size_t>> by_server;  // owner -> row positions
  uint64_t local_hits = 0, local_bytes = 0, local_ops = 0;
  for (size_t i = 0; i < n; ++i) {
    const RowRef ref = rows[i];
    auto it = metas.find(ref.matrix_id);
    if (it == metas.end()) {
      Result<MatrixMeta> meta_r = master_->GetMeta(ref.matrix_id);
      if (!meta_r.ok()) return ReadyFuture<Out>(meta_r.status());
      if (meta_r->partitioner.assignment().size() != 1) {
        return ReadyFuture<Out>(Status::FailedPrecondition(
            "PullOwnedRows requires single-partition matrices"));
      }
      it = metas.emplace(ref.matrix_id, std::move(*meta_r)).first;
    }
    const MatrixMeta& meta = it->second;
    out[i].assign(meta.dim, 0.0);
    if (cache_.HasHot() && cache_.HotDim(ref) == meta.dim &&
        cache_.TryServeDense(ref, 0, meta.dim, out[i].data())) {
      local_hits += 1;
      local_bytes += meta.dim * sizeof(double);
      local_ops += meta.dim;
      continue;
    }
    by_server[meta.partitioner.ServerOfPartition(0)].push_back(i);
  }
  if (local_hits > 0) {
    OpScope scope(master_->cluster());
    TaskTraffic* t = scope.traffic();
    t->worker_ops += local_ops;
    t->local_pull_hits += local_hits;
    t->local_pull_bytes += local_bytes;
  }
  if (by_server.empty()) return ReadyFuture<Out>(std::move(out));
  std::vector<ServerRequest> requests;
  std::vector<std::vector<size_t>> groups;
  requests.reserve(by_server.size());
  groups.reserve(by_server.size());
  for (auto& [server, members] : by_server) {
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPullRowsBatch));
    writer.WriteVarint(members.size());
    for (size_t i : members) {
      writer.WriteVarint(rows[i].matrix_id);
      writer.WriteVarint(rows[i].row);
    }
    // Routed by the group's first row: every member shares the server, and
    // a `routing stale` bounce re-aims the group to that row's new home.
    requests.push_back(
        MakeRouted(metas.at(rows[members[0]].matrix_id), 0, &writer));
    groups.push_back(std::move(members));
  }
  return SubmitAsync<Out>(
      std::move(requests),
      [this, rows, groups = std::move(groups), out = std::move(out)](
          std::vector<PsServer::HandleResult>&& results,
          TaskTraffic*) mutable -> Result<Out> {
        for (size_t g = 0; g < results.size(); ++g) {
          BufferReader reader(results[g].response);
          PS2_ASSIGN_OR_RETURN(uint64_t count, reader.ReadVarint());
          if (count != groups[g].size()) {
            return Status::Internal("owned-rows pull count mismatch");
          }
          for (size_t i : groups[g]) {
            PS2_ASSIGN_OR_RETURN(uint64_t w, reader.ReadVarint());
            if (w != out[i].size()) {
              return Status::Internal("owned-rows pull width mismatch");
            }
            PS2_ASSIGN_OR_RETURN(std::vector<double> values,
                                 reader.ReadF64Span(w));
            // A hot-but-stale row reached its owner anyway: the pull IS the
            // refresh, so warm the cache with it.
            if (cache_.HasHot() && cache_.HotDim(rows[i]) == w) {
              cache_.Store(rows[i], values, cache_.epoch());
            }
            std::copy(values.begin(), values.end(), out[i].begin());
          }
        }
        return std::move(out);
      });
}

PsFuture<Ack> PsClient::PushOwnedRowsAsync(
    const std::vector<RowRef>& rows,
    const std::vector<std::vector<double>>& deltas) {
  if (rows.empty()) return ReadyFuture<Ack>(Ack{});
  if (rows.size() != deltas.size()) {
    return ReadyFuture<Ack>(
        Status::InvalidArgument("rows/deltas size mismatch"));
  }
  std::map<int, MatrixMeta> metas;
  std::map<int, std::vector<size_t>> by_server;
  for (size_t i = 0; i < rows.size(); ++i) {
    const RowRef ref = rows[i];
    auto it = metas.find(ref.matrix_id);
    if (it == metas.end()) {
      Result<MatrixMeta> meta_r = master_->GetMeta(ref.matrix_id);
      if (!meta_r.ok()) return ReadyFuture<Ack>(meta_r.status());
      if (meta_r->partitioner.assignment().size() != 1) {
        return ReadyFuture<Ack>(Status::FailedPrecondition(
            "PushOwnedRows requires single-partition matrices"));
      }
      it = metas.emplace(ref.matrix_id, std::move(*meta_r)).first;
    }
    if (deltas[i].size() != it->second.dim) {
      return ReadyFuture<Ack>(
          Status::InvalidArgument("row delta dimension mismatch"));
    }
    by_server[it->second.partitioner.ServerOfPartition(0)].push_back(i);
  }
  std::vector<ServerRequest> requests;
  requests.reserve(by_server.size());
  for (auto& [server, members] : by_server) {
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPushRowsBatch));
    writer.WriteVarint(members.size());
    for (size_t i : members) {
      writer.WriteVarint(rows[i].matrix_id);
      writer.WriteVarint(rows[i].row);
      writer.WriteVarint(deltas[i].size());
      writer.BeginSection(SectionKind::kF64Values);
      writer.WriteF64Span(deltas[i].data(), deltas[i].size());
      writer.EndSection();
    }
    requests.push_back(
        MakeRouted(metas.at(rows[members[0]].matrix_id), 0, &writer));
  }
  return SubmitAsync<Ack>(std::move(requests), AckParse);
}

PsFuture<std::vector<std::vector<double>>> PsClient::PullSparseRowsAsync(
    const std::vector<RowRef>& rows, const std::vector<uint64_t>& indices,
    bool compress_counts) {
  using Out = std::vector<std::vector<double>>;
  if (rows.empty() || indices.empty()) {
    return ReadyFuture<Out>(Out(rows.size()));
  }
  MatrixMeta meta;
  Result<bool> colocated = CoLocated(rows, &meta);
  if (!colocated.ok()) return ReadyFuture<Out>(colocated.status());
  if (!*colocated) {
    return ReadyFuture<Out>(
        Status::FailedPrecondition("PullSparseRows requires co-located rows"));
  }
  const ColumnPartitioner& part = meta.partitioner;
  std::vector<ServerRequest> requests;
  std::vector<std::pair<size_t, size_t>> runs;
  size_t i = 0;
  while (i < indices.size()) {
    if (indices[i] >= meta.dim) {
      return ReadyFuture<Out>(Status::OutOfRange("pull index out of range"));
    }
    int p = part.PartitionOfColumn(indices[i]);
    uint64_t range_end = part.RangeEnd(p);
    size_t j = i;
    while (j < indices.size() && indices[j] < range_end) ++j;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPullSparseRowsBatch));
    writer.WriteU8(compress_counts ? 1 : 0);
    writer.WriteVarint(j - i);
    writer.BeginSection(SectionKind::kKeys);
    uint64_t prev = 0;
    for (size_t k = i; k < j; ++k) {
      writer.WriteVarint(indices[k] - prev);
      prev = indices[k];
    }
    writer.EndSection();
    writer.WriteVarint(rows.size());
    for (const RowRef& r : rows) {
      writer.WriteVarint(r.matrix_id);
      writer.WriteVarint(r.row);
    }
    requests.push_back(MakeRouted(meta, p, &writer));
    runs.emplace_back(i, j);
    i = j;
  }
  const size_t num_rows = rows.size();
  const size_t total = indices.size();
  return SubmitAsync<Out>(
      std::move(requests),
      [runs = std::move(runs), num_rows, total, compress_counts](
          std::vector<PsServer::HandleResult>&& results,
          TaskTraffic*) -> Result<Out> {
        Out out(num_rows, std::vector<double>(total, 0.0));
        for (size_t q = 0; q < results.size(); ++q) {
          const auto [lo, hi] = runs[q];
          BufferReader reader(results[q].response);
          PS2_ASSIGN_OR_RETURN(uint64_t n_rows, reader.ReadVarint());
          if (n_rows != num_rows) {
            return Status::Internal("sparse-rows pull row count mismatch");
          }
          for (size_t r = 0; r < num_rows; ++r) {
            if (compress_counts) {
              for (size_t k = lo; k < hi; ++k) {
                PS2_ASSIGN_OR_RETURN(int64_t iv, reader.ReadSignedVarint());
                out[r][k] = static_cast<double>(iv);
              }
            } else {
              PS2_ASSIGN_OR_RETURN(std::vector<double> values,
                                   reader.ReadF64Span(hi - lo));
              std::copy(values.begin(), values.end(), out[r].begin() + lo);
            }
          }
        }
        return out;
      });
}

PsFuture<Ack> PsClient::PushSparseRowsAsync(
    const std::vector<RowRef>& rows, const std::vector<SparseVector>& deltas,
    bool compress_counts) {
  if (rows.size() != deltas.size()) {
    return ReadyFuture<Ack>(
        Status::InvalidArgument("rows/deltas size mismatch"));
  }
  if (rows.empty()) return ReadyFuture<Ack>(Ack{});
  MatrixMeta meta;
  Result<bool> colocated = CoLocated(rows, &meta);
  if (!colocated.ok()) return ReadyFuture<Ack>(colocated.status());
  if (!*colocated) {
    return ReadyFuture<Ack>(
        Status::FailedPrecondition("PushSparseRows requires co-located rows"));
  }
  const ColumnPartitioner& part = meta.partitioner;
  // One request per server: for every row, the slice of its delta that the
  // server owns.
  std::vector<ServerRequest> requests;
  for (int p = 0; p < part.num_servers(); ++p) {
    uint64_t lo = part.RangeBegin(p);
    uint64_t hi = part.RangeEnd(p);
    if (lo >= hi) continue;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kPushSparseRowsBatch));
    writer.WriteU8(compress_counts ? 1 : 0);
    // Count rows with any entry in this range first.
    size_t rows_here = 0;
    std::vector<std::pair<size_t, size_t>> spans(rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      const auto& idx = deltas[r].indices();
      auto begin_it = std::lower_bound(idx.begin(), idx.end(), lo);
      auto end_it = std::lower_bound(begin_it, idx.end(), hi);
      spans[r] = {static_cast<size_t>(begin_it - idx.begin()),
                  static_cast<size_t>(end_it - idx.begin())};
      rows_here += spans[r].first != spans[r].second;
    }
    if (rows_here == 0) continue;
    writer.WriteVarint(rows_here);
    for (size_t r = 0; r < rows.size(); ++r) {
      auto [sb, se] = spans[r];
      if (sb == se) continue;
      const auto& idx = deltas[r].indices();
      const auto& val = deltas[r].values();
      writer.WriteVarint(rows[r].matrix_id);
      writer.WriteVarint(rows[r].row);
      writer.WriteVarint(se - sb);
      writer.BeginSection(SectionKind::kKeys);
      uint64_t prev = 0;
      for (size_t k = sb; k < se; ++k) {
        writer.WriteVarint(idx[k] - prev);
        prev = idx[k];
      }
      writer.EndSection();
      if (compress_counts) {
        for (size_t k = sb; k < se; ++k) {
          writer.WriteSignedVarint(static_cast<int64_t>(std::llround(val[k])));
        }
      } else {
        writer.BeginSection(SectionKind::kF64Values);
        for (size_t k = sb; k < se; ++k) writer.WriteF64(val[k]);
        writer.EndSection();
      }
    }
    requests.push_back(MakeRouted(meta, p, &writer));
  }
  return SubmitAsync<Ack>(std::move(requests), AckParse);
}

PsFuture<Ack> PsClient::ClockAdvanceAsync(int worker, uint64_t clock) {
  if (worker < 0) {
    return ReadyFuture<Ack>(Status::InvalidArgument("worker must be >= 0"));
  }
  // Every active server holds a full worker-clock vector for its key
  // ranges, so the advance fans out to the active snapshot. It is a tracked
  // mutation: retries, dedup and crash recovery compose exactly as for a
  // gradient push. If a migration decommissions a server while this advance
  // is in flight, the rejection acks as a no-op — its clock table moved
  // with its ranges and was max-merged at the new owners.
  std::vector<ServerRequest> requests;
  for (int s : master_->active_servers()) {
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kClockAdvance));
    writer.WriteVarint(static_cast<uint64_t>(worker));
    writer.WriteVarint(clock);
    requests.push_back(MakeRequest(s, &writer));
  }
  return SubmitAsync<Ack>(std::move(requests), AckParse);
}

Status PsClient::ClockAdvance(int worker, uint64_t clock) {
  return ClockAdvanceAsync(worker, clock).Wait();
}

Status PsClient::MatrixInit(int matrix_id, uint32_t row_begin,
                            uint32_t row_end, double scale, uint64_t seed) {
  PS2_ASSIGN_OR_RETURN(MatrixMeta meta, master_->GetMeta(matrix_id));
  const ColumnPartitioner& part = meta.partitioner;
  std::vector<ServerRequest> requests;
  for (const SpanTarget& target : SpanTargets(part)) {
    const int p = target.partition;
    BufferWriter writer;
    writer.WriteU8(static_cast<uint8_t>(PsOpCode::kMatrixInit));
    writer.WriteVarint(matrix_id);
    writer.WriteVarint(row_begin);
    writer.WriteVarint(row_end);
    writer.WriteF64(scale);
    writer.WriteU64(seed);
    requests.push_back(MakeRouted(meta, p, &writer));
  }
  return SubmitAsync<Ack>(std::move(requests), AckParse).Wait();
}

}  // namespace ps2
