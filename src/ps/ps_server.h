#pragma once

// PS-server: stores matrix shards and executes row/column operations.
//
// A server owns, for every matrix, *all rows* of one contiguous column range
// (see ps/partitioner.h). Requests arrive as serialized buffers (built by
// PsClient) and responses leave as serialized buffers, so the traffic the
// network model charges is exactly what a Netty/Protobuf implementation
// would put on the wire. Server-side user functions (the `zip` operator of
// paper Figs. 3/8) are looked up in a UdfRegistry — standing in for code
// pre-deployed to the servers in the real system.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <tuple>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "common/serde.h"
#include "common/slice.h"
#include "common/status.h"
#include "hotspot/access_stats.h"
#include "net/filter_config.h"
#include "net/filters.h"
#include "net/message.h"
#include "ps/ps_types.h"

namespace ps2 {

/// Mutating server-side function over aligned row slices.
/// `rows` are the local slices (one pointer per DCV, `n` elements each),
/// `col_offset` is the global column index of element 0. Returns op count.
using ZipFn = std::function<uint64_t(const std::vector<double*>& rows, size_t n,
                                     uint64_t col_offset)>;

/// Read-only server-side aggregation returning a small result vector.
using ZipAggFn = std::function<std::vector<double>(
    const std::vector<const double*>& rows, size_t n, uint64_t col_offset)>;

/// \brief Registry of server-side functions, shared by all servers.
class UdfRegistry {
 public:
  int RegisterZip(ZipFn fn);
  int RegisterZipAggregate(ZipAggFn fn);
  const ZipFn* GetZip(int id) const;
  const ZipAggFn* GetZipAggregate(int id) const;

 private:
  mutable std::mutex mu_;
  std::vector<ZipFn> zip_fns_;
  std::vector<ZipAggFn> zip_agg_fns_;
};

/// \brief One parameter server: matrix shards + request execution.
class PsServer {
 public:
  PsServer(int id, const UdfRegistry* udfs) : id_(id), udfs_(udfs) {}

  int id() const { return id_; }

  /// Points service-time observability at `metrics` (PsMaster wires the
  /// cluster registry here). With metrics attached, every data-plane Handle
  /// records its wall-clock service time into the per-opcode histogram
  /// `ps.server.handle_us{op=...}` and the request concurrency seen on
  /// arrival into `ps.server.queue_depth{server=i}`. Wall-clock samples go
  /// into histograms only — never counters — so determinism-checked
  /// Snapshot() output is unaffected. nullptr (the default) disables.
  void SetMetrics(MetricsRegistry* metrics);

  /// Control plane (issued by the master, not on the data path).
  Status CreateMatrixShard(const MatrixMeta& meta);
  Status FreeMatrixShard(int matrix_id);
  bool HasMatrix(int matrix_id) const;

  // ---- Elastic membership / resharding (membership/, DESIGN.md §12) ----

  /// Suspends the tracked data plane for a migration: until the commit
  /// (kRoutingUpdate) lands, tracked requests get the `routing stale
  /// (fenced)` FailedPrecondition. Control plane, like CreateMatrixShard.
  void FenceForMigration();

  /// Installs the routing-table version this server enforces: a tracked
  /// request stamped with an older (nonzero) epoch is rejected with
  /// `routing stale (epoch)`. Called directly on servers not involved in a
  /// migration; involved servers get their epoch from the commit op.
  void SetRoutingEpoch(uint64_t epoch);

  /// Permanently retires the server (RemoveServer): every tracked data-plane
  /// request is rejected with `routing stale (decommissioned)`. The dedup
  /// table is kept so rejections still answer the applied-probe (see
  /// DESIGN.md §12); migration control ops keep working so in-flight
  /// extracts can finish.
  void Decommission(uint64_t epoch);

  bool fenced() const;
  bool decommissioned() const;
  uint64_t routing_epoch() const;

  /// Re-aligns the shard of `meta.id` with what `meta.partitioner` says this
  /// server owns — the crash-recovery reconcile: a checkpoint written before
  /// a migration restores the old bounds, and this rebuilds the shard at the
  /// current bounds preserving the overlapping columns (the migrated-away or
  /// not-yet-migrated remainder is zero-filled, same semantics as any other
  /// post-checkpoint loss). Returns true if the bounds changed. If the
  /// partitioner no longer assigns this server any columns the shard is
  /// dropped; if the server has no shard but owns columns, one is created.
  Result<bool> ReconcileShardBounds(const MatrixMeta& meta);

  // ---- Hot-parameter management (hotspot/, DESIGN.md §5d) ----

  /// Turns on per-(matrix, row) pull/push frequency sketches of `capacity`
  /// monitored keys (0 disables). Control plane, like CreateMatrixShard.
  void EnableAccessStats(size_t capacity);

  /// Most-pulled rows by estimated count (empty unless stats are enabled).
  /// The master aggregates these across servers into the ranked hot set.
  std::vector<SpaceSavingSketch::Entry> TopPulledRows(size_t k) const;

  /// True if this server holds a replica of `ref` (tests, co-location).
  bool HasReplica(RowRef ref) const;

  /// Drops pending replica deltas whose replica was installed before
  /// `current_epoch`. Called by the HotspotManager after a checkpoint
  /// restore: pendings in a checkpoint older than the latest sync were
  /// already reconciled into the primaries — re-applying the resurrected
  /// copies would double-count them.
  void DropStaleReplicaPendings(uint64_t current_epoch);

  /// Snapshot of one replica (tests / recovery verification).
  struct ReplicaSnapshot {
    std::vector<double> values;
    std::map<uint64_t, double> pending;
    uint64_t version = 0;
  };
  Result<ReplicaSnapshot> DebugReplica(RowRef ref) const;

  struct HandleResult {
    std::vector<uint8_t> response;
    uint64_t server_ops = 0;
    /// True when a mutating request was recognized as a retry of an
    /// already-applied (client, seq) and acked without re-applying.
    bool dedup_hit = false;
    /// Wire filters applied to `response` (0 = response is the logical
    /// bytes). The client must Decode before parsing when nonzero.
    uint8_t response_mask = 0;
    /// Pre-filter response size when response_mask != 0 (else 0: the
    /// response already is the logical payload).
    uint64_t response_logical_bytes = 0;
    /// Marked value spans of the logical response (server-internal: consumed
    /// by the response filter encode; meaningless to the client).
    std::vector<PayloadSection> response_sections;
  };

  /// Installs the wire filter config (PsMaster wires this from the
  /// ClusterSpec, once, before any data-plane traffic — like SetMetrics).
  /// Governs response-side filtering; requests carry their mask per frame.
  void SetFilterConfig(const FilterConfig& config);

  /// Data plane: executes one serialized request with an untracked header
  /// (no fault injection, no dedup — control-plane and legacy callers).
  Result<HandleResult> Handle(const std::vector<uint8_t>& request);

  /// Data plane: executes one serialized request stamped with `header`.
  /// For tracked mutating requests the per-client dedup table is consulted
  /// first: a retry of an already-applied sequence number is acked with an
  /// empty response instead of re-applying (DESIGN.md §6). Returns
  /// Unavailable while the server is crashed.
  Result<HandleResult> Handle(const RpcHeader& header,
                              const std::vector<uint8_t>& request);

  /// Data plane, zero-copy: executes one wire frame (a view into the
  /// sender's buffer — nothing is copied on delivery). If the frame carries
  /// a filter mask, the payload is decoded *after* the dedup check (a
  /// duplicate never decodes, so a replayed install cannot perturb key-cache
  /// state) — a kKeysRef whose hash this server no longer holds returns
  /// FailedPrecondition (see IsKeyCacheMiss) without consuming the sequence
  /// number. Responses to tracked requests are filter-encoded per the
  /// installed config (delta/compress only — key caching is request-side).
  Result<HandleResult> Handle(const RpcHeader& header, const WireFrame& frame);

  // ---- Simulated process lifecycle (fault injection) ----

  /// Marks the server down: every Handle call returns Unavailable until
  /// Revive(). State is *not* dropped here — PsMaster's recovery path drops
  /// and restores it, modeling the restarted process.
  void Crash();
  /// Clears the crashed flag (the recovered process is serving again).
  void Revive();
  bool crashed() const;

  /// Retried mutations recognized and suppressed by the dedup table.
  uint64_t dedup_hits() const;

  /// Serializes all shards (for checkpointing). Includes the replica set
  /// and the per-client dedup table, so recovery is crash-consistent: a
  /// retry that races a crash can never double-apply.
  std::vector<uint8_t> SerializeState() const;
  /// Replaces all shard contents from a checkpoint buffer.
  Status RestoreState(const std::vector<uint8_t>& buffer);
  /// Drops all shard *contents* (simulated crash); metadata survives at the
  /// master, which recreates shards before restoring the checkpoint. The
  /// dedup table is dropped too — it rolls back with the state it guards.
  void DropAllState();

  /// Total doubles stored (tests / memory accounting).
  uint64_t StoredValues() const;

  // ---- Worker clocks (consistency/, DESIGN.md §11) ----

  /// Sizes the per-worker clock vector to `num_workers`, all clocks 0.
  /// Control plane, issued once by the ConsistencyController before
  /// training — like CreateMatrixShard. Idempotent for the same size.
  void InitWorkerClocks(int num_workers);

  /// This shard's view of every worker's clock (empty until
  /// InitWorkerClocks). Clock values only grow: HandleClockAdvance is a
  /// max-merge, so retried advances are idempotent even past the dedup
  /// table.
  std::vector<uint64_t> WorkerClocks() const;

  /// min over workers of WorkerClocks() — the bounded-staleness gate input.
  /// Returns 0 when clocks were never initialized.
  uint64_t MinWorkerClock() const;

  // ---- Serving snapshots (serving/, DESIGN.md §10) ----

  /// What one PublishSnapshot call did (the master charges copy cost and
  /// control-plane bytes from these).
  struct PublishStats {
    uint64_t rows_total = 0;   ///< rows in the published snapshot
    uint64_t rows_copied = 0;  ///< rows materialized (touched since last)
    uint64_t rows_reused = 0;  ///< rows shared with the previous epoch
    uint64_t bytes_copied = 0; ///< payload bytes of the copied rows
  };

  /// Publishes an immutable snapshot of every primary shard under `epoch`.
  /// Copy-on-publish: rows untouched since the previous snapshot share its
  /// immutable buffers; only touched rows are copied. The last two epochs
  /// are retained so epoch N keeps serving while N+1 is being published.
  /// `epoch` must be strictly greater than the latest published epoch.
  Result<PublishStats> PublishSnapshot(uint64_t epoch);

  /// Latest published snapshot epoch (0 = nothing published yet). Snapshots
  /// are process-local soft state: DropAllState clears them, and recovery
  /// republishes from the restored shards.
  uint64_t snapshot_epoch() const;

  /// True if `epoch` is still retained and servable.
  bool HasSnapshotEpoch(uint64_t epoch) const;

 private:
  struct Shard {
    MatrixMeta meta;
    uint64_t begin = 0;  ///< global column of local element 0
    uint64_t end = 0;
    // Dense storage: rows x (end-begin).
    std::vector<std::vector<double>> dense_rows;
    // Sparse storage: per-row map global column -> value.
    std::vector<std::map<uint64_t, double>> sparse_rows;
    // Mutation clock value of the last write to each row (serving
    // copy-on-publish reuses unchanged rows across snapshot epochs).
    std::vector<uint64_t> row_versions;

    uint64_t width() const { return end - begin; }
    bool dense() const { return meta.storage == MatrixStorage::kDense; }
  };

  /// One immutable row of a published snapshot. Exactly one of dense/sparse
  /// is set (per the shard's storage kind); buffers are shared, never
  /// mutated, so an epoch stays bit-stable while later epochs publish.
  struct SnapshotRow {
    uint64_t version = 0;  ///< shard row version at copy time
    std::shared_ptr<const std::vector<double>> dense;
    std::shared_ptr<const std::map<uint64_t, double>> sparse;
  };
  struct ShardSnapshot {
    uint64_t begin = 0;
    uint64_t end = 0;
    bool dense = true;
    std::vector<SnapshotRow> rows;
  };
  struct ModelSnapshot {
    uint64_t epoch = 0;
    std::map<int, ShardSnapshot> shards;
  };
  /// Snapshot epochs retained for serving (publish evicts beyond this).
  static constexpr size_t kRetainedSnapshots = 2;

  /// A replica of a hot row: the full row's values (all columns, not just
  /// this server's range) plus locally aggregated pending push deltas.
  /// version == 0 means "designated but never installed" — pulls fall
  /// through to the primary shard until the first ReplicaSync install.
  struct Replica {
    uint64_t dim = 0;
    uint64_t version = 0;
    std::vector<double> values;
    std::map<uint64_t, double> pending;
  };

  /// State extracted from a source server and staged by a kRangeMigrate
  /// install, waiting for the epoch's commit (kRoutingUpdate). Keyed by
  /// (epoch, matrix, begin); a retried install overwrites its key, so
  /// replays are idempotent. Soft state: a crash before the commit drops it
  /// and the master re-installs (DESIGN.md §12).
  struct StagedRange {
    uint64_t begin = 0;
    uint64_t end = 0;
    uint64_t dim = 0;
    uint32_t num_rows = 0;
    MatrixStorage storage = MatrixStorage::kDense;
    // Dense: num_rows x (end-begin). Sparse: per-row column -> value within
    // [begin, end).
    std::vector<std::vector<double>> dense_rows;
    std::vector<std::map<uint64_t, double>> sparse_rows;
    // Source server's worker clocks, max-merged at commit (clock tables
    // follow the range owner — DESIGN.md §11/§12).
    std::vector<uint64_t> worker_clocks;
  };

  /// Sequence numbers already applied for one client (DESIGN.md §6).
  /// `floor` covers the contiguous prefix [1, floor]; out-of-order arrivals
  /// (bounded by the client's async window) sit in `seen` until the gap
  /// fills. Capped: if `seen` outgrows kMaxSeenPerClient (permanently lost
  /// seqs from abandoned ops), the floor jumps to the smallest seen entry.
  struct ClientDedup {
    uint64_t floor = 0;
    std::set<uint64_t> seen;
  };
  static constexpr size_t kMaxSeenPerClient = 4096;

  /// True if (client, seq) was already applied (mu_ held).
  bool IsDuplicateLocked(int client_id, uint64_t seq) const;
  /// Records a successfully handled tracked seq (mu_ held).
  void RecordSeqLocked(int client_id, uint64_t seq);

  Result<HandleResult> HandleLocked(const RpcHeader& header, Slice request);
  Result<HandleResult> HandleInternal(const RpcHeader& header,
                                      const WireFrame& frame);
  /// Applies response-side filters (outside mu_; the response is private to
  /// this call).
  void EncodeResponse(const RpcHeader& header, const WireFrame& frame,
                      HandleResult* out);

  Result<Shard*> FindShard(int matrix_id, uint32_t row);
  Result<double*> DenseRow(int matrix_id, uint32_t row, uint64_t* width,
                           uint64_t* begin);

  /// Installed replica of (matrix, row), or nullptr.
  Replica* FindReplica(int matrix_id, uint32_t row);

  /// Read-only view of a row slice [begin, begin+width): the primary shard
  /// when this server owns exactly that slice, else an installed replica
  /// (replicated rows read as if co-located everywhere).
  Result<const double*> ReadRowView(int matrix_id, uint32_t row,
                                    uint64_t begin, uint64_t width);

  void RecordPull(int matrix_id, uint32_t row);
  void RecordPush(int matrix_id, uint32_t row);

  /// Marks one row (or every row of every shard) as mutated: stamps the
  /// current mutation clock so the next PublishSnapshot copies it.
  void TouchRowLocked(Shard* shard, uint64_t row);
  void TouchRowIdLocked(int matrix_id, uint64_t row);
  void TouchAllRowsLocked();

  Result<HandleResult> HandlePullDense(BufferReader* in);
  Result<HandleResult> HandlePullSparse(BufferReader* in);
  Result<HandleResult> HandlePushDense(BufferReader* in);
  Result<HandleResult> HandlePushSparse(BufferReader* in);
  Result<HandleResult> HandleRowAgg(BufferReader* in);
  Result<HandleResult> HandleColumnOp(BufferReader* in);
  Result<HandleResult> HandleDotPartial(BufferReader* in);
  Result<HandleResult> HandleZip(BufferReader* in);
  Result<HandleResult> HandleZipAggregate(BufferReader* in);
  Result<HandleResult> HandleDotBatch(BufferReader* in);
  Result<HandleResult> HandleAxpyBatch(BufferReader* in);
  Result<HandleResult> HandleMatrixInit(BufferReader* in);
  Result<HandleResult> HandlePullRowsBatch(BufferReader* in);
  Result<HandleResult> HandlePushRowsBatch(BufferReader* in);
  Result<HandleResult> HandlePullSparseRowsBatch(BufferReader* in);
  Result<HandleResult> HandlePushSparseRowsBatch(BufferReader* in);
  Result<HandleResult> HandleHotSetUpdate(BufferReader* in);
  Result<HandleResult> HandleReplicaSync(BufferReader* in);
  Result<HandleResult> HandleHotPush(BufferReader* in);
  Result<HandleResult> HandleServingPull(BufferReader* in);
  Result<HandleResult> HandleClockAdvance(BufferReader* in);
  Result<HandleResult> HandleRangeExtract(BufferReader* in);
  Result<HandleResult> HandleRangeMigrate(BufferReader* in);
  Result<HandleResult> HandleRoutingUpdate(BufferReader* in);

  /// Rebuilds `shard` at [new_begin, new_end), preserving the overlap with
  /// the old bounds and filling the rest from this epoch's staged ranges
  /// (zero where nothing is staged — callers validate coverage first).
  void ResizeShardLocked(Shard* shard, uint64_t new_begin, uint64_t new_end,
                         uint64_t epoch);

  int id_;
  const UdfRegistry* udfs_;
  mutable std::mutex mu_;
  std::map<int, Shard> shards_;
  // Monotonic write clock feeding Shard::row_versions (mu_ held).
  uint64_t mutation_clock_ = 0;
  // Published snapshots, oldest first, at most kRetainedSnapshots.
  std::vector<ModelSnapshot> snapshots_;
  std::map<std::pair<int, uint32_t>, Replica> replicas_;
  std::map<int, ClientDedup> dedup_;  ///< client id -> applied seqs
  uint64_t dedup_hits_ = 0;
  // Per-worker clocks of the consistency controller (DESIGN.md §11); one
  // slot per worker, sized by InitWorkerClocks. Durable: checkpointed with
  // the shards and dropped/restored with them on crash recovery.
  std::vector<uint64_t> worker_clocks_;
  // Wire filters. filters_ is written once at wiring time (SetFilterConfig,
  // before traffic — same discipline as SetMetrics); keycache_ has its own
  // mutex and is cleared by DropAllState (soft state: clients fault entries
  // back in through the miss protocol after recovery).
  FilterConfig filters_;
  FilterChain chain_;
  ServerKeyCache keycache_;
  bool crashed_ = false;
  // Elastic membership (DESIGN.md §12). routing_epoch_ is the newest routing
  // table version this server has enforced; tracked requests stamped with an
  // older nonzero epoch are rejected (`routing stale`). fenced_ suspends the
  // tracked data plane mid-migration; decommissioned_ is permanent.
  uint64_t routing_epoch_ = 0;
  bool fenced_ = false;
  bool decommissioned_ = false;
  // (epoch, matrix, begin) -> extracted state staged by kRangeMigrate.
  std::map<std::tuple<uint64_t, int, uint64_t>, StagedRange> staged_;
  size_t stats_capacity_ = 0;  ///< 0 = access statistics off
  std::unique_ptr<AccessStats> stats_;
  // Observability (SetMetrics). `active_` counts Handle calls currently in
  // flight on this server — sampled at request arrival as the queue depth.
  // Histogram pointers are resolved once at wiring time so the per-request
  // cost is a direct Histogram::Record, not a registry lookup (pointers
  // stay valid across MetricsRegistry::Reset — see GetOrCreateHistogram).
  std::atomic<MetricsRegistry*> metrics_{nullptr};
  std::atomic<int> active_{0};
  std::vector<Histogram*> handle_us_hists_;  ///< per opcode, + 1 for unknown
  Histogram* queue_depth_hist_ = nullptr;
};

}  // namespace ps2
