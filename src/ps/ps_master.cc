#include "ps/ps_master.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"

namespace ps2 {

PsMaster::PsMaster(Cluster* cluster) : cluster_(cluster) {
  PS2_CHECK(cluster != nullptr);
  const int n = cluster->num_servers();
  servers_.reserve(n);
  for (int s = 0; s < n; ++s) {
    servers_.push_back(std::make_unique<PsServer>(s, &udfs_));
    servers_.back()->SetMetrics(&cluster->metrics());
    servers_.back()->SetFilterConfig(cluster->spec().filters);
  }
  hotspot_ = std::make_unique<HotspotManager>(this);
  snapshots_ = std::make_unique<ModelSnapshotManager>(this);
}

PsMaster::~PsMaster() = default;

Result<int> PsMaster::CreateMatrixInternal(MatrixOptions options,
                                           int rotation) {
  if (options.dim == 0) return Status::InvalidArgument("dim must be > 0");
  if (options.reserve_rows == 0) {
    return Status::InvalidArgument("reserve_rows must be > 0");
  }
  int servers = options.num_servers > 0
                    ? std::min(options.num_servers, num_servers())
                    : num_servers();
  // Never split an alignment unit, and don't spread a tiny matrix over more
  // servers than it has units.
  uint64_t units = options.dim / std::max<uint64_t>(1, options.alignment);
  servers = static_cast<int>(
      std::min<uint64_t>(static_cast<uint64_t>(servers), std::max<uint64_t>(units, 1)));

  MatrixMeta meta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    meta.id = next_matrix_id_++;
  }
  meta.name = options.name;
  meta.dim = options.dim;
  meta.num_rows = options.reserve_rows;
  meta.storage = options.storage;
  PS2_ASSIGN_OR_RETURN(
      meta.partitioner,
      ColumnPartitioner::Make(options.dim, servers, options.alignment,
                              rotation % servers));

  for (int s = 0; s < servers; ++s) {
    PS2_RETURN_NOT_OK(servers_[s]->CreateMatrixShard(meta));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    matrices_.emplace(meta.id, MatrixState{meta, 1});
  }
  cluster_->metrics().Add("ps.matrices_created", 1);
  return meta.id;
}

Result<int> PsMaster::CreateMatrix(const MatrixOptions& options) {
  // Each independently created matrix gets its own rotation, so two equal
  // shaped matrices do NOT share server placement (paper Fig. 4's trap).
  int rotation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rotation = next_matrix_id_;
  }
  return CreateMatrixInternal(options, rotation);
}

Result<int> PsMaster::CreateAlignedMatrix(int base_matrix_id,
                                          const std::string& name,
                                          uint32_t reserve_rows) {
  PS2_ASSIGN_OR_RETURN(MatrixMeta base, GetMeta(base_matrix_id));
  MatrixOptions options;
  options.name = name;
  options.dim = base.dim;
  options.reserve_rows = reserve_rows;
  options.storage = base.storage;
  options.alignment = base.partitioner.alignment();
  options.num_servers = base.partitioner.num_servers();
  return CreateMatrixInternal(options, base.partitioner.rotation());
}

Result<MatrixMeta> PsMaster::GetMeta(int matrix_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = matrices_.find(matrix_id);
  if (it == matrices_.end()) return Status::NotFound("unknown matrix id");
  return it->second.meta;
}

Result<RowRef> PsMaster::AllocateRow(int matrix_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = matrices_.find(matrix_id);
  if (it == matrices_.end()) return Status::NotFound("unknown matrix id");
  MatrixState& state = it->second;
  if (state.next_free_row >= state.meta.num_rows) {
    return Status::OutOfRange("matrix row reservation exhausted");
  }
  RowRef ref;
  ref.matrix_id = matrix_id;
  ref.row = state.next_free_row++;
  return ref;
}

Status PsMaster::FreeMatrix(int matrix_id) {
  MatrixMeta meta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = matrices_.find(matrix_id);
    if (it == matrices_.end()) return Status::NotFound("unknown matrix id");
    meta = it->second.meta;
    matrices_.erase(it);
  }
  for (int s = 0; s < meta.partitioner.num_servers(); ++s) {
    PS2_RETURN_NOT_OK(servers_[s]->FreeMatrixShard(matrix_id));
  }
  return Status::OK();
}

Status PsMaster::CheckpointAll() {
  const ClusterSpec& spec = cluster_->spec();
  uint64_t max_bytes = 0;
  for (auto& server : servers_) {
    std::vector<uint8_t> image = server->SerializeState();
    max_bytes = std::max<uint64_t>(max_bytes, image.size());
    checkpoint_store_.Put(server->id(), std::move(image));
  }
  // Servers write in parallel; the slowest bounds the stall.
  cluster_->AdvanceClock(spec.rpc_latency_s +
                         static_cast<double>(max_bytes) /
                             spec.io_bandwidth_bps);
  cluster_->metrics().Add("ps.checkpoints", 1);
  return Status::OK();
}

Result<SimTime> PsMaster::RecoverServerInternal(int server_id) {
  PsServer* server = servers_[server_id].get();
  server->DropAllState();
  uint64_t restored_bytes = 0;
  // Single-lock check-and-fetch: Has()-then-Get() would race a concurrent
  // CheckpointAll between the two calls.
  if (std::optional<std::vector<uint8_t>> image =
          checkpoint_store_.TryGet(server_id)) {
    restored_bytes = image->size();
    PS2_RETURN_NOT_OK(server->RestoreState(*image));
  }
  server->Revive();
  // The recovered process lost its replica slots and bumped no epoch, so
  // client HotRowCaches would serve stale rows past staleness_epochs.
  // Recreate the slots and force a full sync + cache refresh.
  PS2_RETURN_NOT_OK(hotspot_->OnServerRecovered(server_id));
  // Snapshots are process-local soft state: republish the current serving
  // epoch from the restored image so pinned readers keep a consistent cut.
  PS2_RETURN_NOT_OK(snapshots_->OnServerRecovered(server_id));
  cluster_->metrics().Add("ps.server_failures", 1);
  const ClusterSpec& spec = cluster_->spec();
  // Failure detection (a heartbeat interval), process restart, image load.
  return 10 * spec.rpc_latency_s +
         static_cast<double>(restored_bytes) / spec.io_bandwidth_bps;
}

Status PsMaster::KillAndRecoverServer(int server_id) {
  if (server_id < 0 || server_id >= num_servers()) {
    return Status::InvalidArgument("bad server id");
  }
  std::lock_guard<std::mutex> lock(recovery_mu_);
  servers_[server_id]->Crash();
  PS2_ASSIGN_OR_RETURN(SimTime stall, RecoverServerInternal(server_id));
  cluster_->AdvanceClock(stall);
  return Status::OK();
}

Result<SimTime> PsMaster::RecoverCrashedServer(int server_id) {
  if (server_id < 0 || server_id >= num_servers()) {
    return Status::InvalidArgument("bad server id");
  }
  std::lock_guard<std::mutex> lock(recovery_mu_);
  // Another task's retry loop may have recovered it while we waited on the
  // lock; recovery then costs this caller nothing extra.
  if (!servers_[server_id]->crashed()) return SimTime{0.0};
  return RecoverServerInternal(server_id);
}

uint64_t PsMaster::TotalDedupHits() const {
  uint64_t total = 0;
  for (const auto& server : servers_) total += server->dedup_hits();
  return total;
}

}  // namespace ps2
