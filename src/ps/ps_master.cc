#include "ps/ps_master.h"

#include <algorithm>
#include <optional>

#include "common/logging.h"
#include "membership/membership_manager.h"

namespace ps2 {

PsMaster::PsMaster(Cluster* cluster) : cluster_(cluster) {
  PS2_CHECK(cluster != nullptr);
  // Allocate the whole elastic fleet up front (DESIGN.md §12): servers
  // beyond spec.num_servers exist as idle processes so a later AddServer is
  // a membership change, not an object-lifetime event — client seq streams
  // and per-server metric tables stay stable across joins. With
  // max_servers unset the fleet IS the initial set and nothing changes.
  const int fleet = cluster->spec().EffectiveMaxServers();
  const int n = cluster->num_servers();
  servers_.reserve(fleet);
  for (int s = 0; s < fleet; ++s) {
    servers_.push_back(std::make_unique<PsServer>(s, &udfs_));
    servers_.back()->SetMetrics(&cluster->metrics());
    servers_.back()->SetFilterConfig(cluster->spec().filters);
  }
  active_.reserve(n);
  for (int s = 0; s < n; ++s) active_.push_back(s);
  retired_.assign(static_cast<size_t>(fleet), false);
  hotspot_ = std::make_unique<HotspotManager>(this);
  snapshots_ = std::make_unique<ModelSnapshotManager>(this);
  membership_ = std::make_unique<MembershipManager>(this);
}

PsMaster::~PsMaster() = default;

std::vector<int> PsMaster::active_servers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_;
}

int PsMaster::num_active_servers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(active_.size());
}

bool PsMaster::is_server_active(int server_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::binary_search(active_.begin(), active_.end(), server_id);
}

uint64_t PsMaster::routing_epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return routing_epoch_;
}

Result<int> PsMaster::AddServer() { return membership_->AddServer(); }

Status PsMaster::RemoveServer(int server_id) {
  return membership_->RemoveServer(server_id);
}

Result<bool> PsMaster::RebalanceOnce(double min_skew) {
  return membership_->RebalanceOnce(min_skew);
}

Result<int> PsMaster::ClaimableSpare() const {
  std::lock_guard<std::mutex> lock(mu_);
  for (int s = 0; s < static_cast<int>(servers_.size()); ++s) {
    if (retired_[static_cast<size_t>(s)]) continue;
    if (std::binary_search(active_.begin(), active_.end(), s)) continue;
    return s;
  }
  return Status::FailedPrecondition(
      "no spare server slots in the fleet (raise max_servers)");
}

std::vector<MatrixMeta> PsMaster::AllMetas() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MatrixMeta> metas;
  metas.reserve(matrices_.size());
  for (const auto& [id, state] : matrices_) metas.push_back(state.meta);
  return metas;
}

void PsMaster::CommitRouting(const std::vector<MatrixMeta>& metas,
                             std::vector<int> new_active, uint64_t epoch,
                             int retired_server) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const MatrixMeta& meta : metas) {
    auto it = matrices_.find(meta.id);
    if (it == matrices_.end()) continue;  // freed mid-migration
    it->second.meta.partitioner = meta.partitioner;
    it->second.meta.routing_epoch = epoch;
  }
  active_ = std::move(new_active);
  if (retired_server >= 0 &&
      retired_server < static_cast<int>(retired_.size())) {
    retired_[static_cast<size_t>(retired_server)] = true;
  }
  routing_epoch_ = epoch;
  cluster_->metrics().Set("ps.migration_epoch", epoch);
}

Result<int> PsMaster::CreateMatrixInternal(MatrixOptions options,
                                           int rotation) {
  if (options.dim == 0) return Status::InvalidArgument("dim must be > 0");
  if (options.reserve_rows == 0) {
    return Status::InvalidArgument("reserve_rows must be > 0");
  }
  // Partition count is fixed for the matrix lifetime at the FLEET scale
  // (DESIGN.md §12): an elastic cluster that starts on 2 of 8 slots gets 8
  // partitions so later joins take whole partitions instead of re-splitting
  // ranges. With max_servers unset the fleet equals the active set and this
  // reduces bit-exactly to the pre-elastic one-partition-per-server layout.
  int partitions = options.num_servers > 0
                       ? std::min(options.num_servers, num_servers())
                       : num_servers();
  // Never split an alignment unit, and don't spread a tiny matrix over more
  // partitions than it has units.
  uint64_t units = options.dim / std::max<uint64_t>(1, options.alignment);
  partitions = static_cast<int>(std::min<uint64_t>(
      static_cast<uint64_t>(partitions), std::max<uint64_t>(units, 1)));

  MatrixMeta meta;
  std::vector<int> active;
  {
    std::lock_guard<std::mutex> lock(mu_);
    meta.id = next_matrix_id_++;
    meta.routing_epoch = routing_epoch_;
    active = active_;
  }
  meta.name = options.name;
  meta.dim = options.dim;
  meta.num_rows = options.reserve_rows;
  meta.storage = options.storage;
  if (options.home_server >= 0) {
    // Single-partition matrix pinned to one home (per-key management,
    // DESIGN.md §13). The home must currently serve ranges; relocation
    // later moves the whole partition via the migration path.
    const bool active_home =
        std::find(active.begin(), active.end(), options.home_server) !=
        active.end();
    if (!active_home) {
      return Status::InvalidArgument("home_server is not an active server");
    }
    PS2_ASSIGN_OR_RETURN(
        meta.partitioner,
        ColumnPartitioner::MakeElastic(options.dim, {options.home_server}, 1,
                                       options.alignment, 0));
    return RegisterMatrix(std::move(meta));
  }
  PS2_ASSIGN_OR_RETURN(
      meta.partitioner,
      ColumnPartitioner::MakeElastic(options.dim, active, partitions,
                                     options.alignment,
                                     rotation % partitions));
  return RegisterMatrix(std::move(meta));
}

Result<int> PsMaster::RegisterMatrix(MatrixMeta meta) {
  for (auto& server : servers_) {
    uint64_t begin = 0, end = 0;
    if (!meta.partitioner.ServerSpan(server->id(), &begin, &end)) continue;
    PS2_RETURN_NOT_OK(server->CreateMatrixShard(meta));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    matrices_.emplace(meta.id, MatrixState{meta, 1});
  }
  cluster_->metrics().Add("ps.matrices_created", 1);
  return meta.id;
}

Result<int> PsMaster::CreateMatrix(const MatrixOptions& options) {
  // Each independently created matrix gets its own rotation, so two equal
  // shaped matrices do NOT share server placement (paper Fig. 4's trap).
  int rotation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rotation = next_matrix_id_;
  }
  return CreateMatrixInternal(options, rotation);
}

Result<int> PsMaster::CreateAlignedMatrix(int base_matrix_id,
                                          const std::string& name,
                                          uint32_t reserve_rows) {
  if (reserve_rows == 0) {
    return Status::InvalidArgument("reserve_rows must be > 0");
  }
  PS2_ASSIGN_OR_RETURN(MatrixMeta base, GetMeta(base_matrix_id));
  // Copy the base partitioner verbatim rather than recomputing it: after a
  // migration (or a rebalancer move) the base's assignment is no longer the
  // canonical block layout, and co-location — the whole point of alignment —
  // must track wherever the base's partitions actually live now.
  MatrixMeta meta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    meta.id = next_matrix_id_++;
  }
  meta.name = name;
  meta.dim = base.dim;
  meta.num_rows = reserve_rows;
  meta.storage = base.storage;
  meta.partitioner = base.partitioner;
  meta.routing_epoch = base.routing_epoch;
  return RegisterMatrix(std::move(meta));
}

Result<MatrixMeta> PsMaster::GetMeta(int matrix_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = matrices_.find(matrix_id);
  if (it == matrices_.end()) return Status::NotFound("unknown matrix id");
  return it->second.meta;
}

Result<RowRef> PsMaster::AllocateRow(int matrix_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = matrices_.find(matrix_id);
  if (it == matrices_.end()) return Status::NotFound("unknown matrix id");
  MatrixState& state = it->second;
  if (state.next_free_row >= state.meta.num_rows) {
    return Status::OutOfRange("matrix row reservation exhausted");
  }
  RowRef ref;
  ref.matrix_id = matrix_id;
  ref.row = state.next_free_row++;
  return ref;
}

Status PsMaster::FreeMatrix(int matrix_id) {
  MatrixMeta meta;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = matrices_.find(matrix_id);
    if (it == matrices_.end()) return Status::NotFound("unknown matrix id");
    meta = it->second.meta;
    matrices_.erase(it);
  }
  // Free wherever the shard actually lives — post-migration that is the
  // partitioner's assignment, not servers 0..P-1.
  for (auto& server : servers_) {
    if (!server->HasMatrix(matrix_id)) continue;
    PS2_RETURN_NOT_OK(server->FreeMatrixShard(matrix_id));
  }
  return Status::OK();
}

Status PsMaster::CheckpointAll() {
  const ClusterSpec& spec = cluster_->spec();
  uint64_t max_bytes = 0;
  for (auto& server : servers_) {
    std::vector<uint8_t> image = server->SerializeState();
    max_bytes = std::max<uint64_t>(max_bytes, image.size());
    checkpoint_store_.Put(server->id(), std::move(image));
  }
  // Servers write in parallel; the slowest bounds the stall.
  cluster_->AdvanceClock(spec.rpc_latency_s +
                         static_cast<double>(max_bytes) /
                             spec.io_bandwidth_bps);
  cluster_->metrics().Add("ps.checkpoints", 1);
  return Status::OK();
}

Result<SimTime> PsMaster::RecoverServerInternal(int server_id) {
  PsServer* server = servers_[server_id].get();
  const ClusterSpec& cluster_spec = cluster_->spec();
  if (server->decommissioned()) {
    // A decommissioned server holds no ranges — only its dedup table, which
    // survives the crash in our model (it is what answers applied-probes).
    // Just restart the process; restoring a pre-decommission image would
    // resurrect migrated state.
    server->Revive();
    cluster_->metrics().Add("ps.server_failures", 1);
    return 10 * cluster_spec.rpc_latency_s;
  }
  server->DropAllState();
  uint64_t restored_bytes = 0;
  // Single-lock check-and-fetch: Has()-then-Get() would race a concurrent
  // CheckpointAll between the two calls.
  if (std::optional<std::vector<uint8_t>> image =
          checkpoint_store_.TryGet(server_id)) {
    restored_bytes = image->size();
    PS2_RETURN_NOT_OK(server->RestoreState(*image));
  }
  // The image's shard bounds may predate the latest committed migration
  // (checkpoint taken before the epoch bump). The routing table is the
  // authority: reconcile every shard to the server's current span and
  // re-stamp the server's epoch so it resumes rejecting stale traffic.
  uint64_t epoch;
  std::vector<MatrixMeta> metas;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = routing_epoch_;
    metas.reserve(matrices_.size());
    for (const auto& [id, state] : matrices_) metas.push_back(state.meta);
  }
  uint64_t reconciled = 0;
  for (const MatrixMeta& meta : metas) {
    PS2_ASSIGN_OR_RETURN(bool changed, server->ReconcileShardBounds(meta));
    if (changed) reconciled += 1;
  }
  if (reconciled > 0) {
    cluster_->metrics().Add("ps.migration_reconciles", reconciled);
  }
  server->SetRoutingEpoch(epoch);
  server->Revive();
  // The recovered process lost its replica slots and bumped no epoch, so
  // client HotRowCaches would serve stale rows past staleness_epochs.
  // Recreate the slots and force a full sync + cache refresh.
  PS2_RETURN_NOT_OK(hotspot_->OnServerRecovered(server_id));
  // Snapshots are process-local soft state: republish the current serving
  // epoch from the restored image so pinned readers keep a consistent cut.
  PS2_RETURN_NOT_OK(snapshots_->OnServerRecovered(server_id));
  cluster_->metrics().Add("ps.server_failures", 1);
  const ClusterSpec& spec = cluster_->spec();
  // Failure detection (a heartbeat interval), process restart, image load.
  return 10 * spec.rpc_latency_s +
         static_cast<double>(restored_bytes) / spec.io_bandwidth_bps;
}

Status PsMaster::KillAndRecoverServer(int server_id) {
  if (server_id < 0 || server_id >= num_servers()) {
    return Status::InvalidArgument("bad server id");
  }
  std::lock_guard<std::mutex> lock(recovery_mu_);
  servers_[server_id]->Crash();
  PS2_ASSIGN_OR_RETURN(SimTime stall, RecoverServerInternal(server_id));
  cluster_->AdvanceClock(stall);
  return Status::OK();
}

Result<SimTime> PsMaster::RecoverCrashedServer(int server_id) {
  if (server_id < 0 || server_id >= num_servers()) {
    return Status::InvalidArgument("bad server id");
  }
  std::lock_guard<std::mutex> lock(recovery_mu_);
  // Another task's retry loop may have recovered it while we waited on the
  // lock; recovery then costs this caller nothing extra.
  if (!servers_[server_id]->crashed()) return SimTime{0.0};
  return RecoverServerInternal(server_id);
}

uint64_t PsMaster::TotalDedupHits() const {
  uint64_t total = 0;
  for (const auto& server : servers_) total += server->dedup_hits();
  return total;
}

}  // namespace ps2
