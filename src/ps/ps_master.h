#pragma once

// PS-master: the coordinator-side module that manages parameter servers
// (paper §5.1). It owns server lifetime, the matrix registry and routing
// metadata, hands out rows for `derive`, and drives checkpoint / recovery.
//
// In PS2 the parameter servers run as a *separate application* from Spark;
// here PsMaster attaches to an existing Cluster (using its spec, clock and
// metrics) without touching the dataflow engine — mirroring the paper's
// "no hacking of Spark's core" design point.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/cluster.h"
#include "hotspot/hotspot_manager.h"
#include "ps/checkpoint.h"
#include "ps/ps_server.h"
#include "ps/ps_types.h"
#include "serving/snapshot.h"

namespace ps2 {

class MembershipManager;

/// \brief Options for creating a distributed matrix (a co-located DCV group).
struct MatrixOptions {
  std::string name = "matrix";
  uint64_t dim = 0;
  /// Rows pre-allocated for `derive` (the paper's k, default "usually small,
  /// for example ten").
  uint32_t reserve_rows = 10;
  MatrixStorage storage = MatrixStorage::kDense;
  /// Partition boundaries land on multiples of this (GBDT: histogram size).
  uint64_t alignment = 1;
  /// Servers to spread over; 0 = all servers in the cluster.
  int num_servers = 0;
  /// When >= 0, the matrix is NOT spread: it gets a single partition homed
  /// on this server (per-key parameter management, DESIGN.md §13). Such a
  /// matrix can later be relocated whole via
  /// MembershipManager::RelocateMatrices. Overrides num_servers.
  int home_server = -1;
};

/// \brief Owns the PS-servers, matrix metadata and fault-tolerance machinery.
class PsMaster {
 public:
  explicit PsMaster(Cluster* cluster);
  ~PsMaster();

  Cluster* cluster() const { return cluster_; }
  UdfRegistry* udfs() { return &udfs_; }
  /// Allocated fleet size (ClusterSpec::EffectiveMaxServers()): every server
  /// process that exists, active or not. Per-server tables (client seq
  /// streams, traffic vectors) are sized by this.
  int num_servers() const { return static_cast<int>(servers_.size()); }
  PsServer* server(int s) { return servers_[s].get(); }

  // ---- Elastic membership (DESIGN.md §12) ----

  /// Servers currently serving ranges, ascending. Starts as
  /// {0..spec.num_servers-1}; AddServer/RemoveServer reshape it.
  std::vector<int> active_servers() const;
  int num_active_servers() const;
  bool is_server_active(int server_id) const;
  /// Current routing-table version; bumped once per committed migration.
  uint64_t routing_epoch() const;

  /// Activates a spare fleet slot and migrates it a balanced share of every
  /// matrix's partitions. Fails when no spare (non-retired) server exists.
  Result<int> AddServer();
  /// Migrates `server_id`'s ranges to the remaining active servers, then
  /// decommissions it (it keeps answering dedup probes, nothing else).
  Status RemoveServer(int server_id);
  /// One step of the skew-healing rebalancer: when busy-time skew across
  /// active servers exceeds `min_skew` (max/mean), moves one edge partition
  /// per matrix off the busiest server. Returns whether a move happened.
  Result<bool> RebalanceOnce(double min_skew = 1.25);

  MembershipManager* membership() const { return membership_.get(); }

  /// Hot-parameter management (statistics, replication, client caches).
  /// Always constructed; a no-op until HotspotManager::Enable.
  HotspotManager* hotspot() const { return hotspot_.get(); }

  /// Serving snapshot epochs (serving/, DESIGN.md §10). Always constructed;
  /// costs nothing until the first Publish.
  ModelSnapshotManager* serving_snapshots() const { return snapshots_.get(); }

  /// Creates a matrix distributed over the servers. Row 0 is implicitly
  /// allocated (it is the DCV the caller asked for); further rows are handed
  /// out by AllocateRow. Independently created matrices receive different
  /// partition rotations, so they are NOT co-located with each other.
  Result<int> CreateMatrix(const MatrixOptions& options);

  /// Creates a matrix co-located with `base_matrix_id` (same partitioner,
  /// same rotation). Used when a DCV group outgrows its reserved rows.
  Result<int> CreateAlignedMatrix(int base_matrix_id, const std::string& name,
                                  uint32_t reserve_rows);

  Result<MatrixMeta> GetMeta(int matrix_id) const;

  /// Hands out the next free row of `matrix_id` (the `derive` operator);
  /// returns OutOfRange when the reservation is exhausted.
  Result<RowRef> AllocateRow(int matrix_id);

  /// Frees a matrix on all servers.
  Status FreeMatrix(int matrix_id);

  // ---- Fault tolerance (paper §5.3, "Server Failure") ----

  /// Checkpoints every server to the external store, charging IO time.
  Status CheckpointAll();

  /// Simulates a server crash + recovery: state dropped, new server process
  /// started, latest checkpoint restored (or zeros if none). Charges the
  /// detection + restore time to the coordinator clock and refreshes the
  /// hotspot plane (replicas + client caches) on the recovered server.
  Status KillAndRecoverServer(int server_id);

  /// Recovers a server that an injected message fault crashed mid-stage
  /// (PsServer::crashed()). Idempotent and safe from concurrent task
  /// threads: the first caller performs drop + restore + Revive, later
  /// callers find the server alive and return 0. Returns the recovery
  /// stall in virtual seconds — charged to the *calling task's* traffic,
  /// not the coordinator clock (pool threads must not advance the clock
  /// mid-stage).
  Result<SimTime> RecoverCrashedServer(int server_id);

  /// Hands out a unique client id for RpcHeader tracking (dedup tables are
  /// keyed by it, so every PsClient must have its own).
  int AllocateClientId() { return next_client_id_.fetch_add(1); }

  /// Sum of dedup-suppressed retries across all servers.
  uint64_t TotalDedupHits() const;

  const CheckpointStore& checkpoints() const { return checkpoint_store_; }

 private:
  friend class MembershipManager;

  struct MatrixState {
    MatrixMeta meta;
    uint32_t next_free_row = 1;  // row 0 belongs to the creating DCV
  };

  Result<int> CreateMatrixInternal(MatrixOptions options, int rotation);

  /// Registers `meta` (id already assigned) and creates its shards on every
  /// covered server. Shared by CreateMatrixInternal and CreateAlignedMatrix.
  Result<int> RegisterMatrix(MatrixMeta meta);

  /// Snapshot of all matrix metas, for migration planning.
  std::vector<MatrixMeta> AllMetas() const;

  /// Lowest fleet slot that is neither active nor retired — the join
  /// candidate. FailedPrecondition when the fleet is exhausted.
  Result<int> ClaimableSpare() const;

  /// Installs migrated routing state: new partitioner snapshots (stamped
  /// with `epoch`), the new active list, and the new routing epoch — in one
  /// critical section, and only after every involved server committed, so a
  /// meta a client fetches never stamps an epoch ahead of the servers'.
  void CommitRouting(const std::vector<MatrixMeta>& metas,
                     std::vector<int> new_active, uint64_t epoch,
                     int retired_server);

  /// Shared drop + restore + revive + hotspot-refresh path for both
  /// recovery entry points. Returns the recovery stall (not yet charged).
  Result<SimTime> RecoverServerInternal(int server_id);

  Cluster* cluster_;
  UdfRegistry udfs_;
  std::vector<std::unique_ptr<PsServer>> servers_;
  std::unique_ptr<HotspotManager> hotspot_;
  std::unique_ptr<ModelSnapshotManager> snapshots_;
  std::unique_ptr<MembershipManager> membership_;
  CheckpointStore checkpoint_store_;

  mutable std::mutex mu_;
  std::map<int, MatrixState> matrices_;
  /// Active server ids, ascending (guarded by mu_).
  std::vector<int> active_;
  /// Decommissioned fleet slots; they never rejoin (guarded by mu_).
  std::vector<bool> retired_;
  /// Routing-table version (guarded by mu_); 0 until the first migration.
  uint64_t routing_epoch_ = 0;
  int next_matrix_id_ = 0;
  std::atomic<int> next_client_id_{0};
  /// Serializes recovery so concurrent retry loops hitting the same crashed
  /// server restore its image exactly once.
  std::mutex recovery_mu_;
};

}  // namespace ps2
