#pragma once

// PS-master: the coordinator-side module that manages parameter servers
// (paper §5.1). It owns server lifetime, the matrix registry and routing
// metadata, hands out rows for `derive`, and drives checkpoint / recovery.
//
// In PS2 the parameter servers run as a *separate application* from Spark;
// here PsMaster attaches to an existing Cluster (using its spec, clock and
// metrics) without touching the dataflow engine — mirroring the paper's
// "no hacking of Spark's core" design point.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "dataflow/cluster.h"
#include "hotspot/hotspot_manager.h"
#include "ps/checkpoint.h"
#include "ps/ps_server.h"
#include "ps/ps_types.h"
#include "serving/snapshot.h"

namespace ps2 {

/// \brief Options for creating a distributed matrix (a co-located DCV group).
struct MatrixOptions {
  std::string name = "matrix";
  uint64_t dim = 0;
  /// Rows pre-allocated for `derive` (the paper's k, default "usually small,
  /// for example ten").
  uint32_t reserve_rows = 10;
  MatrixStorage storage = MatrixStorage::kDense;
  /// Partition boundaries land on multiples of this (GBDT: histogram size).
  uint64_t alignment = 1;
  /// Servers to spread over; 0 = all servers in the cluster.
  int num_servers = 0;
};

/// \brief Owns the PS-servers, matrix metadata and fault-tolerance machinery.
class PsMaster {
 public:
  explicit PsMaster(Cluster* cluster);
  ~PsMaster();

  Cluster* cluster() const { return cluster_; }
  UdfRegistry* udfs() { return &udfs_; }
  int num_servers() const { return static_cast<int>(servers_.size()); }
  PsServer* server(int s) { return servers_[s].get(); }

  /// Hot-parameter management (statistics, replication, client caches).
  /// Always constructed; a no-op until HotspotManager::Enable.
  HotspotManager* hotspot() const { return hotspot_.get(); }

  /// Serving snapshot epochs (serving/, DESIGN.md §10). Always constructed;
  /// costs nothing until the first Publish.
  ModelSnapshotManager* serving_snapshots() const { return snapshots_.get(); }

  /// Creates a matrix distributed over the servers. Row 0 is implicitly
  /// allocated (it is the DCV the caller asked for); further rows are handed
  /// out by AllocateRow. Independently created matrices receive different
  /// partition rotations, so they are NOT co-located with each other.
  Result<int> CreateMatrix(const MatrixOptions& options);

  /// Creates a matrix co-located with `base_matrix_id` (same partitioner,
  /// same rotation). Used when a DCV group outgrows its reserved rows.
  Result<int> CreateAlignedMatrix(int base_matrix_id, const std::string& name,
                                  uint32_t reserve_rows);

  Result<MatrixMeta> GetMeta(int matrix_id) const;

  /// Hands out the next free row of `matrix_id` (the `derive` operator);
  /// returns OutOfRange when the reservation is exhausted.
  Result<RowRef> AllocateRow(int matrix_id);

  /// Frees a matrix on all servers.
  Status FreeMatrix(int matrix_id);

  // ---- Fault tolerance (paper §5.3, "Server Failure") ----

  /// Checkpoints every server to the external store, charging IO time.
  Status CheckpointAll();

  /// Simulates a server crash + recovery: state dropped, new server process
  /// started, latest checkpoint restored (or zeros if none). Charges the
  /// detection + restore time to the coordinator clock and refreshes the
  /// hotspot plane (replicas + client caches) on the recovered server.
  Status KillAndRecoverServer(int server_id);

  /// Recovers a server that an injected message fault crashed mid-stage
  /// (PsServer::crashed()). Idempotent and safe from concurrent task
  /// threads: the first caller performs drop + restore + Revive, later
  /// callers find the server alive and return 0. Returns the recovery
  /// stall in virtual seconds — charged to the *calling task's* traffic,
  /// not the coordinator clock (pool threads must not advance the clock
  /// mid-stage).
  Result<SimTime> RecoverCrashedServer(int server_id);

  /// Hands out a unique client id for RpcHeader tracking (dedup tables are
  /// keyed by it, so every PsClient must have its own).
  int AllocateClientId() { return next_client_id_.fetch_add(1); }

  /// Sum of dedup-suppressed retries across all servers.
  uint64_t TotalDedupHits() const;

  const CheckpointStore& checkpoints() const { return checkpoint_store_; }

 private:
  struct MatrixState {
    MatrixMeta meta;
    uint32_t next_free_row = 1;  // row 0 belongs to the creating DCV
  };

  Result<int> CreateMatrixInternal(MatrixOptions options, int rotation);

  /// Shared drop + restore + revive + hotspot-refresh path for both
  /// recovery entry points. Returns the recovery stall (not yet charged).
  Result<SimTime> RecoverServerInternal(int server_id);

  Cluster* cluster_;
  UdfRegistry udfs_;
  std::vector<std::unique_ptr<PsServer>> servers_;
  std::unique_ptr<HotspotManager> hotspot_;
  std::unique_ptr<ModelSnapshotManager> snapshots_;
  CheckpointStore checkpoint_store_;

  mutable std::mutex mu_;
  std::map<int, MatrixState> matrices_;
  int next_matrix_id_ = 0;
  std::atomic<int> next_client_id_{0};
  /// Serializes recovery so concurrent retry loops hitting the same crashed
  /// server restore its image exactly once.
  std::mutex recovery_mu_;
};

}  // namespace ps2
