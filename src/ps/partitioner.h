#pragma once

// Column-range partitioning of DCV matrices across parameter servers.
//
// A matrix of `num_rows` rows over logical dimension `dim` is split into
// `num_servers` contiguous column ranges; each server stores *all rows* of
// its range. This is the paper's column-partition strategy (§4.3): row
// access ops parallelize across servers, and column access ops between rows
// of the same matrix touch no other server.
//
// `alignment` forces range boundaries onto multiples of a unit (e.g. GBDT
// keeps each feature's histogram bins on one server by aligning to the
// histogram size).
//
// `rotation` shifts which server owns which range. Matrices created
// independently get different rotations, so equal-range partitions still
// land on *different* servers — exactly the "inefficient writing" of paper
// Fig. 4. `derive` inherits the base matrix's rotation, restoring
// co-location.

#include <cstdint>

#include "common/result.h"

namespace ps2 {

/// \brief Maps columns of a distributed matrix to servers.
class ColumnPartitioner {
 public:
  ColumnPartitioner() = default;

  static Result<ColumnPartitioner> Make(uint64_t dim, int num_servers,
                                        uint64_t alignment = 1,
                                        int rotation = 0);

  uint64_t dim() const { return dim_; }
  int num_servers() const { return num_servers_; }
  uint64_t alignment() const { return alignment_; }
  int rotation() const { return rotation_; }

  /// Half-open column range [RangeBegin(p), RangeEnd(p)) of partition p.
  /// Partitions are indexed 0..num_servers-1 in column order.
  uint64_t RangeBegin(int partition) const;
  uint64_t RangeEnd(int partition) const;
  uint64_t RangeWidth(int partition) const {
    return RangeEnd(partition) - RangeBegin(partition);
  }

  /// Server that stores partition p (applies the rotation).
  int ServerOfPartition(int partition) const {
    return (partition + rotation_) % num_servers_;
  }

  /// Partition containing column `col`.
  int PartitionOfColumn(uint64_t col) const;

  /// Server storing column `col`.
  int ServerOfColumn(uint64_t col) const {
    return ServerOfPartition(PartitionOfColumn(col));
  }

  /// True if `other` places every column on the same server as this.
  bool CoLocatedWith(const ColumnPartitioner& other) const;

 private:
  uint64_t dim_ = 0;
  int num_servers_ = 1;
  uint64_t alignment_ = 1;
  int rotation_ = 0;
  uint64_t units_ = 0;             // ceil(dim / alignment)
  uint64_t units_per_part_ = 0;    // ceil(units / num_servers)
};

}  // namespace ps2
