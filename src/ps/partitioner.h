#pragma once

// Column-range partitioning of DCV matrices across parameter servers.
//
// A matrix of `num_rows` rows over logical dimension `dim` is split into
// `num_partitions` contiguous column ranges; each owning server stores *all
// rows* of its ranges. This is the paper's column-partition strategy (§4.3):
// row access ops parallelize across servers, and column access ops between
// rows of the same matrix touch no other server.
//
// Since PR 9 (elastic membership, DESIGN.md §12) the partition *boundaries*
// are fixed at matrix creation and never move; only the partition→server
// `assignment` changes when servers join, leave, or the rebalancer sheds a
// hot range. Keeping boundaries immutable is what makes in-flight re-routing
// sound: a request built for partition p is never re-split, it is only
// re-addressed to p's new owner.
//
// `alignment` forces range boundaries onto multiples of a unit (e.g. GBDT
// keeps each feature's histogram bins on one server by aligning to the
// histogram size).
//
// `rotation` shifts which server owns which range. Matrices created
// independently get different rotations, so equal-range partitions still
// land on *different* servers — exactly the "inefficient writing" of paper
// Fig. 4. `derive` inherits the base matrix's rotation, restoring
// co-location.

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace ps2 {

/// \brief Maps columns of a distributed matrix to servers.
class ColumnPartitioner {
 public:
  ColumnPartitioner() = default;

  /// Classic static layout: one partition per server, owner (p+rotation)%n.
  /// Identical boundaries and placement to the pre-elastic partitioner.
  static Result<ColumnPartitioner> Make(uint64_t dim, int num_servers,
                                        uint64_t alignment = 1,
                                        int rotation = 0);

  /// Elastic layout: `num_partitions` fixed ranges block-assigned to the
  /// sorted `active` server list. With B = min(|active|, num_partitions),
  /// partition p goes to active[(p*B/num_partitions + rotation) % B] —
  /// contiguous runs of partitions per server, and when |active| ==
  /// num_partitions this reduces exactly to Make()'s (p+rotation)%n.
  static Result<ColumnPartitioner> MakeElastic(uint64_t dim,
                                               const std::vector<int>& active,
                                               int num_partitions,
                                               uint64_t alignment = 1,
                                               int rotation = 0);

  /// The block assignment MakeElastic computes, as a standalone helper so
  /// the membership planner can diff old vs new without building a full
  /// partitioner. `active` must be sorted and non-empty.
  static std::vector<int> BlockAssignment(const std::vector<int>& active,
                                          int num_partitions, int rotation);

  /// Copy of this partitioner with an explicit partition→server assignment
  /// (the rebalancer's boundary nudges). Each server's partitions must form
  /// one contiguous run so shards stay single-range.
  Result<ColumnPartitioner> WithAssignment(std::vector<int> assignment) const;

  uint64_t dim() const { return dim_; }
  int num_partitions() const { return num_partitions_; }
  /// Legacy name for the partition count (pre-elastic code indexed servers
  /// and partitions interchangeably; every surviving caller means
  /// "partition count").
  int num_servers() const { return num_partitions_; }
  uint64_t alignment() const { return alignment_; }
  int rotation() const { return rotation_; }
  const std::vector<int>& assignment() const { return assignment_; }

  /// Half-open column range [RangeBegin(p), RangeEnd(p)) of partition p.
  /// Partitions are indexed 0..num_partitions-1 in column order.
  uint64_t RangeBegin(int partition) const;
  uint64_t RangeEnd(int partition) const;
  uint64_t RangeWidth(int partition) const {
    return RangeEnd(partition) - RangeBegin(partition);
  }

  /// Server that stores partition p.
  int ServerOfPartition(int partition) const;

  /// Partition containing column `col`.
  int PartitionOfColumn(uint64_t col) const;

  /// Server storing column `col`.
  int ServerOfColumn(uint64_t col) const {
    return ServerOfPartition(PartitionOfColumn(col));
  }

  /// Union column span [begin, end) of the partitions `server` owns.
  /// Returns false if the server owns nothing. The contiguity invariant
  /// guarantees the span contains exactly the owned partitions.
  bool ServerSpan(int server, uint64_t* begin, uint64_t* end) const;

  /// True if `other` places every column on the same server as this.
  bool CoLocatedWith(const ColumnPartitioner& other) const;

 private:
  uint64_t dim_ = 0;
  int num_partitions_ = 1;
  uint64_t alignment_ = 1;
  int rotation_ = 0;
  uint64_t units_ = 0;             // ceil(dim / alignment)
  uint64_t units_per_part_ = 0;    // ceil(units / num_partitions)
  std::vector<int> assignment_;    // partition -> server id
};

}  // namespace ps2
