#include "ps/checkpoint.h"

namespace ps2 {

uint64_t CheckpointStore::Put(int server_id, std::vector<uint8_t> image) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t bytes = image.size();
  images_[server_id] = std::move(image);
  ++puts_;
  return bytes;
}

std::vector<uint8_t> CheckpointStore::Get(int server_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = images_.find(server_id);
  return it == images_.end() ? std::vector<uint8_t>{} : it->second;
}

std::optional<std::vector<uint8_t>> CheckpointStore::TryGet(
    int server_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = images_.find(server_id);
  if (it == images_.end()) return std::nullopt;
  return it->second;
}

bool CheckpointStore::Has(int server_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return images_.count(server_id) > 0;
}

uint64_t CheckpointStore::TotalBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [id, image] : images_) total += image.size();
  return total;
}

}  // namespace ps2
