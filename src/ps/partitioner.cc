#include "ps/partitioner.h"

#include <algorithm>

#include "common/logging.h"

namespace ps2 {

Result<ColumnPartitioner> ColumnPartitioner::Make(uint64_t dim, int num_servers,
                                                  uint64_t alignment,
                                                  int rotation) {
  if (dim == 0) return Status::InvalidArgument("dim must be > 0");
  if (num_servers <= 0) {
    return Status::InvalidArgument("num_servers must be > 0");
  }
  if (alignment == 0) return Status::InvalidArgument("alignment must be > 0");
  if (dim % alignment != 0) {
    return Status::InvalidArgument(
        "dim must be a multiple of alignment so no unit is split");
  }
  ColumnPartitioner p;
  p.dim_ = dim;
  p.num_servers_ = num_servers;
  p.alignment_ = alignment;
  p.rotation_ = ((rotation % num_servers) + num_servers) % num_servers;
  p.units_ = dim / alignment;
  p.units_per_part_ = (p.units_ + num_servers - 1) / num_servers;
  return p;
}

uint64_t ColumnPartitioner::RangeBegin(int partition) const {
  PS2_CHECK_GE(partition, 0);
  PS2_CHECK_LT(partition, num_servers_);
  uint64_t unit = std::min(units_, units_per_part_ * partition);
  return unit * alignment_;
}

uint64_t ColumnPartitioner::RangeEnd(int partition) const {
  PS2_CHECK_GE(partition, 0);
  PS2_CHECK_LT(partition, num_servers_);
  uint64_t unit = std::min(units_, units_per_part_ * (partition + 1));
  return unit * alignment_;
}

int ColumnPartitioner::PartitionOfColumn(uint64_t col) const {
  PS2_CHECK_LT(col, dim_);
  uint64_t unit = col / alignment_;
  int partition = static_cast<int>(unit / units_per_part_);
  return std::min(partition, num_servers_ - 1);
}

bool ColumnPartitioner::CoLocatedWith(const ColumnPartitioner& other) const {
  return dim_ == other.dim_ && num_servers_ == other.num_servers_ &&
         alignment_ == other.alignment_ && rotation_ == other.rotation_;
}

}  // namespace ps2
