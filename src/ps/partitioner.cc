#include "ps/partitioner.h"

#include <algorithm>

#include "common/logging.h"

namespace ps2 {

namespace {

Status ValidateShape(uint64_t dim, int num_partitions, uint64_t alignment) {
  if (dim == 0) return Status::InvalidArgument("dim must be > 0");
  if (num_partitions <= 0) {
    return Status::InvalidArgument("num_partitions must be > 0");
  }
  if (alignment == 0) return Status::InvalidArgument("alignment must be > 0");
  if (dim % alignment != 0) {
    return Status::InvalidArgument(
        "dim must be a multiple of alignment so no unit is split");
  }
  return Status::OK();
}

}  // namespace

std::vector<int> ColumnPartitioner::BlockAssignment(
    const std::vector<int>& active, int num_partitions, int rotation) {
  PS2_CHECK(!active.empty());
  PS2_CHECK_GT(num_partitions, 0);
  const int blocks =
      std::min<int>(static_cast<int>(active.size()), num_partitions);
  const int rot = ((rotation % blocks) + blocks) % blocks;
  std::vector<int> assignment(num_partitions);
  for (int p = 0; p < num_partitions; ++p) {
    // floor(p * B / P): contiguous blocks of partitions per active server.
    // When B == P this is p, i.e. the classic (p + rotation) % n placement.
    int block = static_cast<int>(static_cast<int64_t>(p) * blocks /
                                 num_partitions);
    assignment[p] = active[(block + rot) % blocks];
  }
  return assignment;
}

Result<ColumnPartitioner> ColumnPartitioner::Make(uint64_t dim,
                                                  int num_servers,
                                                  uint64_t alignment,
                                                  int rotation) {
  PS2_RETURN_NOT_OK(ValidateShape(dim, num_servers, alignment));
  ColumnPartitioner p;
  p.dim_ = dim;
  p.num_partitions_ = num_servers;
  p.alignment_ = alignment;
  p.rotation_ = ((rotation % num_servers) + num_servers) % num_servers;
  p.units_ = dim / alignment;
  p.units_per_part_ = (p.units_ + num_servers - 1) / num_servers;
  std::vector<int> identity(num_servers);
  for (int i = 0; i < num_servers; ++i) identity[i] = i;
  p.assignment_ = BlockAssignment(identity, num_servers, p.rotation_);
  return p;
}

Result<ColumnPartitioner> ColumnPartitioner::MakeElastic(
    uint64_t dim, const std::vector<int>& active, int num_partitions,
    uint64_t alignment, int rotation) {
  PS2_RETURN_NOT_OK(ValidateShape(dim, num_partitions, alignment));
  if (active.empty()) {
    return Status::InvalidArgument("active server list must be non-empty");
  }
  if (!std::is_sorted(active.begin(), active.end())) {
    return Status::InvalidArgument("active server list must be sorted");
  }
  ColumnPartitioner p;
  p.dim_ = dim;
  p.num_partitions_ = num_partitions;
  p.alignment_ = alignment;
  p.rotation_ =
      ((rotation % num_partitions) + num_partitions) % num_partitions;
  p.units_ = dim / alignment;
  p.units_per_part_ = (p.units_ + num_partitions - 1) / num_partitions;
  p.assignment_ = BlockAssignment(active, num_partitions, p.rotation_);
  return p;
}

Result<ColumnPartitioner> ColumnPartitioner::WithAssignment(
    std::vector<int> assignment) const {
  if (static_cast<int>(assignment.size()) != num_partitions_) {
    return Status::InvalidArgument("assignment size != num_partitions");
  }
  for (int s : assignment) {
    if (s < 0) return Status::InvalidArgument("assignment has negative server");
  }
  // Each server's partitions must be one contiguous run, otherwise its shard
  // span would overlap another server's columns.
  for (int p = 1; p < num_partitions_; ++p) {
    if (assignment[p] == assignment[p - 1]) continue;
    for (int q = 0; q < p - 1; ++q) {
      if (assignment[q] == assignment[p]) {
        return Status::InvalidArgument(
            "assignment is not contiguous per server");
      }
    }
  }
  ColumnPartitioner out = *this;
  out.assignment_ = std::move(assignment);
  return out;
}

uint64_t ColumnPartitioner::RangeBegin(int partition) const {
  PS2_CHECK_GE(partition, 0);
  PS2_CHECK_LT(partition, num_partitions_);
  uint64_t unit = std::min(units_, units_per_part_ * partition);
  return unit * alignment_;
}

uint64_t ColumnPartitioner::RangeEnd(int partition) const {
  PS2_CHECK_GE(partition, 0);
  PS2_CHECK_LT(partition, num_partitions_);
  uint64_t unit = std::min(units_, units_per_part_ * (partition + 1));
  return unit * alignment_;
}

int ColumnPartitioner::ServerOfPartition(int partition) const {
  PS2_CHECK_GE(partition, 0);
  PS2_CHECK_LT(partition, num_partitions_);
  return assignment_[partition];
}

int ColumnPartitioner::PartitionOfColumn(uint64_t col) const {
  PS2_CHECK_LT(col, dim_);
  uint64_t unit = col / alignment_;
  int partition = static_cast<int>(unit / units_per_part_);
  return std::min(partition, num_partitions_ - 1);
}

bool ColumnPartitioner::ServerSpan(int server, uint64_t* begin,
                                   uint64_t* end) const {
  int first = -1, last = -1;
  for (int p = 0; p < num_partitions_; ++p) {
    if (assignment_[p] != server) continue;
    if (first < 0) first = p;
    last = p;
  }
  if (first < 0) return false;
  *begin = RangeBegin(first);
  *end = RangeEnd(last);
  return true;
}

bool ColumnPartitioner::CoLocatedWith(const ColumnPartitioner& other) const {
  // Same boundaries and same owner per partition <=> every column lands on
  // the same server. (rotation_ is deliberately not compared: two
  // partitioners with different rotations but identical assignments place
  // columns identically.)
  return dim_ == other.dim_ && num_partitions_ == other.num_partitions_ &&
         alignment_ == other.alignment_ && assignment_ == other.assignment_;
}

}  // namespace ps2
