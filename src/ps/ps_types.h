#pragma once

// Shared types of the parameter-server module.

#include <cstdint>
#include <string>

#include "ps/partitioner.h"

namespace ps2 {

/// \brief Storage layout of a matrix on the servers.
enum class MatrixStorage : uint8_t {
  kDense = 0,   ///< contiguous doubles per (row, range)
  kSparse = 1,  ///< hash map per row; for very high-dim rarely-touched rows
};

/// \brief Metadata of a distributed matrix (a group of co-located DCVs).
struct MatrixMeta {
  int id = -1;
  std::string name;
  uint64_t dim = 0;        ///< columns (feature dimension)
  uint32_t num_rows = 0;   ///< reserved rows; `derive` hands these out
  MatrixStorage storage = MatrixStorage::kDense;
  ColumnPartitioner partitioner;
  /// Routing-table version this partitioner snapshot belongs to. Clients
  /// stamp it into RpcHeader::routing_epoch so a meta fetched before a
  /// migration commit is rejected (and refetched) instead of silently
  /// routing to the old owner. 0 until the first membership change.
  uint64_t routing_epoch = 0;
};

/// \brief A half-open column window [begin, end) of a row.
///
/// The default-constructed range means "the whole row" — the row's dimension
/// is substituted at the call site via Resolve(). This replaces the old
/// `PsClient::kWholeRow = ~0ULL` sentinel and the loose `(begin, end)`
/// argument pairs.
struct ColRange {
  constexpr ColRange() = default;  ///< whole row
  constexpr ColRange(uint64_t b, uint64_t e) : begin(b), end(e), whole(false) {}

  static constexpr ColRange All() { return ColRange(); }
  static constexpr ColRange Of(uint64_t begin, uint64_t end) {
    return ColRange(begin, end);
  }

  /// Concrete [begin, end) for a row of `dim` columns.
  constexpr ColRange Resolve(uint64_t dim) const {
    return whole ? ColRange(0, dim) : *this;
  }

  constexpr uint64_t width() const { return end - begin; }

  uint64_t begin = 0;
  uint64_t end = 0;
  bool whole = true;
};

/// \brief Identifies one row (one DCV) of a distributed matrix.
struct RowRef {
  int matrix_id = -1;
  uint32_t row = 0;

  bool operator==(const RowRef& other) const {
    return matrix_id == other.matrix_id && row == other.row;
  }
};

/// \brief Row-aggregation kinds (paper's sum / nnz / norm2 row-access ops).
enum class RowAggKind : uint8_t { kSum = 0, kNnz = 1, kNorm2Squared = 2, kMax = 3 };

/// \brief Built-in element-wise column-op kinds (paper Table 1).
enum class ColOpKind : uint8_t {
  kAdd = 0,   ///< dst = a + b
  kSub = 1,   ///< dst = a - b
  kMul = 2,   ///< dst = a * b
  kDiv = 3,   ///< dst = a / b   (b==0 -> 0)
  kCopy = 4,  ///< dst = a
  kAxpy = 5,  ///< dst += scalar * a
  kFill = 6,  ///< dst = scalar
  kScale = 7  ///< dst *= scalar
};

/// \brief Wire opcodes understood by PsServer::Handle.
enum class PsOpCode : uint8_t {
  kPullDense = 0,
  kPullSparse = 1,
  kPushDense = 2,
  kPushSparse = 3,
  kRowAgg = 4,
  kColumnOp = 5,
  kDotPartial = 6,
  kZip = 7,
  kZipAggregate = 8,
  kDotBatch = 9,    ///< many row-pair partial dots in one round (DeepWalk)
  kAxpyBatch = 10,  ///< many dst += alpha*src updates in one round (DeepWalk)
  kMatrixInit = 11,    ///< hash-random init of whole-matrix row ranges
  kPullRowsBatch = 12,       ///< many full-row pulls in one round
  kPushRowsBatch = 13,       ///< many dense row (delta) pushes in one round
  kPullSparseRowsBatch = 14, ///< many rows at shared indices, one round
  kPushSparseRowsBatch = 15, ///< many per-row sparse deltas, one round
  // Hot-parameter management (DESIGN.md §5d).
  kHotSetUpdate = 16,  ///< master installs the replicated hot-row set
  kReplicaSync = 17,   ///< collect pending deltas / install fresh values
  kHotPush = 18,       ///< sparse delta accumulated into a local replica
  // Online serving tier (DESIGN.md §10).
  kServingPull = 19,  ///< batched read from a published snapshot epoch
  // Consistency controller (DESIGN.md §11).
  kClockAdvance = 20,  ///< worker advances its clock in the server's vector
  // Elastic membership / online resharding (DESIGN.md §12).
  kRangeExtract = 21,   ///< read one matrix's column range off the old owner
  kRangeMigrate = 22,   ///< stage an extracted range on the new owner
  kRoutingUpdate = 23,  ///< fence / commit staged ranges / bump routing epoch
};

/// Stable short name of an opcode for metric tags and trace spans
/// (`ps.server.handle_us{op=pull_dense}`). Returns "unknown" for values
/// outside the enum rather than crashing on a corrupted wire byte.
constexpr const char* PsOpCodeName(PsOpCode op) {
  switch (op) {
    case PsOpCode::kPullDense: return "pull_dense";
    case PsOpCode::kPullSparse: return "pull_sparse";
    case PsOpCode::kPushDense: return "push_dense";
    case PsOpCode::kPushSparse: return "push_sparse";
    case PsOpCode::kRowAgg: return "row_agg";
    case PsOpCode::kColumnOp: return "column_op";
    case PsOpCode::kDotPartial: return "dot_partial";
    case PsOpCode::kZip: return "zip";
    case PsOpCode::kZipAggregate: return "zip_aggregate";
    case PsOpCode::kDotBatch: return "dot_batch";
    case PsOpCode::kAxpyBatch: return "axpy_batch";
    case PsOpCode::kMatrixInit: return "matrix_init";
    case PsOpCode::kPullRowsBatch: return "pull_rows_batch";
    case PsOpCode::kPushRowsBatch: return "push_rows_batch";
    case PsOpCode::kPullSparseRowsBatch: return "pull_sparse_rows_batch";
    case PsOpCode::kPushSparseRowsBatch: return "push_sparse_rows_batch";
    case PsOpCode::kHotSetUpdate: return "hot_set_update";
    case PsOpCode::kReplicaSync: return "replica_sync";
    case PsOpCode::kHotPush: return "hot_push";
    case PsOpCode::kServingPull: return "serving_pull";
    case PsOpCode::kClockAdvance: return "clock_advance";
    case PsOpCode::kRangeExtract: return "range_extract";
    case PsOpCode::kRangeMigrate: return "range_migrate";
    case PsOpCode::kRoutingUpdate: return "routing_update";
  }
  return "unknown";
}

/// Number of distinct PsOpCode values (for per-opcode metric tables).
constexpr int kNumPsOpCodes = 24;

/// True for opcodes whose handlers mutate server state. Retrying one of
/// these after an ambiguous failure (a lost *response*) would double-apply
/// without the per-client sequence-number dedup in PsServer — read-only
/// opcodes are trivially idempotent and skip the dedup table.
constexpr bool IsMutatingOpcode(PsOpCode op) {
  switch (op) {
    case PsOpCode::kPushDense:
    case PsOpCode::kPushSparse:
    case PsOpCode::kColumnOp:
    case PsOpCode::kZip:
    case PsOpCode::kAxpyBatch:
    case PsOpCode::kMatrixInit:
    case PsOpCode::kPushRowsBatch:
    case PsOpCode::kPushSparseRowsBatch:
    case PsOpCode::kHotSetUpdate:
    case PsOpCode::kReplicaSync:
    case PsOpCode::kHotPush:
    // Clock advances mutate the server's worker-clock vector. The handler is
    // a max-merge (idempotent), but routing them through the dedup table
    // keeps the retry accounting uniform with the other mutations.
    case PsOpCode::kClockAdvance:
    // Staging a migrated range overwrites the staging slot (idempotent), and
    // routing updates are epoch-guarded, but both ride the dedup table so a
    // replayed commit after a lost response acks instead of re-running.
    case PsOpCode::kRangeMigrate:
    case PsOpCode::kRoutingUpdate:
      return true;
    case PsOpCode::kPullDense:
    case PsOpCode::kPullSparse:
    case PsOpCode::kRowAgg:
    case PsOpCode::kDotPartial:
    case PsOpCode::kZipAggregate:
    case PsOpCode::kDotBatch:
    case PsOpCode::kPullRowsBatch:
    case PsOpCode::kPullSparseRowsBatch:
    case PsOpCode::kServingPull:
    case PsOpCode::kRangeExtract:
      return false;
  }
  return false;
}

/// True for the membership/resharding control plane (DESIGN.md §12). These
/// opcodes must keep flowing while a server is fenced or decommissioned —
/// they are exactly what un-fences it — so PsServer's routing-staleness
/// check exempts them, and PsClient never re-routes them.
constexpr bool IsMigrationControlOpcode(PsOpCode op) {
  return op == PsOpCode::kRangeExtract || op == PsOpCode::kRangeMigrate ||
         op == PsOpCode::kRoutingUpdate;
}

/// Matches PsServer's routing-staleness rejection ("routing stale (fenced)",
/// "... (decommissioned)", "... (epoch)", optionally suffixed " (applied)"
/// when the mutation in question already executed on the rejecting server).
/// Same FailedPrecondition refetch idiom as IsKeyCacheMiss (net/filters.h).
inline bool IsRoutingStale(const Status& status) {
  return status.IsFailedPrecondition() &&
         status.message().rfind("routing stale", 0) == 0;
}

/// \brief Per-message identity riding the RPC framing (DESIGN.md §6).
///
/// Every data-plane request carries (client id, per-client sequence number,
/// attempt). The pair (client_id, seq) names one *logical* operation: a
/// retried message reuses the seq of the original so the server's dedup
/// table can recognize (and ack without re-applying) a mutation whose first
/// response was lost. The fields travel in the fixed Message::kHeaderBytes
/// framing (the correlation-id slot), not in the payload, so byte accounting
/// is unchanged. client_id < 0 marks untracked control-plane traffic
/// (master/hotspot exchanges): no fault injection, no dedup.
struct RpcHeader {
  int client_id = -1;   ///< PsMaster::AllocateClientId(); -1 = untracked
  uint64_t seq = 0;     ///< per-(client, server) monotonic, starting at 1
  uint32_t attempt = 1; ///< 1 = first try; >1 = retry of the same seq
  /// 1 + the routing-table version the sender planned this request against
  /// (DESIGN.md §12). 0 = unstamped (clock broadcasts, control legs); the
  /// +1 keeps "planned against the initial version-0 table" distinguishable
  /// from "unstamped", so the FIRST migration can bounce in-flight requests
  /// too. A server rejects a stamp at or below its own version with the
  /// `routing stale` FailedPrecondition refetch protocol. Rides the fixed
  /// Message::kHeaderBytes framing, so wire byte accounting is unchanged.
  uint64_t routing_epoch = 0;

  bool tracked() const { return client_id >= 0; }
};

}  // namespace ps2
