#pragma once

// Lightweight futures for the asynchronous PS client.
//
// A PsFuture<T> is a shared handle on the eventual Result<T> of one async
// client op (PullDenseAsync, PushDenseAsync, ...). It is deliberately tiny:
// no executors, no cancellation — just Wait/Get/Then plus the two pieces of
// bookkeeping the simulator needs:
//
//   * traffic harvest — an async op records its bytes/messages/rounds into a
//     future-local TaskTraffic (the issuing task's record cannot be written
//     from pool threads without racing the task body). The first Wait()/Get()
//     on the *caller* thread runs the harvest hook installed by the client,
//     which merges that traffic into the caller's TrafficScope (or charges
//     the coordinator clock when called from the driver).
//   * window accounting — the harvest hook also releases the op's slot in the
//     client's in-flight window. If a future is dropped without Wait/Get, the
//     state's destructor runs the hook: the slot is released AND the recorded
//     traffic is charged (to the ambient scope if the last owner is a task
//     thread, else to the coordinator clock), so abandoning a push-future
//     cannot make a run cheaper than waiting on it. Prefer Wait anyway — it
//     charges the traffic at a deterministic point in program order.
//
// Then(f) chains a computation onto completion. f runs on whichever thread
// completes the source future (a fan-out pool thread, or inline when already
// done), so it must not block on other futures. Harvest duty transfers to the
// derived future at registration: waiting on the tail of a chain charges the
// whole chain's traffic exactly once.

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/result.h"
#include "net/network_model.h"

namespace ps2 {

/// \brief Empty value type for push-like async ops ("the ack arrived").
struct Ack {};

namespace internal {

/// Maps a continuation's return type R to the derived future's value type:
/// Result<U> unwraps to U, anything else is taken as-is.
template <typename R>
struct FutureValue {
  using type = R;
  static Result<R> Wrap(R&& v) { return Result<R>(std::move(v)); }
};
template <typename U>
struct FutureValue<Result<U>> {
  using type = U;
  static Result<U> Wrap(Result<U>&& v) { return std::move(v); }
};

template <typename T>
struct PsFutureState {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  std::optional<Result<T>> value;

  /// Traffic recorded by the op; written by the completing thread strictly
  /// before `done` flips, read by the harvesting thread strictly after.
  TaskTraffic traffic;

  /// Installed by the client at issue time; run at most once, on the first
  /// Wait/Get caller thread. Destroying it unrun still releases the window
  /// slot (the hook owns a release token).
  std::function<void(const TaskTraffic&)> harvest;
  bool harvested = false;

  /// Run (without the lock held) by the completing thread.
  std::vector<std::function<void()>> continuations;

  ~PsFutureState() {
    // Abandoned future: the op ran and recorded traffic, but nobody waited.
    // The last owner (usually the completing pool thread) charges it here —
    // no lock needed, ownership is exclusive by definition. See the header
    // comment; without this, dropped push-futures leaked their cost.
    if (!harvested && harvest) {
      harvested = true;
      auto hook = std::move(harvest);
      hook(traffic);
    }
  }

  void Complete(Result<T>&& result) {
    std::vector<std::function<void()>> ready;
    {
      std::lock_guard<std::mutex> lock(mu);
      value.emplace(std::move(result));
      done = true;
      ready.swap(continuations);
    }
    cv.notify_all();
    for (auto& fn : ready) fn();
  }
};

}  // namespace internal

/// \brief Shared handle on the eventual result of an async PS op.
template <typename T>
class PsFuture {
 public:
  PsFuture() = default;
  explicit PsFuture(std::shared_ptr<internal::PsFutureState<T>> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }

  /// Blocks until completion, harvests traffic into the caller's scope, and
  /// returns the op's status (value untouched; call Get() for it).
  Status Wait() const {
    internal::PsFutureState<T>* s = Require();
    std::unique_lock<std::mutex> lock(s->mu);
    s->cv.wait(lock, [s] { return s->done; });
    Status status = s->value->status();
    Harvest(s, lock);
    return status;
  }

  /// Wait() then move the result out. At most one Get() per future chain.
  Result<T> Get() const {
    internal::PsFutureState<T>* s = Require();
    std::unique_lock<std::mutex> lock(s->mu);
    s->cv.wait(lock, [s] { return s->done; });
    Result<T> out = std::move(*s->value);
    Harvest(s, lock);
    return out;
  }

  /// True once the op has completed (non-blocking; does not harvest).
  bool Ready() const {
    internal::PsFutureState<T>* s = Require();
    std::lock_guard<std::mutex> lock(s->mu);
    return s->done;
  }

  /// Chains `f(Result<T>&&)` onto completion; returns a future of f's result
  /// (Result<U> returns unwrap to U). f runs on the completing thread — or
  /// inline, right here, if the source already completed. Harvest duty moves
  /// to the returned future, so only the tail of a chain needs Wait/Get.
  template <typename F>
  auto Then(F f) const {
    using R = std::invoke_result_t<F, Result<T>&&>;
    using V = internal::FutureValue<R>;
    using U = typename V::type;
    internal::PsFutureState<T>* s = Require();
    auto derived = std::make_shared<internal::PsFutureState<U>>();

    std::shared_ptr<internal::PsFutureState<T>> source = state_;
    auto run = [source, derived, f = std::move(f)]() mutable {
      Result<T> in = [&] {
        std::lock_guard<std::mutex> lock(source->mu);
        return std::move(*source->value);
      }();
      // The chain's traffic flows tail-ward so the tail's harvest sees it all.
      derived->traffic.MergeFrom(source->traffic);
      derived->Complete(V::Wrap(f(std::move(in))));
    };

    bool already_done;
    {
      std::lock_guard<std::mutex> lock(s->mu);
      derived->harvest = std::move(s->harvest);
      s->harvest = nullptr;
      already_done = s->done;
      if (!already_done) s->continuations.push_back(std::move(run));
    }
    if (already_done) run();
    return PsFuture<U>(std::move(derived));
  }

 private:
  internal::PsFutureState<T>* Require() const {
    PS2_CHECK(state_ != nullptr) << "operation on an invalid PsFuture";
    return state_.get();
  }

  /// Runs the harvest hook once; called with `lock` held on s->mu, releases
  /// it around the hook (the hook touches the caller's TrafficScope and the
  /// client window, never this future).
  static void Harvest(internal::PsFutureState<T>* s,
                      std::unique_lock<std::mutex>& lock) {
    if (s->harvested || !s->harvest) return;
    s->harvested = true;
    auto hook = std::move(s->harvest);
    s->harvest = nullptr;
    lock.unlock();
    hook(s->traffic);
  }

  std::shared_ptr<internal::PsFutureState<T>> state_;
};

/// An already-completed future: no window slot, no traffic, no harvest hook.
/// Used for validation errors and trivially empty ops.
template <typename T>
PsFuture<T> MakeReadyFuture(Result<T> result) {
  auto state = std::make_shared<internal::PsFutureState<T>>();
  state->Complete(std::move(result));
  return PsFuture<T>(std::move(state));
}

}  // namespace ps2
