#include "hotspot/access_stats.h"

#include <algorithm>

namespace ps2 {

void SpaceSavingSketch::Record(RowRef ref, uint64_t weight) {
  total_ += weight;
  const std::pair<int, uint32_t> key{ref.matrix_id, ref.row};
  auto it = counts_.find(key);
  if (it != counts_.end()) {
    it->second.count += weight;
    return;
  }
  if (counts_.size() < capacity_) {
    counts_.emplace(key, Cell{weight, 0});
    return;
  }
  // Evict the minimum-count cell; the newcomer inherits its count as both
  // starting point and error bound.
  auto min_it = counts_.begin();
  for (auto cand = counts_.begin(); cand != counts_.end(); ++cand) {
    if (cand->second.count < min_it->second.count) min_it = cand;
  }
  const uint64_t floor = min_it->second.count;
  counts_.erase(min_it);
  counts_.emplace(key, Cell{floor + weight, floor});
}

std::vector<SpaceSavingSketch::Entry> SpaceSavingSketch::TopK(size_t k) const {
  std::vector<Entry> out;
  out.reserve(counts_.size());
  for (const auto& [key, cell] : counts_) {
    Entry e;
    e.ref = RowRef{key.first, key.second};
    e.count = cell.count;
    e.error = cell.error;
    out.push_back(e);
  }
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    if (a.ref.matrix_id != b.ref.matrix_id) {
      return a.ref.matrix_id < b.ref.matrix_id;
    }
    return a.ref.row < b.ref.row;
  });
  if (out.size() > k) out.resize(k);
  return out;
}

void SpaceSavingSketch::Clear() {
  counts_.clear();
  total_ = 0;
}

}  // namespace ps2
