#pragma once

// Client-side bounded-staleness cache for hot rows.
//
// Each PsClient owns one HotRowCache and registers it with the
// HotspotManager. The manager keeps the cache's hot set in sync with the
// server-side replica set and warms each hot row's values at every replica
// sync, bumping the cache epoch. Pulls of a hot row whose entry is within
// `staleness_epochs` of the current epoch are served locally — the cost
// model is charged only worker compute plus a local-hit record
// (TaskTraffic::local_pull_hits/local_pull_bytes), no network bytes and no
// round latency. A hot-but-stale (or not-yet-warmed) row triggers a single
// full-row refresh from the row's home server replica, which IS charged as
// normal traffic — the DeepSpark-style bounded-staleness contract: values
// served are at most `staleness_epochs` replica syncs old.

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "ps/ps_types.h"

namespace ps2 {

/// \brief Versioned local copies of the hot rows (thread-safe).
class HotRowCache {
 public:
  /// Cheap gate: false until the manager installs a non-empty hot set, so
  /// the pull/push fast paths cost one relaxed atomic load when hotspot
  /// management is off.
  bool HasHot() const { return has_hot_.load(std::memory_order_relaxed); }

  /// Row dimension if `ref` is hot, 0 otherwise.
  uint64_t HotDim(RowRef ref) const;

  /// Copies [begin, end) of the cached row into `out` if the entry is
  /// within the staleness bound. Returns false on a miss (not warmed yet,
  /// or stale).
  bool TryServeDense(RowRef ref, uint64_t begin, uint64_t end,
                     double* out) const;

  /// Gathers `indices` (each < dim) from the cached row into `out`.
  bool TryServeSparse(RowRef ref, const std::vector<uint64_t>& indices,
                      double* out) const;

  /// Installs/overwrites the cached values of a hot row. No-op if `ref` is
  /// not in the hot set (a refresh raced a hot-set change).
  void Store(RowRef ref, std::vector<double> values, uint64_t epoch);

  /// Replaces the hot set; entries for rows no longer hot are dropped,
  /// new rows start unwarmed (first pull refreshes them).
  void SetHotSet(const std::vector<std::pair<RowRef, uint64_t>>& rows_dims);

  void SetStalenessEpochs(int epochs);
  void SetEpoch(uint64_t epoch);
  uint64_t epoch() const { return epoch_.load(std::memory_order_relaxed); }

  /// Local-hit / refresh counters (tests, benches).
  uint64_t hits() const;
  uint64_t misses() const;

 private:
  struct Entry {
    uint64_t dim = 0;
    uint64_t epoch = 0;   ///< epoch of `values`; 0 = never warmed
    std::vector<double> values;
  };

  bool Fresh(const Entry& e) const {
    return e.epoch > 0 &&
           epoch_.load(std::memory_order_relaxed) - e.epoch <
               static_cast<uint64_t>(staleness_epochs_);
  }

  mutable std::mutex mu_;
  std::atomic<bool> has_hot_{false};
  std::atomic<uint64_t> epoch_{0};
  int staleness_epochs_ = 1;
  std::map<std::pair<int, uint32_t>, Entry> entries_;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

}  // namespace ps2
