#pragma once

// Hot-parameter management (DESIGN.md §5d).
//
// Skewed workloads hammer a few rows: in LDA the frequent words, in LR the
// frequent features, in DeepWalk the high-degree vertices. Column
// partitioning spreads each *row* across servers, but every pull of a hot
// row still crosses the network and every push still serializes at the
// owners. The HotspotManager — owned by PsMaster, driven by the trainers —
// closes that gap in three layers:
//
//   1. Statistics. Each PsServer keeps space-saving sketches of per-
//      (matrix, row) pull/push frequency (hotspot/access_stats.h). The
//      manager periodically aggregates the per-server top-k into a ranked
//      global hot set. Aggregation piggybacks on the master's heartbeats,
//      so it is not charged as data-path traffic.
//   2. Replication. Hot rows are replicated *in full* on every server
//      (NuPS-style hot-key management): reads of any slice are served
//      locally, pushes accumulate into per-server pending deltas, and a
//      periodic ReplicaSync reconciles pendings into the primary and
//      re-installs fresh values everywhere under a new epoch.
//   3. Client caching. Every PsClient registers a HotRowCache; the manager
//      warms it at each sync. Hot-row pulls are then served on the worker
//      at bounded staleness, charging only refresh traffic.
//
// The trainers drive the cadence by calling Tick() once per iteration.

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hotspot/client_cache.h"
#include "ps/ps_types.h"

namespace ps2 {

class PsMaster;
struct TaskTraffic;

/// \brief Tuning knobs for hot-parameter management.
struct HotspotOptions {
  bool enabled = false;
  /// Rows replicated at most (the global hot set size).
  int top_k = 32;
  /// Minimum estimated pull count before a row may be designated hot —
  /// keeps push-only rows (gradients, state) out of the replica set.
  uint64_t min_pull_count = 16;
  /// Re-rank the hot set every this many ticks (trainer iterations).
  int refresh_every = 5;
  /// Reconcile replicas every this many ticks; 1 = every iteration (exact),
  /// larger values trade staleness for sync traffic.
  int sync_every = 1;
  /// Client caches serve values at most this many sync epochs old.
  int staleness_epochs = 1;
  /// Per-server space-saving sketch capacity (monitored keys).
  size_t sketch_capacity = 256;

  Status Validate() const;
};

/// \brief Master-side coordinator of statistics, replication and caches.
///
/// Thread-safe; but Tick / refresh / sync are expected to run on the
/// coordinator between stages (like CheckpointAll), which is what makes the
/// bounded-staleness contract deterministic.
class HotspotManager {
 public:
  explicit HotspotManager(PsMaster* master);

  /// Turns the subsystem on: enables per-server access statistics and arms
  /// Tick(). Idempotent; re-enabling with new options re-ranks from scratch.
  Status Enable(const HotspotOptions& options);

  bool enabled() const;
  const HotspotOptions& options() const;

  /// One trainer iteration: re-rank the hot set every `refresh_every` ticks
  /// (installing + syncing only when it actually changed), and sync replicas
  /// every `sync_every` ticks. No-op while disabled.
  Status Tick();

  /// Forces an immediate replica reconciliation + cache warm.
  Status SyncNow();

  /// Test/bench hook: designates `rows` as the hot set right now (without
  /// enabling periodic management) and installs + warms them.
  Status ReplicateNow(const std::vector<RowRef>& rows);

  /// True if `ref` is currently replicated on every server (and therefore
  /// co-located with everything for read purposes).
  bool IsReplicated(RowRef ref) const;

  std::vector<RowRef> HotSet() const;
  uint64_t epoch() const;

  /// Called by PsMaster after a server crash + restore. The restarted
  /// process holds at best checkpoint-old replicas (pendings accumulated
  /// since are gone, and the hot set may have moved on), so without this
  /// hook client HotRowCaches keep serving rows that will never be
  /// re-installed — stale far past staleness_epochs. Recreates the replica
  /// slots on the recovered server, then forces a full sync: epoch bump +
  /// fresh install everywhere + cache warm. No-op while no rows are hot.
  Status OnServerRecovered(int server_id);

  /// PsClients register their caches; the manager keeps hot sets and warm
  /// values in sync for every registered cache.
  void RegisterCache(HotRowCache* cache);
  void UnregisterCache(HotRowCache* cache);

 private:
  /// Re-ranks the hot set from server sketches; when it changed, flushes the
  /// old set, installs the new one and syncs. Sets `*changed` so Tick can
  /// fall back to the plain sync cadence on stable refreshes (mu_ held).
  Status RefreshHotSetLocked(bool* changed);
  /// Collect pendings -> reconcile -> install -> warm caches (mu_ held).
  Status SyncReplicasLocked();
  /// Installs `hot` as the replica set on every server (mu_ held).
  Status InstallHotSetLocked(
      const std::vector<std::pair<RowRef, uint64_t>>& hot);

  /// One coordinator->server exchange, recorded into `t`.
  Status Exchange(TaskTraffic* t, int server_id,
                  const std::vector<uint8_t>& request,
                  std::vector<uint8_t>* response);

  /// Prices accumulated sync traffic: merged into the ambient TrafficScope
  /// when called from a task, charged to the cluster clock otherwise.
  void ChargeLocked(const TaskTraffic& t);

  PsMaster* master_;
  mutable std::mutex mu_;
  HotspotOptions options_;
  bool enabled_ = false;
  uint64_t tick_ = 0;
  uint64_t epoch_ = 0;
  /// Current hot set with row dimensions (sorted by (matrix, row)).
  std::vector<std::pair<RowRef, uint64_t>> hot_;
  std::vector<HotRowCache*> caches_;
};

}  // namespace ps2
