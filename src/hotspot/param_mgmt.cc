#include "hotspot/param_mgmt.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "membership/membership_manager.h"
#include "ps/ps_master.h"

namespace ps2 {

bool ParseParamMgmtMode(const std::string& text, ParamMgmtMode* mode) {
  if (text == "off") {
    *mode = ParamMgmtMode::kOff;
  } else if (text == "hotspot") {
    *mode = ParamMgmtMode::kHotspot;
  } else if (text == "nups") {
    *mode = ParamMgmtMode::kNups;
  } else {
    return false;
  }
  return true;
}

const char* ParamMgmtModeName(ParamMgmtMode mode) {
  switch (mode) {
    case ParamMgmtMode::kOff:
      return "off";
    case ParamMgmtMode::kHotspot:
      return "hotspot";
    case ParamMgmtMode::kNups:
      return "nups";
  }
  return "off";
}

Status ParamMgmtOptions::Validate() const {
  if (hot_k < 0) return Status::InvalidArgument("hot_k must be >= 0");
  if (warm_k < 0) return Status::InvalidArgument("warm_k must be >= 0");
  if (dominance <= 0.0 || dominance > 1.0) {
    return Status::InvalidArgument("dominance must be in (0, 1]");
  }
  if (tick_every <= 0) return Status::InvalidArgument("tick_every must be > 0");
  if (sync_every <= 0) return Status::InvalidArgument("sync_every must be > 0");
  if (hysteresis_ticks <= 0) {
    return Status::InvalidArgument("hysteresis_ticks must be > 0");
  }
  return Status::OK();
}

ParamMgmtManager::ParamMgmtManager(PsMaster* master,
                                   const ParamMgmtOptions& options)
    : master_(master), options_(options) {
  PS2_CHECK(master != nullptr);
}

Status ParamMgmtManager::Enable() {
  PS2_RETURN_NOT_OK(options_.Validate());
  if (options_.mode == ParamMgmtMode::kHotspot) {
    HotspotOptions hot = options_.hotspot;
    hot.enabled = true;
    return master_->hotspot()->Enable(hot);
  }
  return Status::OK();
}

Status ParamMgmtManager::RegisterKey(int key, int matrix_id,
                                     uint32_t num_rows) {
  if (key < 0) return Status::InvalidArgument("key must be >= 0");
  std::lock_guard<std::mutex> lock(mu_);
  if (keys_.size() <= static_cast<size_t>(key)) {
    keys_.resize(static_cast<size_t>(key) + 1);
  }
  PS2_ASSIGN_OR_RETURN(MatrixMeta meta, master_->GetMeta(matrix_id));
  if (meta.partitioner.assignment().size() != 1) {
    return Status::InvalidArgument(
        "per-key management needs single-partition (home_server) matrices");
  }
  KeyState& ks = keys_[static_cast<size_t>(key)];
  ks.matrix_id = matrix_id;
  ks.num_rows = num_rows;
  ks.home = meta.partitioner.ServerOfPartition(0);
  ks.original_home = ks.home;
  return Status::OK();
}

void ParamMgmtManager::RecordBatch(
    int executor, const std::vector<std::pair<int, uint64_t>>& key_counts) {
  if (options_.mode != ParamMgmtMode::kNups || executor < 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, count] : key_counts) {
    if (key < 0 || static_cast<size_t>(key) >= keys_.size()) continue;
    KeyState& ks = keys_[static_cast<size_t>(key)];
    if (ks.counts.size() <= static_cast<size_t>(executor)) {
      ks.counts.resize(static_cast<size_t>(executor) + 1, 0);
    }
    ks.counts[static_cast<size_t>(executor)] += count;
    ks.total += count;
  }
}

Status ParamMgmtManager::Tick() {
  if (options_.mode == ParamMgmtMode::kOff) return Status::OK();
  if (options_.mode == ParamMgmtMode::kHotspot) {
    return master_->hotspot()->Tick();
  }
  std::lock_guard<std::mutex> lock(mu_);
  ++tick_;
  bool synced = false;
  if (tick_ % static_cast<uint64_t>(options_.tick_every) == 0) {
    PS2_RETURN_NOT_OK(ClassifyLocked(&synced));
  }
  if (!synced && !hot_refs_.empty() &&
      tick_ % static_cast<uint64_t>(options_.sync_every) == 0) {
    return master_->hotspot()->SyncNow();
  }
  return Status::OK();
}

Status ParamMgmtManager::ClassifyLocked(bool* synced) {
  *synced = false;
  const ClusterSpec& spec = master_->cluster()->spec();
  // Rank keys by recent total count; ties break toward the lower key so the
  // ordering — and therefore every tiering decision — is deterministic.
  std::vector<std::pair<uint64_t, int>> ranked;
  ranked.reserve(keys_.size());
  for (size_t k = 0; k < keys_.size(); ++k) {
    const KeyState& ks = keys_[k];
    if (ks.matrix_id < 0 || ks.total < options_.min_count) continue;
    ranked.emplace_back(ks.total, static_cast<int>(k));
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.first != b.first ? a.first > b.first : a.second < b.second;
  });

  // Hot tier: top hot_k keys, every row replicated everywhere.
  std::vector<RowRef> hot;
  std::vector<bool> is_hot(keys_.size(), false);
  const size_t hot_n =
      std::min(ranked.size(), static_cast<size_t>(options_.hot_k));
  for (size_t i = 0; i < hot_n; ++i) {
    const int key = ranked[i].second;
    const KeyState& ks = keys_[static_cast<size_t>(key)];
    is_hot[static_cast<size_t>(key)] = true;
    for (uint32_t r = 0; r < ks.num_rows; ++r) {
      RowRef ref;
      ref.matrix_id = ks.matrix_id;
      ref.row = r;
      hot.push_back(ref);
    }
  }
  std::sort(hot.begin(), hot.end(), [](const RowRef& a, const RowRef& b) {
    return std::make_pair(a.matrix_id, a.row) <
           std::make_pair(b.matrix_id, b.row);
  });

  // Warm tier: the next warm_k ranked keys. A key relocates when one
  // executor owns at least `dominance` of its recent accesses, its
  // co-located server is not already home, and the hysteresis window since
  // its last move has passed.
  std::map<int, int> moves;          // matrix id -> target server
  std::vector<int> moving_keys;
  const size_t warm_end =
      std::min(ranked.size(), hot_n + static_cast<size_t>(options_.warm_k));
  for (size_t i = hot_n; i < warm_end; ++i) {
    const int key = ranked[i].second;
    KeyState& ks = keys_[static_cast<size_t>(key)];
    uint64_t best = 0;
    int dominant = -1;
    for (size_t e = 0; e < ks.counts.size(); ++e) {
      if (ks.counts[e] > best) {
        best = ks.counts[e];
        dominant = static_cast<int>(e);
      }
    }
    if (dominant < 0 ||
        static_cast<double>(best) <
            options_.dominance * static_cast<double>(ks.total)) {
      continue;
    }
    int target = spec.ColocatedServer(dominant);
    if (target < 0) target = dominant % spec.num_servers;
    if (!master_->is_server_active(target) || target == ks.home) continue;
    if (ks.last_move_tick != 0 &&
        tick_ - ks.last_move_tick <
            static_cast<uint64_t>(options_.hysteresis_ticks)) {
      continue;
    }
    moves[ks.matrix_id] = target;
    moving_keys.push_back(key);
  }

  // Decay: halve every count so the next window reflects the recent mix.
  for (KeyState& ks : keys_) {
    ks.total = 0;
    for (uint64_t& c : ks.counts) {
      c >>= 1;
      ks.total += c;
    }
  }

  if (hot != hot_refs_) {
    PS2_RETURN_NOT_OK(master_->hotspot()->ReplicateNow(hot));
    hot_refs_ = std::move(hot);
    *synced = true;
  }
  if (!moves.empty()) {
    PS2_ASSIGN_OR_RETURN(MigrationStats stats,
                         master_->membership()->RelocateMatrices(moves));
    MetricsRegistry& metrics = master_->cluster()->metrics();
    metrics.Add("net.relocation_bytes", stats.bytes_moved);
    metrics.Add("nups.relocations", stats.moves);
    relocations_ += stats.moves;
    for (int key : moving_keys) {
      KeyState& ks = keys_[static_cast<size_t>(key)];
      ks.home = moves[ks.matrix_id];
      ks.last_move_tick = tick_;
    }
  }

  // Per-tier gauges. A hot key counts as replicated even if an earlier
  // window relocated it; relocated counts keys currently away from their
  // creation home.
  uint64_t replicated = 0, relocated = 0, cold = 0;
  for (size_t k = 0; k < keys_.size(); ++k) {
    const KeyState& ks = keys_[k];
    if (ks.matrix_id < 0) continue;
    if (is_hot[k]) {
      ++replicated;
    } else if (ks.home != ks.original_home) {
      ++relocated;
    } else {
      ++cold;
    }
  }
  MetricsRegistry& metrics = master_->cluster()->metrics();
  metrics.Set("nups.replicated", replicated);
  metrics.Set("nups.relocated", relocated);
  metrics.Set("nups.cold", cold);
  return Status::OK();
}

int ParamMgmtManager::HomeOf(int key) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (key < 0 || static_cast<size_t>(key) >= keys_.size()) return -1;
  return keys_[static_cast<size_t>(key)].home;
}

uint64_t ParamMgmtManager::relocated_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t n = 0;
  for (const KeyState& ks : keys_) {
    if (ks.matrix_id >= 0 && ks.home != ks.original_home) ++n;
  }
  return n;
}

uint64_t ParamMgmtManager::relocations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return relocations_;
}

}  // namespace ps2
