#include "hotspot/hotspot_manager.h"

#include <algorithm>
#include <map>

#include "common/logging.h"
#include "common/serde.h"
#include "net/message.h"
#include "net/network_model.h"
#include "ps/ps_master.h"

namespace ps2 {

namespace {

uint64_t WireBytes(const std::vector<uint8_t>& payload) {
  return payload.size() + Message::kHeaderBytes;
}

}  // namespace

Status HotspotOptions::Validate() const {
  if (top_k <= 0) return Status::InvalidArgument("top_k must be > 0");
  if (refresh_every <= 0) {
    return Status::InvalidArgument("refresh_every must be > 0");
  }
  if (sync_every <= 0) {
    return Status::InvalidArgument("sync_every must be > 0");
  }
  if (staleness_epochs <= 0) {
    return Status::InvalidArgument("staleness_epochs must be > 0");
  }
  if (sketch_capacity == 0) {
    return Status::InvalidArgument("sketch_capacity must be > 0");
  }
  return Status::OK();
}

HotspotManager::HotspotManager(PsMaster* master) : master_(master) {
  PS2_CHECK(master != nullptr);
}

Status HotspotManager::Enable(const HotspotOptions& options) {
  PS2_RETURN_NOT_OK(options.Validate());
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  enabled_ = true;
  tick_ = 0;
  for (int s = 0; s < master_->num_servers(); ++s) {
    master_->server(s)->EnableAccessStats(options_.sketch_capacity);
  }
  for (HotRowCache* cache : caches_) {
    cache->SetStalenessEpochs(options_.staleness_epochs);
  }
  return Status::OK();
}

bool HotspotManager::enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return enabled_;
}

const HotspotOptions& HotspotManager::options() const {
  std::lock_guard<std::mutex> lock(mu_);
  return options_;
}

Status HotspotManager::Tick() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_) return Status::OK();
  ++tick_;
  if (tick_ % static_cast<uint64_t>(options_.refresh_every) == 0) {
    bool changed = false;
    PS2_RETURN_NOT_OK(RefreshHotSetLocked(&changed));
    if (changed) return Status::OK();  // refresh already installed + synced
  }
  if (!hot_.empty() &&
      tick_ % static_cast<uint64_t>(options_.sync_every) == 0) {
    return SyncReplicasLocked();
  }
  return Status::OK();
}

Status HotspotManager::SyncNow() {
  std::lock_guard<std::mutex> lock(mu_);
  return SyncReplicasLocked();
}

Status HotspotManager::ReplicateNow(const std::vector<RowRef>& rows) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<RowRef, uint64_t>> hot;
  hot.reserve(rows.size());
  for (RowRef ref : rows) {
    PS2_ASSIGN_OR_RETURN(MatrixMeta meta, master_->GetMeta(ref.matrix_id));
    if (meta.storage != MatrixStorage::kDense) {
      return Status::FailedPrecondition(
          "only dense-storage rows can be replicated");
    }
    if (ref.row >= meta.num_rows) {
      return Status::OutOfRange("row out of range");
    }
    hot.emplace_back(ref, meta.dim);
  }
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    return std::make_pair(a.first.matrix_id, a.first.row) <
           std::make_pair(b.first.matrix_id, b.first.row);
  });
  hot_ = std::move(hot);
  PS2_RETURN_NOT_OK(InstallHotSetLocked(hot_));
  return SyncReplicasLocked();
}

bool HotspotManager::IsReplicated(RowRef ref) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [hot_ref, dim] : hot_) {
    if (hot_ref == ref) return true;
  }
  return false;
}

std::vector<RowRef> HotspotManager::HotSet() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RowRef> rows;
  rows.reserve(hot_.size());
  for (const auto& [ref, dim] : hot_) rows.push_back(ref);
  return rows;
}

uint64_t HotspotManager::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

Status HotspotManager::OnServerRecovered(int server_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (hot_.empty()) return Status::OK();
  // A restored checkpoint may resurrect replica pendings that a sync after
  // the checkpoint already reconciled into the primaries; their replica
  // version predates the current epoch, which is how we tell them from
  // pendings the crash genuinely left un-reconciled.
  master_->server(server_id)->DropStaleReplicaPendings(epoch_);
  // Recreate the replica slots on the recovered server only — its shard
  // metadata survived at the master, but the replica set was dropped with
  // the state (a restored checkpoint holds the slots of *that* era, which
  // may not match the current hot set).
  BufferWriter writer;
  writer.WriteU8(static_cast<uint8_t>(PsOpCode::kHotSetUpdate));
  writer.WriteVarint(hot_.size());
  for (const auto& [ref, dim] : hot_) {
    writer.WriteVarint(static_cast<uint64_t>(ref.matrix_id));
    writer.WriteVarint(ref.row);
    writer.WriteVarint(dim);
  }
  TaskTraffic t;
  t.rounds += 1;
  std::vector<uint8_t> response;
  PS2_RETURN_NOT_OK(Exchange(&t, server_id, writer.Release(), &response));
  ChargeLocked(t);
  // Full sync re-installs fresh values under a new epoch, which is what
  // invalidates client caches warmed before the crash.
  return SyncReplicasLocked();
}

void HotspotManager::RegisterCache(HotRowCache* cache) {
  std::lock_guard<std::mutex> lock(mu_);
  caches_.push_back(cache);
  cache->SetStalenessEpochs(options_.staleness_epochs);
  cache->SetHotSet(hot_);
  cache->SetEpoch(epoch_);  // entries start unwarmed; first pull refreshes
}

void HotspotManager::UnregisterCache(HotRowCache* cache) {
  std::lock_guard<std::mutex> lock(mu_);
  caches_.erase(std::remove(caches_.begin(), caches_.end(), cache),
                caches_.end());
}

void HotspotManager::ChargeLocked(const TaskTraffic& t) {
  // SyncNow may be called from inside a task (tests, async trainers): the
  // ambient scope then absorbs the traffic and the stage barrier prices it,
  // keeping the non-thread-safe clock advance on the coordinator only.
  if (TaskTraffic* ambient = TrafficScope::Current()) {
    ambient->MergeFrom(t);
    return;
  }
  master_->cluster()->ChargeOutOfTask(t);
}

Status HotspotManager::Exchange(TaskTraffic* t, int server_id,
                                const std::vector<uint8_t>& request,
                                std::vector<uint8_t>* response) {
  PS2_ASSIGN_OR_RETURN(PsServer::HandleResult result,
                       master_->server(server_id)->Handle(request));
  t->RecordExchange(server_id, WireBytes(request),
                    result.response.size() + Message::kHeaderBytes,
                    result.server_ops);
  *response = std::move(result.response);
  return Status::OK();
}

Status HotspotManager::RefreshHotSetLocked(bool* changed) {
  *changed = false;
  // Aggregate the per-server sketches. This rides the master's heartbeat
  // exchanges (a few hundred bytes of control traffic), so it is not
  // charged to the data path.
  std::map<std::pair<int, uint32_t>, uint64_t> counts;
  const size_t per_server_k = static_cast<size_t>(4 * options_.top_k);
  for (int s = 0; s < master_->num_servers(); ++s) {
    for (const SpaceSavingSketch::Entry& e :
         master_->server(s)->TopPulledRows(per_server_k)) {
      counts[{e.ref.matrix_id, e.ref.row}] += e.count;
    }
  }
  std::vector<std::pair<uint64_t, std::pair<int, uint32_t>>> ranked;
  ranked.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    if (count >= options_.min_pull_count) ranked.emplace_back(count, key);
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });

  std::vector<std::pair<RowRef, uint64_t>> hot;
  for (const auto& [count, key] : ranked) {
    if (hot.size() >= static_cast<size_t>(options_.top_k)) break;
    Result<MatrixMeta> meta = master_->GetMeta(key.first);
    if (!meta.ok()) continue;  // matrix freed since the pulls were recorded
    if (meta->storage != MatrixStorage::kDense) continue;
    if (key.second >= meta->num_rows) continue;
    hot.emplace_back(RowRef{key.first, key.second}, meta->dim);
  }
  std::sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
    return std::make_pair(a.first.matrix_id, a.first.row) <
           std::make_pair(b.first.matrix_id, b.first.row);
  });

  MetricsRegistry& metrics = master_->cluster()->metrics();
  metrics.Add("hotspot.refreshes", 1);
  if (hot == hot_) {
    // Stable hot set (the common steady state): nothing to (re)install, and
    // the regular sync cadence keeps replicas fresh.
    return Status::OK();
  }
  *changed = true;
  // Flush the outgoing hot set first, so pendings of rows about to be
  // demoted are not lost.
  if (!hot_.empty()) PS2_RETURN_NOT_OK(SyncReplicasLocked());
  hot_ = std::move(hot);
  PS2_RETURN_NOT_OK(InstallHotSetLocked(hot_));
  PS2_RETURN_NOT_OK(SyncReplicasLocked());
  metrics.Set("hotspot.hot_rows", hot_.size());
  return Status::OK();
}

Status HotspotManager::InstallHotSetLocked(
    const std::vector<std::pair<RowRef, uint64_t>>& hot) {
  BufferWriter writer;
  writer.WriteU8(static_cast<uint8_t>(PsOpCode::kHotSetUpdate));
  writer.WriteVarint(hot.size());
  for (const auto& [ref, dim] : hot) {
    writer.WriteVarint(static_cast<uint64_t>(ref.matrix_id));
    writer.WriteVarint(ref.row);
    writer.WriteVarint(dim);
  }
  const std::vector<uint8_t> request = writer.Release();

  TaskTraffic t;
  t.rounds += 1;  // one parallel fan-out to every server
  for (int s = 0; s < master_->num_servers(); ++s) {
    std::vector<uint8_t> response;
    PS2_RETURN_NOT_OK(Exchange(&t, s, request, &response));
  }
  ChargeLocked(t);
  for (HotRowCache* cache : caches_) cache->SetHotSet(hot);
  return Status::OK();
}

Status HotspotManager::SyncReplicasLocked() {
  if (hot_.empty()) return Status::OK();
  const size_t n = hot_.size();
  const int num_servers = master_->num_servers();
  TaskTraffic t;

  // ---- Phase 0: collect pending deltas + primary slices from every server.
  BufferWriter collect;
  collect.WriteU8(static_cast<uint8_t>(PsOpCode::kReplicaSync));
  collect.WriteU8(0);
  collect.WriteVarint(n);
  for (const auto& [ref, dim] : hot_) {
    collect.WriteVarint(static_cast<uint64_t>(ref.matrix_id));
    collect.WriteVarint(ref.row);
  }
  const std::vector<uint8_t> collect_req = collect.Release();

  std::vector<std::map<uint64_t, double>> merged(n);
  std::vector<std::vector<double>> fresh(n);
  for (size_t i = 0; i < n; ++i) fresh[i].assign(hot_[i].second, 0.0);

  t.rounds += 1;
  for (int s = 0; s < num_servers; ++s) {
    std::vector<uint8_t> response;
    PS2_RETURN_NOT_OK(Exchange(&t, s, collect_req, &response));
    BufferReader in(response);
    for (size_t i = 0; i < n; ++i) {
      PS2_ASSIGN_OR_RETURN(uint64_t nnz, in.ReadVarint());
      std::vector<uint64_t> cols(nnz);
      uint64_t prev = 0;
      for (uint64_t j = 0; j < nnz; ++j) {
        PS2_ASSIGN_OR_RETURN(uint64_t delta, in.ReadVarint());
        prev += delta;
        cols[j] = prev;
      }
      for (uint64_t j = 0; j < nnz; ++j) {
        PS2_ASSIGN_OR_RETURN(double v, in.ReadF64());
        merged[i][cols[j]] += v;
      }
      PS2_ASSIGN_OR_RETURN(uint8_t has_slice, in.ReadU8());
      if (has_slice != 0) {
        PS2_ASSIGN_OR_RETURN(uint64_t begin, in.ReadVarint());
        PS2_ASSIGN_OR_RETURN(uint64_t width, in.ReadVarint());
        if (begin + width > fresh[i].size()) {
          return Status::Internal("replica slice outside row dimension");
        }
        PS2_ASSIGN_OR_RETURN(std::vector<double> slice,
                             in.ReadF64Span(width));
        std::copy(slice.begin(), slice.end(), fresh[i].begin() + begin);
      }
    }
  }

  // ---- Apply merged pendings to the primaries (and the reconciled rows).
  bool any_pending = false;
  for (const auto& m : merged) any_pending |= !m.empty();
  if (any_pending) {
    t.rounds += 1;
    for (size_t i = 0; i < n; ++i) {
      if (merged[i].empty()) continue;
      for (const auto& [col, v] : merged[i]) fresh[i][col] += v;
      PS2_ASSIGN_OR_RETURN(MatrixMeta meta,
                           master_->GetMeta(hot_[i].first.matrix_id));
      // Route each owner its columns as one sparse push.
      std::map<int, std::pair<std::vector<uint64_t>, std::vector<double>>>
          per_server;
      for (const auto& [col, v] : merged[i]) {
        auto& [cols, vals] = per_server[meta.partitioner.ServerOfColumn(col)];
        cols.push_back(col);
        vals.push_back(v);
      }
      for (const auto& [server, cv] : per_server) {
        BufferWriter push;
        push.WriteU8(static_cast<uint8_t>(PsOpCode::kPushSparse));
        push.WriteVarint(static_cast<uint64_t>(hot_[i].first.matrix_id));
        push.WriteVarint(hot_[i].first.row);
        push.WriteVarint(cv.first.size());
        uint64_t prev = 0;
        for (uint64_t col : cv.first) {
          push.WriteVarint(col - prev);
          prev = col;
        }
        for (double v : cv.second) push.WriteF64(v);
        std::vector<uint8_t> response;
        PS2_RETURN_NOT_OK(Exchange(&t, server, push.Release(), &response));
      }
    }
  }

  // ---- Phase 1: install the reconciled rows everywhere under a new epoch.
  ++epoch_;
  BufferWriter install;
  install.WriteU8(static_cast<uint8_t>(PsOpCode::kReplicaSync));
  install.WriteU8(1);
  install.WriteVarint(epoch_);
  install.WriteVarint(n);
  for (size_t i = 0; i < n; ++i) {
    install.WriteVarint(static_cast<uint64_t>(hot_[i].first.matrix_id));
    install.WriteVarint(hot_[i].first.row);
    install.WriteVarint(fresh[i].size());
    install.WriteF64Span(fresh[i].data(), fresh[i].size());
  }
  const std::vector<uint8_t> install_req = install.Release();
  t.rounds += 1;
  for (int s = 0; s < num_servers; ++s) {
    std::vector<uint8_t> response;
    PS2_RETURN_NOT_OK(Exchange(&t, s, install_req, &response));
  }

  // ---- Warm every registered client cache with the reconciled values.
  for (HotRowCache* cache : caches_) {
    for (size_t i = 0; i < n; ++i) {
      cache->Store(hot_[i].first, fresh[i], epoch_);
    }
    cache->SetEpoch(epoch_);
  }

  ChargeLocked(t);
  MetricsRegistry& metrics = master_->cluster()->metrics();
  metrics.Add("hotspot.syncs", 1);
  metrics.Add("hotspot.sync_bytes",
              t.TotalBytesToServers() + t.TotalBytesFromServers());
  return Status::OK();
}

}  // namespace ps2
