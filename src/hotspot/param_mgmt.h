#pragma once

// Per-key parameter management (DESIGN.md §13) — the NuPS generalization of
// the hotspot subsystem: every key gets the management technique its access
// pattern earns.
//
//   hot  — replicated in full on every server (hotspot/hotspot_manager.h,
//          exactly the PR-2 machinery, driven explicitly from here).
//   warm — *relocated*: the key's whole single-partition matrix
//          (MatrixOptions::home_server) migrates to the server co-located
//          with its dominant accessor, through the same epoch-stamped
//          fence/extract/install/commit path joins and leaves use
//          (membership/membership_manager.h). With ClusterSpec
//          colocate_workers on, that accessor's traffic to the key becomes
//          loopback — no NIC bytes at all.
//   cold — untouched: plain sharded access.
//
// The classifier runs on the coordinator between stages (trainers call
// Tick() once per iteration, like HotspotManager::Tick), off worker-side
// access counts the trainer reports per batch. Counts halve every
// classification window, so tiering tracks the recent access mix.
// Relocation is rate-limited per key by a hysteresis window: a key whose
// dominant accessor oscillates moves at most once per
// `hysteresis_ticks` ticks, so two workers fighting over a key cannot make
// it thrash across the wire.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "hotspot/hotspot_manager.h"

namespace ps2 {

class PsMaster;

/// \brief Which per-key management policy a trainer runs.
enum class ParamMgmtMode {
  kOff,      ///< every key sharded; no statistics
  kHotspot,  ///< PR-2 behaviour: sketch-driven hot replication only
  kNups,     ///< full tiering: replicate hot, relocate warm, shard cold
};

/// Parses "off" / "hotspot" / "nups"; returns false on anything else.
bool ParseParamMgmtMode(const std::string& text, ParamMgmtMode* mode);
const char* ParamMgmtModeName(ParamMgmtMode mode);

/// \brief Tuning knobs for the three-tier classifier.
struct ParamMgmtOptions {
  ParamMgmtMode mode = ParamMgmtMode::kOff;
  /// Keys replicated everywhere (the hot tier size).
  int hot_k = 32;
  /// Keys considered for relocation per classification (the warm tier cap).
  int warm_k = 256;
  /// Minimum share of a key's recent accesses that one executor must own
  /// before the key relocates to that executor's co-located server.
  double dominance = 0.5;
  /// Minimum recent access count before a key is tiered at all.
  uint64_t min_count = 8;
  /// Classify every this many ticks.
  int tick_every = 1;
  /// Reconcile hot replicas every this many ticks (kNups; kHotspot uses the
  /// HotspotOptions cadence).
  int sync_every = 1;
  /// A key relocates at most once per this many ticks.
  int hysteresis_ticks = 4;
  /// Options forwarded to HotspotManager::Enable in kHotspot mode.
  HotspotOptions hotspot;

  Status Validate() const;
};

/// \brief Coordinator-side driver of per-key tiering.
///
/// Thread-safe. RecordBatch may be called from task threads; Tick must run
/// between stages (it migrates keys, which must never straddle in-flight
/// batched requests).
class ParamMgmtManager {
 public:
  ParamMgmtManager(PsMaster* master, const ParamMgmtOptions& options);

  /// Validates options and arms the chosen mode (kHotspot enables the
  /// hotspot subsystem). Call once before training.
  Status Enable();

  const ParamMgmtOptions& options() const { return options_; }

  /// Declares key `key` to live in matrix `matrix_id` (a single-partition
  /// home_server matrix) with `num_rows` replicable rows. Keys must form a
  /// dense 0..n-1 space.
  Status RegisterKey(int key, int matrix_id, uint32_t num_rows);

  /// Reports one task batch's access counts, attributed to `executor`.
  void RecordBatch(int executor,
                   const std::vector<std::pair<int, uint64_t>>& key_counts);

  /// One trainer iteration: classify (every tick_every), replicate/relocate
  /// on tier changes, sync hot replicas (every sync_every). No-op in kOff.
  Status Tick();

  /// Current home server of `key` (tests, benches).
  int HomeOf(int key) const;
  /// Keys whose home differs from where they were created.
  uint64_t relocated_keys() const;
  /// Relocations executed so far (a key moving twice counts twice).
  uint64_t relocations() const;

 private:
  struct KeyState {
    int matrix_id = -1;
    uint32_t num_rows = 0;
    int original_home = -1;
    int home = -1;
    /// Tick of the key's last relocation; 0 = never moved.
    uint64_t last_move_tick = 0;
    /// Recent access count per executor (decayed).
    std::vector<uint64_t> counts;
    uint64_t total = 0;
  };

  /// Re-tiers every registered key and executes the resulting replication
  /// and relocation batch (mu_ held). Sets *synced when the hot set changed
  /// (ReplicateNow already synced the replicas this tick).
  Status ClassifyLocked(bool* synced);

  PsMaster* master_;
  ParamMgmtOptions options_;
  mutable std::mutex mu_;
  uint64_t tick_ = 0;
  std::vector<KeyState> keys_;
  /// Hot set installed last classification, sorted by (matrix, row).
  std::vector<RowRef> hot_refs_;
  uint64_t relocations_ = 0;
};

}  // namespace ps2
