#include "hotspot/client_cache.h"

#include <algorithm>

namespace ps2 {

uint64_t HotRowCache::HotDim(RowRef ref) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find({ref.matrix_id, ref.row});
  return it == entries_.end() ? 0 : it->second.dim;
}

bool HotRowCache::TryServeDense(RowRef ref, uint64_t begin, uint64_t end,
                                double* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find({ref.matrix_id, ref.row});
  if (it == entries_.end() || !Fresh(it->second) ||
      end > it->second.values.size() || begin > end) {
    ++misses_;
    return false;
  }
  std::copy(it->second.values.begin() + begin, it->second.values.begin() + end,
            out);
  ++hits_;
  return true;
}

bool HotRowCache::TryServeSparse(RowRef ref,
                                 const std::vector<uint64_t>& indices,
                                 double* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find({ref.matrix_id, ref.row});
  if (it == entries_.end() || !Fresh(it->second)) {
    ++misses_;
    return false;
  }
  const std::vector<double>& values = it->second.values;
  for (size_t k = 0; k < indices.size(); ++k) {
    if (indices[k] >= values.size()) {
      ++misses_;
      return false;
    }
    out[k] = values[indices[k]];
  }
  ++hits_;
  return true;
}

void HotRowCache::Store(RowRef ref, std::vector<double> values,
                        uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find({ref.matrix_id, ref.row});
  if (it == entries_.end()) return;
  it->second.values = std::move(values);
  it->second.epoch = epoch;
}

void HotRowCache::SetHotSet(
    const std::vector<std::pair<RowRef, uint64_t>>& rows_dims) {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::pair<int, uint32_t>, Entry> next;
  for (const auto& [ref, dim] : rows_dims) {
    const std::pair<int, uint32_t> key{ref.matrix_id, ref.row};
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.dim == dim) {
      next.emplace(key, std::move(it->second));
    } else {
      Entry e;
      e.dim = dim;
      next.emplace(key, std::move(e));
    }
  }
  entries_ = std::move(next);
  has_hot_.store(!entries_.empty(), std::memory_order_relaxed);
}

void HotRowCache::SetStalenessEpochs(int epochs) {
  std::lock_guard<std::mutex> lock(mu_);
  staleness_epochs_ = std::max(1, epochs);
}

void HotRowCache::SetEpoch(uint64_t epoch) {
  epoch_.store(epoch, std::memory_order_relaxed);
}

uint64_t HotRowCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t HotRowCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

}  // namespace ps2
