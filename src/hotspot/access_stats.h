#pragma once

// Access statistics for hot-parameter detection (ROADMAP "heavy traffic").
//
// Every PsServer tracks how often each (matrix, row) is pulled and pushed
// with a space-saving heavy-hitter sketch (Metwally et al.): bounded memory,
// guaranteed to retain any key whose true frequency exceeds N/capacity, with
// a per-key overestimation bound of `error`. The master aggregates the
// per-server sketches into a ranked hot set (hotspot/hotspot_manager.h) —
// NuPS-style hot-key management layered on the PS2 column partitioning.
//
// The sketches are soft state: they are NOT checkpointed and start cold
// after a server recovery. Misranking a hot row for a few iterations costs
// only efficiency, never correctness.

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "ps/ps_types.h"

namespace ps2 {

/// \brief Bounded-memory heavy-hitter counter over (matrix, row) keys.
class SpaceSavingSketch {
 public:
  /// One monitored key with its estimated count.
  struct Entry {
    RowRef ref;
    uint64_t count = 0;  ///< estimate; true count is in [count-error, count]
    uint64_t error = 0;  ///< overestimation bound inherited at eviction
  };

  explicit SpaceSavingSketch(size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Counts one access of `ref`. If the sketch is full and `ref` is not
  /// monitored, the minimum-count entry is evicted and `ref` takes over its
  /// count (+1) with that count as its error bound — the space-saving rule.
  void Record(RowRef ref, uint64_t weight = 1);

  /// Monitored entries sorted by descending estimated count.
  std::vector<Entry> TopK(size_t k) const;

  /// Total accesses recorded (exact, independent of evictions).
  uint64_t total() const { return total_; }
  size_t size() const { return counts_.size(); }
  size_t capacity() const { return capacity_; }

  void Clear();

 private:
  struct Cell {
    uint64_t count = 0;
    uint64_t error = 0;
  };

  size_t capacity_;
  uint64_t total_ = 0;
  std::map<std::pair<int, uint32_t>, Cell> counts_;
};

/// \brief Pull and push frequency sketches of one server.
struct AccessStats {
  explicit AccessStats(size_t capacity = 256)
      : pulls(capacity), pushes(capacity) {}

  SpaceSavingSketch pulls;
  SpaceSavingSketch pushes;
};

}  // namespace ps2
