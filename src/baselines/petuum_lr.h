#pragma once

// Petuum-style GLM baseline (paper §6.3.1).
//
// Petuum is a general-purpose parameter-server system, but — as the paper
// points out — "Petuum has to pull all of the model": every worker pulls the
// FULL dense weight vector each iteration instead of only the coordinates
// its batch touches. The 1.6-2.3x edge PS2 shows in Fig. 10 is exactly this
// sparse-versus-dense communication gap; everything else (SGD math, batch
// schedule) is held identical.

#include "common/result.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"
#include "ml/train_report.h"

namespace ps2 {

/// Trains a GLM the Petuum way: full-model pulls, SGD only.
Result<TrainReport> TrainGlmPetuum(DcvContext* ctx,
                                   const Dataset<Example>& data,
                                   const GlmOptions& options);

}  // namespace ps2
