#pragma once

// MLlib*-style GLM baseline (paper §7, reference [34]: "MLlib* further
// optimizes MLlib by integrating MLlib with model averaging and AllReduce
// implementation in the context of generalized linear models").
//
// Included as an extension baseline between MLlib and the PS systems: each
// worker keeps a local model replica, takes several local SGD steps per
// round on its own partition, and the replicas are averaged with a ring
// allreduce — no driver bottleneck and no parameter servers. Fast per
// round, but model averaging changes the statistical trajectory (local
// steps diverge between averages), which is why PS architectures still win
// on sparse high-dimensional models: the allreduce buffer is the FULL dense
// model regardless of batch sparsity.

#include "common/result.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "ml/logreg.h"
#include "ml/train_report.h"

namespace ps2 {

/// \brief MLlib* options: GLM options plus the local-steps-per-round knob.
struct MllibStarOptions {
  GlmOptions glm;
  int local_steps_per_round = 4;
};

/// Trains a GLM with model averaging + ring allreduce (MLlib* pattern).
Result<TrainReport> TrainGlmMllibStar(Cluster* cluster,
                                      const Dataset<Example>& data,
                                      const MllibStarOptions& options);

}  // namespace ps2
