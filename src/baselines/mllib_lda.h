#pragma once

// Spark MLlib-style LDA baseline (paper §6.3.3, Fig. 12(b)).
//
// MLlib manages the topic model on the driver: each iteration it broadcasts
// the dense vocab x topics matrix to every executor and gathers every
// executor's dense count-delta matrix back — the same single-node pattern
// as its GLM path, at topic-model scale. The paper reports PS2 17x faster
// (and MLlib OOMs beyond K = 100; we surface that as a status).

#include "common/result.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "ml/lda/lda_model.h"
#include "ml/train_report.h"

namespace ps2 {

/// Trains LDA with driver-managed counts (MLlib pattern). Fails with
/// ResourceExhausted-style Unavailable for large K, as observed in the
/// paper ("Spark MLlib cannot deal with large models").
Result<TrainReport> TrainLdaMllib(Cluster* cluster,
                                  const Dataset<Document>& docs,
                                  const LdaOptions& options);

}  // namespace ps2
