#include "baselines/mllib_lr.h"

#include <memory>
#include <unordered_map>

#include "common/logging.h"
#include "dataflow/broadcast.h"
#include "ml/metrics.h"
#include "ml/optimizer.h"

namespace ps2 {

Result<MllibReport> TrainGlmMllib(Cluster* cluster,
                                  const Dataset<Example>& data,
                                  const GlmOptions& options,
                                  std::vector<double>* weights_out) {
  PS2_RETURN_NOT_OK(options.Validate());
  const uint64_t dim = options.dim;
  const int n_state = OptimizerStateVectors(options.optimizer.kind);

  // The driver holds the model and optimizer state as plain dense arrays —
  // the "single node" of the paper's analysis.
  auto w = std::make_shared<std::vector<double>>(dim, 0.0);
  std::vector<double> s(n_state >= 1 ? dim : 0, 0.0);
  std::vector<double> v(n_state >= 2 ? dim : 0, 0.0);
  std::vector<double> grad_dense(dim, 0.0);

  MllibReport out;
  out.report.system = std::string("Spark-") +
                      OptimizerKindName(options.optimizer.kind);
  const SimTime t0 = cluster->clock().Now();
  const GlmLossKind loss_kind = options.loss;

  for (int iter = 0; iter < options.iterations; ++iter) {
    // (1) Model broadcast: the full dense model goes to every executor.
    SimTime mark = cluster->clock().Now();
    Broadcast<std::shared_ptr<const std::vector<double>>> bw = BroadcastValue(
        cluster,
        std::shared_ptr<const std::vector<double>>(
            std::make_shared<std::vector<double>>(*w)),
        dim * sizeof(double));
    out.breakdown.broadcast += cluster->clock().Now() - mark;

    // (2) Gradient calculation on executors.
    mark = cluster->clock().Now();
    Dataset<Example> batch =
        data.Sample(options.batch_fraction,
                    options.seed * 1000003ULL + static_cast<uint64_t>(iter));
    std::vector<BatchGradient> partials =
        batch.MapPartitionsCollect<BatchGradient>(
            [&bw, loss_kind](TaskContext& task,
                             const std::vector<Example>& rows) {
              const std::vector<double>& weights = *bw.value();
              BatchGradient bg = ComputeBatchGradient(
                  rows, [&weights](uint64_t j) { return weights[j]; },
                  loss_kind);
              task.AddWorkerOps(bg.ops);
              return bg;
            });
    out.breakdown.compute += cluster->clock().Now() - mark;

    // (3) Gradient aggregation: every executor ships its gradient to the
    // driver. MLlib's aggregation buffer is DENSE (a dim-sized vector per
    // executor regardless of batch sparsity), which is exactly why this
    // step dominates Fig. 1(b) at high dimensions.
    mark = cluster->clock().Now();
    double loss_sum = 0;
    uint64_t count = 0;
    for (const BatchGradient& bg : partials) {
      loss_sum += bg.loss_sum;
      count += bg.count;
    }
    const int n_tasks = static_cast<int>(partials.size());
    const uint64_t dense_gradient_bytes = dim * 8;
    cluster->AdvanceClock(
        cluster->cost().GatherAtOne(n_tasks, dense_gradient_bytes));
    cluster->metrics().Add("net.bytes_gathered_at_driver",
                           dense_gradient_bytes * n_tasks);
    uint64_t agg_ops = 0;
    for (const BatchGradient& bg : partials) {
      bg.gradient.AxpyInto(&grad_dense, 1.0);
      agg_ops += 2 * bg.gradient.nnz();
    }
    cluster->ChargeDriver(cluster->cost().DriverCompute(agg_ops));
    out.breakdown.aggregate += cluster->clock().Now() - mark;

    // (4) Model update on the driver, across the full dense dimension.
    mark = cluster->clock().Now();
    if (count > 0) {
      const double inv = 1.0 / static_cast<double>(count);
      for (double& g : grad_dense) g *= inv;
      uint64_t update_ops = ApplyOptimizerStep(
          options.optimizer, iter + 1, w->data(), grad_dense.data(),
          s.empty() ? nullptr : s.data(), v.empty() ? nullptr : v.data(), dim);
      cluster->ChargeDriver(cluster->cost().DriverCompute(update_ops + dim));
      std::fill(grad_dense.begin(), grad_dense.end(), 0.0);
    }
    out.breakdown.update += cluster->clock().Now() - mark;

    if (count > 0) {
      TrainPoint point;
      point.iteration = iter;
      point.time = cluster->clock().Now() - t0;
      point.loss = loss_sum / static_cast<double>(count);
      out.report.curve.push_back(point);
      out.report.final_loss = point.loss;
    }
  }
  out.report.total_time = cluster->clock().Now() - t0;
  if (weights_out != nullptr) *weights_out = *w;
  return out;
}

}  // namespace ps2
