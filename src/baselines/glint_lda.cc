#include "baselines/glint_lda.h"

#include <algorithm>

#include "common/logging.h"
#include "ml/lda/gibbs_sampler.h"

// Baseline fidelity: each batch call is one blocking round
// (XAsync(...).Wait()/.Get() with nothing outstanding), which is exactly the
// traffic pattern this baseline models.

namespace ps2 {

Result<TrainReport> TrainLdaGlint(DcvContext* ctx,
                                  const Dataset<Document>& docs,
                                  const LdaOptions& options,
                                  size_t docs_per_batch) {
  PS2_RETURN_NOT_OK(options.Validate());
  if (docs_per_batch == 0) {
    return Status::InvalidArgument("docs_per_batch must be positive");
  }
  Cluster* cluster = ctx->cluster();
  const uint32_t k_topics = options.num_topics;

  PS2_ASSIGN_OR_RETURN(
      std::vector<Dcv> topic_rows,
      ctx->DenseMatrix(options.vocab_size, k_topics, 0.0, 0,
                       "glint.word_topic"));
  PS2_ASSIGN_OR_RETURN(Dcv topic_totals,
                       ctx->Dense(k_topics, 2, 1, 0, "glint.topic_totals"));
  std::vector<RowRef> topic_refs;
  for (const Dcv& row : topic_rows) topic_refs.push_back(row.ref());

  const size_t num_partitions = docs.num_partitions();
  std::vector<LdaPartitionState> states(num_partitions);
  PsClient* client = ctx->client();

  TrainReport report;
  report.system = "Glint-LDA";
  const SimTime t0 = cluster->clock().Now();

  docs.ForeachPartition([&](TaskContext& task,
                            const std::vector<Document>& rows) {
    LdaPartitionState& state = states[task.task_id];
    Rng rng = task.rng.Split(0x1DA0);
    state.Initialize(rows, options, &rng);
    task.AddWorkerOps(state.total_tokens() * 4);
    PS2_CHECK_OK(client
                     ->PushSparseRowsAsync(topic_refs,
                                           state.InitialTopicCounts(options),
                                           /*compress_counts=*/false)
                     .Wait());
    PS2_CHECK_OK(topic_totals.Push(state.InitialTopicTotals(options)));
  });

  for (int iter = 0; iter < options.iterations; ++iter) {
    std::vector<std::pair<double, uint64_t>> partials =
        docs.MapPartitionsCollect<std::pair<double, uint64_t>>(
            [&](TaskContext& task, const std::vector<Document>&)
                -> std::pair<double, uint64_t> {
              LdaPartitionState& state = states[task.task_id];
              const auto& vocab = state.local_vocab();
              if (vocab.empty()) return {0.0, 0};
              Rng rng = task.rng.Split(0x1DA1 + iter);

              // Partition-wide count buffer; every batch refreshes the
              // columns of its own words just before sampling them.
              std::vector<std::vector<double>> nwt_local(
                  k_topics, std::vector<double>(vocab.size(), 0.0));
              double loglik = 0;
              uint64_t tokens = 0;
              for (size_t doc_begin = 0; doc_begin < state.num_docs();
                   doc_begin += docs_per_batch) {
                size_t doc_end =
                    std::min(state.num_docs(), doc_begin + docs_per_batch);
                std::vector<size_t> batch_words =
                    state.DocRangeLocalWords(doc_begin, doc_end);
                std::vector<uint64_t> batch_vocab;
                batch_vocab.reserve(batch_words.size());
                for (size_t j : batch_words) {
                  batch_vocab.push_back(vocab[j]);
                }
                // Per-batch pull: the Glint redundancy (hot words re-pulled
                // every batch), uncompressed.
                Result<std::vector<std::vector<double>>> pulled =
                    client
                        ->PullSparseRowsAsync(topic_refs, batch_vocab,
                                              /*compress_counts=*/false)
                        .Get();
                PS2_CHECK(pulled.ok()) << pulled.status();
                Result<std::vector<double>> nt = topic_totals.Pull();
                PS2_CHECK(nt.ok()) << nt.status();
                for (uint32_t k = 0; k < k_topics; ++k) {
                  for (size_t b = 0; b < batch_words.size(); ++b) {
                    nwt_local[k][batch_words[b]] = (*pulled)[k][b];
                  }
                }
                LdaPartitionState::SweepResult sweep = state.Sweep(
                    options, &nwt_local, &*nt, &rng, doc_begin, doc_end);
                task.AddWorkerOps(sweep.tokens * (4 * k_topics + 8));
                PS2_CHECK_OK(client
                                 ->PushSparseRowsAsync(
                                     topic_refs, sweep.topic_deltas,
                                     /*compress_counts=*/false)
                                 .Wait());
                PS2_CHECK_OK(topic_totals.Push(sweep.topic_total_deltas));
                loglik += sweep.loglik_sum;
                tokens += sweep.tokens;
              }
              return {loglik, tokens};
            });

    double loglik = 0;
    uint64_t tokens = 0;
    for (const auto& [l, c] : partials) {
      loglik += l;
      tokens += c;
    }
    if (tokens == 0) continue;
    TrainPoint point;
    point.iteration = iter;
    point.time = cluster->clock().Now() - t0;
    point.loss = -loglik / static_cast<double>(tokens);
    report.curve.push_back(point);
    report.final_loss = point.loss;
  }
  report.total_time = cluster->clock().Now() - t0;
  return report;
}

}  // namespace ps2
