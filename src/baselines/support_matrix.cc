#include "baselines/support_matrix.h"

#include <sstream>

namespace ps2 {

std::vector<SystemSupport> PaperTable3() {
  return {
      {"Spark MLlib", true, false, true, true},
      {"DistML", true, false, false, true},
      {"Glint", false, false, false, true},
      {"Petuum", true, false, false, true},
      {"XGBoost", false, false, true, false},
      {"PS2", true, true, true, true},
  };
}

std::string FormatSupportMatrix(const std::vector<SystemSupport>& rows) {
  std::ostringstream os;
  os << "System        LR   DeepWalk GBDT LDA\n";
  for (const SystemSupport& row : rows) {
    os << row.system;
    for (size_t i = row.system.size(); i < 14; ++i) os << ' ';
    os << (row.lr ? "yes  " : "no   ");
    os << (row.deepwalk ? "yes      " : "no       ");
    os << (row.gbdt ? "yes  " : "no   ");
    os << (row.lda ? "yes" : "no");
    os << "\n";
  }
  return os.str();
}

}  // namespace ps2
