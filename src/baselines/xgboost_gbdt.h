#pragma once

// XGBoost-style GBDT baseline (paper §6.3.2, Fig. 11).
//
// Identical trees to TrainGbdtPs2 (same sketch, histograms, split rule and
// seeds); the difference under test is the aggregation pattern: XGBoost
// AllReduces the FULL gradient/hessian histogram of every frontier node
// among all workers each level — "conducted by AllReduce, which generates
// vast communication cost" — then every worker scans it locally. PS2
// instead ships local histograms to sharded servers once and gets back one
// split candidate per server.

#include "common/result.h"
#include "data/gbdt_gen.h"
#include "dataflow/dataset.h"
#include "ml/gbdt/gbdt.h"

namespace ps2 {

/// Trains GBDT with allreduce histogram aggregation ("XGBoost").
Result<GbdtReport> TrainGbdtXgboost(Cluster* cluster,
                                    const Dataset<GbdtRow>& data,
                                    const GbdtOptions& options);

}  // namespace ps2
