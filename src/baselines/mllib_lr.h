#pragma once

// Spark MLlib-style GLM training (the paper's §2 baseline, "Spark-" in
// Fig. 9).
//
// Per iteration, exactly the four steps the paper profiles:
//   (1) model broadcast    — driver torrent-broadcasts the dense weights,
//   (2) gradient calc      — executors compute batch gradients,
//   (3) gradient aggregate — the single-node driver gathers every
//                            executor's gradient (the bottleneck),
//   (4) model update       — the driver updates the model locally.
//
// Cumulative per-step virtual times are reported so Fig. 1(b)'s breakdown
// can be regenerated.

#include <vector>

#include "common/result.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "ml/logreg.h"
#include "ml/train_report.h"

namespace ps2 {

/// \brief Cumulative virtual time spent in each MLlib step.
struct MllibStepBreakdown {
  SimTime broadcast = 0;
  SimTime compute = 0;
  SimTime aggregate = 0;
  SimTime update = 0;

  SimTime Total() const { return broadcast + compute + aggregate + update; }
};

/// \brief MLlib training outcome: loss curve plus the step breakdown.
struct MllibReport {
  TrainReport report;
  MllibStepBreakdown breakdown;
};

/// Trains a GLM the Spark MLlib way (driver-managed model).
/// `weights_out`, if non-null, receives the final dense weights.
Result<MllibReport> TrainGlmMllib(Cluster* cluster,
                                  const Dataset<Example>& data,
                                  const GlmOptions& options,
                                  std::vector<double>* weights_out = nullptr);

}  // namespace ps2
