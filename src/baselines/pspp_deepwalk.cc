#include "baselines/pspp_deepwalk.h"

#include <algorithm>
#include <memory>
#include <unordered_map>

#include "common/logging.h"
#include "data/graph_gen.h"
#include "dataflow/broadcast.h"
#include "ml/metrics.h"

// Baseline fidelity: each batch call is one blocking round
// (XAsync(...).Wait()/.Get() with nothing outstanding), which is exactly the
// traffic pattern this baseline models.

namespace ps2 {

Result<TrainReport> TrainDeepWalkPsPullPush(
    DcvContext* ctx, const Dataset<VertexPair>& pairs,
    const std::vector<double>& vertex_frequencies,
    const DeepWalkOptions& options) {
  PS2_RETURN_NOT_OK(options.Validate());
  if (vertex_frequencies.size() < options.num_vertices) {
    return Status::InvalidArgument(
        "vertex_frequencies must cover every vertex");
  }
  Cluster* cluster = ctx->cluster();
  const uint32_t v_count = options.num_vertices;
  const uint32_t k_dim = options.embedding_dim;

  PS2_ASSIGN_OR_RETURN(
      std::vector<Dcv> rows,
      ctx->DenseMatrix(k_dim, 2 * v_count, 0.5 / k_dim, options.seed,
                       "psdw.embeddings", options.num_servers));
  const int matrix_id = rows[0].ref().matrix_id;

  auto neg_table = std::make_shared<const AliasTable>(std::vector<double>(
      vertex_frequencies.begin(),
      vertex_frequencies.begin() + options.num_vertices));
  Broadcast<std::shared_ptr<const AliasTable>> bcast =
      BroadcastValue(cluster, neg_table,
                     static_cast<uint64_t>(v_count) * sizeof(double));

  PsClient* client = ctx->client();
  TrainReport report;
  report.system = "PS-DeepWalk";
  const SimTime t0 = cluster->clock().Now();
  const int negatives = options.negative_samples;
  const double lr = options.learning_rate;
  const uint32_t batch_size = options.batch_size;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<std::pair<double, uint64_t>> partials =
        pairs.MapPartitionsCollect<std::pair<double, uint64_t>>(
            [&](TaskContext& task, const std::vector<VertexPair>& prows)
                -> std::pair<double, uint64_t> {
              const AliasTable& table = *bcast.value();
              double loss_sum = 0;
              uint64_t trained = 0;
              Rng rng = task.rng.Split(0xD33F + epoch);
              for (size_t start = 0; start < prows.size();
                   start += batch_size) {
                size_t end = std::min(prows.size(), start + batch_size);

                // Assemble (center, context, label) triples — identical
                // sampling stream to the PS2 trainer.
                struct Triple {
                  uint32_t u_row;
                  uint32_t c_row;
                  double label;
                };
                std::vector<Triple> triples;
                triples.reserve((end - start) * (1 + negatives));
                for (size_t i = start; i < end; ++i) {
                  const VertexPair& p = prows[i];
                  triples.push_back({p.u, v_count + p.v, 1.0});
                  for (int nk = 0; nk < negatives; ++nk) {
                    uint32_t n = table.Sample(&rng);
                    if (n == p.v) n = (n + 1) % v_count;
                    triples.push_back({p.u, v_count + n, 0.0});
                  }
                }

                // Pull every touched row (full K-dim vectors).
                std::vector<uint32_t> touched;
                touched.reserve(2 * triples.size());
                for (const Triple& t : triples) {
                  touched.push_back(t.u_row);
                  touched.push_back(t.c_row);
                }
                std::sort(touched.begin(), touched.end());
                touched.erase(std::unique(touched.begin(), touched.end()),
                              touched.end());
                std::vector<RowRef> refs;
                refs.reserve(touched.size());
                for (uint32_t r : touched) {
                  refs.push_back(RowRef{matrix_id, r});
                }
                Result<std::vector<std::vector<double>>> pulled =
                    client->PullRowsAsync(refs).Get();
                PS2_CHECK(pulled.ok()) << pulled.status();
                std::unordered_map<uint32_t, size_t> slot;
                slot.reserve(touched.size() * 2);
                for (size_t i = 0; i < touched.size(); ++i) {
                  slot.emplace(touched[i], i);
                }
                std::vector<std::vector<double>> local = std::move(*pulled);
                std::vector<std::vector<double>> delta(
                    touched.size(), std::vector<double>(k_dim, 0.0));

                // Local skip-gram updates on the pulled copies.
                for (const Triple& t : triples) {
                  std::vector<double>& u_vec = local[slot[t.u_row]];
                  std::vector<double>& c_vec = local[slot[t.c_row]];
                  double dot = 0;
                  for (uint32_t d = 0; d < k_dim; ++d) {
                    dot += u_vec[d] * c_vec[d];
                  }
                  loss_sum += LogisticLoss(dot, t.label);
                  double alpha = -lr * (Sigmoid(dot) - t.label);
                  std::vector<double>& u_delta = delta[slot[t.u_row]];
                  std::vector<double>& c_delta = delta[slot[t.c_row]];
                  for (uint32_t d = 0; d < k_dim; ++d) {
                    double u_old = u_vec[d];
                    u_vec[d] += alpha * c_vec[d];
                    u_delta[d] += alpha * c_vec[d];
                    c_vec[d] += alpha * u_old;
                    c_delta[d] += alpha * u_old;
                  }
                }
                task.AddWorkerOps(triples.size() * 6 * k_dim);

                // Push the accumulated deltas back.
                PS2_CHECK_OK(client->PushRowsAsync(refs, delta).Wait());
                trained += end - start;
              }
              return {loss_sum, trained * (1 + negatives)};
            });

    double loss_sum = 0;
    uint64_t count = 0;
    for (const auto& [l, c] : partials) {
      loss_sum += l;
      count += c;
    }
    if (count == 0) continue;
    TrainPoint point;
    point.iteration = epoch;
    point.time = cluster->clock().Now() - t0;
    point.loss = loss_sum / static_cast<double>(count);
    report.curve.push_back(point);
    report.final_loss = point.loss;
  }
  report.total_time = cluster->clock().Now() - t0;
  return report;
}

}  // namespace ps2
