#pragma once

// "PS-" GLM baseline: PS2's parameter servers with ONLY pull/push (paper
// §6.2's middle contender, e.g. "PS-Adam").
//
// Without server-side computation, the optimizer step itself must round-trip
// through workers: after gradients are aggregated on the servers, update
// tasks pull the touched slices of [w, s, v, g], apply the optimizer
// locally, and push the deltas back. Statistically identical to PS2 (same
// batches, same aggregated-gradient update); the difference — what Fig. 9
// isolates — is pure model-movement traffic.

#include "common/result.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"
#include "ml/train_report.h"

namespace ps2 {

/// Trains a GLM on parameter servers restricted to pull/push.
Result<TrainReport> TrainGlmPsPullPush(DcvContext* ctx,
                                       const Dataset<Example>& data,
                                       const GlmOptions& options);

}  // namespace ps2
