#pragma once

// The system/algorithm support matrix of paper Table 3.

#include <string>
#include <vector>

namespace ps2 {

/// \brief One row of Table 3: which models a system can train.
struct SystemSupport {
  std::string system;
  bool lr = false;
  bool deepwalk = false;
  bool gbdt = false;
  bool lda = false;
};

/// The paper's Table 3, verbatim.
std::vector<SystemSupport> PaperTable3();

/// Renders the matrix as fixed-width text (checkmark/cross per cell).
std::string FormatSupportMatrix(const std::vector<SystemSupport>& rows);

}  // namespace ps2
