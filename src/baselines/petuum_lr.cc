#include "baselines/petuum_lr.h"

#include "common/logging.h"
#include "ml/metrics.h"

namespace ps2 {

Result<TrainReport> TrainGlmPetuum(DcvContext* ctx,
                                   const Dataset<Example>& data,
                                   const GlmOptions& options) {
  PS2_RETURN_NOT_OK(options.Validate());
  if (options.optimizer.kind != OptimizerKind::kSgd) {
    return Status::NotImplemented(
        "the Petuum baseline supports SGD only (paper §6.3.1: 'Adam is not "
        "adopted because most of these systems do not support Adam')");
  }
  Cluster* cluster = ctx->cluster();

  PS2_ASSIGN_OR_RETURN(Dcv weight,
                       ctx->Dense(options.dim, 2, 1, 0, "petuum.weight"));
  PS2_ASSIGN_OR_RETURN(Dcv gradient, ctx->Derive(weight));

  TrainReport report;
  report.system = "Petuum-SGD";
  const SimTime t0 = cluster->clock().Now();
  const GlmLossKind loss_kind = options.loss;

  for (int iter = 0; iter < options.iterations; ++iter) {
    PS2_RETURN_NOT_OK(gradient.Zero());
    Dataset<Example> batch =
        data.Sample(options.batch_fraction,
                    options.seed * 1000003ULL + static_cast<uint64_t>(iter));
    std::vector<std::pair<double, uint64_t>> partials =
        batch.MapPartitionsCollect<std::pair<double, uint64_t>>(
            [&](TaskContext& task, const std::vector<Example>& rows)
                -> std::pair<double, uint64_t> {
              if (rows.empty()) return {0.0, 0};
              // Full dense model pull — the Petuum behaviour under test.
              Result<std::vector<double>> pulled = weight.Pull();
              PS2_CHECK(pulled.ok()) << pulled.status();
              const std::vector<double>& w = *pulled;
              BatchGradient bg = ComputeBatchGradient(
                  rows, [&w](uint64_t j) { return w[j]; }, loss_kind);
              task.AddWorkerOps(bg.ops);
              PS2_CHECK_OK(gradient.Add(bg.gradient));
              return {bg.loss_sum, bg.count};
            });

    double loss_sum = 0;
    uint64_t count = 0;
    for (const auto& [l, c] : partials) {
      loss_sum += l;
      count += c;
    }
    if (count == 0) continue;
    // Server applies the scaled increment (Petuum's server-side "inc"):
    // w += (-lr/count) * g.
    PS2_RETURN_NOT_OK(weight.Axpy(
        gradient, -options.optimizer.learning_rate /
                      static_cast<double>(count)));

    TrainPoint point;
    point.iteration = iter;
    point.time = cluster->clock().Now() - t0;
    point.loss = loss_sum / static_cast<double>(count);
    report.curve.push_back(point);
    report.final_loss = point.loss;
  }
  report.total_time = cluster->clock().Now() - t0;
  return report;
}

}  // namespace ps2
