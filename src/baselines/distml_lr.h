#pragma once

// DistML-style GLM baseline (paper §6.3.1, Fig. 10).
//
// DistML is the other pioneering Spark+PS system the paper compares
// against. Like Petuum it pulls the full dense model; additionally the
// paper observes it "is not robust": on KDDB it fails to converge no matter
// how hyperparameters are tuned, and it crashes outright on CTR. We emulate
// the documented misbehaviour with two classic bugs of early Spark+PS
// integrations:
//   1. per-worker gradient normalization before the push, so the summed
//      update is effectively multiplied by the number of workers, and
//   2. a stale model snapshot — workers only re-pull the model every
//      `kModelRefreshPeriod` iterations.
// Separately each is survivable; together (big steps taken against stale
// weights) they oscillate or diverge on skewed, high-nnz data like KDDB
// while still limping to convergence on milder data like KDD12 — the exact
// Fig. 10 picture. The CTR-scale crash is surfaced as Unavailable.

#include "common/result.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"
#include "ml/train_report.h"

namespace ps2 {

/// Trains a GLM the DistML way (SGD only; see header comment for the
/// deliberately reproduced aggregation quirk).
Result<TrainReport> TrainGlmDistml(DcvContext* ctx,
                                   const Dataset<Example>& data,
                                   const GlmOptions& options);

}  // namespace ps2
