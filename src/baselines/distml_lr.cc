#include "baselines/distml_lr.h"

#include "common/logging.h"
#include "ml/metrics.h"

namespace ps2 {

namespace {
// DistML "always fails to run on CTR dataset with some bugs we cannot fix"
// (paper §6.3.1). We surface that as a hard failure above this model size.
constexpr uint64_t kDistmlMaxDim = 1500000;
// Bug #2 (see header): workers reuse a stale model snapshot this long.
constexpr int kModelRefreshPeriod = 3;
}  // namespace

Result<TrainReport> TrainGlmDistml(DcvContext* ctx,
                                   const Dataset<Example>& data,
                                   const GlmOptions& options) {
  PS2_RETURN_NOT_OK(options.Validate());
  if (options.optimizer.kind != OptimizerKind::kSgd) {
    return Status::NotImplemented("the DistML baseline supports SGD only");
  }
  if (options.dim > kDistmlMaxDim) {
    return Status::Unavailable(
        "DistML fails on CTR-scale models (reproducing the paper's observed "
        "crash)");
  }
  Cluster* cluster = ctx->cluster();

  PS2_ASSIGN_OR_RETURN(Dcv weight,
                       ctx->Dense(options.dim, 2, 1, 0, "distml.weight"));
  PS2_ASSIGN_OR_RETURN(Dcv gradient, ctx->Derive(weight));

  TrainReport report;
  report.system = "DistML-SGD";
  const SimTime t0 = cluster->clock().Now();
  const GlmLossKind loss_kind = options.loss;
  // Bug #2: the worker-side model snapshot, refreshed only periodically.
  auto snapshot = std::make_shared<std::vector<double>>(options.dim, 0.0);

  for (int iter = 0; iter < options.iterations; ++iter) {
    PS2_RETURN_NOT_OK(gradient.Zero());
    if (iter % kModelRefreshPeriod == 0) {
      PS2_ASSIGN_OR_RETURN(*snapshot, weight.Pull());
    }
    Dataset<Example> batch =
        data.Sample(options.batch_fraction,
                    options.seed * 1000003ULL + static_cast<uint64_t>(iter));
    std::vector<std::pair<double, uint64_t>> partials =
        batch.MapPartitionsCollect<std::pair<double, uint64_t>>(
            [&](TaskContext& task, const std::vector<Example>& rows)
                -> std::pair<double, uint64_t> {
              if (rows.empty()) return {0.0, 0};
              // Workers still issue the (full, dense) pull — the traffic is
              // real — but compute against the stale snapshot, as the racy
              // client cache did.
              Result<std::vector<double>> pulled = weight.Pull();
              PS2_CHECK(pulled.ok()) << pulled.status();
              const std::vector<double>& w = *snapshot;
              BatchGradient bg = ComputeBatchGradient(
                  rows, [&w](uint64_t j) { return w[j]; }, loss_kind);
              task.AddWorkerOps(bg.ops);
              // Bug #1: per-worker normalization before the push, so the
              // aggregate is ~num_workers times the true mean gradient.
              SparseVector local = bg.gradient;
              local.ScaleInPlace(1.0 / static_cast<double>(bg.count));
              PS2_CHECK_OK(gradient.Add(local));
              return {bg.loss_sum, bg.count};
            });

    double loss_sum = 0;
    uint64_t count = 0;
    for (const auto& [l, c] : partials) {
      loss_sum += l;
      count += c;
    }
    if (count == 0) continue;
    PS2_RETURN_NOT_OK(
        weight.Axpy(gradient, -options.optimizer.learning_rate));

    TrainPoint point;
    point.iteration = iter;
    point.time = cluster->clock().Now() - t0;
    point.loss = loss_sum / static_cast<double>(count);
    report.curve.push_back(point);
    report.final_loss = point.loss;
  }
  report.total_time = cluster->clock().Now() - t0;
  return report;
}

}  // namespace ps2
