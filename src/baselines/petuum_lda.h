#pragma once

// Petuum-style LDA baseline (paper §6.3.3, Fig. 12(a)).
//
// Same Gibbs sweep as PS2; the communication difference under test: Petuum
// pulls the FULL dense word-topic rows every iteration (no sparse pulls, no
// count compression). PS2's 3.7x edge in Fig. 12(a) is attributed to "a
// more careful engineering effort for its sparse communication
// implementation and message compression technique" — exactly the two knobs
// disabled here.

#include "common/result.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "dcv/dcv_context.h"
#include "ml/lda/lda_model.h"
#include "ml/train_report.h"

namespace ps2 {

Result<TrainReport> TrainLdaPetuum(DcvContext* ctx,
                                   const Dataset<Document>& docs,
                                   const LdaOptions& options);

}  // namespace ps2
