#include "baselines/mllib_star_lr.h"

#include <memory>
#include <unordered_map>

#include "common/logging.h"
#include "ml/metrics.h"
#include "ml/optimizer.h"

namespace ps2 {

Result<TrainReport> TrainGlmMllibStar(Cluster* cluster,
                                      const Dataset<Example>& data,
                                      const MllibStarOptions& options) {
  PS2_RETURN_NOT_OK(options.glm.Validate());
  if (options.local_steps_per_round <= 0) {
    return Status::InvalidArgument("local_steps_per_round must be positive");
  }
  if (options.glm.optimizer.kind != OptimizerKind::kSgd) {
    return Status::NotImplemented(
        "MLlib* model averaging is defined for SGD");
  }
  const uint64_t dim = options.glm.dim;
  const size_t num_partitions = data.num_partitions();

  // Per-worker model replicas (indexed by partition/task id).
  std::vector<std::vector<double>> replicas(
      num_partitions, std::vector<double>(dim, 0.0));

  TrainReport report;
  report.system = "MLlibStar-SGD";
  const SimTime t0 = cluster->clock().Now();
  const GlmLossKind loss_kind = options.glm.loss;
  const double lr = options.glm.optimizer.learning_rate;
  const int local_steps = options.local_steps_per_round;
  const int rounds =
      (options.glm.iterations + local_steps - 1) / local_steps;

  for (int round = 0; round < rounds; ++round) {
    // Local phase: each worker runs `local_steps` mini-batch SGD steps on
    // its own replica, using only its own partition.
    std::vector<std::pair<double, uint64_t>> partials =
        data.MapPartitionsCollect<std::pair<double, uint64_t>>(
            [&](TaskContext& task, const std::vector<Example>& rows)
                -> std::pair<double, uint64_t> {
              std::vector<double>& w = replicas[task.task_id];
              double loss_sum = 0;
              uint64_t count = 0;
              Rng rng = Rng(options.glm.seed * 2654435761ULL +
                            static_cast<uint64_t>(round))
                            .Split(task.task_id);
              for (int step = 0; step < local_steps; ++step) {
                // Local Bernoulli mini-batch of this partition.
                std::vector<const Example*> batch;
                for (const Example& ex : rows) {
                  if (rng.NextBernoulli(options.glm.batch_fraction)) {
                    batch.push_back(&ex);
                  }
                }
                if (batch.empty()) continue;
                double step_loss = 0;
                std::unordered_map<uint64_t, double> grad;
                for (const Example* ex : batch) {
                  double margin = ex->features.Dot(w);
                  step_loss += loss_kind == GlmLossKind::kLogistic
                                   ? LogisticLoss(margin, ex->label)
                                   : HingeLoss(margin, ex->label);
                  double scale =
                      loss_kind == GlmLossKind::kLogistic
                          ? LogisticGradientScale(margin, ex->label)
                          : ((ex->label > 0.5 ? 1.0 : -1.0) * margin < 1.0
                                 ? -(ex->label > 0.5 ? 1.0 : -1.0)
                                 : 0.0);
                  const auto& idx = ex->features.indices();
                  const auto& val = ex->features.values();
                  for (size_t k = 0; k < idx.size(); ++k) {
                    grad[idx[k]] += scale * val[k];
                  }
                  task.AddWorkerOps(4 * idx.size() + 8);
                }
                const double step_size = -lr / batch.size();
                for (const auto& [j, g] : grad) {
                  w[j] += step_size * g;
                }
                loss_sum += step_loss;
                count += batch.size();
              }
              return {loss_sum, count};
            });

    // Averaging phase: ring allreduce of the full dense model.
    cluster->AdvanceClock(cluster->cost().RingAllReduce(
        static_cast<int>(num_partitions), dim * 8));
    cluster->metrics().Add("mllibstar.allreduce_bytes", dim * 8);
    std::vector<double> averaged(dim, 0.0);
    for (const auto& replica : replicas) {
      for (uint64_t j = 0; j < dim; ++j) averaged[j] += replica[j];
    }
    const double inv = 1.0 / static_cast<double>(num_partitions);
    for (double& x : averaged) x *= inv;
    for (auto& replica : replicas) replica = averaged;

    double loss_sum = 0;
    uint64_t count = 0;
    for (const auto& [l, c] : partials) {
      loss_sum += l;
      count += c;
    }
    if (count == 0) continue;
    TrainPoint point;
    point.iteration = round;
    point.time = cluster->clock().Now() - t0;
    point.loss = loss_sum / static_cast<double>(count);
    report.curve.push_back(point);
    report.final_loss = point.loss;
  }
  report.total_time = cluster->clock().Now() - t0;
  return report;
}

}  // namespace ps2
