#include "baselines/pspp_lr.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "ml/metrics.h"
#include "ml/optimizer.h"

namespace ps2 {

namespace {

/// Per-iteration result of a gradient task.
struct GradientPartial {
  double loss_sum = 0;
  uint64_t count = 0;
  std::vector<uint64_t> indices;  // features this task touched
};

}  // namespace

Result<TrainReport> TrainGlmPsPullPush(DcvContext* ctx,
                                       const Dataset<Example>& data,
                                       const GlmOptions& options) {
  PS2_RETURN_NOT_OK(options.Validate());
  Cluster* cluster = ctx->cluster();
  const int n_state = OptimizerStateVectors(options.optimizer.kind);

  PS2_ASSIGN_OR_RETURN(
      Dcv weight,
      ctx->Dense(options.dim, static_cast<uint32_t>(n_state + 2), 1, 0,
                 "pspp.weight"));
  PS2_ASSIGN_OR_RETURN(std::vector<Dcv> state, ctx->DeriveN(weight, n_state));
  PS2_ASSIGN_OR_RETURN(Dcv gradient, ctx->Derive(weight));
  for (Dcv& s : state) PS2_RETURN_NOT_OK(s.Zero());

  TrainReport report;
  report.system =
      std::string("PS-") + OptimizerKindName(options.optimizer.kind);
  const SimTime t0 = cluster->clock().Now();
  const GlmLossKind loss_kind = options.loss;
  const int num_workers = cluster->num_workers();

  for (int iter = 0; iter < options.iterations; ++iter) {
    PS2_RETURN_NOT_OK(gradient.Zero());

    // Gradient phase — identical to PS2 (sparse pull, local compute, sparse
    // push); tasks additionally report which features they touched.
    Dataset<Example> batch =
        data.Sample(options.batch_fraction,
                    options.seed * 1000003ULL + static_cast<uint64_t>(iter));
    std::vector<GradientPartial> partials =
        batch.MapPartitionsCollect<GradientPartial>(
            [&](TaskContext& task, const std::vector<Example>& rows) {
              GradientPartial gp;
              if (rows.empty()) return gp;
              gp.indices = CollectBatchIndices(rows);
              Result<std::vector<double>> pulled =
                  weight.PullSparse(gp.indices);
              PS2_CHECK(pulled.ok()) << pulled.status();
              std::unordered_map<uint64_t, double> w_local;
              w_local.reserve(gp.indices.size() * 2);
              for (size_t k = 0; k < gp.indices.size(); ++k) {
                w_local.emplace(gp.indices[k], (*pulled)[k]);
              }
              BatchGradient bg = ComputeBatchGradient(
                  rows,
                  [&w_local](uint64_t j) {
                    auto it = w_local.find(j);
                    return it == w_local.end() ? 0.0 : it->second;
                  },
                  loss_kind);
              task.AddWorkerOps(bg.ops + gp.indices.size());
              PS2_CHECK_OK(gradient.Add(bg.gradient));
              gp.loss_sum = bg.loss_sum;
              gp.count = bg.count;
              return gp;
            });

    // The driver unions the touched-feature lists (extra coordination
    // traffic PS2 does not need) and splits them across update tasks.
    double loss_sum = 0;
    uint64_t count = 0;
    uint64_t index_bytes = 0;
    std::vector<uint64_t> touched;
    for (const GradientPartial& gp : partials) {
      loss_sum += gp.loss_sum;
      count += gp.count;
      index_bytes += 8 * gp.indices.size();
      touched.insert(touched.end(), gp.indices.begin(), gp.indices.end());
    }
    if (count == 0) continue;
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    const int n_tasks = static_cast<int>(partials.size());
    cluster->AdvanceClock(cluster->cost().GatherAtOne(
        n_tasks, index_bytes / std::max(1, n_tasks)));
    cluster->AdvanceClock(cluster->cost().ScatterFromOne(
        num_workers, 8 * touched.size() / std::max(1, num_workers)));

    // Update phase: each task pulls its slice of [w, s, v, g], applies the
    // optimizer locally, and pushes deltas back — the traffic PS2's zip
    // avoids entirely.
    const int64_t t_step = iter + 1;
    const double inv_count = 1.0 / static_cast<double>(count);
    const size_t per_task =
        (touched.size() + num_workers - 1) / std::max(1, num_workers);
    cluster->RunStage("pspp.update", static_cast<size_t>(num_workers),
                      [&](TaskContext& task) {
                        size_t lo = task.task_id * per_task;
                        size_t hi = std::min(touched.size(), lo + per_task);
                        if (lo >= hi) return;
                        std::vector<uint64_t> slice(touched.begin() + lo,
                                                    touched.begin() + hi);
                        const size_t n = slice.size();
                        auto pull = [&](const Dcv& d) {
                          Result<std::vector<double>> r = d.PullSparse(slice);
                          PS2_CHECK(r.ok()) << r.status();
                          return std::move(r).ValueOrDie();
                        };
                        std::vector<double> w_vals = pull(weight);
                        std::vector<double> g_vals = pull(gradient);
                        for (double& g : g_vals) g *= inv_count;
                        std::vector<double> s_vals, v_vals;
                        if (n_state >= 1) s_vals = pull(state[0]);
                        if (n_state >= 2) v_vals = pull(state[1]);
                        std::vector<double> w_old = w_vals;
                        std::vector<double> s_old = s_vals;
                        std::vector<double> v_old = v_vals;
                        uint64_t ops = ApplyOptimizerStep(
                            options.optimizer, t_step, w_vals.data(),
                            g_vals.data(),
                            s_vals.empty() ? nullptr : s_vals.data(),
                            v_vals.empty() ? nullptr : v_vals.data(), n);
                        task.AddWorkerOps(ops + 2 * n);
                        auto push_delta = [&](Dcv& d,
                                              const std::vector<double>& now,
                                              const std::vector<double>& old) {
                          std::vector<uint64_t> idx = slice;
                          std::vector<double> delta(n);
                          for (size_t k = 0; k < n; ++k) {
                            delta[k] = now[k] - old[k];
                          }
                          PS2_CHECK_OK(d.Add(
                              SparseVector(std::move(idx), std::move(delta))));
                        };
                        push_delta(weight, w_vals, w_old);
                        if (n_state >= 1) push_delta(state[0], s_vals, s_old);
                        if (n_state >= 2) push_delta(state[1], v_vals, v_old);
                      });

    TrainPoint point;
    point.iteration = iter;
    point.time = cluster->clock().Now() - t0;
    point.loss = loss_sum / static_cast<double>(count);
    report.curve.push_back(point);
    report.final_loss = point.loss;
  }
  report.total_time = cluster->clock().Now() - t0;
  return report;
}

}  // namespace ps2
