#include "baselines/xgboost_gbdt.h"

#include <mutex>

#include "common/logging.h"

namespace ps2 {

namespace {

/// Keeps per-level local histograms in worker memory, charges a tree
/// allreduce for their union, and scans the global histogram on the driver
/// (standing in for every worker's identical local scan).
class XgboostHistogramAggregator final : public HistogramAggregator {
 public:
  XgboostHistogramAggregator(Cluster* cluster, const GbdtOptions& options)
      : cluster_(cluster), options_(options) {}

  Status OnLevelStart(const std::vector<GbdtFrontierNode>& frontier) override {
    const size_t hist_size = static_cast<size_t>(options_.num_features) *
                             options_.num_bins;
    global_grad_.assign(frontier.size(),
                        std::vector<double>(hist_size, 0.0));
    global_hess_.assign(frontier.size(),
                        std::vector<double>(hist_size, 0.0));
    published_nodes_ = 0;
    return Status::OK();
  }

  void PublishLocal(TaskContext& task, TaskHistograms histograms) override {
    // Local merge into the (logically allreduced) global histogram. The
    // traffic is charged at the level barrier, as allreduce rounds.
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < histograms.frontier_indices.size(); ++i) {
      size_t k = histograms.frontier_indices[i];
      std::vector<double>& g = global_grad_[k];
      std::vector<double>& h = global_hess_[k];
      for (size_t j = 0; j < g.size(); ++j) {
        g[j] += histograms.grad_hists[i][j];
        h[j] += histograms.hess_hists[i][j];
      }
      task.AddWorkerOps(2 * g.size());
      ++published_nodes_;
    }
  }

  Status OnLevelCollected(
      const std::vector<GbdtFrontierNode>& frontier) override {
    // Every worker allreduces the full per-level histogram buffer: frontier
    // nodes x (grad + hess) x features x bins x 8 bytes.
    const uint64_t bytes = static_cast<uint64_t>(frontier.size()) * 2 *
                           options_.num_features * options_.num_bins * 8;
    cluster_->AdvanceClock(
        cluster_->cost().TreeAllReduce(cluster_->num_workers(), bytes));
    cluster_->metrics().Add("xgboost.allreduce_bytes", bytes);
    // Post-allreduce, every worker scans the full histogram; charged once
    // (they scan in parallel).
    cluster_->AdvanceClock(cluster_->cost().WorkerCompute(
        static_cast<uint64_t>(frontier.size()) * 2 * options_.num_features *
        options_.num_bins));
    return Status::OK();
  }

  Result<SplitCandidate> FindSplit(size_t frontier_index,
                                   const GbdtFrontierNode& node) override {
    return BestSplitInRange(global_grad_[frontier_index].data(),
                            global_hess_[frontier_index].data(), 0,
                            options_.num_features, options_.num_bins,
                            node.grad_sum, node.hess_sum, options_.lambda,
                            options_.min_child_hess);
  }

 private:
  Cluster* cluster_;
  GbdtOptions options_;
  std::mutex mu_;
  std::vector<std::vector<double>> global_grad_;
  std::vector<std::vector<double>> global_hess_;
  size_t published_nodes_ = 0;
};

}  // namespace

Result<GbdtReport> TrainGbdtXgboost(Cluster* cluster,
                                    const Dataset<GbdtRow>& data,
                                    const GbdtOptions& options) {
  XgboostHistogramAggregator aggregator(cluster, options);
  return TrainGbdtWithAggregator(cluster, data, options, &aggregator,
                                 "XGBoost");
}

}  // namespace ps2
