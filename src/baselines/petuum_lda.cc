#include "baselines/petuum_lda.h"

#include "common/logging.h"
#include "ml/lda/gibbs_sampler.h"

// Baseline fidelity: each batch call is one blocking round
// (XAsync(...).Wait()/.Get() with nothing outstanding), which is exactly the
// traffic pattern this baseline models.

namespace ps2 {

Result<TrainReport> TrainLdaPetuum(DcvContext* ctx,
                                   const Dataset<Document>& docs,
                                   const LdaOptions& options) {
  PS2_RETURN_NOT_OK(options.Validate());
  Cluster* cluster = ctx->cluster();
  const uint32_t k_topics = options.num_topics;

  PS2_ASSIGN_OR_RETURN(
      std::vector<Dcv> topic_rows,
      ctx->DenseMatrix(options.vocab_size, k_topics, 0.0, 0,
                       "petuum.word_topic"));
  PS2_ASSIGN_OR_RETURN(Dcv topic_totals,
                       ctx->Dense(k_topics, 2, 1, 0, "petuum.topic_totals"));
  std::vector<RowRef> topic_refs;
  for (const Dcv& row : topic_rows) topic_refs.push_back(row.ref());

  const size_t num_partitions = docs.num_partitions();
  std::vector<LdaPartitionState> states(num_partitions);
  PsClient* client = ctx->client();

  TrainReport report;
  report.system = "Petuum-LDA";
  const SimTime t0 = cluster->clock().Now();

  docs.ForeachPartition([&](TaskContext& task,
                            const std::vector<Document>& rows) {
    LdaPartitionState& state = states[task.task_id];
    Rng rng = task.rng.Split(0x1DA0);
    state.Initialize(rows, options, &rng);
    task.AddWorkerOps(state.total_tokens() * 4);
    // Initial counts still push sparsely (they are per-worker deltas) but
    // WITHOUT PS2's count compression.
    PS2_CHECK_OK(client
                     ->PushSparseRowsAsync(topic_refs,
                                           state.InitialTopicCounts(options),
                                           /*compress_counts=*/false)
                     .Wait());
    PS2_CHECK_OK(topic_totals.Push(state.InitialTopicTotals(options)));
  });

  for (int iter = 0; iter < options.iterations; ++iter) {
    std::vector<std::pair<double, uint64_t>> partials =
        docs.MapPartitionsCollect<std::pair<double, uint64_t>>(
            [&](TaskContext& task, const std::vector<Document>&)
                -> std::pair<double, uint64_t> {
              LdaPartitionState& state = states[task.task_id];
              if (state.local_vocab().empty()) return {0.0, 0};

              // Petuum behaviour: pull EVERY topic row in full.
              Result<std::vector<std::vector<double>>> full =
                  client->PullRowsAsync(topic_refs).Get();
              PS2_CHECK(full.ok()) << full.status();
              Result<std::vector<double>> nt = topic_totals.Pull();
              PS2_CHECK(nt.ok()) << nt.status();

              // Project onto the partition's local vocabulary for the
              // shared sweep kernel.
              const auto& vocab = state.local_vocab();
              std::vector<std::vector<double>> nwt_local(
                  k_topics, std::vector<double>(vocab.size()));
              for (uint32_t k = 0; k < k_topics; ++k) {
                for (size_t j = 0; j < vocab.size(); ++j) {
                  nwt_local[k][j] = (*full)[k][vocab[j]];
                }
              }
              task.AddWorkerOps(k_topics * vocab.size());

              Rng rng = task.rng.Split(0x1DA1 + iter);
              LdaPartitionState::SweepResult sweep =
                  state.Sweep(options, &nwt_local, &*nt, &rng);
              task.AddWorkerOps(sweep.tokens * (4 * k_topics + 8));

              PS2_CHECK_OK(client
                               ->PushSparseRowsAsync(
                                   topic_refs, sweep.topic_deltas,
                                   /*compress_counts=*/false)
                               .Wait());
              PS2_CHECK_OK(topic_totals.Push(sweep.topic_total_deltas));
              return {sweep.loglik_sum, sweep.tokens};
            });

    double loglik = 0;
    uint64_t tokens = 0;
    for (const auto& [l, c] : partials) {
      loglik += l;
      tokens += c;
    }
    if (tokens == 0) continue;
    TrainPoint point;
    point.iteration = iter;
    point.time = cluster->clock().Now() - t0;
    point.loss = -loglik / static_cast<double>(tokens);
    report.curve.push_back(point);
    report.final_loss = point.loss;
  }
  report.total_time = cluster->clock().Now() - t0;
  return report;
}

}  // namespace ps2
