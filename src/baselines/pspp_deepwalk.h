#pragma once

// "PS-DeepWalk": DeepWalk on parameter servers with ONLY pull/push (paper
// §6.2.2's baseline).
//
// Without server-side dot/axpy, every batch must pull the full K-dimensional
// embedding vectors of all touched vertices, compute the skip-gram updates
// locally, and push the deltas back — O(K) bytes per vertex per direction
// where PS2 moves O(1) scalars. Fig. 9(c)/(d) measure exactly this gap (5x
// on a small cluster, shrinking to 1.4x at 30 servers, where per-message
// costs dominate both systems).

#include "common/result.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "dcv/dcv_context.h"
#include "ml/deepwalk.h"
#include "ml/train_report.h"

namespace ps2 {

/// Trains DeepWalk with pull/push only; statistically equivalent batches and
/// negative sampling to TrainDeepWalkPs2.
Result<TrainReport> TrainDeepWalkPsPullPush(
    DcvContext* ctx, const Dataset<VertexPair>& pairs,
    const std::vector<double>& vertex_frequencies,
    const DeepWalkOptions& options);

}  // namespace ps2
