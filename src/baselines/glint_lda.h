#pragma once

// Glint-style LDA baseline (paper §6.3.3, Fig. 12(a); Glint is "an
// asynchronous parameter server implementation on Spark for LDA" [14]).
//
// Glint's LDA pulls the word-topic counts per document minibatch — without
// deduplicating the hot words that recur in every batch, and without count
// compression — so it moves the most redundant bytes of the PS contenders
// and lands 9x behind PS2 / ~2.4x behind Petuum in Fig. 12(a).

#include "common/result.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "dcv/dcv_context.h"
#include "ml/lda/lda_model.h"
#include "ml/train_report.h"

namespace ps2 {

/// Trains LDA the Glint way; `docs_per_batch` controls the pull granularity.
Result<TrainReport> TrainLdaGlint(DcvContext* ctx,
                                  const Dataset<Document>& docs,
                                  const LdaOptions& options,
                                  size_t docs_per_batch = 100);

}  // namespace ps2
