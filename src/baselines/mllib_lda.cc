#include "baselines/mllib_lda.h"

#include <memory>

#include "common/logging.h"
#include "dataflow/broadcast.h"
#include "ml/lda/gibbs_sampler.h"

namespace ps2 {

namespace {
// "We compare PS2 with Spark MLlib for K=100 since Spark MLlib runs out of
// memory for a large value" (paper Fig. 12 caption).
constexpr uint32_t kMllibMaxTopics = 200;
}  // namespace

Result<TrainReport> TrainLdaMllib(Cluster* cluster,
                                  const Dataset<Document>& docs,
                                  const LdaOptions& options) {
  PS2_RETURN_NOT_OK(options.Validate());
  if (options.num_topics > kMllibMaxTopics) {
    return Status::Unavailable(
        "Spark MLlib runs out of memory for large topic counts (reproducing "
        "the paper's observed OOM)");
  }
  const uint32_t k_topics = options.num_topics;
  const uint32_t vocab = options.vocab_size;

  // Driver-resident model.
  auto nwt = std::make_shared<std::vector<std::vector<double>>>(
      k_topics, std::vector<double>(vocab, 0.0));
  std::vector<double> nt(k_topics, 0.0);

  const size_t num_partitions = docs.num_partitions();
  std::vector<LdaPartitionState> states(num_partitions);

  TrainReport report;
  report.system = "SparkMLlib-LDA";
  const SimTime t0 = cluster->clock().Now();

  // Initialization: counts gathered at the driver.
  {
    std::vector<std::pair<std::vector<SparseVector>, std::vector<double>>>
        initial = docs.MapPartitionsCollect<
            std::pair<std::vector<SparseVector>, std::vector<double>>>(
            [&](TaskContext& task, const std::vector<Document>& rows) {
              LdaPartitionState& state = states[task.task_id];
              Rng rng = task.rng.Split(0x1DA0);
              state.Initialize(rows, options, &rng);
              task.AddWorkerOps(state.total_tokens() * 4);
              return std::make_pair(state.InitialTopicCounts(options),
                                    state.InitialTopicTotals(options));
            });
    uint64_t gathered = 0;
    for (const auto& [topic_counts, totals] : initial) {
      for (uint32_t k = 0; k < k_topics; ++k) {
        topic_counts[k].AxpyInto(&(*nwt)[k], 1.0);
        gathered += topic_counts[k].SerializedBytes();
        nt[k] += totals[k];
      }
    }
    cluster->AdvanceClock(cluster->cost().GatherAtOne(
        static_cast<int>(num_partitions),
        gathered / std::max<size_t>(1, num_partitions)));
  }

  const uint64_t dense_matrix_bytes =
      static_cast<uint64_t>(k_topics) * vocab * 8;

  for (int iter = 0; iter < options.iterations; ++iter) {
    // (1) Broadcast the dense model.
    Broadcast<std::shared_ptr<const std::vector<std::vector<double>>>> bcast =
        BroadcastValue(
            cluster,
            std::shared_ptr<const std::vector<std::vector<double>>>(
                std::make_shared<std::vector<std::vector<double>>>(*nwt)),
            dense_matrix_bytes);
    Broadcast<std::vector<double>> bcast_nt =
        BroadcastValue(cluster, nt, k_topics * 8);

    // (2) Sweep on executors against the broadcast copy.
    std::vector<std::tuple<double, uint64_t,
                           std::vector<SparseVector>, std::vector<double>>>
        partials = docs.MapPartitionsCollect<
            std::tuple<double, uint64_t, std::vector<SparseVector>,
                       std::vector<double>>>(
            [&](TaskContext& task, const std::vector<Document>&) {
              LdaPartitionState& state = states[task.task_id];
              const auto& vocab_ids = state.local_vocab();
              std::vector<std::vector<double>> nwt_local(
                  k_topics, std::vector<double>(vocab_ids.size()));
              const auto& global = *bcast.value();
              for (uint32_t k = 0; k < k_topics; ++k) {
                for (size_t j = 0; j < vocab_ids.size(); ++j) {
                  nwt_local[k][j] = global[k][vocab_ids[j]];
                }
              }
              std::vector<double> nt_local = bcast_nt.value();
              Rng rng = task.rng.Split(0x1DA1 + iter);
              LdaPartitionState::SweepResult sweep =
                  state.Sweep(options, &nwt_local, &nt_local, &rng);
              task.AddWorkerOps(sweep.tokens * (4 * k_topics + 8) +
                                k_topics * vocab_ids.size());
              return std::make_tuple(sweep.loglik_sum, sweep.tokens,
                                     std::move(sweep.topic_deltas),
                                     std::move(sweep.topic_total_deltas));
            });

    // (3) Gather every executor's count-delta matrix at the driver. MLlib's
    // EM accumulator is dense (vocab x topics per executor) — the
    // single-node pattern behind its 17x deficit.
    double loglik = 0;
    uint64_t tokens = 0;
    for (auto& [l, c, deltas, totals] : partials) {
      loglik += l;
      tokens += c;
      for (uint32_t k = 0; k < k_topics; ++k) {
        deltas[k].AxpyInto(&(*nwt)[k], 1.0);
        nt[k] += totals[k];
      }
    }
    cluster->AdvanceClock(cluster->cost().GatherAtOne(
        static_cast<int>(num_partitions), dense_matrix_bytes));
    cluster->ChargeDriver(cluster->cost().DriverCompute(
        num_partitions * static_cast<uint64_t>(k_topics) * vocab / 4));

    if (tokens == 0) continue;
    TrainPoint point;
    point.iteration = iter;
    point.time = cluster->clock().Now() - t0;
    point.loss = -loglik / static_cast<double>(tokens);
    report.curve.push_back(point);
    report.final_loss = point.loss;
  }
  report.total_time = cluster->clock().Now() - t0;
  return report;
}

}  // namespace ps2
