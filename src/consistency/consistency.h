#pragma once

// Consistency controller: BSP / SSP / ASP as a first-class knob.
//
// The paper's Fig. 3 flow is strictly bulk-synchronous — one barrier per
// mini-batch. Stale-synchronous parallel (Petuum's SSP) relaxes that with a
// slack knob `s`: a worker at clock c may read parameters only while every
// other worker has reached at least clock c - s, so the freshest and the
// stalest update a worker can observe differ by at most s steps. s = 0
// degenerates to BSP; unbounded s is ASP.
//
// Mechanics (DESIGN.md §11):
//
//  * Every PS-server keeps a per-worker clock vector for its key-range
//    shard. Advances travel as kClockAdvance — a tracked mutating opcode in
//    the ordinary RpcHeader/filter framing, so they compose with retries,
//    the dedup table, and crash recovery (the vector is checkpointed with
//    the shard values and restored on recovery; the handler max-merges, so
//    replays are idempotent).
//  * The controller mirrors the clock table client-side. GatePull blocks a
//    worker whose pull would exceed the staleness bound until the laggards
//    catch up; blocked time is charged to virtual time via
//    CostModel::ConsistencyWait, exactly like retry backoff.
//  * Trainers size their stages so that a window of min(s + 1, remaining)
//    local steps runs between barriers. All workers enter the window at the
//    same clock, so within a window the gate can never trip — the SSP bound
//    holds by construction and virtual time is deterministic. The gate's
//    blocking path still exists (and is exercised by the TSan tests) for
//    callers that drive workers free-running.
//
// BSP (s = 0) is special-cased by the trainers: they take the pre-existing
// synchronous code path and never construct a controller, so the BSP traces
// stay bit-identical to what the repo produced before this module existed.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "ps/ps_client.h"

namespace ps2 {

/// \brief The three consistency regimes (slack s: 0 / bounded / unbounded).
enum class ConsistencyMode : uint8_t {
  kBsp = 0,  ///< barrier every step (the paper's Fig. 3 flow)
  kSsp = 1,  ///< bounded staleness: pull gated on min_clock >= my_clock - s
  kAsp = 2,  ///< no staleness bound at all
};

/// \brief Parsed form of the `--consistency=bsp|ssp:<s>|asp` knob.
struct ConsistencyPolicy {
  ConsistencyMode mode = ConsistencyMode::kBsp;
  uint32_t slack = 0;  ///< SSP slack s (>= 1); meaningless for BSP/ASP

  /// Slack() value of ASP: larger than any reachable clock.
  static constexpr uint64_t kUnboundedSlack = ~0ULL;

  /// Parses "bsp", "ssp:<s>" or "asp" (case-sensitive, like --filters).
  /// "ssp:0" is BSP by definition and normalizes to it.
  static Result<ConsistencyPolicy> Parse(const std::string& text);

  std::string ToString() const;

  bool bsp() const { return mode == ConsistencyMode::kBsp; }

  /// The staleness bound: 0 / slack / kUnboundedSlack.
  uint64_t Slack() const;

  /// Local steps a trainer runs between barriers: min(Slack() + 1,
  /// remaining). BSP -> 1, ASP -> all remaining iterations in one stage.
  int StepsPerStage(int remaining_iterations) const;

  Status Validate() const;
};

/// \brief Client-side clock table + bounded-staleness gate.
///
/// One controller per training job, shared by all of the job's tasks (its
/// methods are thread-safe). The controller is the authority during the
/// run; the server-side vectors are the durable mirror that survives server
/// crashes and feeds recovery.
class ConsistencyController {
 public:
  /// `client` replicates clock advances to the servers; `num_workers` sizes
  /// the clock vector (one logical worker per dataset partition).
  ConsistencyController(PsClient* client, int num_workers,
                        ConsistencyPolicy policy);

  /// Control plane: installs a zeroed clock vector on every server. Call
  /// once before training, like PsMaster::CreateMatrix.
  Status Register();

  const ConsistencyPolicy& policy() const { return policy_; }
  int num_workers() const { return static_cast<int>(clocks_.size()); }

  /// Bounded-staleness gate: returns once min_clock >= clock(worker) -
  /// Slack(). A blocked worker polls the clock table once per
  /// ClusterSpec::consistency_poll_interval_s of virtual time; the stall is
  /// charged to the calling task's TrafficScope (staleness_wait_time).
  void GatePull(int worker);

  /// Advances `worker`'s clock by one step: updates the local table, wakes
  /// gate waiters, and replicates the new value to every server shard via
  /// kClockAdvance (charged to the calling task like any other push).
  Status AdvanceClock(int worker);

  /// Async flavour of AdvanceClock for pipelined trainers: the local table
  /// advances immediately; the returned future is the server replication
  /// (ride it alongside the step's gradient push).
  PsFuture<Ack> AdvanceClockAsync(int worker);

  /// Re-replicates every live clock to the servers. Recovery helper: a
  /// restored server holds the clocks of its last checkpoint; this fast-
  /// forwards it to the controller's (authoritative) present.
  Status RebroadcastClocks();

  uint64_t WorkerClock(int worker) const;
  uint64_t MinClock() const;

  /// Gates that actually blocked (tests / benches).
  uint64_t TotalGateWaits() const;

 private:
  uint64_t MinClockLocked() const;

  PsClient* client_;
  ConsistencyPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<uint64_t> clocks_;
  uint64_t gate_waits_ = 0;
};

}  // namespace ps2
