#include "consistency/consistency.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"
#include "net/network_model.h"

namespace ps2 {

Result<ConsistencyPolicy> ConsistencyPolicy::Parse(const std::string& text) {
  ConsistencyPolicy policy;
  if (text == "bsp") return policy;
  if (text == "asp") {
    policy.mode = ConsistencyMode::kAsp;
    return policy;
  }
  const std::string prefix = "ssp:";
  if (text.compare(0, prefix.size(), prefix) == 0) {
    const std::string digits = text.substr(prefix.size());
    if (digits.empty()) {
      return Status::InvalidArgument("ssp slack missing: want ssp:<s>");
    }
    char* end = nullptr;
    const unsigned long long s = std::strtoull(digits.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || s > 0xFFFFFFFFULL) {
      return Status::InvalidArgument("bad ssp slack: " + digits);
    }
    if (s == 0) return policy;  // ssp:0 is BSP by definition
    policy.mode = ConsistencyMode::kSsp;
    policy.slack = static_cast<uint32_t>(s);
    return policy;
  }
  return Status::InvalidArgument("bad consistency policy: " + text +
                                 " (want bsp, ssp:<s> or asp)");
}

std::string ConsistencyPolicy::ToString() const {
  switch (mode) {
    case ConsistencyMode::kBsp: return "bsp";
    case ConsistencyMode::kSsp: return "ssp:" + std::to_string(slack);
    case ConsistencyMode::kAsp: return "asp";
  }
  return "bsp";
}

uint64_t ConsistencyPolicy::Slack() const {
  switch (mode) {
    case ConsistencyMode::kBsp: return 0;
    case ConsistencyMode::kSsp: return slack;
    case ConsistencyMode::kAsp: return kUnboundedSlack;
  }
  return 0;
}

int ConsistencyPolicy::StepsPerStage(int remaining_iterations) const {
  if (remaining_iterations <= 0) return 0;
  if (mode == ConsistencyMode::kBsp) return 1;
  if (mode == ConsistencyMode::kAsp) return remaining_iterations;
  const uint64_t window = static_cast<uint64_t>(slack) + 1;
  return static_cast<int>(
      std::min<uint64_t>(window, static_cast<uint64_t>(remaining_iterations)));
}

Status ConsistencyPolicy::Validate() const {
  if (mode == ConsistencyMode::kSsp && slack == 0) {
    return Status::InvalidArgument(
        "ssp slack must be >= 1 (slack 0 is bsp; Parse normalizes it)");
  }
  return Status::OK();
}

ConsistencyController::ConsistencyController(PsClient* client, int num_workers,
                                             ConsistencyPolicy policy)
    : client_(client), policy_(policy) {
  PS2_CHECK_GT(num_workers, 0);
  clocks_.assign(static_cast<size_t>(num_workers), 0);
}

Status ConsistencyController::Register() {
  PS2_RETURN_NOT_OK(policy_.Validate());
  // Control plane, like PsMaster::CreateMatrix: the zeroed vectors install
  // directly on the servers, before any data-plane traffic.
  PsMaster* master = client_->master();
  for (int s = 0; s < master->num_servers(); ++s) {
    master->server(s)->InitWorkerClocks(num_workers());
  }
  return Status::OK();
}

void ConsistencyController::GatePull(int worker) {
  PS2_CHECK_GE(worker, 0);
  PS2_CHECK_LT(static_cast<size_t>(worker), clocks_.size());
  const uint64_t slack = policy_.Slack();
  uint64_t polls = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t my = clocks_[static_cast<size_t>(worker)];
    // A worker within its first `slack` steps can never violate the bound
    // (every clock is >= 0); this also makes ASP's unbounded slack a no-op.
    if (my <= slack) return;
    const uint64_t need = my - slack;
    if (MinClockLocked() >= need) return;
    gate_waits_ += 1;
    // Each predicate re-check models one poll of the server-side clock
    // vector; the blocked worker pays one poll interval of virtual time per
    // check, mirroring how retry backoff charges the retrying worker.
    while (MinClockLocked() < need) {
      polls += 1;
      cv_.wait(lock);
    }
  }
  if (TaskTraffic* traffic = TrafficScope::Current()) {
    traffic->staleness_waits += 1;
    traffic->staleness_wait_time +=
        client_->master()->cluster()->cost().ConsistencyWait(polls);
  }
}

Status ConsistencyController::AdvanceClock(int worker) {
  return AdvanceClockAsync(worker).Wait();
}

PsFuture<Ack> ConsistencyController::AdvanceClockAsync(int worker) {
  PS2_CHECK_GE(worker, 0);
  PS2_CHECK_LT(static_cast<size_t>(worker), clocks_.size());
  uint64_t value = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    value = ++clocks_[static_cast<size_t>(worker)];
  }
  cv_.notify_all();
  // Replicate to the durable server-side vectors. The send is a tracked
  // mutation — it retries, dedups and recovers like a gradient push.
  return client_->ClockAdvanceAsync(worker, value);
}

Status ConsistencyController::RebroadcastClocks() {
  std::vector<uint64_t> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = clocks_;
  }
  std::vector<PsFuture<Ack>> pending;
  pending.reserve(snapshot.size());
  for (size_t w = 0; w < snapshot.size(); ++w) {
    if (snapshot[w] == 0) continue;
    pending.push_back(
        client_->ClockAdvanceAsync(static_cast<int>(w), snapshot[w]));
  }
  Status status = Status::OK();
  for (PsFuture<Ack>& f : pending) {
    Status s = f.Wait();
    if (status.ok() && !s.ok()) status = s;
  }
  return status;
}

uint64_t ConsistencyController::WorkerClock(int worker) const {
  PS2_CHECK_GE(worker, 0);
  PS2_CHECK_LT(static_cast<size_t>(worker), clocks_.size());
  std::lock_guard<std::mutex> lock(mu_);
  return clocks_[static_cast<size_t>(worker)];
}

uint64_t ConsistencyController::MinClock() const {
  std::lock_guard<std::mutex> lock(mu_);
  return MinClockLocked();
}

uint64_t ConsistencyController::TotalGateWaits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gate_waits_;
}

uint64_t ConsistencyController::MinClockLocked() const {
  uint64_t min_clock = clocks_.empty() ? 0 : clocks_[0];
  for (uint64_t c : clocks_) min_clock = std::min(min_clock, c);
  return min_clock;
}

}  // namespace ps2
