#pragma once

// Wire-level filter chain: key-set caching, delta/fixed-point value coding,
// and byte compression applied to serialized RPC payloads.
//
// Pipeline (encode; decode is the exact mirror):
//
//   logical payload + PayloadSection marks
//     -> chunk stream        (split at the marked key/value sections)
//     -> structural filters  (keycache rewrites kKeys chunks,
//                             delta/quant rewrites kF64Values chunks)
//     -> framed bytes        ([prefix][varint n_chunks][chunks...])
//     -> compress filter     ([prefix][varint raw_len][u8 method][blob])
//
// The first `prefix` bytes (the opcode byte of a request; 0 for responses)
// stay verbatim at offset 0 of the wire form, so the server's dedup peek and
// opcode dispatch never decode anything. The applied-filter mask travels
// out-of-band in the WireFrame (net/message.h) — the same fixed-header slot
// convention the RpcHeader already uses — so a filters-off payload is
// byte-identical to the unfiltered wire format.
//
// Filter contracts:
//   * keycache and compress are bit-exact on decode.
//   * delta quantizes each marked f64 span to 16-bit fixed point with a
//     per-span scale (step = max|v| / 32767): |decoded - v| <= step / 2,
//     deterministic, and idempotent (re-encoding a decoded span reproduces
//     the same wire bytes). Spans containing non-finite values travel
//     verbatim so NaN/Inf round-trip exactly.
//   * a replayed request cannot corrupt key-cache state: installs are
//     content-addressed (hash -> exact bytes) and therefore idempotent, and
//     the server consults its dedup table before decoding.

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "common/serde.h"
#include "common/slice.h"
#include "net/filter_config.h"

namespace ps2 {

/// 64-bit FNV-1a over `bytes` (the key-cache content address).
uint64_t HashBytes64(Slice bytes);

// ---- Byte compressor (the `compress` filter's codec) ----------------------

/// Greedy LZ with a 4-byte rolling hash dictionary + literal runs. Output is
/// self-contained ops; decompression needs the expected raw length.
std::vector<uint8_t> LzCompress(Slice in);
Result<std::vector<uint8_t>> LzDecompress(Slice in, size_t raw_len);

// ---- Key caches -----------------------------------------------------------

/// \brief Server-side content-addressed cache of sparse key lists.
///
/// Bounded; when full, new installs are dropped (an install always carries
/// the literal bytes, so dropping it only forfeits future refs). Cleared by
/// PsServer::DropAllState — a recovered server forgets everything and the
/// client's next ref faults in a fresh install via the miss protocol.
class ServerKeyCache {
 public:
  static constexpr size_t kMaxEntries = 4096;

  /// Idempotent: re-installing an existing hash is a no-op, which is what
  /// makes duplicate-delivered installs (PR-3 retries) safe.
  void Install(uint64_t hash, Slice bytes);
  /// The cached bytes, or nullptr (a key-cache miss).
  const std::vector<uint8_t>* Lookup(uint64_t hash) const;
  void Clear();
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::vector<uint8_t>> entries_;
};

/// \brief Client-side record of which key-list hashes each server holds.
///
/// Decisions happen at request-stamp time on the issuing thread (program
/// order), so whether a request carries an install or a ref — and therefore
/// its wire byte count — is deterministic. Epoch-invalidated alongside the
/// hotspot epochs: any epoch change clears the installed sets (the epoch
/// bumps exactly when servers were recovered or the hot set moved).
class ClientKeyCache {
 public:
  /// What the encoder should do with a key list hashing to some value.
  enum class Admission {
    kVerbatim,  ///< first sighting: send the literal bytes, remember the hash
    kInstall,   ///< second sighting: the list recurs, install it
    kRef,       ///< installed: replace the list with its hash
  };

  /// Lists at least this long are installed on first sighting: the 8-byte
  /// install hash is a cheap bet against a potential `len` saving per ref.
  /// Shorter lists must be sighted twice first, so one-shot key lists (SGD
  /// batches that never repeat) cost nothing on the wire.
  static constexpr size_t kOptimisticInstallBytes = 24;

  /// Size-tiered admission for a key list of `len` bytes hashing to `hash`,
  /// bound for `server`. Installs mark the hash installed optimistically —
  /// the miss protocol repairs the optimism if the request never lands —
  /// and later sightings emit refs. `force` skips straight to an install
  /// (key-cache miss retry).
  Admission Admit(int server, uint64_t hash, size_t len, bool force);
  /// Drops everything believed installed on `server` (key-cache miss — the
  /// server evidently lost state).
  void InvalidateServer(int server);
  /// Clears all installed sets when `epoch` differs from the last seen.
  void SyncEpoch(uint64_t epoch);

 private:
  std::mutex mu_;
  uint64_t epoch_ = 0;
  /// hash -> installed? (false = seen once, awaiting a second sighting)
  std::map<int, std::map<uint64_t, bool>> state_;
};

// ---- The chain ------------------------------------------------------------

/// Which way a payload is travelling (key caching is request-only).
enum class FilterDir { kClientToServer, kServerToClient };

/// \brief Per-payload byte accounting produced by an encode.
struct EncodeStats {
  uint64_t logical_bytes = 0;      ///< pre-filter payload size
  uint64_t wire_bytes = 0;         ///< post-filter payload size
  uint64_t keycache_refs = 0;      ///< key lists replaced by a hash
  uint64_t keycache_installs = 0;  ///< key lists sent with an install hash
};

/// \brief Everything a filter needs besides the payload itself.
struct FilterContext {
  FilterDir dir = FilterDir::kClientToServer;
  int server = -1;                        ///< destination server (encode)
  bool force_key_install = false;         ///< retry after a key-cache miss
  ClientKeyCache* client_keys = nullptr;  ///< encode side (requests)
  ServerKeyCache* server_keys = nullptr;  ///< decode side (requests)
  EncodeStats* stats = nullptr;
};

/// \brief One chunk of the structural stream between filters.
struct FilterChunk {
  /// Wire tags. kKeys / kF64Values never hit the wire — they are the
  /// pre-transform section kinds; untransformed chunks serialize as
  /// kVerbatim.
  enum Tag : uint8_t {
    kVerbatim = 0,
    kKeysInstall = 1,
    kKeysRef = 2,
    kValuesQuant = 3,
  };
  Tag tag = kVerbatim;
  SectionKind kind = SectionKind::kKeys;  ///< pre-transform meaning
  bool marked = false;          ///< came from a PayloadSection mark
  Slice view;                   ///< literal bytes (into the logical payload)
  std::vector<uint8_t> owned;   ///< transformed bytes (quant varint stream)
  uint64_t hash = 0;            ///< kKeysInstall / kKeysRef
  uint64_t count = 0;           ///< kKeysRef: byte length; kValuesQuant: n
  double scale = 0.0;           ///< kValuesQuant quantization step

  Slice data() const { return owned.empty() ? view : Slice(owned); }
};

/// \brief A structural filter: rewrites chunks on encode, restores the
/// original bytes on decode. (The compress filter is byte-level and lives in
/// the chain's framing step instead.)
class IFilter {
 public:
  virtual ~IFilter() = default;
  virtual uint8_t bit() const = 0;
  virtual const char* name() const = 0;
  /// Rewrites chunks in place; sets *applied if any chunk was transformed.
  virtual Status Encode(FilterContext* ctx, std::vector<FilterChunk>* chunks,
                        bool* applied) const = 0;
  /// Inverse of Encode for the tags this filter owns; appends the restored
  /// bytes of `chunk` to `out`.
  virtual Status DecodeChunk(FilterContext* ctx, const FilterChunk& chunk,
                             std::vector<uint8_t>* out) const = 0;
};

class KeyCacheFilter : public IFilter {
 public:
  uint8_t bit() const override { return kFilterKeyCache; }
  const char* name() const override { return "keycache"; }
  Status Encode(FilterContext* ctx, std::vector<FilterChunk>* chunks,
                bool* applied) const override;
  Status DecodeChunk(FilterContext* ctx, const FilterChunk& chunk,
                     std::vector<uint8_t>* out) const override;
};

class DeltaQuantFilter : public IFilter {
 public:
  uint8_t bit() const override { return kFilterDelta; }
  const char* name() const override { return "delta"; }
  Status Encode(FilterContext* ctx, std::vector<FilterChunk>* chunks,
                bool* applied) const override;
  Status DecodeChunk(FilterContext* ctx, const FilterChunk& chunk,
                     std::vector<uint8_t>* out) const override;
};

/// \brief Result of encoding one payload for the wire.
struct EncodedPayload {
  /// Filters actually applied. 0 means "send the logical payload as-is" —
  /// `wire` is then empty and the caller aliases the original buffer
  /// (zero-copy fast path).
  uint8_t mask = 0;
  std::vector<uint8_t> wire;
  EncodeStats stats;
};

/// \brief Drives the filters over one payload in both directions.
class FilterChain {
 public:
  FilterChain();

  /// Encodes `payload` for the wire. `want_mask` is the configured mask for
  /// this opcode; a filter's bit appears in the result only if it actually
  /// transformed (and, for compress, shrank) something. `prefix` leading
  /// bytes stay verbatim at the front of the wire form.
  EncodedPayload Encode(Slice payload,
                        const std::vector<PayloadSection>& sections,
                        uint8_t want_mask, size_t prefix,
                        FilterContext* ctx) const;

  /// Inverse of Encode: reconstructs the logical payload from wire bytes.
  /// A kKeysRef chunk whose hash is absent from ctx->server_keys returns
  /// FailedPrecondition (see IsKeyCacheMiss).
  Result<std::vector<uint8_t>> Decode(Slice wire, uint8_t mask, size_t prefix,
                                      FilterContext* ctx) const;

 private:
  KeyCacheFilter keycache_;
  DeltaQuantFilter delta_;
  /// Structural filters in chain order (keycache before delta; disjoint
  /// section kinds, so order only fixes the wire layout).
  std::vector<const IFilter*> structural_;
};

/// True if `status` is the key-cache miss protocol error: the client must
/// re-encode the same request with force_key_install and retry the same
/// sequence number.
bool IsKeyCacheMiss(const Status& status);

}  // namespace ps2
