#pragma once

// Traffic recording and stage costing.
//
// Execution model: the driver runs stages (sets of parallel tasks, one BSP
// barrier at the end — Spark semantics). Inside a task, every PS interaction
// records its traffic into the thread-local TaskTraffic. When the stage
// completes, StageCost() converts the recorded per-task / per-server traffic
// into virtual elapsed time:
//
//   worker side: tasks are assigned round-robin to executors; an executor's
//     time is the sum of its tasks' (compute + egress/ingress + per-message
//     overhead + dependent round latencies); the worker bound is the max
//     over executors.
//   server side: requests from all tasks serialize at each server; the
//     server bound is the max over servers of (bytes/bw + msgs*overhead +
//     server ops/flops).
//   stage elapsed = max(worker bound, server bound) + driver dispatch.
//
// This makes the driver bottleneck, PS sharding benefit and server-side
// compute benefit all fall out of the same accounting.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/cost_model.h"

namespace ps2 {

/// \brief Per-task record of network and compute activity.
struct TaskTraffic {
  uint64_t worker_ops = 0;   ///< scalar ops executed on the worker
  uint64_t rounds = 0;       ///< dependent request/response round trips
  /// Round trips that overlapped an already-in-flight round of the same task
  /// (issued via the async client while another async op was outstanding).
  /// They ride the leader's latency window, so TaskWorkerTime charges
  /// RoundLatency(rounds) only — a group of k overlapped ops costs max (one
  /// round) rather than sum (k rounds). Bytes/messages/server ops are still
  /// recorded in full; only the *latency* term is collapsed.
  uint64_t pipelined_rounds = 0;
  uint64_t io_bytes = 0;     ///< input bytes read from (simulated) storage
  /// Pulls served from the client's hot-row cache (hotspot/, §5d). They cost
  /// worker compute only — no bytes, no messages, no round latency — but are
  /// counted here so benches can report how much traffic the cache absorbed.
  uint64_t local_pull_hits = 0;
  uint64_t local_pull_bytes = 0;  ///< bytes those hits would have pulled
  /// Message-level retries (DESIGN.md §6): failed exchange attempts that the
  /// client retried, and the total exponential backoff they waited. The
  /// backoff is charged as worker-side stall in TaskWorkerTime; failed
  /// attempts charge no bytes (the simplification: a lost message's partial
  /// transfer is folded into the backoff term).
  uint64_t retries = 0;
  double retry_backoff_time = 0.0;  ///< virtual seconds of backoff stall
  /// Retried mutations the server recognized as already applied (by the
  /// per-client sequence number) and acked without re-applying.
  uint64_t dedup_hits = 0;
  /// Bounded-staleness gate stalls (consistency/, DESIGN.md §11): times a
  /// worker found `min_clock < my_clock - slack` and had to wait, and the
  /// virtual poll time it spent blocked. Charged as worker-side stall in
  /// TaskWorkerTime, exactly like retry backoff.
  uint64_t staleness_waits = 0;
  double staleness_wait_time = 0.0;  ///< virtual seconds blocked at the gate
  /// Requests rejected with the `routing stale` FailedPrecondition
  /// (DESIGN.md §12) that the client re-planned against a refetched routing
  /// table. Each refetch also charges one retry backoff of worker stall.
  uint64_t routing_refetches = 0;

  /// Server co-located with this task's executor (ClusterSpec
  /// `colocate_workers`), or -1. Exchanges with it are loopback: messages
  /// and server ops are recorded as usual (per-message overhead and server
  /// compute are real), but the bytes land in the loopback counters below
  /// instead of bytes_to_server / bytes_from_server, so no bandwidth term
  /// ever charges them. Set per task by RunStage; never merged.
  int colocated_server = -1;
  uint64_t loopback_exchanges = 0;   ///< exchanges that stayed on-node
  uint64_t loopback_bytes_to = 0;    ///< wire bytes to the co-located server
  uint64_t loopback_bytes_from = 0;  ///< wire bytes back from it

  // Wire-vs-logical accounting (net/filters.h). bytes_to_server /
  // bytes_from_server hold WIRE bytes — what the cost model charges. The
  // logical totals hold the pre-filter payload sizes, so
  // logical / wire is the filter chain's compression ratio. With filters
  // off the two are equal.
  uint64_t logical_bytes_to = 0;
  uint64_t logical_bytes_from = 0;
  /// Key-cache filter outcomes: key lists replaced by a hash (hits), key
  /// lists sent with an install hash, and refs the server could not resolve
  /// (forcing a re-encoded install retry).
  uint64_t keycache_hits = 0;
  uint64_t keycache_installs = 0;
  uint64_t keycache_misses = 0;

  // Per-server breakdown (indexed by server id; lazily sized).
  std::vector<uint64_t> bytes_to_server;
  std::vector<uint64_t> bytes_from_server;
  std::vector<uint64_t> msgs_to_server;
  std::vector<uint64_t> msgs_from_server;
  std::vector<uint64_t> server_ops;

  void EnsureServers(size_t n);

  /// Records one request/response exchange with `server`. The 4-arg form is
  /// for unfiltered traffic: logical bytes equal wire bytes.
  void RecordExchange(int server, uint64_t bytes_out, uint64_t bytes_in,
                      uint64_t ops_on_server);
  void RecordExchange(int server, uint64_t bytes_out, uint64_t bytes_in,
                      uint64_t ops_on_server, uint64_t logical_out,
                      uint64_t logical_in);

  /// Totals across servers.
  uint64_t TotalBytesToServers() const;
  uint64_t TotalBytesFromServers() const;
  uint64_t TotalMsgs() const;

  void MergeFrom(const TaskTraffic& other);
  void Clear();
};

/// \brief Thread-local binding of the "current task" traffic record.
///
/// PS clients look this up so that DCV ops issued from inside a task body are
/// charged to that task. RAII scope.
class TrafficScope {
 public:
  explicit TrafficScope(TaskTraffic* traffic);
  ~TrafficScope();

  TrafficScope(const TrafficScope&) = delete;
  TrafficScope& operator=(const TrafficScope&) = delete;

  /// The active record, or nullptr outside any task.
  static TaskTraffic* Current();

 private:
  TaskTraffic* previous_;
};

/// \brief Result of costing one stage.
struct StageCostBreakdown {
  SimTime worker_bound = 0;
  SimTime server_bound = 0;
  SimTime dispatch = 0;
  SimTime retry_penalty = 0;
  SimTime elapsed = 0;  ///< what the clock advances by
};

/// \brief Converts recorded traffic into elapsed virtual time.
///
/// `retry_fractions[i]` lists, for task i, the fraction of its cost charged
/// for each failed attempt (empty if the task succeeded first try).
StageCostBreakdown StageCost(
    const CostModel& cost, const std::vector<TaskTraffic>& per_task,
    const std::vector<std::vector<double>>& retry_fractions);

/// Worker-side cost of a single task's recorded traffic.
SimTime TaskWorkerTime(const CostModel& cost, const TaskTraffic& t);

}  // namespace ps2
