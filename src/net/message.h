#pragma once

// RPC message envelope.
//
// PS2's real implementation uses Netty + Protobuf; here every request and
// response between workers, servers and the driver is materialized as a
// Message with a genuinely serialized payload so that byte accounting is
// exact. Delivery is an in-process method call; *cost* is charged through
// the traffic recorder / cost model.

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"

namespace ps2 {

/// \brief Kinds of RPC traffic, used for metrics breakdowns.
enum class MessageKind : uint8_t {
  kPullRequest,
  kPullResponse,
  kPushRequest,
  kPushAck,
  kColumnOpRequest,
  kColumnOpResponse,
  kControl,
};

const char* MessageKindName(MessageKind kind);

/// \brief A serialized RPC message between two logical nodes.
struct Message {
  int src_node = -1;
  int dst_node = -1;
  MessageKind kind = MessageKind::kControl;
  std::vector<uint8_t> payload;

  /// Bytes on the wire: payload plus a fixed framing header (matches a
  /// typical Netty frame: length, ids, kind, correlation id). The retry
  /// protocol's identity fields — client id, per-client sequence number and
  /// attempt (ps/ps_types.h RpcHeader) — ride the correlation-id slot of
  /// this fixed header, so stamping every request does not change the byte
  /// accounting anywhere.
  static constexpr uint64_t kHeaderBytes = 24;
  uint64_t WireBytes() const { return kHeaderBytes + payload.size(); }
};

/// \brief Zero-copy view of one payload as it crosses the (simulated) wire.
///
/// `payload` is a view into the sender's buffer — delivery is an in-process
/// call, so no copy is ever required; the receiver decodes or parses in
/// place. `filter_mask` says which wire filters (net/filter_config.h) were
/// applied and must be undone on decode. Like the RpcHeader, the mask rides
/// the fixed framing header (one spare byte of the correlation-id slot), so
/// it adds nothing to the byte accounting and a filters-off frame is
/// byte-identical to the pre-filter wire format. Requests keep their opcode
/// verbatim at payload[0] whatever the mask, so dedup peeking and dispatch
/// never need a decode.
struct WireFrame {
  Slice payload;
  uint8_t filter_mask = 0;

  uint64_t WireBytes() const { return Message::kHeaderBytes + payload.size(); }
};

}  // namespace ps2
