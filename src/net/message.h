#pragma once

// RPC message envelope.
//
// PS2's real implementation uses Netty + Protobuf; here every request and
// response between workers, servers and the driver is materialized as a
// Message with a genuinely serialized payload so that byte accounting is
// exact. Delivery is an in-process method call; *cost* is charged through
// the traffic recorder / cost model.

#include <cstdint>
#include <string>
#include <vector>

namespace ps2 {

/// \brief Kinds of RPC traffic, used for metrics breakdowns.
enum class MessageKind : uint8_t {
  kPullRequest,
  kPullResponse,
  kPushRequest,
  kPushAck,
  kColumnOpRequest,
  kColumnOpResponse,
  kControl,
};

const char* MessageKindName(MessageKind kind);

/// \brief A serialized RPC message between two logical nodes.
struct Message {
  int src_node = -1;
  int dst_node = -1;
  MessageKind kind = MessageKind::kControl;
  std::vector<uint8_t> payload;

  /// Bytes on the wire: payload plus a fixed framing header (matches a
  /// typical Netty frame: length, ids, kind, correlation id). The retry
  /// protocol's identity fields — client id, per-client sequence number and
  /// attempt (ps/ps_types.h RpcHeader) — ride the correlation-id slot of
  /// this fixed header, so stamping every request does not change the byte
  /// accounting anywhere.
  static constexpr uint64_t kHeaderBytes = 24;
  uint64_t WireBytes() const { return kHeaderBytes + payload.size(); }
};

}  // namespace ps2
