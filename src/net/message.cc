#include "net/message.h"

namespace ps2 {

const char* MessageKindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kPullRequest:
      return "pull_request";
    case MessageKind::kPullResponse:
      return "pull_response";
    case MessageKind::kPushRequest:
      return "push_request";
    case MessageKind::kPushAck:
      return "push_ack";
    case MessageKind::kColumnOpRequest:
      return "column_op_request";
    case MessageKind::kColumnOpResponse:
      return "column_op_response";
    case MessageKind::kControl:
      return "control";
  }
  return "unknown";
}

}  // namespace ps2
