#pragma once

// Configuration of the wire-level filter chain (net/filters.h).
//
// Three filters, identified by bits so a mask can travel with every frame:
//
//   keycache  — identical re-sent sparse key lists are replaced by a 64-bit
//               content hash the server resolves from its key-set cache.
//   delta     — f64 value spans are quantized to 16-bit fixed point and
//               delta+zigzag-varint coded (lossy; bounded error, see
//               net/filters.h).
//   compress  — dictionary/RLE byte compressor over the framed body.
//
// The config carries a cluster-wide default mask plus optional per-opcode
// overrides (indexed by the request opcode byte). The default-constructed
// config is OFF: existing byte accounting is unchanged unless a run opts in
// (`ps2run --filters=...`, ClusterSpec::filters).

#include <array>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace ps2 {

inline constexpr uint8_t kFilterKeyCache = 1u << 0;
inline constexpr uint8_t kFilterDelta = 1u << 1;
inline constexpr uint8_t kFilterCompress = 1u << 2;
inline constexpr uint8_t kFilterAll =
    kFilterKeyCache | kFilterDelta | kFilterCompress;

struct FilterConfig {
  /// Default filter mask for every opcode.
  uint8_t bits = 0;
  /// Per-opcode override (request opcode byte -> mask); -1 = use `bits`.
  std::array<int16_t, 32> per_opcode{};

  FilterConfig() { per_opcode.fill(-1); }

  bool enabled() const;

  /// Effective mask for a request opcode (and its response).
  uint8_t MaskFor(uint8_t opcode) const {
    if (opcode < per_opcode.size() && per_opcode[opcode] >= 0) {
      return static_cast<uint8_t>(per_opcode[opcode]);
    }
    return bits;
  }

  void SetOpcodeMask(uint8_t opcode, uint8_t mask) {
    if (opcode < per_opcode.size()) {
      per_opcode[opcode] = static_cast<int16_t>(mask);
    }
  }

  /// Parses "off" / "" / a comma list of {keycache, delta, compress, all}.
  static Result<FilterConfig> Parse(const std::string& text);

  /// Canonical comma list ("off" when disabled).
  std::string ToString() const;
};

}  // namespace ps2
