#include "net/network_model.h"

#include <algorithm>

#include "common/logging.h"

namespace ps2 {

namespace {
thread_local TaskTraffic* t_current_traffic = nullptr;
}  // namespace

void TaskTraffic::EnsureServers(size_t n) {
  if (bytes_to_server.size() < n) {
    bytes_to_server.resize(n, 0);
    bytes_from_server.resize(n, 0);
    msgs_to_server.resize(n, 0);
    msgs_from_server.resize(n, 0);
    server_ops.resize(n, 0);
  }
}

void TaskTraffic::RecordExchange(int server, uint64_t bytes_out,
                                 uint64_t bytes_in, uint64_t ops_on_server) {
  RecordExchange(server, bytes_out, bytes_in, ops_on_server, bytes_out,
                 bytes_in);
}

void TaskTraffic::RecordExchange(int server, uint64_t bytes_out,
                                 uint64_t bytes_in, uint64_t ops_on_server,
                                 uint64_t logical_out, uint64_t logical_in) {
  PS2_CHECK_GE(server, 0);
  logical_bytes_to += logical_out;
  logical_bytes_from += logical_in;
  EnsureServers(static_cast<size_t>(server) + 1);
  msgs_to_server[server] += 1;
  if (bytes_in > 0) msgs_from_server[server] += 1;
  server_ops[server] += ops_on_server;
  if (server == colocated_server) {
    loopback_exchanges += 1;
    loopback_bytes_to += bytes_out;
    loopback_bytes_from += bytes_in;
    return;
  }
  bytes_to_server[server] += bytes_out;
  if (bytes_in > 0) bytes_from_server[server] += bytes_in;
}

uint64_t TaskTraffic::TotalBytesToServers() const {
  uint64_t total = 0;
  for (uint64_t b : bytes_to_server) total += b;
  return total;
}

uint64_t TaskTraffic::TotalBytesFromServers() const {
  uint64_t total = 0;
  for (uint64_t b : bytes_from_server) total += b;
  return total;
}

uint64_t TaskTraffic::TotalMsgs() const {
  uint64_t total = 0;
  for (uint64_t m : msgs_to_server) total += m;
  for (uint64_t m : msgs_from_server) total += m;
  return total;
}

void TaskTraffic::MergeFrom(const TaskTraffic& other) {
  worker_ops += other.worker_ops;
  rounds += other.rounds;
  pipelined_rounds += other.pipelined_rounds;
  io_bytes += other.io_bytes;
  local_pull_hits += other.local_pull_hits;
  local_pull_bytes += other.local_pull_bytes;
  retries += other.retries;
  retry_backoff_time += other.retry_backoff_time;
  dedup_hits += other.dedup_hits;
  staleness_waits += other.staleness_waits;
  staleness_wait_time += other.staleness_wait_time;
  routing_refetches += other.routing_refetches;
  loopback_exchanges += other.loopback_exchanges;
  loopback_bytes_to += other.loopback_bytes_to;
  loopback_bytes_from += other.loopback_bytes_from;
  logical_bytes_to += other.logical_bytes_to;
  logical_bytes_from += other.logical_bytes_from;
  keycache_hits += other.keycache_hits;
  keycache_installs += other.keycache_installs;
  keycache_misses += other.keycache_misses;
  EnsureServers(other.bytes_to_server.size());
  for (size_t s = 0; s < other.bytes_to_server.size(); ++s) {
    bytes_to_server[s] += other.bytes_to_server[s];
    bytes_from_server[s] += other.bytes_from_server[s];
    msgs_to_server[s] += other.msgs_to_server[s];
    msgs_from_server[s] += other.msgs_from_server[s];
    server_ops[s] += other.server_ops[s];
  }
}

void TaskTraffic::Clear() {
  worker_ops = 0;
  rounds = 0;
  pipelined_rounds = 0;
  io_bytes = 0;
  local_pull_hits = 0;
  local_pull_bytes = 0;
  retries = 0;
  retry_backoff_time = 0.0;
  dedup_hits = 0;
  staleness_waits = 0;
  staleness_wait_time = 0.0;
  routing_refetches = 0;
  colocated_server = -1;
  loopback_exchanges = 0;
  loopback_bytes_to = 0;
  loopback_bytes_from = 0;
  logical_bytes_to = 0;
  logical_bytes_from = 0;
  keycache_hits = 0;
  keycache_installs = 0;
  keycache_misses = 0;
  bytes_to_server.clear();
  bytes_from_server.clear();
  msgs_to_server.clear();
  msgs_from_server.clear();
  server_ops.clear();
}

TrafficScope::TrafficScope(TaskTraffic* traffic) : previous_(t_current_traffic) {
  t_current_traffic = traffic;
}

TrafficScope::~TrafficScope() { t_current_traffic = previous_; }

TaskTraffic* TrafficScope::Current() { return t_current_traffic; }

SimTime TaskWorkerTime(const CostModel& cost, const TaskTraffic& t) {
  const ClusterSpec& spec = cost.spec();
  SimTime time = cost.WorkerCompute(t.worker_ops);
  // pipelined_rounds deliberately absent: overlapped rounds share the
  // leader's latency window (max, not sum — see TaskTraffic).
  time += cost.RoundLatency(t.rounds);
  time += cost.MessageOverhead(t.TotalMsgs());
  time += static_cast<double>(t.TotalBytesToServers() +
                              t.TotalBytesFromServers()) /
          spec.net_bandwidth_bps;
  time += static_cast<double>(t.io_bytes) / spec.io_bandwidth_bps;
  // Retry backoff is a worker-side stall: the task sits out the exponential
  // wait before re-contacting an unavailable server. The staleness gate's
  // poll wait stalls the worker the same way (consistency/).
  time += t.retry_backoff_time;
  time += t.staleness_wait_time;
  return time;
}

StageCostBreakdown StageCost(
    const CostModel& cost, const std::vector<TaskTraffic>& per_task,
    const std::vector<std::vector<double>>& retry_fractions) {
  const ClusterSpec& spec = cost.spec();
  StageCostBreakdown out;

  // --- Worker bound: round-robin assignment of tasks to executors.
  const size_t num_workers = static_cast<size_t>(spec.num_workers);
  std::vector<SimTime> executor_time(num_workers, 0.0);
  for (size_t i = 0; i < per_task.size(); ++i) {
    SimTime task_time = TaskWorkerTime(cost, per_task[i]);
    SimTime charged = task_time;
    if (i < retry_fractions.size()) {
      for (double frac : retry_fractions[i]) {
        charged += frac * task_time;
        out.retry_penalty += frac * task_time;
      }
    }
    executor_time[i % num_workers] += charged;
  }
  for (SimTime t : executor_time) out.worker_bound = std::max(out.worker_bound, t);

  // --- Server bound: all tasks' requests serialize at each server.
  size_t num_servers = 0;
  for (const auto& t : per_task) {
    num_servers = std::max(num_servers, t.bytes_to_server.size());
  }
  std::vector<SimTime> server_time(num_servers, 0.0);
  for (const auto& t : per_task) {
    for (size_t s = 0; s < t.bytes_to_server.size(); ++s) {
      server_time[s] +=
          static_cast<double>(t.bytes_to_server[s] + t.bytes_from_server[s]) /
              spec.net_bandwidth_bps +
          cost.MessageOverhead(t.msgs_to_server[s] + t.msgs_from_server[s]) +
          cost.ServerCompute(t.server_ops[s]);
    }
  }
  for (SimTime t : server_time) out.server_bound = std::max(out.server_bound, t);

  // --- Driver dispatch: one scheduling round plus per-task launch overhead
  // (Spark task serialization/launch; a couple of ms per task, pipelined
  // across executors so it only bites for very short tasks).
  out.dispatch = spec.rpc_latency_s +
                 cost.MessageOverhead(2 * per_task.size());

  out.elapsed = std::max(out.worker_bound, out.server_bound) + out.dispatch;
  return out;
}

}  // namespace ps2
