#include "net/filter_config.h"

namespace ps2 {

bool FilterConfig::enabled() const {
  if (bits != 0) return true;
  for (int16_t m : per_opcode) {
    if (m > 0) return true;
  }
  return false;
}

Result<FilterConfig> FilterConfig::Parse(const std::string& text) {
  FilterConfig config;
  if (text.empty() || text == "off" || text == "none") return config;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    std::string token = text.substr(start, comma - start);
    if (token == "keycache") {
      config.bits |= kFilterKeyCache;
    } else if (token == "delta") {
      config.bits |= kFilterDelta;
    } else if (token == "compress") {
      config.bits |= kFilterCompress;
    } else if (token == "all") {
      config.bits |= kFilterAll;
    } else if (!token.empty()) {
      return Status::InvalidArgument("unknown filter: " + token);
    }
    start = comma + 1;
  }
  return config;
}

std::string FilterConfig::ToString() const {
  if (bits == 0) return "off";
  std::string out;
  auto append = [&out](const char* name) {
    if (!out.empty()) out += ',';
    out += name;
  };
  if (bits & kFilterKeyCache) append("keycache");
  if (bits & kFilterDelta) append("delta");
  if (bits & kFilterCompress) append("compress");
  return out;
}

}  // namespace ps2
