#include "net/filters.h"

#include <cmath>
#include <cstring>

namespace ps2 {

namespace {

constexpr const char* kKeyCacheMissPrefix = "keycache miss";

// Leading byte of a kValuesQuant chunk's coded stream.
constexpr uint8_t kQuantModeDeltaVarint = 0;
constexpr uint8_t kQuantModeFixed16 = 1;

// Varint-encoded length of `v` (for "is compression worth it" arithmetic).
size_t VarintLen(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

}  // namespace

uint64_t HashBytes64(Slice bytes) {
  // FNV-1a 64.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < bytes.size(); ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// ---- LZ byte codec ---------------------------------------------------------
//
// Ops: 0x00 <varint len> <len literal bytes>
//      0x01 <varint len> <varint dist>      (copy `len` from `dist` back)
// Greedy 4-byte-hash matcher; deterministic (no heuristics depend on
// anything but the input bytes).

namespace {

constexpr size_t kLzHashBits = 15;
constexpr size_t kLzMinMatch = 4;
constexpr size_t kLzMaxDist = 1u << 16;

inline uint32_t LzHash4(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kLzHashBits);
}

}  // namespace

std::vector<uint8_t> LzCompress(Slice in) {
  BufferWriter out(in.size() / 2 + 16);
  const uint8_t* p = in.data();
  const size_t n = in.size();
  std::vector<int64_t> table(size_t{1} << kLzHashBits, -1);

  size_t lit_start = 0;
  auto flush_literals = [&](size_t end) {
    if (end <= lit_start) return;
    out.WriteU8(0);
    out.WriteVarint(end - lit_start);
    out.WriteBytes(Slice(p + lit_start, end - lit_start));
  };

  size_t i = 0;
  while (i + kLzMinMatch <= n) {
    const uint32_t h = LzHash4(p + i);
    const int64_t cand = table[h];
    table[h] = static_cast<int64_t>(i);
    if (cand >= 0 && i - static_cast<size_t>(cand) <= kLzMaxDist &&
        std::memcmp(p + cand, p + i, kLzMinMatch) == 0) {
      size_t len = kLzMinMatch;
      while (i + len < n && p[cand + len] == p[i + len]) ++len;
      flush_literals(i);
      out.WriteU8(1);
      out.WriteVarint(len);
      out.WriteVarint(i - static_cast<size_t>(cand));
      const size_t end = i + len;
      ++i;  // position i itself is already in the table
      while (i < end && i + kLzMinMatch <= n) {
        table[LzHash4(p + i)] = static_cast<int64_t>(i);
        ++i;
      }
      i = end;
      lit_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(n);
  return out.Release();
}

Result<std::vector<uint8_t>> LzDecompress(Slice in, size_t raw_len) {
  std::vector<uint8_t> out;
  out.reserve(raw_len);
  BufferReader r(in);
  while (out.size() < raw_len) {
    PS2_ASSIGN_OR_RETURN(uint8_t op, r.ReadU8());
    if (op == 0) {
      PS2_ASSIGN_OR_RETURN(uint64_t len, r.ReadVarint());
      if (len > raw_len - out.size()) {
        return Status::OutOfRange("lz literal run exceeds raw length");
      }
      PS2_ASSIGN_OR_RETURN(Slice lit, r.ReadBytes(len));
      out.insert(out.end(), lit.data(), lit.data() + lit.size());
    } else if (op == 1) {
      PS2_ASSIGN_OR_RETURN(uint64_t len, r.ReadVarint());
      PS2_ASSIGN_OR_RETURN(uint64_t dist, r.ReadVarint());
      if (dist == 0 || dist > out.size()) {
        return Status::OutOfRange("lz match distance out of range");
      }
      if (len > raw_len - out.size()) {
        return Status::OutOfRange("lz match exceeds raw length");
      }
      // Byte-by-byte: overlapping matches (RLE) are the point.
      size_t src = out.size() - dist;
      for (uint64_t k = 0; k < len; ++k) out.push_back(out[src + k]);
    } else {
      return Status::OutOfRange("unknown lz op");
    }
  }
  if (!r.AtEnd()) return Status::OutOfRange("trailing bytes after lz stream");
  return out;
}

// ---- Key caches ------------------------------------------------------------

void ServerKeyCache::Install(uint64_t hash, Slice bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.count(hash)) return;  // idempotent (replay-safe)
  if (entries_.size() >= kMaxEntries) return;  // install is advisory
  entries_.emplace(hash, bytes.ToVector());
}

const std::vector<uint8_t>* ServerKeyCache::Lookup(uint64_t hash) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(hash);
  return it == entries_.end() ? nullptr : &it->second;
}

void ServerKeyCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

size_t ServerKeyCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

ClientKeyCache::Admission ClientKeyCache::Admit(int server, uint64_t hash,
                                                size_t len, bool force) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, first_sighting] = state_[server].emplace(hash, false);
  if (!force) {
    if (it->second) return Admission::kRef;
    if (first_sighting && len < kOptimisticInstallBytes) {
      return Admission::kVerbatim;  // remembered; install on next sighting
    }
  }
  it->second = true;
  return Admission::kInstall;
}

void ClientKeyCache::InvalidateServer(int server) {
  std::lock_guard<std::mutex> lock(mu_);
  state_.erase(server);
}

void ClientKeyCache::SyncEpoch(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (epoch == epoch_) return;
  epoch_ = epoch;
  state_.clear();
}

// ---- Structural filters ----------------------------------------------------

Status KeyCacheFilter::Encode(FilterContext* ctx,
                              std::vector<FilterChunk>* chunks,
                              bool* applied) const {
  for (FilterChunk& c : *chunks) {
    if (!c.marked || c.kind != SectionKind::kKeys ||
        c.tag != FilterChunk::kVerbatim || c.view.empty()) {
      continue;
    }
    // No client cache means no way to track recurrence — leave verbatim.
    if (ctx->client_keys == nullptr) continue;
    c.hash = HashBytes64(c.view);
    switch (ctx->client_keys->Admit(ctx->server, c.hash, c.view.size(),
                                    ctx->force_key_install)) {
      case ClientKeyCache::Admission::kVerbatim:
        continue;  // one sighting so far; literal bytes, no wire overhead
      case ClientKeyCache::Admission::kRef:
        c.tag = FilterChunk::kKeysRef;
        c.count = c.view.size();
        if (ctx->stats) ++ctx->stats->keycache_refs;
        break;
      case ClientKeyCache::Admission::kInstall:
        c.tag = FilterChunk::kKeysInstall;
        if (ctx->stats) ++ctx->stats->keycache_installs;
        break;
    }
    *applied = true;
  }
  return Status::OK();
}

Status KeyCacheFilter::DecodeChunk(FilterContext* ctx,
                                   const FilterChunk& chunk,
                                   std::vector<uint8_t>* out) const {
  if (chunk.tag == FilterChunk::kKeysInstall) {
    if (ctx->server_keys) ctx->server_keys->Install(chunk.hash, chunk.view);
    out->insert(out->end(), chunk.view.data(),
                chunk.view.data() + chunk.view.size());
    return Status::OK();
  }
  // kKeysRef
  const std::vector<uint8_t>* cached =
      ctx->server_keys ? ctx->server_keys->Lookup(chunk.hash) : nullptr;
  if (cached == nullptr || cached->size() != chunk.count) {
    return Status::FailedPrecondition(std::string(kKeyCacheMissPrefix) +
                                      ": hash " + std::to_string(chunk.hash));
  }
  out->insert(out->end(), cached->begin(), cached->end());
  return Status::OK();
}

Status DeltaQuantFilter::Encode(FilterContext* ctx,
                                std::vector<FilterChunk>* chunks,
                                bool* applied) const {
  (void)ctx;
  for (FilterChunk& c : *chunks) {
    if (!c.marked || c.kind != SectionKind::kF64Values ||
        c.tag != FilterChunk::kVerbatim || c.view.empty() ||
        c.view.size() % sizeof(double) != 0) {
      continue;
    }
    const size_t n = c.view.size() / sizeof(double);
    // One pass for the scale; bail verbatim on any non-finite value so
    // NaN/Inf payloads round-trip bit-exact.
    double max_abs = 0.0;
    bool finite = true;
    for (size_t i = 0; i < n; ++i) {
      double v;
      std::memcpy(&v, c.view.data() + i * sizeof(double), sizeof(double));
      if (!std::isfinite(v)) {
        finite = false;
        break;
      }
      max_abs = std::max(max_abs, std::fabs(v));
    }
    if (!finite) continue;
    const double step = max_abs / 32767.0;
    std::vector<int64_t> qs(n);
    for (size_t i = 0; i < n; ++i) {
      double v;
      std::memcpy(&v, c.view.data() + i * sizeof(double), sizeof(double));
      qs[i] = step == 0.0 ? 0 : std::llround(v / step);
    }
    // Two codings share the quantized stream: delta+zigzag varints win on
    // smooth spans (counts, sorted content), fixed 16-bit wins on noisy
    // gradient spans where consecutive deltas span the whole range. Pick
    // the smaller; the leading mode byte tells the decoder which.
    size_t varint_len = 0;
    int64_t prev = 0;
    for (int64_t q : qs) {
      const int64_t d = q - prev;
      varint_len += VarintLen((static_cast<uint64_t>(d) << 1) ^
                              static_cast<uint64_t>(d >> 63));
      prev = q;
    }
    BufferWriter w(1 + std::min(varint_len, 2 * n));
    if (varint_len <= 2 * n) {
      w.WriteU8(kQuantModeDeltaVarint);
      prev = 0;
      for (int64_t q : qs) {
        w.WriteSignedVarint(q - prev);
        prev = q;
      }
    } else {
      w.WriteU8(kQuantModeFixed16);
      for (int64_t q : qs) {
        const uint16_t z = static_cast<uint16_t>(
            (static_cast<uint64_t>(q) << 1) ^ static_cast<uint64_t>(q >> 63));
        w.WriteU8(static_cast<uint8_t>(z));
        w.WriteU8(static_cast<uint8_t>(z >> 8));
      }
    }
    c.tag = FilterChunk::kValuesQuant;
    c.count = n;
    c.scale = step;
    c.owned = w.Release();
    *applied = true;
  }
  return Status::OK();
}

Status DeltaQuantFilter::DecodeChunk(FilterContext* ctx,
                                     const FilterChunk& chunk,
                                     std::vector<uint8_t>* out) const {
  (void)ctx;
  BufferReader r(chunk.data());
  PS2_ASSIGN_OR_RETURN(uint8_t mode, r.ReadU8());
  if (mode != kQuantModeDeltaVarint && mode != kQuantModeFixed16) {
    return Status::OutOfRange("unknown quantized value coding");
  }
  int64_t q = 0;
  for (uint64_t i = 0; i < chunk.count; ++i) {
    if (mode == kQuantModeDeltaVarint) {
      PS2_ASSIGN_OR_RETURN(int64_t delta, r.ReadSignedVarint());
      q += delta;
    } else {
      PS2_ASSIGN_OR_RETURN(uint8_t lo, r.ReadU8());
      PS2_ASSIGN_OR_RETURN(uint8_t hi, r.ReadU8());
      const uint16_t z = static_cast<uint16_t>(lo | (hi << 8));
      q = static_cast<int64_t>(z >> 1) ^ -static_cast<int64_t>(z & 1);
    }
    const double v = static_cast<double>(q) * chunk.scale;
    const uint8_t* p = reinterpret_cast<const uint8_t*>(&v);
    out->insert(out->end(), p, p + sizeof(double));
  }
  if (!r.AtEnd()) {
    return Status::OutOfRange("trailing bytes in quantized value chunk");
  }
  return Status::OK();
}

// ---- Chain -----------------------------------------------------------------

FilterChain::FilterChain() : structural_{&keycache_, &delta_} {}

EncodedPayload FilterChain::Encode(Slice payload,
                                   const std::vector<PayloadSection>& sections,
                                   uint8_t want_mask, size_t prefix,
                                   FilterContext* ctx) const {
  EncodedPayload out;
  out.stats.logical_bytes = payload.size();
  out.stats.wire_bytes = payload.size();
  if (want_mask == 0 || payload.size() <= prefix) return out;
  EncodeStats* caller_stats = ctx->stats;
  ctx->stats = &out.stats;

  // --- Structural stage: split at the section marks, run the filters.
  std::vector<uint8_t> framed;
  bool framed_valid = false;
  if ((want_mask & (kFilterKeyCache | kFilterDelta)) && !sections.empty()) {
    std::vector<FilterChunk> chunks;
    size_t pos = prefix;
    bool sections_ok = true;
    for (const PayloadSection& s : sections) {
      if (s.offset < pos || s.len > payload.size() - s.offset) {
        sections_ok = false;  // overlapping/out-of-bounds marks: skip stage
        break;
      }
      if (s.offset > pos) {
        FilterChunk gap;
        gap.view = payload.subslice(pos, s.offset - pos);
        chunks.push_back(gap);
      }
      FilterChunk c;
      c.kind = s.kind;
      c.marked = true;
      c.view = payload.subslice(s.offset, s.len);
      chunks.push_back(std::move(c));
      pos = s.offset + s.len;
    }
    if (sections_ok) {
      if (pos < payload.size()) {
        FilterChunk tail;
        tail.view = payload.subslice(pos, payload.size() - pos);
        chunks.push_back(tail);
      }
      bool any = false;
      for (const IFilter* f : structural_) {
        if (!(want_mask & f->bit())) continue;
        bool applied = false;
        if (f->Encode(ctx, &chunks, &applied).ok() && applied) {
          out.mask |= f->bit();
          any = true;
        }
      }
      if (any) {
        BufferWriter w(payload.size());
        w.WriteVarint(chunks.size());
        for (const FilterChunk& c : chunks) {
          w.WriteU8(c.tag);
          switch (c.tag) {
            case FilterChunk::kVerbatim:
              w.WriteVarint(c.view.size());
              w.WriteBytes(c.view);
              break;
            case FilterChunk::kKeysInstall:
              w.WriteU64(c.hash);
              w.WriteVarint(c.view.size());
              w.WriteBytes(c.view);
              break;
            case FilterChunk::kKeysRef:
              w.WriteU64(c.hash);
              w.WriteVarint(c.count);
              break;
            case FilterChunk::kValuesQuant:
              w.WriteVarint(c.count);
              w.WriteF64(c.scale);
              w.WriteVarint(c.owned.size());
              w.WriteBytes(Slice(c.owned));
              break;
          }
        }
        framed = w.Release();
        framed_valid = true;
      }
    }
  }

  // --- Byte stage: compress whichever body survives the structural stage.
  const Slice body = framed_valid
                         ? Slice(framed)
                         : payload.subslice(prefix, payload.size() - prefix);
  std::vector<uint8_t> compressed;
  bool compressed_valid = false;
  if ((want_mask & kFilterCompress) && body.size() > 16) {
    std::vector<uint8_t> blob = LzCompress(body);
    if (VarintLen(body.size()) + blob.size() < body.size()) {
      compressed = std::move(blob);
      compressed_valid = true;
      out.mask |= kFilterCompress;
    }
  }

  ctx->stats = caller_stats;
  if (out.mask == 0) return out;  // nothing applied: alias the original

  BufferWriter w(prefix + (compressed_valid ? compressed.size() : body.size()) +
                 8);
  w.WriteBytes(payload.subslice(0, prefix));
  if (compressed_valid) {
    w.WriteVarint(body.size());
    w.WriteBytes(Slice(compressed));
  } else {
    w.WriteBytes(body);
  }
  out.wire = w.Release();
  out.stats.wire_bytes = out.wire.size();
  // Framing overhead can exceed the savings on small payloads. If the
  // filtered form failed to shrink, fall back to the verbatim payload — safe
  // unless this encode touched the key caches, whose state the wire bytes
  // must now carry (a dropped install would orphan the client-side record).
  if (out.wire.size() >= payload.size() && out.stats.keycache_installs == 0 &&
      out.stats.keycache_refs == 0) {
    out.mask = 0;
    out.wire.clear();
    out.stats = EncodeStats{};
    out.stats.logical_bytes = payload.size();
    out.stats.wire_bytes = payload.size();
  }
  return out;
}

Result<std::vector<uint8_t>> FilterChain::Decode(Slice wire, uint8_t mask,
                                                 size_t prefix,
                                                 FilterContext* ctx) const {
  if (wire.size() < prefix) {
    return Status::OutOfRange("filtered payload shorter than its prefix");
  }
  std::vector<uint8_t> out(wire.data(), wire.data() + prefix);
  if (mask == 0) {
    out.insert(out.end(), wire.data() + prefix, wire.data() + wire.size());
    return out;
  }

  Slice body = wire.subslice(prefix, wire.size() - prefix);
  std::vector<uint8_t> decompressed;
  if (mask & kFilterCompress) {
    BufferReader r(body);
    PS2_ASSIGN_OR_RETURN(uint64_t raw_len, r.ReadVarint());
    PS2_ASSIGN_OR_RETURN(Slice blob, r.ReadBytes(r.remaining()));
    PS2_ASSIGN_OR_RETURN(decompressed, LzDecompress(blob, raw_len));
    body = decompressed;
  }

  if ((mask & (kFilterKeyCache | kFilterDelta)) == 0) {
    out.insert(out.end(), body.data(), body.data() + body.size());
    return out;
  }

  BufferReader r(body);
  PS2_ASSIGN_OR_RETURN(uint64_t n_chunks, r.ReadVarint());
  if (n_chunks > body.size()) {
    return Status::OutOfRange("chunk count exceeds body");
  }
  for (uint64_t i = 0; i < n_chunks; ++i) {
    PS2_ASSIGN_OR_RETURN(uint8_t tag, r.ReadU8());
    FilterChunk c;
    c.tag = static_cast<FilterChunk::Tag>(tag);
    switch (c.tag) {
      case FilterChunk::kVerbatim: {
        PS2_ASSIGN_OR_RETURN(uint64_t len, r.ReadVarint());
        PS2_ASSIGN_OR_RETURN(Slice bytes, r.ReadBytes(len));
        out.insert(out.end(), bytes.data(), bytes.data() + bytes.size());
        break;
      }
      case FilterChunk::kKeysInstall: {
        PS2_ASSIGN_OR_RETURN(c.hash, r.ReadU64());
        PS2_ASSIGN_OR_RETURN(uint64_t len, r.ReadVarint());
        PS2_ASSIGN_OR_RETURN(c.view, r.ReadBytes(len));
        PS2_RETURN_NOT_OK(keycache_.DecodeChunk(ctx, c, &out));
        break;
      }
      case FilterChunk::kKeysRef: {
        PS2_ASSIGN_OR_RETURN(c.hash, r.ReadU64());
        PS2_ASSIGN_OR_RETURN(c.count, r.ReadVarint());
        PS2_RETURN_NOT_OK(keycache_.DecodeChunk(ctx, c, &out));
        break;
      }
      case FilterChunk::kValuesQuant: {
        PS2_ASSIGN_OR_RETURN(c.count, r.ReadVarint());
        PS2_ASSIGN_OR_RETURN(c.scale, r.ReadF64());
        PS2_ASSIGN_OR_RETURN(uint64_t len, r.ReadVarint());
        PS2_ASSIGN_OR_RETURN(c.view, r.ReadBytes(len));
        PS2_RETURN_NOT_OK(delta_.DecodeChunk(ctx, c, &out));
        break;
      }
      default:
        return Status::OutOfRange("unknown filter chunk tag");
    }
  }
  if (!r.AtEnd()) {
    return Status::OutOfRange("trailing bytes after chunk stream");
  }
  return out;
}

bool IsKeyCacheMiss(const Status& status) {
  return status.IsFailedPrecondition() &&
         status.message().rfind(kKeyCacheMissPrefix, 0) == 0;
}

}  // namespace ps2
