#pragma once

// Numerically stable loss/metric helpers shared by trainers and baselines.

#include <cstdint>
#include <vector>

#include "data/types.h"

namespace ps2 {

/// Stable sigmoid.
double Sigmoid(double z);

/// Stable -log(sigmoid(margin)) for label in {0,1}:
/// loss = log(1 + exp(-z)) if y=1 else log(1 + exp(z)).
double LogisticLoss(double margin, double label);

/// d/dz of the logistic loss: sigmoid(z) - y.
double LogisticGradientScale(double margin, double label);

/// Hinge loss max(0, 1 - y*z) with y in {-1,+1} mapped from {0,1}.
double HingeLoss(double margin, double label);

/// Mean logistic loss of `examples` under dense weights `w`.
double MeanLogisticLoss(const std::vector<Example>& examples,
                        const std::vector<double>& w);

/// Classification accuracy under dense weights `w` (threshold 0).
double Accuracy(const std::vector<Example>& examples,
                const std::vector<double>& w);

}  // namespace ps2
