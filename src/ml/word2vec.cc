#include "ml/word2vec.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/logging.h"
#include "data/graph_gen.h"
#include "dataflow/broadcast.h"
#include "ml/metrics.h"

namespace ps2 {

namespace {

/// One batch of skip-gram tasks over deduplicated row pulls.
struct W2vBatch {
  /// (center index into refs, context index into refs, label).
  struct Task {
    uint32_t center;
    uint32_t context;
    double label;
  };
  std::vector<Task> tasks;
  std::vector<RowRef> refs;  ///< deduplicated (matrix, row) pulls
  std::vector<uint64_t> touches;  ///< access count per ref (for RecordBatch)
  std::vector<int> ref_key;       ///< key of each ref

  void Clear() {
    tasks.clear();
    refs.clear();
    touches.clear();
    ref_key.clear();
  }
};

}  // namespace

Status Word2VecOptions::Validate() const {
  if (vocab == 0) return Status::InvalidArgument("vocab must be set");
  if (embedding_dim == 0) {
    return Status::InvalidArgument("embedding_dim must be positive");
  }
  if (batch_size == 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (epochs <= 0) return Status::InvalidArgument("epochs must be positive");
  if (negative_samples < 0) {
    return Status::InvalidArgument("negative_samples must be >= 0");
  }
  return param_mgmt.Validate();
}

Result<TrainReport> TrainWord2VecPs2(DcvContext* ctx,
                                     const Dataset<VertexPair>& pairs,
                                     const std::vector<double>& key_frequencies,
                                     const Word2VecOptions& options,
                                     Word2VecModel* model_out) {
  PS2_RETURN_NOT_OK(options.Validate());
  if (key_frequencies.size() < options.vocab) {
    return Status::InvalidArgument("key_frequencies must cover every key");
  }
  Cluster* cluster = ctx->cluster();
  PsMaster* master = ctx->master();
  PsClient* client = ctx->client();
  const uint32_t vocab = options.vocab;
  const uint32_t k_dim = options.embedding_dim;

  // One two-row matrix per key, homed round-robin over the active servers:
  // row 0 input embedding, row 1 context embedding. home_server makes each
  // key independently relocatable.
  std::vector<int> active = master->active_servers();
  if (active.empty()) return Status::FailedPrecondition("no active servers");
  Word2VecModel model;
  model.vocab = vocab;
  model.matrix_ids.reserve(vocab);
  for (uint32_t k = 0; k < vocab; ++k) {
    MatrixOptions mo;
    mo.name = "w2v.key" + std::to_string(k);
    mo.dim = k_dim;
    mo.reserve_rows = 2;
    mo.home_server = active[k % active.size()];
    PS2_ASSIGN_OR_RETURN(int id, master->CreateMatrix(mo));
    model.matrix_ids.push_back(id);
  }
  model.mgmt =
      std::make_shared<ParamMgmtManager>(master, options.param_mgmt);
  PS2_RETURN_NOT_OK(model.mgmt->Enable());
  for (uint32_t k = 0; k < vocab; ++k) {
    PS2_RETURN_NOT_OK(
        model.mgmt->RegisterKey(static_cast<int>(k), model.matrix_ids[k], 2));
  }

  // Seeded init stage: input rows get hash-uniform values in
  // [-0.5/K, 0.5/K]; context rows stay zero (the classic word2vec init).
  // Values depend only on (seed, key, col), so the model starts identically
  // whatever the placement or task schedule.
  const size_t init_tasks = static_cast<size_t>(cluster->num_workers());
  const std::vector<int>& ids = model.matrix_ids;
  Status init_status = Status::OK();
  std::mutex init_mu;
  cluster->RunStage("w2v.init", init_tasks, [&](TaskContext& task) {
    std::vector<RowRef> refs;
    std::vector<std::vector<double>> values;
    for (uint32_t k = static_cast<uint32_t>(task.task_id); k < vocab;
         k += init_tasks) {
      Rng rng = Rng(options.seed ^ 0x77F00D).Split(k);
      std::vector<double> row(k_dim);
      for (uint32_t c = 0; c < k_dim; ++c) {
        row[c] = rng.NextDouble(-0.5 / k_dim, 0.5 / k_dim);
      }
      refs.push_back(RowRef{ids[k], 0});
      values.push_back(std::move(row));
    }
    if (refs.empty()) return;
    Status s = client->PushOwnedRowsAsync(refs, values).Wait();
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(init_mu);
      init_status = s;
    }
  });
  PS2_RETURN_NOT_OK(init_status);

  // Global unigram prior, broadcast once. Each partition mixes it — at a
  // small weight — into the alias table it builds from its OWN pair counts
  // (NuPS sampling management, below).
  auto prior = std::make_shared<const std::vector<double>>(
      key_frequencies.begin(), key_frequencies.begin() + vocab);
  Broadcast<std::shared_ptr<const std::vector<double>>> bcast = BroadcastValue(
      cluster, prior, static_cast<uint64_t>(vocab) * sizeof(double));

  TrainReport report;
  report.system = std::string("PS2-Word2Vec(") +
                  ParamMgmtModeName(options.param_mgmt.mode) + ")";
  const SimTime t0 = cluster->clock().Now();
  const int negatives = options.negative_samples;
  const double lr = options.learning_rate;
  const uint32_t batch_size = options.batch_size;
  ParamMgmtManager* mgmt = model.mgmt.get();

  auto run_epoch = [&](TaskContext& task, const std::vector<VertexPair>& rows,
                       int epoch) -> std::pair<double, uint64_t> {
    // Local negative sampling (the NuPS sampling-management scheme):
    // negatives come from THIS partition's unigram^0.75 counts, so a warm
    // key's negative traffic stays with the partition that owns its
    // positives — without it, globally-sampled negatives smear every key's
    // accesses across all executors and no key ever shows a dominant
    // accessor for the relocation tier to move it toward. The global prior
    // keeps every key reachable at a tiny mass.
    const std::vector<double>& global_prior = *bcast.value();
    std::vector<double> neg_weights(vocab, 0.0);
    for (const VertexPair& p : rows) {
      neg_weights[p.u] += 1.0;
      neg_weights[p.v] += 1.0;
    }
    for (uint32_t k = 0; k < vocab; ++k) {
      neg_weights[k] = std::pow(neg_weights[k], 0.75) +
                       0.01 * global_prior[k] + 1e-12;
    }
    const AliasTable table(neg_weights);
    double loss_sum = 0;
    uint64_t trained = 0;
    Rng rng = task.rng.Split(0x3C1F + epoch);
    std::map<int, uint64_t> epoch_counts;  // key -> accesses this epoch

    // Builds one deduplicated batch: centers pull row 0, contexts and
    // negatives row 1.
    W2vBatch bufs[2];
    auto build = [&](size_t begin, size_t end, W2vBatch& b) {
      b.Clear();
      std::map<std::pair<int, uint32_t>, uint32_t> index;
      auto ref_of = [&](uint32_t key, uint32_t row) -> uint32_t {
        auto [it, fresh] =
            index.try_emplace({static_cast<int>(key), row},
                              static_cast<uint32_t>(b.refs.size()));
        if (fresh) {
          b.refs.push_back(RowRef{ids[key], row});
          b.touches.push_back(0);
          b.ref_key.push_back(static_cast<int>(key));
        }
        b.touches[it->second] += 1;
        return it->second;
      };
      for (size_t i = begin; i < end; ++i) {
        const VertexPair& p = rows[i];
        const uint32_t center = ref_of(p.u, 0);
        b.tasks.push_back({center, ref_of(p.v, 1), 1.0});
        for (int nk = 0; nk < negatives; ++nk) {
          uint32_t n = table.Sample(&rng);
          if (n == p.v) n = (n + 1) % vocab;
          b.tasks.push_back({center, ref_of(n, 1), 0.0});
        }
      }
    };

    // Double-buffered pipeline (the DeepWalk shape): while batch i's push is
    // in flight, batch i+1's pull rides behind it in the same latency
    // window. The prefetched pull may read rows at most one in-flight push
    // stale — the usual hogwild tolerance of skip-gram training.
    size_t cur = 0;
    PsFuture<std::vector<std::vector<double>>> pull_future;
    PsFuture<Ack> push_future;
    if (!rows.empty()) {
      build(0, std::min(rows.size(), size_t{batch_size}), bufs[0]);
      pull_future = client->PullOwnedRowsAsync(bufs[0].refs);
    }
    for (size_t start = 0; start < rows.size(); start += batch_size) {
      size_t end = std::min(rows.size(), start + batch_size);
      W2vBatch& batch = bufs[cur];
      if (end < rows.size()) {
        build(end, std::min(rows.size(), end + batch_size), bufs[1 - cur]);
      }
      Result<std::vector<std::vector<double>>> pulled = pull_future.Get();
      PS2_CHECK(pulled.ok()) << pulled.status();
      const std::vector<std::vector<double>>& vals = *pulled;
      // Local minibatch SGD against the pulled snapshot; deltas accumulate
      // per deduplicated row.
      std::vector<std::vector<double>> deltas(batch.refs.size(),
                                              std::vector<double>(k_dim, 0.0));
      for (const W2vBatch::Task& t : batch.tasks) {
        const std::vector<double>& emb = vals[t.center];
        const std::vector<double>& ctxv = vals[t.context];
        double dot = 0;
        for (uint32_t c = 0; c < k_dim; ++c) dot += emb[c] * ctxv[c];
        loss_sum += LogisticLoss(dot, t.label);
        const double alpha = -lr * (Sigmoid(dot) - t.label);
        std::vector<double>& d_emb = deltas[t.center];
        std::vector<double>& d_ctx = deltas[t.context];
        for (uint32_t c = 0; c < k_dim; ++c) {
          d_emb[c] += alpha * ctxv[c];
          d_ctx[c] += alpha * emb[c];
        }
      }
      for (size_t r = 0; r < batch.refs.size(); ++r) {
        epoch_counts[batch.ref_key[r]] += batch.touches[r];
      }
      // Harvest the previous push before issuing the next: at most one
      // update round stays in flight.
      if (push_future.valid()) PS2_CHECK_OK(push_future.Wait());
      push_future = client->PushOwnedRowsAsync(batch.refs, deltas);
      if (end < rows.size()) {
        pull_future = client->PullOwnedRowsAsync(bufs[1 - cur].refs);
        cur = 1 - cur;
      }
      task.AddWorkerOps(4 * k_dim * batch.tasks.size());
      trained += batch.tasks.size();
    }
    if (push_future.valid()) PS2_CHECK_OK(push_future.Wait());
    mgmt->RecordBatch(
        task.executor_id,
        std::vector<std::pair<int, uint64_t>>(epoch_counts.begin(),
                                              epoch_counts.end()));
    return {loss_sum, trained};
  };

  // One barrier per epoch; the tiering tick runs between stages, so a
  // relocation never straddles in-flight batches.
  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<std::pair<double, uint64_t>> partials =
        pairs.MapPartitionsCollect<std::pair<double, uint64_t>>(
            [&](TaskContext& task, const std::vector<VertexPair>& rows)
                -> std::pair<double, uint64_t> {
              return run_epoch(task, rows, epoch);
            });
    double loss_sum = 0;
    uint64_t count = 0;
    for (const auto& [l, c] : partials) {
      loss_sum += l;
      count += c;
    }
    PS2_RETURN_NOT_OK(mgmt->Tick());
    if (count != 0) {
      TrainPoint point;
      point.iteration = epoch;
      point.time = cluster->clock().Now() - t0;
      point.loss = loss_sum / static_cast<double>(count);
      report.curve.push_back(point);
      report.final_loss = point.loss;
    }
  }
  report.total_time = cluster->clock().Now() - t0;
  if (model_out != nullptr) *model_out = std::move(model);
  return report;
}

}  // namespace ps2
