#pragma once

// L-BFGS on PS2 (paper §3.1 and §5.2.4 list L-BFGS among the multi-vector
// optimizers PS2 supports).
//
// This trainer is the clearest showcase of DCV column ops: the two-loop
// recursion is nothing but dots and axpys over 2m+3 dimension co-located
// vectors (weights, gradient, direction, and the s/y history), every one of
// which executes server-side — the driver only sees scalars.

#include "common/result.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"
#include "ml/train_report.h"

namespace ps2 {

/// \brief L-BFGS options (full-batch; history size m).
struct LbfgsOptions {
  uint64_t dim = 0;     ///< required
  int iterations = 50;
  int history = 5;      ///< m
  double initial_step = 1.0;
  double backtrack_factor = 0.5;
  int max_backtracks = 4;
  GlmLossKind loss = GlmLossKind::kLogistic;
  double l2 = 1e-6;     ///< keeps the Hessian approximation well-posed
  uint64_t seed = 1;

  Status Validate() const {
    if (dim == 0) return Status::InvalidArgument("dim must be set");
    if (iterations <= 0) {
      return Status::InvalidArgument("iterations must be positive");
    }
    if (history <= 0 || history > 32) {
      return Status::InvalidArgument("history must be in [1, 32]");
    }
    return Status::OK();
  }
};

/// Trains a GLM with distributed L-BFGS; the entire two-loop recursion runs
/// as server-side DCV column ops.
Result<TrainReport> TrainLbfgsPs2(DcvContext* ctx,
                                  const Dataset<Example>& data,
                                  const LbfgsOptions& options,
                                  Dcv* weight_out = nullptr);

}  // namespace ps2
