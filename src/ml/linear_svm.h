#pragma once

// Linear SVM on PS2 (paper §5.2.4: "we also implement other ML models like
// LDA, Support Vector Machine, etc."). A thin specialization of the GLM
// trainer with hinge loss; included so the support matrix of paper Table 3
// is fully covered.

#include "common/result.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"
#include "ml/train_report.h"

namespace ps2 {

/// Trains a linear SVM (hinge loss) with the PS2 execution flow.
Result<TrainReport> TrainSvmPs2(DcvContext* ctx, const Dataset<Example>& data,
                                GlmOptions options, Dcv* weight_out = nullptr);

}  // namespace ps2
