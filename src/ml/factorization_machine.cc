#include "ml/factorization_machine.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "ml/logreg.h"
#include "ml/metrics.h"

namespace ps2 {

double FmModel::Margin(const SparseVector& x, const std::vector<double>& w,
                       const std::vector<std::vector<double>>& v,
                       const std::vector<uint64_t>& index_of,
                       size_t support_size) {
  (void)support_size;
  // `w` and each `v[f]` are indexed by position in the batch support; the
  // example's feature ids map through `index_of` via binary search.
  double margin = 0;
  const auto& idx = x.indices();
  const auto& val = x.values();
  std::vector<size_t> pos(idx.size());
  for (size_t k = 0; k < idx.size(); ++k) {
    auto it = std::lower_bound(index_of.begin(), index_of.end(), idx[k]);
    PS2_CHECK(it != index_of.end() && *it == idx[k]);
    pos[k] = static_cast<size_t>(it - index_of.begin());
    margin += val[k] * w[pos[k]];
  }
  for (const auto& vf : v) {
    double sum = 0, sum_sq = 0;
    for (size_t k = 0; k < idx.size(); ++k) {
      double t = val[k] * vf[pos[k]];
      sum += t;
      sum_sq += t * t;
    }
    margin += 0.5 * (sum * sum - sum_sq);
  }
  return margin;
}

Result<TrainReport> TrainFmPs2(DcvContext* ctx, const Dataset<Example>& data,
                               const FmOptions& options, FmModel* model_out) {
  PS2_RETURN_NOT_OK(options.Validate());
  Cluster* cluster = ctx->cluster();
  const uint32_t k_factors = options.factors;

  // One co-located group of k+2 rows: w, V_1..V_k, gradient scratch is not
  // needed because FM pushes per-task gradients directly (add semantics).
  PS2_ASSIGN_OR_RETURN(Dcv weights,
                       ctx->Dense(options.dim, k_factors + 1, 1, 0,
                                  "fm.weights"));
  PS2_ASSIGN_OR_RETURN(std::vector<Dcv> factors,
                       ctx->DeriveN(weights, k_factors));
  // Factor rows start at small random values (required: V = 0 is a saddle
  // point where factor gradients vanish); server-side init.
  PS2_RETURN_NOT_OK(ctx->client()->MatrixInit(
      weights.ref().matrix_id, 1, k_factors + 1, options.factor_init,
      options.seed));

  std::vector<RowRef> all_rows;
  all_rows.push_back(weights.ref());
  for (const Dcv& f : factors) all_rows.push_back(f.ref());

  TrainReport report;
  report.system = "PS2-FM";
  const SimTime t0 = cluster->clock().Now();
  PsClient* client = ctx->client();
  const double lr = options.learning_rate;
  const double l2v = options.l2_factors;

  for (int iter = 0; iter < options.iterations; ++iter) {
    Dataset<Example> batch =
        data.Sample(options.batch_fraction,
                    options.seed * 1000003ULL + static_cast<uint64_t>(iter));
    std::vector<std::pair<double, uint64_t>> partials =
        batch.MapPartitionsCollect<std::pair<double, uint64_t>>(
            [&](TaskContext& task, const std::vector<Example>& rows)
                -> std::pair<double, uint64_t> {
              if (rows.empty()) return {0.0, 0};
              std::vector<uint64_t> support = CollectBatchIndices(rows);

              // One round: the batch's support for all k+1 rows.
              Result<std::vector<std::vector<double>>> pulled =
                  client->PullSparseRowsAsync(all_rows, support).Get();
              PS2_CHECK(pulled.ok()) << pulled.status();
              std::vector<double>& w_local = (*pulled)[0];
              std::vector<std::vector<double>> v_local(
                  pulled->begin() + 1, pulled->end());

              // Per-coordinate gradient accumulators over the support.
              std::vector<std::vector<double>> grad(
                  k_factors + 1, std::vector<double>(support.size(), 0.0));
              double loss_sum = 0;
              std::vector<size_t> pos;
              std::vector<double> factor_sums(k_factors);
              for (const Example& ex : rows) {
                const auto& idx = ex.features.indices();
                const auto& val = ex.features.values();
                pos.resize(idx.size());
                double margin = 0;
                for (size_t k = 0; k < idx.size(); ++k) {
                  auto it = std::lower_bound(support.begin(), support.end(),
                                             idx[k]);
                  pos[k] = static_cast<size_t>(it - support.begin());
                  margin += val[k] * w_local[pos[k]];
                }
                for (uint32_t f = 0; f < k_factors; ++f) {
                  double sum = 0, sum_sq = 0;
                  for (size_t k = 0; k < idx.size(); ++k) {
                    double t = val[k] * v_local[f][pos[k]];
                    sum += t;
                    sum_sq += t * t;
                  }
                  factor_sums[f] = sum;
                  margin += 0.5 * (sum * sum - sum_sq);
                }
                loss_sum += LogisticLoss(margin, ex.label);
                double scale = LogisticGradientScale(margin, ex.label);
                for (size_t k = 0; k < idx.size(); ++k) {
                  grad[0][pos[k]] += scale * val[k];
                  for (uint32_t f = 0; f < k_factors; ++f) {
                    double vf = v_local[f][pos[k]];
                    grad[1 + f][pos[k]] +=
                        scale * val[k] * (factor_sums[f] - val[k] * vf) +
                        l2v * vf;
                  }
                }
                task.AddWorkerOps((2 + 6 * k_factors) * idx.size() + 8);
              }

              // SGD step applied locally, deltas pushed back (one round).
              const double step = -lr / static_cast<double>(rows.size());
              std::vector<SparseVector> deltas;
              deltas.reserve(k_factors + 1);
              for (uint32_t r = 0; r <= k_factors; ++r) {
                std::vector<uint64_t> di;
                std::vector<double> dv;
                for (size_t j = 0; j < support.size(); ++j) {
                  if (grad[r][j] != 0.0) {
                    di.push_back(support[j]);
                    dv.push_back(step * grad[r][j]);
                  }
                }
                deltas.emplace_back(std::move(di), std::move(dv));
              }
              PS2_CHECK_OK(
                  client->PushSparseRowsAsync(all_rows, deltas).Wait());
              return {loss_sum, rows.size()};
            });

    double loss_sum = 0;
    uint64_t count = 0;
    for (const auto& [l, c] : partials) {
      loss_sum += l;
      count += c;
    }
    if (count == 0) continue;
    TrainPoint point;
    point.iteration = iter;
    point.time = cluster->clock().Now() - t0;
    point.loss = loss_sum / static_cast<double>(count);
    report.curve.push_back(point);
    report.final_loss = point.loss;
  }
  report.total_time = cluster->clock().Now() - t0;
  if (model_out != nullptr) {
    model_out->weights = weights;
    model_out->factors = factors;
  }
  return report;
}

}  // namespace ps2
