#include "ml/async_glm.h"

#include <optional>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "consistency/consistency.h"
#include "ml/metrics.h"

namespace ps2 {

Result<TrainReport> TrainGlmPs2Relaxed(DcvContext* ctx,
                                       const Dataset<Example>& data,
                                       const GlmOptions& options) {
  PS2_RETURN_NOT_OK(options.Validate());
  if (options.optimizer.kind != OptimizerKind::kSgd) {
    return Status::NotImplemented(
        "relaxed-consistency training composes additive deltas; only SGD "
        "qualifies");
  }
  Cluster* cluster = ctx->cluster();
  const ConsistencyPolicy& policy = options.consistency;
  const int num_workers = static_cast<int>(data.num_partitions());
  ConsistencyController controller(ctx->client(), num_workers, policy);
  PS2_RETURN_NOT_OK(controller.Register());

  PS2_ASSIGN_OR_RETURN(Dcv weight,
                       ctx->Dense(options.dim, 2, 1, 0, "async_glm.weight"));

  TrainReport report;
  report.system = "PS2-AsyncSGD";
  const SimTime t0 = cluster->clock().Now();
  const GlmLossKind loss_kind = options.loss;
  const double lr = options.optimizer.learning_rate;

  int done = 0;
  for (int round = 0; done < options.iterations; ++round) {
    const int window = policy.StepsPerStage(options.iterations - done);
    const int stage_base = done;
    // One stage, `window` local steps per task: pulls see whatever mixture
    // of other workers' pushes has landed. The window never exceeds
    // slack + 1, so the gate below cannot trip mid-stage — the SSP bound
    // holds by construction and the trace stays deterministic.
    std::vector<std::pair<double, uint64_t>> partials =
        data.MapPartitionsCollect<std::pair<double, uint64_t>>(
            [&](TaskContext& task, const std::vector<Example>& rows)
                -> std::pair<double, uint64_t> {
              double loss_sum = 0;
              uint64_t count = 0;

              // A step's mini-batch plus its (sorted, unique) feature set.
              struct StepBatch {
                std::vector<Example> batch;
                std::vector<uint64_t> indices;
              };
              int next_step = 0;
              auto next_batch = [&]() -> std::optional<StepBatch> {
                while (next_step < window) {
                  // Local Bernoulli mini-batch, seeded like the sync
                  // trainer (global step index: stages may vary in size).
                  int step = next_step++;
                  uint64_t batch_seed =
                      options.seed * 1000003ULL +
                      static_cast<uint64_t>(stage_base + step);
                  Rng rng(batch_seed ^ (0x5A111E00ULL + task.task_id));
                  StepBatch sb;
                  for (const Example& ex : rows) {
                    if (rng.NextBernoulli(options.batch_fraction)) {
                      sb.batch.push_back(ex);
                    }
                  }
                  if (sb.batch.empty()) continue;
                  sb.indices = CollectBatchIndices(sb.batch);
                  return sb;
                }
                return std::nullopt;
              };

              // Prefetch pipeline (paper §5.1): the pull for step i+1 is
              // issued while step i's gradient push is still in flight, so
              // the two ops share one round of latency and the pulled
              // weights are at most one local push stale — a tightening of
              // the stage-level bounded staleness this trainer already
              // accepts. Every pull passes the staleness gate first.
              std::optional<StepBatch> cur = next_batch();
              PsFuture<std::vector<double>> pull_future;
              PsFuture<Ack> push_future;
              PsFuture<Ack> clock_future;
              int advanced = 0;
              if (cur) {
                controller.GatePull(task.task_id);
                pull_future = weight.PullSparseAsync(cur->indices);
              }
              while (cur) {
                // Sampling the next batch is local compute that overlaps
                // the in-flight pull.
                std::optional<StepBatch> nxt = next_batch();
                Result<std::vector<double>> pulled = pull_future.Get();
                PS2_CHECK(pulled.ok()) << pulled.status();
                const std::vector<uint64_t>& indices = cur->indices;
                std::unordered_map<uint64_t, double> w_local;
                w_local.reserve(indices.size() * 2);
                for (size_t k = 0; k < indices.size(); ++k) {
                  w_local.emplace(indices[k], (*pulled)[k]);
                }
                BatchGradient bg = ComputeBatchGradient(
                    cur->batch,
                    [&w_local](uint64_t j) {
                      auto it = w_local.find(j);
                      return it == w_local.end() ? 0.0 : it->second;
                    },
                    loss_kind);
                task.AddWorkerOps(bg.ops + indices.size());
                // Apply directly: push -lr/|batch| * g into the weights.
                SparseVector delta = bg.gradient;
                delta.ScaleInPlace(-lr / static_cast<double>(bg.count));
                if (push_future.valid()) PS2_CHECK_OK(push_future.Wait());
                if (clock_future.valid()) PS2_CHECK_OK(clock_future.Wait());
                push_future = weight.AddAsync(delta);
                // The clock advance rides the push round: one more small
                // message per server, no extra latency window.
                clock_future = controller.AdvanceClockAsync(task.task_id);
                ++advanced;
                if (nxt) {
                  // Rides the push round just issued.
                  controller.GatePull(task.task_id);
                  pull_future = weight.PullSparseAsync(nxt->indices);
                }
                loss_sum += bg.loss_sum;
                count += bg.count;
                cur = std::move(nxt);
              }
              if (push_future.valid()) PS2_CHECK_OK(push_future.Wait());
              if (clock_future.valid()) PS2_CHECK_OK(clock_future.Wait());
              // Steps whose Bernoulli sample came up empty still tick the
              // clock: every worker leaves the stage at stage_base + window,
              // which is what keeps the gate from blocking mid-stage.
              for (; advanced < window; ++advanced) {
                PS2_CHECK_OK(controller.AdvanceClock(task.task_id));
              }
              return {loss_sum, count};
            });

    done += window;
    double loss_sum = 0;
    uint64_t count = 0;
    for (const auto& [l, c] : partials) {
      loss_sum += l;
      count += c;
    }
    if (count == 0) continue;
    TrainPoint point;
    point.iteration = round;
    point.time = cluster->clock().Now() - t0;
    point.loss = loss_sum / static_cast<double>(count);
    report.curve.push_back(point);
    report.final_loss = point.loss;
  }
  report.total_time = cluster->clock().Now() - t0;
  return report;
}

Result<TrainReport> TrainGlmPs2Async(DcvContext* ctx,
                                     const Dataset<Example>& data,
                                     const GlmOptions& options,
                                     int steps_per_stage) {
  if (steps_per_stage <= 0) {
    return Status::InvalidArgument("steps_per_stage must be positive");
  }
  // steps_per_stage local steps between barriers is SSP with slack
  // steps_per_stage - 1 (slack 0 = a one-step window = the stage-
  // synchronous flavour this entry point always had).
  GlmOptions relaxed = options;
  relaxed.consistency = ConsistencyPolicy{};
  if (steps_per_stage > 1) {
    relaxed.consistency.mode = ConsistencyMode::kSsp;
    relaxed.consistency.slack = static_cast<uint32_t>(steps_per_stage - 1);
  }
  return TrainGlmPs2Relaxed(ctx, data, relaxed);
}

}  // namespace ps2
