#pragma once

// Generalized linear model training on PS2 (paper §3.3 / §5.2.1, Fig. 3).
//
// The PS2 execution flow per iteration:
//   1. model pull    — each worker pulls only the weights its mini-batch
//                      touches (sparse communication),
//   2. gradient calc — workers compute batch gradients locally,
//   3. gradient push — workers `add` sparse gradients into the gradient DCV;
//                      the stage barrier plays Spark's foreach() role,
//   4. model update  — one server-side `zip` over the co-located
//                      [w, s, v, g] DCVs applies the optimizer; no model
//                      bytes cross the network.
//
// The same gradient math is exported for the baseline trainers.

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "consistency/consistency.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "dcv/dcv_context.h"
#include "hotspot/hotspot_manager.h"
#include "ml/optimizer.h"
#include "ml/train_report.h"

namespace ps2 {

/// \brief Loss functions for the GLM trainers.
enum class GlmLossKind { kLogistic, kHinge };

/// \brief Options for (distributed) GLM training.
struct GlmOptions {
  uint64_t dim = 0;              ///< feature dimension (required)
  OptimizerOptions optimizer;    ///< paper Table 4 defaults
  double batch_fraction = 0.01;  ///< paper Table 4: mini_batch_fraction
  int iterations = 100;
  GlmLossKind loss = GlmLossKind::kLogistic;
  uint64_t seed = 1;
  /// Checkpoint all PS state every N iterations (paper §5.3's periodic
  /// checkpointing); 0 disables. Recovery from a server failure then loses
  /// at most N iterations of that server's shard.
  int checkpoint_every = 0;
  /// Hot-parameter management (DESIGN.md §5d): replicate frequently pulled
  /// weight rows and serve them from client caches at bounded staleness.
  HotspotOptions hotspot;
  /// Consistency regime (consistency/, DESIGN.md §11). BSP (the default)
  /// runs the paper's synchronous Fig. 3 flow, bit-identical to before the
  /// knob existed. SSP/ASP route through the ConsistencyController and
  /// require SGD (only additive deltas compose across stale workers).
  ConsistencyPolicy consistency;

  Status Validate() const {
    if (dim == 0) return Status::InvalidArgument("dim must be set");
    if (batch_fraction <= 0 || batch_fraction > 1) {
      return Status::InvalidArgument("batch_fraction must be in (0,1]");
    }
    if (iterations <= 0) {
      return Status::InvalidArgument("iterations must be positive");
    }
    if (hotspot.enabled) PS2_RETURN_NOT_OK(hotspot.Validate());
    PS2_RETURN_NOT_OK(consistency.Validate());
    return Status::OK();
  }
};

/// \brief A mini-batch gradient plus bookkeeping.
struct BatchGradient {
  SparseVector gradient;  ///< sum of per-example gradients (unnormalized)
  double loss_sum = 0;
  uint64_t count = 0;
  uint64_t ops = 0;  ///< scalar ops spent computing it
};

/// Sorted unique feature ids appearing in `batch`.
std::vector<uint64_t> CollectBatchIndices(const std::vector<Example>& batch);

/// Computes the unnormalized batch gradient; `weight_at(j)` returns w_j.
BatchGradient ComputeBatchGradient(
    const std::vector<Example>& batch,
    const std::function<double(uint64_t)>& weight_at, GlmLossKind loss);

/// \brief Trains a GLM with the full PS2/DCV machinery.
///
/// If `weight_out` is non-null it receives the weight DCV (still live in
/// `ctx`) for later pulls/predictions.
Result<TrainReport> TrainGlmPs2(DcvContext* ctx, const Dataset<Example>& data,
                                const GlmOptions& options,
                                Dcv* weight_out = nullptr);

}  // namespace ps2
