#include "ml/gbdt/tree.h"

namespace ps2 {

double RegressionTree::Predict(const std::vector<float>& features) const {
  if (nodes_.empty()) return 0.0;
  int i = 0;
  while (!nodes_[i].is_leaf) {
    const TreeNode& n = nodes_[i];
    i = features[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes_[i].weight;
}

double RegressionTree::PredictBinned(const uint16_t* bins) const {
  if (nodes_.empty()) return 0.0;
  int i = 0;
  while (!nodes_[i].is_leaf) {
    const TreeNode& n = nodes_[i];
    i = bins[n.feature] <= n.bin ? n.left : n.right;
  }
  return nodes_[i].weight;
}

double GbdtModel::PredictMargin(const std::vector<float>& features) const {
  double margin = 0;
  for (const RegressionTree& tree : trees) {
    margin += learning_rate * tree.Predict(features);
  }
  return margin;
}

}  // namespace ps2
