#pragma once

// Distributed GBDT training (paper §5.2.3, Figs. 7/8; evaluation §6.3.2).
//
// Both the PS2 trainer and the XGBoost-style baseline grow identical trees
// (same quantile sketch, same histograms, same split rule, same seeds); they
// differ ONLY in how per-worker histograms become global ones and where
// split finding runs:
//
//   PS2:     workers `add` local histograms into two co-located DCVs
//            (grad/hess, feature-aligned partitioning); split finding runs
//            server-side via zip-aggregate, so only one candidate per server
//            returns to the driver (paper Fig. 8).
//   XGBoost: workers allreduce the full histogram (charged as a tree
//            allreduce) and scan it locally — the communication pattern the
//            paper blames for XGBoost's 3.3x deficit (Fig. 11).
//
// The shared skeleton lives in TrainGbdtWithAggregator; the two systems
// plug in a HistogramAggregator.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "data/gbdt_gen.h"
#include "dataflow/dataset.h"
#include "dcv/dcv_context.h"
#include "ml/gbdt/histogram.h"
#include "ml/gbdt/tree.h"
#include "ml/train_report.h"

namespace ps2 {

/// \brief GBDT hyperparameters (paper Appendix A defaults).
struct GbdtOptions {
  uint32_t num_features = 0;   ///< required
  int num_trees = 100;         ///< paper Table 4: number_of_trees
  int max_depth = 7;           ///< paper Table 4
  uint32_t num_bins = 100;     ///< paper Table 4: size_of_histogram
  double learning_rate = 0.1;  ///< paper Table 4
  double lambda = 1.0;
  double min_child_hess = 1e-3;
  double min_gain = 1e-9;
  uint64_t seed = 5;
  /// Histogram subtraction (PS2 path only): build local histograms for only
  /// the lighter child of each split and derive the sibling server-side as
  /// parent - child — one DCV `sub` instead of a second build+push. Roughly
  /// halves per-level histogram traffic (see bench/ablation_hist_subtract).
  bool histogram_subtraction = false;

  Status Validate() const {
    if (num_features == 0) {
      return Status::InvalidArgument("num_features must be set");
    }
    if (num_trees <= 0) {
      return Status::InvalidArgument("num_trees must be positive");
    }
    if (max_depth <= 0 || max_depth > 14) {
      return Status::InvalidArgument("max_depth must be in [1, 14]");
    }
    if (num_bins < 2 || num_bins > 65535) {
      return Status::InvalidArgument("num_bins must be in [2, 65535]");
    }
    return Status::OK();
  }
};

/// \brief Training outcome: loss-per-tree curve plus the trained ensemble.
struct GbdtReport {
  TrainReport report;
  GbdtModel model;
};

/// \brief One frontier node during level-wise growth.
struct GbdtFrontierNode {
  int tree_node = -1;  ///< index into the tree being built
  double grad_sum = 0;
  double hess_sum = 0;
  int parent_index = -1;   ///< frontier index of the parent on the previous
                           ///< level (-1 for the root)
  int sibling_index = -1;  ///< frontier index of the sibling (-1 for root)
};

/// \brief Strategy for aggregating local histograms and finding splits.
class HistogramAggregator {
 public:
  virtual ~HistogramAggregator() = default;

  /// Histograms of the frontier nodes one task has data for.
  struct TaskHistograms {
    std::vector<size_t> frontier_indices;
    std::vector<std::vector<double>> grad_hists;  ///< parallel to indices
    std::vector<std::vector<double>> hess_hists;
  };

  /// Called at the start of each level with the frontier size.
  virtual Status OnLevelStart(const std::vector<GbdtFrontierNode>& frontier) = 0;

  /// Which frontier nodes need locally built histograms. The default builds
  /// all; aggregators supporting histogram subtraction may skip siblings
  /// they can derive. Returns a bitmap parallel to `frontier`.
  virtual std::vector<bool> PlanLocalBuilds(
      const std::vector<GbdtFrontierNode>& frontier) {
    return std::vector<bool>(frontier.size(), true);
  }

  /// Called from INSIDE a build task, once, with all its local histograms;
  /// ships (or stashes) them. Batching per task matters: it is one network
  /// round instead of one per node.
  virtual void PublishLocal(TaskContext& task,
                            TaskHistograms histograms) = 0;

  /// Called on the driver after the build stage barrier.
  virtual Status OnLevelCollected(
      const std::vector<GbdtFrontierNode>& frontier) = 0;

  /// Returns the globally best split of frontier node `frontier_index`.
  virtual Result<SplitCandidate> FindSplit(
      size_t frontier_index, const GbdtFrontierNode& node) = 0;
};

/// Grows the ensemble with the given aggregation strategy. `system_name`
/// labels the report curve.
Result<GbdtReport> TrainGbdtWithAggregator(Cluster* cluster,
                                           const Dataset<GbdtRow>& data,
                                           const GbdtOptions& options,
                                           HistogramAggregator* aggregator,
                                           const std::string& system_name);

/// Trains GBDT the PS2 way (DCV histograms + server-side split finding).
Result<GbdtReport> TrainGbdtPs2(DcvContext* ctx, const Dataset<GbdtRow>& data,
                                const GbdtOptions& options);

}  // namespace ps2
