#include "ml/gbdt/histogram.h"

#include "common/logging.h"
#include "linalg/kernels/kernels.h"

namespace ps2 {

void AccumulateHistogram(const std::vector<uint16_t>& bins,
                         const std::vector<double>& grad,
                         const std::vector<double>& hess,
                         const std::vector<uint32_t>& rows_in_node,
                         uint32_t num_features, uint32_t num_bins,
                         std::vector<double>* grad_hist,
                         std::vector<double>* hess_hist) {
  const size_t hist_size =
      static_cast<size_t>(num_features) * static_cast<size_t>(num_bins);
  if (grad_hist->size() != hist_size) grad_hist->assign(hist_size, 0.0);
  if (hess_hist->size() != hist_size) hess_hist->assign(hist_size, 0.0);
  kernels::HistAccumulate(bins.data(), grad.data(), hess.data(),
                          rows_in_node.data(), rows_in_node.size(),
                          num_features, num_bins, grad_hist->data(),
                          hess_hist->data());
}

SplitCandidate BestSplitInRange(const double* grad_hist,
                                const double* hess_hist,
                                uint32_t feature_begin, uint32_t feature_end,
                                uint32_t num_bins, double total_grad,
                                double total_hess, double lambda,
                                double min_child_hess) {
  SplitCandidate best;
  const double parent_score =
      total_grad * total_grad / (total_hess + lambda);
  for (uint32_t f = feature_begin; f < feature_end; ++f) {
    const double* g =
        grad_hist + static_cast<size_t>(f - feature_begin) * num_bins;
    const double* h =
        hess_hist + static_cast<size_t>(f - feature_begin) * num_bins;
    double gl = 0, hl = 0;
    // The last bin offers no split (everything would go left).
    for (uint32_t b = 0; b + 1 < num_bins; ++b) {
      gl += g[b];
      hl += h[b];
      double gr = total_grad - gl;
      double hr = total_hess - hl;
      if (hl < min_child_hess || hr < min_child_hess) continue;
      double gain = gl * gl / (hl + lambda) + gr * gr / (hr + lambda) -
                    parent_score;
      if (!best.valid || gain > best.gain) {
        best.valid = true;
        best.gain = gain;
        best.feature = f;
        best.bin = b;
        best.left_grad = gl;
        best.left_hess = hl;
      }
    }
  }
  return best;
}

double LeafWeight(double grad, double hess, double lambda) {
  return -grad / (hess + lambda);
}

}  // namespace ps2
