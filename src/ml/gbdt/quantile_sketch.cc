#include "ml/gbdt/quantile_sketch.h"

#include <algorithm>

#include "common/logging.h"

namespace ps2 {

void FeatureSample::Add(float value, Rng* rng) {
  ++seen_;
  if (values_.size() < capacity_) {
    values_.push_back(value);
  } else {
    // Reservoir replacement keeps the sample uniform over everything seen.
    uint64_t slot = rng->NextUint64(seen_);
    if (slot < capacity_) values_[slot] = value;
  }
}

void FeatureSample::Merge(const FeatureSample& other, Rng* rng) {
  for (float v : other.values_) Add(v, rng);
  // `seen_` already advanced by Add; adjust to reflect true population.
  seen_ += other.seen_ - other.values_.size();
}

BinCuts::BinCuts(uint32_t num_features, uint32_t num_bins)
    : num_features_(num_features), num_bins_(num_bins) {
  PS2_CHECK_GE(num_bins, 2u);
  cuts_.assign(static_cast<size_t>(num_features) * (num_bins - 1), 0.0f);
}

uint32_t BinCuts::BinOf(uint32_t f, float value) const {
  const float* begin = cuts_.data() + static_cast<size_t>(f) * (num_bins_ - 1);
  const float* end = begin + (num_bins_ - 1);
  return static_cast<uint32_t>(std::upper_bound(begin, end, value) - begin);
}

float BinCuts::CutValue(uint32_t f, uint32_t b) const {
  PS2_CHECK_LT(b, num_bins_ - 1);
  return cuts_[static_cast<size_t>(f) * (num_bins_ - 1) + b];
}

BinCuts BinCuts::FromSamples(const std::vector<FeatureSample>& samples,
                             uint32_t num_bins) {
  BinCuts cuts(static_cast<uint32_t>(samples.size()), num_bins);
  for (uint32_t f = 0; f < samples.size(); ++f) {
    std::vector<float> sorted = samples[f].values();
    std::sort(sorted.begin(), sorted.end());
    for (uint32_t b = 0; b + 1 < num_bins; ++b) {
      size_t idx = sorted.empty()
                       ? 0
                       : std::min(sorted.size() - 1,
                                  (sorted.size() * (b + 1)) / num_bins);
      float cut = sorted.empty() ? 0.0f : sorted[idx];
      cuts.cuts_[static_cast<size_t>(f) * (num_bins - 1) + b] = cut;
    }
    // Cuts must be non-decreasing for upper_bound to be meaningful.
    float* begin = cuts.cuts_.data() + static_cast<size_t>(f) * (num_bins - 1);
    for (uint32_t b = 1; b + 1 < num_bins; ++b) {
      begin[b] = std::max(begin[b], begin[b - 1]);
    }
  }
  return cuts;
}

}  // namespace ps2
