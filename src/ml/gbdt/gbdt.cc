#include "ml/gbdt/gbdt.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "dataflow/broadcast.h"
#include "linalg/dense_vector.h"
#include "ml/metrics.h"

namespace ps2 {

namespace {

/// Mutable per-partition training state, owned by the driver, written only
/// by the task that owns the partition (task_id == partition id).
struct GbdtPartitionState {
  std::vector<uint16_t> bins;  ///< rows x num_features, example-major
  std::vector<float> labels;
  std::vector<double> margin;  ///< current ensemble prediction F_i
  std::vector<double> grad;
  std::vector<double> hess;
  std::vector<int> node_of;    ///< current tree-node assignment

  size_t num_rows() const { return labels.size(); }
};

}  // namespace

Result<GbdtReport> TrainGbdtWithAggregator(Cluster* cluster,
                                           const Dataset<GbdtRow>& data,
                                           const GbdtOptions& options,
                                           HistogramAggregator* aggregator,
                                           const std::string& system_name) {
  PS2_RETURN_NOT_OK(options.Validate());
  const uint32_t num_features = options.num_features;
  const uint32_t num_bins = options.num_bins;
  const size_t num_partitions = data.num_partitions();

  GbdtReport out;
  out.report.system = system_name;
  out.model.learning_rate = options.learning_rate;
  const SimTime t0 = cluster->clock().Now();

  // ---- Quantile sketch: bounded per-feature samples -> driver -> cuts ----
  std::vector<std::vector<FeatureSample>> partition_samples =
      data.MapPartitionsCollect<std::vector<FeatureSample>>(
          [&](TaskContext& task, const std::vector<GbdtRow>& rows) {
            std::vector<FeatureSample> samples(num_features,
                                               FeatureSample(256));
            // Seeded independently of the cluster's stage counter so two
            // trainers over the same data grow identical trees.
            Rng rng(options.seed ^ (0x5A3D1EULL + task.task_id));
            for (const GbdtRow& row : rows) {
              for (uint32_t f = 0; f < num_features; ++f) {
                samples[f].Add(row.features[f], &rng);
              }
            }
            task.AddWorkerOps(rows.size() * num_features);
            return samples;
          });
  {
    // Sample transfer to the driver.
    uint64_t sample_bytes = static_cast<uint64_t>(num_features) * 256 * 4;
    cluster->AdvanceClock(cluster->cost().GatherAtOne(
        static_cast<int>(num_partitions), sample_bytes));
  }
  std::vector<FeatureSample> merged(num_features, FeatureSample(1024));
  {
    Rng rng(options.seed ^ 0x5EEDBEEF);
    for (const auto& part : partition_samples) {
      for (uint32_t f = 0; f < num_features; ++f) {
        merged[f].Merge(part[f], &rng);
      }
    }
  }
  out.model.cuts = BinCuts::FromSamples(merged, num_bins);
  const BinCuts& cuts = out.model.cuts;
  cluster->AdvanceClock(cluster->cost().BroadcastTorrent(
      cluster->num_workers(),
      static_cast<uint64_t>(num_features) * (num_bins - 1) * 4));

  // ---- Binning: materialize per-partition binned state ----
  std::vector<GbdtPartitionState> states(num_partitions);
  data.ForeachPartition([&](TaskContext& task,
                            const std::vector<GbdtRow>& rows) {
    GbdtPartitionState& state = states[task.task_id];
    state.bins.resize(rows.size() * num_features);
    state.labels.resize(rows.size());
    state.margin.assign(rows.size(), 0.0);
    state.grad.assign(rows.size(), 0.0);
    state.hess.assign(rows.size(), 0.0);
    state.node_of.assign(rows.size(), 0);
    for (size_t i = 0; i < rows.size(); ++i) {
      state.labels[i] = rows[i].label;
      for (uint32_t f = 0; f < num_features; ++f) {
        state.bins[i * num_features + f] =
            static_cast<uint16_t>(cuts.BinOf(f, rows[i].features[f]));
      }
    }
    task.AddWorkerOps(rows.size() * num_features * 4);
  });

  const int max_frontier = 1 << (options.max_depth - 1);

  // ---- Boosting loop ----
  for (int tree_index = 0; tree_index < options.num_trees; ++tree_index) {
    RegressionTree tree;
    int root = tree.AddNode();

    // Gradient pass: compute g/h from current margins, reset assignments.
    std::vector<std::pair<double, double>> gh_partials =
        data.MapPartitionsCollect<std::pair<double, double>>(
            [&](TaskContext& task, const std::vector<GbdtRow>& rows)
                -> std::pair<double, double> {
              GbdtPartitionState& state = states[task.task_id];
              double g_sum = 0, h_sum = 0;
              for (size_t i = 0; i < rows.size(); ++i) {
                double p = Sigmoid(state.margin[i]);
                state.grad[i] = p - state.labels[i];
                state.hess[i] = std::max(p * (1 - p), 1e-12);
                state.node_of[i] = root;
                g_sum += state.grad[i];
                h_sum += state.hess[i];
              }
              task.AddWorkerOps(rows.size() * 6);
              return {g_sum, h_sum};
            });
    double root_grad = 0, root_hess = 0;
    for (const auto& [g, h] : gh_partials) {
      root_grad += g;
      root_hess += h;
    }

    std::vector<GbdtFrontierNode> frontier{{root, root_grad, root_hess}};

    // Histograms are only needed while a further split is possible; the
    // deepest level's nodes become leaves from their (G, H) bookkeeping.
    for (int depth = 0; depth + 1 < options.max_depth && !frontier.empty();
         ++depth) {
      PS2_CHECK_LE(static_cast<int>(frontier.size()), max_frontier);
      PS2_RETURN_NOT_OK(aggregator->OnLevelStart(frontier));

      // Build stage: every task accumulates local histograms per frontier
      // node and publishes them through the aggregator.
      std::map<int, size_t> frontier_index;
      for (size_t k = 0; k < frontier.size(); ++k) {
        frontier_index[frontier[k].tree_node] = k;
      }
      std::vector<bool> build_locally = aggregator->PlanLocalBuilds(frontier);
      data.ForeachPartition([&](TaskContext& task,
                                const std::vector<GbdtRow>& rows) {
        GbdtPartitionState& state = states[task.task_id];
        std::vector<std::vector<uint32_t>> rows_per_node(frontier.size());
        for (size_t i = 0; i < rows.size(); ++i) {
          auto it = frontier_index.find(state.node_of[i]);
          if (it != frontier_index.end()) {
            rows_per_node[it->second].push_back(static_cast<uint32_t>(i));
          }
        }
        HistogramAggregator::TaskHistograms hists;
        for (size_t k = 0; k < frontier.size(); ++k) {
          if (!build_locally[k] || rows_per_node[k].empty()) continue;
          std::vector<double> grad_hist, hess_hist;
          AccumulateHistogram(state.bins, state.grad, state.hess,
                              rows_per_node[k], num_features, num_bins,
                              &grad_hist, &hess_hist);
          task.AddWorkerOps(rows_per_node[k].size() * num_features * 2);
          hists.frontier_indices.push_back(k);
          hists.grad_hists.push_back(std::move(grad_hist));
          hists.hess_hists.push_back(std::move(hess_hist));
        }
        if (!hists.frontier_indices.empty()) {
          aggregator->PublishLocal(task, std::move(hists));
        }
      });
      PS2_RETURN_NOT_OK(aggregator->OnLevelCollected(frontier));

      // Split finding + frontier expansion (driver side).
      std::vector<GbdtFrontierNode> next_frontier;
      struct NodeSplit {
        int tree_node;
        SplitCandidate split;
      };
      std::vector<NodeSplit> applied;
      for (size_t k = 0; k < frontier.size(); ++k) {
        GbdtFrontierNode& fnode = frontier[k];
        SplitCandidate split;
        PS2_ASSIGN_OR_RETURN(split, aggregator->FindSplit(k, fnode));
        bool can_split = split.valid && split.gain > options.min_gain;
        if (!can_split) {
          TreeNode& node = tree.node(fnode.tree_node);
          node.is_leaf = true;
          node.weight =
              LeafWeight(fnode.grad_sum, fnode.hess_sum, options.lambda);
          continue;
        }
        // AddNode may reallocate the node array — grab children first.
        const int left = tree.AddNode();
        const int right = tree.AddNode();
        TreeNode& node = tree.node(fnode.tree_node);
        node.is_leaf = false;
        node.feature = split.feature;
        node.bin = split.bin;
        node.threshold = cuts.CutValue(split.feature, split.bin);
        node.left = left;
        node.right = right;
        const int left_index = static_cast<int>(next_frontier.size());
        next_frontier.push_back({left, split.left_grad, split.left_hess,
                                 static_cast<int>(k), left_index + 1});
        next_frontier.push_back({right, fnode.grad_sum - split.left_grad,
                                 fnode.hess_sum - split.left_hess,
                                 static_cast<int>(k), left_index});
        applied.push_back({fnode.tree_node, split});
      }

      // Reassignment stage: route examples of split nodes to children.
      if (!applied.empty()) {
        std::map<int, NodeSplit> split_of;
        for (const NodeSplit& ns : applied) split_of[ns.tree_node] = ns;
        data.ForeachPartition([&](TaskContext& task,
                                  const std::vector<GbdtRow>& rows) {
          GbdtPartitionState& state = states[task.task_id];
          for (size_t i = 0; i < rows.size(); ++i) {
            auto it = split_of.find(state.node_of[i]);
            if (it == split_of.end()) continue;
            const SplitCandidate& split = it->second.split;
            const TreeNode& node = tree.node(it->first);
            uint16_t bin = state.bins[i * num_features + split.feature];
            state.node_of[i] = bin <= split.bin ? node.left : node.right;
          }
          task.AddWorkerOps(rows.size() * 2);
        });
      }
      frontier = std::move(next_frontier);
    }
    // Any frontier nodes left at max depth become leaves.
    for (const GbdtFrontierNode& fnode : frontier) {
      TreeNode& node = tree.node(fnode.tree_node);
      node.is_leaf = true;
      node.weight = LeafWeight(fnode.grad_sum, fnode.hess_sum, options.lambda);
    }

    // Margin update + loss evaluation.
    const double lr = options.learning_rate;
    std::vector<std::pair<double, uint64_t>> loss_partials =
        data.MapPartitionsCollect<std::pair<double, uint64_t>>(
            [&](TaskContext& task, const std::vector<GbdtRow>& rows)
                -> std::pair<double, uint64_t> {
              GbdtPartitionState& state = states[task.task_id];
              double loss = 0;
              for (size_t i = 0; i < rows.size(); ++i) {
                state.margin[i] +=
                    lr * tree.node(state.node_of[i]).weight;
                loss += LogisticLoss(state.margin[i], state.labels[i]);
              }
              task.AddWorkerOps(rows.size() * 6);
              return {loss, rows.size()};
            });
    double loss_sum = 0;
    uint64_t count = 0;
    for (const auto& [l, c] : loss_partials) {
      loss_sum += l;
      count += c;
    }

    out.model.trees.push_back(std::move(tree));
    TrainPoint point;
    point.iteration = tree_index;
    point.time = cluster->clock().Now() - t0;
    point.loss = count > 0 ? loss_sum / static_cast<double>(count) : 0;
    out.report.curve.push_back(point);
    out.report.final_loss = point.loss;
  }
  out.report.total_time = cluster->clock().Now() - t0;
  return out;
}

namespace {

/// PS2's aggregator: DCV rows hold the histograms; split finding runs
/// server-side via zip-aggregate (paper Fig. 8).
class Ps2HistogramAggregator final : public HistogramAggregator {
 public:
  Ps2HistogramAggregator(DcvContext* ctx, const GbdtOptions& options)
      : ctx_(ctx), options_(options) {
    params_ = std::make_shared<SplitParams>();
    auto params = params_;
    const uint32_t num_bins = options.num_bins;
    udf_id_ = ctx->RegisterZipAggregate(
        [params, num_bins](const std::vector<const double*>& rows, size_t n,
                           uint64_t col_offset) -> std::vector<double> {
          // rows = [grad_hist_slice, hess_hist_slice]; the feature-aligned
          // partitioner guarantees whole features per server.
          uint32_t feature_begin =
              static_cast<uint32_t>(col_offset / num_bins);
          uint32_t feature_end =
              feature_begin + static_cast<uint32_t>(n / num_bins);
          SplitCandidate best = BestSplitInRange(
              rows[0], rows[1], feature_begin, feature_end, num_bins,
              params->total_grad, params->total_hess, params->lambda,
              params->min_child_hess);
          return {best.valid ? 1.0 : 0.0, best.gain,
                  static_cast<double>(best.feature),
                  static_cast<double>(best.bin), best.left_grad,
                  best.left_hess};
        });
  }

  Status OnLevelStart(const std::vector<GbdtFrontierNode>& frontier) override {
    // Lazily create the histogram matrix: 2 rows (grad, hess) per frontier
    // slot, two banks (current + previous level, for histogram
    // subtraction), feature-aligned column partitioning.
    bank_size_ = static_cast<uint32_t>(1)
                 << std::max(1, options_.max_depth - 1);
    if (rows_.empty()) {
      const uint64_t dim =
          static_cast<uint64_t>(options_.num_features) * options_.num_bins;
      const uint32_t max_rows = 2 * bank_size_;
      PS2_ASSIGN_OR_RETURN(
          Dcv first, ctx_->Dense(dim, max_rows, options_.num_bins, 0,
                                 "gbdt.histograms"));
      rows_.push_back(first);
      PS2_ASSIGN_OR_RETURN(std::vector<Dcv> rest,
                           ctx_->DeriveN(first, max_rows - 1));
      rows_.insert(rows_.end(), rest.begin(), rest.end());
    }
    parity_ ^= 1;
    // Zero this level's bank in one server-side round.
    PS2_RETURN_NOT_OK(ctx_->client()->MatrixInit(
        rows_[0].ref().matrix_id, parity_ * bank_size_,
        parity_ * bank_size_ + static_cast<uint32_t>(2 * frontier.size()),
        0.0, 0));
    return Status::OK();
  }

  std::vector<bool> PlanLocalBuilds(
      const std::vector<GbdtFrontierNode>& frontier) override {
    std::vector<bool> build(frontier.size(), true);
    if (!options_.histogram_subtraction) return build;
    for (size_t k = 0; k < frontier.size(); ++k) {
      const GbdtFrontierNode& node = frontier[k];
      if (node.parent_index < 0 || node.sibling_index < 0) continue;
      const GbdtFrontierNode& sibling = frontier[node.sibling_index];
      // Build only the lighter child; ties resolved toward the lower index.
      bool heavier = node.hess_sum > sibling.hess_sum ||
                     (node.hess_sum == sibling.hess_sum &&
                      static_cast<int>(k) > node.sibling_index);
      if (heavier) build[k] = false;
    }
    return build;
  }

  void PublishLocal(TaskContext& task, TaskHistograms histograms) override {
    (void)task;  // traffic is recorded via the ambient TrafficScope
    // One batched row push per task per level (the real system coalesces
    // pushes per clock; per-node pushes would drown in message overheads).
    std::vector<RowRef> refs;
    std::vector<std::vector<double>> deltas;
    refs.reserve(2 * histograms.frontier_indices.size());
    deltas.reserve(refs.capacity());
    for (size_t i = 0; i < histograms.frontier_indices.size(); ++i) {
      size_t k = histograms.frontier_indices[i];
      refs.push_back(GradRow(k).ref());
      deltas.push_back(std::move(histograms.grad_hists[i]));
      refs.push_back(HessRow(k).ref());
      deltas.push_back(std::move(histograms.hess_hists[i]));
    }
    PS2_CHECK_OK(ctx_->client()->PushRowsAsync(refs, deltas).Wait());
  }

  Status OnLevelCollected(
      const std::vector<GbdtFrontierNode>& frontier) override {
    if (!options_.histogram_subtraction) return Status::OK();
    if (subtract_udf_ < 0) {
      // Rows arrive in groups of six: [dst_g, dst_h, parent_g, parent_h,
      // built_g, built_h]; every derived sibling of the level is computed
      // in this single server-side pass.
      subtract_udf_ = ctx_->RegisterZip(
          [](const std::vector<double*>& rows, size_t n,
             uint64_t) -> uint64_t {
            for (size_t g = 0; g + 5 < rows.size(); g += 6) {
              kernels::Sub(rows[g], rows[g + 2], rows[g + 4], n);
              kernels::Sub(rows[g + 1], rows[g + 3], rows[g + 5], n);
            }
            return rows.size() / 3 * n;
          });
    }
    std::vector<bool> build = PlanLocalBuilds(frontier);
    std::vector<Dcv> zip_rows;
    for (size_t k = 0; k < frontier.size(); ++k) {
      if (build[k]) continue;
      const GbdtFrontierNode& node = frontier[k];
      size_t parent = static_cast<size_t>(node.parent_index);
      size_t built = static_cast<size_t>(node.sibling_index);
      zip_rows.push_back(GradRow(k));
      zip_rows.push_back(HessRow(k));
      zip_rows.push_back(PrevGradRow(parent));
      zip_rows.push_back(PrevHessRow(parent));
      zip_rows.push_back(GradRow(built));
      zip_rows.push_back(HessRow(built));
    }
    if (zip_rows.empty()) return Status::OK();
    // One round derives every sibling: sibling = parent - built child.
    std::vector<Dcv> others(zip_rows.begin() + 1, zip_rows.end());
    return zip_rows.front().Zip(others, subtract_udf_);
  }

  Result<SplitCandidate> FindSplit(size_t frontier_index,
                                   const GbdtFrontierNode& node) override {
    params_->total_grad = node.grad_sum;
    params_->total_hess = node.hess_sum;
    params_->lambda = options_.lambda;
    params_->min_child_hess = options_.min_child_hess;
    PS2_ASSIGN_OR_RETURN(std::vector<std::vector<double>> per_server,
                         GradRow(frontier_index)
                             .ZipAggregate({HessRow(frontier_index)},
                                           udf_id_));
    SplitCandidate best;
    for (const std::vector<double>& c : per_server) {
      if (c.size() != 6 || c[0] == 0.0) continue;
      if (!best.valid || c[1] > best.gain) {
        best.valid = true;
        best.gain = c[1];
        best.feature = static_cast<uint32_t>(c[2]);
        best.bin = static_cast<uint32_t>(c[3]);
        best.left_grad = c[4];
        best.left_hess = c[5];
      }
    }
    return best;
  }

 private:
  struct SplitParams {
    double total_grad = 0;
    double total_hess = 0;
    double lambda = 1.0;
    double min_child_hess = 1e-3;
  };

  const Dcv& GradRow(size_t k) const {
    return rows_[parity_ * bank_size_ + 2 * k];
  }
  const Dcv& HessRow(size_t k) const {
    return rows_[parity_ * bank_size_ + 2 * k + 1];
  }
  const Dcv& PrevGradRow(size_t k) const {
    return rows_[(parity_ ^ 1) * bank_size_ + 2 * k];
  }
  const Dcv& PrevHessRow(size_t k) const {
    return rows_[(parity_ ^ 1) * bank_size_ + 2 * k + 1];
  }

  DcvContext* ctx_;
  GbdtOptions options_;
  std::vector<Dcv> rows_;
  std::shared_ptr<SplitParams> params_;
  int udf_id_ = -1;
  int subtract_udf_ = -1;
  uint32_t parity_ = 1;  // flipped to 0 by the first OnLevelStart
  uint32_t bank_size_ = 0;
};

}  // namespace

Result<GbdtReport> TrainGbdtPs2(DcvContext* ctx, const Dataset<GbdtRow>& data,
                                const GbdtOptions& options) {
  Ps2HistogramAggregator aggregator(ctx, options);
  return TrainGbdtWithAggregator(ctx->cluster(), data, options, &aggregator,
                                 "PS2-GBDT");
}

}  // namespace ps2
