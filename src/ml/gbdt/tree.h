#pragma once

// Regression tree model (the ensemble member GBDT builds).

#include <cstdint>
#include <vector>

#include "ml/gbdt/quantile_sketch.h"

namespace ps2 {

/// \brief One node of a trained regression tree.
struct TreeNode {
  bool is_leaf = true;
  uint32_t feature = 0;
  uint32_t bin = 0;        ///< split on binned value (training-time routing)
  float threshold = 0;     ///< split on raw value (inference-time routing)
  double weight = 0;       ///< leaf output (unscaled; ensemble applies lr)
  int left = -1;
  int right = -1;
};

/// \brief A trained regression tree.
class RegressionTree {
 public:
  int AddNode() {
    nodes_.push_back(TreeNode{});
    return static_cast<int>(nodes_.size()) - 1;
  }
  TreeNode& node(int i) { return nodes_[i]; }
  const TreeNode& node(int i) const { return nodes_[i]; }
  size_t size() const { return nodes_.size(); }

  /// Routes raw feature values to a leaf and returns its weight.
  double Predict(const std::vector<float>& features) const;

  /// Routes a binned row (num_features uint16 bins) to a leaf.
  double PredictBinned(const uint16_t* bins) const;

 private:
  std::vector<TreeNode> nodes_;
};

/// \brief A gradient-boosted ensemble: prediction = sum lr * tree(x).
struct GbdtModel {
  std::vector<RegressionTree> trees;
  double learning_rate = 0.1;
  BinCuts cuts;

  double PredictMargin(const std::vector<float>& features) const;
};

}  // namespace ps2
