#pragma once

// Gradient/hessian histograms and split finding (paper §5.2.3, Fig. 7/8).
//
// A node's histogram is a flat array of num_features * num_bins slots; slot
// f*B + b accumulates the gradient (or hessian) of every example in the node
// whose feature f falls in bin b. Split gain follows the standard
// second-order formula gain = GL^2/(HL+l) + GR^2/(HR+l) - G^2/(H+l).
//
// BestSplitInRange is shared by PS2 (inside the server-side zip-aggregate,
// scanning only the server's feature range — paper Fig. 8's computeInfoGain)
// and by the XGBoost baseline (scanning the full allreduced histogram).

#include <cstdint>
#include <vector>

namespace ps2 {

/// \brief A candidate split and its bookkeeping.
struct SplitCandidate {
  double gain = 0;
  uint32_t feature = 0;
  uint32_t bin = 0;  ///< go left if BinOf(value) <= bin
  double left_grad = 0;
  double left_hess = 0;
  bool valid = false;
};

/// Accumulates `rows_in_node` into grad/hess histograms.
/// `bins` is the example-major flattened bin matrix of the partition
/// (example i, feature f at bins[i*num_features + f]).
void AccumulateHistogram(const std::vector<uint16_t>& bins,
                         const std::vector<double>& grad,
                         const std::vector<double>& hess,
                         const std::vector<uint32_t>& rows_in_node,
                         uint32_t num_features, uint32_t num_bins,
                         std::vector<double>* grad_hist,
                         std::vector<double>* hess_hist);

/// Scans features [feature_begin, feature_end) of a histogram slice for the
/// best split. `grad_hist`/`hess_hist` point at the slice's first slot
/// (feature_begin's bin 0). `total_grad/hess` are the node totals.
SplitCandidate BestSplitInRange(const double* grad_hist,
                                const double* hess_hist,
                                uint32_t feature_begin, uint32_t feature_end,
                                uint32_t num_bins, double total_grad,
                                double total_hess, double lambda,
                                double min_child_hess);

/// Leaf weight -G / (H + lambda).
double LeafWeight(double grad, double hess, double lambda);

}  // namespace ps2
