#pragma once

// Approximate per-feature quantiles for GBDT histogram bin boundaries.
//
// Each worker contributes a bounded uniform sample per feature; the driver
// merges the samples and takes evenly spaced quantiles as the candidate
// split thresholds (the paper's size_of_histogram = 100 bins). Sample-merge
// sketches are what production GBDT systems (XGBoost, DimBoost) effectively
// compute; at our scales the approximation error is negligible.

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace ps2 {

/// \brief Bounded reservoir sample of one feature's values.
class FeatureSample {
 public:
  explicit FeatureSample(size_t capacity = 256) : capacity_(capacity) {}

  void Add(float value, Rng* rng);
  void Merge(const FeatureSample& other, Rng* rng);
  const std::vector<float>& values() const { return values_; }
  uint64_t seen() const { return seen_; }

 private:
  size_t capacity_;
  uint64_t seen_ = 0;
  std::vector<float> values_;
};

/// \brief Per-feature bin boundaries.
///
/// Feature f's bins are defined by `num_bins-1` increasing cut points; value
/// v falls into the first bin whose cut exceeds it.
class BinCuts {
 public:
  BinCuts() = default;
  BinCuts(uint32_t num_features, uint32_t num_bins);

  uint32_t num_features() const { return num_features_; }
  uint32_t num_bins() const { return num_bins_; }

  /// Bin index of `value` for feature `f`, in [0, num_bins).
  uint32_t BinOf(uint32_t f, float value) const;

  /// Upper cut value of bin `b` (split threshold "x <= cut goes left").
  float CutValue(uint32_t f, uint32_t b) const;

  /// Builds cuts from merged per-feature samples.
  static BinCuts FromSamples(const std::vector<FeatureSample>& samples,
                             uint32_t num_bins);

 private:
  uint32_t num_features_ = 0;
  uint32_t num_bins_ = 0;
  std::vector<float> cuts_;  // (num_bins-1) per feature, flattened
};

}  // namespace ps2
