#pragma once

// Training reports: loss-versus-virtual-time curves, the unit in which the
// paper's evaluation figures are expressed.

#include <limits>
#include <string>
#include <vector>

#include "sim/sim_clock.h"

namespace ps2 {

/// \brief One sample of a training curve.
struct TrainPoint {
  int iteration = 0;
  SimTime time = 0;   ///< virtual seconds since training start
  double loss = 0;    ///< objective value (lower is better)
};

/// \brief Outcome of one training run on one system.
struct TrainReport {
  std::string system;  ///< e.g. "PS2-Adam", "Spark-Adam", "PS-Adam"
  std::vector<TrainPoint> curve;
  double final_loss = std::numeric_limits<double>::infinity();
  SimTime total_time = 0;

  /// First virtual time at which the loss reaches `target`, or +inf.
  SimTime TimeToLoss(double target) const {
    for (const TrainPoint& p : curve) {
      if (p.loss <= target) return p.time;
    }
    return std::numeric_limits<double>::infinity();
  }

  /// Average virtual seconds per iteration.
  SimTime TimePerIteration() const {
    if (curve.empty()) return 0;
    return total_time / static_cast<double>(curve.size());
  }
};

}  // namespace ps2
