#include "ml/logreg.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "ml/async_glm.h"
#include "ml/metrics.h"

namespace ps2 {

std::vector<uint64_t> CollectBatchIndices(const std::vector<Example>& batch) {
  std::vector<uint64_t> idx;
  for (const Example& ex : batch) {
    idx.insert(idx.end(), ex.features.indices().begin(),
               ex.features.indices().end());
  }
  std::sort(idx.begin(), idx.end());
  idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
  return idx;
}

BatchGradient ComputeBatchGradient(
    const std::vector<Example>& batch,
    const std::function<double(uint64_t)>& weight_at, GlmLossKind loss) {
  BatchGradient out;
  std::unordered_map<uint64_t, double> grad;
  for (const Example& ex : batch) {
    double margin = 0.0;
    const auto& idx = ex.features.indices();
    const auto& val = ex.features.values();
    for (size_t k = 0; k < idx.size(); ++k) {
      margin += val[k] * weight_at(idx[k]);
    }
    double scale = 0.0;
    if (loss == GlmLossKind::kLogistic) {
      out.loss_sum += LogisticLoss(margin, ex.label);
      scale = LogisticGradientScale(margin, ex.label);
    } else {
      out.loss_sum += HingeLoss(margin, ex.label);
      double y = ex.label > 0.5 ? 1.0 : -1.0;
      scale = (y * margin < 1.0) ? -y : 0.0;
    }
    if (scale != 0.0) {
      for (size_t k = 0; k < idx.size(); ++k) {
        grad[idx[k]] += scale * val[k];
      }
    }
    out.ops += 4 * idx.size() + 8;
    ++out.count;
  }
  std::vector<uint64_t> gi;
  std::vector<double> gv;
  gi.reserve(grad.size());
  gv.reserve(grad.size());
  for (const auto& [j, g] : grad) {
    gi.push_back(j);
    gv.push_back(g);
  }
  out.gradient = SparseVector(std::move(gi), std::move(gv));
  return out;
}

Result<TrainReport> TrainGlmPs2(DcvContext* ctx, const Dataset<Example>& data,
                                const GlmOptions& options, Dcv* weight_out) {
  PS2_RETURN_NOT_OK(options.Validate());
  // SSP/ASP route through the consistency controller (consistency/,
  // DESIGN.md §11). BSP continues below on the unchanged synchronous path,
  // so the default traces stay bit-identical to the pre-controller code.
  if (!options.consistency.bsp()) {
    if (weight_out != nullptr) {
      return Status::InvalidArgument(
          "weight_out is only supported under bsp consistency");
    }
    return TrainGlmPs2Relaxed(ctx, data, options);
  }
  Cluster* cluster = ctx->cluster();
  const int n_state = OptimizerStateVectors(options.optimizer.kind);

  // Fig. 3 lines 3-7: one dense DCV for the weights; optimizer state and the
  // gradient are derived so all vectors are dimension co-located.
  PS2_ASSIGN_OR_RETURN(
      Dcv weight,
      ctx->Dense(options.dim, static_cast<uint32_t>(n_state + 2), 1, 0,
                 "glm.weight"));
  PS2_ASSIGN_OR_RETURN(std::vector<Dcv> state,
                       ctx->DeriveN(weight, n_state));
  PS2_ASSIGN_OR_RETURN(Dcv gradient, ctx->Derive(weight));
  for (Dcv& s : state) PS2_RETURN_NOT_OK(s.Zero());

  auto step = std::make_shared<std::atomic<int64_t>>(0);
  const int zip_udf =
      ctx->RegisterZip(MakeOptimizerZip(options.optimizer, step));

  TrainReport report;
  report.system = std::string("PS2-") +
                  OptimizerKindName(options.optimizer.kind);
  if (options.hotspot.enabled) {
    PS2_RETURN_NOT_OK(ctx->master()->hotspot()->Enable(options.hotspot));
  }
  const SimTime t0 = cluster->clock().Now();
  const GlmLossKind loss_kind = options.loss;

  for (int iter = 0; iter < options.iterations; ++iter) {
    // Fig. 3 line 10: gradient.zero().
    PS2_RETURN_NOT_OK(gradient.Zero());

    // Fig. 3 lines 12-19: sample, pull (sparse), compute, push, barrier.
    Dataset<Example> batch =
        data.Sample(options.batch_fraction,
                    options.seed * 1000003ULL + static_cast<uint64_t>(iter));
    std::vector<std::pair<double, uint64_t>> partials =
        batch.MapPartitionsCollect<std::pair<double, uint64_t>>(
            [&](TaskContext& task, const std::vector<Example>& rows)
                -> std::pair<double, uint64_t> {
              if (rows.empty()) return {0.0, 0};
              std::vector<uint64_t> indices = CollectBatchIndices(rows);
              Result<std::vector<double>> pulled =
                  weight.PullSparse(indices);
              PS2_CHECK(pulled.ok()) << pulled.status();
              std::unordered_map<uint64_t, double> w_local;
              w_local.reserve(indices.size() * 2);
              for (size_t k = 0; k < indices.size(); ++k) {
                w_local.emplace(indices[k], (*pulled)[k]);
              }
              BatchGradient bg = ComputeBatchGradient(
                  rows,
                  [&w_local](uint64_t j) {
                    auto it = w_local.find(j);
                    return it == w_local.end() ? 0.0 : it->second;
                  },
                  loss_kind);
              task.AddWorkerOps(bg.ops + indices.size());
              // Gradient push is the task's LAST operation (the paper's
              // task-failure-safety argument, §5.3).
              PS2_CHECK_OK(gradient.Add(bg.gradient));
              return {bg.loss_sum, bg.count};
            });

    double loss_sum = 0;
    uint64_t count = 0;
    for (const auto& [l, c] : partials) {
      loss_sum += l;
      count += c;
    }
    if (count == 0) continue;  // degenerate sample; skip the update

    // Fig. 3 lines 21-26: server-side model update via zip. Normalize the
    // summed gradient first (also a server-side column op).
    PS2_RETURN_NOT_OK(gradient.Scale(1.0 / static_cast<double>(count)));
    step->fetch_add(1);
    std::vector<Dcv> zip_rows = state;
    zip_rows.push_back(gradient);
    PS2_RETURN_NOT_OK(weight.Zip(zip_rows, zip_udf));

    if (options.checkpoint_every > 0 &&
        (iter + 1) % options.checkpoint_every == 0) {
      PS2_RETURN_NOT_OK(ctx->master()->CheckpointAll());
    }

    // Coordinator-side, after the zip: refreshed cache values reflect this
    // iteration's update, keeping staleness to the configured bound.
    if (options.hotspot.enabled) {
      PS2_RETURN_NOT_OK(ctx->master()->hotspot()->Tick());
    }

    TrainPoint point;
    point.iteration = iter;
    point.time = cluster->clock().Now() - t0;
    point.loss = loss_sum / static_cast<double>(count);
    report.curve.push_back(point);
    report.final_loss = point.loss;
  }
  report.total_time = cluster->clock().Now() - t0;
  if (weight_out != nullptr) *weight_out = weight;
  return report;
}

}  // namespace ps2
