#pragma once

// Factorization Machines on PS2.
//
// The paper's motivating workload list (§1: "classification models like
// logistic regression or factorization machine are used" for user
// profiling) includes FM, and FM is the sharpest showcase of the DCV
// abstraction after Adam: the model is 1 + k co-located vectors — the
// linear weights w plus k factor rows V_1..V_k — updated together each
// iteration. With `derive`, the entire group shares one partitioning, so
// per-batch traffic stays proportional to the batch's support times (k+1),
// and the SGD update runs without moving the model.
//
// Model:  y(x) = <w, x> + 1/2 * sum_f [ (<V_f, x>)^2 - <V_f^2, x^2> ]
// trained with logistic loss over labels {0,1}.

#include <cstdint>

#include "common/result.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "dcv/dcv_context.h"
#include "ml/train_report.h"

namespace ps2 {

/// \brief FM hyperparameters.
struct FmOptions {
  uint64_t dim = 0;        ///< feature dimension (required)
  uint32_t factors = 8;    ///< k, the latent dimensionality
  double learning_rate = 0.05;
  double factor_init = 0.05;  ///< V ~ U(-init, init), server-side
  double batch_fraction = 0.01;
  int iterations = 100;
  double l2_factors = 1e-4;
  uint64_t seed = 21;

  Status Validate() const {
    if (dim == 0) return Status::InvalidArgument("dim must be set");
    if (factors == 0 || factors > 256) {
      return Status::InvalidArgument("factors must be in [1, 256]");
    }
    if (batch_fraction <= 0 || batch_fraction > 1) {
      return Status::InvalidArgument("batch_fraction must be in (0,1]");
    }
    if (iterations <= 0) {
      return Status::InvalidArgument("iterations must be positive");
    }
    return Status::OK();
  }
};

/// \brief Live handles to a trained FM model on the servers.
struct FmModel {
  Dcv weights;              ///< w
  std::vector<Dcv> factors; ///< V_1..V_k, co-located with w

  /// Local prediction margin for one example given pulled parameters.
  static double Margin(const SparseVector& x, const std::vector<double>& w,
                       const std::vector<std::vector<double>>& v,
                       const std::vector<uint64_t>& index_of,
                       size_t support_size);
};

/// Trains a factorization machine with the PS2 execution flow (sparse pulls
/// of the batch's support for all k+1 rows in one round, local gradients,
/// sparse pushes). If `model_out` is non-null it receives the live handles.
Result<TrainReport> TrainFmPs2(DcvContext* ctx, const Dataset<Example>& data,
                               const FmOptions& options,
                               FmModel* model_out = nullptr);

}  // namespace ps2
