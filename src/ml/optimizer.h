#pragma once

// Optimizers (paper §3.1 / §5.2.4): SGD, Adam, Adagrad, RMSProp.
//
// The same per-coordinate kernel is used three ways, which is what makes the
// system comparison apples-to-apples ("these systems enjoy the same
// statistical efficiency", paper §6.1):
//   * server-side, as a DCV Zip UDF (PS2's element-wise multi-vector update),
//   * worker-side, on pulled slices (the "PS-" pull/push baselines),
//   * driver-side, on the full dense model (the Spark MLlib baseline).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "ps/ps_server.h"

namespace ps2 {

enum class OptimizerKind { kSgd, kAdam, kAdagrad, kRmsProp };

const char* OptimizerKindName(OptimizerKind kind);

/// \brief Hyperparameters (paper Appendix A defaults for LR).
struct OptimizerOptions {
  OptimizerKind kind = OptimizerKind::kSgd;
  double learning_rate = 0.618;  ///< paper Table 4
  double beta1 = 0.9;            ///< Adam: 2nd-moment decay (paper Eq. 1)
  double beta2 = 0.999;          ///< Adam: 1st-moment decay (paper Eq. 1)
  double epsilon = 1e-8;
  double rho = 0.9;              ///< RMSProp decay
  double l2 = 0.0;               ///< L2 regularization strength
};

/// Number of auxiliary state vectors (beyond weight + gradient) the
/// optimizer keeps: Adam 2 (s, v), Adagrad/RMSProp 1, SGD 0.
int OptimizerStateVectors(OptimizerKind kind);

/// \brief Applies one optimizer step over `n` coordinates.
///
/// `w` weights, `g` gradient (already averaged over the batch), `s` second
/// moment accumulator, `v` first moment / velocity (may be nullptr when the
/// optimizer does not use them), `t` the 1-based step count (Adam bias
/// correction). Follows paper Eq. (1) conventions: s is the decaying average
/// of squared gradients with beta1, v of gradients with beta2.
/// Returns the scalar op count.
uint64_t ApplyOptimizerStep(const OptimizerOptions& options, int64_t t,
                            double* w, const double* g, double* s, double* v,
                            size_t n);

/// Builds a server-side Zip UDF implementing the optimizer step over
/// co-located rows ordered [w, s, v, g] (Adam; Fig. 3's four DCVs),
/// [w, s, g] (Adagrad/RMSProp) or [w, g] (SGD). The shared `step` counter is
/// read at execution time; the trainer increments it once per iteration.
ZipFn MakeOptimizerZip(const OptimizerOptions& options,
                       std::shared_ptr<std::atomic<int64_t>> step);

}  // namespace ps2
