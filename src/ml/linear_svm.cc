#include "ml/linear_svm.h"

namespace ps2 {

Result<TrainReport> TrainSvmPs2(DcvContext* ctx, const Dataset<Example>& data,
                                GlmOptions options, Dcv* weight_out) {
  options.loss = GlmLossKind::kHinge;
  PS2_ASSIGN_OR_RETURN(TrainReport report,
                       TrainGlmPs2(ctx, data, options, weight_out));
  report.system = "PS2-SVM-" + std::string(OptimizerKindName(
                                   options.optimizer.kind));
  return report;
}

}  // namespace ps2
