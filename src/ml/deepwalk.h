#pragma once

// DeepWalk graph embedding on PS2 (paper §3.1 Example 2, §5.2.2, Fig. 5/6).
//
// The model is 2V K-dimensional vectors (input + context embedding per
// vertex), stored as the rows of one column-partitioned matrix so every
// vector is dimension co-located with every other. Training follows the
// skip-gram-with-negative-sampling update of paper Eq. (2):
//
//   for each sampled pair (u, v) and negatives n1..nk:
//     dot  <- <emb_u, ctx_c>              (server-side partial dots)
//     emb_u += -lr * (sigmoid(dot) - y) * ctx_c   (server-side iaxpy)
//     ctx_c += -lr * (sigmoid(dot) - y) * emb_u
//
// Only per-pair scalars cross the network — "rather, only some scalars are
// transferred" (paper §5.2.2). Pairs are processed in batches (Appendix A:
// batch_size = 512) so each round trip carries a whole batch.

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "consistency/consistency.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "dcv/dcv_context.h"
#include "hotspot/hotspot_manager.h"
#include "ml/train_report.h"

namespace ps2 {

/// \brief DeepWalk hyperparameters (paper Appendix A defaults).
struct DeepWalkOptions {
  uint32_t num_vertices = 0;    ///< V (required)
  uint32_t embedding_dim = 100; ///< K
  double learning_rate = 0.01;  ///< paper Table 4
  uint32_t batch_size = 512;    ///< paper Table 4
  int negative_samples = 5;     ///< paper Table 4
  int epochs = 5;
  uint64_t seed = 3;
  /// Spread the embedding matrix over at most this many servers (0 = all).
  /// Fig. 9(d) uses 30 servers and shows the DCV benefit shrinking.
  int num_servers = 0;
  /// Hot-parameter management (DESIGN.md §5d): replicate frequently pulled
  /// embedding rows (high-degree vertices under power-law graphs).
  HotspotOptions hotspot;
  /// Consistency regime (consistency/, DESIGN.md §11): SSP/ASP run several
  /// epochs per stage; a worker's dots read embeddings at most `s` epochs
  /// stale. BSP (the default) keeps the one-barrier-per-epoch flow.
  ConsistencyPolicy consistency;

  Status Validate() const {
    if (num_vertices == 0) {
      return Status::InvalidArgument("num_vertices must be set");
    }
    if (embedding_dim == 0) {
      return Status::InvalidArgument("embedding_dim must be positive");
    }
    if (batch_size == 0) {
      return Status::InvalidArgument("batch_size must be positive");
    }
    if (epochs <= 0) return Status::InvalidArgument("epochs must be positive");
    if (negative_samples < 0) {
      return Status::InvalidArgument("negative_samples must be >= 0");
    }
    if (hotspot.enabled) PS2_RETURN_NOT_OK(hotspot.Validate());
    PS2_RETURN_NOT_OK(consistency.Validate());
    return Status::OK();
  }
};

/// \brief Embedding handles: input rows [0,V), context rows [V,2V).
struct DeepWalkModel {
  std::vector<Dcv> rows;  ///< 2V co-located DCVs
  uint32_t num_vertices = 0;

  const Dcv& Input(uint32_t v) const { return rows[v]; }
  const Dcv& Context(uint32_t v) const { return rows[num_vertices + v]; }
};

/// Trains DeepWalk with PS2's server-side DCV ops ("PS2-DeepWalk").
/// `vertex_frequencies` drives negative sampling (unigram^0.75, see
/// data/graph_gen.h). If `model_out` is non-null it receives the live
/// embedding handles.
Result<TrainReport> TrainDeepWalkPs2(DcvContext* ctx,
                                     const Dataset<VertexPair>& pairs,
                                     const std::vector<double>& vertex_frequencies,
                                     const DeepWalkOptions& options,
                                     DeepWalkModel* model_out = nullptr);

}  // namespace ps2
