#pragma once

// LDA trainers. All four systems share the Gibbs sweep; they differ in the
// movement of the word-topic counts:
//
//   PS2:    sparse pulls of only the worker's local vocabulary, for all K
//           topic rows in one round, varint-compressed counts; sparse
//           compressed delta pushes. (TrainLdaPs2)
//   Petuum: full dense topic-row pulls every iteration (TrainLdaPetuum,
//           baselines/petuum_lda.h).
//   Glint:  per-document-minibatch row pulls, uncompressed, no dedup across
//           batches (TrainLdaGlint, baselines/glint_lda.h).
//   MLlib:  driver broadcasts the dense matrix; workers return dense count
//           deltas gathered at the driver (TrainLdaMllib,
//           baselines/mllib_lda.h).

#include "common/result.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "dcv/dcv_context.h"
#include "ml/lda/gibbs_sampler.h"
#include "ml/lda/lda_model.h"
#include "ml/train_report.h"

namespace ps2 {

/// Trains LDA on PS2. The report's loss is the negative mean per-token
/// predictive log-likelihood (lower = better), the Gibbs analogue of the
/// paper's convergence metric. If `topic_rows_out` is non-null it receives
/// the K live word-topic DCV handles (pull them for the learned topics).
Result<TrainReport> TrainLdaPs2(DcvContext* ctx, const Dataset<Document>& docs,
                                const LdaOptions& options,
                                std::vector<Dcv>* topic_rows_out = nullptr);

}  // namespace ps2
