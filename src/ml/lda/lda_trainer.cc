#include "ml/lda/lda_trainer.h"

#include "common/logging.h"
#include "consistency/consistency.h"
#include "dcv/dcv_batch.h"

namespace ps2 {

Result<TrainReport> TrainLdaPs2(DcvContext* ctx, const Dataset<Document>& docs,
                                const LdaOptions& options,
                                std::vector<Dcv>* topic_rows_out) {
  PS2_RETURN_NOT_OK(options.Validate());
  Cluster* cluster = ctx->cluster();
  const uint32_t k_topics = options.num_topics;

  // Word-topic counts: K co-located topic rows over the vocabulary; topic
  // totals: one small dense DCV.
  PS2_ASSIGN_OR_RETURN(
      std::vector<Dcv> topic_rows,
      ctx->DenseMatrix(options.vocab_size, k_topics, 0.0, 0,
                       "lda.word_topic"));
  PS2_ASSIGN_OR_RETURN(Dcv topic_totals,
                       ctx->Dense(k_topics, 2, 1, 0, "lda.topic_totals"));

  const size_t num_partitions = docs.num_partitions();
  std::vector<LdaPartitionState> states(num_partitions);

  TrainReport report;
  report.system = "PS2-LDA";
  if (options.hotspot.enabled) {
    PS2_RETURN_NOT_OK(ctx->master()->hotspot()->Enable(options.hotspot));
  }
  const SimTime t0 = cluster->clock().Now();

  // Initialization: random assignments, push initial counts (sparse,
  // compressed).
  docs.ForeachPartition([&](TaskContext& task,
                            const std::vector<Document>& rows) {
    LdaPartitionState& state = states[task.task_id];
    Rng rng = task.rng.Split(0x1DA0);
    state.Initialize(rows, options, &rng);
    task.AddWorkerOps(state.total_tokens() * 4);
    // Both count pushes overlap into one round through the async client.
    DcvBatch init = ctx->Batch();
    init.PushSparse(topic_rows, state.InitialTopicCounts(options),
                    /*compress_counts=*/true);
    init.Push(topic_totals, state.InitialTopicTotals(options));
    PS2_CHECK_OK(init.Submit().Wait());
  });

  // One Gibbs sweep of a partition against pulled counts; the sweep's delta
  // pushes are the task's last ops. `clock` (when non-null) is the
  // consistency controller of an SSP/ASP run: the pull passes the staleness
  // gate first and the clock advance rides the push round.
  auto run_sweep = [&](TaskContext& task, int global_iter,
                       ConsistencyController* clock) -> std::pair<double, uint64_t> {
    LdaPartitionState& state = states[task.task_id];
    if (state.local_vocab().empty()) {
      // Even a degenerate partition ticks its clock, or it would hold every
      // other worker's staleness gate back forever.
      if (clock != nullptr) PS2_CHECK_OK(clock->AdvanceClock(task.task_id));
      return {0.0, 0};
    }

    // Sparse pull of the local vocabulary's counts for every topic
    // (varint-compressed) overlapped with the topic-totals pull:
    // one round for both through the async client.
    if (clock != nullptr) clock->GatePull(task.task_id);
    DcvBatch pull = ctx->Batch();
    size_t counts_slot = pull.PullSparse(topic_rows, state.local_vocab(),
                                         /*compress_counts=*/true);
    size_t totals_slot = pull.Pull(topic_totals);
    Result<DcvBatchResults> pulled = pull.Execute();
    PS2_CHECK(pulled.ok()) << pulled.status();

    Rng rng = task.rng.Split(0x1DA1 + global_iter);
    LdaPartitionState::SweepResult sweep =
        state.Sweep(options, &pulled->sparse_pulled[counts_slot],
                    &pulled->pulled[totals_slot], &rng);
    task.AddWorkerOps(sweep.tokens * (4 * k_topics + 8));

    // Sparse compressed delta pushes (the last ops of the task),
    // again overlapped into a single round.
    DcvBatch push = ctx->Batch();
    push.PushSparse(topic_rows, std::move(sweep.topic_deltas),
                    /*compress_counts=*/true);
    push.Push(topic_totals, std::move(sweep.topic_total_deltas));
    DcvBatch::Future push_future = push.Submit();
    PsFuture<Ack> clock_future;
    if (clock != nullptr) clock_future = clock->AdvanceClockAsync(task.task_id);
    PS2_CHECK_OK(push_future.Wait());
    if (clock_future.valid()) PS2_CHECK_OK(clock_future.Wait());
    return {sweep.loglik_sum, sweep.tokens};
  };

  // Closes one stage: aggregate partials, refresh hot rows, record a point.
  auto finish_stage = [&](const std::vector<std::pair<double, uint64_t>>&
                              partials,
                          int point_iteration) -> Status {
    double loglik = 0;
    uint64_t tokens = 0;
    for (const auto& [l, c] : partials) {
      loglik += l;
      tokens += c;
    }
    // Coordinator-side, after the sweep's pushes: hot word rows (frequent
    // words) refresh against this iteration's counts.
    if (options.hotspot.enabled) {
      PS2_RETURN_NOT_OK(ctx->master()->hotspot()->Tick());
    }

    if (tokens == 0) return Status::OK();
    TrainPoint point;
    point.iteration = point_iteration;
    point.time = cluster->clock().Now() - t0;
    point.loss = -loglik / static_cast<double>(tokens);
    report.curve.push_back(point);
    report.final_loss = point.loss;
    return Status::OK();
  };

  if (options.consistency.bsp()) {
    // The paper's flow: one barrier per sweep (bit-identical to the
    // pre-controller trainer).
    for (int iter = 0; iter < options.iterations; ++iter) {
      std::vector<std::pair<double, uint64_t>> partials =
          docs.MapPartitionsCollect<std::pair<double, uint64_t>>(
              [&](TaskContext& task, const std::vector<Document>& rows)
                  -> std::pair<double, uint64_t> {
                (void)rows;  // documents live in the persistent Gibbs state
                return run_sweep(task, iter, nullptr);
              });
      PS2_RETURN_NOT_OK(finish_stage(partials, iter));
    }
  } else {
    // SSP/ASP (consistency/, DESIGN.md §11): a window of min(slack + 1,
    // remaining) sweeps per stage. A worker's pull sees counts at most
    // `slack` sweeps stale; the window bound keeps the gate from tripping
    // mid-stage, so the trace stays deterministic.
    const ConsistencyPolicy& policy = options.consistency;
    ConsistencyController controller(ctx->client(),
                                     static_cast<int>(num_partitions), policy);
    PS2_RETURN_NOT_OK(controller.Register());
    int done = 0;
    for (int round = 0; done < options.iterations; ++round) {
      const int window = policy.StepsPerStage(options.iterations - done);
      const int stage_base = done;
      std::vector<std::pair<double, uint64_t>> partials =
          docs.MapPartitionsCollect<std::pair<double, uint64_t>>(
              [&](TaskContext& task, const std::vector<Document>& rows)
                  -> std::pair<double, uint64_t> {
                (void)rows;
                double loglik = 0;
                uint64_t tokens = 0;
                for (int step = 0; step < window; ++step) {
                  auto [l, c] =
                      run_sweep(task, stage_base + step, &controller);
                  loglik += l;
                  tokens += c;
                }
                return {loglik, tokens};
              });
      done += window;
      PS2_RETURN_NOT_OK(finish_stage(partials, round));
    }
  }
  report.total_time = cluster->clock().Now() - t0;
  if (topic_rows_out != nullptr) *topic_rows_out = std::move(topic_rows);
  return report;
}

}  // namespace ps2
