#include "ml/lda/lda_trainer.h"

#include "common/logging.h"
#include "dcv/dcv_batch.h"

namespace ps2 {

Result<TrainReport> TrainLdaPs2(DcvContext* ctx, const Dataset<Document>& docs,
                                const LdaOptions& options,
                                std::vector<Dcv>* topic_rows_out) {
  PS2_RETURN_NOT_OK(options.Validate());
  Cluster* cluster = ctx->cluster();
  const uint32_t k_topics = options.num_topics;

  // Word-topic counts: K co-located topic rows over the vocabulary; topic
  // totals: one small dense DCV.
  PS2_ASSIGN_OR_RETURN(
      std::vector<Dcv> topic_rows,
      ctx->DenseMatrix(options.vocab_size, k_topics, 0.0, 0,
                       "lda.word_topic"));
  PS2_ASSIGN_OR_RETURN(Dcv topic_totals,
                       ctx->Dense(k_topics, 2, 1, 0, "lda.topic_totals"));

  const size_t num_partitions = docs.num_partitions();
  std::vector<LdaPartitionState> states(num_partitions);

  TrainReport report;
  report.system = "PS2-LDA";
  if (options.hotspot.enabled) {
    PS2_RETURN_NOT_OK(ctx->master()->hotspot()->Enable(options.hotspot));
  }
  const SimTime t0 = cluster->clock().Now();

  // Initialization: random assignments, push initial counts (sparse,
  // compressed).
  docs.ForeachPartition([&](TaskContext& task,
                            const std::vector<Document>& rows) {
    LdaPartitionState& state = states[task.task_id];
    Rng rng = task.rng.Split(0x1DA0);
    state.Initialize(rows, options, &rng);
    task.AddWorkerOps(state.total_tokens() * 4);
    // Both count pushes overlap into one round through the async client.
    DcvBatch init = ctx->Batch();
    init.PushSparse(topic_rows, state.InitialTopicCounts(options),
                    /*compress_counts=*/true);
    init.Push(topic_totals, state.InitialTopicTotals(options));
    PS2_CHECK_OK(init.Submit().Wait());
  });

  for (int iter = 0; iter < options.iterations; ++iter) {
    std::vector<std::pair<double, uint64_t>> partials =
        docs.MapPartitionsCollect<std::pair<double, uint64_t>>(
            [&](TaskContext& task, const std::vector<Document>& rows)
                -> std::pair<double, uint64_t> {
              (void)rows;  // documents live in the persistent Gibbs state
              LdaPartitionState& state = states[task.task_id];
              if (state.local_vocab().empty()) return {0.0, 0};

              // Sparse pull of the local vocabulary's counts for every topic
              // (varint-compressed) overlapped with the topic-totals pull:
              // one round for both through the async client.
              DcvBatch pull = ctx->Batch();
              size_t counts_slot =
                  pull.PullSparse(topic_rows, state.local_vocab(),
                                  /*compress_counts=*/true);
              size_t totals_slot = pull.Pull(topic_totals);
              Result<DcvBatchResults> pulled = pull.Execute();
              PS2_CHECK(pulled.ok()) << pulled.status();

              Rng rng = task.rng.Split(0x1DA1 + iter);
              LdaPartitionState::SweepResult sweep =
                  state.Sweep(options, &pulled->sparse_pulled[counts_slot],
                              &pulled->pulled[totals_slot], &rng);
              task.AddWorkerOps(sweep.tokens * (4 * k_topics + 8));

              // Sparse compressed delta pushes (the last ops of the task),
              // again overlapped into a single round.
              DcvBatch push = ctx->Batch();
              push.PushSparse(topic_rows, std::move(sweep.topic_deltas),
                              /*compress_counts=*/true);
              push.Push(topic_totals, std::move(sweep.topic_total_deltas));
              PS2_CHECK_OK(push.Submit().Wait());
              return {sweep.loglik_sum, sweep.tokens};
            });

    double loglik = 0;
    uint64_t tokens = 0;
    for (const auto& [l, c] : partials) {
      loglik += l;
      tokens += c;
    }
    // Coordinator-side, after the sweep's pushes: hot word rows (frequent
    // words) refresh against this iteration's counts.
    if (options.hotspot.enabled) {
      PS2_RETURN_NOT_OK(ctx->master()->hotspot()->Tick());
    }

    if (tokens == 0) continue;
    TrainPoint point;
    point.iteration = iter;
    point.time = cluster->clock().Now() - t0;
    point.loss = -loglik / static_cast<double>(tokens);
    report.curve.push_back(point);
    report.final_loss = point.loss;
  }
  report.total_time = cluster->clock().Now() - t0;
  if (topic_rows_out != nullptr) *topic_rows_out = std::move(topic_rows);
  return report;
}

}  // namespace ps2
