#include "ml/lda/gibbs_sampler.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"

namespace ps2 {

void LdaPartitionState::Initialize(const std::vector<Document>& docs,
                                   const LdaOptions& options, Rng* rng) {
  docs_ = docs;
  const uint32_t k_topics = options.num_topics;
  z_.resize(docs_.size());
  doc_topic_.assign(docs_.size(), std::vector<uint32_t>(k_topics, 0));

  // Local vocabulary (sorted unique word ids).
  local_vocab_.clear();
  for (const Document& doc : docs_) {
    for (uint32_t w : doc.tokens) local_vocab_.push_back(w);
  }
  std::sort(local_vocab_.begin(), local_vocab_.end());
  local_vocab_.erase(std::unique(local_vocab_.begin(), local_vocab_.end()),
                     local_vocab_.end());

  total_tokens_ = 0;
  token_word_local_.clear();
  for (size_t d = 0; d < docs_.size(); ++d) {
    z_[d].resize(docs_[d].tokens.size());
    for (size_t t = 0; t < docs_[d].tokens.size(); ++t) {
      uint32_t topic = static_cast<uint32_t>(rng->NextUint64(k_topics));
      z_[d][t] = topic;
      doc_topic_[d][topic] += 1;
      token_word_local_.push_back(
          static_cast<uint32_t>(LocalWordIndex(docs_[d].tokens[t])));
      ++total_tokens_;
    }
  }
}

size_t LdaPartitionState::LocalWordIndex(uint64_t word) const {
  auto it = std::lower_bound(local_vocab_.begin(), local_vocab_.end(), word);
  PS2_CHECK(it != local_vocab_.end() && *it == word);
  return static_cast<size_t>(it - local_vocab_.begin());
}

std::vector<SparseVector> LdaPartitionState::InitialTopicCounts(
    const LdaOptions& options) const {
  const uint32_t k_topics = options.num_topics;
  std::vector<std::map<uint32_t, double>> counts(k_topics);
  size_t flat = 0;
  for (size_t d = 0; d < docs_.size(); ++d) {
    for (size_t t = 0; t < docs_[d].tokens.size(); ++t, ++flat) {
      counts[z_[d][t]][token_word_local_[flat]] += 1.0;
    }
  }
  std::vector<SparseVector> out;
  out.reserve(k_topics);
  for (uint32_t k = 0; k < k_topics; ++k) {
    std::vector<uint64_t> idx;
    std::vector<double> val;
    for (const auto& [j, v] : counts[k]) {
      idx.push_back(local_vocab_[j]);
      val.push_back(v);
    }
    out.emplace_back(std::move(idx), std::move(val));
  }
  return out;
}

std::vector<double> LdaPartitionState::InitialTopicTotals(
    const LdaOptions& options) const {
  std::vector<double> totals(options.num_topics, 0.0);
  for (size_t d = 0; d < docs_.size(); ++d) {
    for (uint32_t t : z_[d]) totals[t] += 1.0;
  }
  return totals;
}

LdaPartitionState::SweepResult LdaPartitionState::Sweep(
    const LdaOptions& options, std::vector<std::vector<double>>* nwt_local,
    std::vector<double>* nt, Rng* rng, size_t doc_begin, size_t doc_end) {
  const uint32_t k_topics = options.num_topics;
  const double alpha = options.alpha;
  const double beta = options.beta;
  const double v_beta = options.vocab_size * beta;
  doc_end = std::min(doc_end, docs_.size());

  SweepResult result;
  result.topic_total_deltas.assign(k_topics, 0.0);
  // Deltas are sparse relative to the vocabulary; maps keep the memory
  // footprint proportional to the tokens actually resampled.
  std::vector<std::map<uint32_t, double>> delta(k_topics);
  std::vector<double> weights(k_topics);

  // Flat token offset of doc_begin.
  size_t flat = 0;
  for (size_t d = 0; d < doc_begin; ++d) flat += docs_[d].tokens.size();
  for (size_t d = doc_begin; d < doc_end; ++d) {
    std::vector<uint32_t>& nd = doc_topic_[d];
    const double doc_len = static_cast<double>(docs_[d].tokens.size());
    for (size_t t = 0; t < docs_[d].tokens.size(); ++t, ++flat) {
      const uint32_t w_local = token_word_local_[flat];
      const uint32_t old_topic = z_[d][t];

      // Remove the token from all counts (clamping guards against transient
      // negatives caused by stale counts from concurrent workers).
      nd[old_topic] -= 1;
      std::vector<double>& old_row = (*nwt_local)[old_topic];
      old_row[w_local] = std::max(0.0, old_row[w_local] - 1.0);
      (*nt)[old_topic] = std::max(0.0, (*nt)[old_topic] - 1.0);
      delta[old_topic][w_local] -= 1.0;
      result.topic_total_deltas[old_topic] -= 1.0;

      // Sampling weights: (N_dk + a) (N_wk + b) / (N_k + V b).
      double total = 0.0;
      for (uint32_t k = 0; k < k_topics; ++k) {
        double wgt = (nd[k] + alpha) * ((*nwt_local)[k][w_local] + beta) /
                     ((*nt)[k] + v_beta);
        weights[k] = wgt;
        total += wgt;
      }
      double u = rng->NextDouble() * total;
      uint32_t new_topic = k_topics - 1;
      double acc = 0.0;
      for (uint32_t k = 0; k < k_topics; ++k) {
        acc += weights[k];
        if (u <= acc) {
          new_topic = k;
          break;
        }
      }

      // Token log-likelihood under the predictive distribution.
      result.loglik_sum +=
          std::log(total / (doc_len - 1.0 + k_topics * alpha));

      nd[new_topic] += 1;
      (*nwt_local)[new_topic][w_local] += 1.0;
      (*nt)[new_topic] += 1.0;
      delta[new_topic][w_local] += 1.0;
      result.topic_total_deltas[new_topic] += 1.0;
      z_[d][t] = new_topic;
      ++result.tokens;
    }
  }

  result.topic_deltas.reserve(k_topics);
  for (uint32_t k = 0; k < k_topics; ++k) {
    std::vector<uint64_t> idx;
    std::vector<double> val;
    for (const auto& [j, v] : delta[k]) {
      if (v != 0.0) {
        idx.push_back(local_vocab_[j]);
        val.push_back(v);
      }
    }
    result.topic_deltas.emplace_back(std::move(idx), std::move(val));
  }
  return result;
}

std::vector<size_t> LdaPartitionState::DocRangeLocalWords(
    size_t doc_begin, size_t doc_end) const {
  doc_end = std::min(doc_end, docs_.size());
  size_t flat = 0;
  for (size_t d = 0; d < doc_begin; ++d) flat += docs_[d].tokens.size();
  std::vector<size_t> words;
  for (size_t d = doc_begin; d < doc_end; ++d) {
    for (size_t t = 0; t < docs_[d].tokens.size(); ++t, ++flat) {
      words.push_back(token_word_local_[flat]);
    }
  }
  std::sort(words.begin(), words.end());
  words.erase(std::unique(words.begin(), words.end()), words.end());
  return words;
}

}  // namespace ps2
