#pragma once

// Worker-local collapsed Gibbs machinery, shared by the PS2 trainer and all
// baselines (they differ only in how word-topic counts travel).

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/types.h"
#include "linalg/sparse_vector.h"
#include "ml/lda/lda_model.h"

namespace ps2 {

/// \brief Per-partition Gibbs state: documents, assignments, doc-topic
/// counts, and the partition's vocabulary.
class LdaPartitionState {
 public:
  /// Randomly assigns topics and accumulates local counts.
  void Initialize(const std::vector<Document>& docs, const LdaOptions& options,
                  Rng* rng);

  bool initialized() const { return !docs_.empty() || !z_.empty(); }

  /// Sorted unique word ids this partition touches.
  const std::vector<uint64_t>& local_vocab() const { return local_vocab_; }

  /// This partition's contribution to the global counts (for the initial
  /// push): one sparse vector per topic over `local_vocab`, plus N_t.
  std::vector<SparseVector> InitialTopicCounts(const LdaOptions& options) const;
  std::vector<double> InitialTopicTotals(const LdaOptions& options) const;

  uint64_t total_tokens() const { return total_tokens_; }

  /// \brief Outcome of one Gibbs sweep over the partition.
  struct SweepResult {
    double loglik_sum = 0;   ///< sum over tokens of log p(w | d)
    uint64_t tokens = 0;
    std::vector<SparseVector> topic_deltas;  ///< per topic, global word ids
    std::vector<double> topic_total_deltas;  ///< length K
  };

  /// Resamples the tokens of docs [doc_begin, doc_end) against the supplied
  /// (stale) global counts. `nwt_local[k][j]` is N_{w,k} for local word j;
  /// `nt[k]` is N_k. Both are updated in place as sampling proceeds; the
  /// deltas to push are returned (with global word ids).
  SweepResult Sweep(const LdaOptions& options,
                    std::vector<std::vector<double>>* nwt_local,
                    std::vector<double>* nt, Rng* rng, size_t doc_begin = 0,
                    size_t doc_end = static_cast<size_t>(-1));

  size_t num_docs() const { return docs_.size(); }

  /// Sorted unique PARTITION-LOCAL word indices used by a doc range (for
  /// minibatch pulls, e.g. the Glint baseline).
  std::vector<size_t> DocRangeLocalWords(size_t doc_begin,
                                         size_t doc_end) const;

 private:
  size_t LocalWordIndex(uint64_t word) const;

  std::vector<Document> docs_;
  std::vector<std::vector<uint32_t>> z_;        // per doc, per token topic
  std::vector<std::vector<uint32_t>> doc_topic_;  // per doc, K counts
  std::vector<uint64_t> local_vocab_;
  std::vector<uint32_t> token_word_local_;  // flattened local word index
  uint64_t total_tokens_ = 0;
};

}  // namespace ps2
