#pragma once

// LDA via collapsed Gibbs sampling (paper §5.2.4, evaluation §6.3.3).
//
// Model state is the word-topic count matrix N_wt (vocab x topics), the
// topic totals N_t, and per-document topic counts N_dt (worker-local). On
// PS2, N_wt is stored transposed as K co-located topic-row DCVs over the
// vocabulary dimension, so a worker pulls exactly the columns of its local
// vocabulary for all topics in one round — PS2's sparse communication —
// with integer counts varint-compressed — PS2's message compression
// (both called out in §6.3.3 as the source of its 3.7x / 9x edges).

#include <cstdint>

#include "common/status.h"
#include "consistency/consistency.h"
#include "hotspot/hotspot_manager.h"

namespace ps2 {

/// \brief LDA hyperparameters (paper Table 4: alpha = 0.5, beta = 0.01).
struct LdaOptions {
  uint32_t vocab_size = 0;  ///< required
  uint32_t num_topics = 100;
  double alpha = 0.5;
  double beta = 0.01;
  int iterations = 20;
  uint64_t seed = 9;
  /// Hot-parameter management (DESIGN.md §5d): replicate the topic rows of
  /// the most frequent words so their counts serve from client caches.
  HotspotOptions hotspot;
  /// Consistency regime (consistency/, DESIGN.md §11): SSP/ASP run several
  /// Gibbs sweeps per stage; a worker sweeps against counts at most `s`
  /// sweeps stale. BSP (the default) keeps the one-barrier-per-sweep flow.
  ConsistencyPolicy consistency;

  Status Validate() const {
    if (vocab_size == 0) {
      return Status::InvalidArgument("vocab_size must be set");
    }
    if (num_topics == 0) {
      return Status::InvalidArgument("num_topics must be positive");
    }
    if (iterations <= 0) {
      return Status::InvalidArgument("iterations must be positive");
    }
    if (alpha <= 0 || beta <= 0) {
      return Status::InvalidArgument("alpha and beta must be positive");
    }
    if (hotspot.enabled) PS2_RETURN_NOT_OK(hotspot.Validate());
    PS2_RETURN_NOT_OK(consistency.Validate());
    return Status::OK();
  }
};

}  // namespace ps2
