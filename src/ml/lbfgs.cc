#include "ml/lbfgs.h"

#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "ml/metrics.h"

namespace ps2 {

namespace {

/// Full-batch loss and gradient: gradient lands in `gradient` (zeroed
/// first); returns (loss_sum, count).
Result<std::pair<double, uint64_t>> ComputeFullGradient(
    const Dataset<Example>& data, const Dcv& weight, Dcv& gradient,
    GlmLossKind loss_kind) {
  PS2_RETURN_NOT_OK(gradient.Zero());
  std::vector<std::pair<double, uint64_t>> partials =
      data.MapPartitionsCollect<std::pair<double, uint64_t>>(
          [&](TaskContext& task, const std::vector<Example>& rows)
              -> std::pair<double, uint64_t> {
            if (rows.empty()) return {0.0, 0};
            std::vector<uint64_t> indices = CollectBatchIndices(rows);
            Result<std::vector<double>> pulled = weight.PullSparse(indices);
            PS2_CHECK(pulled.ok()) << pulled.status();
            std::unordered_map<uint64_t, double> w_local;
            w_local.reserve(indices.size() * 2);
            for (size_t k = 0; k < indices.size(); ++k) {
              w_local.emplace(indices[k], (*pulled)[k]);
            }
            BatchGradient bg = ComputeBatchGradient(
                rows,
                [&w_local](uint64_t j) {
                  auto it = w_local.find(j);
                  return it == w_local.end() ? 0.0 : it->second;
                },
                loss_kind);
            task.AddWorkerOps(bg.ops + indices.size());
            PS2_CHECK_OK(gradient.Add(bg.gradient));
            return {bg.loss_sum, bg.count};
          });
  double loss_sum = 0;
  uint64_t count = 0;
  for (const auto& [l, c] : partials) {
    loss_sum += l;
    count += c;
  }
  return std::make_pair(loss_sum, count);
}

/// Full-batch loss only (for backtracking line search).
Result<double> ComputeFullLoss(const Dataset<Example>& data, const Dcv& weight,
                               GlmLossKind loss_kind) {
  std::vector<std::pair<double, uint64_t>> partials =
      data.MapPartitionsCollect<std::pair<double, uint64_t>>(
          [&](TaskContext& task, const std::vector<Example>& rows)
              -> std::pair<double, uint64_t> {
            if (rows.empty()) return {0.0, 0};
            std::vector<uint64_t> indices = CollectBatchIndices(rows);
            Result<std::vector<double>> pulled = weight.PullSparse(indices);
            PS2_CHECK(pulled.ok()) << pulled.status();
            std::unordered_map<uint64_t, double> w_local;
            for (size_t k = 0; k < indices.size(); ++k) {
              w_local.emplace(indices[k], (*pulled)[k]);
            }
            double loss = 0;
            for (const Example& ex : rows) {
              double margin = 0;
              const auto& idx = ex.features.indices();
              const auto& val = ex.features.values();
              for (size_t k = 0; k < idx.size(); ++k) {
                auto it = w_local.find(idx[k]);
                if (it != w_local.end()) margin += val[k] * it->second;
              }
              loss += loss_kind == GlmLossKind::kLogistic
                          ? LogisticLoss(margin, ex.label)
                          : HingeLoss(margin, ex.label);
            }
            task.AddWorkerOps(rows.size() * 8);
            return {loss, rows.size()};
          });
  double loss_sum = 0;
  uint64_t count = 0;
  for (const auto& [l, c] : partials) {
    loss_sum += l;
    count += c;
  }
  return count > 0 ? loss_sum / static_cast<double>(count) : 0.0;
}

}  // namespace

Result<TrainReport> TrainLbfgsPs2(DcvContext* ctx,
                                  const Dataset<Example>& data,
                                  const LbfgsOptions& options,
                                  Dcv* weight_out) {
  PS2_RETURN_NOT_OK(options.Validate());
  Cluster* cluster = ctx->cluster();
  const int m = options.history;

  // 3 + 2m co-located vectors: w, g, q/direction, s_0..s_{m-1}, y_0..y_{m-1}.
  PS2_ASSIGN_OR_RETURN(
      Dcv weight, ctx->Dense(options.dim, static_cast<uint32_t>(3 + 2 * m), 1,
                             0, "lbfgs.weight"));
  PS2_ASSIGN_OR_RETURN(Dcv gradient, ctx->Derive(weight));
  PS2_ASSIGN_OR_RETURN(Dcv q, ctx->Derive(weight));
  PS2_ASSIGN_OR_RETURN(std::vector<Dcv> s_hist, ctx->DeriveN(weight, m));
  PS2_ASSIGN_OR_RETURN(std::vector<Dcv> y_hist, ctx->DeriveN(weight, m));
  std::vector<double> rho(m, 0.0);

  TrainReport report;
  report.system = "PS2-LBFGS";
  const SimTime t0 = cluster->clock().Now();

  PS2_ASSIGN_OR_RETURN(auto first_eval, ComputeFullGradient(
                                            data, weight, gradient,
                                            options.loss));
  double current_loss =
      first_eval.second > 0
          ? first_eval.first / static_cast<double>(first_eval.second)
          : 0.0;
  const double inv_count =
      first_eval.second > 0 ? 1.0 / static_cast<double>(first_eval.second)
                            : 0.0;
  PS2_RETURN_NOT_OK(gradient.Scale(inv_count));
  if (options.l2 > 0) PS2_RETURN_NOT_OK(gradient.Axpy(weight, options.l2));

  int stored = 0;  // valid history entries
  for (int iter = 0; iter < options.iterations; ++iter) {
    // ---- Two-loop recursion, entirely server-side column ops ----
    PS2_RETURN_NOT_OK(q.CopyFrom(gradient));
    std::vector<double> alpha(m, 0.0);
    for (int k = stored - 1; k >= std::max(0, stored - m); --k) {
      int slot = k % m;
      PS2_ASSIGN_OR_RETURN(double sq, s_hist[slot].Dot(q));
      alpha[slot] = rho[slot] * sq;
      PS2_RETURN_NOT_OK(q.Axpy(y_hist[slot], -alpha[slot]));
    }
    if (stored > 0) {
      int last = (stored - 1) % m;
      PS2_ASSIGN_OR_RETURN(double yy, y_hist[last].Dot(y_hist[last]));
      if (yy > 0 && rho[last] > 0) {
        PS2_RETURN_NOT_OK(q.Scale(1.0 / (rho[last] * yy)));
      }
    }
    for (int k = std::max(0, stored - m); k < stored; ++k) {
      int slot = k % m;
      PS2_ASSIGN_OR_RETURN(double yq, y_hist[slot].Dot(q));
      double beta = rho[slot] * yq;
      PS2_RETURN_NOT_OK(q.Axpy(s_hist[slot], alpha[slot] - beta));
    }
    // q now approximates H^{-1} g; the step direction is -q.

    // ---- Backtracking line search on the full-batch loss ----
    double step = options.initial_step;
    double new_loss = current_loss;
    bool accepted = false;
    for (int bt = 0; bt <= options.max_backtracks; ++bt) {
      PS2_RETURN_NOT_OK(weight.Axpy(q, -step));
      PS2_ASSIGN_OR_RETURN(new_loss,
                           ComputeFullLoss(data, weight, options.loss));
      if (new_loss < current_loss) {
        accepted = true;
        break;
      }
      PS2_RETURN_NOT_OK(weight.Axpy(q, step));  // undo
      step *= options.backtrack_factor;
    }
    if (!accepted) {
      // Gradient-direction fallback with a tiny step.
      PS2_RETURN_NOT_OK(weight.Axpy(gradient, -1e-3));
    }

    // ---- Curvature update: s = -step*q (or fallback), y = g_new - g ----
    int slot = stored % m;
    PS2_RETURN_NOT_OK(s_hist[slot].CopyFrom(q));
    PS2_RETURN_NOT_OK(
        s_hist[slot].Scale(accepted ? -step : 0.0));
    PS2_RETURN_NOT_OK(y_hist[slot].CopyFrom(gradient));  // old gradient

    PS2_ASSIGN_OR_RETURN(auto eval, ComputeFullGradient(data, weight,
                                                        gradient,
                                                        options.loss));
    current_loss = eval.second > 0
                       ? eval.first / static_cast<double>(eval.second)
                       : current_loss;
    PS2_RETURN_NOT_OK(gradient.Scale(
        eval.second > 0 ? 1.0 / static_cast<double>(eval.second) : 1.0));
    if (options.l2 > 0) {
      PS2_RETURN_NOT_OK(gradient.Axpy(weight, options.l2));
    }
    // y = g_new - g_old, computed in place server-side.
    PS2_RETURN_NOT_OK(y_hist[slot].Scale(-1.0));
    PS2_RETURN_NOT_OK(y_hist[slot].Axpy(gradient, 1.0));

    PS2_ASSIGN_OR_RETURN(double sy, s_hist[slot].Dot(y_hist[slot]));
    if (accepted && sy > 1e-12) {
      rho[slot] = 1.0 / sy;
      ++stored;
    }

    TrainPoint point;
    point.iteration = iter;
    point.time = cluster->clock().Now() - t0;
    point.loss = current_loss;
    report.curve.push_back(point);
    report.final_loss = point.loss;
  }
  report.total_time = cluster->clock().Now() - t0;
  if (weight_out != nullptr) *weight_out = weight;
  return report;
}

}  // namespace ps2
