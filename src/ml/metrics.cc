#include "ml/metrics.h"

#include <cmath>

namespace ps2 {

double Sigmoid(double z) {
  if (z >= 0) {
    return 1.0 / (1.0 + std::exp(-z));
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}

double LogisticLoss(double margin, double label) {
  // For y=1: log(1+exp(-z)); for y=0: log(1+exp(z)). Computed stably.
  double z = label > 0.5 ? margin : -margin;
  if (z > 0) {
    return std::log1p(std::exp(-z));
  }
  return -z + std::log1p(std::exp(z));
}

double LogisticGradientScale(double margin, double label) {
  return Sigmoid(margin) - label;
}

double HingeLoss(double margin, double label) {
  double y = label > 0.5 ? 1.0 : -1.0;
  double v = 1.0 - y * margin;
  return v > 0 ? v : 0.0;
}

double MeanLogisticLoss(const std::vector<Example>& examples,
                        const std::vector<double>& w) {
  if (examples.empty()) return 0.0;
  double total = 0.0;
  for (const Example& ex : examples) {
    total += LogisticLoss(ex.features.Dot(w), ex.label);
  }
  return total / static_cast<double>(examples.size());
}

double Accuracy(const std::vector<Example>& examples,
                const std::vector<double>& w) {
  if (examples.empty()) return 0.0;
  size_t correct = 0;
  for (const Example& ex : examples) {
    double margin = ex.features.Dot(w);
    bool predicted = margin > 0;
    bool actual = ex.label > 0.5;
    correct += (predicted == actual);
  }
  return static_cast<double>(correct) / static_cast<double>(examples.size());
}

}  // namespace ps2
