#include "ml/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace ps2 {

const char* OptimizerKindName(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return "SGD";
    case OptimizerKind::kAdam:
      return "Adam";
    case OptimizerKind::kAdagrad:
      return "Adagrad";
    case OptimizerKind::kRmsProp:
      return "RMSProp";
  }
  return "?";
}

int OptimizerStateVectors(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd:
      return 0;
    case OptimizerKind::kAdagrad:
    case OptimizerKind::kRmsProp:
      return 1;
    case OptimizerKind::kAdam:
      return 2;
  }
  return 0;
}

uint64_t ApplyOptimizerStep(const OptimizerOptions& options, int64_t t,
                            double* w, const double* g, double* s, double* v,
                            size_t n) {
  const double lr = options.learning_rate;
  const double l2 = options.l2;
  switch (options.kind) {
    case OptimizerKind::kSgd: {
      for (size_t i = 0; i < n; ++i) {
        double gi = g[i] + l2 * w[i];
        w[i] -= lr * gi;
      }
      return 3 * n;
    }
    case OptimizerKind::kAdagrad: {
      PS2_CHECK(s != nullptr);
      for (size_t i = 0; i < n; ++i) {
        double gi = g[i] + l2 * w[i];
        s[i] += gi * gi;
        w[i] -= lr * gi / (std::sqrt(s[i]) + options.epsilon);
      }
      return 7 * n;
    }
    case OptimizerKind::kRmsProp: {
      PS2_CHECK(s != nullptr);
      for (size_t i = 0; i < n; ++i) {
        double gi = g[i] + l2 * w[i];
        s[i] = options.rho * s[i] + (1.0 - options.rho) * gi * gi;
        w[i] -= lr * gi / (std::sqrt(s[i]) + options.epsilon);
      }
      return 8 * n;
    }
    case OptimizerKind::kAdam: {
      PS2_CHECK(s != nullptr);
      PS2_CHECK(v != nullptr);
      // Paper Eq. (1) writes s_t = b1*s + (1-b1)*g^2, v_t = b2*v + (1-b2)*g
      // with b1=0.9, b2=0.999 — i.e. a *fast*-decaying second moment and a
      // *slow*-decaying momentum, the reverse of Kingma & Ba. That variant
      // genuinely diverges on sparse data (once a coordinate stops being
      // touched its second moment vanishes long before its momentum does,
      // so steps blow up to lr*v/eps). We follow standard Adam: second
      // moment decays with beta2 (slow), momentum with beta1 (fast).
      const double b1 = options.beta1;
      const double b2 = options.beta2;
      const double s_corr = 1.0 - std::pow(b2, static_cast<double>(t));
      const double v_corr = 1.0 - std::pow(b1, static_cast<double>(t));
      for (size_t i = 0; i < n; ++i) {
        double gi = g[i] + l2 * w[i];
        s[i] = b2 * s[i] + (1.0 - b2) * gi * gi;
        v[i] = b1 * v[i] + (1.0 - b1) * gi;
        double s_hat = s[i] / s_corr;
        double v_hat = v[i] / v_corr;
        w[i] -= lr * v_hat / (std::sqrt(s_hat) + options.epsilon);
      }
      return 12 * n;
    }
  }
  return 0;
}

ZipFn MakeOptimizerZip(const OptimizerOptions& options,
                       std::shared_ptr<std::atomic<int64_t>> step) {
  PS2_CHECK(step != nullptr);
  OptimizerOptions opts = options;
  return [opts, step](const std::vector<double*>& rows, size_t n,
                      uint64_t /*col_offset*/) -> uint64_t {
    const int64_t t = step->load();
    switch (opts.kind) {
      case OptimizerKind::kSgd:
        PS2_CHECK_EQ(rows.size(), 2u);  // [w, g]
        return ApplyOptimizerStep(opts, t, rows[0], rows[1], nullptr, nullptr,
                                  n);
      case OptimizerKind::kAdagrad:
      case OptimizerKind::kRmsProp:
        PS2_CHECK_EQ(rows.size(), 3u);  // [w, s, g]
        return ApplyOptimizerStep(opts, t, rows[0], rows[2], rows[1], nullptr,
                                  n);
      case OptimizerKind::kAdam:
        PS2_CHECK_EQ(rows.size(), 4u);  // [w, s, v, g]
        return ApplyOptimizerStep(opts, t, rows[0], rows[3], rows[1], rows[2],
                                  n);
    }
    return 0;
  };
}

}  // namespace ps2
