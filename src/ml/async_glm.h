#pragma once

// Relaxed-consistency (SSP/ASP) GLM training on PS2.
//
// The paper's Fig. 3 flow is bulk-synchronous: one barrier per mini-batch.
// Real parameter servers (Petuum's SSP, Angel's async mode) let workers run
// several steps between synchronizations, trading gradient freshness for
// barrier elimination. This trainer routes that tradeoff through the
// ConsistencyController (consistency/, DESIGN.md §11): each stage runs a
// window of StepsPerStage local mini-batch SGD steps per task, every pull
// is gated on the bounded-staleness check, and every completed step
// advances the worker's clock on the servers via kClockAdvance. Workers
// push `-lr * gradient` deltas straight into the weight DCV (servers apply
// additively, so updates interleave across workers like an async PS).
//
// `bench/staleness_sweep` sweeps the slack knob: more local steps per stage
// amortize the per-stage latency floor, while convergence per epoch
// degrades gracefully.

#include "common/result.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"
#include "ml/train_report.h"

namespace ps2 {

/// Trains a GLM under `options.consistency` through the consistency
/// controller (SGD only: the update must be an additive delta for
/// concurrent pushes to compose). Handles any policy — a BSP policy runs a
/// one-step window per stage — but TrainGlmPs2 only routes SSP/ASP here;
/// the synchronous Fig. 3 flow stays on its own (bit-stable) path.
Result<TrainReport> TrainGlmPs2Relaxed(DcvContext* ctx,
                                       const Dataset<Example>& data,
                                       const GlmOptions& options);

/// DEPRECATED shim of the pre-controller API: `steps_per_stage` local steps
/// per stage, which is SSP with slack = steps_per_stage - 1. Prefer setting
/// GlmOptions::consistency and calling TrainGlmPs2.
Result<TrainReport> TrainGlmPs2Async(DcvContext* ctx,
                                     const Dataset<Example>& data,
                                     const GlmOptions& options,
                                     int steps_per_stage);

}  // namespace ps2
