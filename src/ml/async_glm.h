#pragma once

// Asynchronous (SSP-flavoured) GLM training on PS2.
//
// The paper's Fig. 3 flow is bulk-synchronous: one barrier per mini-batch.
// Real parameter servers (Petuum's SSP, Angel's async mode) let workers run
// several steps between synchronizations, trading gradient freshness for
// barrier elimination. This extension bounds staleness at the stage level:
// each task performs `steps_per_stage` local mini-batch SGD steps, pushing
// `-lr * gradient` deltas straight into the weight DCV (servers apply
// additively, so updates interleave across workers like an async PS). With
// `steps_per_stage = 1` it degenerates to the paper's synchronous flow.
//
// `bench/ablation_async` sweeps the staleness knob: more local steps per
// stage amortize the per-stage latency floor, while convergence per epoch
// degrades gracefully.

#include "common/result.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "dcv/dcv_context.h"
#include "ml/logreg.h"
#include "ml/train_report.h"

namespace ps2 {

/// Trains a GLM with stage-bounded asynchrony (SGD only: the update must be
/// an additive delta for concurrent pushes to compose).
/// `steps_per_stage` >= 1 controls the staleness bound.
Result<TrainReport> TrainGlmPs2Async(DcvContext* ctx,
                                     const Dataset<Example>& data,
                                     const GlmOptions& options,
                                     int steps_per_stage);

}  // namespace ps2
