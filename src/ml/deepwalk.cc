#include "ml/deepwalk.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "data/graph_gen.h"
#include "dataflow/broadcast.h"
#include "ml/metrics.h"

namespace ps2 {

namespace {

/// One batch worth of skip-gram tasks: the pair list (positives followed by
/// their negatives) plus labels.
struct SkipGramBatch {
  std::vector<std::pair<RowRef, RowRef>> dot_pairs;
  std::vector<double> labels;
};

}  // namespace

Result<TrainReport> TrainDeepWalkPs2(
    DcvContext* ctx, const Dataset<VertexPair>& pairs,
    const std::vector<double>& vertex_frequencies,
    const DeepWalkOptions& options, DeepWalkModel* model_out) {
  PS2_RETURN_NOT_OK(options.Validate());
  if (vertex_frequencies.size() < options.num_vertices) {
    return Status::InvalidArgument(
        "vertex_frequencies must cover every vertex");
  }
  Cluster* cluster = ctx->cluster();
  const uint32_t v_count = options.num_vertices;
  const uint32_t k_dim = options.embedding_dim;

  // Paper Fig. 6 line 2: DCV.dense(K, V*2) — one matrix, 2V co-located rows,
  // initialized server-side. `num_servers` caps the spread (Fig. 9(d) uses
  // 30 servers to show the DCV benefit shrinking).
  PS2_ASSIGN_OR_RETURN(
      std::vector<Dcv> rows,
      ctx->DenseMatrix(k_dim, 2 * v_count, 0.5 / k_dim, options.seed,
                       "deepwalk.embeddings", options.num_servers));
  const int matrix_id = rows[0].ref().matrix_id;
  DeepWalkModel model;
  model.num_vertices = v_count;
  model.rows = std::move(rows);

  // Negative sampling table, broadcast to workers once (8 bytes/vertex).
  auto neg_table = std::make_shared<const AliasTable>(std::vector<double>(
      vertex_frequencies.begin(),
      vertex_frequencies.begin() + options.num_vertices));
  Broadcast<std::shared_ptr<const AliasTable>> bcast =
      BroadcastValue(cluster, neg_table,
                     static_cast<uint64_t>(v_count) * sizeof(double));

  PsClient* client = ctx->client();
  TrainReport report;
  report.system = "PS2-DeepWalk";
  const SimTime t0 = cluster->clock().Now();
  const int negatives = options.negative_samples;
  const double lr = options.learning_rate;
  const uint32_t batch_size = options.batch_size;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    std::vector<std::pair<double, uint64_t>> partials =
        pairs.MapPartitionsCollect<std::pair<double, uint64_t>>(
            [&](TaskContext& task, const std::vector<VertexPair>& rows)
                -> std::pair<double, uint64_t> {
              const AliasTable& table = *bcast.value();
              double loss_sum = 0;
              uint64_t trained = 0;
              Rng rng = task.rng.Split(0xD33F + epoch);
              SkipGramBatch batch;
              for (size_t start = 0; start < rows.size();
                   start += batch_size) {
                size_t end = std::min(rows.size(), start + batch_size);
                batch.dot_pairs.clear();
                batch.labels.clear();
                for (size_t i = start; i < end; ++i) {
                  const VertexPair& p = rows[i];
                  RowRef input{matrix_id, p.u};
                  batch.dot_pairs.push_back(
                      {input, RowRef{matrix_id, v_count + p.v}});
                  batch.labels.push_back(1.0);
                  for (int nk = 0; nk < negatives; ++nk) {
                    uint32_t n = table.Sample(&rng);
                    if (n == p.v) n = (n + 1) % v_count;
                    batch.dot_pairs.push_back(
                        {input, RowRef{matrix_id, v_count + n}});
                    batch.labels.push_back(0.0);
                  }
                }
                // Server-side partial dots, one round for the whole batch.
                Result<std::vector<double>> dots =
                    client->DotBatch(batch.dot_pairs);
                PS2_CHECK(dots.ok()) << dots.status();
                // Server-side symmetric axpy updates, one more round.
                std::vector<PsClient::AxpyTask> updates;
                updates.reserve(2 * batch.dot_pairs.size());
                for (size_t i = 0; i < batch.dot_pairs.size(); ++i) {
                  double sig = Sigmoid((*dots)[i]);
                  double label = batch.labels[i];
                  loss_sum += LogisticLoss((*dots)[i], label);
                  double alpha = -lr * (sig - label);
                  const auto& [a, b] = batch.dot_pairs[i];
                  updates.push_back({a, b, alpha});
                  updates.push_back({b, a, alpha});
                }
                PS2_CHECK_OK(client->AxpyBatch(updates));
                task.AddWorkerOps(8 * batch.dot_pairs.size());
                trained += end - start;
              }
              // Normalize per dot (positives + negatives).
              return {loss_sum, trained * (1 + negatives)};
            });

    double loss_sum = 0;
    uint64_t count = 0;
    for (const auto& [l, c] : partials) {
      loss_sum += l;
      count += c;
    }
    if (count == 0) continue;
    TrainPoint point;
    point.iteration = epoch;
    point.time = cluster->clock().Now() - t0;
    point.loss = loss_sum / static_cast<double>(count);
    report.curve.push_back(point);
    report.final_loss = point.loss;
  }
  report.total_time = cluster->clock().Now() - t0;
  if (model_out != nullptr) *model_out = std::move(model);
  return report;
}

}  // namespace ps2
