#include "ml/deepwalk.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "consistency/consistency.h"
#include "data/graph_gen.h"
#include "dataflow/broadcast.h"
#include "dcv/dcv_batch.h"
#include "ml/metrics.h"

namespace ps2 {

namespace {

/// One batch worth of skip-gram tasks: (input row, output row) embedding
/// indices (positives followed by their negatives) plus labels.
struct SkipGramBatch {
  std::vector<std::pair<uint32_t, uint32_t>> pair_rows;
  std::vector<double> labels;
};

}  // namespace

Result<TrainReport> TrainDeepWalkPs2(
    DcvContext* ctx, const Dataset<VertexPair>& pairs,
    const std::vector<double>& vertex_frequencies,
    const DeepWalkOptions& options, DeepWalkModel* model_out) {
  PS2_RETURN_NOT_OK(options.Validate());
  if (vertex_frequencies.size() < options.num_vertices) {
    return Status::InvalidArgument(
        "vertex_frequencies must cover every vertex");
  }
  Cluster* cluster = ctx->cluster();
  const uint32_t v_count = options.num_vertices;
  const uint32_t k_dim = options.embedding_dim;

  // Paper Fig. 6 line 2: DCV.dense(K, V*2) — one matrix, 2V co-located rows,
  // initialized server-side. `num_servers` caps the spread (Fig. 9(d) uses
  // 30 servers to show the DCV benefit shrinking).
  PS2_ASSIGN_OR_RETURN(
      std::vector<Dcv> rows,
      ctx->DenseMatrix(k_dim, 2 * v_count, 0.5 / k_dim, options.seed,
                       "deepwalk.embeddings", options.num_servers));
  DeepWalkModel model;
  model.num_vertices = v_count;
  model.rows = std::move(rows);

  // Negative sampling table, broadcast to workers once (8 bytes/vertex).
  auto neg_table = std::make_shared<const AliasTable>(std::vector<double>(
      vertex_frequencies.begin(),
      vertex_frequencies.begin() + options.num_vertices));
  Broadcast<std::shared_ptr<const AliasTable>> bcast =
      BroadcastValue(cluster, neg_table,
                     static_cast<uint64_t>(v_count) * sizeof(double));

  TrainReport report;
  report.system = "PS2-DeepWalk";
  if (options.hotspot.enabled) {
    PS2_RETURN_NOT_OK(ctx->master()->hotspot()->Enable(options.hotspot));
  }
  const SimTime t0 = cluster->clock().Now();
  const int negatives = options.negative_samples;
  const double lr = options.learning_rate;
  const uint32_t batch_size = options.batch_size;

  // One epoch of a partition's skip-gram pairs. `clock` (when non-null) is
  // the consistency controller of an SSP/ASP run: the epoch's first dot
  // batch passes the staleness gate and the epoch-end clock advance rides
  // the final axpy round.
  auto run_epoch = [&](TaskContext& task, const std::vector<VertexPair>& rows,
                       int epoch, ConsistencyController* clock)
      -> std::pair<double, uint64_t> {
    const AliasTable& table = *bcast.value();
    double loss_sum = 0;
    uint64_t trained = 0;
    Rng rng = task.rng.Split(0xD33F + epoch);

    // Double-buffered prefetch pipeline (paper §5.1): while batch
    // i's axpy round is in flight, batch i+1's dot batch is issued
    // behind it and rides the same latency window — one overlapped
    // round per batch instead of two serial ones. The prefetched
    // dots may read embeddings at most one in-flight axpy stale,
    // the usual hogwild tolerance of skip-gram training.
    SkipGramBatch bufs[2];
    auto build = [&](size_t begin, size_t end, SkipGramBatch& b) {
      b.pair_rows.clear();
      b.labels.clear();
      for (size_t i = begin; i < end; ++i) {
        const VertexPair& p = rows[i];
        b.pair_rows.push_back({p.u, v_count + p.v});
        b.labels.push_back(1.0);
        for (int nk = 0; nk < negatives; ++nk) {
          uint32_t n = table.Sample(&rng);
          if (n == p.v) n = (n + 1) % v_count;
          b.pair_rows.push_back({p.u, v_count + n});
          b.labels.push_back(0.0);
        }
      }
    };
    auto stage_dots = [&](const SkipGramBatch& b) {
      DcvBatch dots = ctx->Batch();
      for (const auto& [a, c] : b.pair_rows) {
        dots.Dot(model.rows[a], model.rows[c]);
      }
      return dots.Submit();
    };

    size_t cur = 0;
    DcvBatch::Future dots_future;
    DcvBatch::Future axpy_future;
    if (!rows.empty()) {
      if (clock != nullptr) clock->GatePull(task.task_id);
      build(0, std::min(rows.size(), size_t{batch_size}), bufs[0]);
      dots_future = stage_dots(bufs[0]);
    }
    for (size_t start = 0; start < rows.size(); start += batch_size) {
      size_t end = std::min(rows.size(), start + batch_size);
      SkipGramBatch& batch = bufs[cur];
      if (end < rows.size()) {
        build(end, std::min(rows.size(), end + batch_size), bufs[1 - cur]);
      }
      Result<DcvBatchResults> dots = dots_future.Get();
      PS2_CHECK(dots.ok()) << dots.status();
      // Server-side symmetric axpy updates for this batch.
      DcvBatch updates = ctx->Batch();
      for (size_t i = 0; i < batch.pair_rows.size(); ++i) {
        double sig = Sigmoid(dots->dots[i]);
        double label = batch.labels[i];
        loss_sum += LogisticLoss(dots->dots[i], label);
        double alpha = -lr * (sig - label);
        const auto& [a, c] = batch.pair_rows[i];
        updates.Axpy(model.rows[a], model.rows[c], alpha);
        updates.Axpy(model.rows[c], model.rows[a], alpha);
      }
      // Harvest the previous axpy round before issuing the next:
      // at most one update round stays in flight.
      PS2_CHECK_OK(axpy_future.Wait());
      axpy_future = updates.Submit();
      if (end < rows.size()) {
        dots_future = stage_dots(bufs[1 - cur]);  // rides the axpy
        cur = 1 - cur;
      }
      task.AddWorkerOps(8 * batch.pair_rows.size());
      trained += end - start;
    }
    PsFuture<Ack> clock_future;
    if (clock != nullptr) {
      // The advance rides the final axpy round. An empty
      // partition still ticks its clock, or it would hold every
      // other worker's staleness gate back forever.
      clock_future = clock->AdvanceClockAsync(task.task_id);
    }
    PS2_CHECK_OK(axpy_future.Wait());
    if (clock_future.valid()) PS2_CHECK_OK(clock_future.Wait());
    // Normalize per dot (positives + negatives).
    return {loss_sum, trained * (1 + negatives)};
  };

  // Closes one stage: aggregate partials, refresh hot rows, record a point.
  auto finish_stage = [&](const std::vector<std::pair<double, uint64_t>>&
                              partials,
                          int point_iteration) -> Status {
    double loss_sum = 0;
    uint64_t count = 0;
    for (const auto& [l, c] : partials) {
      loss_sum += l;
      count += c;
    }
    // Coordinator-side, between epochs: hot embeddings (high-degree
    // vertices) refresh against the post-epoch state.
    if (options.hotspot.enabled) {
      PS2_RETURN_NOT_OK(ctx->master()->hotspot()->Tick());
    }
    if (count == 0) return Status::OK();
    TrainPoint point;
    point.iteration = point_iteration;
    point.time = cluster->clock().Now() - t0;
    point.loss = loss_sum / static_cast<double>(count);
    report.curve.push_back(point);
    report.final_loss = point.loss;
    return Status::OK();
  };

  if (options.consistency.bsp()) {
    // The paper's flow: one barrier per epoch (bit-identical to the
    // pre-controller trainer).
    for (int epoch = 0; epoch < options.epochs; ++epoch) {
      std::vector<std::pair<double, uint64_t>> partials =
          pairs.MapPartitionsCollect<std::pair<double, uint64_t>>(
              [&](TaskContext& task, const std::vector<VertexPair>& rows)
                  -> std::pair<double, uint64_t> {
                return run_epoch(task, rows, epoch, nullptr);
              });
      PS2_RETURN_NOT_OK(finish_stage(partials, epoch));
    }
  } else {
    // SSP/ASP (consistency/, DESIGN.md §11): a window of min(slack + 1,
    // remaining) epochs per stage; a worker's dots read embeddings at most
    // `slack` epochs stale, and the window bound keeps the gate from
    // tripping mid-stage so the trace stays deterministic.
    const ConsistencyPolicy& policy = options.consistency;
    ConsistencyController controller(
        ctx->client(), static_cast<int>(pairs.num_partitions()), policy);
    PS2_RETURN_NOT_OK(controller.Register());
    int done = 0;
    for (int round = 0; done < options.epochs; ++round) {
      const int window = policy.StepsPerStage(options.epochs - done);
      const int stage_base = done;
      std::vector<std::pair<double, uint64_t>> partials =
          pairs.MapPartitionsCollect<std::pair<double, uint64_t>>(
              [&](TaskContext& task, const std::vector<VertexPair>& rows)
                  -> std::pair<double, uint64_t> {
                double loss_sum = 0;
                uint64_t count = 0;
                for (int step = 0; step < window; ++step) {
                  auto [l, c] =
                      run_epoch(task, rows, stage_base + step, &controller);
                  loss_sum += l;
                  count += c;
                }
                return {loss_sum, count};
              });
      done += window;
      PS2_RETURN_NOT_OK(finish_stage(partials, round));
    }
  }
  report.total_time = cluster->clock().Now() - t0;
  if (model_out != nullptr) *model_out = std::move(model);
  return report;
}

}  // namespace ps2
