#pragma once

// Word2vec skip-gram with negative sampling on per-key parameters
// (DESIGN.md §13) — the workload that exercises NuPS-style tiering.
//
// Unlike DeepWalk (one big column-partitioned matrix, server-side dots),
// every word here is its OWN two-row matrix homed on a single server
// (MatrixOptions::home_server): row 0 is the input embedding, row 1 the
// context embedding. Workers pull whole rows grouped by owning server
// (PsClient::PullOwnedRowsAsync), compute the SGD step locally, and push
// full-width deltas back. That access pattern is what per-key management
// acts on:
//
//   --param-mgmt=off      every key stays sharded where it was created.
//   --param-mgmt=hotspot  sketch-driven hot replication (PR-2 machinery).
//   --param-mgmt=nups     full tiering: replicate hot, relocate warm keys
//                         to their dominant accessor's co-located server,
//                         leave the cold tail sharded.
//
// The trainer reports per-batch access counts to the ParamMgmtManager and
// ticks it once per epoch, at the stage barrier — relocations never overlap
// in-flight batches.

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.h"
#include "data/types.h"
#include "dataflow/dataset.h"
#include "dcv/dcv_context.h"
#include "hotspot/param_mgmt.h"
#include "ml/train_report.h"

namespace ps2 {

/// \brief Word2vec hyperparameters.
struct Word2VecOptions {
  uint32_t vocab = 0;           ///< V (required)
  uint32_t embedding_dim = 32;  ///< K
  double learning_rate = 0.025;
  uint32_t batch_size = 256;
  int negative_samples = 5;
  int epochs = 5;
  uint64_t seed = 7;
  /// Per-key management policy (off / hotspot / nups).
  ParamMgmtOptions param_mgmt;

  Status Validate() const;
};

/// \brief Live handles into the trained model.
struct Word2VecModel {
  uint32_t vocab = 0;
  /// matrix_ids[k]: the two-row matrix of key k.
  std::vector<int> matrix_ids;
  /// The tiering driver (inspectable: HomeOf, relocated_keys, ...).
  std::shared_ptr<ParamMgmtManager> mgmt;
};

/// Trains word2vec over `pairs`. Negative sampling is LOCAL, the NuPS
/// sampling-management scheme: each partition draws negatives from the
/// unigram^0.75 counts of its own pairs, smoothed by the global
/// `key_frequencies` (size >= vocab) so unseen keys keep nonzero mass.
/// Local sampling is what keeps a warm key's traffic concentrated on its
/// dominant accessor — the property the relocation tier exploits. If
/// `model_out` is non-null it receives the live handles, including the
/// ParamMgmtManager.
Result<TrainReport> TrainWord2VecPs2(DcvContext* ctx,
                                     const Dataset<VertexPair>& pairs,
                                     const std::vector<double>& key_frequencies,
                                     const Word2VecOptions& options,
                                     Word2VecModel* model_out = nullptr);

}  // namespace ps2
