#pragma once

// Binary serialization for RPC payloads.
//
// All worker<->server and driver<->executor payloads in PS2 pass through
// these writers/readers so that the network model charges for *real* bytes —
// e.g. the advantage of sparse pulls (indices + values) over dense pulls is
// measured from actual encoded sizes, not assumed.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "common/status.h"

namespace ps2 {

/// \brief Semantic tag of a marked payload span (see PayloadSection).
enum class SectionKind : uint8_t {
  kKeys = 0,       ///< a delta-varint sparse key list (key-cache candidate)
  kF64Values = 1,  ///< a raw little-endian f64 span (quantization candidate)
};

/// \brief A marked span of a serialized payload.
///
/// Sections are metadata only — the payload bytes are identical whether or
/// not anything was marked. The wire-level filter chain (net/filters.h) uses
/// them to locate key lists and value spans without re-parsing the opcode's
/// format.
struct PayloadSection {
  SectionKind kind = SectionKind::kKeys;
  uint64_t offset = 0;
  uint64_t len = 0;
};

/// \brief Append-only little-endian byte buffer writer.
class BufferWriter {
 public:
  BufferWriter() = default;
  explicit BufferWriter(size_t reserve) { buf_.reserve(reserve); }

  void WriteU8(uint8_t v) { buf_.push_back(v); }
  void WriteU32(uint32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI32(int32_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteI64(int64_t v) { AppendRaw(&v, sizeof(v)); }
  void WriteF32(float v) { AppendRaw(&v, sizeof(v)); }
  void WriteF64(double v) { AppendRaw(&v, sizeof(v)); }

  /// Bulk doubles without a length prefix (caller knows the count).
  void WriteF64Span(const double* data, size_t n) {
    AppendRaw(data, n * sizeof(double));
  }

  /// Zigzag-encoded signed varint (small magnitudes take 1-2 bytes).
  void WriteSignedVarint(int64_t v) {
    WriteVarint((static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63));
  }

  /// Unsigned LEB128; small values (typical for counts/ids) take 1-2 bytes.
  void WriteVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  void WriteString(const std::string& s) {
    WriteVarint(s.size());
    AppendRaw(s.data(), s.size());
  }

  /// Raw bytes, no length prefix.
  void WriteBytes(Slice bytes) {
    if (!bytes.empty()) AppendRaw(bytes.data(), bytes.size());
  }

  /// Length-prefixed POD array.
  template <typename T>
  void WritePodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteVarint(v.size());
    AppendRaw(v.data(), v.size() * sizeof(T));
  }

  /// Length-prefixed array of varint-encoded integers (compact for sorted or
  /// small index sets once delta-encoded by the caller).
  void WriteVarintVector(const std::vector<uint64_t>& v) {
    WriteVarint(v.size());
    for (uint64_t x : v) WriteVarint(x);
  }

  // ---- Section marks (filter metadata; no effect on the bytes) ----

  /// Opens a marked span of kind `kind` at the current position. Sections
  /// must not nest; EndSection() closes the open one.
  void BeginSection(SectionKind kind) {
    open_kind_ = kind;
    open_begin_ = buf_.size();
  }
  void EndSection() {
    sections_.push_back({open_kind_, open_begin_, buf_.size() - open_begin_});
  }
  /// Moves the recorded section list out (call before ReleaseShared()).
  std::vector<PayloadSection> TakeSections() { return std::move(sections_); }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }
  /// Moves the buffer into a SharedBuf without copying the bytes.
  SharedBuf ReleaseShared() { return SharedBuf::FromVector(std::move(buf_)); }

 private:
  void AppendRaw(const void* data, size_t n) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }

  std::vector<uint8_t> buf_;
  std::vector<PayloadSection> sections_;
  SectionKind open_kind_ = SectionKind::kKeys;
  size_t open_begin_ = 0;
};

/// \brief Bounds-checked reader over a byte buffer.
class BufferReader {
 public:
  BufferReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit BufferReader(const std::vector<uint8_t>& buf)
      : BufferReader(buf.data(), buf.size()) {}
  /// Zero-copy view reader. The slice's owner must outlive the reader.
  explicit BufferReader(Slice s) : BufferReader(s.data(), s.size()) {}

  Result<uint8_t> ReadU8();
  Result<uint32_t> ReadU32() { return ReadPod<uint32_t>(); }
  Result<uint64_t> ReadU64() { return ReadPod<uint64_t>(); }
  Result<int32_t> ReadI32() { return ReadPod<int32_t>(); }
  Result<int64_t> ReadI64() { return ReadPod<int64_t>(); }
  Result<float> ReadF32() { return ReadPod<float>(); }
  Result<double> ReadF64() { return ReadPod<double>(); }
  Result<uint64_t> ReadVarint();
  Result<int64_t> ReadSignedVarint() {
    PS2_ASSIGN_OR_RETURN(uint64_t raw, ReadVarint());
    return static_cast<int64_t>((raw >> 1) ^ (0ULL - (raw & 1)));
  }
  Result<std::string> ReadString();

  template <typename T>
  Result<std::vector<T>> ReadPodVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    PS2_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
    if (n > (size_ - pos_) / sizeof(T)) {
      return Status::OutOfRange("pod vector length exceeds buffer");
    }
    std::vector<T> out(n);
    std::memcpy(out.data(), data_ + pos_, n * sizeof(T));
    pos_ += n * sizeof(T);
    return out;
  }

  Result<std::vector<uint64_t>> ReadVarintVector();

  /// Bulk doubles without a length prefix.
  Result<std::vector<double>> ReadF64Span(size_t n) {
    if (n > remaining() / sizeof(double)) {
      return Status::OutOfRange("f64 span exceeds buffer");
    }
    std::vector<double> out(n);
    std::memcpy(out.data(), data_ + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
    return out;
  }

  /// Bulk doubles decoded straight into caller storage — the zero-extra-copy
  /// twin of ReadF64Span for parse paths that already own a destination.
  Status ReadF64Into(double* dst, size_t n) {
    if (n > remaining() / sizeof(double)) {
      return Status::OutOfRange("f64 span exceeds buffer");
    }
    std::memcpy(dst, data_ + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
    return Status::OK();
  }

  /// Zero-copy view of the next `n` bytes (valid while the buffer lives).
  Result<Slice> ReadBytes(size_t n) {
    if (n > remaining()) {
      return Status::OutOfRange("byte span exceeds buffer");
    }
    Slice s(data_ + pos_, n);
    pos_ += n;
    return s;
  }

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  template <typename T>
  Result<T> ReadPod() {
    if (remaining() < sizeof(T)) {
      return Status::OutOfRange("read past end of buffer");
    }
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace ps2
