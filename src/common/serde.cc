#include "common/serde.h"

namespace ps2 {

Result<uint8_t> BufferReader::ReadU8() {
  if (remaining() < 1) return Status::OutOfRange("read past end of buffer");
  return data_[pos_++];
}

Result<uint64_t> BufferReader::ReadVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (remaining() < 1) return Status::OutOfRange("truncated varint");
    if (shift >= 64) return Status::OutOfRange("varint too long");
    uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<std::string> BufferReader::ReadString() {
  PS2_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
  if (n > remaining()) return Status::OutOfRange("string length exceeds buffer");
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
  pos_ += n;
  return s;
}

Result<std::vector<uint64_t>> BufferReader::ReadVarintVector() {
  PS2_ASSIGN_OR_RETURN(uint64_t n, ReadVarint());
  if (n > remaining()) return Status::OutOfRange("varint vector too long");
  std::vector<uint64_t> out;
  out.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    PS2_ASSIGN_OR_RETURN(uint64_t x, ReadVarint());
    out.push_back(x);
  }
  return out;
}

}  // namespace ps2
