#pragma once

// Fixed-size thread pool used to run simulated-cluster task bodies with real
// parallelism. Virtual time is accounted separately (see sim/sim_clock.h);
// the pool only provides wall-clock speed.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace ps2 {

/// \brief A fixed-size worker pool executing std::function tasks.
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; the returned future resolves when it finishes.
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n) across the pool and waits for completion.
  /// Exceptions must not escape fn (library code is exception-free).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

  /// Process-wide pool sized to the hardware concurrency.
  static ThreadPool* Global();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  std::vector<std::thread> threads_;
  bool shutdown_ = false;
};

}  // namespace ps2
