#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/logging.h"

namespace ps2 {

ThreadPool::ThreadPool(size_t num_threads) {
  PS2_CHECK_GE(num_threads, 1u);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    PS2_CHECK(!shutdown_) << "Submit after shutdown";
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Dynamic chunking: workers pull indices from a shared atomic counter.
  std::atomic<size_t> next{0};
  size_t workers = std::min(n, num_threads());
  std::vector<std::future<void>> futures;
  futures.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    futures.push_back(Submit([&] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        fn(i);
      }
    }));
  }
  for (auto& f : futures) f.get();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(
      std::max<size_t>(2, std::thread::hardware_concurrency()));
  return pool;
}

}  // namespace ps2
