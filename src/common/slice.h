#pragma once

// Zero-copy byte buffers for the RPC plane.
//
// The serde/message API passes payloads as views instead of copies:
//
//   * Slice      — a non-owning (pointer, size) view, the universal argument
//                  type for readers and Handle().
//   * SharedBuf  — an immutable, reference-counted byte buffer. Moving a
//                  BufferWriter's vector into one costs nothing; aliasing it
//                  (e.g. the wire form of an unfiltered request) is a
//                  refcount bump. The only way to duplicate bytes is the
//                  explicit CopyOf(), which increments a global counter so
//                  the zero-copy contract test can assert the filters-off
//                  hot path performs no hidden memcpys.
//
// Lifetime rule: a Slice never owns its bytes. A Slice taken from a
// SharedBuf (or a vector) is valid only while that owner is alive; APIs that
// retain bytes past the call take a SharedBuf, APIs that only read during
// the call take a Slice. See DESIGN.md §9.

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace ps2 {

/// \brief Non-owning view over a byte range.
class Slice {
 public:
  Slice() = default;
  Slice(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  // Implicit: any vector-based call site reads as a view without ceremony.
  Slice(const std::vector<uint8_t>& buf)  // NOLINT(runtime/explicit)
      : data_(buf.data()), size_(buf.size()) {}

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  uint8_t operator[](size_t i) const { return data_[i]; }

  /// Sub-view [pos, pos+n); clamped to the slice bounds.
  Slice subslice(size_t pos, size_t n) const {
    if (pos >= size_) return Slice();
    return Slice(data_ + pos, n < size_ - pos ? n : size_ - pos);
  }

  /// Explicit materialization (not counted as a deep copy — callers that
  /// need owned bytes say so in the type system).
  std::vector<uint8_t> ToVector() const {
    return std::vector<uint8_t>(data_, data_ + size_);
  }

 private:
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

/// \brief Immutable reference-counted byte buffer.
class SharedBuf {
 public:
  SharedBuf() = default;

  /// Takes ownership of `bytes` without copying.
  static SharedBuf FromVector(std::vector<uint8_t>&& bytes) {
    SharedBuf b;
    b.bytes_ = std::make_shared<const std::vector<uint8_t>>(std::move(bytes));
    return b;
  }

  /// Deep-copies `s`. The ONLY copying constructor; counted so tests can
  /// prove a code path copies nothing.
  static SharedBuf CopyOf(Slice s) {
    deep_copies_.fetch_add(1, std::memory_order_relaxed);
    return FromVector(s.ToVector());
  }

  Slice slice() const {
    return bytes_ ? Slice(bytes_->data(), bytes_->size()) : Slice();
  }
  const uint8_t* data() const { return bytes_ ? bytes_->data() : nullptr; }
  size_t size() const { return bytes_ ? bytes_->size() : 0; }
  bool empty() const { return size() == 0; }

  /// Deep copies performed process-wide since the last ResetStats().
  static uint64_t DeepCopies() {
    return deep_copies_.load(std::memory_order_relaxed);
  }
  static void ResetStats() {
    deep_copies_.store(0, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<const std::vector<uint8_t>> bytes_;
  inline static std::atomic<uint64_t> deep_copies_{0};
};

}  // namespace ps2
