#pragma once

// Arrow-style Result<T>: either a value or an error Status.

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace ps2 {

/// \brief Holds either a value of type T or an error Status.
///
/// Accessing the value of an errored Result is a checked fatal error, so use
/// ok() / status() (or PS2_ASSIGN_OR_RETURN) before dereferencing.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a (non-OK) Status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    PS2_CHECK(!std::get<Status>(repr_).ok())
        << "Result<T> must not be constructed from an OK Status";
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// The error status, or OK if a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& ValueOrDie() const& {
    PS2_CHECK(ok()) << "ValueOrDie on errored Result: " << status().ToString();
    return std::get<T>(repr_);
  }
  T& ValueOrDie() & {
    PS2_CHECK(ok()) << "ValueOrDie on errored Result: " << status().ToString();
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    PS2_CHECK(ok()) << "ValueOrDie on errored Result: " << status().ToString();
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  T&& operator*() && { return std::move(*this).ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Moves the value out, or returns `alternative` on error.
  T ValueOr(T alternative) && {
    return ok() ? std::get<T>(std::move(repr_)) : std::move(alternative);
  }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace ps2

#define PS2_RESULT_CONCAT_IMPL(x, y) x##y
#define PS2_RESULT_CONCAT(x, y) PS2_RESULT_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// assigns the value to `lhs` (which may include a declaration).
#define PS2_ASSIGN_OR_RETURN(lhs, rexpr)                                     \
  PS2_ASSIGN_OR_RETURN_IMPL(PS2_RESULT_CONCAT(_ps2_result_, __LINE__), lhs,  \
                            rexpr)

#define PS2_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie()
