#pragma once

// Minimal glog-flavoured logging and checking.
//
//   PS2_LOG(INFO) << "loaded " << n << " rows";
//   PS2_CHECK(x > 0) << "x must be positive, got " << x;
//   PS2_CHECK_OK(DoThing());
//
// CHECK failures abort; they indicate programming errors, not runtime errors
// (runtime errors travel via Status/Result).

#include <cstdint>
#include <sstream>
#include <string>

namespace ps2 {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global log threshold; messages below it are discarded. Default: kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out.
struct LogMessageVoidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace ps2

#define PS2_LOG_INTERNAL(level) \
  ::ps2::internal::LogMessage(::ps2::LogLevel::level, __FILE__, __LINE__)

#define PS2_LOG(severity) PS2_LOG_INTERNAL(k##severity)

#define PS2_CHECK(cond)                                      \
  (cond) ? (void)0                                           \
         : ::ps2::internal::LogMessageVoidify() &            \
               PS2_LOG(Fatal) << "Check failed: " #cond " "

#define PS2_CHECK_OK(expr)                                          \
  do {                                                              \
    ::ps2::Status _ps2_check_status = (expr);                       \
    PS2_CHECK(_ps2_check_status.ok())                               \
        << "'" #expr "' failed: " << _ps2_check_status.ToString(); \
  } while (false)

#define PS2_CHECK_EQ(a, b) PS2_CHECK((a) == (b)) << "(" << (a) << " vs " << (b) << ") "
#define PS2_CHECK_NE(a, b) PS2_CHECK((a) != (b)) << "(" << (a) << " vs " << (b) << ") "
#define PS2_CHECK_LT(a, b) PS2_CHECK((a) < (b)) << "(" << (a) << " vs " << (b) << ") "
#define PS2_CHECK_LE(a, b) PS2_CHECK((a) <= (b)) << "(" << (a) << " vs " << (b) << ") "
#define PS2_CHECK_GT(a, b) PS2_CHECK((a) > (b)) << "(" << (a) << " vs " << (b) << ") "
#define PS2_CHECK_GE(a, b) PS2_CHECK((a) >= (b)) << "(" << (a) << " vs " << (b) << ") "

#define PS2_DCHECK(cond) PS2_CHECK(cond)
