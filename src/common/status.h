#pragma once

// Arrow/RocksDB-style Status for error handling without exceptions.
//
// Library code returns Status (or Result<T>, see result.h) instead of
// throwing. Use the PS2_RETURN_NOT_OK / PS2_ASSIGN_OR_RETURN macros to
// propagate errors, and PS2_CHECK / PS2_CHECK_OK for invariants whose
// violation is a programming error.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <utility>

namespace ps2 {

enum class StatusCode : int8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kIOError = 5,
  kFailedPrecondition = 6,
  kUnavailable = 7,
  kNotImplemented = 8,
  kInternal = 9,
};

/// \brief Outcome of an operation: OK, or an error code plus message.
///
/// Statuses are cheap to copy in the OK case (no allocation) and cheap to
/// move always.
class Status {
 public:
  /// Creates an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg);

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return state_ ? state_->code : StatusCode::kOk; }
  /// Error message; empty for OK.
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // nullptr means OK; shared so copies are cheap.
  std::shared_ptr<const State> state_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

const char* StatusCodeName(StatusCode code);

}  // namespace ps2

/// Propagates a non-OK Status from the enclosing function.
#define PS2_RETURN_NOT_OK(expr)                 \
  do {                                          \
    ::ps2::Status _ps2_status = (expr);         \
    if (!_ps2_status.ok()) return _ps2_status;  \
  } while (false)
