#include "common/status.h"

#include <ostream>

namespace ps2 {

namespace {
const std::string kEmptyString;  // NOLINT(runtime/string): never destroyed use
}  // namespace

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_shared<const State>(State{code, std::move(msg)});
  }
}

const std::string& Status::message() const {
  return state_ ? state_->msg : kEmptyString;
}

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace ps2
