#pragma once

// Seeded, splittable random number generation.
//
// Every stochastic component in PS2 draws from an Rng seeded explicitly, so
// a fixed top-level seed makes entire training runs (losses and simulated
// times) bit-reproducible. Rng::Split(i) derives an independent stream for
// partition/task i, which keeps parallel execution deterministic regardless
// of thread scheduling.

#include <cmath>
#include <cstdint>
#include <limits>

namespace ps2 {

/// \brief Deterministic 64-bit PRNG (xoshiro256** with splitmix64 seeding).
class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the full state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, n). Requires n > 0.
  uint64_t NextUint64(uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    uint64_t x = Next();
    __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
    uint64_t lo = static_cast<uint64_t>(m);
    if (lo < n) {
      uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = Next();
        m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
        lo = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform int in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextUint64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Marsaglia polar method.
  double NextGaussian() {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u, v, s;
    do {
      u = NextDouble(-1.0, 1.0);
      v = NextDouble(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double mul = std::sqrt(-2.0 * std::log(s) / s);
    cached_gaussian_ = v * mul;
    has_cached_gaussian_ = true;
    return u * mul;
  }

  /// True with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Independent stream for substream `index` (e.g. one per partition).
  Rng Split(uint64_t index) const {
    // Mix the current state with the index through splitmix64.
    uint64_t base = state_[0] ^ (state_[3] + 0x9E3779B97F4A7C15ULL * (index + 1));
    return Rng(base);
  }

  // UniformRandomBitGenerator interface for <algorithm> interop.
  using result_type = uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }
  result_type operator()() { return Next(); }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace ps2
