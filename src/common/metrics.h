#pragma once

// Lightweight metrics: named monotonically increasing counters and gauges.
// Used to report traffic (bytes pushed/pulled, messages), task retries,
// checkpoint counts, etc. in tests and benches.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace ps2 {

/// \brief Thread-safe registry of named counters.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  void Add(const std::string& name, uint64_t delta);
  void Set(const std::string& name, uint64_t value);
  uint64_t Get(const std::string& name) const;
  void Reset();

  /// Snapshot of all counters (sorted by name).
  std::map<std::string, uint64_t> Snapshot() const;

  /// Human-readable dump, one "name = value" per line.
  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
};

}  // namespace ps2
