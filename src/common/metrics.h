#pragma once

// Lightweight metrics: named monotonically increasing counters and gauges,
// plus log-bucketed histograms and a tagged-name convention.
//
// Counters are used to report traffic (bytes pushed/pulled, messages), task
// retries, checkpoint counts, etc. in tests and benches. Histograms record
// distributions (per-op latencies, queue depths) and answer p50/p95/p99
// queries from power-of-two buckets. Tagged names extend a flat counter
// name with key=value dimensions — `net.bytes{op=pull,server=3}` — without
// changing the registry's storage model: a tagged name is just a name.
//
// Determinism note: counters hold only simulation-derived (virtual,
// seed-deterministic) quantities; histograms are allowed to hold wall-clock
// measurements. Snapshot() therefore returns counters ONLY — determinism
// tests may compare it bit-for-bit across runs — while histogram contents
// travel through the separate HistogramSnapshots() view.

#include <cstdint>
#include <initializer_list>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>

namespace ps2 {

/// Canonical tagged-metric name: `base{k1=v1,k2=v2}`. Tags are emitted in
/// the order given; callers that want mergeable names must pass them in a
/// fixed order. Building a name allocates — precompute on hot paths.
std::string TaggedName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>> tags);

/// Shorthand for the common single-tag case: `base{server=3}`.
std::string ServerTaggedName(std::string_view base, int server);

/// \brief Point-in-time summary of one histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  double mean() const { return count == 0 ? 0.0 : sum / count; }
};

/// \brief Thread-safe log-bucketed histogram of non-negative doubles.
///
/// Bucket 0 holds [0, 1); bucket b >= 1 holds [2^(b-1), 2^b). Percentiles
/// interpolate linearly inside the covering bucket and are clamped to the
/// exact observed [min, max], so a single-valued histogram reports that
/// value at every percentile. Negative samples clamp into bucket 0.
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Bucket index a value falls into (static: bucket edges are fixed).
  static int BucketOf(double value);
  /// Inclusive lower edge of bucket `b`.
  static double BucketLow(int b);
  /// Exclusive upper edge of bucket `b`.
  static double BucketHigh(int b);

  void Record(double value);
  void Merge(const Histogram& other);
  void Reset();

  uint64_t Count() const;
  uint64_t BucketCount(int b) const;
  /// Interpolated percentile, p in [0, 100].
  double Percentile(double p) const;
  HistogramSnapshot Snapshot() const;

 private:
  double PercentileLocked(double p) const;

  mutable std::mutex mu_;
  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// \brief Thread-safe registry of named counters and histograms.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  void Add(const std::string& name, uint64_t delta);
  void Set(const std::string& name, uint64_t value);
  uint64_t Get(const std::string& name) const;

  /// Records one sample into the named histogram (created on first use).
  void Observe(const std::string& name, double value);
  /// Snapshot of one histogram (zero snapshot if absent).
  HistogramSnapshot GetHistogram(const std::string& name) const;

  /// Stable pointer to the named histogram (created on first use), valid for
  /// the registry's lifetime — Reset() zeroes histograms in place rather
  /// than destroying them, precisely so hot paths can resolve the name once
  /// and call Histogram::Record directly, skipping the registry lock and
  /// string lookup per sample.
  Histogram* GetOrCreateHistogram(const std::string& name);

  /// Clears counters AND histograms. Histogram map nodes survive (zeroed in
  /// place) so pointers from GetOrCreateHistogram stay valid.
  void Reset();

  /// Snapshot of all counters (sorted by name). Counters only — see the
  /// determinism note in the header comment.
  std::map<std::string, uint64_t> Snapshot() const;

  /// Snapshot of all histograms (sorted by name).
  std::map<std::string, HistogramSnapshot> HistogramSnapshots() const;

  /// Human-readable dump: one "name = value" per line for counters, then
  /// one "name = count=N mean=... p50=... p95=... p99=... max=..." per
  /// histogram.
  std::string ToString() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
  // std::map nodes are stable: Observe takes the registry lock only to find
  // (or create) the histogram, then records under the histogram's own lock.
  std::map<std::string, Histogram> histograms_;
};

}  // namespace ps2
