#include "common/metrics.h"

#include <sstream>

namespace ps2 {

void MetricsRegistry::Add(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::Set(const std::string& name, uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] = value;
}

uint64_t MetricsRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
}

std::map<std::string, uint64_t> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::string MetricsRegistry::ToString() const {
  std::ostringstream os;
  for (const auto& [name, value] : Snapshot()) {
    os << name << " = " << value << "\n";
  }
  return os.str();
}

}  // namespace ps2
