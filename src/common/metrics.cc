#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ps2 {

std::string TaggedName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        tags) {
  std::string name(base);
  if (tags.size() == 0) return name;
  name.push_back('{');
  bool first = true;
  for (const auto& [key, value] : tags) {
    if (!first) name.push_back(',');
    first = false;
    name.append(key);
    name.push_back('=');
    name.append(value);
  }
  name.push_back('}');
  return name;
}

std::string ServerTaggedName(std::string_view base, int server) {
  return TaggedName(base, {{"server", std::to_string(server)}});
}

// ------------------------------------------------------------------ Histogram

int Histogram::BucketOf(double value) {
  if (!(value >= 1.0)) return 0;  // negatives and NaN clamp into bucket 0
  if (std::isinf(value)) return kNumBuckets - 1;
  int exp = 0;
  std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  return std::min(exp, kNumBuckets - 1);
}

double Histogram::BucketLow(int b) {
  return b <= 0 ? 0.0 : std::ldexp(1.0, b - 1);
}

double Histogram::BucketHigh(int b) { return std::ldexp(1.0, std::max(b, 0)); }

void Histogram::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_[BucketOf(value)] += 1;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_ += 1;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  // Lock ordering: callers merge distinct histograms (scoped locks cannot
  // deadlock because `other` is never `*this` in any call site; self-merge
  // is rejected outright to keep that true).
  if (&other == this) return;
  std::scoped_lock lock(mu_, other.mu_);
  for (int b = 0; b < kNumBuckets; ++b) buckets_[b] += other.buckets_[b];
  if (other.count_ > 0) {
    min_ = count_ == 0 ? other.min_ : std::min(min_, other.min_);
    max_ = count_ == 0 ? other.max_ : std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int b = 0; b < kNumBuckets; ++b) buckets_[b] = 0;
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

uint64_t Histogram::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return count_;
}

uint64_t Histogram::BucketCount(int b) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (b < 0 || b >= kNumBuckets) return 0;
  return buckets_[b];
}

double Histogram::PercentileLocked(double p) const {
  if (count_ == 0) return 0.0;
  const double target = std::clamp(p, 0.0, 100.0) / 100.0 *
                        static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    const double before = static_cast<double>(cumulative);
    cumulative += buckets_[b];
    if (static_cast<double>(cumulative) >= target) {
      const double frac =
          (target - before) / static_cast<double>(buckets_[b]);
      // Interpolate within the part of the bucket that was actually
      // observed: a log2 bucket spans [2^(b-1), 2^b), so when every sample
      // lives in one bucket the raw bucket bounds can sit entirely below
      // min_ or above max_ — clamping after interpolation then collapses
      // every percentile to the same endpoint (p50 == p99). Tightening the
      // bounds first keeps percentiles monotone and spread across the
      // observed [min, max].
      const double lo = std::max(BucketLow(b), min_);
      const double hi = std::min(BucketHigh(b), max_);
      if (hi <= lo) return lo;
      return lo + frac * (hi - lo);
    }
  }
  return max_;
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  return PercentileLocked(p);
}

HistogramSnapshot Histogram::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramSnapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  snap.p50 = PercentileLocked(50.0);
  snap.p95 = PercentileLocked(95.0);
  snap.p99 = PercentileLocked(99.0);
  return snap;
}

// ------------------------------------------------------------ MetricsRegistry

void MetricsRegistry::Add(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

void MetricsRegistry::Set(const std::string& name, uint64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] = value;
}

uint64_t MetricsRegistry::Get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::Observe(const std::string& name, double value) {
  GetOrCreateHistogram(name)->Record(value);
}

Histogram* MetricsRegistry::GetOrCreateHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &histograms_[name];
}

HistogramSnapshot MetricsRegistry::GetHistogram(const std::string& name) const {
  const Histogram* hist = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) return {};
    hist = &it->second;
  }
  return hist->Snapshot();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  // Zero in place: GetOrCreateHistogram hands out node pointers that hot
  // paths cache across Reset() calls (benches reset between phases).
  for (auto& [name, hist] : histograms_) hist.Reset();
}

std::map<std::string, uint64_t> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::map<std::string, HistogramSnapshot> MetricsRegistry::HistogramSnapshots()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, HistogramSnapshot> out;
  for (const auto& [name, hist] : histograms_) {
    HistogramSnapshot snap = hist.Snapshot();
    // Empty histograms are invisible: they are Reset() leftovers kept alive
    // only for pointer stability.
    if (snap.count > 0) out.emplace(name, std::move(snap));
  }
  return out;
}

std::string MetricsRegistry::ToString() const {
  std::ostringstream os;
  for (const auto& [name, value] : Snapshot()) {
    os << name << " = " << value << "\n";
  }
  for (const auto& [name, snap] : HistogramSnapshots()) {
    os << name << " = count=" << snap.count << " mean=" << snap.mean()
       << " p50=" << snap.p50 << " p95=" << snap.p95 << " p99=" << snap.p99
       << " max=" << snap.max << "\n";
  }
  return os.str();
}

}  // namespace ps2
