#pragma once

// Broadcast variables (Spark TorrentBroadcast analogue).
//
// Broadcasting charges the cluster clock with the torrent-broadcast cost for
// the serialized size and hands tasks a shared read-only handle. The MLlib
// baseline uses this for its per-iteration model broadcast (paper §2 step 1).

#include <cstdint>
#include <memory>
#include <utility>

#include "dataflow/cluster.h"

namespace ps2 {

/// \brief Read-only handle to a value shipped to all executors.
template <typename T>
class Broadcast {
 public:
  Broadcast() = default;
  Broadcast(std::shared_ptr<const T> value, uint64_t bytes)
      : value_(std::move(value)), bytes_(bytes) {}

  const T& value() const { return *value_; }
  uint64_t serialized_bytes() const { return bytes_; }
  bool valid() const { return value_ != nullptr; }

 private:
  std::shared_ptr<const T> value_;
  uint64_t bytes_ = 0;
};

/// Ships `value` (serialized size `bytes`) to every executor, charging the
/// torrent-broadcast cost.
template <typename T>
Broadcast<T> BroadcastValue(Cluster* cluster, T value, uint64_t bytes) {
  cluster->AdvanceClock(
      cluster->cost().BroadcastTorrent(cluster->num_workers(), bytes));
  cluster->metrics().Add("net.broadcast_bytes", bytes);
  return Broadcast<T>(std::make_shared<const T>(std::move(value)), bytes);
}

}  // namespace ps2
