#pragma once

// Dataset<T>: the RDD analogue of sparklite.
//
// A Dataset is an immutable, lazily evaluated, partitioned collection with
// lineage: each node knows how to (re)compute any partition, so a simulated
// executor failure just drops cached partitions and the next access rebuilds
// them — exactly Spark's fault-tolerance story (paper §5.3, "Executor
// Failure").
//
// Transformations (Map, Filter, Sample, MapPartitions, Cache) build the
// lineage graph; actions (Collect, Count, Reduce, ForeachPartition,
// MapPartitionsCollect) run one BSP stage on the cluster, charging virtual
// time for compute, IO and any PS traffic the task bodies generate.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "dataflow/cluster.h"

namespace ps2 {

namespace internal {

/// Per-element virtual compute charge for generic transformations.
constexpr uint64_t kOpsPerElement = 1;

template <typename T>
using Elements = std::shared_ptr<const std::vector<T>>;

template <typename T>
class DatasetNode {
 public:
  DatasetNode(Cluster* cluster, size_t num_partitions)
      : cluster_(cluster), num_partitions_(num_partitions) {
    PS2_CHECK(cluster != nullptr);
    PS2_CHECK_GT(num_partitions, 0u);
  }
  virtual ~DatasetNode() = default;

  /// Computes (possibly recomputes, via lineage) partition `pid`.
  virtual Elements<T> Compute(size_t pid, TaskContext& ctx) = 0;

  Cluster* cluster() const { return cluster_; }
  size_t num_partitions() const { return num_partitions_; }

 protected:
  Cluster* cluster_;
  size_t num_partitions_;
};

template <typename T>
class SourceNode final : public DatasetNode<T> {
 public:
  using GenFn = std::function<std::vector<T>(size_t pid, Rng& rng)>;

  SourceNode(Cluster* cluster, size_t num_partitions, GenFn gen,
             uint64_t io_bytes_per_element, uint64_t node_seed)
      : DatasetNode<T>(cluster, num_partitions),
        gen_(std::move(gen)),
        io_bytes_per_element_(io_bytes_per_element),
        node_seed_(node_seed) {}

  Elements<T> Compute(size_t pid, TaskContext& ctx) override {
    // Partition content depends only on (node_seed, pid): recomputation
    // after failure reproduces identical data.
    Rng rng = this->cluster_->MakeRng(node_seed_ ^ (0x50A5C000ULL + pid));
    auto data = std::make_shared<std::vector<T>>(gen_(pid, rng));
    ctx.AddIoBytes(io_bytes_per_element_ * data->size());
    ctx.AddWorkerOps(data->size() * kOpsPerElement);
    return data;
  }

 private:
  GenFn gen_;
  uint64_t io_bytes_per_element_;
  uint64_t node_seed_;
};

template <typename T, typename U>
class MapNode final : public DatasetNode<U> {
 public:
  MapNode(std::shared_ptr<DatasetNode<T>> parent, std::function<U(const T&)> fn)
      : DatasetNode<U>(parent->cluster(), parent->num_partitions()),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  Elements<U> Compute(size_t pid, TaskContext& ctx) override {
    Elements<T> in = parent_->Compute(pid, ctx);
    auto out = std::make_shared<std::vector<U>>();
    out->reserve(in->size());
    for (const T& x : *in) out->push_back(fn_(x));
    ctx.AddWorkerOps(in->size() * kOpsPerElement);
    return out;
  }

 private:
  std::shared_ptr<DatasetNode<T>> parent_;
  std::function<U(const T&)> fn_;
};

template <typename T>
class FilterNode final : public DatasetNode<T> {
 public:
  FilterNode(std::shared_ptr<DatasetNode<T>> parent,
             std::function<bool(const T&)> pred)
      : DatasetNode<T>(parent->cluster(), parent->num_partitions()),
        parent_(std::move(parent)),
        pred_(std::move(pred)) {}

  Elements<T> Compute(size_t pid, TaskContext& ctx) override {
    Elements<T> in = parent_->Compute(pid, ctx);
    auto out = std::make_shared<std::vector<T>>();
    for (const T& x : *in) {
      if (pred_(x)) out->push_back(x);
    }
    ctx.AddWorkerOps(in->size() * kOpsPerElement);
    return out;
  }

 private:
  std::shared_ptr<DatasetNode<T>> parent_;
  std::function<bool(const T&)> pred_;
};

template <typename T, typename U>
class MapPartitionsNode final : public DatasetNode<U> {
 public:
  using Fn = std::function<std::vector<U>(TaskContext&, const std::vector<T>&)>;

  MapPartitionsNode(std::shared_ptr<DatasetNode<T>> parent, Fn fn)
      : DatasetNode<U>(parent->cluster(), parent->num_partitions()),
        parent_(std::move(parent)),
        fn_(std::move(fn)) {}

  Elements<U> Compute(size_t pid, TaskContext& ctx) override {
    Elements<T> in = parent_->Compute(pid, ctx);
    return std::make_shared<std::vector<U>>(fn_(ctx, *in));
  }

 private:
  std::shared_ptr<DatasetNode<T>> parent_;
  Fn fn_;
};

template <typename T>
class SampleNode final : public DatasetNode<T> {
 public:
  SampleNode(std::shared_ptr<DatasetNode<T>> parent, double fraction,
             uint64_t seed)
      : DatasetNode<T>(parent->cluster(), parent->num_partitions()),
        parent_(std::move(parent)),
        fraction_(fraction),
        seed_(seed) {
    PS2_CHECK_GE(fraction, 0.0);
    PS2_CHECK_LE(fraction, 1.0);
  }

  Elements<T> Compute(size_t pid, TaskContext& ctx) override {
    Elements<T> in = parent_->Compute(pid, ctx);
    Rng rng(seed_ ^ (0x5A111E00ULL + pid));
    auto out = std::make_shared<std::vector<T>>();
    out->reserve(static_cast<size_t>(in->size() * fraction_) + 1);
    for (const T& x : *in) {
      if (rng.NextBernoulli(fraction_)) out->push_back(x);
    }
    ctx.AddWorkerOps(in->size());
    return out;
  }

 private:
  std::shared_ptr<DatasetNode<T>> parent_;
  double fraction_;
  uint64_t seed_;
};

template <typename T>
class CacheNode final : public DatasetNode<T>,
                        public std::enable_shared_from_this<CacheNode<T>> {
 public:
  explicit CacheNode(std::shared_ptr<DatasetNode<T>> parent)
      : DatasetNode<T>(parent->cluster(), parent->num_partitions()),
        parent_(std::move(parent)) {}

  /// Registers lineage-invalidation with the cluster; must be called once
  /// after construction (shared_from_this is unavailable in the ctor).
  void RegisterWithCluster() {
    std::weak_ptr<CacheNode<T>> weak = this->shared_from_this();
    this->cluster_->RegisterCacheInvalidation([weak](int executor_id) {
      if (auto self = weak.lock()) self->DropExecutorPartitions(executor_id);
    });
  }

  Elements<T> Compute(size_t pid, TaskContext& ctx) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(pid);
      if (it != cache_.end()) return it->second;
    }
    Elements<T> data = parent_->Compute(pid, ctx);
    std::lock_guard<std::mutex> lock(mu_);
    cache_[pid] = data;
    return data;
  }

  void DropExecutorPartitions(int executor_id) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = cache_.begin(); it != cache_.end();) {
      if (this->cluster_->ExecutorForPartition(it->first) == executor_id) {
        it = cache_.erase(it);
      } else {
        ++it;
      }
    }
  }

  size_t cached_partitions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return cache_.size();
  }

 private:
  std::shared_ptr<DatasetNode<T>> parent_;
  mutable std::mutex mu_;
  std::map<size_t, Elements<T>> cache_;
};

}  // namespace internal

/// \brief Lazily evaluated partitioned dataset with lineage-based recovery.
template <typename T>
class Dataset {
 public:
  Dataset() = default;

  /// Creates a source dataset whose partition `pid` is produced by
  /// `gen(pid, rng)` with a deterministic per-partition RNG.
  /// `io_bytes_per_element` models the cost of reading the input (0 = free).
  static Dataset FromGenerator(
      Cluster* cluster, size_t num_partitions,
      std::function<std::vector<T>(size_t, Rng&)> gen,
      uint64_t io_bytes_per_element = 0, uint64_t node_seed = 0x0DA7A5E7) {
    return Dataset(std::make_shared<internal::SourceNode<T>>(
        cluster, num_partitions, std::move(gen), io_bytes_per_element,
        node_seed));
  }

  /// Distributes an in-memory vector round-robin over `num_partitions`.
  static Dataset Parallelize(Cluster* cluster, std::vector<T> data,
                             size_t num_partitions) {
    auto shared = std::make_shared<std::vector<T>>(std::move(data));
    return FromGenerator(
        cluster, num_partitions,
        [shared, num_partitions](size_t pid, Rng&) {
          std::vector<T> part;
          for (size_t i = pid; i < shared->size(); i += num_partitions) {
            part.push_back((*shared)[i]);
          }
          return part;
        });
  }

  template <typename U>
  Dataset<U> Map(std::function<U(const T&)> fn) const {
    return Dataset<U>(
        std::make_shared<internal::MapNode<T, U>>(node_, std::move(fn)));
  }

  Dataset<T> Filter(std::function<bool(const T&)> pred) const {
    return Dataset<T>(
        std::make_shared<internal::FilterNode<T>>(node_, std::move(pred)));
  }

  template <typename U>
  Dataset<U> MapPartitions(
      std::function<std::vector<U>(TaskContext&, const std::vector<T>&)> fn)
      const {
    return Dataset<U>(std::make_shared<internal::MapPartitionsNode<T, U>>(
        node_, std::move(fn)));
  }

  /// Bernoulli sample; pass a fresh seed per iteration for SGD mini-batches.
  Dataset<T> Sample(double fraction, uint64_t seed) const {
    return Dataset<T>(
        std::make_shared<internal::SampleNode<T>>(node_, fraction, seed));
  }

  /// Marks this dataset cached: partitions materialize on first access and
  /// survive across stages until their executor "fails".
  Dataset<T> Cache() const {
    auto cache_node = std::make_shared<internal::CacheNode<T>>(node_);
    cache_node->RegisterWithCluster();
    return Dataset<T>(cache_node);
  }

  // ---- Actions (each runs one stage) ----

  /// Runs `fn` once per partition; any PS traffic inside is charged to the
  /// stage. This is the Spark `mapPartitions{...}.foreach()` idiom from the
  /// paper's code samples.
  void ForeachPartition(
      const std::function<void(TaskContext&, const std::vector<T>&)>& fn)
      const {
    auto node = node_;
    cluster()->RunStage("foreachPartition", num_partitions(),
                        [&](TaskContext& ctx) {
                          auto data = node->Compute(ctx.task_id, ctx);
                          fn(ctx, *data);
                        });
  }

  /// Runs `fn` per partition and collects one result per partition at the
  /// driver (in partition order).
  template <typename R>
  std::vector<R> MapPartitionsCollect(
      const std::function<R(TaskContext&, const std::vector<T>&)>& fn) const {
    std::vector<R> results(num_partitions());
    auto node = node_;
    cluster()->RunStage("mapPartitionsCollect", num_partitions(),
                        [&](TaskContext& ctx) {
                          auto data = node->Compute(ctx.task_id, ctx);
                          results[ctx.task_id] = fn(ctx, *data);
                        });
    return results;
  }

  std::vector<T> Collect() const {
    std::vector<std::vector<T>> parts(num_partitions());
    auto node = node_;
    cluster()->RunStage("collect", num_partitions(), [&](TaskContext& ctx) {
      parts[ctx.task_id] = *node->Compute(ctx.task_id, ctx);
    });
    std::vector<T> out;
    for (auto& p : parts) {
      out.insert(out.end(), p.begin(), p.end());
    }
    return out;
  }

  size_t Count() const {
    std::vector<size_t> counts = MapPartitionsCollect<size_t>(
        [](TaskContext&, const std::vector<T>& data) { return data.size(); });
    size_t total = 0;
    for (size_t c : counts) total += c;
    return total;
  }

  /// Driver-side fold of per-partition reductions.
  T Reduce(const std::function<T(const T&, const T&)>& fn, T identity) const {
    std::vector<T> partials = MapPartitionsCollect<T>(
        [&fn, identity](TaskContext& ctx, const std::vector<T>& data) {
          T acc = identity;
          for (const T& x : data) acc = fn(acc, x);
          ctx.AddWorkerOps(data.size());
          return acc;
        });
    T acc = identity;
    for (const T& p : partials) acc = fn(acc, p);
    return acc;
  }

  size_t num_partitions() const { return node_->num_partitions(); }
  Cluster* cluster() const { return node_->cluster(); }
  bool valid() const { return node_ != nullptr; }

  // Internal: wraps an existing node (used by transformations).
  explicit Dataset(std::shared_ptr<internal::DatasetNode<T>> node)
      : node_(std::move(node)) {}

 private:
  template <typename U>
  friend class Dataset;

  std::shared_ptr<internal::DatasetNode<T>> node_;
};

}  // namespace ps2
